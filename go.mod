module fpgauv

go 1.21
