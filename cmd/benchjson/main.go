// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout — the artifact CI records so
// the performance trajectory of the hot paths (ns/op, B/op, allocs/op,
// custom metrics) is tracked per commit instead of lost in logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson [-label BENCH_4] > BENCH.json
//
// The optional -label stamps the report with the artifact's series name,
// so downstream tooling can tell which numbered snapshot a document is
// without parsing its filename.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document written to stdout.
type Report struct {
	Label      string      `json:"label,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "artifact series name stamped into the report")
	flag.Parse()
	rep := Report{Label: *label, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkName-8  N  v1 u1  v2 u2 ..." line.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the -GOMAXPROCS suffix from the name.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
