// Command uvolt-serve runs an HTTP inference service on a fleet of
// simulated reduced-voltage ZCU102 boards: every board is characterized,
// parked inside its voltage guardband, and served classification traffic
// with automatic crash recovery.
//
// Usage:
//
//	uvolt-serve [-addr :8090] [-boards 3] [-bench VGGNet] [-images 32]
//	            [-bits 8] [-sparsity 0] [-prune-sparsity 0] [-sparse-backend auto]
//	            [-margin 10] [-batch 8] [-batch-images 16] [-micro-batch 16]
//	            [-batch-window 2ms] [-gemm-workers 0]
//	            [-pools 1] [-pool-boards 0] [-max-queue 0] [-spares 0]
//	            [-governor] [-governor-interval 25ms] [-governor-step 5]
//	            [-governor-margin 5] [-governor-probe 12]
//	            [-ecc] [-scrub-interval 250ms] [-governor-bram]
//	            [-telemetry-interval 50ms] [-slo-availability 0.999]
//	            [-slo-latency 250ms] [-slo-burn-threshold 4]
//	            [-trace] [-trace-ring 256] [-debug-addr :6060] [-log-level info]
//
// Endpoints:
//
//	POST /v1/infer         {"pixels": [...]}      classify one image
//	                       {"image_b64": "..."}   (base64 LE float32 CHW)
//	POST /v1/classify      {"seed": 7}            one evaluation-set pass
//	GET  /v1/trace/{id}                           one request's span tree
//	GET  /v1/traces?limit=N                       recent traces, newest first
//	GET  /v1/fleet/status[?pool=P]                pool + per-board snapshot
//	GET  /v1/fleet/events?cursor=K[&pool=P]       fleet event journal
//	POST /v1/fleet/voltage {"board": 0, "mv": 500}  command a VCCINT rail
//	GET  /v1/fleet/governor                       adaptive-voltage state
//	POST /v1/fleet/governor {"enabled": true}     toggle / tune the governor
//	GET  /v1/fleet/ecc                            SECDED + scrubbing state
//	POST /v1/fleet/ecc     {"enabled": true}      toggle ECC / tune scrubbing
//	GET  /v1/fleet/history?board=B&series=S       board telemetry time-series
//	                      [&res=raw|10s|1m][&n=N]
//	GET  /v1/fleet/health                         board health + SLO burn rates
//	GET  /v1/fleet/postmortems[?limit=N]          crash flight-recorder records
//	GET  /metrics                                 Prometheus text metrics
//	GET  /healthz                                 liveness
//
// With -pools N (N > 1) or -spares, the service runs a sharded cluster:
// N pools built from the same template (-pool-boards boards each,
// default -boards) behind a rendezvous router with admission control
// and load shedding (saturation answers 429 + Retry-After). -max-queue
// bounds each pool's backlog; -spares parks warm spare pools that
// promote when aggregate backlog crosses the shed threshold. The
// /v1/fleet/* endpoints then accept ?pool=P to scope one pool.
//
// With -debug-addr set, net/http/pprof is served on that separate
// listener under /debug/pprof/ — keep it off public interfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgauv"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	boards := flag.Int("boards", 3, "pool size (boards cycle the three silicon samples)")
	bench := flag.String("bench", "VGGNet", "Table 1 benchmark to serve")
	tiny := flag.Bool("tiny", true, "use the tiny model preset")
	images := flag.Int("images", 32, "evaluation images per request")
	bits := flag.Int("bits", 0, "quantization bits (default 8)")
	sparsity := flag.Float64("sparsity", 0, "DECENT pruning sparsity (unstructured)")
	pruneSparsity := flag.Float64("prune-sparsity", 0, "block-structured pruning sparsity matched to the sparse backend's skip geometry (overrides -sparsity)")
	sparseBackend := flag.String("sparse-backend", "", "compute backend: auto (default; per-kernel by realized block sparsity), dense or sparse")
	margin := flag.Float64("margin", 10, "mV of headroom above each board's Vmin")
	target := flag.Float64("target", 0, "explicit operating point in mV (0 = Vmin+margin)")
	batch := flag.Int("batch", 8, "max classify requests coalesced per accelerator pass")
	batchImages := flag.Int("batch-images", 16, "max images coalesced per inference micro-batch")
	microBatch := flag.Int("micro-batch", 16, "accelerator-pass size for inference jobs")
	window := flag.Duration("batch-window", 2*time.Millisecond, "batching window")
	gemmWorkers := flag.Int("gemm-workers", 0, "GEMM tile worker pool width shared by conv macro-tiles and batch lanes (0 = GOMAXPROCS-aware automatic)")
	pools := flag.Int("pools", 1, "pools in the cluster (1 = single pool, no router)")
	poolBoards := flag.Int("pool-boards", 0, "boards per pool when clustered (default: -boards)")
	maxQueue := flag.Int("max-queue", 0, "per-pool backlog bound; saturation sheds with 429 (0 = unbounded single pool, 8 per clustered pool)")
	spares := flag.Int("spares", 0, "warm-spare pools parked for promotion under backlog")
	governor := flag.Bool("governor", false, "start the adaptive voltage governor enabled")
	govInterval := flag.Duration("governor-interval", 25*time.Millisecond, "governor control period per board")
	govStep := flag.Float64("governor-step", 5, "governor step in mV")
	govMargin := flag.Float64("governor-margin", 5, "mV held above the deepest clean canary level")
	govProbe := flag.Int("governor-probe", 12, "canary images classified per governor tick")
	eccOn := flag.Bool("ecc", false, "enable BRAM SECDED protection")
	scrubInterval := flag.Duration("scrub-interval", 250*time.Millisecond, "frame-scrub period per board")
	govBRAM := flag.Bool("governor-bram", false, "let the governor walk VCCBRAM down (ECC-aware when -ecc)")
	telemetryInterval := flag.Duration("telemetry-interval", 50*time.Millisecond, "board telemetry sampling period (negative disables the sampler)")
	sloAvailability := flag.Float64("slo-availability", 0.999, "availability objective (fraction of requests that must succeed)")
	sloLatency := flag.Duration("slo-latency", 250*time.Millisecond, "latency objective threshold")
	sloLatencyGoal := flag.Float64("slo-latency-goal", 0.99, "fraction of requests that must beat -slo-latency")
	sloBurnThreshold := flag.Float64("slo-burn-threshold", 4, "burn-rate multiple that raises an slo_burn alert (both windows)")
	trace := flag.Bool("trace", true, "record request traces (served by /v1/trace and /v1/traces)")
	traceRing := flag.Int("trace-ring", 256, "recent traces retained")
	debugAddr := flag.String("debug-addr", "", "optional separate listener for /debug/pprof (empty = off)")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "uvolt-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	log := slog.Default()

	fcfg := fpgauv.FleetConfig{
		Boards:        *boards,
		Benchmark:     *bench,
		Tiny:          *tiny,
		Images:        *images,
		Bits:          *bits,
		Sparsity:      *sparsity,
		PruneSparsity: *pruneSparsity,
		SparseBackend: *sparseBackend,
		MarginMV:      *margin,
		TargetMV:      *target,
		MicroBatch:    *microBatch,
		MaxQueue:      *maxQueue,
		GemmWorkers:   *gemmWorkers,
		Governor: fpgauv.GovernorConfig{
			Enabled:     *governor,
			Interval:    *govInterval,
			StepMV:      *govStep,
			MarginMV:    *govMargin,
			ProbeImages: *govProbe,
			BRAM:        *govBRAM,
		},
		ECC: fpgauv.ECCConfig{
			Enabled:       *eccOn,
			ScrubInterval: *scrubInterval,
		},
		Telemetry: fpgauv.TelemetryConfig{
			Interval: *telemetryInterval,
		},
	}
	t0 := time.Now()
	var sched fpgauv.Scheduler
	if *pools > 1 || *spares > 0 {
		if *poolBoards > 0 {
			fcfg.Boards = *poolBoards
		}
		log.Info("bringing up cluster (characterizing Vmin/Vcrash)",
			"pools", *pools, "spares", *spares, "boards_per_pool", fcfg.Boards, "benchmark", *bench)
		cl, err := fpgauv.NewCluster(fpgauv.ClusterConfig{
			Pools: *pools, Spares: *spares, Pool: fcfg,
		})
		if err != nil {
			log.Error("cluster bring-up failed", "err", err)
			os.Exit(1)
		}
		sched = cl
	} else {
		log.Info("bringing up fleet (characterizing Vmin/Vcrash)", "boards", *boards, "benchmark", *bench)
		pool, err := fpgauv.NewFleet(fcfg)
		if err != nil {
			log.Error("fleet bring-up failed", "err", err)
			os.Exit(1)
		}
		sched = pool
	}
	// Mirror journal events (routes and sheds for a cluster; crashes,
	// rail moves and governor traffic per pool) onto the structured log
	// at -log-level granularity.
	sched.Journal().SetLogger(log)
	for _, p := range sched.Pools() {
		p.Journal().SetLogger(log)
	}
	for _, b := range sched.Status().Boards {
		log.Info("board characterized", "board", b.Board,
			"vmin_mv", b.VminMV, "vcrash_mv", b.VcrashMV, "operating_mv", b.OperatingMV,
			"guardband_reclaimed_mv", fpgauv.VnomMV-b.OperatingMV)
	}
	if *governor {
		log.Info("adaptive voltage governor enabled", "interval", *govInterval, "step_mv", *govStep)
	}
	if *eccOn {
		log.Info("BRAM SECDED protection enabled", "scrub_interval", *scrubInterval)
	}
	if *govBRAM {
		log.Info("governor will walk VCCBRAM", "ecc_aware", *eccOn)
	}
	log.Info("fleet ready", "elapsed", time.Since(t0).Round(time.Millisecond))

	srv := fpgauv.NewServer(sched, fpgauv.ServeConfig{
		BatchSize:   *batch,
		BatchImages: *batchImages,
		BatchWindow: *window,
		Trace:       *trace,
		TraceRing:   *traceRing,
		SLO: fpgauv.SLOConfig{
			AvailabilityTarget: *sloAvailability,
			LatencyTarget:      *sloLatency,
			LatencyGoal:        *sloLatencyGoal,
			BurnThreshold:      *sloBurnThreshold,
		},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: fpgauv.DebugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		log.Info("pprof debug listener up", "addr", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("listening", "addr", *addr, "trace", *trace)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("draining on signal", "signal", s.String())
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener failed", "err", err)
			os.Exit(1)
		}
	}

	// Graceful shutdown: stop accepting, let in-flight HTTP finish,
	// flush the batcher, drain the fleet queue, restore nominal rails.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	srv.Close()
	st := sched.Status()
	fmt.Printf("served=%d (eval=%d infer=%d images=%d) crashes=%d reboots=%d redeploys=%d canceled=%d\n",
		st.Served, st.EvalServed, st.InferServed, st.InferImages,
		st.Crashes, st.Reboots, st.Redeploys, st.Canceled)
	if st.Cluster != nil {
		fmt.Printf("cluster: pools=%d(+%d spare) routes=%d hops=%d sheds=%d spare_activations=%d\n",
			st.Cluster.ActivePools, st.Cluster.SparePools,
			st.Cluster.Routes, st.Cluster.Hops, st.Cluster.Sheds, st.Cluster.SpareActivations)
		for _, ps := range st.Cluster.Pools {
			fmt.Printf("  %s: active=%t boards=%d routes=%d sheds=%d\n",
				ps.Pool, ps.Active, ps.Boards, ps.Routes, ps.Sheds)
		}
	}
	if st.Shed > 0 {
		fmt.Printf("shed=%d (admission control refused with 429 + Retry-After)\n", st.Shed)
	}
	if st.Governor != nil && st.Governor.Enabled {
		// Rails are back at nominal after Close, so only the cumulative
		// energy saving is meaningful here.
		fmt.Printf("governor: probes=%d climbs=%d descents=%d saved=%.1f J\n",
			st.Governor.Probes, st.Governor.Climbs, st.Governor.Descents, st.Governor.SavedJ)
	}
	if st.ECC != nil && (st.ECC.Enabled || st.ECC.Total() > 0) {
		fmt.Printf("ecc: corrected=%d uncorrectable=%d silent=%d scrubs=%d (repaired %d words)\n",
			st.ECC.Corrected, st.ECC.Detected, st.ECC.Silent,
			st.ECC.ScrubPasses, st.ECC.ScrubCorrected+st.ECC.ScrubReloaded)
	}
}
