// Command pmbus-mon is the PMBus monitor/regulation tool for the
// simulated ZCU102 — the role the Maxim PowerTool adapter plays in the
// paper's setup (§3.3.2). It can dump all 26 rails, read telemetry from
// one rail, command a new voltage, and drive the fan.
//
// Usage:
//
//	pmbus-mon dump    [-sample 1]
//	pmbus-mon read    [-sample 1] -addr 0x13
//	pmbus-mon set     [-sample 1] -addr 0x13 -mv 570
//	pmbus-mon fan     [-sample 1] -rpm 1500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"fpgauv/internal/board"
	"fpgauv/internal/pmbus"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pmbus-mon <dump|read|set|fan> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dump":
		err = cmdDump(os.Args[2:])
	case "read":
		err = cmdRead(os.Args[2:])
	case "set":
		err = cmdSet(os.Args[2:])
	case "fan":
		err = cmdFan(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "usage: pmbus-mon <dump|read|set|fan> [flags]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmbus-mon:", err)
		os.Exit(1)
	}
}

func newBoard(sample int) (*board.ZCU102, error) {
	b, err := board.New(board.SampleID(sample))
	if err != nil {
		return nil, err
	}
	// A representative PL load so telemetry is non-trivial.
	b.SetWorkload(board.Workload{UtilScale: 1})
	return b, nil
}

func parseAddr(s string) (uint8, error) {
	v, err := strconv.ParseUint(s, 0, 8)
	if err != nil {
		return 0, fmt.Errorf("bad address %q: %w", s, err)
	}
	return uint8(v), nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	sample := fs.Int("sample", 1, "board sample 0..2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := newBoard(*sample)
	if err != nil {
		return err
	}
	fmt.Printf("%s PMBus rails:\n", b.Sample())
	for _, reg := range b.Regulators() {
		fmt.Printf("%s:\n", reg.Name())
		for _, rail := range reg.Rails() {
			a := pmbus.NewAdapter(b.Bus(), rail.Address())
			mv, err := a.VoltageMV()
			if err != nil {
				return err
			}
			w, err := a.PowerW()
			if err != nil {
				return err
			}
			fmt.Printf("  0x%02X %-10s %8.1f mV %9.4f W\n", rail.Address(), rail.Name(), mv, w)
		}
	}
	return nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	sample := fs.Int("sample", 1, "board sample 0..2")
	addr := fs.String("addr", "0x13", "rail PMBus address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := newBoard(*sample)
	if err != nil {
		return err
	}
	a8, err := parseAddr(*addr)
	if err != nil {
		return err
	}
	a := pmbus.NewAdapter(b.Bus(), a8)
	mv, err := a.VoltageMV()
	if err != nil {
		return err
	}
	w, err := a.PowerW()
	if err != nil {
		return err
	}
	i, err := a.CurrentA()
	if err != nil {
		return err
	}
	temp, err := a.TemperatureC()
	if err != nil {
		return err
	}
	fmt.Printf("0x%02X: VOUT=%.1f mV  POUT=%.4f W  IOUT=%.3f A  TEMP=%.1f C\n", a8, mv, w, i, temp)
	return nil
}

func cmdSet(args []string) error {
	fs := flag.NewFlagSet("set", flag.ExitOnError)
	sample := fs.Int("sample", 1, "board sample 0..2")
	addr := fs.String("addr", "0x13", "rail PMBus address")
	mv := fs.Float64("mv", 850, "target millivolts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := newBoard(*sample)
	if err != nil {
		return err
	}
	a8, err := parseAddr(*addr)
	if err != nil {
		return err
	}
	a := pmbus.NewAdapter(b.Bus(), a8)
	if err := a.SetVoltageMV(*mv); err != nil {
		return err
	}
	got, err := a.VoltageMV()
	if err != nil {
		return err
	}
	w, err := a.PowerW()
	if err != nil {
		return err
	}
	fmt.Printf("0x%02X: VOUT_COMMAND %.1f mV -> READ_VOUT %.1f mV, POUT %.4f W\n", a8, *mv, got, w)
	if b.Die().Crashed(got, b.DieTempC(), false) && a8 == board.AddrVCCINT {
		fmt.Println("warning: below Vcrash — a running design would hang at this level")
	}
	return nil
}

func cmdFan(args []string) error {
	fs := flag.NewFlagSet("fan", flag.ExitOnError)
	sample := fs.Int("sample", 1, "board sample 0..2")
	rpm := fs.Float64("rpm", 5000, "fan speed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := newBoard(*sample)
	if err != nil {
		return err
	}
	a := pmbus.NewAdapter(b.Bus(), board.AddrVCC3V3)
	if err := a.SetFanRPM(*rpm); err != nil {
		return err
	}
	got, err := a.FanRPM()
	if err != nil {
		return err
	}
	fmt.Printf("fan: %.0f rpm, die temperature %.1f C at the present load\n", got, b.DieTempC())
	return nil
}
