// Command uvolt drives the undervolting methodology on the simulated
// ZCU102 platform: region detection, voltage sweeps, frequency
// underscaling and single-experiment regeneration.
//
// Usage:
//
//	uvolt regions   [-bench VGGNet] [-sample 1] [-repeats 3] [-images 32]
//	uvolt sweep     [-bench VGGNet] [-sample 1] [-step 10]
//	uvolt freq      [-bench VGGNet] [-sample 1] [-mv 555]
//	uvolt exp       -id table1|power|fig3..fig10|table2|variability
//	uvolt list
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgauv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "regions":
		err = cmdRegions(args)
	case "sweep":
		err = cmdSweep(args)
	case "freq":
		err = cmdFreq(args)
	case "exp":
		err = cmdExp(args)
	case "list":
		err = cmdList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uvolt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: uvolt <regions|sweep|freq|exp|list> [flags]
  regions  detect Vmin/Vcrash for a benchmark on a board sample
  sweep    run the downward voltage sweep and print per-point metrics
  freq     search the maximum fault-free DPU clock at a voltage (Table 2)
  exp      regenerate one of the paper's tables/figures
  list     list benchmarks and experiment ids`)
}

// commonFlags returns a flag set with the shared deployment options.
func commonFlags(name string) (*flag.FlagSet, *string, *int, *int, *int, *bool) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	bench := fs.String("bench", "VGGNet", "benchmark name (see 'uvolt list')")
	sample := fs.Int("sample", 1, "board sample 0..2")
	repeats := fs.Int("repeats", 3, "repeats per measurement")
	images := fs.Int("images", 32, "evaluation images")
	tiny := fs.Bool("tiny", true, "use the tiny model preset")
	return fs, bench, sample, repeats, images, tiny
}

func deploy(bench string, sample, images int, tiny bool) (*fpgauv.Platform, *fpgauv.Deployment, error) {
	p, err := fpgauv.NewPlatform(sample)
	if err != nil {
		return nil, nil, err
	}
	d, err := p.Deploy(bench, fpgauv.DeployOptions{Tiny: tiny, Images: images})
	if err != nil {
		return nil, nil, err
	}
	return p, d, nil
}

func cmdRegions(args []string) error {
	fs, bench, sample, repeats, images, tiny := commonFlags("regions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, d, err := deploy(*bench, *sample, *images, *tiny)
	if err != nil {
		return err
	}
	reg, _, err := d.DetectRegions(*repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s: %s\n", p.Sample(), *bench, reg)
	return nil
}

func cmdSweep(args []string) error {
	fs, bench, sample, repeats, images, tiny := commonFlags("sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, d, err := deploy(*bench, *sample, *images, *tiny)
	if err != nil {
		return err
	}
	points, err := d.Sweep(*repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-12s %-10s %-9s %-10s\n", "V(mV)", "Accuracy(%)", "Power(W)", "GOPs/W", "Faults")
	for _, pt := range points {
		if pt.Crashed {
			fmt.Printf("%-10.0f CRASH\n", pt.VCCINTmV)
			break
		}
		fmt.Printf("%-10.0f %-12.1f %-10.2f %-9.1f %-10d\n",
			pt.VCCINTmV, pt.AccuracyPct, pt.PowerW, pt.GOPsPerW, pt.MACFaults)
	}
	return nil
}

func cmdFreq(args []string) error {
	fs, bench, sample, repeats, images, tiny := commonFlags("freq")
	mv := fs.Float64("mv", 555, "VCCINT level to search at")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, d, err := deploy(*bench, *sample, *images, *tiny)
	if err != nil {
		return err
	}
	res, err := d.FmaxSearch(*mv, *repeats)
	if err != nil {
		return err
	}
	if res.FmaxMHz == 0 {
		fmt.Printf("%s %s at %.0f mV: board crashes (below Vcrash)\n", p.Sample(), *bench, *mv)
		return nil
	}
	fmt.Printf("%s %s at %.0f mV: Fmax = %.0f MHz (no accuracy loss)\n",
		p.Sample(), *bench, *mv, res.FmaxMHz)
	return nil
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	id := fs.String("id", "", "experiment id (see 'uvolt list')")
	images := fs.Int("images", 24, "evaluation images")
	repeats := fs.Int("repeats", 3, "repeats per measurement")
	small := fs.Bool("small", false, "use the Small model preset (slower, the repro default)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	opts := fpgauv.ExperimentOptions{Images: *images, Repeats: *repeats}
	if *small {
		opts.Preset = 1 // models.Small
	}
	tab, err := fpgauv.RunExperiment(*id, opts)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(tab.CSV())
		return nil
	}
	fmt.Print(tab.Render())
	return nil
}

func cmdList() error {
	fmt.Println("benchmarks:")
	for _, b := range fpgauv.Benchmarks() {
		fmt.Println("  ", b)
	}
	fmt.Println("experiments:")
	for _, id := range fpgauv.ExperimentIDs() {
		fmt.Println("  ", id)
	}
	return nil
}
