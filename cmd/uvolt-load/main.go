// Command uvolt-load is an open-loop load generator for a running
// uvolt-serve instance. It offers classify traffic at a fixed rate
// regardless of how the service keeps up — the open loop is what makes
// saturation visible: a backed-up service shows up as rising tail
// latency and 429 sheds instead of silently slowing the generator.
//
// Usage:
//
//	uvolt-load [-addr http://localhost:8090] [-rate 50] [-n 500]
//	           [-warmup 20] [-timeout 10s] [-pin] [-json results.json]
//
// With -pin, each shot carries a pinned seed (its sequence number), so
// against a cluster every shot exercises rendezvous affinity routing
// and bypasses server-side batching; without it, shots ride the
// batcher. With -json, a machine-readable result summary (counts,
// rates, latency percentiles in seconds) is written to the named file
// alongside the text report, for CI threshold checks and dashboards.
// Exit status is 1 when any shot fails outright (sheds are an expected
// outcome, not a failure).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpgauv/internal/load"
)

// jsonResult is the -json results file schema. Latencies are seconds so
// downstream tooling never parses duration strings.
type jsonResult struct {
	Sent       int     `json:"sent"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	OfferedRPS float64 `json:"offered_rps"`
	ServedRPS  float64 `json:"served_rps"`
	ShedRate   float64 `json:"shed_rate"`
	P50Sec     float64 `json:"p50_seconds"`
	P90Sec     float64 `json:"p90_seconds"`
	P99Sec     float64 `json:"p99_seconds"`
}

func writeJSONResult(path string, res load.Result) error {
	out := jsonResult{
		Sent: res.Sent, Served: res.Served, Shed: res.Shed, Failed: res.Failed,
		ElapsedSec: res.Elapsed.Seconds(),
		OfferedRPS: res.OfferedRPS, ServedRPS: res.ServedRPS, ShedRate: res.ShedRate,
		P50Sec: res.P50.Seconds(), P90Sec: res.P90.Seconds(), P99Sec: res.P99.Seconds(),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	addr := flag.String("addr", "http://localhost:8090", "base URL of the uvolt-serve instance")
	rate := flag.Float64("rate", 50, "offered load in requests per second")
	n := flag.Int("n", 500, "total requests to fire")
	warmup := flag.Int("warmup", 20, "leading shots excluded from latency percentiles")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request budget")
	pin := flag.Bool("pin", false, "pin each shot's seed (exercises affinity routing, bypasses batching)")
	jsonPath := flag.String("json", "", "also write a machine-readable result summary to this file")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	client := &http.Client{}
	url := strings.TrimRight(*addr, "/") + "/v1/classify"
	shot := func(ctx context.Context, seq int) error {
		body := `{}`
		if *pin {
			body = fmt.Sprintf(`{"seed":%d}`, seq+1)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			return fmt.Errorf("%w (Retry-After %s)", load.ErrShed, resp.Header.Get("Retry-After"))
		default:
			return fmt.Errorf("status %d", resp.StatusCode)
		}
	}

	fmt.Fprintf(os.Stderr, "uvolt-load: offering %.1f req/s, %d requests against %s\n", *rate, *n, *addr)
	res := load.Run(ctx, load.Options{
		Rate: *rate, Requests: *n, Warmup: *warmup, Timeout: *timeout,
	}, shot)

	fmt.Printf("sent=%d served=%d shed=%d failed=%d elapsed=%s\n",
		res.Sent, res.Served, res.Shed, res.Failed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("offered=%.1f req/s served=%.1f req/s shed_rate=%.3f\n",
		res.OfferedRPS, res.ServedRPS, res.ShedRate)
	fmt.Printf("latency p50=%s p90=%s p99=%s (from scheduled fire time)\n",
		res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	if *jsonPath != "" {
		if err := writeJSONResult(*jsonPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "uvolt-load: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "uvolt-load: wrote %s\n", *jsonPath)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}
