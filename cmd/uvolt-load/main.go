// Command uvolt-load is an open-loop load generator for a running
// uvolt-serve instance. It offers classify traffic at a fixed rate
// regardless of how the service keeps up — the open loop is what makes
// saturation visible: a backed-up service shows up as rising tail
// latency and 429 sheds instead of silently slowing the generator.
//
// Usage:
//
//	uvolt-load [-addr http://localhost:8090] [-rate 50] [-n 500]
//	           [-warmup 20] [-timeout 10s] [-pin]
//
// With -pin, each shot carries a pinned seed (its sequence number), so
// against a cluster every shot exercises rendezvous affinity routing
// and bypasses server-side batching; without it, shots ride the
// batcher. Exit status is 1 when any shot fails outright (sheds are an
// expected outcome, not a failure).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpgauv/internal/load"
)

func main() {
	addr := flag.String("addr", "http://localhost:8090", "base URL of the uvolt-serve instance")
	rate := flag.Float64("rate", 50, "offered load in requests per second")
	n := flag.Int("n", 500, "total requests to fire")
	warmup := flag.Int("warmup", 20, "leading shots excluded from latency percentiles")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request budget")
	pin := flag.Bool("pin", false, "pin each shot's seed (exercises affinity routing, bypasses batching)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	client := &http.Client{}
	url := strings.TrimRight(*addr, "/") + "/v1/classify"
	shot := func(ctx context.Context, seq int) error {
		body := `{}`
		if *pin {
			body = fmt.Sprintf(`{"seed":%d}`, seq+1)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			return fmt.Errorf("%w (Retry-After %s)", load.ErrShed, resp.Header.Get("Retry-After"))
		default:
			return fmt.Errorf("status %d", resp.StatusCode)
		}
	}

	fmt.Fprintf(os.Stderr, "uvolt-load: offering %.1f req/s, %d requests against %s\n", *rate, *n, *addr)
	res := load.Run(ctx, load.Options{
		Rate: *rate, Requests: *n, Warmup: *warmup, Timeout: *timeout,
	}, shot)

	fmt.Printf("sent=%d served=%d shed=%d failed=%d elapsed=%s\n",
		res.Sent, res.Served, res.Shed, res.Failed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("offered=%.1f req/s served=%.1f req/s shed_rate=%.3f\n",
		res.OfferedRPS, res.ServedRPS, res.ShedRate)
	fmt.Printf("latency p50=%s p90=%s p99=%s (from scheduled fire time)\n",
		res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	if res.Failed > 0 {
		os.Exit(1)
	}
}
