// Command uvolt-repro regenerates every table and figure of the paper's
// evaluation section in one run and writes the report to stdout (or a
// file with -o). EXPERIMENTS.md records one such run against the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fpgauv"
)

func main() {
	out := flag.String("o", "", "write the report to this file instead of stdout")
	images := flag.Int("images", 48, "evaluation images per benchmark")
	repeats := flag.Int("repeats", 5, "repeats per measurement (paper: 10)")
	tiny := flag.Bool("tiny", false, "use the tiny model preset (faster)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uvolt-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := fpgauv.ExperimentOptions{Images: *images, Repeats: *repeats}
	if *tiny {
		opts.Preset = 0 // models.Tiny
	} else {
		opts.Preset = 1 // models.Small
	}

	fmt.Fprintf(w, "fpgauv reproduction report (preset=%v images=%d repeats=%d)\n",
		opts.Preset, *images, *repeats)
	fmt.Fprintf(w, "paper: Salami et al., DSN 2020 — reduced-voltage FPGA CNN acceleration\n\n")
	start := time.Now()
	if err := fpgauv.RunAllExperiments(opts, w); err != nil {
		fmt.Fprintln(os.Stderr, "uvolt-repro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "report generated in %s\n", time.Since(start).Round(time.Millisecond))
}
