package fpgauv

import (
	"fmt"
	"io"

	"fpgauv/internal/board"
	"fpgauv/internal/core"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/exp"
	"fpgauv/internal/models"
	"fpgauv/internal/pmbus"
	"fpgauv/internal/silicon"
)

// Re-exported result types (aliases keep the internal packages as the
// single source of truth while making the types usable by downstream
// code).
type (
	// SweepPoint is one voltage-sweep measurement.
	SweepPoint = core.Point
	// Regions is the guardband/critical/crash characterization.
	Regions = core.Regions
	// FmaxResult is one frequency-underscaling search outcome.
	FmaxResult = core.FmaxResult
	// Table is a rendered experiment artifact.
	Table = exp.Table
	// ExperimentOptions scales experiment protocols.
	ExperimentOptions = exp.Options
)

// Nominal operating constants of the simulated ZCU102.
const (
	VnomMV     = silicon.VnomMV
	DPUFreqMHz = silicon.DPUFreqMHz
)

// Benchmarks lists the five Table 1 benchmark names.
func Benchmarks() []string { return models.Names() }

// Platform is one simulated ZCU102 board sample with its DPU runtime.
type Platform struct {
	brd *board.ZCU102
	rt  *dnndk.Runtime
}

// NewPlatform assembles board sample (0, 1 or 2 — the paper's three
// "identical" platforms) with three B4096 DPU cores.
func NewPlatform(sample int) (*Platform, error) {
	if sample < 0 || sample > 2 {
		return nil, fmt.Errorf("fpgauv: sample must be 0..2, got %d", sample)
	}
	brd, err := board.New(board.SampleID(sample))
	if err != nil {
		return nil, err
	}
	rt, err := dnndk.NewRuntime(brd, 3)
	if err != nil {
		return nil, err
	}
	return &Platform{brd: brd, rt: rt}, nil
}

// Sample returns the platform's name ("platform-A"...).
func (p *Platform) Sample() string { return p.brd.Sample().String() }

// vccint returns the PMBus adapter for the VCCINT rail.
func (p *Platform) vccint() *pmbus.Adapter {
	return pmbus.NewAdapter(p.brd.Bus(), board.AddrVCCINT)
}

// SetVCCINTmV underscales (or restores) the VCCINT rail via PMBus.
func (p *Platform) SetVCCINTmV(mv float64) error { return p.vccint().SetVoltageMV(mv) }

// VCCINTmV reads the present VCCINT level.
func (p *Platform) VCCINTmV() float64 { return p.brd.VCCINTmV() }

// SetVCCBRAMmV underscales the separate BRAM rail (kept nominal in the
// paper's main experiments).
func (p *Platform) SetVCCBRAMmV(mv float64) error {
	return pmbus.NewAdapter(p.brd.Bus(), board.AddrVCCBRAM).SetVoltageMV(mv)
}

// SetFrequencyMHz sets the DPU clock (the §5 frequency-underscaling knob).
func (p *Platform) SetFrequencyMHz(f float64) error { return p.brd.SetFrequencyMHz(f) }

// PowerW returns the present on-chip power: total, VCCINT and VCCBRAM.
func (p *Platform) PowerW() (total, vccint, vccbram float64) {
	b := p.brd.PowerBreakdown()
	return b.TotalW, b.VCCINTW, b.VCCBRAMW
}

// DieTempC returns the present die temperature.
func (p *Platform) DieTempC() float64 { return p.brd.DieTempC() }

// HoldTemperatureC pins the die temperature within the fan-reachable
// [34, 52] °C range (the §7 protocol) and returns the held value.
func (p *Platform) HoldTemperatureC(t float64) float64 {
	return p.brd.Thermal().HoldTemperature(t)
}

// ReleaseTemperature returns to open-loop fan control.
func (p *Platform) ReleaseTemperature() { p.brd.Thermal().Release() }

// Hung reports whether the board crashed (VCCINT below Vcrash).
func (p *Platform) Hung() bool { return p.brd.Hung() }

// Reboot power-cycles the board, restoring nominal rails and clock.
func (p *Platform) Reboot() { p.brd.Reboot() }

// Board exposes the underlying board model for advanced in-module use.
func (p *Platform) Board() *board.ZCU102 { return p.brd }

// Runtime exposes the DNNDK runtime for advanced in-module use.
func (p *Platform) Runtime() *dnndk.Runtime { return p.rt }

// DeployOptions configures Deploy.
type DeployOptions struct {
	// Tiny selects the test-scale model zoo (default: the Small preset).
	Tiny bool
	// Bits is the quantization precision (default 8; the paper's §6.1
	// evaluates 8..4).
	Bits int
	// Sparsity applies DECENT magnitude pruning before quantization
	// (§6.2).
	Sparsity float64
	// PruneBlocks selects block-structured pruning matched to the
	// sparse backend's skip geometry (whole skip blocks are zeroed, so
	// the realized block sparsity equals the requested fraction).
	PruneBlocks bool
	// Backend selects the compute backend: "" or "auto" picks per
	// kernel by realized block sparsity; "dense" / "sparse" force one.
	Backend string
	// Images is the evaluation-set size (default 64).
	Images int
	// Seed derives the dataset and label planting (default 1).
	Seed int64
}

// Deployment is a benchmark compiled, loaded and labeled on a platform.
type Deployment struct {
	p     *Platform
	bench *models.Benchmark
	task  *dnndk.Task
	ds    *models.Dataset
	seed  int64
}

// Deploy quantizes and loads one of the Table 1 benchmarks and plants
// ground-truth labels so the fault-free accuracy equals the paper's
// "our design @Vnom" value.
func (p *Platform) Deploy(benchmark string, opts DeployOptions) (*Deployment, error) {
	dep, err := dnndk.DeployBenchmark(p.rt, benchmark, dnndk.DeployOptions{
		Tiny:        opts.Tiny,
		Bits:        opts.Bits,
		Sparsity:    opts.Sparsity,
		PruneBlocks: opts.PruneBlocks,
		Backend:     opts.Backend,
		Images:      opts.Images,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Deployment{p: p, bench: dep.Bench, task: dep.Task, ds: dep.Ds, seed: dep.Seed}, nil
}

// Benchmark returns the deployment's benchmark name.
func (d *Deployment) Benchmark() string { return d.bench.Name }

// GOp returns giga-operations per inference.
func (d *Deployment) GOp() float64 { return d.bench.GOp() }

// ClassifyStats summarizes one dataset pass.
type ClassifyStats struct {
	AccuracyPct float64
	MACFaults   int64
	BRAMFaults  int64
}

// Classify runs the evaluation set at the present operating point.
func (d *Deployment) Classify() (ClassifyStats, error) {
	res, err := d.task.Classify(d.ds, newRng(d.seed))
	if err != nil {
		return ClassifyStats{}, err
	}
	return ClassifyStats{
		AccuracyPct: res.AccuracyPct,
		MACFaults:   res.MACFaults,
		BRAMFaults:  res.BRAMFaults,
	}, nil
}

// ProfileStats reports throughput and efficiency at the present point.
type ProfileStats struct {
	GOPs     float64
	PowerW   float64
	GOPsPerW float64
}

// Profile measures the deployment at the present operating point.
func (d *Deployment) Profile() ProfileStats {
	pr := d.task.Profile()
	return ProfileStats{GOPs: pr.GOPs, PowerW: pr.PowerW, GOPsPerW: pr.GOPsPerW}
}

// campaign builds the core campaign for this deployment.
func (d *Deployment) campaign(repeats int) *core.Campaign {
	c := core.NewCampaign(d.task, d.ds)
	if repeats > 0 {
		c.Config.Repeats = repeats
	}
	c.Config.Seed = d.seed
	return c
}

// Sweep runs the downward voltage sweep protocol (repeats per point;
// the paper uses 10) and returns the per-voltage measurements ending at
// the crash point. The board is rebooted afterwards.
func (d *Deployment) Sweep(repeats int) ([]SweepPoint, error) {
	return d.campaign(repeats).Run()
}

// DetectRegions characterizes Vmin/Vcrash for this deployment.
func (d *Deployment) DetectRegions(repeats int) (Regions, []SweepPoint, error) {
	c := d.campaign(repeats)
	c.Config.VStartMV = 620
	return c.DetectRegions()
}

// FmaxSearch finds the maximum fault-free DPU clock at the given VCCINT
// level on the default 25 MHz grid (§5).
func (d *Deployment) FmaxSearch(vMV float64, repeats int) (FmaxResult, error) {
	return d.campaign(repeats).FmaxSearch(vMV, silicon.DefaultFmaxGridMHz())
}

// RunExperiment regenerates one of the paper's tables/figures by id
// (table1, power, fig3..fig10, table2, variability).
func RunExperiment(id string, opts ExperimentOptions) (*Table, error) {
	g, err := exp.GeneratorByID(id)
	if err != nil {
		return nil, err
	}
	return g.Run(opts)
}

// ExperimentIDs lists the regenerable artifacts in paper order.
func ExperimentIDs() []string {
	gens := exp.Generators()
	ids := make([]string, len(gens))
	for i, g := range gens {
		ids[i] = g.ID
	}
	return ids
}

// RunAllExperiments writes every regenerated table/figure to w.
func RunAllExperiments(opts ExperimentOptions, w io.Writer) error {
	return exp.RunAll(opts, w)
}
