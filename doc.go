// Package fpgauv is a full-system reproduction, in pure Go, of
// "An Experimental Study of Reduced-Voltage Operation in Modern FPGAs for
// Neural Network Acceleration" (Salami et al., DSN 2020).
//
// The paper is a hardware measurement study: three Xilinx ZCU102 boards,
// the DNNDK/DPU CNN stack, and PMBus-driven underscaling of the VCCINT
// rail. This library substitutes the hardware with a calibrated platform
// simulator (silicon timing/fault model, PMBus power tree, thermal model,
// DPU accelerator model, INT8..INT4 CNN inference) and exposes the
// paper's experimental methodology as a reusable API:
//
//	p, _ := fpgauv.NewPlatform(1)             // ZCU102 sample B
//	d, _ := p.Deploy("VGGNet", fpgauv.DeployOptions{})
//	_ = p.SetVCCINTmV(570)                    // eliminate the guardband
//	stats, _ := d.Classify()                  // still 86% accurate
//	prof := d.Profile()                       // ≈2.6x GOPs/W vs nominal
//
// Every table and figure of the paper's evaluation can be regenerated
// with RunExperiment or the cmd/uvolt-repro binary; see DESIGN.md for the
// substitution rationale and EXPERIMENTS.md for paper-vs-measured
// results.
package fpgauv
