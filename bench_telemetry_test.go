package fpgauv_test

import (
	"context"
	"testing"
	"time"

	"fpgauv"
)

// BenchmarkTelemetrySample measures one full-pool telemetry sample —
// every board plus the pool aggregate, twelve series each — on a hot
// 3-board fleet. Run with -benchmem: the contract is 0 allocs/op, so
// the sampler can run at tight intervals forever without GC pressure.
func BenchmarkTelemetrySample(b *testing.B) {
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards:      3,
		Tiny:        true,
		Images:      8,
		CharRepeats: 1,
		Telemetry:   fpgauv.TelemetryConfig{Interval: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	pool.SampleTelemetry() // prime counter baselines
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.SampleTelemetry()
	}
}

// BenchmarkDigestIngest measures one latency observation into the
// log-bucketed quantile digest — the per-request cost added to every
// served endpoint. Contract: lock-free, 0 allocs/op.
func BenchmarkDigestIngest(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		var d fpgauv.LatencyDigest
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Observe(0.0123)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		var d fpgauv.LatencyDigest
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				d.Observe(0.0123)
			}
		})
	})
}

// BenchmarkTelemetryFleet compares serving throughput on a 3-board
// fleet with telemetry disabled against the same fleet sampled every
// millisecond (20x the production default rate) — the delta is the
// observability tax on the serving path, which must stay marginal.
func BenchmarkTelemetryFleet(b *testing.B) {
	const images = 16
	for _, sampled := range []bool{false, true} {
		name := "off"
		interval := time.Duration(-1)
		if sampled {
			name = "1ms"
			interval = time.Millisecond
		}
		b.Run(name, func(b *testing.B) {
			pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
				Boards:      3,
				Tiny:        true,
				Images:      images,
				CharRepeats: 1,
				Telemetry:   fpgauv.TelemetryConfig{Interval: interval},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := pool.Classify(context.Background(), fpgauv.FleetRequest{}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 && b.N > 0 {
				b.ReportMetric(float64(b.N)*images/secs, "images/s")
			}
		})
	}
}
