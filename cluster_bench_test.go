package fpgauv_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fpgauv"
	"fpgauv/internal/load"
)

// BenchmarkClusterOpenLoop measures the cluster router at and past
// saturation. A 2-pool x 2-board cluster is calibrated closed-loop for
// its service capacity, then offered open-loop classify traffic at 1x,
// 2x and 4x that capacity. The metrics pin the load-shedding contract:
// at 1x the shed rate stays near zero and p99 tracks the service time;
// past capacity the bounded queues turn overload into sheds (a rising
// shed_rate) instead of an unbounded p99 — the whole point of admission
// control over the seed's unbounded queues.
func BenchmarkClusterOpenLoop(b *testing.B) {
	cl, err := fpgauv.NewCluster(fpgauv.ClusterConfig{
		Pools: 2,
		Pool: fpgauv.FleetConfig{
			Boards: 2, Tiny: true, Images: 8, CharRepeats: 1,
			MaxQueue: 4, MonitorInterval: -1,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Closed-loop calibration: one worker per board, each with a single
	// outstanding request, measures the sustainable aggregate throughput
	// including router and scheduling overhead — the honest "capacity"
	// an open-loop 1x offering should be servable at.
	boards := len(cl.Status().Boards)
	const perWorker = 25
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < boards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := cl.Classify(ctx, fpgauv.FleetRequest{}); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.Failed() {
		return
	}
	capacity := float64(boards*perWorker) / time.Since(start).Seconds()
	b.Logf("calibrated: %d boards, capacity=%.0f req/s", boards, capacity)

	for _, mult := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("load%gx", mult), func(b *testing.B) {
			var res load.Result
			for i := 0; i < b.N; i++ {
				res = load.Run(ctx, load.Options{
					Rate:     capacity * mult,
					Requests: 200,
					Warmup:   20,
				}, func(ctx context.Context, seq int) error {
					_, err := cl.Classify(ctx, fpgauv.FleetRequest{})
					var sat fpgauv.SaturatedError
					if errors.As(err, &sat) {
						return fmt.Errorf("%w: %v", load.ErrShed, err)
					}
					return err
				})
			}
			b.ReportMetric(float64(res.P50.Microseconds())/1000, "p50_ms")
			b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99_ms")
			b.ReportMetric(res.ShedRate, "shed_rate")
			b.ReportMetric(res.ServedRPS, "served_rps")
			if res.Failed > 0 {
				b.Fatalf("%d shots failed outright (served=%d shed=%d)", res.Failed, res.Served, res.Shed)
			}
		})
	}
}
