package fpgauv

import "math/rand"

// newRng derives the deterministic fault-injection stream for a
// deployment seed.
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
}
