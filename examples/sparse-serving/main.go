// The prune→quantize→deploy pipeline end to end: block-structured
// magnitude pruning (paper §6.2) feeds the quantizer, which packs the
// surviving weights into the block-sparse BRAM image and compiles the
// kernel for the skip-zero GEMM backend. The pruned deployment serves
// faster at the same critical-region rail, keeps a smaller protected
// image (fewer SECDED scrub words), and reports both through the
// kernel metadata that /v1/fleet/status and the Prometheus exposition
// surface in a served fleet.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fpgauv"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
)

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		log.Fatal(err)
	}

	// The pruned configurations raise Vcrash by ~18 mV (the paper's
	// Fig. 8: pruned designs crash earlier), so operate above both
	// thresholds but still inside the critical region.
	if err := platform.SetVCCINTmV(565); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VGGNet at VCCINT = 565 mV (critical region, faults live)")
	fmt.Printf("%-14s %-9s %-10s %-13s %-11s %-9s\n",
		"deployment", "backend", "sparsity", "BRAM image", "images/s", "top-1(%)")

	var denseWords int
	for _, sparsity := range []float64{0, 0.5, 0.9} {
		qopts := dnndk.DefaultQuantizeOptions()
		qopts.Sparsity = sparsity
		qopts.PruneBlocks = sparsity > 0 // whole skip blocks, matched to the sparse engine
		kernel, err := dnndk.Quantize(bench, qopts)
		if err != nil {
			log.Fatal(err)
		}
		task, err := platform.Runtime().LoadKernel(kernel)
		if err != nil {
			log.Fatal(err)
		}
		ds := bench.MakeDataset(16, 1)
		if err := task.PlantLabels(ds, bench.TargetAccPct, 9); err != nil {
			log.Fatal(err)
		}

		// Weight image the ECC scrubber would protect: the compacted
		// packed image for sparse kernels, the dense image otherwise.
		words := 0
		for i := range kernel.Nodes {
			kn := &kernel.Nodes[i]
			switch {
			case kn.SW != nil:
				words += len(kn.SW.Packed.Data)
			case kn.WQ != nil:
				words += len(kn.WQ.Data)
			}
		}
		if sparsity == 0 {
			denseWords = words
		}

		scratch := dpu.NewScratch()
		rng := rand.New(rand.NewSource(2))
		const passes = 12
		var acc float64
		start := time.Now()
		for i := 0; i < passes; i++ {
			res, err := task.ClassifyWith(scratch, ds, rng)
			if err != nil {
				log.Fatal(err)
			}
			acc += res.AccuracyPct / passes
		}
		rate := float64(passes*ds.Len()) / time.Since(start).Seconds()

		name := "dense"
		if sparsity > 0 {
			name = fmt.Sprintf("pruned=%.2f", sparsity)
		}
		fmt.Printf("%-14s %-9s %-10.4f %-13s %-11.0f %-9.1f\n",
			name, kernel.BackendName(), kernel.Sparsity,
			fmt.Sprintf("%d (%.0f%%)", words, 100*float64(words)/float64(denseWords)),
			rate, acc)
		if err := task.Unload(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nAuto selection compiles for the sparse backend once realized")
	fmt.Println("block sparsity clears the threshold; the smaller packed image also")
	fmt.Println("means fewer SECDED scrub words, so an ECC-governed fleet settles")
	fmt.Println("its VCCBRAM rail at or below the dense deployment's.")
	fmt.Println("Serve it: uvolt-serve -prune-sparsity 0.5 -sparse-backend auto")
}
