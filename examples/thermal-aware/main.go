// Thermal-aware undervolting: the §7.3 policy. Inverse thermal
// dependence (ITD) means a hotter die suffers fewer undervolting faults
// at the same voltage, so running warm lets the accelerator hold a deeper
// undervolt with almost no accuracy loss — at a small static-power cost.
package main

import (
	"fmt"
	"log"

	"fpgauv"
)

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	deployment, err := platform.Deploy("GoogleNet", fpgauv.DeployOptions{Tiny: true, Images: 32})
	if err != nil {
		log.Fatal(err)
	}

	// A critical-region operating point: faulty at cold temperatures.
	const operatingMV = 562

	fmt.Printf("GoogleNet at VCCINT = %d mV across the fan-reachable temperature range\n\n", operatingMV)
	fmt.Printf("%-8s %-12s %-10s %-10s\n", "Temp(C)", "Accuracy(%)", "Faults", "Power(W)")

	type row struct {
		temp, acc, power float64
		faults           int64
	}
	var best row
	for _, temp := range []float64{34, 40, 46, 52} {
		platform.HoldTemperatureC(temp)
		if err := platform.SetVCCINTmV(operatingMV); err != nil {
			log.Fatal(err)
		}
		stats, err := deployment.Classify()
		if err != nil {
			log.Fatal(err)
		}
		prof := deployment.Profile()
		fmt.Printf("%-8.0f %-12.1f %-10d %-10.2f\n", temp, stats.AccuracyPct, stats.MACFaults, prof.PowerW)
		if stats.AccuracyPct > best.acc {
			best = row{temp: temp, acc: stats.AccuracyPct, power: prof.PowerW, faults: stats.MACFaults}
		}
	}

	fmt.Printf("\npolicy: hold %.0f C -> %.1f%% accuracy at %d mV (%.2f W)\n",
		best.temp, best.acc, operatingMV, best.power)
	fmt.Println("the healing comes from ITD: higher temperature shortens marginal path delays (§7.2)")
	platform.ReleaseTemperature()
}
