// Fleet telemetry: the observability loop the paper's margin story
// needs in production. A 2-board fleet serves classify traffic while
// the per-board time-series recorder samples rails, temperature, power
// and ECC rates into multi-resolution rings; then one board's margin is
// degraded in place (Vmin drift + a corrected-ECC ramp) until the
// health scorer flags it, and finally a crash is injected so the flight
// recorder retains a postmortem — journal tail, pre-crash telemetry
// window and the trace id that was on the board.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"fpgauv"
)

type historyPage struct {
	Board  string                  `json:"board"`
	Series string                  `json:"series"`
	Res    string                  `json:"res"`
	Points []fpgauv.TelemetryPoint `json:"points"`
}

type healthPage struct {
	Boards   []fpgauv.BoardHealth `json:"boards"`
	Degraded int                  `json:"degraded"`
	Watch    int                  `json:"watch"`
	SLO      fpgauv.SLOStatus     `json:"slo"`
}

type postmortemPage struct {
	Total       int64               `json:"total"`
	Postmortems []fpgauv.Postmortem `json:"postmortems"`
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("bringing up a 2-board fleet with 5ms telemetry sampling...")
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards: 2, Tiny: true, Images: 16,
		Telemetry: fpgauv.TelemetryConfig{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := fpgauv.NewServer(pool, fpgauv.ServeConfig{Trace: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	defer pool.Close()

	// Serve some traffic so the throughput/latency series have signal.
	fmt.Println("serving 6 classify requests...")
	for i := 0; i < 6; i++ {
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"seed":%d}`, i+1))))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	time.Sleep(50 * time.Millisecond) // let the sampler cover the burst

	// 1. Health before degradation: every board should grade ok. This
	// also tells us the fleet's board ids.
	var before healthPage
	getJSON(ts.URL+"/v1/fleet/health", &before)
	fmt.Println("\nhealth before margin regression:")
	for _, b := range before.Boards {
		fmt.Printf("  %-10s %-8s score=%.1f margin=%.1fmV\n", b.Board, b.State, b.Score, b.MarginMV)
	}
	board0, board1 := before.Boards[0].Board, before.Boards[1].Board

	// 2. Time-series history: recent VCCINT samples for the first board.
	var hist historyPage
	getJSON(ts.URL+"/v1/fleet/history?board="+url.QueryEscape(board0)+"&series=vccint_mv&res=raw&n=5", &hist)
	fmt.Printf("\n%s %s (%s resolution), last %d points:\n", hist.Board, hist.Series, hist.Res, len(hist.Points))
	for _, p := range hist.Points {
		fmt.Printf("  t=%-14d last=%.1f mV  (min %.1f / max %.1f over %d samples)\n",
			p.AtNS, p.Last, p.Min, p.Max, p.Count)
	}

	// 3. Degrade the second board in place: bias its Vmin estimate up
	// 12 mV and ramp corrected-ECC errors — the margin-regression
	// signature the paper associates with aging and environmental drift.
	fmt.Printf("\ninjecting margin drift on %s (+12 mV Vmin, 200 corrected ECC/s)...\n", board1)
	if err := pool.InjectMarginDrift(1, 12, 200); err != nil {
		log.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // sampler accumulates the ramp, scorer re-grades

	var after healthPage
	getJSON(ts.URL+"/v1/fleet/health", &after)
	fmt.Println("health after margin regression:")
	for _, b := range after.Boards {
		fmt.Printf("  %-10s %-8s score=%.1f drift=%.1fmV ecc=%.0f/s reasons=%v\n",
			b.Board, b.State, b.Score, b.VminDriftMV, b.CorrectedRate, b.Reasons)
	}
	fmt.Printf("degraded boards: %d (router now deprioritizes them)\n", after.Degraded)

	// 4. Crash flight recorder: crash the first board under a traced
	// request and read back the retained postmortem.
	fmt.Printf("\ninjecting a crash on %s under a traced request...\n", board0)
	if err := pool.InjectFailures(0, 2); err != nil {
		log.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify",
		bytes.NewReader([]byte(`{"seed":7}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Uvolt-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	var pms postmortemPage
	getJSON(ts.URL+"/v1/fleet/postmortems?limit=3", &pms)
	fmt.Printf("flight recorder holds %d postmortem(s):\n", pms.Total)
	for _, pm := range pms.Postmortems {
		fmt.Printf("  #%d board=%s trace=%q vccint=%.1fmV temp=%.1fC crashes=%d\n",
			pm.ID, pm.Board, pm.TraceID, pm.VCCINTmV, pm.TempC, pm.Crashes)
		fmt.Printf("    journal tail: %d events, telemetry window: %d series\n",
			len(pm.Events), len(pm.Window))
		for i := len(pm.Events) - 3; i < len(pm.Events); i++ {
			if i < 0 {
				continue
			}
			ev := pm.Events[i]
			fmt.Printf("      [%d] %-10s %s\n", ev.Seq, ev.Kind, ev.Detail)
		}
	}
}
