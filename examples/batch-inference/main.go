// Batch inference: per-image requests end to end. Concurrent HTTP
// clients each POST one image to /v1/infer (half as JSON pixel arrays,
// half as base64 float32 buffers); the front-end coalesces them into
// shared micro-batches, the fleet fans each micro-batch across a board's
// DPU cores as one stacked GEMM per layer, and every caller gets back
// its own prediction with the batch size its image rode in on.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"fpgauv"
)

// inferReply mirrors the /v1/infer response body.
type inferReply struct {
	Pred      int     `json:"pred"`
	Board     string  `json:"board"`
	VCCINTmV  float64 `json:"vccint_mv"`
	BatchSize int     `json:"batch_size"`
}

func main() {
	t0 := time.Now()
	fmt.Println("bringing up a 3-board fleet (characterizing Vmin/Vcrash per sample)...")
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards: 3,
		Tiny:   true,
		Images: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	shape := pool.InputShape()
	fmt.Printf("fleet ready in %s, serving %s (input %dx%dx%d CHW)\n\n",
		time.Since(t0).Round(time.Millisecond), pool.Benchmark(), shape.C, shape.H, shape.W)

	srv := fpgauv.NewServer(pool, fpgauv.ServeConfig{
		BatchImages: 8,
		BatchWindow: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// 48 concurrent single-image clients. Each generates its own image;
	// the coalescer merges strangers' submissions into micro-batches.
	const clients = 48
	pixels := shape.C * shape.H * shape.W
	var wg sync.WaitGroup
	var mu sync.Mutex
	preds := make(map[int]int)
	batchSizes := make(map[int]int)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			img := make([]float32, pixels)
			for p := range img {
				img[p] = float32(rng.NormFloat64())
			}
			var body []byte
			if seed%2 == 0 {
				body, _ = json.Marshal(map[string]any{"pixels": img})
			} else {
				raw := make([]byte, 4*len(img))
				for p, v := range img {
					binary.LittleEndian.PutUint32(raw[p*4:], math.Float32bits(v))
				}
				body, _ = json.Marshal(map[string]any{"image_b64": base64.StdEncoding.EncodeToString(raw)})
			}
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				log.Fatalf("infer: %d %s", resp.StatusCode, msg)
			}
			var out inferReply
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			preds[out.Pred]++
			batchSizes[out.BatchSize]++
			mu.Unlock()
		}(int64(i + 1))
	}
	wg.Wait()

	st := pool.Status()
	fmt.Printf("%d images classified in %d inference jobs over %d micro-batches\n",
		st.InferImages, st.InferServed, st.InferMicroBatches)
	fmt.Print("batch sizes observed by callers: ")
	for size, n := range batchSizes {
		fmt.Printf("%dx[batch=%d] ", n, size)
	}
	fmt.Println()
	fmt.Print("prediction spread: ")
	for class, n := range preds {
		fmt.Printf("class%d:%d ", class, n)
	}
	fmt.Println()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nbatching metrics excerpt:")
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("uvolt_batch_size_bucket{kind=\"infer\"")) ||
			bytes.HasPrefix(line, []byte("uvolt_fleet_infer_")) ||
			bytes.HasPrefix(line, []byte("uvolt_infer_latency_seconds_count")) {
			fmt.Printf("  %s\n", line)
		}
	}
}
