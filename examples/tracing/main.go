// Request tracing: follow one /v1/infer request through the whole
// pipeline — HTTP decode, fleet queue, per-board execute attempts — while
// a board crashes mid-request. The span tree shows the failed attempts,
// the requeue, and the retry landing on different hardware; the fleet
// event journal replays the crash -> reboot -> redeploy -> requeue chain
// with per-board sequence numbers.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"fpgauv"
)

// span mirrors the /v1/trace/{id} span tree.
type span struct {
	Name      string  `json:"name"`
	StartNS   int64   `json:"start_ns"`
	DurNS     int64   `json:"dur_ns"`
	Board     string  `json:"board,omitempty"`
	Attempt   int32   `json:"attempt,omitempty"`
	Images    int32   `json:"images,omitempty"`
	VCCINTmV  float64 `json:"vccint_mv,omitempty"`
	MACFaults int64   `json:"mac_faults,omitempty"`
	Err       string  `json:"error,omitempty"`
	Children  []*span `json:"children,omitempty"`
}

type trace struct {
	TraceID string `json:"trace_id"`
	DurNS   int64  `json:"dur_ns"`
	Spans   int    `json:"spans"`
	Root    *span  `json:"root"`
}

type eventsPage struct {
	Events     []fpgauv.FleetEvent `json:"events"`
	NextCursor uint64              `json:"next_cursor"`
}

func main() {
	fmt.Println("bringing up a 2-board fleet (characterizing Vmin/Vcrash per sample)...")
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{Boards: 2, Tiny: true, Images: 16})
	if err != nil {
		log.Fatal(err)
	}
	shape := pool.InputShape()
	srv := fpgauv.NewServer(pool, fpgauv.ServeConfig{Trace: true, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Arm a double execute failure on board 0 and post single-image infer
	// requests until one is traced across a crash: the injection is only
	// consumed when the job lands on board 0, so retry until it does.
	rng := rand.New(rand.NewSource(1))
	img := make([]float32, shape.C*shape.H*shape.W)
	var tr trace
	for try := 1; ; try++ {
		if try > 50 {
			log.Fatal("no request landed on the injected board in 50 tries")
		}
		if err := pool.InjectFailures(0, 2); err != nil {
			log.Fatal(err)
		}
		for p := range img {
			img[p] = float32(rng.NormFloat64())
		}
		body, _ := json.Marshal(map[string]any{"pixels": img, "seed": 7})
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		id := resp.Header.Get("X-Uvolt-Trace")
		resp.Body.Close()

		resp, err = http.Get(ts.URL + "/v1/trace/" + id)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()

		failed, boards := 0, map[string]bool{}
		var walk func(*span)
		walk = func(s *span) {
			if s.Name == "execute" {
				boards[s.Board] = true
				if s.Err != "" {
					failed++
				}
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(tr.Root)
		if failed > 0 && len(boards) > 1 {
			fmt.Printf("try %d: request %s crashed a board mid-flight and finished elsewhere\n\n", try, tr.TraceID)
			break
		}
	}

	fmt.Printf("trace %s: %d spans, %.2f ms end to end\n", tr.TraceID, tr.Spans, float64(tr.DurNS)/1e6)
	var dump func(*span, int)
	dump = func(s *span, depth int) {
		line := fmt.Sprintf("%s%-10s %8.3f ms", strings.Repeat("  ", depth), s.Name, float64(s.DurNS)/1e6)
		if s.Board != "" {
			line += fmt.Sprintf("  board=%s attempt=%d", s.Board, s.Attempt)
		}
		if s.VCCINTmV > 0 {
			line += fmt.Sprintf(" VCCINT=%.0fmV", s.VCCINTmV)
		}
		if s.Err != "" {
			line += "  ERR=" + s.Err
		}
		fmt.Println(line)
		for _, c := range s.Children {
			dump(c, depth+1)
		}
	}
	dump(tr.Root, 1)

	// The journal replays the recovery the trace summarized: the crashed
	// board's own sequence numbers order crash, reboot, redeploy, requeue.
	resp, err := http.Get(ts.URL + "/v1/fleet/events")
	if err != nil {
		log.Fatal(err)
	}
	var page eventsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nfleet journal (%d events, next cursor %d):\n", len(page.Events), page.NextCursor)
	for _, ev := range page.Events {
		fmt.Printf("  seq=%-3d %-18s board=%-13s board_seq=%d %s\n",
			ev.Seq, ev.Kind, ev.Board, ev.BoardSeq, ev.Detail)
	}
}
