// Fault mitigation in the critical region (the paper's §9 future-work
// item): compare running unprotected at 560 mV against temporal
// redundancy (majority vote) and Razor-style detect-and-replay, trading
// performance for restored accuracy at full clock frequency.
package main

import (
	"fmt"
	"log"

	"fpgauv"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/mitigate"
	"fpgauv/internal/models"
)

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dnndk.Quantize(bench, dnndk.DefaultQuantizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	task, err := platform.Runtime().LoadKernel(kernel)
	if err != nil {
		log.Fatal(err)
	}
	ds := bench.MakeDataset(48, 21)
	if err := task.PlantLabels(ds, bench.TargetAccPct, 9); err != nil {
		log.Fatal(err)
	}

	// Operate deep in the critical region at the full 333 MHz clock.
	if err := platform.SetVCCINTmV(562); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VGGNet at VCCINT = 562 mV, 333 MHz (critical region)")
	fmt.Printf("%-26s %-14s %-14s %-10s\n", "strategy", "baseline(%)", "mitigated(%)", "perf cost")

	strategies := []mitigate.Strategy{
		mitigate.TemporalRedundancy{N: 3},
		mitigate.TemporalRedundancy{N: 5},
		mitigate.RazorReplay{Coverage: 0.90},
		mitigate.RazorReplay{Coverage: 0.99},
	}
	for i, s := range strategies {
		ev, err := mitigate.Evaluate(s, task, ds, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-14.1f %-14.1f %.2fx\n",
			ev.Strategy, ev.BaselinePct, ev.MitigatedPct, ev.PerfCost)
	}
	fmt.Println("\nRazor-style detection restores accuracy almost for free;")
	fmt.Println("temporal redundancy needs no hardware but costs N-fold throughput.")
}
