// Guardband explorer: characterize Vmin, Vcrash and the voltage regions
// for all three board samples (the paper's Fig. 3 + §4.4 variability
// analysis), showing the die-to-die process-variation spread.
package main

import (
	"fmt"
	"log"

	"fpgauv"
)

func main() {
	fmt.Println("Voltage-region characterization, GoogleNet, three ZCU102 samples")
	fmt.Println()

	var vmins, vcrashes []float64
	for sample := 0; sample < 3; sample++ {
		platform, err := fpgauv.NewPlatform(sample)
		if err != nil {
			log.Fatal(err)
		}
		deployment, err := platform.Deploy("GoogleNet", fpgauv.DeployOptions{Tiny: true, Images: 24})
		if err != nil {
			log.Fatal(err)
		}
		regions, _, err := deployment.DetectRegions(3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", platform.Sample(), regions)
		vmins = append(vmins, regions.VminMV)
		vcrashes = append(vcrashes, regions.VcrashMV)
	}

	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	fmt.Println()
	fmt.Printf("ΔVmin across samples:   %.0f mV (paper: 31 mV)\n", spread(vmins))
	fmt.Printf("ΔVcrash across samples: %.0f mV (paper: 18 mV)\n", spread(vcrashes))
}
