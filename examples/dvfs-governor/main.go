// DVFS governor: the paper's §9 future-work item implemented — a
// closed-loop controller that walks VCCINT to the deepest fault-free
// level under the current thermal conditions and re-settles when the
// environment changes. Run it to watch the governor exploit ITD headroom
// on a hot die and back off when the fan recovers.
package main

import (
	"fmt"
	"log"

	"fpgauv"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/dvfs"
	"fpgauv/internal/models"
)

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := models.New("GoogleNet", models.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := dnndk.Quantize(bench, dnndk.DefaultQuantizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	task, err := platform.Runtime().LoadKernel(kernel)
	if err != nil {
		log.Fatal(err)
	}
	governor := dvfs.New(task, bench, dvfs.DefaultConfig())

	show := func(phase string, settled float64) {
		total, _, _ := platform.PowerW()
		fmt.Printf("%-36s settled at %.0f mV, %.2f W, die %.1f C\n",
			phase, settled, total, platform.DieTempC())
	}

	// Phase 1: cold die (full fan).
	platform.HoldTemperatureC(34)
	v, err := governor.Settle()
	if err != nil {
		log.Fatal(err)
	}
	show("cold die (34 C):", v)

	// Phase 2: fan slows, die heats: ITD gives extra headroom.
	platform.HoldTemperatureC(52)
	v, err = governor.Adjust()
	if err != nil {
		log.Fatal(err)
	}
	show("hot die (52 C), ITD headroom:", v)

	// Phase 3: fan recovers; the governor backs off safely.
	platform.HoldTemperatureC(34)
	v, err = governor.Adjust()
	if err != nil {
		log.Fatal(err)
	}
	show("cooled again (34 C):", v)

	fmt.Println("\ngovernor trace:")
	for _, s := range governor.Trace() {
		fmt.Printf("  %6.0f mV  %4.1f C  %5d faults  %5.2f W  %s\n",
			s.VCCINTmV, s.TempC, s.Faults, s.PowerW, s.Action)
	}
}
