// BRAM ECC + scrubbing: the paper's mitigation path for reduced-voltage
// BRAM operation, run as an operations experiment. Two identical
// single-board fleets govern their VCCBRAM rail downward; one decodes
// BRAM reads through the built-in SECDED(72,64) codec, the other runs
// unprotected. The unprotected governor must stop at the raw fault
// onset — any flip corrupts a weight — while the ECC-aware governor
// tolerates corrected single-bit words (its leading indicator) and keeps
// descending until uncorrectable words or the corrected-rate budget
// bound it. The result: a strictly deeper VCCBRAM floor, lower power,
// same Top-1 accuracy — with the frame scrubber resetting persistent
// faults in the background.
package main

import (
	"context"
	"fmt"
	"log"

	"fpgauv"
)

func buildFleet(eccOn bool) (*fpgauv.Fleet, error) {
	return fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards:      1,
		Benchmark:   "VGGNet",
		Tiny:        true,
		Images:      16,
		CharRepeats: 1,
		ECC: fpgauv.ECCConfig{
			Enabled:       eccOn,
			ScrubInterval: -1, // scrub passes stepped explicitly below
		},
		Governor: fpgauv.GovernorConfig{
			Interval:        -1, // ticks stepped explicitly below
			StepMV:          2,
			MarginMV:        4,
			ProbeImages:     16,
			BRAM:            true,
			BRAMStepMV:      5,
			BRAMMarginMV:    5,
			CorrectedBudget: 64,
		},
	})
}

func main() {
	log.Println("ecc-serving: bringing up two governed boards (ECC on / ECC off)...")
	off, err := buildFleet(false)
	if err != nil {
		log.Fatal(err)
	}
	defer off.Close()
	on, err := buildFleet(true)
	if err != nil {
		log.Fatal(err)
	}
	defer on.Close()

	if err := off.HoldTemperatureC(0, 34); err != nil {
		log.Fatal(err)
	}
	if err := on.HoldTemperatureC(0, 34); err != nil {
		log.Fatal(err)
	}

	// Settle both governors (VCCINT and VCCBRAM loops), scrubbing the
	// protected image as a real deployment's background scrubber would.
	for i := 0; i < 220; i++ {
		off.GovernorTick()
		on.GovernorTick()
		if i%10 == 0 {
			on.ScrubNow()
		}
	}

	show := func(name string, p *fpgauv.Fleet) fpgauv.FleetResult {
		res, err := p.Classify(context.Background(), fpgauv.FleetRequest{Seed: 41})
		if err != nil {
			log.Fatal(err)
		}
		b := p.Status().Boards[0]
		fmt.Printf("  %-8s VCCINT %3.0f mV  VCCBRAM %3.0f mV  power %5.2f W  top-1 %5.2f%%  "+
			"corrected=%d uncorrectable=%d silent=%d\n",
			name, b.OperatingMV, b.OperatingBRAMMV, b.PowerW, res.AccuracyPct,
			res.ECC.Corrected, res.ECC.Detected, res.ECC.Silent)
		return res
	}

	fmt.Println("\ngoverned operating points after settling (same die, same workload):")
	resOff := show("ECC off", off)
	resOn := show("ECC on", on)

	offB, onB := off.Status().Boards[0], on.Status().Boards[0]
	fmt.Printf("\nECC moved the usable VCCBRAM floor down %.0f mV (%.0f -> %.0f) at equal accuracy (%.2f%% vs %.2f%%)\n",
		offB.OperatingBRAMMV-onB.OperatingBRAMMV, offB.OperatingBRAMMV, onB.OperatingBRAMMV,
		resOff.AccuracyPct, resOn.AccuracyPct)
	// The paper's §4.1 point stands in the model: >99.9% of on-chip
	// power is on VCCINT, so the BRAM rail saving is milliwatts — the
	// interesting result is the voltage floor itself.
	fmt.Printf("BRAM rail power: %.3f mW -> %.3f mW (%.1f%% of the rail's nominal draw saved)\n",
		offB.VCCBRAMW*1000, onB.VCCBRAMW*1000,
		(offB.VCCBRAMW-onB.VCCBRAMW)/0.009*100)

	st := on.Status()
	fmt.Printf("\nprotected fleet lifetime: %d corrected, %d uncorrectable, %d silent; "+
		"%d scrub passes repaired %d resident words\n",
		st.ECC.Corrected, st.ECC.Detected, st.ECC.Silent,
		st.ECC.ScrubPasses, st.ECC.ScrubCorrected+st.ECC.ScrubReloaded)
	fmt.Printf("bram governor: %d probes, %d descents, %d climbs, %d corrected words tolerated in canaries\n",
		st.Governor.BRAMProbes, st.Governor.BRAMDescents, st.Governor.BRAMClimbs,
		onB.Governor.BRAM.CanaryCorrected)
}
