// Edge inference under a power budget: the drone/battery scenario from
// the paper's introduction. Given a hard on-chip power cap, pick the
// deepest safe operating voltage — and, if the cap forces operation below
// Vmin, recover accuracy with frequency underscaling (§5) instead of
// accepting classification errors.
package main

import (
	"fmt"
	"log"

	"fpgauv"
)

// powerCapW is the platform power budget of the hypothetical edge device.
const powerCapW = 4.2

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	deployment, err := platform.Deploy("ResNet50", fpgauv.DeployOptions{Tiny: true, Images: 24})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("power cap: %.1f W\n\n", powerCapW)

	// Walk the voltage down until the cap is met, checking accuracy at
	// every step (the paper's sweep protocol).
	chosen := 0.0
	for v := fpgauv.VnomMV; v >= 540; v -= 5 {
		if err := platform.SetVCCINTmV(v); err != nil {
			log.Fatal(err)
		}
		prof := deployment.Profile()
		if prof.PowerW <= powerCapW {
			chosen = v
			fmt.Printf("first voltage under the cap: %.0f mV (%.2f W)\n", v, prof.PowerW)
			break
		}
	}
	if chosen == 0 {
		log.Fatal("power cap unreachable even at Vcrash")
	}

	stats, err := deployment.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy at %.0f mV, 333 MHz: %.1f%% (%d fault events)\n",
		chosen, stats.AccuracyPct, stats.MACFaults)

	if stats.MACFaults > 0 {
		// Below Vmin: recover with frequency underscaling.
		res, err := deployment.FmaxSearch(chosen, 3)
		if err != nil {
			log.Fatal(err)
		}
		if res.FmaxMHz == 0 {
			log.Fatal("no safe frequency at this voltage")
		}
		if err := platform.SetFrequencyMHz(res.FmaxMHz); err != nil {
			log.Fatal(err)
		}
		if err := platform.SetVCCINTmV(chosen); err != nil {
			log.Fatal(err)
		}
		stats, err = deployment.Classify()
		if err != nil {
			log.Fatal(err)
		}
		prof := deployment.Profile()
		fmt.Printf("after frequency underscaling to %.0f MHz: accuracy %.1f%%, %.2f W, %.1f GOPs/W\n",
			res.FmaxMHz, stats.AccuracyPct, prof.PowerW, prof.GOPsPerW)
		fmt.Println("(performance traded for error-free operation under the cap, per §5)")
	}
}
