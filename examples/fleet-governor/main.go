// Fleet-wide adaptive voltage governor: the paper's §9 future-work item
// (dynamic voltage adjustment tracking temperature, accuracy, power and
// performance) scaled from one board to a pool. Each board runs its own
// control loop: a canary probe under the member lock, descent into ITD
// headroom while the canary stays clean, climb when faults appear.
//
// The demo pins the three boards at different die temperatures and steps
// the governors until they settle: the boards diverge to sample- and
// temperature-specific operating points below their static startup
// points. Then the hot board's fan recovers and its governor walks the
// point back up — with serving traffic flowing the whole time.
package main

import (
	"context"
	"fmt"
	"log"

	"fpgauv"
)

func main() {
	log.Println("fleet-governor: bringing up 3 boards (characterizing Vmin/Vcrash)...")
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards:      3,
		Benchmark:   "VGGNet",
		Tiny:        true,
		Images:      16,
		CharRepeats: 1,
		Governor: fpgauv.GovernorConfig{
			Interval: -1, // stepped explicitly below
			StepMV:   2,
			MarginMV: 4,
			// A large canary sharpens the near-onset statistics: the
			// ITD heal factor (~4x) separates hot from cold only when
			// the expected fault count at the boundary level is O(1).
			ProbeImages:   96,
			ConfirmProbes: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	show := func(phase string) {
		st := pool.Status()
		fmt.Printf("\n%s\n", phase)
		fmt.Printf("  %-14s %8s %8s %8s %8s %8s %10s\n",
			"board", "temp", "static", "governed", "Vcrash", "power", "saved")
		for _, b := range st.Boards {
			fmt.Printf("  %-14s %6.1f C %6.0f mV %6.0f mV %6.0f mV %6.2f W %8.3f W\n",
				b.Board, b.TempC, b.Governor.BaselineMV, b.OperatingMV,
				b.VcrashMV, b.PowerW, b.Governor.SavedW)
		}
		fmt.Printf("  fleet: saved %.2f W, %d probes, %d descents, %d climbs\n",
			st.Governor.SavedW, st.Governor.Probes, st.Governor.Descents, st.Governor.Climbs)
	}

	serve := func(n int) {
		for i := 0; i < n; i++ {
			res, err := pool.Classify(context.Background(), fpgauv.FleetRequest{})
			if err != nil {
				log.Fatalf("classify: %v", err)
			}
			if res.MACFaults > 0 {
				fmt.Printf("  (served with %d MAC faults on %s — governor will climb)\n",
					res.MACFaults, res.Board)
			}
		}
	}

	show("phase 0 — static startup points (Vmin + margin, one per silicon sample):")

	// Phase 1: all dies at lab ambient. Each governor settles at its own
	// sample-specific point below the static one.
	if err := pool.HoldTemperatureC(-1, 34); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		pool.GovernorTick()
		serve(2)
	}
	show("phase 1 — governed at 34 C (sample-specific points below the static ones):")

	// Phase 2: board 1's fan slows and its die heats to 52 C. ITD heals
	// the marginal-path fault rates, so its canary stays clean deeper
	// and its governor diverges below its cold point.
	if err := pool.HoldTemperatureC(1, 52); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		pool.GovernorTick()
		serve(2)
	}
	show("phase 2 — board 1 at 52 C: ITD headroom lets it run deeper than its cold point:")

	// Phase 3: board 1's fan recovers. The marginal paths slow back
	// down, the canary (or served traffic) catches faults, and the
	// governor climbs back above the cold fault onset.
	if err := pool.HoldTemperatureC(1, 34); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		pool.GovernorTick()
		serve(2)
	}
	show("phase 3 — board 1 cooled to 34 C: its governor climbed back:")

	st := pool.Status()
	fmt.Printf("\nserved %d requests, %d MAC faults in served traffic, %d crashes, %d requeues\n",
		st.Served, st.MACFaults, st.Crashes, st.Requeues)
}
