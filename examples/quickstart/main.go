// Quickstart: deploy a CNN on the simulated ZCU102, eliminate the
// voltage guardband, and watch power-efficiency rise ~2.6x with zero
// accuracy cost — the paper's headline result in a dozen lines.
package main

import (
	"fmt"
	"log"

	"fpgauv"
)

func main() {
	platform, err := fpgauv.NewPlatform(1) // board sample B
	if err != nil {
		log.Fatal(err)
	}
	deployment, err := platform.Deploy("VGGNet", fpgauv.DeployOptions{Tiny: true, Images: 32})
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string) {
		stats, err := deployment.Classify()
		if err != nil {
			log.Fatal(err)
		}
		prof := deployment.Profile()
		fmt.Printf("%-28s VCCINT=%3.0f mV  accuracy=%5.1f%%  power=%6.2f W  GOPs/W=%6.1f\n",
			label, platform.VCCINTmV(), stats.AccuracyPct, prof.PowerW, prof.GOPsPerW)
	}

	report("nominal (with guardband):")

	// The entire 280 mV guardband is free power savings (paper Fig. 5).
	if err := platform.SetVCCINTmV(570); err != nil {
		log.Fatal(err)
	}
	report("guardband eliminated:")

	// 15 mV lower: inside the critical region — faults appear and
	// classification accuracy starts to pay for the extra efficiency.
	if err := platform.SetVCCINTmV(555); err != nil {
		log.Fatal(err)
	}
	report("critical region (555 mV):")
}
