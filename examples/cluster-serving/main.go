// Cluster serving: three pools of three reduced-voltage boards each —
// plus one warm spare pool — behind the rendezvous router, offered
// open-loop traffic past capacity. Bounded per-pool queues turn the
// overload into fast typed sheds (HTTP 429 + Retry-After at the
// front-end) instead of unbounded latency, and the aggregate backlog
// promotes the spare pool mid-run. The summary shows each pool's routed
// share, sheds and settled rails, plus the same picture through the
// HTTP status endpoint.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"fpgauv"
	"fpgauv/internal/load"
)

func main() {
	t0 := time.Now()
	fmt.Println("bringing up 3 pools x 3 boards + 1 warm spare pool...")
	cl, err := fpgauv.NewCluster(fpgauv.ClusterConfig{
		Pools:  3,
		Spares: 1,
		Pool: fpgauv.FleetConfig{
			Boards: 3, Tiny: true, Images: 8, CharRepeats: 1,
			MaxQueue: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster ready in %s (%d boards characterized)\n\n",
		time.Since(t0).Round(time.Millisecond), len(cl.Status().Boards))

	srv := fpgauv.NewServer(cl, fpgauv.ServeConfig{BatchWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Calibrate the sustainable rate closed-loop (one worker per active
	// board, one request outstanding each), then offer double it: the
	// open loop keeps firing on schedule while the cluster backs up, so
	// admission control has to earn its keep.
	ctx := context.Background()
	const workers, perWorker = 9, 20
	var cwg sync.WaitGroup
	cstart := time.Now()
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := cl.Classify(ctx, fpgauv.FleetRequest{}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	cwg.Wait()
	capacity := float64(workers*perWorker) / time.Since(cstart).Seconds()
	rate := capacity * 2
	fmt.Printf("calibrated capacity ~%.0f req/s; offering %.0f req/s open-loop (2x)...\n", capacity, rate)

	// The overload run drives the scheduler directly; a shed surfaces as
	// the typed SaturatedError carrying the drain estimate the HTTP
	// layer turns into Retry-After.
	var retryHint time.Duration
	var hintMu sync.Mutex
	res := load.Run(ctx, load.Options{Rate: rate, Requests: 400, Warmup: 20},
		func(ctx context.Context, seq int) error {
			_, err := cl.Classify(ctx, fpgauv.FleetRequest{})
			var sat fpgauv.SaturatedError
			if errors.As(err, &sat) {
				hintMu.Lock()
				retryHint = sat.RetryAfter
				hintMu.Unlock()
				return fmt.Errorf("%w: %v", load.ErrShed, err)
			}
			return err
		})

	fmt.Printf("\nsent=%d served=%d shed=%d failed=%d in %s\n",
		res.Sent, res.Served, res.Shed, res.Failed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("latency p50=%s p90=%s p99=%s  shed_rate=%.2f\n",
		res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), res.ShedRate)
	if retryHint > 0 {
		fmt.Printf("sheds carried a drain estimate (HTTP answers 429 with Retry-After: %s)\n", retryHint.Round(time.Millisecond))
	}

	st := cl.Status()
	c := st.Cluster
	fmt.Printf("\nrouter: routes=%d hops=%d terminal_sheds=%d spare_activations=%d\n",
		c.Routes, c.Hops, c.Sheds, c.SpareActivations)
	for i, ps := range c.Pools {
		role := "active"
		if !ps.Active {
			role = "spare (never promoted)"
		} else if i >= 3 {
			role = "promoted spare"
		}
		fmt.Printf("  %-6s %-22s boards=%d routes=%-4d sheds=%-4d depth=%d settled_rails=%d/%d power=%.1f W\n",
			ps.Pool, role, ps.Boards, ps.Routes, ps.Sheds, ps.Queued, ps.Quiescent, ps.Boards, ps.PowerW)
	}

	// The same picture through the front-end: the aggregate status
	// carries the cluster block, and ?pool=P narrows to one pool.
	resp, err := http.Get(ts.URL + "/v1/fleet/status?pool=0")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	line := string(body)
	if i := strings.Index(line, `"boards"`); i > 0 {
		line = line[:i] + "..."
	}
	fmt.Printf("\nGET /v1/fleet/status?pool=0 -> %s\n", line)
	fmt.Printf("\nevery request either served or shed with a retry hint; none hung on an unbounded queue\n")
}
