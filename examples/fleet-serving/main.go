// Fleet serving: three "identical" ZCU102 samples characterized and held
// inside their voltage guardbands, serving 120 concurrent classification
// requests over HTTP — while one board is deliberately crashed below
// Vcrash and the pool reboots, re-deploys and keeps every request alive.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"fpgauv"
)

func main() {
	t0 := time.Now()
	fmt.Println("characterizing three boards (Vmin/Vcrash sweep per silicon sample)...")
	pool, err := fpgauv.NewFleet(fpgauv.FleetConfig{
		Boards: 3,
		Tiny:   true,
		Images: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range pool.Status().Boards {
		fmt.Printf("  %-13s Vmin=%3.0f mV  Vcrash=%3.0f mV  -> serving at %3.0f mV (%3.0f mV under nominal)\n",
			b.Board, b.VminMV, b.VcrashMV, b.OperatingMV, fpgauv.VnomMV-b.OperatingMV)
	}
	fmt.Printf("fleet ready in %s\n\n", time.Since(t0).Round(time.Millisecond))

	// The HTTP front-end with request batching; httptest stands in for a
	// real listener so the example is self-contained.
	srv := fpgauv.NewServer(pool, fpgauv.ServeConfig{BatchSize: 8, BatchWindow: 2 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// 120 concurrent clients; halfway through, board 1 is driven below
	// Vcrash (a real crash: the FPGA stops responding and must be power
	// cycled, re-programmed and re-underscaled).
	const requests = 120
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	for i := 0; i < requests; i++ {
		if i == requests/2 {
			body, _ := json.Marshal(map[string]any{"board": 1, "mv": 500})
			resp, err := http.Post(ts.URL+"/v1/fleet/voltage", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			fmt.Println("!! injected crash: platform-B#1 driven to 500 mV (below Vcrash)")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Empty body = server-assigned seed, so concurrent requests
			// may coalesce into shared accelerator passes.
			resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{}")))
			if err != nil || resp.StatusCode != http.StatusOK {
				failed.Add(1)
				if resp != nil {
					resp.Body.Close()
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok.Add(1)
		}()
	}
	wg.Wait()

	st := pool.Status()
	fmt.Printf("\n%d requests: %d served, %d dropped\n", requests, ok.Load(), failed.Load())
	fmt.Printf("crash/reboot cycles: crashes=%d reboots=%d redeploys=%d requeues=%d\n",
		st.Crashes, st.Reboots, st.Redeploys, st.Requeues)
	for _, b := range st.Boards {
		fmt.Printf("  %-13s state=%-9s served=%3d  VCCINT=%3.0f mV  %6.1f GOPs/W\n",
			b.Board, b.State, b.Served, b.VCCINTmV, b.GOPsPerW)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nmetrics excerpt:")
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("uvolt_fleet_")) {
			fmt.Printf("  %s\n", line)
		}
	}
}
