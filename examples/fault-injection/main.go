// Fault characterization campaign: probe the raw voltage-dependent fault
// behaviour of the two PL resource classes the paper studies — DSP/LUT
// datapaths on VCCINT and BRAM cells on VCCBRAM — independent of any CNN,
// using the fabric fault model directly.
package main

import (
	"fmt"
	"log"

	"fpgauv"
	"fpgauv/internal/fabric"
)

func main() {
	platform, err := fpgauv.NewPlatform(1)
	if err != nil {
		log.Fatal(err)
	}
	fab := platform.Board().Fabric()

	fmt.Println("DSP/LUT datapath fault probability per MAC-cycle (VCCINT sweep, 333 MHz, 34 C)")
	fmt.Printf("%-12s %-14s\n", "VCCINT(mV)", "P(fault)")
	for v := 600.0; v >= 540; v -= 5 {
		p := fab.MACFaultProb(fabric.Conditions{
			VCCINTmV: v, VCCBRAMmV: 850, TempC: 34, FreqMHz: 333,
		})
		bar := ""
		for i := 0.0; i < p*2e5 && len(bar) < 48; i++ {
			bar += "#"
		}
		fmt.Printf("%-12.0f %-14.3g %s\n", v, p, bar)
	}

	fmt.Println("\nBRAM cell bit-flip probability per read (VCCBRAM sweep, VCCINT nominal)")
	fmt.Printf("%-12s %-14s\n", "VCCBRAM(mV)", "P(bit flip)")
	for v := 580.0; v >= 500; v -= 10 {
		p := fab.BRAMBitFaultProb(fabric.Conditions{
			VCCINTmV: 850, VCCBRAMmV: v, TempC: 34,
		})
		fmt.Printf("%-12.0f %-14.3g\n", v, p)
	}

	// End-to-end: BRAM-only undervolting corrupts weights, not MACs.
	deployment, err := platform.Deploy("VGGNet", fpgauv.DeployOptions{Tiny: true, Images: 24})
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.SetVCCBRAMmV(515); err != nil {
		log.Fatal(err)
	}
	stats, err := deployment.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVGGNet with VCCBRAM at 515 mV (VCCINT nominal): accuracy %.1f%%, %d weight-bit flips, %d MAC faults\n",
		stats.AccuracyPct, stats.BRAMFaults, stats.MACFaults)
}
