package quant

import "sync"

// This file is the macro-tile layer between the GEMM entry points and
// the worker pool in parallel.go: the register-blocked kernel
// (gemmInt8Block) becomes the inner kernel of a cache-blocked loop over
// tileM×tileN output macro-tiles, and those tiles are the unit of work
// split across RunTiles. The partition is strictly over output
// coordinates (M rows × N columns × batch slabs) — K is NEVER split, so
// each output element's full dot product runs on exactly one worker in
// the same modular-int32 order as the serial kernel, which is what
// keeps every parallel width bit-exact against the naive oracle.
// Workers write disjoint dst regions and only read the shared a/bt
// operands, so no synchronization beyond job completion is needed, and
// the job structs recycle through sync.Pools so the steady state
// allocates nothing.

// tileM×tileN is the macro-tile: the output block one worker computes
// per claim. At int8 operands a 32-row × 64-column tile touches
// 32 rows of A plus 64 patch columns — comfortably L1/L2-resident for
// this repo's layer shapes (k up to a few thousand) — while the
// benchmark conv (64×1024 output) still splits into 32 tiles, enough
// granularity for the atomic cursor to balance ragged finishes. tileM
// doubles as the row-tile height of the dense (FC) split.
const (
	tileM = 32
	tileN = 64
)

// gemmJob is the pooled work descriptor of one (possibly multi-slab)
// tiled GEMM: tile index t decomposes as (slab, row-tile, col-tile) and
// maps to a gemmInt8Block call on that sub-rectangle.
type gemmJob struct {
	TileJob
	dst      []int32
	a, bt    []int8
	bias     []int32
	m, k, n  int
	mt, nt   int // row/column tile counts per slab
	blockLen int // m*n: one slab's output block
	slabLen  int // n*k: one slab's patch matrix
}

var gemmJobs = sync.Pool{New: func() any { return new(gemmJob) }}

func (g *gemmJob) Job() *TileJob { return &g.TileJob }

func (g *gemmJob) Recycle() {
	g.dst, g.a, g.bt, g.bias = nil, nil, nil, nil
	gemmJobs.Put(g)
}

func (g *gemmJob) Tile(t int) {
	per := g.mt * g.nt
	b := t / per
	t -= b * per
	ti := t / g.nt
	tj := t - ti*g.nt
	i0 := ti * tileM
	i1 := min(i0+tileM, g.m)
	j0 := tj * tileN
	j1 := min(j0+tileN, g.n)
	dst := g.dst[b*g.blockLen : (b+1)*g.blockLen]
	bt := g.bt[b*g.slabLen : (b+1)*g.slabLen]
	gemmInt8Block(dst, g.a, bt, i0, i1, j0, j1, g.k, g.n, g.bias)
}

// gemmInt8Tiled computes slabs independent products dst[b] =
// a[m×k]·bt[b][n×k]ᵀ (the multi-RHS stacked layout of
// gemmInt8MultiRHS; slabs == 1 is the single-image case), splitting the
// slab × macro-tile grid across the worker pool. With one effective
// worker — or a problem too small to tile — it falls through to the
// serial kernel unchanged, so the 1-worker path is byte-for-byte
// today's gemmInt8 loop.
func gemmInt8Tiled(dst []int32, a, bt []int8, m, k, slabs, n int, bias []int32) {
	mt := (m + tileM - 1) / tileM
	nt := (n + tileN - 1) / tileN
	tiles := slabs * mt * nt
	if tiles <= 1 || Workers() <= 1 {
		block, slab := m*n, n*k
		for b := 0; b < slabs; b++ {
			gemmInt8(dst[b*block:(b+1)*block], a, bt[b*slab:(b+1)*slab], m, k, n, bias)
		}
		return
	}
	g := gemmJobs.Get().(*gemmJob)
	g.dst, g.a, g.bt, g.bias = dst, a, bt, bias
	g.m, g.k, g.n = m, k, n
	g.mt, g.nt = mt, nt
	g.blockLen, g.slabLen = m*n, n*k
	RunTiles(tiles, g)
}

// denseJob is the pooled work descriptor of a row-tiled FC product:
// tile t covers output rows [t*tileM, (t+1)*tileM). Exactly one of
// x (single image) or xs (batch) is set.
type denseJob struct {
	TileJob
	dst     []int32
	w       []int8
	bias    []int32
	x       []int8
	xs      []*QTensor
	in, out int
}

var denseJobs = sync.Pool{New: func() any { return new(denseJob) }}

func (d *denseJob) Job() *TileJob { return &d.TileJob }

func (d *denseJob) Recycle() {
	d.dst, d.w, d.bias, d.x, d.xs = nil, nil, nil, nil, nil
	denseJobs.Put(d)
}

func (d *denseJob) Tile(t int) {
	o0 := t * tileM
	o1 := min(o0+tileM, d.out)
	if d.x != nil {
		denseInt8GEMV(d.dst, d.w, d.bias, d.x, d.in, o0, o1)
		return
	}
	denseInt8Rows(d.dst, d.w, d.bias, d.xs, d.in, d.out, o0, o1)
}

// denseInt8Tiled computes the FC product for one image (xd set) or a
// batch (xs set), splitting tileM-row output bands across the worker
// pool. Row bands partition only the output dimension — every band
// streams the full input(s) — so each output element is computed by one
// worker in serial accumulation order: bit-exact at every width.
func denseInt8Tiled(dst []int32, wd []int8, bias []int32, xd []int8, xs []*QTensor, in, out int) {
	tiles := (out + tileM - 1) / tileM
	if tiles <= 1 || Workers() <= 1 {
		if xs == nil {
			denseInt8GEMV(dst, wd, bias, xd, in, 0, out)
			return
		}
		denseInt8Rows(dst, wd, bias, xs, in, out, 0, out)
		return
	}
	d := denseJobs.Get().(*denseJob)
	d.dst, d.w, d.bias = dst, wd, bias
	d.x, d.xs = xd, xs
	d.in, d.out = in, out
	RunTiles(tiles, d)
}
