package quant

import (
	"fmt"
	"math"
)

// This file is the GEMM lowering of the int8 compute path: convolutions
// run as im2col + a register-blocked int8→int32 GEMM, fully-connected
// layers as the matching blocked GEMV, and the requantize(+ReLU) epilogue
// writes straight into a caller-owned tensor. All three take caller-owned
// buffers so a steady-state inference performs no heap allocation; the
// naive kernels in kernels.go remain as the reference oracle and every
// function here is bit-exact against them (int32 accumulation is modular,
// and the accumulation order — bias, then taps in (inC, ky, kx) order —
// is preserved).

// growInt8 returns buf resized to n, reusing its backing array when the
// capacity allows.
func growInt8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

// growInt32 is growInt8 for int32 buffers.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// gemmRows × gemmCols is the register tile: each inner loop streams the
// shared reduction once while eight int32 accumulators stay in
// registers, so every loaded int8 feeds multiple multiply-accumulates
// and the steady-state loop performs no stores.
const (
	gemmRows = 4
	gemmCols = 2
)

// gemmInt8 computes dst[m×n] = a[m×k]·bt[n×k]ᵀ with int8 operands, int32
// accumulation, and bias[i] seeding row i — the MAC-array contract of the
// DPU's conv/FC units. bt is patch-major (each of the n columns of the
// logical B matrix stored as a contiguous k-row), so every tile is a set
// of dot products over contiguous memory: branch-free, store-free, and
// bounds-check-free in the steady state.
func gemmInt8(dst []int32, a, bt []int8, m, k, n int, bias []int32) {
	gemmInt8Block(dst, a, bt, 0, m, 0, n, k, n, bias)
}

// gemmInt8Block is the register-blocked kernel generalized to a
// sub-rectangle: it computes dst rows [i0,i1) × columns [j0,j1) of the
// m×n product, with ld the row stride of dst (ld == n for a full
// matrix). Each output element's accumulation — bias, then the full K
// reduction in p order — is self-contained, so any macro-tile partition
// of the output plane yields results bit-identical to one full-matrix
// call: tiling and parallelization never change a single int32.
func gemmInt8Block(dst []int32, a, bt []int8, i0, i1, j0, j1, k, ld int, bias []int32) {
	i := i0
	for ; i+gemmRows <= i1; i += gemmRows {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		bi0, bi1, bi2, bi3 := bias[i], bias[i+1], bias[i+2], bias[i+3]
		j := j0
		for ; j+gemmCols <= j1; j += gemmCols {
			x0 := bt[(j+0)*k : (j+1)*k]
			x1 := bt[(j+1)*k : (j+2)*k]
			s00, s01 := bi0, bi0
			s10, s11 := bi1, bi1
			s20, s21 := bi2, bi2
			s30, s31 := bi3, bi3
			for p, xv := range x0 {
				v0 := int32(xv)
				v1 := int32(x1[p])
				w0 := int32(a0[p])
				w1 := int32(a1[p])
				w2 := int32(a2[p])
				w3 := int32(a3[p])
				s00 += w0 * v0
				s01 += w0 * v1
				s10 += w1 * v0
				s11 += w1 * v1
				s20 += w2 * v0
				s21 += w2 * v1
				s30 += w3 * v0
				s31 += w3 * v1
			}
			dst[(i+0)*ld+j], dst[(i+0)*ld+j+1] = s00, s01
			dst[(i+1)*ld+j], dst[(i+1)*ld+j+1] = s10, s11
			dst[(i+2)*ld+j], dst[(i+2)*ld+j+1] = s20, s21
			dst[(i+3)*ld+j], dst[(i+3)*ld+j+1] = s30, s31
		}
		for ; j < j1; j++ {
			x0 := bt[j*k : (j+1)*k]
			s0, s1, s2, s3 := bi0, bi1, bi2, bi3
			for p, xv := range x0 {
				v := int32(xv)
				s0 += int32(a0[p]) * v
				s1 += int32(a1[p]) * v
				s2 += int32(a2[p]) * v
				s3 += int32(a3[p]) * v
			}
			dst[(i+0)*ld+j] = s0
			dst[(i+1)*ld+j] = s1
			dst[(i+2)*ld+j] = s2
			dst[(i+3)*ld+j] = s3
		}
	}
	for ; i < i1; i++ {
		ar := a[i*k : (i+1)*k]
		bi := bias[i]
		for j := j0; j < j1; j++ {
			x0 := bt[j*k : (j+1)*k]
			sum := bi
			for p, xv := range x0 {
				sum += int32(ar[p]) * int32(xv)
			}
			dst[i*ld+j] = sum
		}
	}
}

// Conv2DInt8Gemm is the GEMM lowering of Conv2DInt8: im2col into *col,
// then one tiled GEMM into *acc, its macro-tiles split across the
// worker pool (see gemm_tiled.go / parallel.go). Both buffers are grown
// in place and reused across calls; the returned shape describes the
// accumulator layout ((*acc)[:shape.AccLen()] is valid). Bit-exact with
// Conv2DInt8 at every worker count.
func Conv2DInt8Gemm(x, w *QTensor, biasQ []int32, stride, pad int, col *[]int8, acc *[]int32) (ConvShape, error) {
	sh, err := ConvShapeOf(x, w, biasQ, stride, pad)
	if err != nil {
		return sh, err
	}
	*col = growInt8(*col, sh.Cols()*sh.Pixels())
	*acc = growInt32(*acc, sh.AccLen())
	Im2colInt8(x, sh, *col)
	gemmInt8Tiled(*acc, w.Data, *col, sh.OutC, sh.Cols(), 1, sh.Pixels(), biasQ)
	return sh, nil
}

// DenseInt8Gemm is the blocked-GEMV lowering of DenseInt8 into a reused
// accumulator, its output rows band-split across the worker pool; it
// returns the output width. Bit-exact with DenseInt8 at every worker
// count.
func DenseInt8Gemm(x, w *QTensor, biasQ []int32, acc *[]int32) (int, error) {
	if len(w.Dims) != 2 {
		return 0, fmt.Errorf("quant: fc weights must be 2-D, got %v", w.Dims)
	}
	out, in := w.Dims[0], w.Dims[1]
	if len(x.Data) != in {
		return 0, fmt.Errorf("quant: fc input %d != %d", len(x.Data), in)
	}
	if len(biasQ) != out {
		return 0, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	*acc = growInt32(*acc, out)
	denseInt8Tiled(*acc, w.Data, biasQ, x.Data, nil, in, out)
	return out, nil
}

// denseInt8GEMV computes output rows [o0,o1) of the single-image FC
// product dst[o] = bias[o] + w[o]·x: four weight rows stream the input
// together so each loaded x byte feeds four MACs. Restricting the row
// range never changes an element — each row's reduction is independent
// and runs in input order — so row-banded parallel calls are bit-exact
// with one full-range call.
func denseInt8GEMV(dst []int32, wd []int8, bias []int32, xd []int8, in, o0, o1 int) {
	o := o0
	for ; o+gemmRows <= o1; o += gemmRows {
		r0 := wd[(o+0)*in : (o+1)*in]
		r1 := wd[(o+1)*in : (o+2)*in]
		r2 := wd[(o+2)*in : (o+3)*in]
		r3 := wd[(o+3)*in : (o+4)*in]
		s0, s1, s2, s3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for i, v := range xd {
			xv := int32(v)
			s0 += xv * int32(r0[i])
			s1 += xv * int32(r1[i])
			s2 += xv * int32(r2[i])
			s3 += xv * int32(r3[i])
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < o1; o++ {
		row := wd[o*in : (o+1)*in]
		sum := bias[o]
		for i, v := range xd {
			sum += int32(v) * int32(row[i])
		}
		dst[o] = sum
	}
}

// RequantizeInto is the fused GEMM epilogue: it maps int32 accumulators to
// int8 codes in dst (reusing dst's backing storage) and optionally applies
// ReLU in the same pass. Bit-exact with Requantize followed by ReLUQ.
func RequantizeInto(dst *QTensor, acc []int32, accScale, outScale float32, bits int, relu bool, dims ...int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if outScale <= 0 {
		return fmt.Errorf("quant: output scale must be positive, got %g", outScale)
	}
	dst.Data = growInt8(dst.Data, len(acc))
	dst.Dims = append(dst.Dims[:0], dims...)
	dst.Scale = outScale
	dst.Bits = bits
	ratio := float64(accScale) / float64(outScale)
	qmax := QMax(bits)
	d := dst.Data
	if relu {
		for i, a := range acc {
			v := clampToInt8(int32(math.RoundToEven(float64(a)*ratio)), qmax)
			if v < 0 {
				v = 0
			}
			d[i] = v
		}
		return nil
	}
	for i, a := range acc {
		d[i] = clampToInt8(int32(math.RoundToEven(float64(a)*ratio)), qmax)
	}
	return nil
}
