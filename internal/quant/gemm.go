package quant

import (
	"fmt"
	"math"
)

// This file is the GEMM lowering of the int8 compute path: convolutions
// run as im2col + a register-blocked int8→int32 GEMM, fully-connected
// layers as the matching blocked GEMV, and the requantize(+ReLU) epilogue
// writes straight into a caller-owned tensor. All three take caller-owned
// buffers so a steady-state inference performs no heap allocation; the
// naive kernels in kernels.go remain as the reference oracle and every
// function here is bit-exact against them (int32 accumulation is modular,
// and the accumulation order — bias, then taps in (inC, ky, kx) order —
// is preserved).

// growInt8 returns buf resized to n, reusing its backing array when the
// capacity allows.
func growInt8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

// growInt32 is growInt8 for int32 buffers.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// gemmRows × gemmCols is the register tile: each inner loop streams the
// shared reduction once while eight int32 accumulators stay in
// registers, so every loaded int8 feeds multiple multiply-accumulates
// and the steady-state loop performs no stores.
const (
	gemmRows = 4
	gemmCols = 2
)

// gemmInt8 computes dst[m×n] = a[m×k]·bt[n×k]ᵀ with int8 operands, int32
// accumulation, and bias[i] seeding row i — the MAC-array contract of the
// DPU's conv/FC units. bt is patch-major (each of the n columns of the
// logical B matrix stored as a contiguous k-row), so every tile is a set
// of dot products over contiguous memory: branch-free, store-free, and
// bounds-check-free in the steady state.
func gemmInt8(dst []int32, a, bt []int8, m, k, n int, bias []int32) {
	i := 0
	for ; i+gemmRows <= m; i += gemmRows {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		bi0, bi1, bi2, bi3 := bias[i], bias[i+1], bias[i+2], bias[i+3]
		j := 0
		for ; j+gemmCols <= n; j += gemmCols {
			x0 := bt[(j+0)*k : (j+1)*k]
			x1 := bt[(j+1)*k : (j+2)*k]
			s00, s01 := bi0, bi0
			s10, s11 := bi1, bi1
			s20, s21 := bi2, bi2
			s30, s31 := bi3, bi3
			for p, xv := range x0 {
				v0 := int32(xv)
				v1 := int32(x1[p])
				w0 := int32(a0[p])
				w1 := int32(a1[p])
				w2 := int32(a2[p])
				w3 := int32(a3[p])
				s00 += w0 * v0
				s01 += w0 * v1
				s10 += w1 * v0
				s11 += w1 * v1
				s20 += w2 * v0
				s21 += w2 * v1
				s30 += w3 * v0
				s31 += w3 * v1
			}
			dst[(i+0)*n+j], dst[(i+0)*n+j+1] = s00, s01
			dst[(i+1)*n+j], dst[(i+1)*n+j+1] = s10, s11
			dst[(i+2)*n+j], dst[(i+2)*n+j+1] = s20, s21
			dst[(i+3)*n+j], dst[(i+3)*n+j+1] = s30, s31
		}
		for ; j < n; j++ {
			x0 := bt[j*k : (j+1)*k]
			s0, s1, s2, s3 := bi0, bi1, bi2, bi3
			for p, xv := range x0 {
				v := int32(xv)
				s0 += int32(a0[p]) * v
				s1 += int32(a1[p]) * v
				s2 += int32(a2[p]) * v
				s3 += int32(a3[p]) * v
			}
			dst[(i+0)*n+j] = s0
			dst[(i+1)*n+j] = s1
			dst[(i+2)*n+j] = s2
			dst[(i+3)*n+j] = s3
		}
	}
	for ; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		bi := bias[i]
		for j := 0; j < n; j++ {
			x0 := bt[j*k : (j+1)*k]
			sum := bi
			for p, xv := range x0 {
				sum += int32(ar[p]) * int32(xv)
			}
			dst[i*n+j] = sum
		}
	}
}

// Conv2DInt8Gemm is the GEMM lowering of Conv2DInt8: im2col into *col,
// then one blocked GEMM into *acc. Both buffers are grown in place and
// reused across calls; the returned shape describes the accumulator
// layout ((*acc)[:shape.AccLen()] is valid). Bit-exact with Conv2DInt8.
func Conv2DInt8Gemm(x, w *QTensor, biasQ []int32, stride, pad int, col *[]int8, acc *[]int32) (ConvShape, error) {
	sh, err := ConvShapeOf(x, w, biasQ, stride, pad)
	if err != nil {
		return sh, err
	}
	*col = growInt8(*col, sh.Cols()*sh.Pixels())
	*acc = growInt32(*acc, sh.AccLen())
	Im2colInt8(x, sh, *col)
	gemmInt8(*acc, w.Data, *col, sh.OutC, sh.Cols(), sh.Pixels(), biasQ)
	return sh, nil
}

// DenseInt8Gemm is the blocked-GEMV lowering of DenseInt8 into a reused
// accumulator; it returns the output width. Bit-exact with DenseInt8.
func DenseInt8Gemm(x, w *QTensor, biasQ []int32, acc *[]int32) (int, error) {
	if len(w.Dims) != 2 {
		return 0, fmt.Errorf("quant: fc weights must be 2-D, got %v", w.Dims)
	}
	out, in := w.Dims[0], w.Dims[1]
	if len(x.Data) != in {
		return 0, fmt.Errorf("quant: fc input %d != %d", len(x.Data), in)
	}
	if len(biasQ) != out {
		return 0, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	*acc = growInt32(*acc, out)
	dst := *acc
	xd := x.Data
	o := 0
	for ; o+gemmRows <= out; o += gemmRows {
		r0 := w.Data[(o+0)*in : (o+1)*in]
		r1 := w.Data[(o+1)*in : (o+2)*in]
		r2 := w.Data[(o+2)*in : (o+3)*in]
		r3 := w.Data[(o+3)*in : (o+4)*in]
		s0, s1, s2, s3 := biasQ[o], biasQ[o+1], biasQ[o+2], biasQ[o+3]
		for i, v := range xd {
			xv := int32(v)
			s0 += xv * int32(r0[i])
			s1 += xv * int32(r1[i])
			s2 += xv * int32(r2[i])
			s3 += xv * int32(r3[i])
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < out; o++ {
		row := w.Data[o*in : (o+1)*in]
		sum := biasQ[o]
		for i, v := range xd {
			sum += int32(v) * int32(row[i])
		}
		dst[o] = sum
	}
	return out, nil
}

// RequantizeInto is the fused GEMM epilogue: it maps int32 accumulators to
// int8 codes in dst (reusing dst's backing storage) and optionally applies
// ReLU in the same pass. Bit-exact with Requantize followed by ReLUQ.
func RequantizeInto(dst *QTensor, acc []int32, accScale, outScale float32, bits int, relu bool, dims ...int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if outScale <= 0 {
		return fmt.Errorf("quant: output scale must be positive, got %g", outScale)
	}
	dst.Data = growInt8(dst.Data, len(acc))
	dst.Dims = append(dst.Dims[:0], dims...)
	dst.Scale = outScale
	dst.Bits = bits
	ratio := float64(accScale) / float64(outScale)
	qmax := QMax(bits)
	d := dst.Data
	if relu {
		for i, a := range acc {
			v := clampToInt8(int32(math.RoundToEven(float64(a)*ratio)), qmax)
			if v < 0 {
				v = 0
			}
			d[i] = v
		}
		return nil
	}
	for i, a := range acc {
		d[i] = clampToInt8(int32(math.RoundToEven(float64(a)*ratio)), qmax)
	}
	return nil
}
