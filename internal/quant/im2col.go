package quant

import "fmt"

// ConvShape is the resolved geometry of one int8 convolution: the GEMM
// lowering maps the weight tensor to an OutC × Cols matrix and the im2col
// patch matrix to Cols × Pixels, so the convolution becomes a single
// (OutC × Cols)·(Cols × Pixels) product.
type ConvShape struct {
	InC, InH, InW    int
	OutC, OutH, OutW int
	K, Stride, Pad   int
}

// Cols is the GEMM reduction depth: one column row per (inC, ky, kx).
func (s ConvShape) Cols() int { return s.InC * s.K * s.K }

// Pixels is the GEMM output width: one column per output pixel.
func (s ConvShape) Pixels() int { return s.OutH * s.OutW }

// AccLen is the int32 accumulator count of the lowered convolution.
func (s ConvShape) AccLen() int { return s.OutC * s.Pixels() }

// ConvShapeOf validates a conv (x: CHW, w: OIHW) and resolves its
// geometry. The checks mirror Conv2DInt8 so the GEMM path rejects exactly
// the inputs the reference kernel rejects.
func ConvShapeOf(x, w *QTensor, biasQ []int32, stride, pad int) (ConvShape, error) {
	if len(x.Dims) != 3 {
		return ConvShape{}, fmt.Errorf("quant: conv input must be CHW, got %v", x.Dims)
	}
	if len(w.Dims) != 4 {
		return ConvShape{}, fmt.Errorf("quant: conv weights must be OIHW, got %v", w.Dims)
	}
	sh := ConvShape{
		InC: x.Dims[0], InH: x.Dims[1], InW: x.Dims[2],
		OutC: w.Dims[0], K: w.Dims[2], Stride: stride, Pad: pad,
	}
	if w.Dims[1] != sh.InC {
		return ConvShape{}, fmt.Errorf("quant: conv channels %d != %d", w.Dims[1], sh.InC)
	}
	if len(biasQ) != sh.OutC {
		return ConvShape{}, fmt.Errorf("quant: conv bias length %d != %d", len(biasQ), sh.OutC)
	}
	if stride <= 0 {
		return ConvShape{}, fmt.Errorf("quant: conv stride must be positive")
	}
	sh.OutH = (sh.InH+2*pad-sh.K)/stride + 1
	sh.OutW = (sh.InW+2*pad-sh.K)/stride + 1
	if sh.OutH <= 0 || sh.OutW <= 0 {
		return ConvShape{}, fmt.Errorf("quant: conv output collapses")
	}
	return sh, nil
}

// Im2colInt8 unfolds x into the patch-major Pixels × Cols matrix: row p
// (one per output pixel) holds that pixel's receptive field in
// (ic, ky, kx) order — the reduction order of the naive kernel — with
// zeros where a tap falls in the padding. Patch-major layout makes each
// GEMM dot product a walk over two contiguous rows.
//
// The unfold is interior/border split: output pixels whose receptive
// field is fully in-bounds take the steady-state path — straight
// K-element copies with no bounds checks — and only the border pixels
// pay per-tap range tests.
func Im2colInt8(x *QTensor, sh ConvShape, col []int8) {
	xd := x.Data
	k, stride, pad := sh.K, sh.Stride, sh.Pad
	cols := sh.Cols()
	// Interior output range: every tap of the receptive field in-bounds.
	oyLo, oyHi := interiorRange(sh.OutH, sh.InH, k, stride, pad)
	oxLo, oxHi := interiorRange(sh.OutW, sh.InW, k, stride, pad)
	for oy := 0; oy < sh.OutH; oy++ {
		iy0 := oy*stride - pad
		rowBase := oy * sh.OutW * cols
		interiorRow := oy >= oyLo && oy < oyHi
		for ox := 0; ox < sh.OutW; ox++ {
			ix0 := ox*stride - pad
			dst := col[rowBase+ox*cols : rowBase+(ox+1)*cols]
			if interiorRow && ox >= oxLo && ox < oxHi {
				// Steady state: contiguous K-wide copies per kernel row.
				d := 0
				for ic := 0; ic < sh.InC; ic++ {
					src := xd[(ic*sh.InH+iy0)*sh.InW+ix0:]
					for ky := 0; ky < k; ky++ {
						copy(dst[d:d+k], src[ky*sh.InW:])
						d += k
					}
				}
				continue
			}
			// Border: per-tap range tests with zero fill.
			d := 0
			for ic := 0; ic < sh.InC; ic++ {
				xBase := ic * sh.InH * sh.InW
				for ky := 0; ky < k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= sh.InH {
						for kx := 0; kx < k; kx++ {
							dst[d] = 0
							d++
						}
						continue
					}
					rowX := xBase + iy*sh.InW
					for kx := 0; kx < k; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= sh.InW {
							dst[d] = 0
						} else {
							dst[d] = xd[rowX+ix]
						}
						d++
					}
				}
			}
		}
	}
}

// interiorRange returns the [lo, hi) output range whose receptive field
// [o*stride-pad, o*stride-pad+k) lies fully inside [0, in).
func interiorRange(out, in, k, stride, pad int) (lo, hi int) {
	lo = 0
	if pad > 0 {
		lo = (pad + stride - 1) / stride
	}
	hi = out
	if limit := in + pad - k; limit >= 0 {
		if h := limit/stride + 1; h < hi {
			hi = h
		}
	} else {
		hi = 0
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
