package quant

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// randI8 fills a fresh length-n slice with random int8 values across
// the full code range.
func randI8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(256) - 128)
	}
	return s
}

// gemmOracle is the independent naive reference: a plain triple loop
// with no blocking, tiling, or parallelism, shared by every bit-exact
// test below.
func gemmOracle(a, bt []int8, m, k, n int, bias []int32) []int32 {
	dst := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := bias[i]
			for p := 0; p < k; p++ {
				s += int32(a[i*k+p]) * int32(bt[j*k+p])
			}
			dst[i*n+j] = s
		}
	}
	return dst
}

func assertSameInt32(t *testing.T, ctx string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d: got %d want %d", ctx, i, got[i], want[i])
		}
	}
}

// TestTiledGemmBitExactGrid pins the tentpole invariant: the tiled
// parallel GEMM is bit-exact against both the serial register-blocked
// kernel and the naive oracle across ragged shapes (M/N/K straddling
// the register tile, the macro-tile, and worker-count boundaries) at
// every worker count.
func TestTiledGemmBitExactGrid(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(8))
	ms := []int{1, 3, 4, 31, 32, 33, 65}
	ns := []int{1, 2, 63, 64, 65, 130}
	ks := []int{1, 7, 63}
	for _, m := range ms {
		for _, n := range ns {
			for _, k := range ks {
				a := randI8(rng, m*k)
				bt := randI8(rng, n*k)
				bias := randBias(rng, m)
				want := gemmOracle(a, bt, m, k, n, bias)
				serial := make([]int32, m*n)
				gemmInt8(serial, a, bt, m, k, n, bias)
				assertSameInt32(t, fmt.Sprintf("serial m=%d n=%d k=%d", m, n, k), serial, want)
				for _, w := range []int{1, 2, 3, 4, 5} {
					SetWorkers(w)
					got := make([]int32, m*n)
					gemmInt8Tiled(got, a, bt, m, k, 1, n, bias)
					assertSameInt32(t, fmt.Sprintf("tiled m=%d n=%d k=%d workers=%d", m, n, k, w), got, want)
				}
				SetWorkers(0)
			}
		}
	}
}

// TestTiledMultiRHSBitExactFuzz fuzzes the stacked multi-slab path:
// random slab counts, ragged shapes, and worker counts, each compared
// element-for-element against per-slab naive oracles.
func TestTiledMultiRHSBitExactFuzz(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(88))
	for iter := 0; iter < 150; iter++ {
		m := 1 + rng.Intn(70)
		k := 1 + rng.Intn(48)
		pix := 1 + rng.Intn(140)
		slabs := 1 + rng.Intn(5)
		a := randI8(rng, m*k)
		bt := randI8(rng, slabs*pix*k)
		bias := randBias(rng, m)
		SetWorkers(1 + rng.Intn(6))
		got := make([]int32, slabs*m*pix)
		gemmInt8MultiRHS(got, a, bt, m, k, slabs, pix, bias)
		for b := 0; b < slabs; b++ {
			want := gemmOracle(a, bt[b*pix*k:(b+1)*pix*k], m, k, pix, bias)
			assertSameInt32(t, fmt.Sprintf("iter=%d slab=%d m=%d k=%d pix=%d workers=%d", iter, b, m, k, pix, Workers()),
				got[b*m*pix:(b+1)*m*pix], want)
		}
	}
}

// TestTiledDenseBitExact walks the FC lowerings — single image and
// batch — across ragged output widths and worker counts, against the
// naive oracle (an FC layer is the n=1-pixel GEMM with x as the lone
// patch column).
func TestTiledDenseBitExact(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(888))
	outs := []int{1, 4, 5, 31, 32, 33, 64, 100}
	ins := []int{1, 9, 65}
	for _, out := range outs {
		for _, in := range ins {
			w := &QTensor{Data: randI8(rng, out*in), Dims: []int{out, in}, Scale: 1, Bits: 8}
			bias := randBias(rng, out)
			xs := make([]*QTensor, 3)
			for b := range xs {
				xs[b] = &QTensor{Data: randI8(rng, in), Dims: []int{in}, Scale: 1, Bits: 8}
			}
			for _, nw := range []int{1, 2, 4, 5} {
				SetWorkers(nw)
				var acc []int32
				if _, err := DenseInt8Gemm(xs[0], w, bias, &acc); err != nil {
					t.Fatal(err)
				}
				want := gemmOracle(w.Data, xs[0].Data, out, in, 1, bias)
				assertSameInt32(t, fmt.Sprintf("dense out=%d in=%d workers=%d", out, in, nw), acc, want)
				var bacc []int32
				if _, err := DenseInt8GemmBatch(xs, w, bias, &bacc); err != nil {
					t.Fatal(err)
				}
				for b := range xs {
					want := gemmOracle(w.Data, xs[b].Data, out, in, 1, bias)
					// The batch layout is image-major (dst[b*out+o]), the
					// oracle's out×1 product is row-major — identical flat
					// order, so they compare directly.
					assertSameInt32(t, fmt.Sprintf("dense batch b=%d out=%d in=%d workers=%d", b, out, in, nw),
						bacc[b*out:(b+1)*out], want)
				}
			}
			SetWorkers(0)
		}
	}
}

// countJob marks each claimed index so tests can assert exactly-once
// execution of the whole index space.
type countJob struct {
	TileJob
	hits []atomic.Int32
}

func (c *countJob) Tile(i int)    { c.hits[i].Add(1) }
func (c *countJob) Job() *TileJob { return &c.TileJob }
func (c *countJob) Recycle()      {}

func checkAllOnce(t *testing.T, ctx string, hits []atomic.Int32) {
	t.Helper()
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("%s: index %d executed %d times, want 1", ctx, i, got)
		}
	}
}

// TestRunTilesCoverage checks the pool protocol itself: every index in
// [0, n) runs exactly once at widths spanning serial, partial, and
// saturated offers, including n smaller than the worker count.
func TestRunTilesCoverage(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 4, 16} {
		SetWorkers(w)
		for _, n := range []int{1, 2, 3, 16, 257} {
			c := &countJob{hits: make([]atomic.Int32, n)}
			RunTiles(n, c)
			checkAllOnce(t, fmt.Sprintf("workers=%d n=%d", w, n), c.hits)
		}
	}
}

// TestRunTilesNested pins the no-deadlock guarantee: jobs that fan out
// again from inside Tile (the DPU's batch lanes each running a tiled
// GEMM) complete with every inner index executed exactly once, even
// when the pool is saturated by the outer level.
func TestRunTilesNested(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	inner := make([]*countJob, 8)
	for i := range inner {
		inner[i] = &countJob{hits: make([]atomic.Int32, 100)}
	}
	outer := &nestJob{inner: inner}
	RunTiles(len(inner), outer)
	for i, c := range inner {
		checkAllOnce(t, fmt.Sprintf("inner=%d", i), c.hits)
	}
}

type nestJob struct {
	TileJob
	inner []*countJob
}

func (nj *nestJob) Tile(i int) {
	c := nj.inner[i]
	RunTiles(len(c.hits), c)
}
func (nj *nestJob) Job() *TileJob { return &nj.TileJob }
func (nj *nestJob) Recycle()      {}

// TestWorkersSemantics pins the tuning contract: 0 follows GOMAXPROCS,
// positive values pin, and everything caps at maxGemmWorkers.
func TestWorkersSemantics(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(100)
	if got := Workers(); got != maxGemmWorkers {
		t.Fatalf("Workers() = %d after SetWorkers(100), want cap %d", got, maxGemmWorkers)
	}
	SetWorkers(0)
	want := runtime.GOMAXPROCS(0)
	if want > maxGemmWorkers {
		want = maxGemmWorkers
	}
	if got := Workers(); got != want {
		t.Fatalf("Workers() = %d with automatic default, want %d", got, want)
	}
}
