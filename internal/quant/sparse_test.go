package quant

import (
	"fmt"
	"math/rand"
	"testing"
)

// sparsify zeroes a random fraction of the tensor's codes in place —
// the unstructured pattern magnitude pruning produces.
func sparsify(rng *rand.Rand, w *QTensor, frac float64) {
	for i := range w.Data {
		if rng.Float64() < frac {
			w.Data[i] = 0
		}
	}
}

// testSparsities is the equivalence sweep required by the acceptance
// grid: dense through 90% pruned.
var testSparsities = []float64{0, 0.25, 0.5, 0.9}

// TestSparsePackUnpackRoundTrip pins the packed format: packing then
// unpacking reproduces the dense tensor exactly, the block count
// matches a direct count of nonzero 4-row column slices, and the packed
// image is the expected 4 bytes per surviving block.
func TestSparsePackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][]int{{16, 8, 3, 3}, {7, 3, 2, 2}, {10, 64}, {1, 9}, {5, 130}} {
		for _, frac := range testSparsities {
			w := randQ(rng, 8, dims...)
			sparsify(rng, w, frac)
			sw, err := PackSparse(w)
			if err != nil {
				t.Fatal(err)
			}
			// Direct block count over the dense layout.
			m, k := sw.M, sw.K
			want := 0
			for r := 0; r < sw.Groups(); r++ {
				for p := 0; p < k; p++ {
					for q := r * SparseBlockRows; q < min((r+1)*SparseBlockRows, m); q++ {
						if w.Data[q*k+p] != 0 {
							want++
							break
						}
					}
				}
			}
			if sw.Blocks() != want {
				t.Fatalf("dims=%v frac=%.2f: %d blocks, want %d", dims, frac, sw.Blocks(), want)
			}
			if len(sw.Packed.Data) != want*SparseBlockRows {
				t.Fatalf("packed image %d bytes, want %d", len(sw.Packed.Data), want*SparseBlockRows)
			}
			var back QTensor
			sw.UnpackInto(&back)
			assertSameQ(t, fmt.Sprintf("roundtrip dims=%v frac=%.2f", dims, frac), &back, w)
		}
	}
}

// checkSparseConvEquivalence runs naive, dense-GEMM and sparse-GEMM on
// the same pruned weights and requires bit-exact accumulators.
func checkSparseConvEquivalence(t *testing.T, x, w *QTensor, bias []int32, stride, pad int) {
	t.Helper()
	ref, refDims, refErr := Conv2DInt8(x, w, bias, stride, pad)
	sw, perr := PackSparse(w)
	if perr != nil {
		t.Fatal(perr)
	}
	var col []int8
	var acc []int32
	sh, spErr := Conv2DInt8GemmSparse(x, sw, bias, stride, pad, &col, &acc)
	if (refErr == nil) != (spErr == nil) {
		t.Fatalf("error mismatch: naive=%v sparse=%v", refErr, spErr)
	}
	if refErr != nil {
		return
	}
	if sh.OutC != refDims[0] || sh.OutH != refDims[1] || sh.OutW != refDims[2] {
		t.Fatalf("dims mismatch: naive=%v sparse=%+v", refDims, sh)
	}
	for i := range ref {
		if acc[i] != ref[i] {
			t.Fatalf("acc[%d]: sparse %d != naive %d (stride=%d pad=%d x=%v w=%v workers=%d)",
				i, acc[i], ref[i], stride, pad, x.Dims, w.Dims, Workers())
		}
	}
	var dcol []int8
	var dacc []int32
	if _, err := Conv2DInt8Gemm(x, w, bias, stride, pad, &dcol, &dacc); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if acc[i] != dacc[i] {
			t.Fatalf("acc[%d]: sparse %d != dense %d", i, acc[i], dacc[i])
		}
	}
}

// TestSparseConvEquivalenceGrid sweeps sparsity × worker count ×
// geometry and requires the sparse path bit-exact against both oracles.
func TestSparseConvEquivalenceGrid(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(99))
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for _, frac := range testSparsities {
			for _, dims := range [][4]int{ // inC, H, W, outC
				{1, 6, 6, 1},
				{3, 8, 8, 4},
				{4, 9, 7, 5}, // non-square, ragged row group
				{8, 12, 12, 16},
				{16, 16, 16, 37}, // multi-tile M with ragged tail
			} {
				inC, h, w, outC := dims[0], dims[1], dims[2], dims[3]
				name := fmt.Sprintf("w=%d/s=%.2f/x=%dx%dx%d/o=%d", workers, frac, inC, h, w, outC)
				t.Run(name, func(t *testing.T) {
					x := randQ(rng, 8, inC, h, w)
					wt := randQ(rng, 8, outC, inC, 3, 3)
					sparsify(rng, wt, frac)
					checkSparseConvEquivalence(t, x, wt, randBias(rng, outC), 1, 1)
				})
			}
		}
	}
}

// TestSparseConvEquivalenceFuzz hammers the sparse path with seeded
// random geometry, precision and sparsity, with reused buffers.
func TestSparseConvEquivalenceFuzz(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(4242))
	var col []int8
	var acc []int32 // reused: growth/reuse must not leak state
	for iter := 0; iter < 200; iter++ {
		SetWorkers(1 + rng.Intn(4))
		k := 1 + rng.Intn(5)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		inC := 1 + rng.Intn(6)
		outC := 1 + rng.Intn(12)
		h := k + rng.Intn(12)
		w := k + rng.Intn(12)
		bits := 2 + rng.Intn(7)
		if bits > 8 {
			bits = 8
		}
		x := randQ(rng, bits, inC, h, w)
		wt := randQ(rng, bits, outC, inC, k, k)
		sparsify(rng, wt, testSparsities[rng.Intn(len(testSparsities))])
		bias := randBias(rng, outC)
		ref, _, refErr := Conv2DInt8(x, wt, bias, stride, pad)
		if refErr != nil {
			continue
		}
		sw, err := PackSparse(wt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Conv2DInt8GemmSparse(x, sw, bias, stride, pad, &col, &acc); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("iter %d: acc[%d] sparse %d != naive %d", iter, i, acc[i], ref[i])
			}
		}
	}
}

// TestSparseDenseEquivalence covers the sparse FC kernel against the
// naive oracle across widths around the blocking factors, at both
// worker counts.
func TestSparseDenseEquivalence(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(77))
	var acc []int32
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for _, frac := range testSparsities {
			for iter := 0; iter < 40; iter++ {
				in := 1 + rng.Intn(200)
				out := 1 + rng.Intn(80)
				x := randQ(rng, 8, in)
				w := randQ(rng, 8, out, in)
				sparsify(rng, w, frac)
				bias := randBias(rng, out)
				ref, refDims, err := DenseInt8(x, w, bias)
				if err != nil {
					t.Fatal(err)
				}
				sw, err := PackSparse(w)
				if err != nil {
					t.Fatal(err)
				}
				width, err := DenseInt8GemmSparse(x, sw, bias, &acc)
				if err != nil {
					t.Fatal(err)
				}
				if width != refDims[0] {
					t.Fatalf("width %d != %d", width, refDims[0])
				}
				for i := range ref {
					if acc[i] != ref[i] {
						t.Fatalf("workers=%d frac=%.2f iter=%d: acc[%d] sparse %d != naive %d",
							workers, frac, iter, i, acc[i], ref[i])
					}
				}
			}
		}
	}
	// Validation parity with the dense entry points.
	x := randQ(rng, 8, 10)
	w := randQ(rng, 8, 4, 12)
	sw, err := PackSparse(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DenseInt8GemmSparse(x, sw, randBias(rng, 4), &acc); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

// TestSparseBatchEquivalence pins the batched sparse forms against the
// batched dense engine and the per-image sparse path, across worker
// counts and sparsities.
func TestSparseBatchEquivalence(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(31))
	const batch = 5
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for _, frac := range testSparsities {
			// Conv: batch sparse vs batch dense vs per-image sparse.
			w := randQ(rng, 8, 12, 6, 3, 3)
			sparsify(rng, w, frac)
			bias := randBias(rng, 12)
			sw, err := PackSparse(w)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]*QTensor, batch)
			for i := range xs {
				xs[i] = randQ(rng, 8, 6, 10, 10)
			}
			var col, dcol, scol []int8
			var acc, dacc, sacc []int32
			sh, err := Conv2DInt8GemmBatchSparse(xs, sw, bias, 1, 1, &col, &acc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Conv2DInt8GemmBatch(xs, w, bias, 1, 1, &dcol, &dacc); err != nil {
				t.Fatal(err)
			}
			blk := sh.AccLen()
			for b := 0; b < batch; b++ {
				if _, err := Conv2DInt8GemmSparse(xs[b], sw, bias, 1, 1, &scol, &sacc); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < blk; i++ {
					if acc[b*blk+i] != dacc[b*blk+i] {
						t.Fatalf("workers=%d frac=%.2f: conv img %d acc[%d]: batch-sparse %d != batch-dense %d",
							workers, frac, b, i, acc[b*blk+i], dacc[b*blk+i])
					}
					if acc[b*blk+i] != sacc[i] {
						t.Fatalf("conv img %d acc[%d]: batch %d != single %d", b, i, acc[b*blk+i], sacc[i])
					}
				}
			}

			// FC: batch sparse vs batch dense vs per-image sparse.
			fw := randQ(rng, 8, 37, 50)
			sparsify(rng, fw, frac)
			fbias := randBias(rng, 37)
			fsw, err := PackSparse(fw)
			if err != nil {
				t.Fatal(err)
			}
			fxs := make([]*QTensor, batch)
			for i := range fxs {
				fxs[i] = randQ(rng, 8, 50)
			}
			var facc, fdacc, fsacc []int32
			out, err := DenseInt8GemmBatchSparse(fxs, fsw, fbias, &facc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DenseInt8GemmBatch(fxs, fw, fbias, &fdacc); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < batch; b++ {
				if _, err := DenseInt8GemmSparse(fxs[b], fsw, fbias, &fsacc); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < out; i++ {
					if facc[b*out+i] != fdacc[b*out+i] {
						t.Fatalf("workers=%d frac=%.2f: fc img %d acc[%d]: batch-sparse %d != batch-dense %d",
							workers, frac, b, i, facc[b*out+i], fdacc[b*out+i])
					}
					if facc[b*out+i] != fsacc[i] {
						t.Fatalf("fc img %d acc[%d]: batch %d != single %d", b, i, facc[b*out+i], fsacc[i])
					}
				}
			}
		}
	}
}

// TestSparseFaultOracleBridge pins the property the executor's BRAM
// fault injection relies on: the packed image is the weight store, so a
// bit flipped in Packed.Data must be observed by the sparse kernel
// exactly as the naive kernel observes it on the unpacked tensor.
func TestSparseFaultOracleBridge(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(13))
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		x := randQ(rng, 8, 4, 9, 9)
		w := randQ(rng, 8, 10, 4, 3, 3)
		sparsify(rng, w, 0.5)
		bias := randBias(rng, 10)
		sw, err := PackSparse(w)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt the packed image the way the executor's transient-flip
		// path does (random bit within the quantized width).
		for f := 0; f < 8; f++ {
			idx := rng.Intn(len(sw.Packed.Data))
			sw.Packed.Data[idx] ^= 1 << uint(rng.Intn(sw.Packed.Bits))
		}
		var faulted QTensor
		sw.UnpackInto(&faulted)
		ref, _, err := Conv2DInt8(x, &faulted, bias, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var col []int8
		var acc []int32
		if _, err := Conv2DInt8GemmSparse(x, sw, bias, 1, 1, &col, &acc); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("workers=%d: acc[%d] sparse-on-flipped %d != naive-on-unpacked %d",
					workers, i, acc[i], ref[i])
			}
		}
	}
}
