package quant

import (
	"fmt"
	"sync"
)

// This file lifts the sparse block kernel through the same macro-tile /
// worker-pool hierarchy as the dense engine (gemm_tiled.go): tileM×tileN
// output macro-tiles over batch slabs, split across RunTiles, with K
// never split — each output element's full reduction runs on exactly
// one worker in the serial kernel's order, so every parallel width is
// bit-exact with the one-worker path and with the dense/naive oracles.
// tileM is a multiple of SparseBlockRows, so macro-tile row boundaries
// never split a skip block.

// sparseGemmJob is the pooled work descriptor of a (possibly
// multi-slab) sparse tiled GEMM, the sparse twin of gemmJob.
type sparseGemmJob struct {
	TileJob
	dst      []int32
	sw       *SparseWeights
	bt       []int8
	bias     []int32
	n        int
	mt, nt   int // row/column tile counts per slab
	blockLen int // m*n: one slab's output block
	slabLen  int // n*k: one slab's patch matrix
}

var sparseGemmJobs = sync.Pool{New: func() any { return new(sparseGemmJob) }}

func (g *sparseGemmJob) Job() *TileJob { return &g.TileJob }

func (g *sparseGemmJob) Recycle() {
	g.dst, g.sw, g.bt, g.bias = nil, nil, nil, nil
	sparseGemmJobs.Put(g)
}

func (g *sparseGemmJob) Tile(t int) {
	per := g.mt * g.nt
	b := t / per
	t -= b * per
	ti := t / g.nt
	tj := t - ti*g.nt
	i0 := ti * tileM
	i1 := min(i0+tileM, g.sw.M)
	j0 := tj * tileN
	j1 := min(j0+tileN, g.n)
	dst := g.dst[b*g.blockLen : (b+1)*g.blockLen]
	bt := g.bt[b*g.slabLen : (b+1)*g.slabLen]
	sparseGemmBlock(dst, g.sw, bt, i0, i1, j0, j1, g.n, g.bias)
}

// sparseGemmInt8Tiled computes slabs independent products dst[b] =
// sw[M×K]·bt[b][n×K]ᵀ, splitting the slab × macro-tile grid across the
// worker pool — the sparse form of gemmInt8Tiled, with the same serial
// fallback when the pool or the problem is width-1.
func sparseGemmInt8Tiled(dst []int32, sw *SparseWeights, bt []int8, slabs, n int, bias []int32) {
	m, k := sw.M, sw.K
	mt := (m + tileM - 1) / tileM
	nt := (n + tileN - 1) / tileN
	tiles := slabs * mt * nt
	if tiles <= 1 || Workers() <= 1 {
		block, slab := m*n, n*k
		for b := 0; b < slabs; b++ {
			sparseGemmBlock(dst[b*block:(b+1)*block], sw, bt[b*slab:(b+1)*slab], 0, m, 0, n, n, bias)
		}
		return
	}
	g := sparseGemmJobs.Get().(*sparseGemmJob)
	g.dst, g.sw, g.bt, g.bias = dst, sw, bt, bias
	g.n = n
	g.mt, g.nt = mt, nt
	g.blockLen, g.slabLen = m*n, n*k
	RunTiles(tiles, g)
}

// sparseDenseJob is the pooled work descriptor of a row-tiled sparse FC
// product, the sparse twin of denseJob. Exactly one of x (single image)
// or xs (batch) is set.
type sparseDenseJob struct {
	TileJob
	dst  []int32
	sw   *SparseWeights
	bias []int32
	x    []int8
	xs   []*QTensor
	out  int
}

var sparseDenseJobs = sync.Pool{New: func() any { return new(sparseDenseJob) }}

func (d *sparseDenseJob) Job() *TileJob { return &d.TileJob }

func (d *sparseDenseJob) Recycle() {
	d.dst, d.sw, d.bias, d.x, d.xs = nil, nil, nil, nil, nil
	sparseDenseJobs.Put(d)
}

func (d *sparseDenseJob) Tile(t int) {
	o0 := t * tileM
	o1 := min(o0+tileM, d.out)
	if d.x != nil {
		// Single image: the FC product is the n=1 column of the block
		// kernel (dst row stride 1).
		sparseGemmBlock(d.dst, d.sw, d.x, o0, o1, 0, 1, 1, d.bias)
		return
	}
	sparseDenseRows(d.dst, d.sw, d.bias, d.xs, d.out, o0, o1)
}

// sparseDenseInt8Tiled computes the sparse FC product for one image (xd
// set) or a batch (xs set), splitting tileM-row output bands across the
// worker pool — the sparse form of denseInt8Tiled.
func sparseDenseInt8Tiled(dst []int32, sw *SparseWeights, bias []int32, xd []int8, xs []*QTensor, out int) {
	tiles := (out + tileM - 1) / tileM
	if tiles <= 1 || Workers() <= 1 {
		if xs == nil {
			sparseGemmBlock(dst, sw, xd, 0, out, 0, 1, 1, bias)
			return
		}
		sparseDenseRows(dst, sw, bias, xs, out, 0, out)
		return
	}
	d := sparseDenseJobs.Get().(*sparseDenseJob)
	d.dst, d.sw, d.bias = dst, sw, bias
	d.x, d.xs = xd, xs
	d.out = out
	RunTiles(tiles, d)
}

// Conv2DInt8GemmSparse is the sparse form of Conv2DInt8Gemm: im2col
// into *col, then one sparse tiled GEMM into *acc that skips fully-zero
// weight blocks. Bit-exact with Conv2DInt8Gemm and Conv2DInt8 on the
// unpacked weights at every worker count.
func Conv2DInt8GemmSparse(x *QTensor, sw *SparseWeights, biasQ []int32, stride, pad int, col *[]int8, acc *[]int32) (ConvShape, error) {
	hdr := sw.header()
	sh, err := ConvShapeOf(x, &hdr, biasQ, stride, pad)
	if err != nil {
		return sh, err
	}
	if sw.M != sh.OutC || sw.K != sh.Cols() {
		return sh, fmt.Errorf("quant: sparse conv weights %dx%d do not match geometry %dx%d", sw.M, sw.K, sh.OutC, sh.Cols())
	}
	*col = growInt8(*col, sh.Cols()*sh.Pixels())
	*acc = growInt32(*acc, sh.AccLen())
	Im2colInt8(x, sh, *col)
	sparseGemmInt8Tiled(*acc, sw, *col, 1, sh.Pixels(), biasQ)
	return sh, nil
}

// DenseInt8GemmSparse is the sparse form of DenseInt8Gemm. Bit-exact
// with the dense and naive FC kernels on the unpacked weights at every
// worker count.
func DenseInt8GemmSparse(x *QTensor, sw *SparseWeights, biasQ []int32, acc *[]int32) (int, error) {
	if len(sw.Dims) != 2 {
		return 0, fmt.Errorf("quant: fc weights must be 2-D, got %v", sw.Dims)
	}
	out, in := sw.M, sw.K
	if len(x.Data) != in {
		return 0, fmt.Errorf("quant: fc input %d != %d", len(x.Data), in)
	}
	if len(biasQ) != out {
		return 0, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	*acc = growInt32(*acc, out)
	sparseDenseInt8Tiled(*acc, sw, biasQ, x.Data, nil, out)
	return out, nil
}

// Conv2DInt8GemmBatchSparse is the sparse form of Conv2DInt8GemmBatch:
// every image's patch matrix stacks into one multi-RHS sparse GEMM.
// Image b's accumulators keep the single-image layout at
// (*acc)[b*sh.AccLen():(b+1)*sh.AccLen()].
func Conv2DInt8GemmBatchSparse(xs []*QTensor, sw *SparseWeights, biasQ []int32, stride, pad int, col *[]int8, acc *[]int32) (ConvShape, error) {
	if err := validateBatch(xs); err != nil {
		return ConvShape{}, err
	}
	hdr := sw.header()
	sh, err := ConvShapeOf(xs[0], &hdr, biasQ, stride, pad)
	if err != nil {
		return sh, err
	}
	if sw.M != sh.OutC || sw.K != sh.Cols() {
		return sh, fmt.Errorf("quant: sparse conv weights %dx%d do not match geometry %dx%d", sw.M, sw.K, sh.OutC, sh.Cols())
	}
	n := len(xs)
	slab := sh.Cols() * sh.Pixels()
	*col = growInt8(*col, n*slab)
	*acc = growInt32(*acc, n*sh.AccLen())
	for b, x := range xs {
		Im2colInt8(x, sh, (*col)[b*slab:(b+1)*slab])
	}
	sparseGemmInt8Tiled(*acc, sw, *col, n, sh.Pixels(), biasQ)
	return sh, nil
}

// DenseInt8GemmBatchSparse is the sparse form of DenseInt8GemmBatch.
// Image b's accumulators are (*acc)[b*out:(b+1)*out].
func DenseInt8GemmBatchSparse(xs []*QTensor, sw *SparseWeights, biasQ []int32, acc *[]int32) (int, error) {
	if err := validateBatch(xs); err != nil {
		return 0, err
	}
	if len(sw.Dims) != 2 {
		return 0, fmt.Errorf("quant: fc weights must be 2-D, got %v", sw.Dims)
	}
	out, in := sw.M, sw.K
	if len(xs[0].Data) != in {
		return 0, fmt.Errorf("quant: fc input %d != %d", len(xs[0].Data), in)
	}
	if len(biasQ) != out {
		return 0, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	n := len(xs)
	*acc = growInt32(*acc, n*out)
	sparseDenseInt8Tiled(*acc, sw, biasQ, nil, xs, out)
	return out, nil
}
