package quant

import (
	"fmt"
	"math"
)

// Conv2DInt8 runs an int8 convolution producing raw int32 accumulators
// (bias already folded into the accumulator domain). x is CHW; w is OIHW.
// The accumulator scale is x.Scale * w.Scale.
func Conv2DInt8(x, w *QTensor, biasQ []int32, stride, pad int) (acc []int32, dims []int, err error) {
	if len(x.Dims) != 3 {
		return nil, nil, fmt.Errorf("quant: conv input must be CHW, got %v", x.Dims)
	}
	if len(w.Dims) != 4 {
		return nil, nil, fmt.Errorf("quant: conv weights must be OIHW, got %v", w.Dims)
	}
	inC, inH, inW := x.Dims[0], x.Dims[1], x.Dims[2]
	outC, wInC, k := w.Dims[0], w.Dims[1], w.Dims[2]
	if wInC != inC {
		return nil, nil, fmt.Errorf("quant: conv channels %d != %d", wInC, inC)
	}
	if len(biasQ) != outC {
		return nil, nil, fmt.Errorf("quant: conv bias length %d != %d", len(biasQ), outC)
	}
	if stride <= 0 {
		return nil, nil, fmt.Errorf("quant: conv stride must be positive")
	}
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, nil, fmt.Errorf("quant: conv output collapses")
	}
	acc = make([]int32, outC*outH*outW)
	xd, wd := x.Data, w.Data
	for oc := 0; oc < outC; oc++ {
		wBase := oc * inC * k * k
		bias := biasQ[oc]
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - pad
				sum := bias
				for ic := 0; ic < inC; ic++ {
					xBase := ic * inH * inW
					wcBase := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						rowX := xBase + iy*inW
						rowW := wcBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sum += int32(xd[rowX+ix]) * int32(wd[rowW+kx])
						}
					}
				}
				acc[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return acc, []int{outC, outH, outW}, nil
}

// DenseInt8 runs an int8 fully-connected layer producing int32
// accumulators. The input is flattened.
func DenseInt8(x, w *QTensor, biasQ []int32) (acc []int32, dims []int, err error) {
	if len(w.Dims) != 2 {
		return nil, nil, fmt.Errorf("quant: fc weights must be 2-D, got %v", w.Dims)
	}
	out, in := w.Dims[0], w.Dims[1]
	if len(x.Data) != in {
		return nil, nil, fmt.Errorf("quant: fc input %d != %d", len(x.Data), in)
	}
	if len(biasQ) != out {
		return nil, nil, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	acc = make([]int32, out)
	for o := 0; o < out; o++ {
		sum := biasQ[o]
		row := w.Data[o*in : (o+1)*in]
		for i, v := range x.Data {
			sum += int32(v) * int32(row[i])
		}
		acc[o] = sum
	}
	return acc, []int{out}, nil
}

// ReLUQ clamps negative codes to zero in place and returns q.
func ReLUQ(q *QTensor) *QTensor {
	for i, v := range q.Data {
		if v < 0 {
			q.Data[i] = 0
		}
	}
	return q
}

// ReLUQInto writes relu(x) into dst, reusing dst's backing storage.
func ReLUQInto(dst, x *QTensor) {
	dst.Data = growInt8(dst.Data, len(x.Data))
	dst.Dims = append(dst.Dims[:0], x.Dims...)
	dst.Scale = x.Scale
	dst.Bits = x.Bits
	for i, v := range x.Data {
		if v < 0 {
			v = 0
		}
		dst.Data[i] = v
	}
}

// MaxPoolQ applies max pooling in the quantized domain (scale preserved).
// Global pools the full spatial extent.
func MaxPoolQ(x *QTensor, kernel, stride int, global bool) (*QTensor, error) {
	out := &QTensor{}
	if err := MaxPoolQInto(out, x, kernel, stride, global); err != nil {
		return nil, err
	}
	return out, nil
}

// AvgPoolQ applies average pooling with round-to-nearest integer division.
func AvgPoolQ(x *QTensor, kernel, stride int, global bool) (*QTensor, error) {
	out := &QTensor{}
	if err := AvgPoolQInto(out, x, kernel, stride, global); err != nil {
		return nil, err
	}
	return out, nil
}

// MaxPoolQInto is MaxPoolQ into a reused destination tensor.
func MaxPoolQInto(dst, x *QTensor, kernel, stride int, global bool) error {
	return poolQInto(dst, x, kernel, stride, global, true)
}

// AvgPoolQInto is AvgPoolQ into a reused destination tensor.
func AvgPoolQInto(dst, x *QTensor, kernel, stride int, global bool) error {
	return poolQInto(dst, x, kernel, stride, global, false)
}

func poolQInto(dst, x *QTensor, kernel, stride int, global, isMax bool) error {
	if len(x.Dims) != 3 {
		return fmt.Errorf("quant: pool input must be CHW, got %v", x.Dims)
	}
	c, h, w := x.Dims[0], x.Dims[1], x.Dims[2]
	if global {
		kernel = h
		if w > kernel {
			kernel = w
		}
		stride = 1
	}
	if kernel <= 0 || stride <= 0 {
		return fmt.Errorf("quant: pool kernel/stride must be positive")
	}
	var outH, outW int
	if global {
		outH, outW = 1, 1
	} else {
		outH = (h-kernel)/stride + 1
		outW = (w-kernel)/stride + 1
	}
	if outH <= 0 || outW <= 0 {
		return fmt.Errorf("quant: pool output collapses")
	}
	out := dst
	out.Data = growInt8(out.Data, c*outH*outW)
	out.Dims = append(out.Dims[:0], c, outH, outW)
	out.Scale = x.Scale
	out.Bits = x.Bits
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := int32(math.MinInt32)
				sum := int64(0)
				count := 0
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky
					if iy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx
						if ix >= w {
							continue
						}
						v := int32(x.Data[(ch*h+iy)*w+ix])
						if v > best {
							best = v
						}
						sum += int64(v)
						count++
					}
				}
				var res int32
				if isMax {
					res = best
				} else if count > 0 {
					// Round half away from zero like the DPU divider.
					if sum >= 0 {
						res = int32((sum + int64(count)/2) / int64(count))
					} else {
						res = int32((sum - int64(count)/2) / int64(count))
					}
				}
				out.Data[(ch*outH+oy)*outW+ox] = int8(res)
			}
		}
	}
	return nil
}

// AddQ adds quantized tensors element-wise, requantizing both operands to
// outScale at the given precision (the DPU's eltwise unit).
func AddQ(a, b *QTensor, outScale float32, bits int) (*QTensor, error) {
	out := &QTensor{}
	if err := AddQInto(out, a, b, outScale, bits); err != nil {
		return nil, err
	}
	return out, nil
}

// AddQInto is AddQ into a reused destination tensor. dst may alias a (the
// accumulation pattern of a multi-input eltwise node).
func AddQInto(dst, a, b *QTensor, outScale float32, bits int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if len(a.Data) != len(b.Data) {
		return fmt.Errorf("quant: add size mismatch %v vs %v", a.Dims, b.Dims)
	}
	ra := float64(a.Scale) / float64(outScale)
	rb := float64(b.Scale) / float64(outScale)
	qmax := QMax(bits)
	ad, bd := a.Data, b.Data
	dst.Data = growInt8(dst.Data, len(ad))
	dst.Dims = append(dst.Dims[:0], a.Dims...)
	dst.Scale = outScale
	dst.Bits = bits
	for i := range ad {
		v := math.RoundToEven(float64(ad[i])*ra + float64(bd[i])*rb)
		dst.Data[i] = clampToInt8(int32(v), qmax)
	}
	return nil
}

// BatchNormQInto applies a folded per-channel batch norm
// (y = x*scale[c] + shift[c]) in the quantized domain. The per-element
// float conversions are hoisted: each channel's multiplier and offset are
// precomputed once in the output-code domain, so the inner loop is one
// fused multiply-add per element. Note the hoist reassociates the float64
// arithmetic (x*(xScale*sc/outScale) + sh/outScale instead of
// (x*xScale*sc + sh)/outScale): on a near-exact rounding tie the emitted
// code can differ by one from the pre-hoist form. Compiled kernels are
// unaffected — DECENT folds conv-fed batch norms into the conv weights
// before quantization.
func BatchNormQInto(dst, x *QTensor, scale, shift []float32, outScale float32, bits int) {
	c := len(scale)
	hw := len(x.Data) / c
	dst.Data = growInt8(dst.Data, len(x.Data))
	dst.Dims = append(dst.Dims[:0], x.Dims...)
	dst.Scale = outScale
	dst.Bits = bits
	qmax := float64(QMax(bits))
	xd, od := x.Data, dst.Data
	for ch := 0; ch < c; ch++ {
		// Per-channel constants in the output-code domain: code =
		// x*m + b, where m folds the input scale and the channel gain
		// and b folds the channel shift.
		m := float64(x.Scale) * float64(scale[ch]) / float64(outScale)
		b := float64(shift[ch]) / float64(outScale)
		for i := ch * hw; i < (ch+1)*hw; i++ {
			code := math.RoundToEven(float64(xd[i])*m + b)
			if code > qmax {
				code = qmax
			}
			if code < -qmax {
				code = -qmax
			}
			od[i] = int8(code)
		}
	}
}

// ConcatQ concatenates along channels, requantizing every input to
// outScale.
func ConcatQ(inputs []*QTensor, outScale float32, bits int) (*QTensor, error) {
	out := &QTensor{}
	if err := ConcatQInto(out, inputs, outScale, bits); err != nil {
		return nil, err
	}
	return out, nil
}

// ConcatQInto is ConcatQ into a reused destination tensor.
func ConcatQInto(dst *QTensor, inputs []*QTensor, outScale float32, bits int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if len(inputs) < 2 {
		return fmt.Errorf("quant: concat needs at least 2 inputs")
	}
	h, w := inputs[0].Dims[1], inputs[0].Dims[2]
	totalC := 0
	for _, q := range inputs {
		if len(q.Dims) != 3 || q.Dims[1] != h || q.Dims[2] != w {
			return fmt.Errorf("quant: concat spatial mismatch")
		}
		totalC += q.Dims[0]
	}
	dst.Data = growInt8(dst.Data, totalC*h*w)
	dst.Dims = append(dst.Dims[:0], totalC, h, w)
	dst.Scale = outScale
	dst.Bits = bits
	qmax := QMax(bits)
	off := 0
	for _, q := range inputs {
		r := float64(q.Scale) / float64(outScale)
		for _, v := range q.Data {
			dst.Data[off] = clampToInt8(int32(math.RoundToEven(float64(v)*r)), qmax)
			off++
		}
	}
	return nil
}
