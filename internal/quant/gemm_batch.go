package quant

import "fmt"

// This file is the batched extension of the GEMM lowering: N images'
// patch matrices stack into one tall multi-RHS GEMM per convolution, and
// the fully-connected GEMV becomes a GEMM over the batch. Both produce
// per-image accumulator blocks laid out exactly like the single-image
// lowerings (image b's block is acc[b*blockLen:(b+1)*blockLen]), so the
// per-image MAC-fault injection and the requantize epilogue operate on a
// batch member bit-exactly as they would on a lone image. Accumulation
// order per output element — bias, then taps in (inC, ky, kx) order — is
// identical to the single-image kernels, so every element is bit-exact
// with Conv2DInt8Gemm / DenseInt8Gemm on the same input.

// validateBatch checks that every batch member shares the first image's
// geometry (the compiled kernel admits exactly one input shape).
func validateBatch(xs []*QTensor) error {
	if len(xs) == 0 {
		return fmt.Errorf("quant: empty batch")
	}
	d0 := xs[0].Dims
	for i, x := range xs[1:] {
		if len(x.Dims) != len(d0) {
			return fmt.Errorf("quant: batch image %d rank %d != %d", i+1, len(x.Dims), len(d0))
		}
		for j, d := range x.Dims {
			if d != d0[j] {
				return fmt.Errorf("quant: batch image %d dims %v != %v", i+1, x.Dims, d0)
			}
		}
	}
	return nil
}

// Conv2DInt8GemmBatch is the batched lowering of Conv2DInt8Gemm: every
// image is unfolded into one stacked patch matrix (image b's slab at
// col[b*Pixels*Cols:]) and a single multi-RHS GEMM computes the whole
// batch. Image b's accumulators are
// (*acc)[b*sh.AccLen():(b+1)*sh.AccLen()] in the single-image OutC×Pixels
// layout. Both buffers are grown in place and reused across calls.
func Conv2DInt8GemmBatch(xs []*QTensor, w *QTensor, biasQ []int32, stride, pad int, col *[]int8, acc *[]int32) (ConvShape, error) {
	if err := validateBatch(xs); err != nil {
		return ConvShape{}, err
	}
	sh, err := ConvShapeOf(xs[0], w, biasQ, stride, pad)
	if err != nil {
		return sh, err
	}
	n := len(xs)
	slab := sh.Cols() * sh.Pixels()
	*col = growInt8(*col, n*slab)
	*acc = growInt32(*acc, n*sh.AccLen())
	for b, x := range xs {
		Im2colInt8(x, sh, (*col)[b*slab:(b+1)*slab])
	}
	gemmInt8MultiRHS(*acc, w.Data, *col, sh.OutC, sh.Cols(), n, sh.Pixels(), biasQ)
	return sh, nil
}

// gemmInt8MultiRHS computes the stacked product: a[m×k] against n
// patch-major RHS slabs of pix columns each (bt[b*pix*k:] is slab b),
// writing per-slab output blocks dst[b*m*pix:] in row-major m×pix
// layout. The slab × macro-tile grid is split across the worker pool
// (gemm_tiled.go); at one worker the slabs run in order, keeping the
// small weight matrix cache-resident across the whole stacked walk
// while each patch slab streams exactly once. Per-element accumulation
// order is identical to gemmInt8 at every width, so the stacked product
// is bit-exact with n independent single-image GEMMs.
func gemmInt8MultiRHS(dst []int32, a, bt []int8, m, k, n, pix int, bias []int32) {
	gemmInt8Tiled(dst, a, bt, m, k, n, pix, bias)
}

// DenseInt8GemmBatch is the batched lowering of DenseInt8Gemm: the
// fully-connected GEMV becomes a multi-RHS GEMM over the batch, so each
// weight row streams once per gemmCols-wide image tile instead of once
// per image. Image b's accumulators are (*acc)[b*out:(b+1)*out]; the
// buffer is grown in place and reused across calls. Bit-exact with
// DenseInt8Gemm applied per image.
func DenseInt8GemmBatch(xs []*QTensor, w *QTensor, biasQ []int32, acc *[]int32) (int, error) {
	if err := validateBatch(xs); err != nil {
		return 0, err
	}
	if len(w.Dims) != 2 {
		return 0, fmt.Errorf("quant: fc weights must be 2-D, got %v", w.Dims)
	}
	out, in := w.Dims[0], w.Dims[1]
	if len(xs[0].Data) != in {
		return 0, fmt.Errorf("quant: fc input %d != %d", len(xs[0].Data), in)
	}
	if len(biasQ) != out {
		return 0, fmt.Errorf("quant: fc bias length %d != %d", len(biasQ), out)
	}
	n := len(xs)
	*acc = growInt32(*acc, n*out)
	denseInt8Tiled(*acc, w.Data, biasQ, nil, xs, in, out)
	return out, nil
}

// denseInt8Rows computes output rows [o0,o1) of the batched FC product
// for every image: image b's row o lands at dst[b*out+o]. Weight rows
// are the outer loop so each gemmRows-row group streams the batch once;
// restricting the row range leaves every element's reduction untouched,
// so row-banded parallel calls are bit-exact with one full-range call
// and with DenseInt8Gemm per image.
func denseInt8Rows(dst []int32, wd []int8, bias []int32, xs []*QTensor, in, out, o0, o1 int) {
	n := len(xs)
	o := o0
	for ; o+gemmRows <= o1; o += gemmRows {
		r0 := wd[(o+0)*in : (o+1)*in]
		r1 := wd[(o+1)*in : (o+2)*in]
		r2 := wd[(o+2)*in : (o+3)*in]
		r3 := wd[(o+3)*in : (o+4)*in]
		bi0, bi1, bi2, bi3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		b := 0
		for ; b+gemmCols <= n; b += gemmCols {
			x0 := xs[b].Data
			x1 := xs[b+1].Data
			s00, s01 := bi0, bi0
			s10, s11 := bi1, bi1
			s20, s21 := bi2, bi2
			s30, s31 := bi3, bi3
			for p, xv := range x0 {
				v0 := int32(xv)
				v1 := int32(x1[p])
				w0 := int32(r0[p])
				w1 := int32(r1[p])
				w2 := int32(r2[p])
				w3 := int32(r3[p])
				s00 += w0 * v0
				s01 += w0 * v1
				s10 += w1 * v0
				s11 += w1 * v1
				s20 += w2 * v0
				s21 += w2 * v1
				s30 += w3 * v0
				s31 += w3 * v1
			}
			dst[(b+0)*out+o], dst[(b+1)*out+o] = s00, s01
			dst[(b+0)*out+o+1], dst[(b+1)*out+o+1] = s10, s11
			dst[(b+0)*out+o+2], dst[(b+1)*out+o+2] = s20, s21
			dst[(b+0)*out+o+3], dst[(b+1)*out+o+3] = s30, s31
		}
		for ; b < n; b++ {
			xd := xs[b].Data
			s0, s1, s2, s3 := bi0, bi1, bi2, bi3
			for p, xv := range xd {
				v := int32(xv)
				s0 += int32(r0[p]) * v
				s1 += int32(r1[p]) * v
				s2 += int32(r2[p]) * v
				s3 += int32(r3[p]) * v
			}
			dst[b*out+o], dst[b*out+o+1], dst[b*out+o+2], dst[b*out+o+3] = s0, s1, s2, s3
		}
	}
	for ; o < o1; o++ {
		row := wd[o*in : (o+1)*in]
		bi := bias[o]
		for b := 0; b < n; b++ {
			xd := xs[b].Data
			sum := bi
			for p, xv := range xd {
				sum += int32(row[p]) * int32(xv)
			}
			dst[b*out+o] = sum
		}
	}
}
