package quant

import (
	"fmt"
	"math/bits"
)

// This file is the block-sparse weight format and its register-tile
// kernel — the executor-side payoff of the prune→quantize→deploy
// pipeline. The format is aligned to the tiling hierarchy in
// gemm_tiled.go: the skip unit is the SparseBlockRows×1 column slice of
// the weight matrix that feeds one K-step of the 4×2 register tile, so
// a fully-zero block is skipped without touching the patch matrix and a
// nonzero block runs the exact 8-MAC step of the dense inner kernel.
// Because a skipped block contributes only exact zeros to the int32
// accumulators and the surviving blocks accumulate in the same
// ascending-K order as gemmInt8Block, every output element is
// bit-identical to the dense and naive kernels on the same weights —
// at every worker count, since the macro-tile partition above this
// kernel still splits only output coordinates (K is never split).
//
// The compacted block payload lives in an ordinary QTensor: it is the
// BRAM-resident weight image of a sparse deployment, so the executor's
// transient-flip, SECDED and scrub machinery operate on it unchanged —
// and since it is smaller than the dense image, a pruned kernel has
// fewer protected words to corrupt and scrub (see internal/ecc and the
// governor's corrected-rate budget).

// SparseBlockRows is the skip-block height: the gemmRows register rows
// that one packed block feeds. Macro-tile row boundaries (tileM) are a
// multiple of it, so tile partitions never split a block.
const SparseBlockRows = gemmRows

// SparseWeights is a weight matrix in block-sparse packed form: the M
// rows are grouped into ceil(M/SparseBlockRows) row groups, each group
// carrying a K-bit nonzero bitmap (bit p set iff any of the group's
// rows is nonzero at reduction index p) and a compacted run of
// SparseBlockRows-byte blocks, one per set bit, in ascending p order.
type SparseWeights struct {
	// Packed holds the compacted nonzero blocks — SparseBlockRows int8
	// codes per set bitmap bit, rows-in-group order, zero-padded when
	// the last group is ragged. This is the BRAM-resident image: fault
	// injection and ECC scrubbing address it exactly like a dense
	// weight tensor's Data.
	Packed *QTensor
	// Bitmap is group-major: group r's K-bit map occupies words
	// [r*BitmapStride, (r+1)*BitmapStride), bit p at word p/64 bit p%64.
	Bitmap []uint64
	// Start[r] is the block offset of group r's first packed block;
	// Start[Groups()] is the total block count.
	Start []int32
	// Dims is the logical dense weight shape (OIHW conv, 2-D dense).
	Dims []int
	// M×K is the logical GEMM operand: M output rows, K reduction depth.
	M, K int
	// BitmapStride is ceil(K/64), the bitmap words per group.
	BitmapStride int
}

// Groups returns the row-group count.
func (s *SparseWeights) Groups() int {
	return (s.M + SparseBlockRows - 1) / SparseBlockRows
}

// Blocks returns the stored (nonzero) block count.
func (s *SparseWeights) Blocks() int {
	if len(s.Start) == 0 {
		return 0
	}
	return int(s.Start[len(s.Start)-1])
}

// BlockSparsity returns the fraction of skip blocks that are fully zero
// — the fraction of inner-kernel K-steps the sparse kernel elides.
func (s *SparseWeights) BlockSparsity() float64 {
	total := s.Groups() * s.K
	if total == 0 {
		return 0
	}
	return 1 - float64(s.Blocks())/float64(total)
}

// header returns a dense-shaped QTensor view for geometry validation
// (ConvShapeOf reads only Dims); it carries no weight data.
func (s *SparseWeights) header() QTensor {
	return QTensor{Dims: s.Dims, Scale: s.Packed.Scale, Bits: s.Packed.Bits}
}

// PackSparse converts a quantized weight tensor to block-sparse packed
// form. The dense tensor is not retained: the packed image plus the
// bitmap reconstruct it exactly (see UnpackInto).
func PackSparse(w *QTensor) (*SparseWeights, error) {
	if len(w.Dims) != 2 && len(w.Dims) != 4 {
		return nil, fmt.Errorf("quant: sparse weights must be 2-D (FC) or OIHW (conv), got %v", w.Dims)
	}
	m := w.Dims[0]
	k := 1
	for _, d := range w.Dims[1:] {
		k *= d
	}
	if m <= 0 || k <= 0 || m*k != len(w.Data) {
		return nil, fmt.Errorf("quant: sparse weight dims %v do not cover %d codes", w.Dims, len(w.Data))
	}
	groups := (m + SparseBlockRows - 1) / SparseBlockRows
	stride := (k + 63) / 64
	s := &SparseWeights{
		Bitmap:       make([]uint64, groups*stride),
		Start:        make([]int32, groups+1),
		Dims:         append([]int(nil), w.Dims...),
		M:            m,
		K:            k,
		BitmapStride: stride,
	}
	// First pass: mark nonzero blocks and count them.
	nBlocks := 0
	for r := 0; r < groups; r++ {
		i0 := r * SparseBlockRows
		rows := min(SparseBlockRows, m-i0)
		bm := s.Bitmap[r*stride : (r+1)*stride]
		for p := 0; p < k; p++ {
			nz := false
			for q := 0; q < rows; q++ {
				if w.Data[(i0+q)*k+p] != 0 {
					nz = true
					break
				}
			}
			if nz {
				bm[p>>6] |= 1 << uint(p&63)
				nBlocks++
			}
		}
		s.Start[r+1] = int32(nBlocks)
	}
	// Second pass: compact the surviving blocks in (group, p) order.
	packed := make([]int8, nBlocks*SparseBlockRows)
	pos := 0
	for r := 0; r < groups; r++ {
		i0 := r * SparseBlockRows
		rows := min(SparseBlockRows, m-i0)
		bm := s.Bitmap[r*stride : (r+1)*stride]
		for wi, word := range bm {
			pBase := wi << 6
			for word != 0 {
				p := pBase + bits.TrailingZeros64(word)
				word &= word - 1
				for q := 0; q < rows; q++ {
					packed[pos+q] = w.Data[(i0+q)*k+p]
				}
				pos += SparseBlockRows
			}
		}
	}
	s.Packed = &QTensor{
		Data:  packed,
		Dims:  []int{nBlocks, SparseBlockRows},
		Scale: w.Scale,
		Bits:  w.Bits,
	}
	return s, nil
}

// UnpackInto reconstructs the dense weight tensor from the packed image
// — including any bit corruption currently present in Packed.Data, which
// is what makes it the oracle bridge for fault-injection equivalence
// tests: flip the packed image, unpack, and the naive kernel on the
// unpacked tensor must match the sparse kernel on the packed one.
func (s *SparseWeights) UnpackInto(dst *QTensor) {
	dst.Data = growInt8(dst.Data, s.M*s.K)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	dst.Dims = append(dst.Dims[:0], s.Dims...)
	dst.Scale = s.Packed.Scale
	dst.Bits = s.Packed.Bits
	pd := s.Packed.Data
	for r := 0; r < s.Groups(); r++ {
		i0 := r * SparseBlockRows
		rows := min(SparseBlockRows, s.M-i0)
		bm := s.Bitmap[r*s.BitmapStride : (r+1)*s.BitmapStride]
		blk := int(s.Start[r]) * SparseBlockRows
		for wi, word := range bm {
			pBase := wi << 6
			for word != 0 {
				p := pBase + bits.TrailingZeros64(word)
				word &= word - 1
				for q := 0; q < rows; q++ {
					dst.Data[(i0+q)*s.K+p] = pd[blk+q]
				}
				blk += SparseBlockRows
			}
		}
	}
}

// sparseGemmBlock computes dst rows [i0,i1) × columns [j0,j1) of the
// M×n product against the patch-major RHS bt (n rows of K), with ld the
// dst row stride — the sparse form of gemmInt8Block. i0 must be a
// multiple of SparseBlockRows (macro-tile rows are). Per row group it
// walks the nonzero bitmap with TrailingZeros64 and runs the dense
// kernel's 8-MAC step once per surviving block: identical accumulation
// order over identical nonzero terms, so the result is bit-exact with
// the dense kernel on the unpacked weights.
func sparseGemmBlock(dst []int32, sw *SparseWeights, bt []int8, i0, i1, j0, j1, ld int, bias []int32) {
	k := sw.K
	pd := sw.Packed.Data
	for i := i0; i < i1; i += SparseBlockRows {
		r := i / SparseBlockRows
		rows := min(SparseBlockRows, i1-i)
		bm := sw.Bitmap[r*sw.BitmapStride : (r+1)*sw.BitmapStride]
		base := int(sw.Start[r]) * SparseBlockRows
		var bi0, bi1, bi2, bi3 int32
		bi0 = bias[i]
		if rows > 1 {
			bi1 = bias[i+1]
		}
		if rows > 2 {
			bi2 = bias[i+2]
		}
		if rows > 3 {
			bi3 = bias[i+3]
		}
		j := j0
		for ; j+gemmCols <= j1; j += gemmCols {
			x0 := bt[(j+0)*k : (j+1)*k]
			x1 := bt[(j+1)*k : (j+2)*k]
			s00, s01 := bi0, bi0
			s10, s11 := bi1, bi1
			s20, s21 := bi2, bi2
			s30, s31 := bi3, bi3
			blk := base
			for wi, word := range bm {
				pBase := wi << 6
				for word != 0 {
					p := pBase + bits.TrailingZeros64(word)
					word &= word - 1
					v0 := int32(x0[p])
					v1 := int32(x1[p])
					w0 := int32(pd[blk])
					w1 := int32(pd[blk+1])
					w2 := int32(pd[blk+2])
					w3 := int32(pd[blk+3])
					blk += SparseBlockRows
					s00 += w0 * v0
					s01 += w0 * v1
					s10 += w1 * v0
					s11 += w1 * v1
					s20 += w2 * v0
					s21 += w2 * v1
					s30 += w3 * v0
					s31 += w3 * v1
				}
			}
			dst[(i+0)*ld+j], dst[(i+0)*ld+j+1] = s00, s01
			if rows > 1 {
				dst[(i+1)*ld+j], dst[(i+1)*ld+j+1] = s10, s11
			}
			if rows > 2 {
				dst[(i+2)*ld+j], dst[(i+2)*ld+j+1] = s20, s21
			}
			if rows > 3 {
				dst[(i+3)*ld+j], dst[(i+3)*ld+j+1] = s30, s31
			}
		}
		for ; j < j1; j++ {
			x0 := bt[j*k : (j+1)*k]
			s0, s1, s2, s3 := bi0, bi1, bi2, bi3
			blk := base
			for wi, word := range bm {
				pBase := wi << 6
				for word != 0 {
					p := pBase + bits.TrailingZeros64(word)
					word &= word - 1
					v := int32(x0[p])
					s0 += int32(pd[blk]) * v
					s1 += int32(pd[blk+1]) * v
					s2 += int32(pd[blk+2]) * v
					s3 += int32(pd[blk+3]) * v
					blk += SparseBlockRows
				}
			}
			dst[(i+0)*ld+j] = s0
			if rows > 1 {
				dst[(i+1)*ld+j] = s1
			}
			if rows > 2 {
				dst[(i+2)*ld+j] = s2
			}
			if rows > 3 {
				dst[(i+3)*ld+j] = s3
			}
		}
	}
}

// sparseDenseRows computes output rows [o0,o1) of the batched FC
// product for every image (image b's row o at dst[b*out+o]) — the
// sparse form of denseInt8Rows: row groups are the outer loop so each
// group's packed run streams the batch once, image pairs share each
// loaded block.
func sparseDenseRows(dst []int32, sw *SparseWeights, bias []int32, xs []*QTensor, out, o0, o1 int) {
	n := len(xs)
	pd := sw.Packed.Data
	for o := o0; o < o1; o += SparseBlockRows {
		r := o / SparseBlockRows
		rows := min(SparseBlockRows, o1-o)
		bm := sw.Bitmap[r*sw.BitmapStride : (r+1)*sw.BitmapStride]
		base := int(sw.Start[r]) * SparseBlockRows
		var bi0, bi1, bi2, bi3 int32
		bi0 = bias[o]
		if rows > 1 {
			bi1 = bias[o+1]
		}
		if rows > 2 {
			bi2 = bias[o+2]
		}
		if rows > 3 {
			bi3 = bias[o+3]
		}
		b := 0
		for ; b+gemmCols <= n; b += gemmCols {
			x0 := xs[b].Data
			x1 := xs[b+1].Data
			s00, s01 := bi0, bi0
			s10, s11 := bi1, bi1
			s20, s21 := bi2, bi2
			s30, s31 := bi3, bi3
			blk := base
			for wi, word := range bm {
				pBase := wi << 6
				for word != 0 {
					p := pBase + bits.TrailingZeros64(word)
					word &= word - 1
					v0 := int32(x0[p])
					v1 := int32(x1[p])
					w0 := int32(pd[blk])
					w1 := int32(pd[blk+1])
					w2 := int32(pd[blk+2])
					w3 := int32(pd[blk+3])
					blk += SparseBlockRows
					s00 += w0 * v0
					s01 += w0 * v1
					s10 += w1 * v0
					s11 += w1 * v1
					s20 += w2 * v0
					s21 += w2 * v1
					s30 += w3 * v0
					s31 += w3 * v1
				}
			}
			dst[(b+0)*out+o], dst[(b+1)*out+o] = s00, s01
			if rows > 1 {
				dst[(b+0)*out+o+1], dst[(b+1)*out+o+1] = s10, s11
			}
			if rows > 2 {
				dst[(b+0)*out+o+2], dst[(b+1)*out+o+2] = s20, s21
			}
			if rows > 3 {
				dst[(b+0)*out+o+3], dst[(b+1)*out+o+3] = s30, s31
			}
		}
		for ; b < n; b++ {
			xd := xs[b].Data
			s0, s1, s2, s3 := bi0, bi1, bi2, bi3
			blk := base
			for wi, word := range bm {
				pBase := wi << 6
				for word != 0 {
					p := pBase + bits.TrailingZeros64(word)
					word &= word - 1
					v := int32(xd[p])
					s0 += int32(pd[blk]) * v
					s1 += int32(pd[blk+1]) * v
					s2 += int32(pd[blk+2]) * v
					s3 += int32(pd[blk+3]) * v
					blk += SparseBlockRows
				}
			}
			dst[b*out+o] = s0
			if rows > 1 {
				dst[b*out+o+1] = s1
			}
			if rows > 2 {
				dst[b*out+o+2] = s2
			}
			if rows > 3 {
				dst[b*out+o+3] = s3
			}
		}
	}
}
