package quant

import (
	"math/rand"
	"testing"

	"fpgauv/internal/tensor"
)

// randomQ builds a quantized tensor with the given dims.
func randomQ(t *testing.T, rng *rand.Rand, std float64, dims ...int) *QTensor {
	t.Helper()
	x := tensor.New(dims...)
	x.FillRandn(rng, std)
	q, err := Quantize(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestConvGemmBatchEquivalenceGrid checks the stacked multi-RHS conv GEMM
// against per-image single lowerings over a batch-size × geometry grid:
// every image's accumulator block must be bit-identical.
func TestConvGemmBatchEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		inC, inH, inW, outC, k, stride, pad int
	}{
		{1, 5, 5, 3, 3, 1, 1},
		{3, 8, 8, 4, 3, 1, 1},
		{4, 9, 7, 6, 3, 2, 0},
		{2, 6, 6, 5, 1, 1, 0},
		{3, 12, 12, 7, 5, 2, 2},
	}
	for _, tc := range cases {
		w := randomQ(t, rng, 0.3, tc.outC, tc.inC, tc.k, tc.k)
		bias := make([]int32, tc.outC)
		for i := range bias {
			bias[i] = int32(rng.Intn(201) - 100)
		}
		for _, batch := range []int{1, 2, 3, 5, 8} {
			xs := make([]*QTensor, batch)
			for b := range xs {
				xs[b] = randomQ(t, rng, 1, tc.inC, tc.inH, tc.inW)
			}
			var col []int8
			var acc []int32
			sh, err := Conv2DInt8GemmBatch(xs, w, bias, tc.stride, tc.pad, &col, &acc)
			if err != nil {
				t.Fatalf("%+v batch=%d: %v", tc, batch, err)
			}
			var scol []int8
			var sacc []int32
			for b, x := range xs {
				ssh, err := Conv2DInt8Gemm(x, w, bias, tc.stride, tc.pad, &scol, &sacc)
				if err != nil {
					t.Fatal(err)
				}
				if ssh != sh {
					t.Fatalf("%+v batch=%d: shape %+v != %+v", tc, batch, sh, ssh)
				}
				block := acc[b*sh.AccLen() : (b+1)*sh.AccLen()]
				for i, v := range sacc[:sh.AccLen()] {
					if block[i] != v {
						t.Fatalf("%+v batch=%d image %d: acc[%d] = %d, want %d",
							tc, batch, b, i, block[i], v)
					}
				}
			}
		}
	}
}

// TestDenseGemmBatchEquivalence checks the batched FC GEMM against
// per-image blocked GEMV lowerings across batch and layer sizes.
func TestDenseGemmBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dims := range [][2]int{{3, 7}, {8, 16}, {13, 9}, {5, 64}} {
		out, in := dims[0], dims[1]
		w := randomQ(t, rng, 0.3, out, in)
		bias := make([]int32, out)
		for i := range bias {
			bias[i] = int32(rng.Intn(401) - 200)
		}
		for _, batch := range []int{1, 2, 3, 4, 7} {
			xs := make([]*QTensor, batch)
			for b := range xs {
				xs[b] = randomQ(t, rng, 1, in)
			}
			var acc []int32
			width, err := DenseInt8GemmBatch(xs, w, bias, &acc)
			if err != nil {
				t.Fatalf("out=%d in=%d batch=%d: %v", out, in, batch, err)
			}
			if width != out {
				t.Fatalf("width = %d, want %d", width, out)
			}
			var sacc []int32
			for b, x := range xs {
				if _, err := DenseInt8Gemm(x, w, bias, &sacc); err != nil {
					t.Fatal(err)
				}
				block := acc[b*out : (b+1)*out]
				for i, v := range sacc[:out] {
					if block[i] != v {
						t.Fatalf("out=%d in=%d batch=%d image %d: acc[%d] = %d, want %d",
							out, in, batch, b, i, block[i], v)
					}
				}
			}
		}
	}
}

// TestConvGemmBatchFuzz drives random geometries and batch sizes through
// the stacked lowering against the single-image oracle.
func TestConvGemmBatchFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 40; iter++ {
		inC := 1 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		inH := k + rng.Intn(8)
		inW := k + rng.Intn(8)
		outC := 1 + rng.Intn(7)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		batch := 1 + rng.Intn(6)
		w := randomQ(t, rng, 0.4, outC, inC, k, k)
		bias := make([]int32, outC)
		xs := make([]*QTensor, batch)
		for b := range xs {
			xs[b] = randomQ(t, rng, 1, inC, inH, inW)
		}
		var col []int8
		var acc []int32
		sh, err := Conv2DInt8GemmBatch(xs, w, bias, stride, pad, &col, &acc)
		if err != nil {
			// Some random geometries collapse; the single path must
			// reject them identically.
			if _, serr := Conv2DInt8Gemm(xs[0], w, bias, stride, pad, new([]int8), new([]int32)); serr == nil {
				t.Fatalf("iter %d: batch rejected what single accepted: %v", iter, err)
			}
			continue
		}
		var scol []int8
		var sacc []int32
		for b, x := range xs {
			if _, err := Conv2DInt8Gemm(x, w, bias, stride, pad, &scol, &sacc); err != nil {
				t.Fatal(err)
			}
			block := acc[b*sh.AccLen() : (b+1)*sh.AccLen()]
			for i, v := range sacc[:sh.AccLen()] {
				if block[i] != v {
					t.Fatalf("iter %d image %d: acc[%d] = %d, want %d", iter, b, i, block[i], v)
				}
			}
		}
	}
}

// TestBatchValidation pins the batched lowerings' error contract:
// empty batches and mismatched member geometry are rejected.
func TestBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := randomQ(t, rng, 0.3, 4, 3, 3, 3)
	bias := make([]int32, 4)
	var col []int8
	var acc []int32
	if _, err := Conv2DInt8GemmBatch(nil, w, bias, 1, 1, &col, &acc); err == nil {
		t.Fatal("empty batch accepted")
	}
	xs := []*QTensor{
		randomQ(t, rng, 1, 3, 8, 8),
		randomQ(t, rng, 1, 3, 8, 9),
	}
	if _, err := Conv2DInt8GemmBatch(xs, w, bias, 1, 1, &col, &acc); err == nil {
		t.Fatal("mismatched batch geometry accepted")
	}
	fw := randomQ(t, rng, 0.3, 4, 16)
	fxs := []*QTensor{randomQ(t, rng, 1, 16), randomQ(t, rng, 1, 12)}
	if _, err := DenseInt8GemmBatch(fxs, fw, bias, &acc); err == nil {
		t.Fatal("mismatched fc batch accepted")
	}
}
