package quant

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the process-wide tile worker pool behind the parallel
// GEMM lowerings (and the DPU's batch lanes, which share it so lane- and
// tile-level parallelism contend for one budget instead of
// oversubscribing the box). The design is deliberately non-blocking:
// RunTiles offers work to idle helpers but never waits for one — the
// calling goroutine always participates and, when every helper is busy,
// simply runs the whole index space itself. Nested RunTiles calls (a
// batch lane whose stacked GEMM fans out again) therefore cannot
// deadlock: a job's items only ever wait on strictly deeper jobs.
//
// Work items are Tiler values whose coordination state (TileJob) is
// embedded in a caller-pooled struct, so a steady-state parallel GEMM
// performs no heap allocation: no closures are captured and the job
// structs recycle through sync.Pools guarded by a reference count (a
// helper may still hold a drained job it received late; the last
// holder — caller or helper — recycles it).

// maxGemmWorkers is the hard cap on the pool size: tile parallelism is
// memory-bandwidth-bound well before this, and an unbounded pool would
// let a misconfigured GOMAXPROCS spawn helpers that only thrash.
const maxGemmWorkers = 16

// workerOverride holds the runtime-tuned worker count; 0 selects the
// automatic GOMAXPROCS-aware default.
var workerOverride atomic.Int64

// tileQueue carries offered jobs to the helper goroutines. Buffered so
// an offer can land even while every helper is mid-tile; a helper that
// receives an already-drained job releases it and moves on.
var tileQueue = make(chan Tiler, maxGemmWorkers)

// helperCount tracks spawned helper goroutines (at most
// maxGemmWorkers-1; the caller is always the remaining executor).
var helperCount atomic.Int32

// Workers returns the effective GEMM worker-pool size: the SetWorkers
// override when one is set, otherwise GOMAXPROCS, both capped at
// maxGemmWorkers.
func Workers() int {
	n := int(workerOverride.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxGemmWorkers {
		n = maxGemmWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers retunes the process-wide pool: n >= 1 pins the executor
// count (callers included), n <= 0 restores the automatic
// GOMAXPROCS-aware default. Safe to call at any time, including while
// GEMMs are in flight — running jobs finish at their admission-time
// width.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// TileJob is the coordination state of one parallel index space,
// embedded in a concrete Tiler so dispatch needs no extra allocation.
type TileJob struct {
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
	refs atomic.Int32
}

// Tiler is one parallelizable job: Tile(i) computes index i of a dense
// [0, n) space, with distinct indices safe to run concurrently. Job
// exposes the embedded coordination state; Recycle returns the value to
// its owner's pool once the last holder drops it (RunTiles consumes the
// Tiler — callers must not touch it after the call).
type Tiler interface {
	Tile(i int)
	Job() *TileJob
	Recycle()
}

// RunTiles executes t.Tile(i) for every i in [0, n), splitting the
// index space across the calling goroutine and up to Workers()-1 idle
// pool helpers, and returns when all n tiles are done. Tiles are
// claimed one at a time from a shared atomic cursor, so ragged index
// spaces balance without pre-partitioning. The caller never blocks on
// helper availability — with none free it degrades to a serial loop.
func RunTiles(n int, t Tiler) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			t.Tile(i)
		}
		t.Recycle()
		return
	}
	j := t.Job()
	j.n = int64(n)
	j.next.Store(0)
	j.wg.Add(n)
	j.refs.Store(1)
	ensureHelpers(w - 1)
	for i := 0; i < w-1; i++ {
		j.refs.Add(1)
		select {
		case tileQueue <- t:
		default:
			// Queue full: every helper is busy (or has a pending offer);
			// stop offering and do the rest ourselves.
			j.refs.Add(-1)
			i = w
		}
	}
	drainTiles(t, j)
	j.wg.Wait()
	releaseTile(t, j)
}

// drainTiles claims and runs tiles until the job's cursor passes the
// end of the index space.
func drainTiles(t Tiler, j *TileJob) {
	n := j.n
	for {
		i := j.next.Add(1) - 1
		if i >= n {
			return
		}
		t.Tile(int(i))
		j.wg.Done()
	}
}

// releaseTile drops one holder's reference; the last one recycles the
// job. The reference count is what makes sync.Pool reuse safe: a job
// can sit in tileQueue (or in a busy helper's hand) after its caller
// finished, and it must not be handed to a new owner until that stale
// holder has let go.
func releaseTile(t Tiler, j *TileJob) {
	if j.refs.Add(-1) == 0 {
		t.Recycle()
	}
}

// ensureHelpers spawns helper goroutines until at least want exist.
// Helpers are never torn down — an idle helper is a parked goroutine
// blocked on a channel receive, and SetWorkers shrinking the pool just
// leaves the surplus parked.
func ensureHelpers(want int) {
	if want > maxGemmWorkers-1 {
		want = maxGemmWorkers - 1
	}
	for {
		cur := helperCount.Load()
		if int(cur) >= want {
			return
		}
		if helperCount.CompareAndSwap(cur, cur+1) {
			go tileHelper()
		}
	}
}

// tileHelper is one pool worker: receive a job, help drain it, release
// it, repeat forever.
func tileHelper() {
	for t := range tileQueue {
		j := t.Job()
		drainTiles(t, j)
		releaseTile(t, j)
	}
}
