// Package quant implements the symmetric linear quantization used by the
// DECENT tool (paper §3.1): INT8 down to INT1 weights/activations with
// int32 accumulation. The integer kernels return raw int32 accumulators so
// the DPU executor can inject undervolting faults exactly where real
// timing faults strike — inside the MAC datapath — before requantization.
package quant

import (
	"fmt"
	"math"

	"fpgauv/internal/tensor"
)

// MinBits and MaxBits bound the supported precisions. The paper evaluates
// INT8..INT4 and observes INT3 and below to be broken even at nominal
// voltage; the library allows down to INT2 so that observation can be
// reproduced.
const (
	MinBits = 2
	MaxBits = 8
)

// QMax returns the maximum magnitude representable at the given precision
// (2^(bits-1) - 1).
func QMax(bits int) int32 {
	return int32(1)<<(bits-1) - 1
}

// QTensor is a symmetric-quantized tensor: real = Data[i] * Scale.
type QTensor struct {
	Data  []int8
	Dims  []int
	Scale float32
	Bits  int
}

// validBits reports an error for unsupported precisions.
func validBits(bits int) error {
	if bits < MinBits || bits > MaxBits {
		return fmt.Errorf("quant: unsupported precision INT%d (supported INT%d..INT%d)", bits, MinBits, MaxBits)
	}
	return nil
}

// ScaleFor returns the quantization scale that maps maxAbs to the largest
// code at the given precision.
func ScaleFor(maxAbs float32, bits int) float32 {
	if maxAbs <= 0 {
		return 1
	}
	return maxAbs / float32(QMax(bits))
}

// Quantize converts a float tensor at the given precision using its own
// max-abs scale.
func Quantize(t *tensor.Tensor, bits int) (*QTensor, error) {
	return QuantizeWithScale(t, ScaleFor(t.MaxAbs(), bits), bits)
}

// QuantizeWithScale converts a float tensor using a pre-calibrated scale.
func QuantizeWithScale(t *tensor.Tensor, scale float32, bits int) (*QTensor, error) {
	q := &QTensor{}
	if err := QuantizeWithScaleInto(q, t, scale, bits); err != nil {
		return nil, err
	}
	return q, nil
}

// QuantizeWithScaleInto quantizes t into dst, reusing dst's backing
// storage when it is large enough.
func QuantizeWithScaleInto(dst *QTensor, t *tensor.Tensor, scale float32, bits int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if scale <= 0 {
		return fmt.Errorf("quant: scale must be positive, got %g", scale)
	}
	dst.Data = growInt8(dst.Data, t.Size())
	dst.Dims = t.DimsInto(dst.Dims)
	dst.Scale = scale
	dst.Bits = bits
	qmax := QMax(bits)
	for i, v := range t.Data() {
		dst.Data[i] = clampToInt8(int32(math.RoundToEven(float64(v/scale))), qmax)
	}
	return nil
}

// Dequantize converts back to float32.
func (q *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Dims...)
	q.DequantizeInto(out)
	return out
}

// DequantizeInto writes the float view of q into t, which must have
// matching size.
func (q *QTensor) DequantizeInto(t *tensor.Tensor) {
	d := t.Data()
	for i, v := range q.Data {
		d[i] = float32(v) * q.Scale
	}
}

// Size returns the element count.
func (q *QTensor) Size() int { return len(q.Data) }

// Clone returns a deep copy.
func (q *QTensor) Clone() *QTensor {
	out := &QTensor{
		Data:  make([]int8, len(q.Data)),
		Dims:  append([]int(nil), q.Dims...),
		Scale: q.Scale,
		Bits:  q.Bits,
	}
	copy(out.Data, q.Data)
	return out
}

// Requantize maps int32 accumulators with scale accScale to an int8
// tensor with scale outScale at the given precision.
func Requantize(acc []int32, dims []int, accScale, outScale float32, bits int) (*QTensor, error) {
	q := &QTensor{}
	if err := RequantizeInto(q, acc, accScale, outScale, bits, false, dims...); err != nil {
		return nil, err
	}
	return q, nil
}

// QuantizeBias folds a float bias vector into the accumulator domain
// (bias / accScale, rounded), the way DPU bias addition works.
func QuantizeBias(bias []float32, accScale float32) []int32 {
	out := make([]int32, len(bias))
	for i, b := range bias {
		out[i] = int32(math.RoundToEven(float64(b / accScale)))
	}
	return out
}

func clampToInt8(v, qmax int32) int8 {
	if v > qmax {
		v = qmax
	}
	if v < -qmax {
		v = -qmax
	}
	return int8(v)
}

// Calibrator records per-key activation ranges over a calibration set;
// DECENT uses it to fix activation scales before deployment.
type Calibrator struct {
	maxAbs map[string]float32
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{maxAbs: make(map[string]float32)}
}

// Observe folds a tensor's range into the entry for key.
func (c *Calibrator) Observe(key string, t *tensor.Tensor) {
	if m := t.MaxAbs(); m > c.maxAbs[key] {
		c.maxAbs[key] = m
	}
}

// Scale returns the calibrated scale for key at the given precision.
// Keys never observed get scale 1.
func (c *Calibrator) Scale(key string, bits int) float32 {
	return ScaleFor(c.maxAbs[key], bits)
}

// MaxAbs returns the recorded range for key.
func (c *Calibrator) MaxAbs(key string) float32 { return c.maxAbs[key] }
