package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpgauv/internal/nn"
	"fpgauv/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(256)
	x.FillRandn(rng, 1)
	for bits := MinBits; bits <= MaxBits; bits++ {
		q, err := Quantize(x, bits)
		if err != nil {
			t.Fatal(err)
		}
		back := q.Dequantize()
		var worst float64
		for i, v := range x.Data() {
			if e := math.Abs(float64(v - back.Data()[i])); e > worst {
				worst = e
			}
		}
		// Error bounded by one quantization step.
		if worst > float64(q.Scale) {
			t.Errorf("INT%d: max error %.4f exceeds one step %.4f", bits, worst, q.Scale)
		}
	}
}

func TestLowerPrecisionIsCoarser(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(512)
	x.FillRandn(rng, 1)
	prev := -1.0
	for bits := MaxBits; bits >= MinBits; bits-- {
		q, err := Quantize(x, bits)
		if err != nil {
			t.Fatal(err)
		}
		back := q.Dequantize()
		var mse float64
		for i, v := range x.Data() {
			d := float64(v - back.Data()[i])
			mse += d * d
		}
		if prev >= 0 && mse < prev {
			t.Fatalf("INT%d should have more error than INT%d", bits, bits+1)
		}
		prev = mse
	}
}

func TestQuantizeValidation(t *testing.T) {
	x := tensor.New(4)
	if _, err := Quantize(x, 1); err == nil {
		t.Fatal("INT1 unsupported")
	}
	if _, err := Quantize(x, 9); err == nil {
		t.Fatal("INT9 unsupported")
	}
	if _, err := QuantizeWithScale(x, -1, 8); err == nil {
		t.Fatal("negative scale must fail")
	}
}

func TestQMax(t *testing.T) {
	if QMax(8) != 127 || QMax(4) != 7 || QMax(2) != 1 {
		t.Fatal("qmax values")
	}
}

func TestCodesStayInRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, bitsRaw uint8) bool {
		bits := MinBits + int(bitsRaw)%(MaxBits-MinBits+1)
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(64)
		x.FillRandn(r, float64(1+r.Intn(100)))
		q, err := Quantize(x, bits)
		if err != nil {
			return false
		}
		qmax := int8(QMax(bits))
		for _, v := range q.Data {
			if v > qmax || v < -qmax {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// quantized conv must track the float conv closely at INT8.
func TestConvInt8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := nn.NewConv2D(rng, 3, 8, 3, 1, 1)
	in := tensor.New(3, 12, 12)
	in.FillRandn(rng, 1)

	ref, err := conv.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}

	xq, err := Quantize(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := Quantize(conv.Weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	accScale := xq.Scale * wq.Scale
	biasQ := QuantizeBias(conv.Bias, accScale)
	acc, dims, err := Conv2DInt8(xq, wq, biasQ, conv.Stride, conv.Pad)
	if err != nil {
		t.Fatal(err)
	}
	outScale := ScaleFor(ref.MaxAbs(), 8)
	got, err := Requantize(acc, dims, accScale, outScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := got.Dequantize()
	var worst float64
	for i, v := range ref.Data() {
		if e := math.Abs(float64(v - back.Data()[i])); e > worst {
			worst = e
		}
	}
	// INT8 conv should track float within a few output steps.
	if worst > 4*float64(outScale) {
		t.Fatalf("INT8 conv error %.5f exceeds 4 steps (%.5f)", worst, 4*outScale)
	}
}

func TestDenseInt8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fc := nn.NewDense(rng, 64, 10)
	in := tensor.New(64)
	in.FillRandn(rng, 1)
	ref, err := fc.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	xq, _ := Quantize(in, 8)
	wq, _ := Quantize(fc.Weights, 8)
	accScale := xq.Scale * wq.Scale
	acc, dims, err := DenseInt8(xq, wq, QuantizeBias(fc.Bias, accScale))
	if err != nil {
		t.Fatal(err)
	}
	outScale := ScaleFor(ref.MaxAbs(), 8)
	got, err := Requantize(acc, dims, accScale, outScale, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := got.Dequantize()
	// The argmax must survive INT8 quantization.
	if ref.ArgMax() != back.ArgMax() {
		t.Fatal("INT8 fc changed the argmax on random data")
	}
}

func TestKernelValidation(t *testing.T) {
	x := &QTensor{Data: make([]int8, 12), Dims: []int{3, 2, 2}, Scale: 1, Bits: 8}
	w := &QTensor{Data: make([]int8, 8), Dims: []int{2, 1, 2, 2}, Scale: 1, Bits: 8}
	if _, _, err := Conv2DInt8(x, w, []int32{0, 0}, 1, 0); err == nil {
		t.Fatal("channel mismatch must fail")
	}
	w2 := &QTensor{Data: make([]int8, 24), Dims: []int{2, 3, 2, 2}, Scale: 1, Bits: 8}
	if _, _, err := Conv2DInt8(x, w2, []int32{0}, 1, 0); err == nil {
		t.Fatal("bias length mismatch must fail")
	}
	if _, _, err := Conv2DInt8(x, w2, []int32{0, 0}, 0, 0); err == nil {
		t.Fatal("zero stride must fail")
	}
	fcw := &QTensor{Data: make([]int8, 24), Dims: []int{2, 12}, Scale: 1, Bits: 8}
	if _, _, err := DenseInt8(x, fcw, []int32{0, 0}); err != nil {
		t.Fatalf("fc on flattened conv output should work: %v", err)
	}
	badw := &QTensor{Data: make([]int8, 10), Dims: []int{2, 5}, Scale: 1, Bits: 8}
	if _, _, err := DenseInt8(x, badw, []int32{0, 0}); err == nil {
		t.Fatal("fc input mismatch must fail")
	}
}

func TestReLUQ(t *testing.T) {
	q := &QTensor{Data: []int8{-5, 0, 5}, Dims: []int{3}, Scale: 1, Bits: 8}
	ReLUQ(q)
	if q.Data[0] != 0 || q.Data[2] != 5 {
		t.Fatal("reluq")
	}
}

func TestPoolQ(t *testing.T) {
	q := &QTensor{
		Data:  []int8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Dims:  []int{1, 4, 4},
		Scale: 0.5, Bits: 8,
	}
	mp, err := MaxPoolQ(q, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Data[0] != 6 || mp.Data[3] != 16 || mp.Scale != 0.5 {
		t.Fatalf("maxpoolq %v", mp.Data)
	}
	ap, err := AvgPoolQ(q, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Data[0] != 4 { // (1+2+5+6)/4 = 3.5 → rounds away from zero to 4
		t.Fatalf("avgpoolq[0] = %d", ap.Data[0])
	}
	g, err := AvgPoolQ(q, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Data) != 1 || g.Data[0] != 9 { // mean 8.5 → 9
		t.Fatalf("global avgpoolq = %v", g.Data)
	}
}

func TestAddQAndConcatQ(t *testing.T) {
	a := &QTensor{Data: []int8{10, 20}, Dims: []int{2, 1, 1}, Scale: 0.1, Bits: 8}
	b := &QTensor{Data: []int8{5, 5}, Dims: []int{2, 1, 1}, Scale: 0.2, Bits: 8}
	// Real values: a = {1.0, 2.0}, b = {1.0, 1.0}; sum = {2.0, 3.0}.
	sum, err := AddQ(a, b, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Data[0] != 20 || sum.Data[1] != 30 {
		t.Fatalf("addq = %v", sum.Data)
	}
	cat, err := ConcatQ([]*QTensor{a, b}, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Data) != 4 || cat.Data[2] != 10 { // 5*0.2/0.1 = 10
		t.Fatalf("concatq = %v", cat.Data)
	}
	if _, err := AddQ(a, &QTensor{Data: []int8{1}, Dims: []int{1, 1, 1}, Scale: 1, Bits: 8}, 0.1, 8); err == nil {
		t.Fatal("addq size mismatch must fail")
	}
}

func TestCalibrator(t *testing.T) {
	c := NewCalibrator()
	x, _ := tensor.FromSlice([]float32{-3, 1}, 2)
	y, _ := tensor.FromSlice([]float32{2, -1}, 2)
	c.Observe("n1", x)
	c.Observe("n1", y)
	if c.MaxAbs("n1") != 3 {
		t.Fatalf("calibrated range = %f", c.MaxAbs("n1"))
	}
	if got := c.Scale("n1", 8); math.Abs(float64(got)-3.0/127) > 1e-7 {
		t.Fatalf("scale = %g", got)
	}
	if c.Scale("never", 8) != 1 {
		t.Fatal("unobserved key should default to scale 1")
	}
}
