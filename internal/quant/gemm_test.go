package quant

import (
	"fmt"
	"math/rand"
	"testing"

	"fpgauv/internal/tensor"
)

// randQ builds a random int8 tensor with full-range codes.
func randQ(rng *rand.Rand, bits int, dims ...int) *QTensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	q := &QTensor{Data: make([]int8, n), Dims: dims, Scale: 0.05, Bits: bits}
	qmax := int32(QMax(bits))
	for i := range q.Data {
		q.Data[i] = int8(rng.Int31n(2*qmax+1) - qmax)
	}
	return q
}

func randBias(rng *rand.Rand, n int) []int32 {
	b := make([]int32, n)
	for i := range b {
		b[i] = rng.Int31n(2001) - 1000
	}
	return b
}

// checkConvEquivalence runs both conv paths and requires bit-exact
// accumulators and identical shapes/errors.
func checkConvEquivalence(t *testing.T, x, w *QTensor, bias []int32, stride, pad int) {
	t.Helper()
	ref, refDims, refErr := Conv2DInt8(x, w, bias, stride, pad)
	var col []int8
	var acc []int32
	sh, gemmErr := Conv2DInt8Gemm(x, w, bias, stride, pad, &col, &acc)
	if (refErr == nil) != (gemmErr == nil) {
		t.Fatalf("error mismatch: naive=%v gemm=%v", refErr, gemmErr)
	}
	if refErr != nil {
		return
	}
	if sh.OutC != refDims[0] || sh.OutH != refDims[1] || sh.OutW != refDims[2] {
		t.Fatalf("dims mismatch: naive=%v gemm=%+v", refDims, sh)
	}
	got := acc[:sh.AccLen()]
	if len(got) != len(ref) {
		t.Fatalf("acc length %d != %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("acc[%d]: gemm %d != naive %d (stride=%d pad=%d dims x=%v w=%v)",
				i, got[i], ref[i], stride, pad, x.Dims, w.Dims)
		}
	}
}

// TestConvGemmEquivalenceGrid sweeps stride/pad/kernel/shape combinations
// and requires the GEMM lowering to be bit-exact with the naive oracle.
func TestConvGemmEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 2, 3, 5} {
		for _, stride := range []int{1, 2, 3} {
			for _, pad := range []int{0, 1, 2} {
				for _, dims := range [][4]int{ // inC, H, W, outC
					{1, 6, 6, 1},
					{3, 8, 8, 4},
					{4, 9, 7, 5}, // non-square, odd sizes
					{8, 12, 12, 16},
				} {
					inC, h, w, outC := dims[0], dims[1], dims[2], dims[3]
					if h+2*pad < k || w+2*pad < k {
						continue
					}
					name := fmt.Sprintf("k=%d/s=%d/p=%d/x=%dx%dx%d/o=%d", k, stride, pad, inC, h, w, outC)
					t.Run(name, func(t *testing.T) {
						x := randQ(rng, 8, inC, h, w)
						wt := randQ(rng, 8, outC, inC, k, k)
						checkConvEquivalence(t, x, wt, randBias(rng, outC), stride, pad)
					})
				}
			}
		}
	}
}

// TestConvGemmEquivalenceFuzz hammers the two paths with seeded random
// geometry, including low-precision codes.
func TestConvGemmEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	var col []int8
	var acc []int32 // reused across cases: growth/reuse must not leak state
	for iter := 0; iter < 300; iter++ {
		k := 1 + rng.Intn(5)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		inC := 1 + rng.Intn(6)
		outC := 1 + rng.Intn(9)
		h := k + rng.Intn(12)
		w := k + rng.Intn(12)
		bits := 2 + rng.Intn(7)
		if bits > 8 {
			bits = 8
		}
		x := randQ(rng, bits, inC, h, w)
		wt := randQ(rng, bits, outC, inC, k, k)
		bias := randBias(rng, outC)
		ref, refDims, refErr := Conv2DInt8(x, wt, bias, stride, pad)
		sh, gemmErr := Conv2DInt8Gemm(x, wt, bias, stride, pad, &col, &acc)
		if (refErr == nil) != (gemmErr == nil) {
			t.Fatalf("iter %d: error mismatch: naive=%v gemm=%v", iter, refErr, gemmErr)
		}
		if refErr != nil {
			continue
		}
		if sh.OutC != refDims[0] || sh.OutH != refDims[1] || sh.OutW != refDims[2] {
			t.Fatalf("iter %d: dims mismatch", iter)
		}
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("iter %d: acc[%d] gemm %d != naive %d", iter, i, acc[i], ref[i])
			}
		}
	}
}

// TestDenseGemmEquivalence covers the blocked GEMV against the naive FC
// kernel, including widths around the register-blocking factor.
func TestDenseGemmEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var acc []int32
	for iter := 0; iter < 200; iter++ {
		in := 1 + rng.Intn(200)
		out := 1 + rng.Intn(40)
		x := randQ(rng, 8, in)
		w := randQ(rng, 8, out, in)
		bias := randBias(rng, out)
		ref, refDims, err := DenseInt8(x, w, bias)
		if err != nil {
			t.Fatal(err)
		}
		width, err := DenseInt8Gemm(x, w, bias, &acc)
		if err != nil {
			t.Fatal(err)
		}
		if width != refDims[0] {
			t.Fatalf("width %d != %d", width, refDims[0])
		}
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("iter %d: acc[%d] gemv %d != naive %d", iter, i, acc[i], ref[i])
			}
		}
	}
	// Validation parity with the naive kernel.
	x := randQ(rng, 8, 10)
	w := randQ(rng, 8, 4, 12)
	if _, err := DenseInt8Gemm(x, w, randBias(rng, 4), &acc); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

// TestRequantizeIntoMatchesReference checks the fused epilogue against
// Requantize (+ReLUQ) and its buffer-reuse semantics.
func TestRequantizeIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	acc := make([]int32, 500)
	for i := range acc {
		acc[i] = rng.Int31() - 1<<30
	}
	dims := []int{5, 10, 10}
	for _, bits := range []int{8, 4, 2} {
		ref, err := Requantize(acc, dims, 0.003, 0.07, bits)
		if err != nil {
			t.Fatal(err)
		}
		var dst QTensor
		if err := RequantizeInto(&dst, acc, 0.003, 0.07, bits, false, dims...); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Data {
			if dst.Data[i] != ref.Data[i] {
				t.Fatalf("bits=%d: code[%d] %d != %d", bits, i, dst.Data[i], ref.Data[i])
			}
		}
		// Fused ReLU == Requantize then ReLUQ.
		refRelu := ReLUQ(ref.Clone())
		if err := RequantizeInto(&dst, acc, 0.003, 0.07, bits, true, dims...); err != nil {
			t.Fatal(err)
		}
		for i := range refRelu.Data {
			if dst.Data[i] != refRelu.Data[i] {
				t.Fatalf("bits=%d relu: code[%d] %d != %d", bits, i, dst.Data[i], refRelu.Data[i])
			}
		}
		if len(dst.Dims) != 3 || dst.Dims[0] != 5 {
			t.Fatalf("dims not written: %v", dst.Dims)
		}
	}
	var dst QTensor
	if err := RequantizeInto(&dst, acc, 0.003, -1, 8, false, dims...); err == nil {
		t.Fatal("negative scale must fail")
	}
	if err := RequantizeInto(&dst, acc, 0.003, 1, 11, false, dims...); err == nil {
		t.Fatal("invalid bits must fail")
	}
}

// TestIntoVariantsMatchAllocating pins the refactored pool/add/concat/
// batchnorm Into kernels to their allocating counterparts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randQ(rng, 8, 6, 9, 9)
	for _, global := range []bool{false, true} {
		want, err := MaxPoolQ(x, 2, 2, global)
		if err != nil {
			t.Fatal(err)
		}
		var got QTensor
		if err := MaxPoolQInto(&got, x, 2, 2, global); err != nil {
			t.Fatal(err)
		}
		assertSameQ(t, "maxpool", &got, want)
		want, err = AvgPoolQ(x, 3, 2, global)
		if err != nil {
			t.Fatal(err)
		}
		if err := AvgPoolQInto(&got, x, 3, 2, global); err != nil {
			t.Fatal(err)
		}
		assertSameQ(t, "avgpool", &got, want)
	}

	a := randQ(rng, 8, 4, 5, 5)
	b := randQ(rng, 8, 4, 5, 5)
	b.Scale = 0.09
	wantAdd, err := AddQ(a, b, 0.11, 8)
	if err != nil {
		t.Fatal(err)
	}
	var gotAdd QTensor
	if err := AddQInto(&gotAdd, a, b, 0.11, 8); err != nil {
		t.Fatal(err)
	}
	assertSameQ(t, "add", &gotAdd, wantAdd)

	wantCat, err := ConcatQ([]*QTensor{a, b}, 0.13, 8)
	if err != nil {
		t.Fatal(err)
	}
	var gotCat QTensor
	if err := ConcatQInto(&gotCat, []*QTensor{a, b}, 0.13, 8); err != nil {
		t.Fatal(err)
	}
	assertSameQ(t, "concat", &gotCat, wantCat)

	var gotRelu QTensor
	ReLUQInto(&gotRelu, a)
	wantRelu := ReLUQ(a.Clone())
	assertSameQ(t, "relu", &gotRelu, wantRelu)
}

func assertSameQ(t *testing.T, what string, got, want *QTensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) || got.Scale != want.Scale || got.Bits != want.Bits {
		t.Fatalf("%s: header mismatch", what)
	}
	if fmt.Sprint(got.Dims) != fmt.Sprint(want.Dims) {
		t.Fatalf("%s: dims %v != %v", what, got.Dims, want.Dims)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: code[%d] %d != %d", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestQuantizeWithScaleIntoReuse verifies staging-tensor reuse keeps
// results identical across differently-shaped inputs.
func TestQuantizeWithScaleIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := tensor.New(4, 8, 8)
	big.FillRandn(rng, 1)
	small := tensor.New(2, 3, 3)
	small.FillRandn(rng, 1)
	var dst QTensor
	for _, tt := range []*tensor.Tensor{big, small, big} {
		want, err := QuantizeWithScale(tt, 0.02, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := QuantizeWithScaleInto(&dst, tt, 0.02, 8); err != nil {
			t.Fatal(err)
		}
		assertSameQ(t, "quantize", &dst, want)
	}
}
