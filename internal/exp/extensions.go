package exp

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/dvfs"
	"fpgauv/internal/mitigate"
	"fpgauv/internal/pmbus"
)

// MitigationStudy is a beyond-paper artifact implementing §9's first
// future-work item: fault mitigation inside the critical region at full
// clock frequency. It compares unprotected operation against temporal
// (softmax-ensemble) redundancy and Razor-style detect-and-replay.
func MitigationStudy(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "VGGNet"
	const operatingMV = 562
	r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: mitigation: %w", err)
	}
	if err := pmbus.NewAdapter(r.task.Board().Bus(), board.AddrVCCINT).SetVoltageMV(operatingMV); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension (paper §9): fault mitigation at %d mV, 333 MHz (%s)", operatingMV, name),
		Header: []string{"Strategy", "Baseline acc(%)", "Mitigated acc(%)", "Perf cost(x)"},
		Notes: []string{
			"beyond-paper artifact: implements the paper's first future-work item",
		},
	}
	strategies := []mitigate.Strategy{
		mitigate.TemporalRedundancy{N: 3},
		mitigate.TemporalRedundancy{N: 5},
		mitigate.RazorReplay{Coverage: 0.90},
		mitigate.RazorReplay{Coverage: 0.99},
	}
	for i, s := range strategies {
		ev, err := mitigate.Evaluate(s, r.task, r.ds, opts.Seed+int64(i)*97)
		if err != nil {
			return nil, fmt.Errorf("exp: mitigation %s: %w", s.Name(), err)
		}
		t.Rows = append(t.Rows, []string{
			ev.Strategy, f1(ev.BaselinePct), f1(ev.MitigatedPct), f2(ev.PerfCost),
		})
	}
	r.task.Board().Reboot()
	return t, nil
}

// DVFSStudy is a beyond-paper artifact implementing §9's second
// future-work item: closed-loop dynamic voltage adjustment. The governor
// settles at the deepest canary-clean VCCINT under cold and hot thermal
// conditions and reports the resulting power saving.
func DVFSStudy(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "GoogleNet"
	t := &Table{
		Title:  "Extension (paper §9): closed-loop DVFS governor (GoogleNet, platform-B)",
		Header: []string{"Condition", "Settled VCCINT(mV)", "Power(W)", "Saving vs Vnom(%)"},
		Notes: []string{
			"beyond-paper artifact: implements the paper's second future-work item",
		},
	}
	for _, cond := range []struct {
		label string
		tempC float64
	}{
		{"cold die (34 C)", 34},
		{"hot die (52 C, ITD headroom)", 52},
	} {
		r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
		if err != nil {
			return nil, fmt.Errorf("exp: dvfs: %w", err)
		}
		brd := r.task.Board()
		cfg := dvfs.DefaultConfig()
		cfg.ProbeImages = opts.Images / 2
		cfg.Seed = opts.Seed
		gov := dvfs.New(r.task, r.bench, cfg)

		nominalPower := brd.PowerBreakdown().TotalW
		brd.Thermal().HoldTemperature(cond.tempC)
		settled, err := gov.Settle()
		if err != nil {
			return nil, fmt.Errorf("exp: dvfs %s: %w", cond.label, err)
		}
		power := brd.PowerBreakdown().TotalW
		t.Rows = append(t.Rows, []string{
			cond.label, f0(settled), f2(power),
			f1(100 * (1 - power/nominalPower)),
		})
		brd.Thermal().Release()
		brd.Reboot()
	}
	return t, nil
}
