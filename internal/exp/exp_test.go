package exp

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"fpgauv/internal/board"
)

// quick returns a minimal-cost protocol for unit tests.
func quick() Options {
	o := QuickOptions()
	o.Images = 16
	o.Repeats = 2
	o.Samples = []board.SampleID{board.SampleB}
	return o
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.Render()
	for _, want := range []string{"== demo ==", "long-column", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1QuickProtocol(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"VGGNet", "GoogleNet"}
	tab, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// VGGNet row: accuracy @Vnom must be the planted 86%.
	acc, err := strconv.ParseFloat(tab.Rows[0][8], 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-86.0) > 3.2 { // 16-image grid quantizes to 6.25% steps
		t.Fatalf("VGGNet accuracy @Vnom = %.1f, want ≈86", acc)
	}
	if tab.Rows[0][4] != "6" || tab.Rows[1][4] != "21" {
		t.Fatalf("layer counts wrong: %v / %v", tab.Rows[0][4], tab.Rows[1][4])
	}
}

func TestPowerBreakdownQuick(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"VGGNet", "GoogleNet", "AlexNet", "ResNet50", "Inception"}
	tab, err := PowerBreakdownSec41(o)
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the average; paper: 12.59 W.
	avgRow := tab.Rows[len(tab.Rows)-1]
	avg, err := strconv.ParseFloat(avgRow[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-12.59) > 0.35 {
		t.Fatalf("average on-chip power = %.2f, want ≈12.59 (§4.1)", avg)
	}
	// Every benchmark's VCCINT share must exceed 99.9%.
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		share, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if share < 99.9 {
			t.Fatalf("%s VCCINT share = %.3f%%", row[0], share)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"VGGNet"}
	tab, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	// Single benchmark + average row.
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	vmin, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	vcrash, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	if math.Abs(vmin-570) > 5 || math.Abs(vcrash-535) > 5 {
		t.Fatalf("regions: Vmin=%.0f Vcrash=%.0f", vmin, vcrash)
	}
}

func TestTable2Quick(t *testing.T) {
	o := quick()
	tab, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("Table 2 rows: %d", len(tab.Rows))
	}
	// First row is the baseline: everything normalized to 1.00.
	first := tab.Rows[0]
	if first[0] != "570" || first[1] != "333" {
		t.Fatalf("baseline row: %v", first)
	}
	for col := 2; col <= 5; col++ {
		if first[col] != "1.00" {
			t.Fatalf("baseline normalization: %v", first)
		}
	}
	// Monotone staircase: Fmax non-increasing; GOPs and power fall;
	// GOPs/W rises toward the bottom (paper: up to 1.25x).
	prevF, prevG, prevP := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, row := range tab.Rows {
		f, _ := strconv.ParseFloat(row[1], 64)
		g, _ := strconv.ParseFloat(row[2], 64)
		p, _ := strconv.ParseFloat(row[3], 64)
		if f > prevF || g > prevG+1e-9 || p > prevP+1e-9 {
			t.Fatalf("staircase violated at %v", row)
		}
		prevF, prevG, prevP = f, g, p
	}
	lastEff, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][4], 64)
	if lastEff <= 1.0 {
		t.Fatalf("GOPs/W at the lowest point = %.2f, want > 1", lastEff)
	}
	// GOPs/J must peak at the baseline (paper's key §5 finding).
	for _, row := range tab.Rows[1:] {
		j, _ := strconv.ParseFloat(row[5], 64)
		if j > 1.0 {
			t.Fatalf("GOPs/J exceeds baseline at %v", row)
		}
	}
}

func TestFig10ITDHealing(t *testing.T) {
	o := quick()
	tab, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	// In the critical region, the hottest column must be at least as
	// accurate as the coldest on average.
	var coldSum, hotSum float64
	var n int
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[0], 64)
		if v >= 570 || row[1] == "CRASH" || row[len(row)-1] == "CRASH" {
			continue
		}
		cold, err1 := strconv.ParseFloat(row[1], 64)
		hot, err2 := strconv.ParseFloat(row[len(row)-1], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		coldSum += cold
		hotSum += hot
		n++
	}
	if n == 0 {
		t.Fatal("no critical-region rows")
	}
	if hotSum < coldSum {
		t.Fatalf("ITD healing absent: hot avg %.1f < cold avg %.1f", hotSum/float64(n), coldSum/float64(n))
	}
}

func TestGeneratorRegistry(t *testing.T) {
	gens := Generators()
	if len(gens) != 14 {
		t.Fatalf("expected 14 generators, got %d", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if seen[g.ID] {
			t.Fatalf("duplicate generator id %q", g.ID)
		}
		seen[g.ID] = true
		if g.Run == nil || g.Name == "" {
			t.Fatalf("incomplete generator %q", g.ID)
		}
	}
	if _, err := GeneratorByID("fig6"); err != nil {
		t.Fatal(err)
	}
	if _, err := GeneratorByID("nope"); err == nil {
		t.Fatal("unknown id must fail")
	}
}

func TestSingleGeneratorViaRegistry(t *testing.T) {
	g, err := GeneratorByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	tab, err := g.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(tab.Render())
	if !strings.Contains(buf.String(), "CRASH") {
		t.Fatal("Fig 4 sweep should reach the crash point")
	}
	if !strings.Contains(buf.String(), "guardband") {
		t.Fatal("Fig 4 should label the guardband region")
	}
}
