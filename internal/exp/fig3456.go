package exp

import (
	"fmt"
	"math"

	"fpgauv/internal/board"
	"fpgauv/internal/core"
	"fpgauv/internal/dnndk"
)

// Fig3 reproduces Figure 3: the voltage regions (guardband, critical,
// crash) per benchmark, averaged across the board samples.
func Fig3(opts Options) (*Table, error) {
	opts = opts.sanitize()
	t := &Table{
		Title: "Fig 3: Voltage regions per benchmark (averaged across platforms)",
		Header: []string{
			"Model", "Vnom(mV)", "Vmin(mV)", "Vcrash(mV)",
			"Guardband(mV)", "Guardband(%)", "Critical(mV)",
		},
		Notes: []string{"paper: guardband avg 280 mV (33%), critical region avg 30 mV"},
	}
	var gbSum, critSum float64
	for _, name := range opts.Benchmarks {
		var vmin, vcrash float64
		for _, sample := range opts.Samples {
			r, err := buildRig(sample, name, opts, dnndk.DefaultQuantizeOptions())
			if err != nil {
				return nil, fmt.Errorf("exp: fig3 %s/%v: %w", name, sample, err)
			}
			c := r.campaign(opts)
			c.Config.VStartMV = 620 // regions live below 620 mV; guardband above is fault-free by construction
			reg, _, err := c.DetectRegions()
			if err != nil {
				return nil, fmt.Errorf("exp: fig3 %s/%v: %w", name, sample, err)
			}
			vmin += reg.VminMV / float64(len(opts.Samples))
			vcrash += reg.VcrashMV / float64(len(opts.Samples))
		}
		reg := core.Regions{VnomMV: 850, VminMV: vmin, VcrashMV: vcrash}
		gbSum += reg.GuardbandMV()
		critSum += reg.CriticalMV()
		t.Rows = append(t.Rows, []string{
			name, f0(reg.VnomMV), f0(reg.VminMV), f0(reg.VcrashMV),
			f0(reg.GuardbandMV()), f1(reg.GuardbandPct()), f0(reg.CriticalMV()),
		})
	}
	n := float64(len(opts.Benchmarks))
	t.Rows = append(t.Rows, []string{
		"AVERAGE", "850", "", "", f0(gbSum / n),
		f1(100 * gbSum / n / 850), f0(critSum / n),
	})
	return t, nil
}

// Fig4 reproduces Figure 4: the overall voltage behaviour curve
// (power-efficiency and accuracy versus VCCINT) for one benchmark on one
// platform — the conceptual picture of guardband, critical region and
// crash.
func Fig4(opts Options) (*Table, error) {
	opts = opts.sanitize()
	name := opts.Benchmarks[0]
	r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: fig4: %w", err)
	}
	c := r.campaign(opts)
	c.Config.VStepMV = 10
	points, err := c.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: fig4: %w", err)
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 4: Overall voltage behaviour (%s, platform-B)", name),
		Header: []string{"VCCINT(mV)", "Accuracy(%)", "Power(W)", "GOPs/W", "Gain(x)", "Region"},
	}
	base := points[0]
	vminSeen := false
	for _, pt := range points {
		region := "guardband"
		switch {
		case pt.Crashed:
			region = "CRASH"
		case pt.MACFaults > 0:
			region = "critical"
			vminSeen = true
		case vminSeen:
			region = "critical"
		}
		row := []string{f0(pt.VCCINTmV)}
		if pt.Crashed {
			row = append(row, "-", "-", "-", "-", region)
		} else {
			row = append(row, f1(pt.AccuracyPct), f2(pt.PowerW), f1(pt.GOPsPerW),
				f2(pt.GOPsPerW/base.GOPsPerW), region)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: power-efficiency (GOPs/W) per benchmark at
// Vnom, Vmin and the last functional point above Vcrash, averaged across
// platforms, with the 2.6x / >3x gains.
func Fig5(opts Options) (*Table, error) {
	opts = opts.sanitize()
	t := &Table{
		Title: "Fig 5: Power-efficiency improvement via undervolting (averaged across platforms)",
		Header: []string{
			"Model", "GOPs/W @Vnom", "GOPs/W @Vmin", "GOPs/W @Vcrash",
			"Gain @Vmin(x)", "Gain @Vcrash(x)",
		},
		Notes: []string{"paper: 2.6x at Vmin, >3x (≈3.7x) at Vcrash"},
	}
	var gainMinSum, gainCrashSum float64
	for _, name := range opts.Benchmarks {
		var atNom, atMin, atCrash float64
		for _, sample := range opts.Samples {
			r, err := buildRig(sample, name, opts, dnndk.DefaultQuantizeOptions())
			if err != nil {
				return nil, fmt.Errorf("exp: fig5 %s/%v: %w", name, sample, err)
			}
			c := r.campaign(opts)
			c.Config.VStartMV = 850
			c.Config.VStepMV = 5
			points, err := c.Run()
			if err != nil {
				return nil, fmt.Errorf("exp: fig5 %s/%v: %w", name, sample, err)
			}
			reg, err := regionsFromPoints(points)
			if err != nil {
				return nil, fmt.Errorf("exp: fig5 %s/%v: %w", name, sample, err)
			}
			n := float64(len(opts.Samples))
			atNom += points[0].GOPsPerW / n
			atMin += findPoint(points, reg.VminMV).GOPsPerW / n
			atCrash += lastFunctional(points).GOPsPerW / n
		}
		t.Rows = append(t.Rows, []string{
			name, f1(atNom), f1(atMin), f1(atCrash),
			f2(atMin / atNom), f2(atCrash / atNom),
		})
		gainMinSum += atMin / atNom
		gainCrashSum += atCrash / atNom
	}
	n := float64(len(opts.Benchmarks))
	t.Rows = append(t.Rows, []string{
		"AVERAGE", "", "", "", f2(gainMinSum / n), f2(gainCrashSum / n),
	})
	return t, nil
}

// Fig6 reproduces Figure 6: accuracy versus supply voltage per benchmark,
// separately for the three platforms, across the critical region.
func Fig6(opts Options) (*Table, error) {
	opts = opts.sanitize()
	t := &Table{
		Title:  "Fig 6: Accuracy vs VCCINT per benchmark per platform",
		Header: []string{"Model", "Platform", "V(mV)", "Accuracy(%)", "Faults/img"},
		Notes: []string{
			"paper: exponential decay below Vmin; ResNet/Inception most vulnerable; random behaviour at Vcrash",
		},
	}
	for _, name := range opts.Benchmarks {
		for _, sample := range opts.Samples {
			r, err := buildRig(sample, name, opts, dnndk.DefaultQuantizeOptions())
			if err != nil {
				return nil, fmt.Errorf("exp: fig6 %s/%v: %w", name, sample, err)
			}
			c := r.campaign(opts)
			c.Config.VStartMV = 600
			c.Config.VStepMV = 5
			points, err := c.Run()
			if err != nil {
				return nil, fmt.Errorf("exp: fig6 %s/%v: %w", name, sample, err)
			}
			for _, pt := range points {
				if pt.Crashed {
					t.Rows = append(t.Rows, []string{name, sample.String(), f0(pt.VCCINTmV), "CRASH", "-"})
					break
				}
				// Only report from just above the fault onset
				// downward to keep the series readable.
				if pt.VCCINTmV > 595 {
					continue
				}
				perImg := float64(pt.MACFaults) / float64(opts.Repeats) / float64(opts.Images)
				t.Rows = append(t.Rows, []string{
					name, sample.String(), f0(pt.VCCINTmV), f1(pt.AccuracyPct), f1(perImg),
				})
			}
		}
	}
	return t, nil
}

// regionsFromPoints derives regions from an existing sweep (avoiding a
// second sweep when the caller already has the points).
func regionsFromPoints(points []core.Point) (core.Regions, error) {
	if len(points) == 0 {
		return core.Regions{}, fmt.Errorf("empty sweep")
	}
	base := points[0]
	reg := core.Regions{VnomMV: 850, VminMV: points[0].VCCINTmV}
	for _, pt := range points {
		if pt.Crashed {
			reg.VcrashMV = pt.VCCINTmV
			break
		}
		if pt.MACFaults == 0 && pt.MinAccuracyPct >= base.AccuracyPct-1e-9 {
			reg.VminMV = pt.VCCINTmV
		}
	}
	if reg.VcrashMV == 0 {
		return reg, fmt.Errorf("sweep did not reach Vcrash")
	}
	return reg, nil
}

// findPoint returns the sweep point nearest the requested voltage.
func findPoint(points []core.Point, vMV float64) core.Point {
	best := points[0]
	for _, pt := range points {
		if pt.Crashed {
			continue
		}
		if math.Abs(pt.VCCINTmV-vMV) < math.Abs(best.VCCINTmV-vMV) {
			best = pt
		}
	}
	return best
}

// lastFunctional returns the last non-crashed point of a sweep.
func lastFunctional(points []core.Point) core.Point {
	last := points[0]
	for _, pt := range points {
		if pt.Crashed {
			break
		}
		last = pt
	}
	return last
}
