package exp

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
)

// fig9Temps is the paper's §7 temperature range, reachable via fan
// control on the ZCU102.
var fig9Temps = []float64{34, 40, 46, 52}

// fig9Voltages spans nominal down through the critical region.
var fig9Voltages = []float64{850, 800, 750, 700, 650, 600, 570, 560, 550}

// Fig9 reproduces Figure 9: power consumption versus VCCINT at different
// die temperatures (GoogleNet). The key observations: power rises with
// temperature, and the temperature effect shrinks at lower voltage
// (0.46% at 850 mV vs ≈0.15% at 650 mV over 34→52 °C).
func Fig9(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "GoogleNet"
	r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: fig9: %w", err)
	}
	c := r.campaign(opts)
	brd := r.task.Board()

	t := &Table{
		Title:  "Fig 9: Power vs VCCINT at different temperatures (GoogleNet, platform-B)",
		Header: []string{"V(mV)"},
		Notes: []string{
			"paper: power change 34->52 C is ~0.46% at 850 mV and ~0.15% at 650 mV",
		},
	}
	for _, temp := range fig9Temps {
		t.Header = append(t.Header, fmt.Sprintf("P(W)@%.0fC", temp))
	}
	for _, v := range fig9Voltages {
		row := []string{f0(v)}
		crashed := false
		for _, temp := range fig9Temps {
			brd.Thermal().HoldTemperature(temp)
			pt, err := c.Measure(v)
			if err != nil {
				return nil, fmt.Errorf("exp: fig9 %.0f mV @%.0f C: %w", v, temp, err)
			}
			if pt.Crashed {
				row = append(row, "CRASH")
				crashed = true
				brd.Reboot()
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", pt.PowerW))
		}
		t.Rows = append(t.Rows, row)
		if crashed {
			break
		}
	}
	brd.Thermal().Release()
	brd.Reboot()
	return t, nil
}

// fig10Voltages focuses on the critical region where the ITD healing is
// visible.
var fig10Voltages = []float64{575, 570, 565, 560, 555, 550, 545}

// Fig10 reproduces Figure 10: accuracy versus VCCINT at different die
// temperatures (GoogleNet). Higher temperature heals undervolting faults
// (inverse thermal dependence) without moving Vmin.
func Fig10(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "GoogleNet"
	r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: fig10: %w", err)
	}
	c := r.campaign(opts)
	brd := r.task.Board()

	t := &Table{
		Title:  "Fig 10: Accuracy vs VCCINT at different temperatures (GoogleNet, platform-B)",
		Header: []string{"V(mV)"},
		Notes: []string{
			"paper: at a fixed critical-region voltage, higher temperature gives higher accuracy (ITD); guardband size unchanged",
		},
	}
	for _, temp := range fig9Temps {
		t.Header = append(t.Header, fmt.Sprintf("Acc(%%)@%.0fC", temp))
	}
	for _, v := range fig10Voltages {
		row := []string{f0(v)}
		for _, temp := range fig9Temps {
			brd.Thermal().HoldTemperature(temp)
			pt, err := c.Measure(v)
			if err != nil {
				return nil, fmt.Errorf("exp: fig10 %.0f mV @%.0f C: %w", v, temp, err)
			}
			if pt.Crashed {
				row = append(row, "CRASH")
				brd.Reboot()
				continue
			}
			row = append(row, f1(pt.AccuracyPct))
		}
		t.Rows = append(t.Rows, row)
	}
	brd.Thermal().Release()
	brd.Reboot()
	return t, nil
}

// Variability reproduces the §1.1/§4.4 multi-board findings: per-sample
// Vmin and Vcrash with the ΔVmin = 31 mV and ΔVcrash = 18 mV spreads.
func Variability(opts Options) (*Table, error) {
	opts = opts.sanitize()
	name := opts.Benchmarks[0]
	t := &Table{
		Title:  fmt.Sprintf("Platform variability (%s)", name),
		Header: []string{"Platform", "Vmin(mV)", "Vcrash(mV)", "Guardband(%)"},
		Notes:  []string{"paper: ΔVmin = 31 mV, ΔVcrash = 18 mV across three identical boards"},
	}
	var minLo, minHi, crashLo, crashHi float64
	for i, sample := range opts.Samples {
		r, err := buildRig(sample, name, opts, dnndk.DefaultQuantizeOptions())
		if err != nil {
			return nil, fmt.Errorf("exp: variability %v: %w", sample, err)
		}
		c := r.campaign(opts)
		c.Config.VStartMV = 620
		reg, _, err := c.DetectRegions()
		if err != nil {
			return nil, fmt.Errorf("exp: variability %v: %w", sample, err)
		}
		t.Rows = append(t.Rows, []string{
			sample.String(), f0(reg.VminMV), f0(reg.VcrashMV), f1(reg.GuardbandPct()),
		})
		if i == 0 {
			minLo, minHi = reg.VminMV, reg.VminMV
			crashLo, crashHi = reg.VcrashMV, reg.VcrashMV
		} else {
			if reg.VminMV < minLo {
				minLo = reg.VminMV
			}
			if reg.VminMV > minHi {
				minHi = reg.VminMV
			}
			if reg.VcrashMV < crashLo {
				crashLo = reg.VcrashMV
			}
			if reg.VcrashMV > crashHi {
				crashHi = reg.VcrashMV
			}
		}
	}
	t.Rows = append(t.Rows, []string{"SPREAD", f0(minHi - minLo), f0(crashHi - crashLo), ""})
	return t, nil
}
