package exp

import (
	"fmt"
	"io"
)

// Generator names one reproducible artifact and its generator function.
type Generator struct {
	ID   string
	Name string
	Run  func(Options) (*Table, error)
}

// Generators returns every table/figure generator in paper order.
func Generators() []Generator {
	return []Generator{
		{"table1", "Table 1: benchmarks", Table1},
		{"power", "Sec 4.1: power breakdown at Vnom", PowerBreakdownSec41},
		{"fig3", "Fig 3: voltage regions", Fig3},
		{"fig4", "Fig 4: overall voltage behaviour", Fig4},
		{"fig5", "Fig 5: power-efficiency gains", Fig5},
		{"fig6", "Fig 6: accuracy vs voltage", Fig6},
		{"table2", "Table 2: frequency underscaling", Table2},
		{"fig7", "Fig 7: quantization x undervolting", Fig7},
		{"fig8", "Fig 8: pruning x undervolting", Fig8},
		{"fig9", "Fig 9: temperature x power", Fig9},
		{"fig10", "Fig 10: temperature x accuracy", Fig10},
		{"variability", "Platform variability", Variability},
		{"mitigation", "Extension: critical-region fault mitigation (§9)", MitigationStudy},
		{"dvfs", "Extension: closed-loop DVFS governor (§9)", DVFSStudy},
	}
}

// GeneratorByID looks up a generator.
func GeneratorByID(id string) (Generator, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// RunAll regenerates every table and figure into w.
func RunAll(opts Options, w io.Writer) error {
	for _, g := range Generators() {
		t, err := g.Run(opts)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", g.ID, err)
		}
		if _, err := io.WriteString(w, t.Render()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
