package exp

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/silicon"
)

// Table2 reproduces the paper's Table 2: frequency underscaling in the
// critical region. For each voltage from Vmin down in 5 mV steps, it
// searches the 25 MHz grid for the maximum fault-free frequency and
// reports GOPs, power, GOPs/W and GOPs/J normalized to the
// (570 mV, 333 MHz) baseline.
func Table2(opts Options) (*Table, error) {
	opts = opts.sanitize()
	name := opts.Benchmarks[0]
	r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: table2: %w", err)
	}
	c := r.campaign(opts)
	grid := silicon.DefaultFmaxGridMHz()
	brd := r.task.Board()

	type row struct {
		vMV, fmax, gops, power float64
	}
	var rows []row
	for v := 570.0; v >= 540; v -= 5 {
		res, err := c.FmaxSearch(v, grid)
		if err != nil {
			return nil, fmt.Errorf("exp: table2 at %.0f mV: %w", v, err)
		}
		if res.FmaxMHz == 0 {
			break
		}
		// Hold the found operating point and measure.
		if err := brd.SetFrequencyMHz(res.FmaxMHz); err != nil {
			return nil, err
		}
		prof := r.task.Profile()
		rows = append(rows, row{vMV: v, fmax: res.FmaxMHz, gops: prof.GOPs, power: prof.PowerW})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("exp: table2 produced no operating points")
	}

	base := rows[0]
	t := &Table{
		Title: fmt.Sprintf("Table 2: Frequency underscaling in the critical region (%s, platform-B)", name),
		Header: []string{
			"VCCINT(mV)", "Fmax(MHz)", "GOPs(norm)", "Power(norm)",
			"GOPs/W(norm)", "GOPs/J(norm)",
		},
		Notes: []string{
			"normalized to (570 mV, 333 MHz); paper: best GOPs/J at the baseline, best GOPs/W at the lowest point (up to 1.25x)",
		},
	}
	for _, rw := range rows {
		gopsN := rw.gops / base.gops
		powerN := rw.power / base.power
		effN := gopsN / powerN
		// GOPs/J folds throughput into energy per workload:
		// normalized as GOPs(norm) x GOPs/W(norm).
		jouleN := gopsN * effN
		t.Rows = append(t.Rows, []string{
			f0(rw.vMV), f0(rw.fmax), f2(gopsN), f2(powerN), f2(effN), f2(jouleN),
		})
	}
	brd.Reboot()
	return t, nil
}
