package exp

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
)

// fig7Voltages are the reporting points for the quantization/pruning
// interaction studies: nominal, mid-guardband, Vmin and critical region.
var fig7Voltages = []float64{850, 700, 600, 570, 565, 560, 555, 550, 545}

// Fig7 reproduces Figure 7: undervolting at different quantization levels
// (INT8 down to INT4) for VGGNet — (a) accuracy and (b) power-efficiency
// versus voltage.
func Fig7(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "VGGNet"
	t := &Table{
		Title:  "Fig 7: Undervolting x quantization (VGGNet, platform-B)",
		Header: []string{"Precision", "V(mV)", "Accuracy(%)", "Power(W)", "GOPs/W"},
		Notes: []string{
			"paper: lower precision -> higher GOPs/W but more undervolting vulnerability;",
			"untrained scaled models lose more baseline accuracy per bit than the paper's trained nets (see EXPERIMENTS.md)",
		},
	}
	// Ground-truth labels are fixed across precisions: plant them once
	// against the INT8 deployment (the Table 1 anchor) and share them,
	// so lower precisions show their real baseline accuracy drop
	// (Fig. 7a).
	var labels []int
	for _, bits := range []int{8, 7, 6, 5, 4} {
		qopts := dnndk.DefaultQuantizeOptions()
		qopts.Bits = bits
		r, err := buildRig(board.SampleB, name, opts, qopts)
		if err != nil {
			return nil, fmt.Errorf("exp: fig7 INT%d: %w", bits, err)
		}
		if bits == 8 {
			labels = append([]int(nil), r.ds.Labels...)
		} else {
			r.ds.Labels = append([]int(nil), labels...)
		}
		rows, err := measureAtVoltages(r, opts, fig7Voltages)
		if err != nil {
			return nil, fmt.Errorf("exp: fig7 INT%d: %w", bits, err)
		}
		for _, rw := range rows {
			t.Rows = append(t.Rows, append([]string{fmt.Sprintf("INT%d", bits)}, rw...))
		}
	}
	return t, nil
}

// Fig8 reproduces Figure 8: undervolting on the pruned versus baseline
// VGGNet — accuracy and power-efficiency, including the pruned model's
// higher Vcrash (paper: 555 mV vs 540 mV).
func Fig8(opts Options) (*Table, error) {
	opts = opts.sanitize()
	const name = "VGGNet"
	t := &Table{
		Title:  "Fig 8: Undervolting x pruning (VGGNet, platform-B)",
		Header: []string{"Model", "V(mV)", "Accuracy(%)", "Power(W)", "GOPs/W"},
		Notes: []string{
			"paper: pruned model is more fault-vulnerable, more power-efficient, and crashes earlier (Vcrash 555 vs 540 mV)",
		},
	}
	for _, cfg := range []struct {
		label    string
		sparsity float64
	}{
		{"baseline", 0},
		{"pruned50", 0.5},
	} {
		qopts := dnndk.DefaultQuantizeOptions()
		qopts.Sparsity = cfg.sparsity
		r, err := buildRig(board.SampleB, name, opts, qopts)
		if err != nil {
			return nil, fmt.Errorf("exp: fig8 %s: %w", cfg.label, err)
		}
		rows, err := measureAtVoltages(r, opts, fig7Voltages)
		if err != nil {
			return nil, fmt.Errorf("exp: fig8 %s: %w", cfg.label, err)
		}
		for _, rw := range rows {
			t.Rows = append(t.Rows, append([]string{cfg.label}, rw...))
		}
	}
	return t, nil
}

// measureAtVoltages measures accuracy/power/efficiency at each requested
// voltage, stopping with a CRASH row when the board hangs.
func measureAtVoltages(r *rig, opts Options, voltages []float64) ([][]string, error) {
	c := r.campaign(opts)
	var out [][]string
	for _, v := range voltages {
		pt, err := c.Measure(v)
		if err != nil {
			return nil, err
		}
		if pt.Crashed {
			out = append(out, []string{f0(v), "CRASH", "-", "-"})
			break
		}
		out = append(out, []string{f0(v), f1(pt.AccuracyPct), f2(pt.PowerW), f1(pt.GOPsPerW)})
	}
	r.task.Board().Reboot()
	return out, nil
}
