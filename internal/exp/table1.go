package exp

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/pmbus"
)

// Table1 reproduces the paper's Table 1: the evaluated CNN benchmarks
// with dataset geometry, layer counts, parameter sizes and the measured
// inference accuracy of the INT8 deployment at Vnom.
func Table1(opts Options) (*Table, error) {
	opts = opts.sanitize()
	t := &Table{
		Title: "Table 1: Evaluated CNN Benchmarks",
		Header: []string{
			"Model", "Dataset", "Inputs", "Outputs", "#Layers",
			"Size(paper)", "Params(scaled)", "Acc lit.(%)", "Acc @Vnom(%)",
		},
		Notes: []string{
			fmt.Sprintf("channel-scaled zoo (preset %v); paper sizes shown for reference", opts.Preset),
		},
	}
	for _, name := range opts.Benchmarks {
		r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
		if err != nil {
			return nil, fmt.Errorf("exp: table1 %s: %w", name, err)
		}
		res, err := r.task.Classify(r.ds, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: table1 %s: %w", name, err)
		}
		b := r.bench
		t.Rows = append(t.Rows, []string{
			b.Name,
			b.DatasetName,
			fmt.Sprintf("%dx%d", b.InputShape.H, b.InputShape.W),
			fmt.Sprintf("%d", b.Classes),
			fmt.Sprintf("%d", b.WeightLayers()),
			fmt.Sprintf("%.1fMB", b.PaperParamsMB),
			fmt.Sprintf("%d", b.ParamCount()),
			f1(b.LitAccPct),
			f1(res.AccuracyPct),
		})
	}
	return t, nil
}

// PowerBreakdownSec41 reproduces §4.1: on-chip power at Vnom per
// benchmark, the cross-benchmark average (paper: 12.59 W) and the VCCINT
// rail share (paper: >99.9%), measured through the PMBus like the
// original setup.
func PowerBreakdownSec41(opts Options) (*Table, error) {
	opts = opts.sanitize()
	t := &Table{
		Title:  "Sec 4.1: On-chip power at Vnom (850 mV)",
		Header: []string{"Model", "VCCINT(W)", "VCCBRAM(W)", "Total(W)", "VCCINT share(%)"},
	}
	var sum float64
	for _, name := range opts.Benchmarks {
		r, err := buildRig(board.SampleB, name, opts, dnndk.DefaultQuantizeOptions())
		if err != nil {
			return nil, fmt.Errorf("exp: sec4.1 %s: %w", name, err)
		}
		brd := r.task.Board()
		brd.SetWorkload(r.task.Kernel.Workload)
		vccint := pmbus.NewAdapter(brd.Bus(), board.AddrVCCINT)
		vccbram := pmbus.NewAdapter(brd.Bus(), board.AddrVCCBRAM)
		pInt, err := vccint.PowerW()
		if err != nil {
			return nil, err
		}
		pBram, err := vccbram.PowerW()
		if err != nil {
			return nil, err
		}
		total := pInt + pBram
		sum += total
		t.Rows = append(t.Rows, []string{
			name, f2(pInt), fmt.Sprintf("%.4f", pBram), f2(total),
			fmt.Sprintf("%.3f", 100*pInt/total),
		})
	}
	avg := sum / float64(len(opts.Benchmarks))
	t.Rows = append(t.Rows, []string{"AVERAGE", "", "", f2(avg), ""})
	t.Notes = append(t.Notes, "paper: average 12.59 W, VCCINT > 99.9% of on-chip power")
	return t, nil
}
