// Package exp is the reproduction harness: one generator per table and
// figure of the paper's evaluation (Table 1, §4.1 power breakdown,
// Figs. 3-10, Table 2, and the multi-board variability findings). Each
// generator runs the corresponding experimental protocol on the simulated
// platform and renders the same rows/series the paper reports, so
// paper-vs-measured comparison is direct (recorded in EXPERIMENTS.md).
package exp

import (
	"fmt"
	"strings"

	"fpgauv/internal/board"
	"fpgauv/internal/core"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/models"
)

// Options scales the experiment protocol. Defaults favor the full
// reproduction; tests and benches shrink Images/Repeats.
type Options struct {
	// Preset selects the model-zoo scale.
	Preset models.Preset
	// Images is the evaluation-set size per benchmark.
	Images int
	// Repeats is the number of repetitions averaged per measurement
	// (the paper uses 10).
	Repeats int
	// Seed derives all campaign randomness.
	Seed int64
	// Samples are the board samples to run on (default: all three).
	Samples []board.SampleID
	// Benchmarks filters the zoo (default: all five).
	Benchmarks []string
}

// DefaultOptions returns the full-protocol settings.
func DefaultOptions() Options {
	return Options{
		Preset:  models.Small,
		Images:  64,
		Repeats: 10,
		Seed:    1,
	}
}

// QuickOptions returns a reduced protocol for tests and benches.
func QuickOptions() Options {
	return Options{
		Preset:  models.Tiny,
		Images:  24,
		Repeats: 3,
		Seed:    1,
	}
}

// sanitize fills defaults.
func (o Options) sanitize() Options {
	if o.Images <= 0 {
		o.Images = 64
	}
	if o.Repeats <= 0 {
		o.Repeats = 10
	}
	if len(o.Samples) == 0 {
		o.Samples = []board.SampleID{board.SampleA, board.SampleB, board.SampleC}
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = models.Names()
	}
	return o
}

// rig is one assembled experiment: board, runtime, loaded task, labeled
// dataset.
type rig struct {
	bench *models.Benchmark
	task  *dnndk.Task
	ds    *models.Dataset
}

// buildRig assembles a fresh board of the given sample with the named
// benchmark quantized at the given options and a planted-label dataset.
func buildRig(sample board.SampleID, benchName string, opts Options, qopts dnndk.QuantizeOptions) (*rig, error) {
	brd, err := board.New(sample)
	if err != nil {
		return nil, err
	}
	rt, err := dnndk.NewRuntime(brd, 3)
	if err != nil {
		return nil, err
	}
	bench, err := models.New(benchName, opts.Preset)
	if err != nil {
		return nil, err
	}
	k, err := dnndk.Quantize(bench, qopts)
	if err != nil {
		return nil, err
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		return nil, err
	}
	ds := bench.MakeDataset(opts.Images, opts.Seed)
	if err := task.PlantLabels(ds, bench.TargetAccPct, opts.Seed^0x1ab); err != nil {
		return nil, err
	}
	return &rig{bench: bench, task: task, ds: ds}, nil
}

// campaign builds a core campaign over the rig with the option's
// protocol parameters.
func (r *rig) campaign(opts Options) *core.Campaign {
	c := core.NewCampaign(r.task, r.ds)
	c.Config.Repeats = opts.Repeats
	c.Config.Seed = opts.Seed
	return c
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes), for plotting the figures externally.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
