package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig7QuantizationInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-precision rigs")
	}
	o := quick()
	tab, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	// Collect accuracy and GOPs/W at Vnom per precision.
	accAtNom := map[string]float64{}
	effAtNom := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] != "850" || row[2] == "CRASH" {
			continue
		}
		acc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		eff, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		accAtNom[row[0]] = acc
		effAtNom[row[0]] = eff
	}
	if len(accAtNom) != 5 {
		t.Fatalf("expected INT8..INT4 rows, got %v", accAtNom)
	}
	// Fig 7a: INT8 baseline accuracy must exceed INT4's.
	if accAtNom["INT8"] <= accAtNom["INT4"] {
		t.Errorf("INT8 acc %.1f should exceed INT4 %.1f", accAtNom["INT8"], accAtNom["INT4"])
	}
	// Fig 7b: lower precision must be more power-efficient.
	if effAtNom["INT4"] <= effAtNom["INT8"] {
		t.Errorf("INT4 GOPs/W %.1f should exceed INT8 %.1f", effAtNom["INT4"], effAtNom["INT8"])
	}
}

func TestFig8PruningInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("pruned rig sweep")
	}
	o := quick()
	tab, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// The pruned model must crash earlier (higher Vcrash: 555 vs 540).
	crashAt := map[string]float64{}
	effAtNom := map[string]float64{}
	for _, row := range tab.Rows {
		if row[2] == "CRASH" {
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatal(err)
			}
			crashAt[row[0]] = v
			continue
		}
		if row[1] == "850" {
			eff, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatal(err)
			}
			effAtNom[row[0]] = eff
		}
	}
	if crashAt["pruned50"] == 0 {
		t.Fatalf("pruned model should crash within the measured range: %v", crashAt)
	}
	if base, ok := crashAt["baseline"]; ok && crashAt["pruned50"] <= base {
		t.Errorf("pruned Vcrash %.0f should be above baseline %.0f (Fig. 8)",
			crashAt["pruned50"], base)
	}
	// Fig 8b: pruned model is more power-efficient (fewer ops).
	if effAtNom["pruned50"] <= effAtNom["baseline"] {
		t.Errorf("pruned GOPs/W %.1f should exceed baseline %.1f",
			effAtNom["pruned50"], effAtNom["baseline"])
	}
	if !strings.Contains(tab.Title, "pruning") {
		t.Error("title")
	}
}

func TestVariabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("three-board sweep")
	}
	o := quick()
	o.Samples = nil // default: all three
	tab, err := Variability(o)
	if err != nil {
		t.Fatal(err)
	}
	spread := tab.Rows[len(tab.Rows)-1]
	dVmin, err := strconv.ParseFloat(spread[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	dVcrash, err := strconv.ParseFloat(spread[2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if dVmin < 25 || dVmin > 40 {
		t.Errorf("ΔVmin = %.0f, want ≈31 (paper)", dVmin)
	}
	if dVcrash < 10 || dVcrash > 25 {
		t.Errorf("ΔVcrash = %.0f, want ≈18 (paper)", dVcrash)
	}
}
