package ecc

import "sync"

// Scrubber is the periodic frame-scrubbing half of the mitigation: it
// walks a protected weight image word by word, re-decodes every word
// against its stored check bits, rewrites correctable words in place and
// reloads uncorrectable ones from the golden (DDR-staged) copy. Frame
// scrubbing is what turns persistent reduced-voltage BRAM faults back
// into transient ones: a flip survives only until the next scrub pass,
// which is the semantics the batched executor's restore-after-batch
// already assumes.
//
// The image is the kernel's live int8 weight tensors; 8 consecutive
// codes form one 64-bit BRAM word (little-endian by index, the tail word
// zero-padded). A Scrubber must be driven under the same lock that
// serializes executions on the kernel — scrubbing races an in-flight
// pass's transient in-place flips otherwise.
type Scrubber struct {
	mu     sync.Mutex
	live   [][]int8 // the kernel's weight tensors, shared
	golden [][]int8 // clean clone (the DDR staging copy)
	check  [][]uint8
	words  int64

	passes    int64
	scanned   int64
	corrected int64
	reloaded  int64
}

// NewScrubber snapshots the given weight tensors as the golden image and
// computes their SECDED check bytes. The slices are retained and
// scrubbed in place; they must hold the fault-free weights when the
// scrubber is built (deploy time, before any reduced-voltage pass).
func NewScrubber(weights [][]int8) *Scrubber {
	s := &Scrubber{live: weights}
	for _, w := range weights {
		g := make([]int8, len(w))
		copy(g, w)
		s.golden = append(s.golden, g)
		nw := (len(w) + 7) / 8
		ck := make([]uint8, nw)
		for i := 0; i < nw; i++ {
			ck[i] = Encode(packWord(w, i*8))
		}
		s.check = append(s.check, ck)
		s.words += int64(nw)
	}
	return s
}

// Words returns the protected image size in 64-bit words.
func (s *Scrubber) Words() int64 {
	if s == nil {
		return 0
	}
	return s.words
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Scanned is the words walked; Corrected the single-bit words the
	// decoder fixed in place; Reloaded the uncorrectable words restored
	// from the golden copy.
	Scanned   int64 `json:"scanned"`
	Corrected int64 `json:"corrected"`
	Reloaded  int64 `json:"reloaded"`
}

// Scrub walks the whole image once, repairing every resident fault, and
// reports what it found. After Scrub returns the live image is
// bit-identical to the golden copy. prot (optional) has the repaired
// word count added to its scrubbed counter.
func (s *Scrubber) Scrub(prot *Protection) ScrubReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	for ti, w := range s.live {
		nw := (len(w) + 7) / 8
		for i := 0; i < nw; i++ {
			rep.Scanned++
			cur := packWord(w, i*8)
			fixed, o := Decode(cur, s.check[ti][i])
			if o == OutcomeClean {
				continue
			}
			gold := packWord(s.golden[ti], i*8)
			if o == OutcomeCorrected && fixed == gold {
				unpackWord(w, i*8, fixed)
				rep.Corrected++
				continue
			}
			// Uncorrectable (or miscorrected): reload from the staged
			// golden copy, as the host would re-stream the frame from
			// DDR.
			unpackWord(w, i*8, gold)
			rep.Reloaded++
		}
	}
	s.passes++
	s.scanned += rep.Scanned
	s.corrected += rep.Corrected
	s.reloaded += rep.Reloaded
	prot.noteScrubbed(rep.Corrected + rep.Reloaded)
	return rep
}

// Stats returns the scrubber's lifetime counters.
func (s *Scrubber) Stats() (passes, scanned, corrected, reloaded int64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passes, s.scanned, s.corrected, s.reloaded
}

// PackWord assembles the 64-bit BRAM word starting at code index base of
// an int8 weight image (little-endian by index; indexes past the end
// read as zero). It is the shared word geometry of the scrubber and the
// DPU's protected read path.
func PackWord(w []int8, base int) uint64 { return packWord(w, base) }

// UnpackWord writes a 64-bit word back over the codes starting at base
// (indexes past the end are dropped, mirroring PackWord's zero padding).
func UnpackWord(w []int8, base int, v uint64) { unpackWord(w, base, v) }

// packWord assembles the 64-bit BRAM word starting at code index base
// (little-endian by index; indexes past the end read as zero).
func packWord(w []int8, base int) uint64 {
	var v uint64
	n := len(w) - base
	if n > 8 {
		n = 8
	}
	for j := 0; j < n; j++ {
		v |= uint64(uint8(w[base+j])) << uint(8*j)
	}
	return v
}

// unpackWord writes a 64-bit word back over the codes starting at base
// (indexes past the end are dropped, mirroring packWord's zero padding).
func unpackWord(w []int8, base int, v uint64) {
	n := len(w) - base
	if n > 8 {
		n = 8
	}
	for j := 0; j < n; j++ {
		w[base+j] = int8(uint8(v >> uint(8*j)))
	}
}
