package ecc

import (
	"math/rand"
	"testing"
)

// Every single-bit fault — any of the 64 data bits or 8 check bits —
// must decode back to the original word (SEC).
func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 64; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		for bit := 0; bit < WordBits; bit++ {
			out, o := Decode(data^1<<uint(bit), check)
			if o != OutcomeCorrected || out != data {
				t.Fatalf("data bit %d: outcome=%v out=%x want corrected %x", bit, o, out, data)
			}
		}
		for bit := 0; bit < CheckBits; bit++ {
			out, o := Decode(data, check^1<<uint(bit))
			if o != OutcomeCorrected || out != data {
				t.Fatalf("check bit %d: outcome=%v out=%x want corrected %x", bit, o, out, data)
			}
		}
		if out, o := Decode(data, check); o != OutcomeClean || out != data {
			t.Fatalf("clean word misdecoded: outcome=%v", o)
		}
	}
}

// Every double-bit data fault must be detected, never silently
// miscorrected (DED).
func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 16; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		for a := 0; a < WordBits; a++ {
			for b := a + 1; b < WordBits; b++ {
				_, o := Decode(data^1<<uint(a)^1<<uint(b), check)
				if o != OutcomeDetected {
					t.Fatalf("double fault (%d,%d) decoded as %v", a, b, o)
				}
			}
		}
	}
}

// Triple-bit faults must never report a clean or truly-corrected word:
// Process must classify them as silent (aliased correction) or detected.
func TestProcessClassifiesTripleBitFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewProtection(true)
	var silent, detected int64
	for trial := 0; trial < 5000; trial++ {
		data := rng.Uint64()
		a, b, c := rng.Intn(64), rng.Intn(64), rng.Intn(64)
		if a == b || b == c || a == c {
			continue
		}
		faulty := data ^ 1<<uint(a) ^ 1<<uint(b) ^ 1<<uint(c)
		out, o := p.Process(data, faulty)
		switch o {
		case OutcomeSilent:
			silent++
			if out == data {
				t.Fatal("silent outcome returned the original word")
			}
		case OutcomeDetected:
			detected++
		default:
			t.Fatalf("triple fault classified %v (out=%x orig=%x)", o, out, data)
		}
	}
	if silent == 0 {
		t.Error("no triple fault aliased to a silent miscorrection")
	}
	c := p.Counts()
	if c.Silent != silent || c.Detected != detected || c.Corrected != 0 {
		t.Errorf("counters %+v, want silent=%d detected=%d corrected=0", c, silent, detected)
	}
	if c.Total() != silent+detected || c.Bad() != silent+detected {
		t.Errorf("Total/Bad inconsistent: %+v", c)
	}
}

// Process on a single-bit fault corrects transparently and counts it.
func TestProcessCorrectsSingleBit(t *testing.T) {
	p := NewProtection(true)
	out, o := p.Process(0xdeadbeefcafef00d, 0xdeadbeefcafef00d^1<<17)
	if o != OutcomeCorrected || out != 0xdeadbeefcafef00d {
		t.Fatalf("outcome=%v out=%x", o, out)
	}
	if c := p.Counts(); c.Corrected != 1 || c.Bad() != 0 {
		t.Errorf("counters %+v", c)
	}
}

// The scrubber must restore a bit-exact fault-free image from arbitrary
// resident corruption: single-bit words via the decoder, multi-bit words
// via golden reload.
func TestScrubRestoresGoldenImage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Two tensors, one with a non-multiple-of-8 tail word.
	a := make([]int8, 256)
	b := make([]int8, 77)
	for i := range a {
		a[i] = int8(rng.Intn(256))
	}
	for i := range b {
		b[i] = int8(rng.Intn(256))
	}
	goldA := append([]int8(nil), a...)
	goldB := append([]int8(nil), b...)

	prot := NewProtection(true)
	s := NewScrubber([][]int8{a, b})
	if want := int64(256/8 + (77+7)/8); s.Words() != want {
		t.Fatalf("Words() = %d, want %d", s.Words(), want)
	}

	// Corrupt: a single-bit fault in word 0 of a, a 3-bit smear across
	// word 4 of a, and a 2-bit fault in b's tail word.
	a[0] ^= 1 << 3
	a[32] ^= 1 << 1
	a[33] ^= 1 << 6
	a[34] ^= 1 << 2
	b[72] ^= 1 << 0
	b[76] ^= 1 << 5

	rep := s.Scrub(prot)
	if rep.Corrected != 1 {
		t.Errorf("corrected = %d, want 1", rep.Corrected)
	}
	if rep.Reloaded != 2 {
		t.Errorf("reloaded = %d, want 2", rep.Reloaded)
	}
	for i := range a {
		if a[i] != goldA[i] {
			t.Fatalf("a[%d] = %d, want %d after scrub", i, a[i], goldA[i])
		}
	}
	for i := range b {
		if b[i] != goldB[i] {
			t.Fatalf("b[%d] = %d, want %d after scrub", i, b[i], goldB[i])
		}
	}
	if prot.ScrubbedWords() != 3 {
		t.Errorf("ScrubbedWords = %d, want 3", prot.ScrubbedWords())
	}

	// A second pass over the clean image finds nothing.
	rep = s.Scrub(prot)
	if rep.Corrected != 0 || rep.Reloaded != 0 {
		t.Errorf("clean pass repaired %+v", rep)
	}
	passes, scanned, corrected, reloaded := s.Stats()
	if passes != 2 || corrected != 1 || reloaded != 2 || scanned != 2*s.Words() {
		t.Errorf("stats passes=%d scanned=%d corrected=%d reloaded=%d", passes, scanned, corrected, reloaded)
	}
}

// A nil / disabled Protection must be inert and safe.
func TestProtectionZeroValues(t *testing.T) {
	var p *Protection
	if p.Enabled() {
		t.Error("nil protection reports enabled")
	}
	if c := p.Counts(); c != (Counts{}) {
		t.Errorf("nil counts %+v", c)
	}
	if p.ScrubbedWords() != 0 {
		t.Error("nil scrubbed words")
	}
	p2 := NewProtection(false)
	if p2.Enabled() {
		t.Error("disabled protection reports enabled")
	}
	p2.SetEnabled(true)
	if !p2.Enabled() {
		t.Error("enable did not take")
	}
}
