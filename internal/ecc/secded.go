// Package ecc models the built-in SECDED ECC of UltraScale+ block RAMs:
// a word-level Hamming (72,64) codec (64 data bits, 8 check bits —
// single-error-correcting, double-error-detecting), a Protection policy
// the DPU executor routes reduced-voltage BRAM read faults through, and a
// periodic frame Scrubber that walks a protected weight image and resets
// accumulated persistent faults.
//
// The paper's mitigation discussion (§9) centers on exactly this
// mechanism: reduced-voltage BRAM read flips are overwhelmingly
// single-bit per word near the fault onset, so SECDED plus scrubbing
// pushes the usable VCCBRAM floor measurably below the unprotected
// accuracy cliff (quantified for MLPs in Salami et al.'s companion study
// and for CNNs by Givaki et al.).
package ecc

import "math/bits"

// WordBits is the data width of one protected BRAM word. The UltraScale+
// RAMB36 primitive protects 64-bit words with 8 check bits in SDP mode.
const WordBits = 64

// CheckBits is the number of SECDED check bits per word.
const CheckBits = 8

// Outcome classifies one protected read of a faulted word.
type Outcome int

const (
	// OutcomeClean: the word carried no fault.
	OutcomeClean Outcome = iota
	// OutcomeCorrected: a single-bit fault was corrected by the decoder;
	// the consumer sees the original data.
	OutcomeCorrected
	// OutcomeDetected: the decoder flagged an uncorrectable (even-bit)
	// fault; the consumer sees corrupted data but knows it is corrupted.
	OutcomeDetected
	// OutcomeSilent: an odd multi-bit fault aliased to a valid
	// single-error syndrome and was "corrected" to the wrong word — the
	// consumer sees silently corrupted data.
	OutcomeSilent
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDetected:
		return "detected-uncorrectable"
	case OutcomeSilent:
		return "silent-corrupt"
	default:
		return "ecc-outcome-?"
	}
}

// The codec uses the classic Hamming layout: codeword bit positions are
// numbered 1..72, parity bits sit at the power-of-two positions
// (1,2,4,8,16,32,64) and the 64 data bits fill the rest in order. An
// eighth, overall-parity bit extends SEC to SECDED. dataPos[i] is the
// codeword position of data bit i; it is built once at init.
var dataPos [WordBits]uint8

func init() {
	i := 0
	for pos := uint8(1); i < WordBits; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		dataPos[i] = pos
		i++
	}
}

// hammingSyndrome computes the 7-bit Hamming syndrome of the data bits:
// the XOR of the codeword positions of every set data bit. Parity bits
// are folded in by the caller (each parity bit p contributes its own
// position p when set).
func hammingSyndrome(data uint64) uint8 {
	var syn uint8
	for d := data; d != 0; d &= d - 1 {
		syn ^= dataPos[bits.TrailingZeros64(d)]
	}
	return syn
}

// Encode returns the 8 SECDED check bits for a 64-bit data word: the
// low 7 bits hold the Hamming parity values (bit k of the syndrome is
// parity position 1<<k), the high bit is overall parity over data and
// the 7 Hamming bits.
func Encode(data uint64) uint8 {
	syn := hammingSyndrome(data)
	// With parity bits chosen equal to the data syndrome's bits, each
	// parity position 1<<k contributes 1<<k to the full syndrome iff
	// bit k of syn is set, zeroing it — the defining property.
	check := syn & 0x7f
	overall := uint8(bits.OnesCount64(data)+bits.OnesCount8(check)) & 1
	return check | overall<<7
}

// Decode decodes a (data, check) pair as the BRAM read port does. It
// returns the decoder's output word and the read's Outcome:
//
//   - syndrome 0, parity even → clean, data returned as-is
//   - parity odd → the decoder assumes a single-bit error and corrects
//     the position the syndrome names (a data bit, a check bit, or — for
//     a syndrome naming no valid position — the word is flagged instead)
//   - syndrome ≠ 0, parity even → uncorrectable double(-ish) error;
//     the raw data is returned flagged
//
// A ≥3-bit fault is decoded honestly: odd-weight faults alias to a valid
// single-error syndrome and are miscorrected (OutcomeSilent from the
// caller's point of view — Decode itself cannot distinguish a true
// correction from a miscorrection, so callers that know the original
// word classify via Protection.Process).
func Decode(data uint64, check uint8) (uint64, Outcome) {
	syn := hammingSyndrome(data) ^ (check & 0x7f)
	overall := uint8(bits.OnesCount64(data)+bits.OnesCount8(check&0x7f)) & 1
	parityErr := overall != check>>7

	if syn == 0 {
		if !parityErr {
			return data, OutcomeClean
		}
		// Overall parity bit itself flipped: data is intact.
		return data, OutcomeCorrected
	}
	if !parityErr {
		// Non-zero syndrome with even overall parity: an even-weight
		// (≥2 bit) fault. Detected, not correctable.
		return data, OutcomeDetected
	}
	// Odd-weight fault: correct the named position.
	if syn&(syn-1) == 0 {
		// Syndrome names a parity position: data bits are intact.
		return data, OutcomeCorrected
	}
	for i, pos := range dataPos {
		if pos == syn {
			return data ^ 1<<uint(i), OutcomeCorrected
		}
	}
	// Syndrome names a position outside the 72-bit codeword: only a
	// multi-bit fault produces this — detectable.
	return data, OutcomeDetected
}
