package ecc

import "sync/atomic"

// Counts aggregates protected-read outcomes. The three fields are the
// paper-relevant split: corrected reads cost nothing, detected
// uncorrectable reads corrupt data visibly (a flag the host could act
// on), silent reads corrupt data invisibly — the failure mode that
// actually moves Top-1 accuracy under deep VCCBRAM underscaling.
type Counts struct {
	// Corrected counts single-bit words the decoder fixed transparently.
	Corrected int64 `json:"corrected"`
	// Detected counts words flagged uncorrectable (even-bit faults).
	Detected int64 `json:"detected"`
	// Silent counts words miscorrected to a wrong value (odd ≥3-bit
	// faults that alias to a valid single-error syndrome).
	Silent int64 `json:"silent"`
}

// Add accumulates another count set.
func (c *Counts) Add(o Counts) {
	c.Corrected += o.Corrected
	c.Detected += o.Detected
	c.Silent += o.Silent
}

// Total returns all faulted-word events.
func (c Counts) Total() int64 { return c.Corrected + c.Detected + c.Silent }

// Bad returns the events that corrupt consumed data (everything ECC
// could not transparently fix).
func (c Counts) Bad() int64 { return c.Detected + c.Silent }

// Protection is the word-level SECDED policy one board's DPU routes
// reduced-voltage BRAM reads through. It is safe for concurrent use: the
// lifetime counters are atomics, and Process is pure apart from them.
// The zero value is a disabled policy with zeroed counters.
type Protection struct {
	enabled atomic.Bool

	corrected atomic.Int64
	detected  atomic.Int64
	silent    atomic.Int64
	scrubbed  atomic.Int64 // words reset by scrub passes (see Scrubber)
}

// NewProtection returns a policy with the given initial enable state.
func NewProtection(enabled bool) *Protection {
	p := &Protection{}
	p.enabled.Store(enabled)
	return p
}

// Enabled reports whether protected decoding is active. A disabled
// policy leaves the executor on the unprotected raw-bit-flip path.
func (p *Protection) Enabled() bool { return p != nil && p.enabled.Load() }

// SetEnabled switches protected decoding on or off.
func (p *Protection) SetEnabled(on bool) { p.enabled.Store(on) }

// Process runs one faulted word through the SECDED decoder: orig is the
// stored (written) word, faulty the word as the reduced-voltage read
// returned it. It returns the word the consumer observes and the read's
// classification, and records the outcome in the lifetime counters.
//
// Unlike Decode, Process knows the original word, so it can tell a true
// correction (decoder output == orig) from a silent miscorrection.
func (p *Protection) Process(orig, faulty uint64) (uint64, Outcome) {
	out, o := Decode(faulty, Encode(orig))
	switch {
	case o == OutcomeClean:
		return out, OutcomeClean
	case o == OutcomeDetected:
		p.detected.Add(1)
		return out, OutcomeDetected
	case out == orig:
		p.corrected.Add(1)
		return out, OutcomeCorrected
	default:
		// The decoder "corrected" to a word that is not the original:
		// an aliased multi-bit fault slipped through silently.
		p.silent.Add(1)
		return out, OutcomeSilent
	}
}

// Counts snapshots the lifetime outcome counters.
func (p *Protection) Counts() Counts {
	if p == nil {
		return Counts{}
	}
	return Counts{
		Corrected: p.corrected.Load(),
		Detected:  p.detected.Load(),
		Silent:    p.silent.Load(),
	}
}

// ScrubbedWords returns how many corrupted words scrub passes have reset
// on the image this policy protects.
func (p *Protection) ScrubbedWords() int64 {
	if p == nil {
		return 0
	}
	return p.scrubbed.Load()
}

func (p *Protection) noteScrubbed(n int64) {
	if p != nil && n > 0 {
		p.scrubbed.Add(n)
	}
}
