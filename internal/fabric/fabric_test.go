package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpgauv/internal/silicon"
)

func testFabric() *Fabric {
	return New(silicon.NewSampleDie(1))
}

func TestUtilizationAccounting(t *testing.T) {
	// One B4096 DPU uses 24.3% of BRAMs and 25.6% of DSPs (paper §3.1);
	// three of them fit, a fourth would not (DSP would exceed 100%).
	one := Utilization{LUTs: 0.18, DSPs: 0.256, BRAMs: 0.243}
	three := one.Add(one).Add(one)
	if err := three.Validate(); err != nil {
		t.Fatalf("3 DPUs should fit: %v", err)
	}
	if three.DSPs < 0.75 || three.BRAMs < 0.72 {
		t.Fatalf("3 DPUs should use ≈75%% of DSPs/BRAMs, got %v", three)
	}
	four := three.Add(one)
	if err := four.Validate(); err == nil {
		t.Fatal("4 DPUs must not fit")
	}
	if four.String() == "" {
		t.Fatal("empty string")
	}
	if err := (Utilization{LUTs: -0.1}).Validate(); err == nil {
		t.Fatal("negative utilization must fail")
	}
}

func TestConfigureRejectsOversubscription(t *testing.T) {
	f := testFabric()
	if err := f.Configure(Utilization{DSPs: 1.2}); err == nil {
		t.Fatal("oversubscribed configure must fail")
	}
	want := Utilization{LUTs: 0.5, DSPs: 0.768, BRAMs: 0.729}
	if err := f.Configure(want); err != nil {
		t.Fatal(err)
	}
	if f.Utilization() != want {
		t.Fatal("utilization not stored")
	}
}

func TestFaultProbesDelegateToDie(t *testing.T) {
	f := testFabric()
	safe := Conditions{VCCINTmV: 850, VCCBRAMmV: 850, TempC: 34, FreqMHz: 333}
	if p := f.MACFaultProb(safe); p != 0 {
		t.Fatalf("no MAC faults at nominal, got %g", p)
	}
	if p := f.BRAMBitFaultProb(safe); p != 0 {
		t.Fatalf("no BRAM faults at nominal, got %g", p)
	}
	crit := safe
	crit.VCCINTmV = 550
	if p := f.MACFaultProb(crit); p <= 0 {
		t.Fatal("expected MAC faults at 550 mV")
	}
	if f.Crashed(crit, false) {
		t.Fatal("550 mV should not crash sample B")
	}
	crit.VCCINTmV = 535
	if !f.Crashed(crit, false) {
		t.Fatal("535 mV should crash sample B")
	}
}

// Region-edge boundaries of the per-bit BRAM fault law: exactly zero at
// and above the onset voltage, strictly positive one step below it, and
// strictly monotonic (with a hard 0.5 clamp) as VCCBRAM keeps dropping
// through the critical region toward the rail minimum.
func TestBRAMBitFaultProbBoundaries(t *testing.T) {
	f := testFabric()
	onset := f.Die().Params().BRAMVminMV
	cond := func(mv float64) Conditions {
		return Conditions{VCCINTmV: 850, VCCBRAMmV: mv, TempC: 34, FreqMHz: 333}
	}
	for _, mv := range []float64{silicon.VnomMV, onset + 50, onset + 1, onset} {
		if p := f.BRAMBitFaultProb(cond(mv)); p != 0 {
			t.Errorf("p(%0.f mV) = %g, want exactly 0 at/above the %.0f mV onset", mv, p, onset)
		}
	}
	if p := f.BRAMBitFaultProb(cond(onset - 1)); p <= 0 {
		t.Errorf("p(onset-1) = %g, want > 0 just below the onset", p)
	}
	prev := 0.0
	for mv := onset; mv >= 450; mv-- {
		p := f.BRAMBitFaultProb(cond(mv))
		if p < prev {
			t.Fatalf("p(%.0f mV) = %g < p(%.0f mV) = %g: not monotonic as voltage drops", mv, p, mv+1, prev)
		}
		if p > 0.5 {
			t.Fatalf("p(%.0f mV) = %g exceeds the 0.5 clamp", mv, p)
		}
		prev = p
	}
	if prev != 0.5 {
		t.Errorf("deep-underscale probability = %g, want clamped at 0.5 by 450 mV", prev)
	}
}

// The per-word split must be consistent with the per-bit law at the
// region edges: all-zero at the onset, single-bit dominated just below
// it, and each class monotonically nondecreasing in probability as the
// voltage drops until its own saturation.
func TestWordFaultProbsBoundaries(t *testing.T) {
	f := testFabric()
	onset := f.Die().Params().BRAMVminMV
	pAt := func(mv float64) float64 {
		return f.BRAMBitFaultProb(Conditions{VCCINTmV: 850, VCCBRAMmV: mv, TempC: 34, FreqMHz: 333})
	}
	if p1, p2, p3 := WordFaultProbs(64, pAt(onset)); p1 != 0 || p2 != 0 || p3 != 0 {
		t.Errorf("word probabilities not zero at the onset: %g %g %g", p1, p2, p3)
	}
	// Just below the onset the single-bit class must dominate the
	// uncorrectable classes by orders of magnitude — the headroom SECDED
	// converts into a deeper usable floor.
	p1, p2, p3 := WordFaultProbs(64, pAt(onset-5))
	if p1 <= 0 {
		t.Fatalf("no single-bit mass just below the onset: %g", p1)
	}
	if (p2+p3)/p1 > 1e-6 {
		t.Errorf("uncorrectable/corrected ratio %g just below onset, want ≪ 1", (p2+p3)/p1)
	}
	// Monotonicity of each class in pBit across the critical region.
	prev1, prev2, prev3 := 0.0, 0.0, 0.0
	for mv := onset; mv >= 480; mv -= 1 {
		q1, q2, q3 := WordFaultProbs(64, pAt(mv))
		// p1 peaks and then falls once multi-bit words take over; only
		// require monotonicity while the total keeps p1 below 1/2.
		if q1+q2+q3 > 1+1e-12 {
			t.Fatalf("word fault classes sum to %g > 1 at %.0f mV", q1+q2+q3, mv)
		}
		// P(X≥3) and P(X≥1) are stochastically monotone in pBit; the
		// exactly-1 and exactly-2 classes legitimately peak and shrink
		// once words graduate to higher multiplicities.
		if q3 < prev3 {
			t.Fatalf("multi class shrank as voltage dropped at %.0f mV", mv)
		}
		if q1+q2+q3 < prev1+prev2+prev3-1e-12 {
			t.Fatalf("total faulted-word probability shrank at %.0f mV", mv)
		}
		prev1, prev2, prev3 = q1, q2, q3
	}
	// Degenerate inputs.
	if p1, p2, p3 := WordFaultProbs(0, 0.1); p1 != 0 || p2 != 0 || p3 != 0 {
		t.Error("bitsPerWord=0 must be all-zero")
	}
	if p1, _, _ := WordFaultProbs(64, 0); p1 != 0 {
		t.Error("pBit=0 must be all-zero")
	}
	if _, _, p3 := WordFaultProbs(64, 1); p3 != 1 {
		t.Errorf("pBit=1: p3 = %g, want 1 (every word multi-faulted)", p3)
	}
}

// SampleWordFaults: determinism under a pinned seed, count bounds, and
// agreement of the sampled means with the analytic probabilities.
func TestSampleWordFaults(t *testing.T) {
	const nWords = 200_000
	const pBit = 2e-5
	a := SampleWordFaults(rand.New(rand.NewSource(11)), nWords, 64, pBit)
	b := SampleWordFaults(rand.New(rand.NewSource(11)), nWords, 64, pBit)
	if a != b {
		t.Fatalf("pinned seed not deterministic: %+v vs %+v", a, b)
	}
	if a.Total() > nWords || a.Singles < 0 || a.Doubles < 0 || a.Multis < 0 {
		t.Fatalf("counts out of range: %+v", a)
	}
	rng := rand.New(rand.NewSource(12))
	var s, d int64
	const trials = 200
	for i := 0; i < trials; i++ {
		wf := SampleWordFaults(rng, nWords, 64, pBit)
		s += wf.Singles
		d += wf.Doubles
	}
	p1, p2, _ := WordFaultProbs(64, pBit)
	wantS, wantD := nWords*p1, nWords*p2
	if got := float64(s) / trials; math.Abs(got-wantS)/wantS > 0.05 {
		t.Errorf("singles mean %.1f, want ≈%.1f", got, wantS)
	}
	if got := float64(d) / trials; math.Abs(got-wantD) > math.Max(0.5, 0.25*wantD) {
		t.Errorf("doubles mean %.2f, want ≈%.2f", got, wantD)
	}
	if wf := SampleWordFaults(rng, 0, 64, 0.5); wf != (WordFaults{}) {
		t.Error("nWords=0 must be empty")
	}
	if wf := SampleWordFaults(rng, 100, 64, 0); wf != (WordFaults{}) {
		t.Error("pBit=0 must be empty")
	}
	// Saturated regime: every word faults, clamp must hold the total.
	wf := SampleWordFaults(rng, 1000, 64, 1)
	if wf.Total() != 1000 || wf.Multis != 1000 {
		t.Errorf("saturated sample %+v, want 1000 multis", wf)
	}
}

func TestSampleFaultsSparseRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10_000_000
	const p = 1e-6
	const trials = 300
	var total int64
	for i := 0; i < trials; i++ {
		total += SampleFaults(rng, n, p)
	}
	mean := float64(total) / trials
	want := float64(n) * p // 10
	if math.Abs(mean-want) > 1.0 {
		t.Fatalf("sparse sampler mean = %.2f, want ≈%.1f", mean, want)
	}
}

func TestSampleFaultsDenseRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1_000_000
	const p = 0.01
	var total int64
	const trials = 50
	for i := 0; i < trials; i++ {
		k := SampleFaults(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("sample out of range: %d", k)
		}
		total += k
	}
	mean := float64(total) / trials
	want := float64(n) * p
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("dense sampler mean = %.0f, want ≈%.0f", mean, want)
	}
}

func TestSampleFaultsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SampleFaults(rng, 0, 0.5) != 0 {
		t.Fatal("n=0")
	}
	if SampleFaults(rng, 100, 0) != 0 {
		t.Fatal("p=0")
	}
	if SampleFaults(rng, 100, 1) != 100 {
		t.Fatal("p=1")
	}
	if SampleFaults(rng, -5, 0.1) != 0 {
		t.Fatal("negative n")
	}
}

func TestSampleFaultsBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint32, pRaw uint16) bool {
		n := int64(nRaw % 5_000_000)
		p := float64(pRaw) / 65535.0
		k := SampleFaults(rng, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
