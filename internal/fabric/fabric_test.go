package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpgauv/internal/silicon"
)

func testFabric() *Fabric {
	return New(silicon.NewSampleDie(1))
}

func TestUtilizationAccounting(t *testing.T) {
	// One B4096 DPU uses 24.3% of BRAMs and 25.6% of DSPs (paper §3.1);
	// three of them fit, a fourth would not (DSP would exceed 100%).
	one := Utilization{LUTs: 0.18, DSPs: 0.256, BRAMs: 0.243}
	three := one.Add(one).Add(one)
	if err := three.Validate(); err != nil {
		t.Fatalf("3 DPUs should fit: %v", err)
	}
	if three.DSPs < 0.75 || three.BRAMs < 0.72 {
		t.Fatalf("3 DPUs should use ≈75%% of DSPs/BRAMs, got %v", three)
	}
	four := three.Add(one)
	if err := four.Validate(); err == nil {
		t.Fatal("4 DPUs must not fit")
	}
	if four.String() == "" {
		t.Fatal("empty string")
	}
	if err := (Utilization{LUTs: -0.1}).Validate(); err == nil {
		t.Fatal("negative utilization must fail")
	}
}

func TestConfigureRejectsOversubscription(t *testing.T) {
	f := testFabric()
	if err := f.Configure(Utilization{DSPs: 1.2}); err == nil {
		t.Fatal("oversubscribed configure must fail")
	}
	want := Utilization{LUTs: 0.5, DSPs: 0.768, BRAMs: 0.729}
	if err := f.Configure(want); err != nil {
		t.Fatal(err)
	}
	if f.Utilization() != want {
		t.Fatal("utilization not stored")
	}
}

func TestFaultProbesDelegateToDie(t *testing.T) {
	f := testFabric()
	safe := Conditions{VCCINTmV: 850, VCCBRAMmV: 850, TempC: 34, FreqMHz: 333}
	if p := f.MACFaultProb(safe); p != 0 {
		t.Fatalf("no MAC faults at nominal, got %g", p)
	}
	if p := f.BRAMBitFaultProb(safe); p != 0 {
		t.Fatalf("no BRAM faults at nominal, got %g", p)
	}
	crit := safe
	crit.VCCINTmV = 550
	if p := f.MACFaultProb(crit); p <= 0 {
		t.Fatal("expected MAC faults at 550 mV")
	}
	if f.Crashed(crit, false) {
		t.Fatal("550 mV should not crash sample B")
	}
	crit.VCCINTmV = 535
	if !f.Crashed(crit, false) {
		t.Fatal("535 mV should crash sample B")
	}
}

func TestSampleFaultsSparseRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10_000_000
	const p = 1e-6
	const trials = 300
	var total int64
	for i := 0; i < trials; i++ {
		total += SampleFaults(rng, n, p)
	}
	mean := float64(total) / trials
	want := float64(n) * p // 10
	if math.Abs(mean-want) > 1.0 {
		t.Fatalf("sparse sampler mean = %.2f, want ≈%.1f", mean, want)
	}
}

func TestSampleFaultsDenseRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1_000_000
	const p = 0.01
	var total int64
	const trials = 50
	for i := 0; i < trials; i++ {
		k := SampleFaults(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("sample out of range: %d", k)
		}
		total += k
	}
	mean := float64(total) / trials
	want := float64(n) * p
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("dense sampler mean = %.0f, want ≈%.0f", mean, want)
	}
}

func TestSampleFaultsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SampleFaults(rng, 0, 0.5) != 0 {
		t.Fatal("n=0")
	}
	if SampleFaults(rng, 100, 0) != 0 {
		t.Fatal("p=0")
	}
	if SampleFaults(rng, 100, 1) != 100 {
		t.Fatal("p=1")
	}
	if SampleFaults(rng, -5, 0.1) != 0 {
		t.Fatal("negative n")
	}
}

func TestSampleFaultsBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw uint32, pRaw uint16) bool {
		n := int64(nRaw % 5_000_000)
		p := float64(pRaw) / 65535.0
		k := SampleFaults(rng, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
