// Package fabric models the programmable-logic fabric of the Zynq
// UltraScale+ XCZU9EG: the LUT/DSP/BRAM resource inventory, per-design
// utilization accounting, and the voltage-dependent fault sampling the DPU
// executor uses to corrupt computations in the critical voltage region.
package fabric

import (
	"fmt"
	"math"
	"math/rand"

	"fpgauv/internal/silicon"
)

// XCZU9EG programmable-logic inventory (paper §3.3.1: "The PL part has
// 32.1 Mbit of BRAMs, 600K LUTs, and 2520 DSPs").
const (
	TotalLUTs    = 600_000
	TotalDSPs    = 2520
	TotalBRAMKb  = 32_100
	BRAMBlockKb  = 36
	TotalBRAMs   = TotalBRAMKb / BRAMBlockKb // ≈891 36Kb blocks
	DDRBytesPerS = 19.2e9                    // 64-bit DDR4-2400 off-chip memory
)

// Utilization tracks the fraction of each resource class a design uses.
type Utilization struct {
	LUTs  float64
	DSPs  float64
	BRAMs float64
}

// Add accumulates another design's utilization (e.g. a second DPU core).
func (u Utilization) Add(v Utilization) Utilization {
	return Utilization{
		LUTs:  u.LUTs + v.LUTs,
		DSPs:  u.DSPs + v.DSPs,
		BRAMs: u.BRAMs + v.BRAMs,
	}
}

// Validate reports an error if any resource class is oversubscribed.
func (u Utilization) Validate() error {
	if u.LUTs > 1 || u.DSPs > 1 || u.BRAMs > 1 {
		return fmt.Errorf("fabric: utilization exceeds device capacity: LUT %.1f%%, DSP %.1f%%, BRAM %.1f%%",
			u.LUTs*100, u.DSPs*100, u.BRAMs*100)
	}
	if u.LUTs < 0 || u.DSPs < 0 || u.BRAMs < 0 {
		return fmt.Errorf("fabric: negative utilization")
	}
	return nil
}

// String formats the utilization as percentages.
func (u Utilization) String() string {
	return fmt.Sprintf("LUT %.1f%% DSP %.1f%% BRAM %.1f%%", u.LUTs*100, u.DSPs*100, u.BRAMs*100)
}

// Fabric binds a die sample to a configured design and answers fault-rate
// queries for it.
type Fabric struct {
	die  *silicon.Die
	util Utilization
}

// New returns a fabric on the given die with no design loaded.
func New(die *silicon.Die) *Fabric {
	return &Fabric{die: die}
}

// Die returns the underlying die.
func (f *Fabric) Die() *silicon.Die { return f.die }

// Configure loads a design's utilization (bitstream programming).
func (f *Fabric) Configure(u Utilization) error {
	if err := u.Validate(); err != nil {
		return err
	}
	f.util = u
	return nil
}

// Utilization returns the configured design's resource usage.
func (f *Fabric) Utilization() Utilization { return f.util }

// Conditions captures the electrical/thermal state fault rates depend on.
type Conditions struct {
	VCCINTmV  float64
	VCCBRAMmV float64
	TempC     float64
	FreqMHz   float64
	// Stress is the per-workload critical-path stress factor.
	Stress float64
}

// MACFaultProb returns the per-MAC-per-cycle timing-fault probability for
// DSP/LUT datapaths at the given conditions.
func (f *Fabric) MACFaultProb(c Conditions) float64 {
	return f.die.FaultProb(silicon.PathData, c.VCCINTmV, c.TempC, c.FreqMHz, c.Stress)
}

// BRAMBitFaultProb returns the per-bit-read flip probability at the given
// VCCBRAM level.
func (f *Fabric) BRAMBitFaultProb(c Conditions) float64 {
	return f.die.FaultProb(silicon.PathBRAM, c.VCCBRAMmV, c.TempC, 0, 0)
}

// Crashed reports whether the fabric hangs at the given conditions.
func (f *Fabric) Crashed(c Conditions, pruned bool) bool {
	return f.die.Crashed(c.VCCINTmV, c.TempC, pruned)
}

// SampleFaults draws the number of faulty events among n independent
// trials with per-trial probability p, using a Poisson approximation for
// the sparse regime and a normal approximation for dense regimes. This is
// how the executor decides how many MAC results to corrupt per layer
// without iterating over millions of MACs.
func SampleFaults(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	switch {
	case mean < 30:
		return samplePoisson(rng, mean)
	default:
		// Normal approximation with continuity; variance np(1-p).
		sd := math.Sqrt(mean * (1 - p))
		k := int64(math.Round(rng.NormFloat64()*sd + mean))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}

// samplePoisson draws from Poisson(mean) with Knuth's method for small
// means and a normal fallback for larger ones.
func samplePoisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean > 20 {
		k := int64(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
