// Package fabric models the programmable-logic fabric of the Zynq
// UltraScale+ XCZU9EG: the LUT/DSP/BRAM resource inventory, per-design
// utilization accounting, and the voltage-dependent fault sampling the DPU
// executor uses to corrupt computations in the critical voltage region.
package fabric

import (
	"fmt"
	"math"
	"math/rand"

	"fpgauv/internal/silicon"
)

// XCZU9EG programmable-logic inventory (paper §3.3.1: "The PL part has
// 32.1 Mbit of BRAMs, 600K LUTs, and 2520 DSPs").
const (
	TotalLUTs    = 600_000
	TotalDSPs    = 2520
	TotalBRAMKb  = 32_100
	BRAMBlockKb  = 36
	TotalBRAMs   = TotalBRAMKb / BRAMBlockKb // ≈891 36Kb blocks
	DDRBytesPerS = 19.2e9                    // 64-bit DDR4-2400 off-chip memory
)

// Utilization tracks the fraction of each resource class a design uses.
type Utilization struct {
	LUTs  float64
	DSPs  float64
	BRAMs float64
}

// Add accumulates another design's utilization (e.g. a second DPU core).
func (u Utilization) Add(v Utilization) Utilization {
	return Utilization{
		LUTs:  u.LUTs + v.LUTs,
		DSPs:  u.DSPs + v.DSPs,
		BRAMs: u.BRAMs + v.BRAMs,
	}
}

// Validate reports an error if any resource class is oversubscribed.
func (u Utilization) Validate() error {
	if u.LUTs > 1 || u.DSPs > 1 || u.BRAMs > 1 {
		return fmt.Errorf("fabric: utilization exceeds device capacity: LUT %.1f%%, DSP %.1f%%, BRAM %.1f%%",
			u.LUTs*100, u.DSPs*100, u.BRAMs*100)
	}
	if u.LUTs < 0 || u.DSPs < 0 || u.BRAMs < 0 {
		return fmt.Errorf("fabric: negative utilization")
	}
	return nil
}

// String formats the utilization as percentages.
func (u Utilization) String() string {
	return fmt.Sprintf("LUT %.1f%% DSP %.1f%% BRAM %.1f%%", u.LUTs*100, u.DSPs*100, u.BRAMs*100)
}

// Fabric binds a die sample to a configured design and answers fault-rate
// queries for it.
type Fabric struct {
	die  *silicon.Die
	util Utilization
}

// New returns a fabric on the given die with no design loaded.
func New(die *silicon.Die) *Fabric {
	return &Fabric{die: die}
}

// Die returns the underlying die.
func (f *Fabric) Die() *silicon.Die { return f.die }

// Configure loads a design's utilization (bitstream programming).
func (f *Fabric) Configure(u Utilization) error {
	if err := u.Validate(); err != nil {
		return err
	}
	f.util = u
	return nil
}

// Utilization returns the configured design's resource usage.
func (f *Fabric) Utilization() Utilization { return f.util }

// Conditions captures the electrical/thermal state fault rates depend on.
type Conditions struct {
	VCCINTmV  float64
	VCCBRAMmV float64
	TempC     float64
	FreqMHz   float64
	// Stress is the per-workload critical-path stress factor.
	Stress float64
}

// MACFaultProb returns the per-MAC-per-cycle timing-fault probability for
// DSP/LUT datapaths at the given conditions.
func (f *Fabric) MACFaultProb(c Conditions) float64 {
	return f.die.FaultProb(silicon.PathData, c.VCCINTmV, c.TempC, c.FreqMHz, c.Stress)
}

// BRAMBitFaultProb returns the per-bit-read flip probability at the given
// VCCBRAM level.
func (f *Fabric) BRAMBitFaultProb(c Conditions) float64 {
	return f.die.FaultProb(silicon.PathBRAM, c.VCCBRAMmV, c.TempC, 0, 0)
}

// Crashed reports whether the fabric hangs at the given conditions.
func (f *Fabric) Crashed(c Conditions, pruned bool) bool {
	return f.die.Crashed(c.VCCINTmV, c.TempC, pruned)
}

// SampleFaults draws the number of faulty events among n independent
// trials with per-trial probability p, using a Poisson approximation for
// the sparse regime and a normal approximation for dense regimes. This is
// how the executor decides how many MAC results to corrupt per layer
// without iterating over millions of MACs.
func SampleFaults(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	switch {
	case mean < 30:
		return samplePoisson(rng, mean)
	default:
		// Normal approximation with continuity; variance np(1-p).
		sd := math.Sqrt(mean * (1 - p))
		k := int64(math.Round(rng.NormFloat64()*sd + mean))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
}

// WordFaults splits one BRAM image's read-fault events by per-word
// multiplicity. The split is what makes ECC outcomes physically
// meaningful: SECDED corrects single-bit words, detects double-bit
// words, and can silently miscorrect words with three or more flips.
type WordFaults struct {
	// Singles is the number of words carrying exactly one flipped bit.
	Singles int64
	// Doubles is the number of words carrying exactly two flipped bits.
	Doubles int64
	// Multis is the number of words carrying three or more flipped bits.
	Multis int64
}

// Total returns the number of faulted words.
func (w WordFaults) Total() int64 { return w.Singles + w.Doubles + w.Multis }

// WordFaultProbs returns the per-word probabilities of exactly one,
// exactly two, and three-or-more bit flips for a word of bitsPerWord
// independent bits each flipping with probability pBit. Near the fault
// onset pBit is tiny and the ratios are p1 : p2 : p3 ≈ 1 : (n-1)p/2 :
// O((np)²) — single-bit words dominate, which is exactly why SECDED
// moves the usable voltage floor.
func WordFaultProbs(bitsPerWord int, pBit float64) (p1, p2, p3 float64) {
	if bitsPerWord <= 0 || pBit <= 0 {
		return 0, 0, 0
	}
	if pBit >= 1 {
		pBit = 1
	}
	n := float64(bitsPerWord)
	q := 1 - pBit
	if q <= 0 {
		if bitsPerWord >= 3 {
			return 0, 0, 1
		}
		if bitsPerWord == 2 {
			return 0, 1, 0
		}
		return 1, 0, 0
	}
	p1 = n * pBit * math.Pow(q, n-1)
	if bitsPerWord >= 2 {
		p2 = n * (n - 1) / 2 * pBit * pBit * math.Pow(q, n-2)
	}
	// The ≥3 tail is summed term by term (multiplicative binomial
	// recurrence) instead of as 1 - p0 - p1 - p2: the residual form
	// cancels catastrophically in the sparse regime where the tail is
	// orders of magnitude below float epsilon of the head.
	if bitsPerWord >= 3 {
		term := n * (n - 1) * (n - 2) / 6 * pBit * pBit * pBit * math.Pow(q, n-3)
		for k := 3; k <= bitsPerWord && term > 0; k++ {
			p3 += term
			term *= (n - float64(k)) / float64(k+1) * pBit / q
		}
		if p3 > 1 {
			p3 = 1
		}
	}
	return p1, p2, p3
}

// SampleWordFaults draws the per-multiplicity faulted-word counts for an
// image of nWords words of bitsPerWord bits each, at per-bit flip
// probability pBit. The three draws use the same sparse/dense sampling
// machinery as SampleFaults, in a fixed order, so counts are bit-exactly
// reproducible under a pinned rng.
func SampleWordFaults(rng *rand.Rand, nWords int64, bitsPerWord int, pBit float64) WordFaults {
	if nWords <= 0 || bitsPerWord <= 0 || pBit <= 0 {
		return WordFaults{}
	}
	p1, p2, p3 := WordFaultProbs(bitsPerWord, pBit)
	wf := WordFaults{
		Singles: SampleFaults(rng, nWords, p1),
		Doubles: SampleFaults(rng, nWords, p2),
		Multis:  SampleFaults(rng, nWords, p3),
	}
	if total := wf.Total(); total > nWords {
		// Degenerate dense regime: clamp in priority order (multis are
		// the rarest and physically the overflow of the other classes).
		over := total - nWords
		if take := min(over, wf.Multis); take > 0 {
			wf.Multis -= take
			over -= take
		}
		if take := min(over, wf.Doubles); take > 0 {
			wf.Doubles -= take
			over -= take
		}
		wf.Singles -= over
	}
	return wf
}

// samplePoisson draws from Poisson(mean) with Knuth's method for small
// means and a normal fallback for larger ones.
func samplePoisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean > 20 {
		k := int64(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
