// Package tensor provides the dense float32 tensor type the CNN inference
// stack is built on: row-major storage, shape accounting, and the
// arithmetic kernels (matmul, im2col-free convolution helpers) used by the
// reference float path.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	dims []int
	data []float32
}

// New allocates a zero tensor with the given dimensions.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", d, dims))
		}
		n *= d
	}
	return &Tensor{dims: append([]int(nil), dims...), data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given dimensions.
func FromSlice(data []float32, dims ...int) (*Tensor, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: invalid dimension %d in %v", d, dims)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: %v needs %d elements, got %d", dims, n, len(data))
	}
	return &Tensor{dims: append([]int(nil), dims...), data: data}, nil
}

// Dims returns a copy of the tensor's dimensions.
func (t *Tensor) Dims() []int { return append([]int(nil), t.dims...) }

// DimsInto copies the dimensions into dst's backing array (growing it if
// needed) and returns the result — the allocation-free form of Dims.
func (t *Tensor) DimsInto(dst []int) []int { return append(dst[:0], t.dims...) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.dims[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.dims) }

// Size returns the total element count.
func (t *Tensor) Size() int { return len(t.data) }

// Data exposes the backing slice for kernel implementations. Mutating it
// mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{dims: append([]int(nil), t.dims...), data: make([]float32, len(t.data))}
	copy(out.data, t.data)
	return out
}

// Reshape returns a view with new dimensions of the same total size.
func (t *Tensor) Reshape(dims ...int) (*Tensor, error) {
	return FromSlice(t.data, dims...)
}

// offset computes the flat index of idx.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.dims) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.dims[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for %v", idx, t.dims))
		}
		off = off*t.dims[i] + x
	}
	return off
}

// At returns the element at idx.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx...)] }

// Set stores v at idx.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// FillRandn fills with seeded Gaussian noise scaled by std.
func (t *Tensor) FillRandn(rng *rand.Rand, std float64) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	return m
}

// Add accumulates src into t element-wise. Shapes must match.
func (t *Tensor) Add(src *Tensor) error {
	if len(src.data) != len(t.data) {
		return fmt.Errorf("tensor: add size mismatch %v vs %v", t.dims, src.dims)
	}
	for i, v := range src.data {
		t.data[i] += v
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// MatMul computes C = A·B for 2-D tensors (m×k)·(k×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul needs 2-D operands, got %v, %v", a.dims, b.dims)
	}
	m, k := a.dims[0], a.dims[1]
	k2, n := b.dims[0], b.dims[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmul inner dims %d vs %d", k, k2)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// ArgMax returns the index of the largest element of a rank-1 tensor.
func (t *Tensor) ArgMax() int {
	best, bestIdx := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}
