package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatal("geometry")
	}
	x.Set(7.5, 1, 2, 3)
	if x.At(1, 2, 3) != 7.5 {
		t.Fatal("at/set")
	}
	dims := x.Dims()
	dims[0] = 99
	if x.Dim(0) != 2 {
		t.Fatal("Dims must return a copy")
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice(make([]float32, 5), 2, 3); err == nil {
		t.Fatal("size mismatch must error")
	}
	if _, err := FromSlice(nil, 0); err == nil {
		t.Fatal("zero dim must error")
	}
	x, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil || x.At(1, 1) != 4 {
		t.Fatal("from slice")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not alias")
	}
}

func TestReshape(t *testing.T) {
	x := New(2, 6)
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(5, 0, 1)
	if x.At(0, 1) != 5 {
		t.Fatal("reshape should alias storage")
	}
	if _, err := x.Reshape(5); err == nil {
		t.Fatal("bad reshape must error")
	}
}

func TestAddScaleMaxAbs(t *testing.T) {
	x, _ := FromSlice([]float32{1, -2, 3}, 3)
	y, _ := FromSlice([]float32{1, 1, 1}, 3)
	if err := x.Add(y); err != nil {
		t.Fatal(err)
	}
	if x.At(1) != -1 {
		t.Fatal("add")
	}
	x.Scale(2)
	if x.At(2) != 8 {
		t.Fatal("scale")
	}
	if x.MaxAbs() != 8 {
		t.Fatal("maxabs")
	}
	if err := x.Add(New(4)); err == nil {
		t.Fatal("mismatched add must error")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("c[%d] = %f, want %f", i, c.Data()[i], w)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Fatal("inner dim mismatch must error")
	}
	if _, err := MatMul(New(2), b); err == nil {
		t.Fatal("rank check must error")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(6))
		a := New(n, n)
		a.FillRandn(rng, 1)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		c, err := MatMul(a, id)
		if err != nil {
			return false
		}
		for i, v := range a.Data() {
			if math.Abs(float64(v-c.Data()[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	x, _ := FromSlice([]float32{0.1, 0.9, 0.3}, 3)
	if x.ArgMax() != 1 {
		t.Fatal("argmax")
	}
}

func TestFillRandnDeterministic(t *testing.T) {
	a := New(16)
	b := New(16)
	a.FillRandn(rand.New(rand.NewSource(5)), 1)
	b.FillRandn(rand.New(rand.NewSource(5)), 1)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("seeded fill must be deterministic")
		}
	}
}
