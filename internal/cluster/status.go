package cluster

import (
	"fpgauv/internal/fleet"
	"fpgauv/internal/telemetry"
)

// Status aggregates every pool's snapshot into one fleet.Status: boards
// concatenated (ids are pool-qualified, so they stay unique), counters
// summed, governor/ECC summaries merged, and the router tier's own view
// attached as Status.Cluster. Spare pools are included — their boards
// are characterized and parked, and hiding them would make the board
// count lie.
func (r *Router) Status() fleet.Status {
	agg := fleet.Status{Pool: "cluster", MaxQueue: r.cfg.Pool.MaxQueue, Closed: r.closing.Load()}
	cl := &fleet.ClusterStatus{
		Routes:           r.routes.Load(),
		Hops:             r.hops.Load(),
		Sheds:            r.sheds.Load(),
		SpareActivations: r.spareActs.Load(),
	}
	// The aggregate Shed counts requests refused to the caller (the
	// router's terminal sheds); per-pool admission refusals are visible
	// in the per-pool entries.
	agg.Shed = r.sheds.Load()
	var gov *fleet.GovernorStatus
	var ecc *fleet.ECCStatus
	for _, e := range r.entries {
		st := e.pool.Status()
		active := e.active.Load()
		if agg.Benchmark == "" {
			agg.Benchmark = st.Benchmark
			// Every pool is built from the same template, so the first
			// pool's deployed sparsity and backend speak for the cluster.
			agg.Sparsity = st.Sparsity
			agg.Backend = st.Backend
		}
		agg.Boards = append(agg.Boards, st.Boards...)
		agg.Queued += st.Queued
		agg.InFlight += st.InFlight
		agg.Requests += st.Requests
		agg.Served += st.Served
		agg.EvalRequests += st.EvalRequests
		agg.EvalServed += st.EvalServed
		agg.InferRequests += st.InferRequests
		agg.InferServed += st.InferServed
		agg.InferImages += st.InferImages
		agg.InferMicroBatches += st.InferMicroBatches
		agg.Requeues += st.Requeues
		agg.Rejected += st.Rejected
		agg.Failed += st.Failed
		agg.Canceled += st.Canceled
		agg.Crashes += st.Crashes
		agg.Reboots += st.Reboots
		agg.Redeploys += st.Redeploys
		agg.MACFaults += st.MACFaults
		agg.BRAMFaults += st.BRAMFaults
		agg.GOPs += st.GOPs
		// The GEMM worker pool is process-wide, so every pool reports the
		// same value; carry it rather than summing.
		agg.GemmWorkers = st.GemmWorkers
		gov = mergeGovernor(gov, st.Governor)
		ecc = mergeECC(ecc, st.ECC)

		q, _ := e.pool.QuiescentBoards()
		pr := fleet.PoolRouteStatus{
			Pool:      e.name,
			Active:    active,
			Boards:    e.pool.Size(),
			Queued:    st.Queued,
			InFlight:  st.InFlight,
			MaxQueue:  st.MaxQueue,
			Routes:    e.routes.Load(),
			Sheds:     e.sheds.Load() + st.Shed,
			Quiescent: q,
			PowerW:    e.pool.OperatingPowerW(),
			Degraded:  e.pool.DegradedBoards(),
		}
		cl.Pools = append(cl.Pools, pr)
		if active {
			cl.ActivePools++
		} else {
			cl.SparePools++
		}
	}
	agg.Governor = gov
	agg.ECC = ecc
	agg.Cluster = cl
	return agg
}

// Health concatenates every pool's board health scores in pool index
// order (spares included — a degraded spare should not be promoted
// blind).
func (r *Router) Health() []telemetry.BoardHealth {
	var out []telemetry.BoardHealth
	for _, e := range r.entries {
		out = append(out, e.pool.BoardHealth()...)
	}
	return out
}

// Postmortems merges every pool's retained crash postmortems newest
// first (limit <= 0: all retained).
func (r *Router) Postmortems(limit int) []telemetry.Postmortem {
	sets := make([][]telemetry.Postmortem, 0, len(r.entries))
	for _, e := range r.entries {
		sets = append(sets, e.pool.Postmortems(0))
	}
	return telemetry.MergePostmortems(limit, sets...)
}

// mergeGovernor folds one pool's governor summary into the cluster
// aggregate: configuration comes from the first pool (every pool is
// built from the same template), counters and savings are summed.
func mergeGovernor(into, st *fleet.GovernorStatus) *fleet.GovernorStatus {
	if st == nil {
		return into
	}
	if into == nil {
		cp := *st
		return &cp
	}
	into.Enabled = into.Enabled || st.Enabled
	into.Probes += st.Probes
	into.Climbs += st.Climbs
	into.Descents += st.Descents
	into.CanaryFaults += st.CanaryFaults
	into.BRAMProbes += st.BRAMProbes
	into.BRAMClimbs += st.BRAMClimbs
	into.BRAMDescents += st.BRAMDescents
	into.SavedW += st.SavedW
	into.SavedJ += st.SavedJ
	return into
}

// mergeECC folds one pool's ECC summary into the cluster aggregate.
func mergeECC(into, st *fleet.ECCStatus) *fleet.ECCStatus {
	if st == nil {
		return into
	}
	if into == nil {
		cp := *st
		return &cp
	}
	into.Enabled = into.Enabled || st.Enabled
	into.Counts.Add(st.Counts)
	into.ScrubPasses += st.ScrubPasses
	into.ScrubCorrected += st.ScrubCorrected
	into.ScrubReloaded += st.ScrubReloaded
	return into
}
