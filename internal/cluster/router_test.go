package cluster

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/obs"
	"fpgauv/internal/tensor"
)

func testPoolCfg(boards int) fleet.Config {
	return fleet.Config{
		Boards:          boards,
		Benchmark:       "VGGNet",
		Tiny:            true,
		Images:          8,
		CharRepeats:     1,
		MonitorInterval: -1,
	}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// Rendezvous hashing must be deterministic (the same key always ranks
// the same pool first), spread distinct keys across the pool set, and
// exhibit HRW's minimal-disruption property: removing a pool a key did
// NOT win never remaps that key.
func TestRendezvousDeterministicAndSpread(t *testing.T) {
	pools := []string{"pool0", "pool1", "pool2"}
	winner := func(key int64, set []string) string {
		best, bestScore := "", math.Inf(-1)
		for _, p := range set {
			if s := rendezvousScore(key, p, 3); s > bestScore {
				best, bestScore = p, s
			}
		}
		return best
	}
	seen := map[string]bool{}
	for key := int64(1); key <= 64; key++ {
		w := winner(key, pools)
		for rep := 0; rep < 3; rep++ {
			if got := winner(key, pools); got != w {
				t.Fatalf("key %d: winner flapped %s -> %s", key, w, got)
			}
		}
		seen[w] = true
		// Remove each losing pool in turn: the winner must hold.
		for _, drop := range pools {
			if drop == w {
				continue
			}
			reduced := make([]string, 0, 2)
			for _, p := range pools {
				if p != drop {
					reduced = append(reduced, p)
				}
			}
			if got := winner(key, reduced); got != w {
				t.Errorf("key %d: dropping loser %s remapped winner %s -> %s", key, drop, w, got)
			}
		}
	}
	if len(seen) < 3 {
		t.Errorf("64 keys landed on %d of 3 pools; want all three in play", len(seen))
	}
}

// A pinned affinity key must keep landing on the same pool, and the
// candidate fallback chain for that key must be stable call over call.
func TestRouterAffinityPinsPool(t *testing.T) {
	r := newTestRouter(t, Config{Pools: 3, Pool: testPoolCfg(1)})

	for i := 0; i < 4; i++ {
		if _, err := r.Classify(context.Background(), fleet.Request{Seed: 42}); err != nil {
			t.Fatal(err)
		}
	}
	evs, _, _ := r.journal.Since(0, 0)
	var routed []string
	for _, ev := range evs {
		if ev.Kind == obs.EvRoute {
			routed = append(routed, ev.Board)
		}
	}
	if len(routed) != 4 {
		t.Fatalf("route events = %d, want 4", len(routed))
	}
	for _, b := range routed[1:] {
		if b != routed[0] {
			t.Errorf("affinity 42 flapped pools: %v", routed)
		}
	}

	c1 := r.candidates(classBulk, 42, new(routeScratch))
	c2 := r.candidates(classBulk, 42, new(routeScratch))
	if len(c1) != 3 || len(c2) != 3 {
		t.Fatalf("candidate chains %d/%d, want 3/3", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("fallback chain unstable at position %d: %s vs %s", i, c1[i].name, c2[i].name)
		}
	}
}

// occupyWorkers parks one long inference job on the scheduler and waits
// until the target pool has it in flight.
func occupyWorkers(t *testing.T, r *Router, p *fleet.Pool, wg *sync.WaitGroup) {
	t.Helper()
	shape := r.InputShape()
	imgs := make([]*tensor.Tensor, 64)
	for i := range imgs {
		imgs[i] = tensor.New(shape.C, shape.H, shape.W)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := r.Infer(context.Background(), fleet.InferRequest{Images: imgs, Seed: 3}); err != nil {
			t.Errorf("long job: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for p.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for worker to pick up the long job")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// When every active pool is at its caps the router must promote a warm
// spare and serve the request there rather than shedding it.
func TestRouterPromotesSpareWhenSaturated(t *testing.T) {
	pc := testPoolCfg(1)
	pc.MaxQueue = 1
	pc.MicroBatch = 1
	r := newTestRouter(t, Config{Pools: 1, Spares: 1, Pool: pc, MaxInFlight: 1, SpareDepth: 1})

	var wg sync.WaitGroup
	occupyWorkers(t, r, r.entries[0].pool, &wg)

	// pool0 is at MaxInFlight: this request must ride the spare.
	if _, err := r.Classify(context.Background(), fleet.Request{Seed: 7}); err != nil {
		t.Fatalf("classify with a parked spare available: %v", err)
	}
	if got := r.spareActs.Load(); got != 1 {
		t.Errorf("spare activations = %d, want 1", got)
	}
	if !r.entries[1].active.Load() {
		t.Error("spare pool1 not activated")
	}
	counts := r.journal.Counts()
	if counts[obs.EvSpareActivate] != 1 {
		t.Errorf("journal spare_activate = %d, want 1", counts[obs.EvSpareActivate])
	}
	if counts[obs.EvShed] == 0 {
		t.Error("journal recorded no shed for the saturated pool0 attempt")
	}
	st := r.Status()
	if st.Cluster == nil {
		t.Fatal("Status.Cluster nil")
	}
	if st.Cluster.ActivePools != 2 || st.Cluster.SparePools != 0 {
		t.Errorf("active/spare = %d/%d, want 2/0", st.Cluster.ActivePools, st.Cluster.SparePools)
	}
	wg.Wait()
}

// With no spare left, a fully saturated cluster must shed to the caller
// with the typed error and a positive retry hint, and count it.
func TestRouterShedsWhenNoSpare(t *testing.T) {
	pc := testPoolCfg(1)
	pc.MaxQueue = 1
	pc.MicroBatch = 1
	r := newTestRouter(t, Config{Pools: 1, Pool: pc, MaxInFlight: 1})

	var wg sync.WaitGroup
	occupyWorkers(t, r, r.entries[0].pool, &wg)

	_, err := r.Classify(context.Background(), fleet.Request{Seed: 9})
	var sat fleet.ErrSaturated
	if !errors.As(err, &sat) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if sat.Scheduler != "cluster" {
		t.Errorf("Scheduler = %q, want cluster", sat.Scheduler)
	}
	if sat.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", sat.RetryAfter)
	}
	if got := r.sheds.Load(); got != 1 {
		t.Errorf("terminal sheds = %d, want 1", got)
	}
	st := r.Status()
	if st.Shed != 1 {
		t.Errorf("Status.Shed = %d, want 1", st.Shed)
	}
	wg.Wait()
}

// Chaos under -race: concurrent Classify and Infer across two pools
// while every board of pool0 crashes via injected failures. Every
// request must either complete or shed with the typed error — nothing
// hangs, nothing is lost — and each pool's board journal must keep its
// per-board sequence strictly increasing.
func TestRouterConcurrentCrashChaos(t *testing.T) {
	pc := testPoolCfg(2)
	pc.MaxQueue = 4
	pc.MaxAttempts = 6
	r := newTestRouter(t, Config{Pools: 2, Pool: pc})

	if err := r.Pools()[0].InjectFailures(-1, 3); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	shape := r.InputShape()
	const n = 24
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%3 == 0 {
				img := tensor.New(shape.C, shape.H, shape.W)
				_, err = r.Infer(ctx, fleet.InferRequest{Images: []*tensor.Tensor{img}, Seed: int64(i % 5)})
			} else {
				_, err = r.Classify(ctx, fleet.Request{Seed: int64(i % 7)})
			}
			var sat fleet.ErrSaturated
			switch {
			case err == nil:
				served.Add(1)
			case errors.As(err, &sat):
				shed.Add(1)
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Error("no request served")
	}
	if got := served.Load() + shed.Load(); got != n {
		t.Errorf("served+shed = %d, want %d", got, n)
	}
	for pi, p := range r.Pools() {
		evs, _, _ := p.Journal().Since(0, 0)
		last := map[string]uint64{}
		for _, ev := range evs {
			if ev.Board == "" || ev.BoardSeq == 0 {
				continue
			}
			if prev, ok := last[ev.Board]; ok && ev.BoardSeq <= prev {
				t.Errorf("pool %d: board %s seq went %d -> %d", pi, ev.Board, prev, ev.BoardSeq)
			}
			last[ev.Board] = ev.BoardSeq
		}
	}
	st := r.Status()
	if st.Cluster == nil {
		t.Fatal("Status.Cluster nil")
	}
	if st.Cluster.Routes == 0 {
		t.Error("cluster routed nothing")
	}
	if crashes := st.Crashes; crashes == 0 {
		t.Error("injected failures produced no crashes")
	}
}
