package cluster

import (
	"context"
	"testing"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/telemetry"
)

// A pool with a health-degraded board must drop in candidate ordering
// for both unpinned traffic classes, while affinity-pinned ordering
// stays put; the degradation must also surface in the router's status
// and health aggregation.
func TestRouterDeprioritizesDegradedPool(t *testing.T) {
	pc := testPoolCfg(1)
	pc.Governor = fleet.GovernorConfig{Interval: -1}
	pc.ECC = fleet.ECCConfig{ScrubInterval: -1}
	pc.Telemetry = telemetry.Config{Interval: -1, HealthWindow: 4}
	r := newTestRouter(t, Config{Pools: 2, Pool: pc, SignalTTL: time.Nanosecond})

	pools := r.Pools()
	samp := func() {
		for _, p := range pools {
			p.SampleTelemetry()
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		samp()
	}

	// Baseline winner for unpinned latency traffic.
	first := r.candidates(classLatency, 0, new(routeScratch))[0]
	victim := first.pool
	var other *fleet.Pool
	for _, p := range pools {
		if p != victim {
			other = p
		}
	}

	// Degrade the baseline winner's board.
	if err := victim.InjectMarginDrift(-1, 12, 500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		samp()
	}
	if victim.DegradedBoards() != 1 {
		t.Fatalf("victim degraded boards = %d, want 1", victim.DegradedBoards())
	}

	// Latency class: the degraded-board penalty (2 per degraded fraction)
	// outweighs full quiescence, so the healthy pool must rank first.
	if got := r.candidates(classLatency, 0, new(routeScratch))[0]; got.pool != other {
		t.Error("latency class: degraded pool still ranks first")
	}
	// Bulk class: degradation inflates the power key proportionally —
	// the ordering must match the documented key, whichever pool wins
	// (a >2x cheaper pool legitimately keeps bulk traffic even degraded).
	bulkKey := func(p *fleet.Pool) float64 {
		return p.OperatingPowerW() * (1 + float64(p.DegradedBoards())/float64(p.Size()))
	}
	wantFirst := victim
	if bulkKey(other) < bulkKey(victim) {
		wantFirst = other
	}
	if got := r.candidates(classBulk, 0, new(routeScratch))[0]; got.pool != wantFirst {
		t.Errorf("bulk class: first = %s, want %s (keys: victim %.3f, other %.3f)",
			got.pool.Name(), wantFirst.Name(), bulkKey(victim), bulkKey(other))
	}
	// Affinity-pinned ordering ignores health: the same key keeps its
	// rendezvous winner regardless of degradation.
	pinnedBefore := r.candidates(classLatency, 42, new(routeScratch))[0]
	if got := r.candidates(classLatency, 42, new(routeScratch))[0]; got != pinnedBefore {
		t.Error("pinned ordering changed across calls")
	}

	// Degradation surfaces in the router's status and health views.
	st := r.Status()
	if st.Cluster == nil {
		t.Fatal("no cluster status block")
	}
	degradedPools := 0
	for _, pr := range st.Cluster.Pools {
		degradedPools += pr.Degraded
	}
	if degradedPools != 1 {
		t.Fatalf("status degraded boards = %d, want 1", degradedPools)
	}
	health := r.Health()
	if len(health) != 2 {
		t.Fatalf("router health boards = %d, want 2", len(health))
	}
	degraded := 0
	for _, h := range health {
		if h.State == telemetry.HealthDegraded {
			degraded++
		}
	}
	if degraded != 1 {
		t.Fatalf("router health degraded = %d, want 1", degraded)
	}

	// Crash postmortems aggregate across pools through the router.
	if err := other.InjectFailures(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Classify(context.Background(), fleet.Request{Seed: 5}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	pms := r.Postmortems(0)
	if len(pms) != 1 {
		t.Fatalf("router postmortems = %d, want 1", len(pms))
	}
	if pms[0].Board == "" {
		t.Fatalf("postmortem board empty: %+v", pms[0])
	}
}
