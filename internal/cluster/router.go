// Package cluster scales the fleet layer once more: where fleet.Pool
// schedules one request across N boards, cluster.Router schedules
// requests across N pools. The paper's energy argument only pays at
// this scale — guardband reclamation on one board trims milliwatts,
// reclamation across racks of pools trims the power bill — and at this
// scale unbounded queues stop being an admission policy. The router
// implements the same fleet.Scheduler contract a single pool does, so
// the HTTP front-end cannot tell one board-set from a sharded cluster,
// and adds what a cluster needs: deterministic rendezvous routing keyed
// by request affinity, per-pool admission control (queue-depth and
// in-flight caps), shed-and-retry-next-pool on saturation, SLO-aware
// dispatch driven by each pool's governor settle state and modeled
// power, and warm-spare pools promoted when aggregate backlog crosses a
// threshold. Routing decisions are journaled (route/shed/spare_activate)
// so traces show which pool served each attempt.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/nn"
	"fpgauv/internal/obs"
)

// Config sizes and parameterizes a router.
type Config struct {
	// Pools is the number of pools active at startup (default 2).
	Pools int
	// Spares is the number of warm-spare pools assembled, characterized
	// and parked at their operating points but excluded from routing
	// until aggregate backlog promotes them (default 0).
	Spares int
	// Pool is the template every pool is built from. Pool.Name is
	// overwritten per pool ("pool0", "pool1", ...). Pool.MaxQueue
	// defaults to 8 when unset: a router over unbounded pools could
	// never observe saturation, which would defeat shed-and-retry.
	Pool fleet.Config
	// MaxInFlight caps jobs executing concurrently on one pool before
	// the router stops offering it work (default 2× boards; negative
	// disables the cap).
	MaxInFlight int
	// SpareDepth is the aggregate backlog per active pool (queued plus
	// in-flight beyond board count) that promotes a warm spare
	// (default: the pool queue bound).
	SpareDepth int
	// SignalTTL bounds how stale the router's cached routing signals
	// (quiescence, power) may be (default 25ms). Depth and in-flight
	// are always read live — they are single atomic loads.
	SignalTTL time.Duration
	// EventCap bounds the router's own journal (default 1024).
	EventCap int
}

// sanitize fills config defaults.
func (c Config) sanitize() Config {
	if c.Pools <= 0 {
		c.Pools = 2
	}
	if c.Spares < 0 {
		c.Spares = 0
	}
	if c.Pool.MaxQueue == 0 {
		c.Pool.MaxQueue = 8
	}
	if c.MaxInFlight == 0 {
		boards := c.Pool.Boards
		if boards <= 0 {
			boards = 3
		}
		c.MaxInFlight = 2 * boards
	}
	if c.SpareDepth <= 0 {
		c.SpareDepth = c.Pool.MaxQueue
	}
	if c.SignalTTL <= 0 {
		c.SignalTTL = 25 * time.Millisecond
	}
	if c.EventCap <= 0 {
		c.EventCap = 1024
	}
	return c
}

// entry is one pool with its routing-side state.
type entry struct {
	pool *fleet.Pool
	name string
	// active is false for an unpromoted warm spare.
	active atomic.Bool
	// routes counts requests dispatched here; sheds counts attempts
	// refused here (router pre-check or the pool's own admission).
	routes atomic.Int64
	sheds  atomic.Int64
	// Cached slow signals (quiescent boards, modeled power, degraded
	// boards), refreshed at most once per SignalTTL. stampNS is the
	// refresh time.
	sigMu     sync.Mutex
	stampNS   atomic.Int64
	quiescent atomic.Int64
	powerBits atomic.Uint64
	degraded  atomic.Int64
}

// signals refreshes and returns the entry's slow routing signals.
func (e *entry) signals(ttl time.Duration) (quiescent int, powerW float64, degraded int) {
	now := obs.NowNS()
	if now-e.stampNS.Load() > int64(ttl) {
		e.sigMu.Lock()
		// Double-check under the lock so one refresher works per window.
		if now-e.stampNS.Load() > int64(ttl) {
			q, _ := e.pool.QuiescentBoards()
			e.quiescent.Store(int64(q))
			e.powerBits.Store(math.Float64bits(e.pool.OperatingPowerW()))
			e.degraded.Store(int64(e.pool.DegradedBoards()))
			e.stampNS.Store(now)
		}
		e.sigMu.Unlock()
	}
	return int(e.quiescent.Load()), math.Float64frombits(e.powerBits.Load()), int(e.degraded.Load())
}

// Router schedules requests across N pools behind the fleet.Scheduler
// contract.
type Router struct {
	cfg     Config
	entries []*entry
	journal *obs.Journal

	closing atomic.Bool
	closed  sync.Once
	// spareMu serializes spare promotion so concurrent saturation bursts
	// promote one spare, not all of them.
	spareMu sync.Mutex

	routes    atomic.Int64
	hops      atomic.Int64
	sheds     atomic.Int64
	spareActs atomic.Int64
	// satErrs interns the router's terminal shed errors so refusing a
	// request when every pool is saturated allocates nothing — under
	// sustained overload the refusal path runs far more often than the
	// dispatch path, and BENCH_7 measured served throughput sagging as
	// offered load (and thus shed-path garbage) rose.
	satErrs fleet.SatErrCache
}

var _ fleet.Scheduler = (*Router)(nil)

// New assembles Pools+Spares pools from the template and starts routing
// across the active ones. Characterization is shared per silicon sample
// (the fleet layer's region cache), so a many-pool cluster brings up
// nearly as fast as one pool.
func New(cfg Config) (*Router, error) {
	cfg = cfg.sanitize()
	r := &Router{cfg: cfg, journal: obs.NewJournal(cfg.EventCap)}
	total := cfg.Pools + cfg.Spares
	for i := 0; i < total; i++ {
		pc := cfg.Pool
		pc.Name = fmt.Sprintf("pool%d", i)
		p, err := fleet.New(pc)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: %s: %w", pc.Name, err)
		}
		e := &entry{pool: p, name: pc.Name}
		e.active.Store(i < cfg.Pools)
		r.entries = append(r.entries, e)
	}
	return r, nil
}

// rendezvousScore ranks pool name against affinity key by
// highest-random-weight hashing, weighted by board count: every router
// ranks (key, pool) identically, so a given affinity key deterministically
// prefers the same pool until that pool saturates or the pool set
// changes — and a membership change only remaps the keys whose winner
// left, never reshuffles the whole space.
func rendezvousScore(key int64, pool string, weight int) float64 {
	h := uint64(key) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(pool); i++ {
		h ^= uint64(pool[i])
		h *= 1099511628211 // FNV-1a prime
	}
	// SplitMix64 finalizer: decorrelate the low bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// Weighted rendezvous: -w / ln(u) with u uniform in (0,1).
	u := (float64(h>>11) + 0.5) / (1 << 53)
	if weight <= 0 {
		weight = 1
	}
	return -float64(weight) / math.Log(u)
}

// trafficClass discriminates the two SLO classes the router routes.
type trafficClass int

const (
	classBulk    trafficClass = iota // eval passes: throughput, cost-first
	classLatency                     // per-image inference: latency-first
)

// ranked is one candidate pool with its ordering keys.
type ranked struct {
	e   *entry
	key float64
	tie float64
}

// routeScratch is the reusable working set of one routing decision
// (candidate list and ranking keys), pooled so the route path — and in
// particular the shed path, which runs hottest exactly when the cluster
// is overloaded — performs no per-request slice allocation. It
// implements sort.Interface over rk so ordering needs no reflection
// swapper or comparison closure either.
type routeScratch struct {
	act []*entry
	rk  []ranked
}

var routeScratches = sync.Pool{New: func() any { return new(routeScratch) }}

func (s *routeScratch) Len() int { return len(s.rk) }
func (s *routeScratch) Less(a, b int) bool {
	if s.rk[a].key != s.rk[b].key {
		return s.rk[a].key < s.rk[b].key
	}
	return s.rk[a].tie < s.rk[b].tie
}
func (s *routeScratch) Swap(a, b int) { s.rk[a], s.rk[b] = s.rk[b], s.rk[a] }

// candidates orders the active pools for one request into s (the
// returned slice is s.act — valid until s is re-used). A pinned
// affinity key gets deterministic rendezvous order — the same key keeps
// landing on the same pool (warm scratch arenas, reproducible fault
// streams) with a stable fallback chain. Unpinned latency-sensitive
// traffic prefers pools whose boards are quiescent (settled governor
// loops never steal mid-request canary passes), then the shortest
// backlog; unpinned bulk traffic prefers the cheapest pool by modeled
// power — the pools settled deepest into the guardband — then backlog.
// Both unpinned classes penalize pools with health-degraded boards
// (margin regression precedes crashes, so a degraded pool is a crash
// risk the router can route around before availability pays for it):
// each degraded board fraction outweighs a fully quiescent pool on the
// latency key and inflates the bulk power key proportionally.
func (r *Router) candidates(class trafficClass, affinity int64, s *routeScratch) []*entry {
	s.act = s.act[:0]
	s.rk = s.rk[:0]
	for _, e := range r.entries {
		if e.active.Load() {
			s.act = append(s.act, e)
		}
	}
	for _, e := range s.act {
		load := float64(e.pool.QueueDepth() + e.pool.InFlight())
		switch {
		case affinity != 0:
			s.rk = append(s.rk, ranked{e, -rendezvousScore(affinity, e.name, e.pool.Size()), 0})
		case class == classLatency:
			q, _, d := e.signals(r.cfg.SignalTTL)
			size := float64(e.pool.Size())
			s.rk = append(s.rk, ranked{e, -float64(q)/size + 2*float64(d)/size, load})
		default:
			_, p, d := e.signals(r.cfg.SignalTTL)
			s.rk = append(s.rk, ranked{e, p * (1 + float64(d)/float64(e.pool.Size())), load})
		}
	}
	sort.Stable(s)
	for i := range s.rk {
		s.act[i] = s.rk[i].e
	}
	return s.act
}

// admit is the router-side pre-check: refuse a pool whose backlog or
// in-flight load already exceeds the caps, without paying a submission.
func (r *Router) admit(e *entry) bool {
	if max := r.cfg.Pool.MaxQueue; max > 0 && e.pool.QueueDepth() >= max {
		return false
	}
	if r.cfg.MaxInFlight > 0 && e.pool.InFlight() >= r.cfg.MaxInFlight {
		return false
	}
	return true
}

// detailSet holds one verb's per-hop journal strings, precomputed at
// init so the route and shed paths append only static strings — no
// fmt.Sprintf on the hot path. Hops at or beyond maxHopDetail collapse
// into the final "+" entry.
type detailSet struct {
	route [maxHopDetail]string
	shed  [maxHopDetail]string
}

const maxHopDetail = 4

func newDetailSet(verb string) *detailSet {
	d := &detailSet{}
	for i := range d.route {
		suffix := fmt.Sprintf("hop %d", i)
		if i == maxHopDetail-1 {
			suffix += "+"
		}
		d.route[i] = verb + " " + suffix
		d.shed[i] = verb + " " + suffix + ": pool saturated"
	}
	return d
}

var (
	classifyDetails = newDetailSet("classify")
	inferDetails    = newDetailSet("infer")
)

func hopIdx(hop int) int {
	if hop >= maxHopDetail {
		return maxHopDetail - 1
	}
	return hop
}

// tryDispatch offers the job to one pool. done reports the attempt is
// final (served or failed terminally, with err the outcome); retry
// carries the pool's RetryAfter hint when it shed the job after winning
// admission. A method rather than a closure so the shed path allocates
// no captures.
func (r *Router) tryDispatch(e *entry, hop int, det *detailSet, dispatch func(*fleet.Pool) error) (done bool, retry time.Duration, err error) {
	if !r.admit(e) {
		e.sheds.Add(1)
		r.journal.Append(obs.Event{Board: e.name, Kind: obs.EvShed, Detail: det.shed[hopIdx(hop)]})
		return false, 0, nil
	}
	e.routes.Add(1)
	r.routes.Add(1)
	if hop > 0 {
		r.hops.Add(1)
	}
	r.journal.Append(obs.Event{Board: e.name, Kind: obs.EvRoute, Detail: det.route[hopIdx(hop)]})
	err = dispatch(e.pool)
	var sat fleet.ErrSaturated
	if errors.As(err, &sat) {
		// Lost the race between the pre-check and the pool's own
		// admission: treat exactly like a failed pre-check.
		e.sheds.Add(1)
		r.journal.Append(obs.Event{Board: e.name, Kind: obs.EvShed, Detail: det.shed[hopIdx(hop)]})
		return false, sat.RetryAfter, nil
	}
	return true, 0, err
}

// route runs the shared dispatch protocol: order the candidates, try
// each in turn (shedding to the next on saturation), promote a warm
// spare if every active pool is saturated, and shed to the caller only
// when no pool anywhere will take the job.
func (r *Router) route(class trafficClass, affinity int64, det *detailSet, dispatch func(*fleet.Pool) error) error {
	if r.closing.Load() {
		return fleet.ErrClosed
	}
	r.maybePromoteSpare()
	minRetry := time.Duration(0)
	noteSat := func(ra time.Duration) {
		if ra > 0 && (minRetry == 0 || ra < minRetry) {
			minRetry = ra
		}
	}
	hop := 0
	s := routeScratches.Get().(*routeScratch)
	served, result := false, error(nil)
	for _, e := range r.candidates(class, affinity, s) {
		done, retry, err := r.tryDispatch(e, hop, det, dispatch)
		noteSat(retry)
		if done {
			served, result = true, err
			break
		}
		hop++
	}
	routeScratches.Put(s)
	if served {
		return result
	}
	// Every active pool refused: promote a spare for this job if one is
	// left, and give the request to it directly.
	if e := r.promoteSpare("all active pools saturated"); e != nil {
		done, _, err := r.tryDispatch(e, hop, det, dispatch)
		if done {
			return err
		}
	}
	r.sheds.Add(1)
	if minRetry == 0 {
		minRetry = 50 * time.Millisecond
	}
	return r.satErrs.Err("cluster", r.QueueDepth(), minRetry)
}

// maybePromoteSpare promotes one warm spare when the aggregate backlog
// across active pools (queued plus in-flight beyond the board count)
// crosses SpareDepth per active pool.
func (r *Router) maybePromoteSpare() {
	agg, active := 0, 0
	for _, e := range r.entries {
		if !e.active.Load() {
			continue
		}
		active++
		over := e.pool.QueueDepth() + e.pool.InFlight() - e.pool.Size()
		if over > 0 {
			agg += over
		}
	}
	if active == 0 || agg < r.cfg.SpareDepth*active {
		return
	}
	r.promoteSpare(fmt.Sprintf("aggregate backlog %d across %d active pools", agg, active))
}

// promoteSpare activates the first unpromoted spare, if any, and
// returns it.
func (r *Router) promoteSpare(why string) *entry {
	r.spareMu.Lock()
	defer r.spareMu.Unlock()
	for _, e := range r.entries {
		if !e.active.Load() {
			e.active.Store(true)
			r.spareActs.Add(1)
			r.journal.Append(obs.Event{Board: e.name, Kind: obs.EvSpareActivate, Detail: why})
			return e
		}
	}
	return nil
}

// Classify dispatches one evaluation-set pass (bulk traffic: routed
// cost-first unless the seed pins an affinity).
func (r *Router) Classify(ctx context.Context, req fleet.Request) (fleet.Result, error) {
	var out fleet.Result
	err := r.route(classBulk, req.Seed, classifyDetails, func(p *fleet.Pool) error {
		res, err := p.Classify(ctx, req)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// Infer dispatches one inference job (latency-sensitive traffic: routed
// to quiescent pools unless the seed pins an affinity).
func (r *Router) Infer(ctx context.Context, req fleet.InferRequest) (fleet.InferResult, error) {
	var out fleet.InferResult
	err := r.route(classLatency, req.Seed, inferDetails, func(p *fleet.Pool) error {
		res, err := p.Infer(ctx, req)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// InputShape returns the CHW geometry inference images must have (every
// pool serves the same deployment).
func (r *Router) InputShape() nn.Shape { return r.entries[0].pool.InputShape() }

// Journal returns the router tier's journal: route, shed and
// spare_activate events. Per-pool board journals remain addressable
// through Pools.
func (r *Router) Journal() *obs.Journal { return r.journal }

// QueueDepth is the aggregate backlog across active pools.
func (r *Router) QueueDepth() int {
	total := 0
	for _, e := range r.entries {
		if e.active.Load() {
			total += e.pool.QueueDepth()
		}
	}
	return total
}

// Pools enumerates every pool — active and spare — in index order.
func (r *Router) Pools() []*fleet.Pool {
	out := make([]*fleet.Pool, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.pool
	}
	return out
}

// Close stops admission and shuts the pools down in parallel.
func (r *Router) Close() {
	r.closed.Do(func() {
		r.closing.Store(true)
		var wg sync.WaitGroup
		for _, e := range r.entries {
			wg.Add(1)
			go func(p *fleet.Pool) {
				defer wg.Done()
				p.Close()
			}(e.pool)
		}
		wg.Wait()
	})
}
