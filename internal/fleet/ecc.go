package fleet

import (
	"fmt"
	"sync/atomic"
	"time"

	"fpgauv/internal/ecc"
	"fpgauv/internal/obs"
)

// ECCConfig parameterizes the fleet's BRAM SECDED protection and frame
// scrubbing — the paper's mitigation path for reduced-voltage BRAM
// operation. Protection and scrubbing are assembled on every pool (the
// counters and the scrubber's golden image cost almost nothing); Enabled
// only controls whether the DPUs decode reads through the codec.
type ECCConfig struct {
	// Enabled starts the pool with SECDED decoding active. Runtime
	// toggling goes through SetECCEnabled or POST /v1/fleet/ecc.
	Enabled bool
	// ScrubInterval is the per-board frame-scrub period (default 250 ms;
	// negative builds the scrubbers but starts no background loops —
	// ScrubNow then drives passes explicitly, the mode tests use).
	ScrubInterval time.Duration
}

// sanitize fills scrub defaults.
func (c ECCConfig) sanitize() ECCConfig {
	if c.ScrubInterval == 0 {
		c.ScrubInterval = 250 * time.Millisecond
	}
	return c
}

// eccState is the pool-level side of the protection subsystem: the
// runtime-tunable scrub interval (nanoseconds, atomic so the loops
// re-read it every lap).
type eccState struct {
	scrubNS atomic.Int64
}

// ECCEnabled reports whether SECDED decoding is active. The per-board
// policies are toggled together, so board 0 speaks for the pool.
func (p *Pool) ECCEnabled() bool {
	return len(p.members) > 0 && p.members[0].prot.Enabled()
}

// SetECCEnabled toggles SECDED decoding on every board. Disabling keeps
// the counters; the executors fall back to the unprotected raw-flip
// path on their next pass.
func (p *Pool) SetECCEnabled(on bool) {
	for _, m := range p.members {
		m.prot.SetEnabled(on)
	}
}

// ScrubInterval returns the present frame-scrub period.
func (p *Pool) ScrubInterval() time.Duration {
	return time.Duration(p.eccSt.scrubNS.Load())
}

// SetScrubInterval re-targets the frame-scrub period at runtime. It
// cannot start loops a negative-interval pool never launched; for those,
// drive ScrubNow explicitly.
func (p *Pool) SetScrubInterval(iv time.Duration) {
	if iv > 0 {
		p.eccSt.scrubNS.Store(int64(iv))
	}
}

// ScrubNow runs one synchronous frame-scrub pass on every board,
// regardless of the background loops — the deterministic stepping mode
// tests and the HTTP endpoint's scrub_now use. It returns the aggregate
// repair report.
func (p *Pool) ScrubNow() ecc.ScrubReport {
	var total ecc.ScrubReport
	for _, m := range p.members {
		rep := p.scrubTick(m)
		total.Scanned += rep.Scanned
		total.Corrected += rep.Corrected
		total.Reloaded += rep.Reloaded
	}
	return total
}

// startScrubbers launches one frame-scrub loop per board when the
// interval is positive.
func (p *Pool) startScrubbers(cfg ECCConfig) {
	p.eccSt.scrubNS.Store(int64(cfg.ScrubInterval))
	if cfg.ScrubInterval <= 0 {
		return
	}
	for _, m := range p.members {
		p.wg.Add(1)
		go p.scrubLoop(m)
	}
}

// scrubLoop is one board's background frame scrubber. The interval is
// re-read every lap so runtime tuning takes effect.
func (p *Pool) scrubLoop(m *member) {
	defer p.wg.Done()
	for {
		iv := time.Duration(p.eccSt.scrubNS.Load())
		if iv <= 0 {
			iv = 250 * time.Millisecond
		}
		t := time.NewTimer(iv)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-t.C:
		}
		p.scrubTick(m)
	}
}

// scrubTick runs one frame-scrub pass on one board, under the member
// lock: the scrubber walks the same weight tensors an in-flight pass
// corrupts in place, so it must be serialized against the executor like
// every other accelerator operation. A hung board is skipped — its
// weight image is about to be re-deployed from scratch anyway.
func (p *Pool) scrubTick(m *member) ecc.ScrubReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.brd.Hung() {
		return ecc.ScrubReport{}
	}
	rep := m.scrub.Scrub(m.prot)
	// Only passes that repaired words are journaled: clean passes at the
	// scrub rate would wrap the bounded ring in minutes and drown the
	// crash/recovery chains it exists to replay. Pass counts live in the
	// uvolt_scrub_* metrics.
	if rep.Corrected+rep.Reloaded > 0 {
		m.event(obs.EvScrub, m.brd.VCCBRAMmV(),
			fmt.Sprintf("scanned=%d corrected=%d reloaded=%d", rep.Scanned, rep.Corrected, rep.Reloaded))
	}
	return rep
}

// BoardECCStatus is one board's protection and scrubbing snapshot.
type BoardECCStatus struct {
	// Enabled mirrors the board's SECDED decode switch.
	Enabled bool `json:"enabled"`
	// Corrected/Detected/Silent are the lifetime SECDED outcome
	// counters across every pass on this board.
	ecc.Counts
	// ScrubPasses/ScrubScanned/ScrubCorrected/ScrubReloaded are the
	// frame scrubber's lifetime counters (words reloaded came from the
	// DDR golden copy after an uncorrectable syndrome).
	ScrubPasses    int64 `json:"scrub_passes"`
	ScrubScanned   int64 `json:"scrub_scanned"`
	ScrubCorrected int64 `json:"scrub_corrected"`
	ScrubReloaded  int64 `json:"scrub_reloaded"`
	// Words is the protected image size in 64-bit words.
	Words int64 `json:"words"`
}

// ECCStatus is the pool-wide protection snapshot.
type ECCStatus struct {
	Enabled         bool    `json:"enabled"`
	ScrubIntervalMS float64 `json:"scrub_interval_ms"`
	// Aggregates across all boards.
	ecc.Counts
	ScrubPasses    int64 `json:"scrub_passes"`
	ScrubCorrected int64 `json:"scrub_corrected"`
	ScrubReloaded  int64 `json:"scrub_reloaded"`
}

// boardECCStatus snapshots one member's protection state.
func (m *member) boardECCStatus() *BoardECCStatus {
	passes, scanned, corrected, reloaded := m.scrub.Stats()
	return &BoardECCStatus{
		Enabled:        m.prot.Enabled(),
		Counts:         m.prot.Counts(),
		ScrubPasses:    passes,
		ScrubScanned:   scanned,
		ScrubCorrected: corrected,
		ScrubReloaded:  reloaded,
		Words:          m.scrub.Words(),
	}
}

// eccSummary aggregates per-board snapshots into the pool-wide view.
func (p *Pool) eccSummary(boards []BoardStatus) *ECCStatus {
	st := &ECCStatus{
		Enabled:         p.ECCEnabled(),
		ScrubIntervalMS: float64(p.ScrubInterval().Microseconds()) / 1000,
	}
	for _, b := range boards {
		if b.ECC == nil {
			continue
		}
		st.Counts.Add(b.ECC.Counts)
		st.ScrubPasses += b.ECC.ScrubPasses
		st.ScrubCorrected += b.ECC.ScrubCorrected
		st.ScrubReloaded += b.ECC.ScrubReloaded
	}
	return st
}
