package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/obs"
	"fpgauv/internal/telemetry"
)

// telemetryTestConfig disables every background loop so tests drive
// sampling deterministically.
func telemetryTestConfig(boards int) Config {
	cfg := testConfig(boards)
	cfg.MonitorInterval = -1
	cfg.Governor = GovernorConfig{Interval: -1}
	cfg.ECC = ECCConfig{ScrubInterval: -1}
	cfg.Telemetry = telemetry.Config{Interval: -1, HealthWindow: 4}
	return cfg
}

// SampleTelemetry is the forever-loop hot path: it must not allocate in
// steady state.
func TestSampleTelemetryZeroAlloc(t *testing.T) {
	p := newTestPool(t, telemetryTestConfig(2))
	// Prime: first samples establish counter baselines.
	p.SampleTelemetry()
	p.SampleTelemetry()
	allocs := testing.AllocsPerRun(100, p.SampleTelemetry)
	if allocs != 0 {
		t.Fatalf("SampleTelemetry allocates %.1f per sample, want 0", allocs)
	}
}

// The recorder's histories are reachable through the pool: rails land
// in vccint_mv, the pool pseudo-board aggregates, and rollups populate.
func TestPoolTelemetrySeries(t *testing.T) {
	p := newTestPool(t, telemetryTestConfig(2))
	for i := 0; i < 5; i++ {
		p.SampleTelemetry()
		time.Sleep(time.Millisecond)
	}
	rec := p.Telemetry()
	boards := rec.Boards()
	if len(boards) != 3 { // 2 boards + pool aggregate
		t.Fatalf("recorded boards = %v, want 2 + pool", boards)
	}
	if boards[2] != p.Name() {
		t.Fatalf("pseudo-board = %q, want pool name %q", boards[2], p.Name())
	}
	st := p.Status()
	pts := rec.Points(boards[0], telemetry.SeriesVCCINT, telemetry.ResRaw, 0)
	if len(pts) != 5 {
		t.Fatalf("raw vccint points = %d, want 5", len(pts))
	}
	if !nearMV(pts[4].Last, st.Boards[0].OperatingMV) {
		t.Fatalf("recorded vccint %.1f, board operating at %.1f", pts[4].Last, st.Boards[0].OperatingMV)
	}
	// The open 10s rollup bucket already digests the run.
	ru := rec.Points(boards[0], telemetry.SeriesVCCINT, telemetry.Res10s, 0)
	if len(ru) == 0 || ru[len(ru)-1].Count == 0 {
		t.Fatalf("10s rollup = %+v, want a populated open bucket", ru)
	}
	// Margin series: positive (operating above estimated Vmin).
	mg := rec.Points(boards[0], telemetry.SeriesVminMarginMV, telemetry.ResRaw, 1)
	if len(mg) != 1 || mg[0].Last <= 0 {
		t.Fatalf("margin series = %+v, want positive margin", mg)
	}
}

// Injected Vmin drift plus a corrected-ECC ramp must flip the board to
// degraded — the margin-regression regression test. Serving must be
// unaffected (the injection never moves a rail).
func TestInjectedMarginDriftFlipsDegraded(t *testing.T) {
	p := newTestPool(t, telemetryTestConfig(2))

	// Baseline: healthy history, everything grades ok.
	for i := 0; i < 6; i++ {
		p.SampleTelemetry()
		time.Sleep(time.Millisecond)
	}
	for _, h := range p.BoardHealth() {
		if h.State != telemetry.HealthOK {
			t.Fatalf("%s baseline state = %s, want ok (%+v)", h.Board, h.State, h)
		}
	}
	if p.DegradedBoards() != 0 {
		t.Fatal("degraded count nonzero at baseline")
	}
	railBefore := p.Status().Boards[0].VCCINTmV

	// Margin regression on board 0: +12 mV Vmin drift (past the 10 mV
	// degraded threshold) and a 500/s corrected-ECC ramp.
	if err := p.InjectMarginDrift(0, 12, 500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.SampleTelemetry()
		time.Sleep(2 * time.Millisecond)
	}
	health := p.BoardHealth()
	h0 := health[0]
	if h0.State != telemetry.HealthDegraded {
		t.Fatalf("board 0 state = %s, want degraded (%+v)", h0.State, h0)
	}
	if h0.VminDriftMV != 12 {
		t.Fatalf("drift = %.1f, want 12", h0.VminDriftMV)
	}
	if h0.CorrectedRate < 100 {
		t.Fatalf("corrected rate = %.1f, want >= degraded threshold 100", h0.CorrectedRate)
	}
	if len(h0.Reasons) == 0 || h0.Score >= 60 {
		t.Fatalf("degraded verdict missing reasons or score too high: %+v", h0)
	}
	if health[1].State != telemetry.HealthOK {
		t.Fatalf("board 1 state = %s, want ok (injection must not leak)", health[1].State)
	}
	if p.DegradedBoards() != 1 {
		t.Fatalf("degraded count = %d, want 1", p.DegradedBoards())
	}

	// The degraded transition was journaled exactly once.
	evs, _, _ := p.Journal().Since(0, 0)
	degradedEvents := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvHealthDegraded {
			degradedEvents++
		}
	}
	if degradedEvents != 1 {
		t.Fatalf("health_degraded events = %d, want 1 rising edge", degradedEvents)
	}

	// The injection is observational: rails untouched, serving works.
	if railAfter := p.Status().Boards[0].VCCINTmV; !nearMV(railAfter, railBefore) {
		t.Fatalf("rail moved %.1f -> %.1f; injection must not touch rails", railBefore, railAfter)
	}
	if _, err := p.Classify(context.Background(), Request{Seed: 1}); err != nil {
		t.Fatalf("classify on degraded board: %v", err)
	}
	st := p.Status()
	if st.Boards[0].Health != telemetry.HealthDegraded {
		t.Fatalf("status health = %q, want degraded surfaced in BoardStatus", st.Boards[0].Health)
	}

	// Disarm: drift clears, health recovers (corrected-rate history
	// drains out of the window after enough clean samples).
	if err := p.InjectMarginDrift(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p.SampleTelemetry()
		time.Sleep(time.Millisecond)
	}
	if h := p.BoardHealth()[0]; h.State == telemetry.HealthDegraded {
		t.Fatalf("board still degraded after disarm: %+v", h)
	}
}

// An injected crash must leave a postmortem holding the pre-crash
// telemetry window, the journal tail including the crash event, and the
// trace id that was on the board.
func TestCrashPostmortem(t *testing.T) {
	cfg := telemetryTestConfig(1)
	p := newTestPool(t, cfg)

	// Build telemetry history for the window snapshot.
	for i := 0; i < 8; i++ {
		p.SampleTelemetry()
		time.Sleep(time.Millisecond)
	}

	if err := p.InjectFailures(0, 2); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(8)
	tracer.SetEnabled(true)
	tr := tracer.Start("")
	if _, err := p.Classify(context.Background(), Request{Seed: 42, Span: tr.Root()}); err != nil {
		t.Fatalf("classify: %v", err)
	}

	pms := p.Postmortems(0)
	if len(pms) == 0 {
		t.Fatal("no postmortem retained after injected crash")
	}
	pm := pms[0]
	if pm.Board == "" || pm.ID == 0 || pm.AtNS == 0 {
		t.Fatalf("postmortem incomplete: %+v", pm)
	}
	if pm.TraceID != tr.ID() {
		t.Fatalf("postmortem trace = %q, want the active trace %q", pm.TraceID, tr.ID())
	}
	if pm.Crashes < 1 {
		t.Fatalf("crash ordinal = %d, want >= 1", pm.Crashes)
	}
	// Journal tail must include the crash itself (journaled before the
	// flight-recorder hook runs).
	sawCrash := false
	for _, ev := range pm.Events {
		if ev.Kind == obs.EvCrash && ev.Board == pm.Board {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatalf("journal tail (%d events) missing the crash event", len(pm.Events))
	}
	// Pre-crash telemetry window: every series, with the history we
	// built.
	if len(pm.Window) != len(telemetry.SeriesNames) {
		t.Fatalf("window series = %d, want %d", len(pm.Window), len(telemetry.SeriesNames))
	}
	if pts := pm.Window[telemetry.SeriesVCCINT]; len(pts) < 8 || pts[len(pts)-1].Last <= 0 {
		t.Fatalf("vccint window = %d points, want the 8 pre-crash samples", len(pts))
	}
	if p.Telemetry().Flight().Total() != int64(len(pms)) {
		t.Fatalf("flight total = %d, retained = %d", p.Telemetry().Flight().Total(), len(pms))
	}
	// The postmortem was journaled too.
	evs, _, _ := p.Journal().Since(0, 0)
	sawPM := false
	for _, ev := range evs {
		if ev.Kind == obs.EvPostmortem {
			sawPM = true
		}
	}
	if !sawPM {
		t.Fatal("postmortem event not journaled")
	}
}

// Untraced crashes leave postmortems with an empty trace id.
func TestCrashPostmortemUntraced(t *testing.T) {
	p := newTestPool(t, telemetryTestConfig(1))
	if err := p.InjectFailures(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), Request{Seed: 7}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	pms := p.Postmortems(1)
	if len(pms) != 1 {
		t.Fatalf("postmortems = %d, want 1", len(pms))
	}
	if pms[0].TraceID != "" {
		t.Fatalf("untraced postmortem trace = %q, want empty", pms[0].TraceID)
	}
}

// Concurrent telemetry sampling, governor rail moves, serving traffic
// and crash recovery must be data-race-free (exercised under -race in
// CI). The background sampler runs at a tight interval throughout.
func TestTelemetryConcurrentWithGovernorAndCrashes(t *testing.T) {
	cfg := testConfig(2)
	cfg.MonitorInterval = -1
	cfg.ECC = ECCConfig{ScrubInterval: -1}
	cfg.Governor = GovernorConfig{Interval: -1} // ticked manually below
	cfg.Telemetry = telemetry.Config{Interval: 200 * time.Microsecond, HealthWindow: 4}
	p := newTestPool(t, cfg)
	p.SetGovernorEnabled(true)

	var chaos, workers sync.WaitGroup
	stop := make(chan struct{})
	// Governor rail moves.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.GovernorTick()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	// Margin-drift injection armed and disarmed concurrently.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				_ = p.InjectMarginDrift(-1, float64(i%15), float64(100*(i%3)))
				p.BoardHealth()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Readers over histories and postmortems.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rec := p.Telemetry()
		boards := rec.Boards()
		for {
			select {
			case <-stop:
				return
			default:
				for _, b := range boards {
					rec.Points(b, telemetry.SeriesVCCINT, telemetry.Res10s, 8)
				}
				p.Postmortems(4)
				p.LatencyDigest().Snapshot()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	// Serving traffic with injected crashes.
	for w := 0; w < 2; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 6; i++ {
				if i%3 == 0 {
					_ = p.InjectFailures(i%2, 2)
				}
				if _, err := p.Classify(context.Background(), Request{Seed: int64(w*100 + i)}); err != nil {
					t.Errorf("classify: %v", err)
					return
				}
			}
		}(w)
	}
	// Let the two serving workers finish, then stop the chaos loops.
	done := make(chan struct{})
	go func() { workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent telemetry test wedged")
	}
	close(stop)
	chaos.Wait()
	// Final consistency: sampling kept working through the churn.
	if pts := p.Telemetry().Points(p.Name(), telemetry.SeriesThroughput, telemetry.ResRaw, 0); len(pts) == 0 {
		t.Fatal("pool aggregate series empty after concurrent run")
	}
}
