package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/tensor"
)

// saturateTestPool builds a one-board pool with a single backlog slot,
// occupies the lone worker with a long cancelable inference job, and
// fills the backlog slot behind it, leaving the pool in a steady
// saturated state: every further submission must shed. The returned
// release func cancels the occupier and tears the pool down.
func saturateTestPool(tb testing.TB) (*Pool, func()) {
	tb.Helper()
	cfg := testConfig(1)
	cfg.MaxQueue = 1
	cfg.MonitorInterval = -1
	// One image per accelerator pass: a many-image infer job holds the
	// single worker busy for its full image count.
	cfg.MicroBatch = 1
	p, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}

	waitFor := func(what string, cond func() bool) {
		tb.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				p.Close()
				tb.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// The occupier re-uses one tiny image many times over: 1<<15 single
	// image micro-batches outlast any benchmark loop, and the worker
	// abandons the job at the next micro-batch boundary once the context
	// is canceled.
	shape := p.InputShape()
	img := tensor.New(shape.C, shape.H, shape.W)
	imgs := make([]*tensor.Tensor, 1<<15)
	for i := range imgs {
		imgs[i] = img
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Error expected on cancel (context.Canceled); ignored.
		_, _ = p.Infer(ctx, InferRequest{Images: imgs, Seed: 3})
	}()
	waitFor("worker busy", func() bool { return p.InFlight() == 1 })

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Classify(ctx, Request{Seed: 5})
	}()
	waitFor("backlog full", func() bool { return p.QueueDepth() == 1 })

	return p, func() {
		cancel()
		wg.Wait()
		p.Close()
	}
}

// BenchmarkShedPath measures the refusal fast path end to end: a
// saturated pool refusing a Classify submission. This is the path a
// scheduler runs hottest exactly when it is overloaded — BENCH_7 showed
// served throughput sagging as offered load rose past capacity, driven
// by shed-path garbage competing with real work for the allocator. The
// B/op column pins the path's allocation cost: with the interned error
// cache and the pre-allocation quickShed check it must stay at (or
// within noise of) zero.
func BenchmarkShedPath(b *testing.B) {
	p, release := saturateTestPool(b)
	defer release()
	b.ReportAllocs()
	b.ResetTimer()
	var err error
	for i := 0; i < b.N; i++ {
		_, err = p.Classify(context.Background(), Request{Seed: 9})
		if err == nil {
			b.Fatal("saturated pool served a request")
		}
	}
	b.StopTimer()
	var sat ErrSaturated
	if !errors.As(err, &sat) {
		b.Fatalf("err = %v, want ErrSaturated", err)
	}
}

// TestShedErrAllocFree pins the allocation-free refusal contract at its
// deterministic core: once a (depth, retry-bucket) cell is warm, the
// pool's shed-error construction performs zero heap allocations, and a
// saturated pool keeps serving the identical interned error value.
func TestShedErrAllocFree(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxQueue = 1
	cfg.MonitorInterval = -1
	p := newTestPool(t, cfg)

	warm := p.saturatedErr(1)
	var sat ErrSaturated
	if !errors.As(warm, &sat) {
		t.Fatalf("saturatedErr returned %T", warm)
	}
	if sat.RetryAfter <= 0 || sat.Scheduler == "" {
		t.Fatalf("hint not populated: %+v", sat)
	}
	if again := p.saturatedErr(1); again != warm {
		t.Errorf("interned error not reused: %v vs %v", again, warm)
	}
	// AllocsPerRun measures the whole process; the pool is idle here
	// (workers parked on the queue, monitor disabled) so the count is
	// deterministic.
	if allocs := testing.AllocsPerRun(200, func() {
		_ = p.saturatedErr(1)
	}); allocs != 0 {
		t.Errorf("saturatedErr allocates %.1f objects/op, want 0", allocs)
	}
	// The advisory pre-check's admit path (backlog below bound) must be
	// free too — it runs on every single admitted request.
	if allocs := testing.AllocsPerRun(200, func() {
		if err := p.quickShed(); err != nil {
			t.Errorf("idle pool shed: %v", err)
		}
	}); allocs != 0 {
		t.Errorf("quickShed allocates %.1f objects/op, want 0", allocs)
	}
}

// TestShedErrDepthAndBucketClamps pins the intern cache's quantization:
// depths clamp to the cap, retry hints round up onto the bucket ladder,
// and distinct cells yield distinct errors.
func TestShedErrDepthAndBucketClamps(t *testing.T) {
	var c SatErrCache
	e := c.Err("p", 10_000, 3*time.Second)
	var sat ErrSaturated
	if !errors.As(e, &sat) {
		t.Fatalf("Err returned %T", e)
	}
	if sat.Depth != 64 {
		t.Errorf("Depth = %d, want clamp to 64", sat.Depth)
	}
	if sat.RetryAfter != 5*time.Second {
		t.Errorf("RetryAfter = %v, want round-up to 5s", sat.RetryAfter)
	}
	if neg := c.Err("p", -3, 0); !errors.As(neg, &sat) || sat.Depth != 0 {
		t.Errorf("negative depth: %+v", sat)
	}
	a := c.Err("p", 2, 30*time.Millisecond)
	b := c.Err("p", 2, 40*time.Millisecond)
	if a != b {
		t.Errorf("same bucket produced distinct errors: %v vs %v", a, b)
	}
	if d := c.Err("p", 3, 30*time.Millisecond); d == a {
		t.Errorf("distinct depths interned identically: %v", d)
	}
}
