package fleet

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpgauv/internal/tensor"
)

// inferImages builds n valid inference inputs for the pool.
func inferImages(t *testing.T, p *Pool, n int, seed int64) []*tensor.Tensor {
	t.Helper()
	shape := p.InputShape()
	ds := p.members[0].bench.MakeDataset(n, seed)
	if got := ds.Inputs[0].Size(); got != shape.C*shape.H*shape.W {
		t.Fatalf("dataset geometry %d != input shape", got)
	}
	return ds.Inputs
}

// An inference job returns one well-formed output per image: predictions
// in class range and probabilities that sum to one.
func TestPoolInferPerImageOutputs(t *testing.T) {
	p := newTestPool(t, testConfig(1))
	imgs := inferImages(t, p, 21, 7)
	res, err := p.Infer(context.Background(), InferRequest{Images: imgs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != len(imgs) {
		t.Fatalf("outputs = %d, want %d", len(res.Outputs), len(imgs))
	}
	classes := p.members[0].bench.Classes
	for i, out := range res.Outputs {
		if out.Pred < 0 || out.Pred >= classes {
			t.Errorf("image %d: pred %d outside [0,%d)", i, out.Pred, classes)
		}
		var sum float64
		for _, v := range out.Probs {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("image %d: probs sum %.4f, want ~1", i, sum)
		}
	}
	// 21 images at the default micro-batch of 16 take two passes.
	if res.MicroBatches != 2 {
		t.Errorf("micro-batches = %d, want 2", res.MicroBatches)
	}
	if res.MACFaults != 0 || res.BRAMFaults != 0 {
		t.Errorf("faults inside the guardband: MAC=%d BRAM=%d", res.MACFaults, res.BRAMFaults)
	}

	st := p.Status()
	if st.InferRequests != 1 || st.InferServed != 1 {
		t.Errorf("infer counters = %d/%d, want 1/1", st.InferRequests, st.InferServed)
	}
	if st.InferImages != int64(len(imgs)) {
		t.Errorf("infer images = %d, want %d", st.InferImages, len(imgs))
	}
	if st.InferMicroBatches != 2 {
		t.Errorf("infer micro-batches = %d, want 2", st.InferMicroBatches)
	}
	if st.EvalRequests != 0 || st.EvalServed != 0 {
		t.Errorf("eval counters = %d/%d, want 0/0", st.EvalRequests, st.EvalServed)
	}
}

// Inference requests validate their payload before touching the queue.
func TestPoolInferValidation(t *testing.T) {
	p := newTestPool(t, testConfig(1))
	if _, err := p.Infer(context.Background(), InferRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	bad := tensor.New(2, 2, 2)
	if _, err := p.Infer(context.Background(), InferRequest{Images: []*tensor.Tensor{bad}}); err == nil {
		t.Error("mis-shaped image accepted")
	}
	st := p.Status()
	if st.Requests != 0 {
		t.Errorf("requests = %d after rejected payloads, want 0", st.Requests)
	}
}

// A pinned seed reproduces the job's per-image fault streams exactly, so
// two identical jobs at a faulty operating point return identical
// outputs, and a different seed diverges. Also pins determinism of the
// micro-batched execution itself.
func TestPoolInferPinnedSeedDeterministic(t *testing.T) {
	cfg := testConfig(1)
	cfg.MonitorInterval = -1
	p := newTestPool(t, cfg)
	// Mid-critical-region: MAC faults live on every micro-batch.
	if err := p.SetOperatingMV(0, 550); err != nil {
		t.Fatal(err)
	}
	imgs := inferImages(t, p, 20, 3)

	run := func(seed int64) InferResult {
		t.Helper()
		res, err := p.Infer(context.Background(), InferRequest{Images: imgs, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(41), run(41), run(42)
	if a.MACFaults == 0 {
		t.Fatal("no MAC faults at 550 mV; the determinism check is vacuous")
	}
	for i := range a.Outputs {
		if a.Outputs[i].Pred != b.Outputs[i].Pred {
			t.Fatalf("image %d: pinned seed diverged: %d != %d", i, a.Outputs[i].Pred, b.Outputs[i].Pred)
		}
		for j := range a.Outputs[i].Probs {
			if a.Outputs[i].Probs[j] != b.Outputs[i].Probs[j] {
				t.Fatalf("image %d: pinned-seed probs diverge at %d", i, j)
			}
		}
	}
	if a.MACFaults != b.MACFaults {
		t.Fatalf("pinned seed fault counts diverge: %d != %d", a.MACFaults, b.MACFaults)
	}
	diverged := a.MACFaults != c.MACFaults
	for i := range a.Outputs {
		if a.Outputs[i].Pred != c.Outputs[i].Pred {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical faulty passes")
	}
}

// Crash retry at micro-batch granularity: inference traffic over boards
// that are repeatedly driven below Vcrash must complete every image of
// every job, with the pool healing underneath.
func TestPoolInferCrashRetryNoLostImages(t *testing.T) {
	cfg := testConfig(3)
	cfg.MonitorInterval = -1 // recovery must come from the serving path
	p := newTestPool(t, cfg)
	if err := p.SetVCCINTmV(-1, 500); err != nil {
		t.Fatal(err)
	}

	const jobs = 24
	const perJob = 20 // two micro-batches per job
	var wg sync.WaitGroup
	var images atomic.Int64
	for i := 0; i < jobs; i++ {
		imgs := inferImages(t, p, perJob, int64(i+1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Infer(context.Background(), InferRequest{Images: imgs})
			if err != nil {
				t.Errorf("infer: %v", err)
				return
			}
			if len(res.Outputs) != perJob {
				t.Errorf("outputs = %d, want %d", len(res.Outputs), perJob)
				return
			}
			images.Add(int64(len(res.Outputs)))
		}()
	}
	wg.Wait()

	st := p.Status()
	if got := images.Load(); got != jobs*perJob {
		t.Fatalf("classified %d images, want %d", got, jobs*perJob)
	}
	if st.InferServed != jobs {
		t.Errorf("infer served = %d, want %d", st.InferServed, jobs)
	}
	if st.Crashes < 1 {
		t.Errorf("crashes = %d, want >= 1 (the induced crash was never detected)", st.Crashes)
	}
	if st.InferMicroBatches < jobs*2 {
		t.Errorf("micro-batches = %d, want >= %d", st.InferMicroBatches, jobs*2)
	}
	for _, b := range st.Boards {
		if !nearMV(b.VCCINTmV, b.OperatingMV) {
			t.Errorf("%s: VCCINT %.1f mV not restored to operating point %.0f mV",
				b.Board, b.VCCINTmV, b.OperatingMV)
		}
	}
}

// A caller that cancels mid-job must stop costing accelerator passes at
// the next micro-batch boundary: the worker abandons the remaining
// micro-batches and counts the job as canceled, never requeued.
func TestPoolInferCanceledMidJobStopsBurningPasses(t *testing.T) {
	cfg := testConfig(1)
	cfg.MicroBatch = 1 // many micro-batch boundaries to notice the cancel at
	cfg.MonitorInterval = -1
	p := newTestPool(t, cfg)

	const perJob = 64
	imgs := inferImages(t, p, perJob, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Infer(ctx, InferRequest{Images: imgs})
		done <- err
	}()
	// Let the worker pick the job up and complete a few micro-batches,
	// then walk away.
	deadline := time.Now().Add(5 * time.Second)
	for p.Status().InferMicroBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for p.Status().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never noticed the canceled job")
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Status()
	if st.InferServed != 0 {
		t.Errorf("infer served = %d, want 0", st.InferServed)
	}
	if st.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (abandoned, not failed)", st.Requeues)
	}
	if st.InferMicroBatches >= perJob {
		t.Errorf("worker ran all %d micro-batches for a canceled caller", st.InferMicroBatches)
	}
}

// Mixed eval and inference traffic share the queue and the boards; the
// split counters partition the totals. Run with -race this also guards
// the batched executor's lane fan-out under concurrent serving.
func TestPoolMixedTrafficCounters(t *testing.T) {
	p := newTestPool(t, testConfig(2))
	const evals, infers = 6, 9
	var wg sync.WaitGroup
	for i := 0; i < evals; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Classify(context.Background(), Request{}); err != nil {
				t.Errorf("classify: %v", err)
			}
		}()
	}
	for i := 0; i < infers; i++ {
		imgs := inferImages(t, p, 5, int64(i+50))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Infer(context.Background(), InferRequest{Images: imgs}); err != nil {
				t.Errorf("infer: %v", err)
			}
		}()
	}
	wg.Wait()

	st := p.Status()
	if st.Served != evals+infers {
		t.Errorf("served = %d, want %d", st.Served, evals+infers)
	}
	if st.EvalServed != evals || st.InferServed != infers {
		t.Errorf("split = %d eval / %d infer, want %d/%d",
			st.EvalServed, st.InferServed, evals, infers)
	}
	if st.InferImages != infers*5 {
		t.Errorf("infer images = %d, want %d", st.InferImages, infers*5)
	}
}
