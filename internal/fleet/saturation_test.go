package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/tensor"
)

// A pool with MaxQueue set must shed with a typed ErrSaturated once the
// backlog bound is hit, instead of queuing without limit: the saturated
// submissions return immediately (not after a queue drain), the error
// carries a positive RetryAfter drain estimate, and Status counts the
// sheds. Admitted work still completes.
func TestSaturatedPoolReturnsErrSaturated(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxQueue = 1
	cfg.MonitorInterval = -1
	// One image per accelerator pass: a many-image infer job holds the
	// single worker busy long enough to fill the backlog behind it.
	cfg.MicroBatch = 1
	p := newTestPool(t, cfg)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Occupy the only worker with a long job (64 single-image passes).
	shape := p.InputShape()
	imgs := make([]*tensor.Tensor, 64)
	for i := range imgs {
		imgs[i] = tensor.New(shape.C, shape.H, shape.W)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Infer(context.Background(), InferRequest{Images: imgs, Seed: 3}); err != nil {
			t.Errorf("long job: %v", err)
		}
	}()
	waitFor("worker busy", func() bool { return p.InFlight() == 1 })

	// Fill the single backlog slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Classify(context.Background(), Request{Seed: 5}); err != nil {
			t.Errorf("queued job: %v", err)
		}
	}()
	waitFor("backlog full", func() bool { return p.QueueDepth() == 1 })

	// Worker busy, queue full: the next submission must shed, now.
	_, err := p.Classify(context.Background(), Request{Seed: 9})
	var sat ErrSaturated
	if !errors.As(err, &sat) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if sat.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", sat.RetryAfter)
	}
	if sat.Scheduler == "" {
		t.Errorf("ErrSaturated.Scheduler empty")
	}
	if sat.Depth != 1 {
		t.Errorf("Depth = %d, want 1", sat.Depth)
	}
	st := p.Status()
	if st.Shed != 1 {
		t.Errorf("Status.Shed = %d, want 1", st.Shed)
	}
	if st.MaxQueue != 1 {
		t.Errorf("Status.MaxQueue = %d, want 1", st.MaxQueue)
	}
	// The shed request was never admitted.
	if st.EvalRequests != 1 {
		t.Errorf("EvalRequests = %d, want 1 (sheds must not count as admissions)", st.EvalRequests)
	}
	wg.Wait()
}

// MaxQueue = 0 keeps the historical unbounded admission: no submission
// ever sheds regardless of backlog.
func TestUnboundedPoolNeverSheds(t *testing.T) {
	cfg := testConfig(1)
	cfg.MonitorInterval = -1
	p := newTestPool(t, cfg)

	const flood = 12
	var wg sync.WaitGroup
	errs := make(chan error, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := p.Classify(context.Background(), Request{Seed: seed})
			errs <- err
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("unbounded pool returned %v", err)
		}
	}
	if st := p.Status(); st.Shed != 0 {
		t.Errorf("Status.Shed = %d, want 0", st.Shed)
	}
}

// A requeue after a board failure must never be refused by the bound:
// the no-lost-work guarantee outranks admission control. One board,
// MaxQueue 1, a job that fails mid-flight via injected crashes while
// the queue is full — the requeued job must still complete or fail by
// attempts, never vanish.
func TestRequeueBypassesQueueBound(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxQueue = 1
	cfg.MonitorInterval = -1
	cfg.MaxAttempts = 3
	p := newTestPool(t, cfg)

	// Two armed failures per board: the first visit fails its initial
	// try AND its local post-crash retry, forcing a genuine requeue
	// (possibly onto a full queue).
	if err := p.InjectFailures(-1, 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := p.Classify(ctx, Request{Seed: 7})
	if err != nil {
		t.Fatalf("requeued job lost: %v", err)
	}
	if res.Attempts < 1 {
		t.Errorf("attempts = %d", res.Attempts)
	}
}
