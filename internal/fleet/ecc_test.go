package fleet

import (
	"context"
	"testing"
	"time"

	"fpgauv/internal/silicon"
)

// eccTestConfig is the deterministic stepping setup for the VCCBRAM
// governor tests: no background loops anywhere (governor ticks and scrub
// passes are driven explicitly), a canary sized so near-onset fault
// statistics are sharp, and the default 5 mV BRAM step.
func eccTestConfig(boards int, eccOn bool) Config {
	cfg := testConfig(boards)
	cfg.MonitorInterval = -1
	cfg.ECC = ECCConfig{Enabled: eccOn, ScrubInterval: -1}
	cfg.Governor = GovernorConfig{
		Interval:        -1,
		StepMV:          2,
		MarginMV:        4,
		ProbeImages:     16,
		BRAM:            true,
		BRAMStepMV:      5,
		BRAMMarginMV:    5,
		CorrectedBudget: 64,
	}
	return cfg
}

// The acceptance scenario of the ECC subsystem: with SECDED enabled the
// governed fleet settles at a strictly lower VCCBRAM than with it
// disabled — the corrected-error rate is a leading indicator the
// unprotected loop does not have — at equal Top-1 accuracy, because
// every event the protected loop tolerated was corrected before the
// consumer saw it.
func TestECCGovernorSettlesDeeperAtEqualAccuracy(t *testing.T) {
	off := newTestPool(t, eccTestConfig(1, false))
	on := newTestPool(t, eccTestConfig(1, true))
	if err := off.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}
	if err := on.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}

	const ticks = 220
	settleMember(off, 0, ticks)
	settleMember(on, 0, ticks)

	offB := off.Status().Boards[0]
	onB := on.Status().Boards[0]
	if !offB.Governor.BRAM.Settled || !onB.Governor.BRAM.Settled {
		t.Fatalf("BRAM loops did not settle in %d ticks: off=%+v on=%+v",
			ticks, offB.Governor.BRAM, onB.Governor.BRAM)
	}
	if onB.OperatingBRAMMV >= offB.OperatingBRAMMV {
		t.Fatalf("ECC-on settled at %.0f mV VCCBRAM, want strictly below ECC-off %.0f mV",
			onB.OperatingBRAMMV, offB.OperatingBRAMMV)
	}
	// Both loops must have undercut the unprotected onset region start.
	onset := silicon.DefaultParams().BRAMVminMV
	if offB.OperatingBRAMMV >= onset {
		t.Errorf("ECC-off never descended below the %.0f mV onset: %.0f mV", onset, offB.OperatingBRAMMV)
	}
	// The protected loop's probes tolerated corrected words (the leading
	// indicator); the unprotected loop never sees any.
	if onB.Governor.BRAM.CanaryCorrected == 0 {
		t.Error("ECC-on loop recorded no corrected canary words")
	}
	if offB.Governor.BRAM.CanaryCorrected != 0 {
		t.Errorf("ECC-off loop recorded %d corrected words", offB.Governor.BRAM.CanaryCorrected)
	}
	if onB.ECC == nil || onB.ECC.Corrected == 0 {
		t.Fatalf("ECC-on board counters empty: %+v", onB.ECC)
	}

	// Equal Top-1 accuracy at the settled points, under pinned fault
	// streams: deeper VCCBRAM costs nothing because everything the
	// protected fleet absorbed was corrected.
	const seed = 41
	resOff, err := off.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := on.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if resOn.AccuracyPct != resOff.AccuracyPct {
		t.Fatalf("accuracy at settled points: ECC-on %.2f%% vs ECC-off %.2f%%",
			resOn.AccuracyPct, resOff.AccuracyPct)
	}
	if resOn.ECC.Silent != 0 || resOn.ECC.Detected != 0 {
		t.Errorf("harmful events served at the settled point: %+v", resOn.ECC)
	}
}

// SECDED outcome counts must be bit-exactly deterministic under a pinned
// request seed.
func TestECCServedCountsDeterministic(t *testing.T) {
	cfg := eccTestConfig(1, true)
	cfg.Governor = GovernorConfig{Interval: -1} // no governing: rails move manually
	p := newTestPool(t, cfg)
	m := p.members[0]
	m.mu.Lock()
	err := m.setVCCBRAM(505)
	m.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	const seed = 7
	a, err := p.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if a.ECC != b.ECC || a.BRAMFaults != b.BRAMFaults || a.AccuracyPct != b.AccuracyPct {
		t.Fatalf("pinned-seed passes diverged: %+v/%d/%.2f vs %+v/%d/%.2f",
			a.ECC, a.BRAMFaults, a.AccuracyPct, b.ECC, b.BRAMFaults, b.AccuracyPct)
	}
	if a.ECC.Total() == 0 {
		t.Fatalf("no SECDED events at 505 mV VCCBRAM: %+v", a)
	}
}

// Scrubbing must restore a bit-exact fault-free weight image: corrupt
// the deployed weights directly (the persistent-fault scenario the
// batched executor's restore models), scrub, and require RunClean
// reference outputs to match the pre-corruption ones.
func TestScrubRestoresWeightImage(t *testing.T) {
	cfg := eccTestConfig(1, true)
	cfg.Governor = GovernorConfig{Interval: -1}
	p := newTestPool(t, cfg)
	m := p.members[0]

	cleanRun := func() ([]int, [][]float32) {
		m.mu.Lock()
		defer m.mu.Unlock()
		rngs := m.scratch.BatchRNGs(m.ds.Len())
		for i := range rngs {
			rngs[i].Seed(int64(i) + 1)
		}
		results, err := m.task.InferBatch(m.scratch, m.ds.Inputs, rngs)
		if err != nil {
			t.Fatal(err)
		}
		preds := make([]int, len(results))
		probs := make([][]float32, len(results))
		for i, r := range results {
			preds[i] = r.Pred
			probs[i] = append([]float32(nil), r.Probs.Data()...)
		}
		return preds, probs
	}
	refPreds, refProbs := cleanRun()

	// Persistent corruption: a single-bit fault and a multi-bit smear in
	// the first weight tensor.
	m.mu.Lock()
	var corrupted bool
	for i := range m.kernel.Nodes {
		if w := m.kernel.Nodes[i].WQ; w != nil && len(w.Data) >= 16 {
			w.Data[0] ^= 1 << 2
			w.Data[8] ^= 1 << 1
			w.Data[9] ^= 1 << 6
			w.Data[10] ^= 1 << 3
			corrupted = true
			break
		}
	}
	m.mu.Unlock()
	if !corrupted {
		t.Fatal("no weight tensor large enough to corrupt")
	}

	rep := p.ScrubNow()
	if rep.Corrected != 1 || rep.Reloaded != 1 {
		t.Fatalf("scrub report %+v, want 1 corrected + 1 reloaded", rep)
	}
	afterPreds, afterProbs := cleanRun()
	for i := range refPreds {
		if afterPreds[i] != refPreds[i] {
			t.Fatalf("image %d: pred %d after scrub, want %d", i, afterPreds[i], refPreds[i])
		}
		for j := range refProbs[i] {
			if afterProbs[i][j] != refProbs[i][j] {
				t.Fatalf("image %d: probs[%d] drifted after scrub", i, j)
			}
		}
	}

	st := p.Status().Boards[0].ECC
	if st == nil || st.ScrubPasses != 1 || st.ScrubCorrected != 1 || st.ScrubReloaded != 1 {
		t.Errorf("scrub counters not surfaced: %+v", st)
	}
	if st.Words == 0 {
		t.Error("protected image size not reported")
	}
}

// Crash recovery must restore the governed VCCBRAM point exactly like
// the governed VCCINT point.
func TestECCCrashRecoveryRestoresBRAMPoint(t *testing.T) {
	p := newTestPool(t, eccTestConfig(1, true))
	if err := p.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}
	settleMember(p, 0, 220)
	governed := p.Status().Boards[0].OperatingBRAMMV
	if governed >= silicon.VnomMV {
		t.Fatalf("BRAM governor never descended: %.0f mV", governed)
	}

	if err := p.SetVCCINTmV(0, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	st := p.Status().Boards[0]
	if !nearMV(st.VCCBRAMmV, governed) {
		t.Errorf("recovery restored VCCBRAM %.1f mV, want the governed %.0f mV", st.VCCBRAMmV, governed)
	}
}

// Runtime toggling through the pool API: disabling protection flips the
// per-board policies and the status snapshot together.
func TestECCToggleAndScrubInterval(t *testing.T) {
	cfg := eccTestConfig(1, true)
	cfg.Governor = GovernorConfig{Interval: -1}
	p := newTestPool(t, cfg)
	if !p.ECCEnabled() {
		t.Fatal("pool should start protected")
	}
	p.SetECCEnabled(false)
	if p.ECCEnabled() || p.Status().ECC.Enabled {
		t.Fatal("disable did not take")
	}
	p.SetECCEnabled(true)
	if !p.Status().Boards[0].ECC.Enabled {
		t.Fatal("re-enable did not reach the board snapshot")
	}
	p.SetScrubInterval(123 * time.Millisecond)
	if got := p.Status().ECC.ScrubIntervalMS; got != 123 {
		t.Fatalf("scrub interval %v ms, want 123", got)
	}
}
