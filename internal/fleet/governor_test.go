package fleet

import (
	"context"
	"testing"
	"time"
)

// governorTestConfig is the deterministic stepping setup the governor
// tests share: no background loops (ticks are driven explicitly), a
// canary large enough that fault statistics near the onset are sharp,
// and 2 mV steps so ITD headroom resolves to whole steps.
func governorTestConfig(boards int) Config {
	cfg := testConfig(boards)
	cfg.MonitorInterval = -1
	cfg.Governor = GovernorConfig{
		Interval:    -1,
		StepMV:      2,
		MarginMV:    4,
		ProbeImages: 32,
	}
	return cfg
}

// settle drives n governor ticks.
func settle(p *Pool, n int) {
	for i := 0; i < n; i++ {
		p.GovernorTick()
	}
}

// settleMember drives n control ticks on one board only (white-box),
// keeping convergence tests cheap and focused.
func settleMember(p *Pool, idx, n int) {
	for i := 0; i < n; i++ {
		p.governTick(p.members[idx])
	}
}

// The governor must walk every board below its static startup point,
// stay above the floor, keep the rail at the governed point, and report
// power savings — while classification stays fault-free.
func TestGovernorDescendsBelowStaticPoints(t *testing.T) {
	p := newTestPool(t, governorTestConfig(3))
	if err := p.HoldTemperatureC(-1, 34); err != nil {
		t.Fatal(err)
	}
	settle(p, 24)

	st := p.Status()
	if st.Governor == nil {
		t.Fatal("no governor status")
	}
	ops := map[float64]bool{}
	for _, b := range st.Boards {
		g := b.Governor
		if g == nil {
			t.Fatalf("%s: no per-board governor status", b.Board)
		}
		if b.OperatingMV >= g.BaselineMV {
			t.Errorf("%s: governed point %.0f mV not below static %.0f mV", b.Board, b.OperatingMV, g.BaselineMV)
		}
		if b.OperatingMV <= g.FloorMV {
			t.Errorf("%s: governed point %.0f mV at/below floor %.0f mV", b.Board, b.OperatingMV, g.FloorMV)
		}
		if !nearMV(b.VCCINTmV, b.OperatingMV) {
			t.Errorf("%s: rail %.1f mV not at governed point %.0f mV", b.Board, b.VCCINTmV, b.OperatingMV)
		}
		if g.SavedW <= 0 {
			t.Errorf("%s: saved %.3f W, want > 0", b.Board, g.SavedW)
		}
		if g.Descents < 1 {
			t.Errorf("%s: no descents recorded", b.Board)
		}
		ops[b.OperatingMV] = true
	}
	// The three samples have different Vmin, so the governed points must
	// be board-specific (§8 variability carried into operation).
	if len(ops) != 3 {
		t.Errorf("governed points not distinct per sample: %v", ops)
	}
	if st.Governor.SavedW <= 0 || st.Governor.SavedJ <= 0 {
		t.Errorf("fleet savings not accounted: %+v", st.Governor)
	}

	// Serving at the governed points stays fault-free.
	for i := 0; i < 6; i++ {
		res, err := p.Classify(context.Background(), Request{})
		if err != nil {
			t.Fatal(err)
		}
		if res.MACFaults != 0 || res.BRAMFaults != 0 {
			t.Errorf("faults at governed point on %s: MAC=%d BRAM=%d", res.Board, res.MACFaults, res.BRAMFaults)
		}
	}
}

// ITD convergence: the same silicon sample held at elevated temperature
// must settle at a deeper operating point than a cool one (marginal
// paths speed up with temperature, so the canary stays clean deeper),
// and must climb back above the hot point once the die cools.
func TestGovernorConvergesWithTemperature(t *testing.T) {
	// Two 2-board pools; board 1 (silicon sample B, the paper's typical
	// die) is the subject and the only board ticked. A 64-image canary
	// keeps the near-onset fault statistics sharp.
	cfg := governorTestConfig(2)
	cfg.Governor.ProbeImages = 64
	cfg.Governor.ConfirmProbes = 3
	cold := newTestPool(t, cfg)
	hot := newTestPool(t, cfg)

	if err := cold.HoldTemperatureC(1, 34); err != nil {
		t.Fatal(err)
	}
	if err := hot.HoldTemperatureC(1, 52); err != nil {
		t.Fatal(err)
	}
	settleMember(cold, 1, 40)
	settleMember(hot, 1, 40)

	coldMV := cold.Status().Boards[1].OperatingMV
	hotMV := hot.Status().Boards[1].OperatingMV
	if hotMV >= coldMV {
		t.Fatalf("hot die settled at %.0f mV, want deeper than cold %.0f mV (ITD headroom)", hotMV, coldMV)
	}

	// The fan recovers: the governor must climb back above the deep hot
	// point without the board ever crashing or dropping work.
	if err := hot.HoldTemperatureC(1, 34); err != nil {
		t.Fatal(err)
	}
	settleMember(hot, 1, 40)
	cooledMV := hot.Status().Boards[1].OperatingMV
	if cooledMV <= hotMV {
		t.Fatalf("cooled die stayed at %.0f mV, want a climb above the hot point %.0f mV", cooledMV, hotMV)
	}
	if st := hot.Status(); st.Crashes != 0 {
		t.Errorf("governor crashed the board %d times", st.Crashes)
	}
	// After cooling the board serves fault-free at the re-climbed point.
	for i := 0; i < 4; i++ {
		res, err := hot.Classify(context.Background(), Request{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Board == hot.Status().Boards[1].Board && res.MACFaults != 0 {
			t.Errorf("faults after climb-back: %d", res.MACFaults)
		}
	}
}

// The acceptance scenario: a governed 3-board pool under thermal drift
// serves concurrent traffic with zero dropped requests and zero
// classification faults while the boards converge to distinct points
// below their static ones.
func TestGovernedFleetServesCleanUnderDrift(t *testing.T) {
	p := newTestPool(t, governorTestConfig(3))
	for i, tC := range []float64{34, 43, 52} {
		if err := p.HoldTemperatureC(i, tC); err != nil {
			t.Fatal(err)
		}
	}
	const rounds, perRound = 20, 3
	for i := 0; i < rounds; i++ {
		p.GovernorTick()
		for j := 0; j < perRound; j++ {
			res, err := p.Classify(context.Background(), Request{})
			if err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
			if res.MACFaults != 0 {
				t.Fatalf("round %d: %d MAC faults served on %s at %.0f mV",
					i, res.MACFaults, res.Board, res.VCCINTmV)
			}
		}
	}
	st := p.Status()
	if st.Served != rounds*perRound {
		t.Errorf("served = %d, want %d", st.Served, rounds*perRound)
	}
	if st.Failed != 0 || st.MACFaults != 0 {
		t.Errorf("failed=%d mac_faults=%d, want 0/0", st.Failed, st.MACFaults)
	}
	for _, b := range st.Boards {
		if b.OperatingMV >= b.Governor.BaselineMV {
			t.Errorf("%s: did not descend below static point", b.Board)
		}
	}
}

// Crash recovery under a governed pool must restore the governed point,
// not the static startup point: the whole value of the governor is that
// the energy savings survive reboots.
func TestGovernorCrashRecoveryRestoresGovernedPoint(t *testing.T) {
	p := newTestPool(t, governorTestConfig(1))
	if err := p.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}
	settle(p, 16)
	governed := p.Status().Boards[0].OperatingMV
	static := p.Status().Boards[0].Governor.BaselineMV
	if governed >= static {
		t.Fatalf("governor never descended: %.0f vs %.0f", governed, static)
	}

	// Induce a crash below Vcrash; the next serving pass heals it.
	if err := p.SetVCCINTmV(0, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.Crashes < 1 || st.Redeploys < 1 {
		t.Fatalf("crash was not healed: %+v", st)
	}
	if !nearMV(st.Boards[0].VCCINTmV, governed) {
		t.Errorf("recovery restored %.1f mV, want the governed point %.0f mV (static %.0f)",
			st.Boards[0].VCCINTmV, governed, static)
	}
}

// A governor tick that lands on a crashed idle board (e.g. after a raw
// sub-Vcrash voltage command) heals it.
func TestGovernorTickHealsCrashedBoard(t *testing.T) {
	p := newTestPool(t, governorTestConfig(1))
	if err := p.SetVCCINTmV(0, 500); err != nil {
		t.Fatal(err)
	}
	// Latch the hang via the board's own liveness check.
	if err := p.members[0].brd.CheckAlive(); err == nil {
		t.Fatal("board did not crash below Vcrash")
	}
	p.GovernorTick()
	st := p.Status()
	if st.Boards[0].State != "healthy" {
		t.Fatalf("board not healed by governor tick: %+v", st.Boards[0])
	}
	if !nearMV(st.Boards[0].VCCINTmV, st.Boards[0].OperatingMV) {
		t.Errorf("rail %.1f mV not restored to governed point %.0f mV",
			st.Boards[0].VCCINTmV, st.Boards[0].OperatingMV)
	}
}

// Runtime tuning and toggling through the Pool API.
func TestGovernorTuneAndToggle(t *testing.T) {
	cfg := governorTestConfig(1)
	cfg.Governor.Interval = time.Hour // loops exist but never fire on their own
	p := newTestPool(t, cfg)

	if p.GovernorEnabled() {
		t.Fatal("governor should start disabled")
	}
	p.SetGovernorEnabled(true)
	if !p.GovernorEnabled() {
		t.Fatal("enable did not take")
	}

	if err := p.TuneGovernor(GovernorTuning{StepMV: -1}); err == nil {
		t.Error("negative tuning accepted")
	}
	if err := p.TuneGovernor(GovernorTuning{StepMV: 3, ProbeImages: 8, VerifyEvery: 7}); err != nil {
		t.Fatal(err)
	}
	gs := p.GovernorStatus()
	if gs.StepMV != 3 || gs.ProbeImages != 8 || gs.VerifyEvery != 7 {
		t.Errorf("tuning not applied: %+v", gs)
	}
	// Untouched fields keep their values.
	if gs.MarginMV != 4 {
		t.Errorf("margin changed unexpectedly: %+v", gs)
	}
}

// A manual SetOperatingMV on a governed pool re-bases the control loop
// instead of fighting it.
func TestGovernorRebasesOnManualRetarget(t *testing.T) {
	p := newTestPool(t, governorTestConfig(1))
	settle(p, 6)
	target := p.Status().Boards[0].Governor.BaselineMV - 2
	if err := p.SetOperatingMV(0, target); err != nil {
		t.Fatal(err)
	}
	st := p.Status().Boards[0]
	if !nearMV(st.OperatingMV, target) {
		t.Fatalf("operating point %.0f, want %.0f", st.OperatingMV, target)
	}
	if got := st.Governor.CleanMV; !nearMV(got, target-4) {
		t.Errorf("clean level %.0f not re-based to %.0f", got, target-4)
	}

	// A re-target above the static point re-bases at the ceiling (no
	// unverified plunge back down), and one barely above Vcrash clamps
	// the clean level at the governor floor so the loop never probes
	// below it.
	if err := p.SetOperatingMV(0, 700); err != nil {
		t.Fatal(err)
	}
	if got := p.Status().Boards[0].Governor; got.CleanMV > got.BaselineMV {
		t.Errorf("clean level %.0f re-based above the ceiling %.0f", got.CleanMV, got.BaselineMV)
	}
	if err := p.SetOperatingMV(0, st.VcrashMV+3); err != nil {
		t.Fatal(err)
	}
	settle(p, 8)
	after := p.Status()
	if after.Crashes != 0 {
		t.Fatalf("governor crashed the board after a near-Vcrash re-target (%d crashes)", after.Crashes)
	}
	if g := after.Boards[0].Governor; g.CleanMV < g.FloorMV-0.5 {
		t.Errorf("clean level %.0f below the governor floor %.0f", g.CleanMV, g.FloorMV)
	}
}
