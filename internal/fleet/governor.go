package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fpgauv/internal/board"
	"fpgauv/internal/dvfs"
	"fpgauv/internal/ecc"
	"fpgauv/internal/models"
	"fpgauv/internal/obs"
	"fpgauv/internal/silicon"
)

// GovernorConfig tunes the fleet's per-board adaptive voltage loops: the
// paper's §9 future-work item (dynamic voltage adjustment tracking
// temperature, accuracy, power and performance) run per member. Each
// board's loop periodically probes a small canary set under the member
// lock and walks the board's operating point down into ITD headroom when
// the canary stays clean, or back up when faults appear — in the canary
// or in served traffic.
type GovernorConfig struct {
	// Enabled starts the loops active. They can be toggled at runtime
	// with SetGovernorEnabled or the /v1/fleet/governor endpoint; a
	// disabled loop keeps ticking but takes no action.
	Enabled bool
	// Interval is the per-board control period (default 25 ms;
	// negative builds the governor state but starts no background
	// loops — GovernorTick then drives the control law explicitly).
	Interval time.Duration
	// StepMV is the descent/climb granularity (default 5 mV, the
	// paper's measurement step).
	StepMV float64
	// MarginMV is the headroom the operating point keeps above the
	// deepest canary-clean level (default 5 mV).
	MarginMV float64
	// FloorMarginMV is the minimum distance kept above the board's
	// measured Vcrash (default 8 mV): probes and operating points never
	// get closer, so the governor cannot crash a board even as the
	// crash threshold drifts a few mV with die temperature.
	FloorMarginMV float64
	// ProbeImages is the canary-set size classified per tick
	// (default 12).
	ProbeImages int
	// ConfirmProbes is how many consecutive clean canary probes a
	// deeper candidate needs before the descent commits (default 2).
	// Confirmation multiplies the canary's effective trial count, which
	// exponentially suppresses lucky-sample descents below the fault
	// onset — and exponentially widens the gap between what a hot die
	// (ITD-healed fault rates) and a cool die can sustain.
	ConfirmProbes int
	// VerifyEvery makes every Nth seeking tick re-verify the present
	// clean level instead of probing deeper (default 4), and is also
	// how many verification ticks follow a faulting candidate probe
	// before descent is re-attempted. Verification is how a cooling die
	// is caught: the clean level starts faulting and the loop climbs.
	VerifyEvery int
	// RetestDeltaC is the settle gate: once a board has settled, its
	// loop stops probing entirely (steady-state serving pays zero
	// governor overhead) until the die temperature moves at least this
	// far (default 1.5 °C) from the settle temperature — or served
	// traffic reports faults. Either event re-opens the seek.
	RetestDeltaC float64
	// Seed derives the canary datasets and probe fault streams.
	Seed int64

	// BRAM enables the VCCBRAM descent loop: each tick also walks the
	// BRAM rail toward the deepest level whose canary signal stays
	// acceptable. What "acceptable" means is the ECC-aware part: with
	// SECDED disabled any raw flip is a boundary (the loop stops at the
	// unprotected fault onset); with SECDED enabled the loop tolerates
	// corrected single-bit words up to CorrectedBudget per probe and
	// bounds on uncorrectable/silent words — the corrected-error rate is
	// the leading indicator that lets it settle measurably deeper at
	// equal accuracy.
	BRAM bool
	// BRAMStepMV is the VCCBRAM descent/climb granularity (default 5).
	BRAMStepMV float64
	// BRAMMarginMV is the headroom kept above the deepest clean VCCBRAM
	// canary level (default 5).
	BRAMMarginMV float64
	// BRAMFloorMV bounds the VCCBRAM descent (default 470 mV, just
	// above the regulator's 450 mV range floor).
	BRAMFloorMV float64
	// CorrectedBudget is the ECC-aware tolerance: the most corrected
	// words a canary probe may report while still counting as clean
	// (default 8). Ignored while SECDED is disabled.
	CorrectedBudget int64
}

// sanitizeGovernor fills governor defaults.
func (c GovernorConfig) sanitize() GovernorConfig {
	if c.Interval == 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.StepMV <= 0 {
		c.StepMV = 5
	}
	if c.MarginMV < 0 {
		c.MarginMV = 5
	}
	if c.MarginMV == 0 {
		c.MarginMV = 5
	}
	if c.FloorMarginMV <= 0 {
		c.FloorMarginMV = 8
	}
	if c.ProbeImages <= 0 {
		c.ProbeImages = 12
	}
	if c.ConfirmProbes <= 0 {
		c.ConfirmProbes = 2
	}
	if c.VerifyEvery <= 0 {
		c.VerifyEvery = 4
	}
	if c.RetestDeltaC <= 0 {
		c.RetestDeltaC = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BRAMStepMV <= 0 {
		c.BRAMStepMV = 5
	}
	if c.BRAMMarginMV <= 0 {
		c.BRAMMarginMV = 5
	}
	if c.BRAMFloorMV <= 0 {
		c.BRAMFloorMV = 470
	}
	if c.CorrectedBudget <= 0 {
		c.CorrectedBudget = 8
	}
	return c
}

// governor is the pool-level side of the control loops: the shared
// (tunable) configuration and the enable switch.
type governor struct {
	mu      sync.Mutex
	cfg     GovernorConfig
	enabled atomic.Bool
}

func (g *governor) config() GovernorConfig {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// memberGov is one board's control state. The plain fields are owned by
// the board's governor tick, which runs under the member lock; the
// atomics are telemetry read by status snapshots without the lock.
type memberGov struct {
	probe *models.Dataset

	// cleanMV is the deepest level where the canary probed clean; the
	// committed operating point is cleanMV+MarginMV (capped at the
	// static startup point). Mirrored in cleanBits for lock-free
	// status reads.
	cleanMV   float64
	cleanBits atomic.Uint64
	// cleanStreak counts consecutive clean probes at the present
	// descent candidate; a descent commits at ConfirmProbes.
	cleanStreak int
	// verifyFor forces the next N ticks to re-verify cleanMV instead of
	// probing deeper (set after a faulting candidate probe).
	verifyFor int
	// boundCount accumulates strong-fault candidate probes since the
	// last clean candidate draw; the descent boundary is declared (and
	// pendingSettle raised) at ConfirmProbes of them — one unlucky
	// draw at a mostly-clean level must not end the search.
	boundCount int
	// pendingSettle marks that descent hit its boundary; settleStreak
	// then counts consecutive zero-fault verifications of cleanMV, and
	// the loop settles at ConfirmProbes of them — the same evidence
	// standard a descent needs.
	pendingSettle bool
	settleStreak  int
	// settled means the loop has quiesced: no probes run until the die
	// temperature leaves settleTempC ± RetestDeltaC or serving faults.
	// Mirrored in settledFlag for lock-free status reads.
	settled     bool
	settleTempC float64
	settledFlag atomic.Bool
	ticks       int64

	probes       atomic.Int64
	climbs       atomic.Int64
	descents     atomic.Int64
	canaryFaults atomic.Int64
	// savedJBits accumulates the modeled energy saved versus holding
	// the static point, in joules (float bits; single writer).
	savedJBits atomic.Uint64

	// VCCBRAM loop state (active only with GovernorConfig.BRAM). The
	// plain fields are owned by the tick under the member lock, the
	// atomics are status telemetry. The BRAM law is simpler than the
	// VCCINT one because the BRAM fault model has no thermal term:
	// once the descent is bounded the loop quiesces for good, and only
	// harmful events in served traffic re-open it.
	bramCleanMV   float64
	bramCleanBits atomic.Uint64
	bramStreak    int
	bramBound     int
	bramSettled   bool
	bramSettledF  atomic.Bool

	bramProbes   atomic.Int64
	bramClimbs   atomic.Int64
	bramDescents atomic.Int64
	// canaryCorrected/canaryBad split the BRAM probes' fault signal the
	// ECC-aware way: corrected words (tolerated, the leading indicator)
	// versus harmful events (raw flips unprotected, uncorrectable and
	// silent words under SECDED).
	canaryCorrected atomic.Int64
	canaryBad       atomic.Int64

	snap struct {
		sync.Mutex
		action string
	}
}

// probeDataset derives a member's canary set: a small dedicated
// dataset, board-salted so members of the same sample do not share
// probe inputs. It needs no labels — the error signal is the fault
// count.
func probeDataset(m *member, cfg GovernorConfig) *models.Dataset {
	return m.bench.MakeDataset(cfg.ProbeImages, cfg.Seed^0x51ca9+int64(m.idx))
}

func newMemberGov(m *member, cfg GovernorConfig) *memberGov {
	g := &memberGov{probe: probeDataset(m, cfg)}
	g.setCleanMV(m.staticMV - cfg.MarginMV)
	g.setBRAMCleanMV(m.bramOpMV() - cfg.BRAMMarginMV)
	g.snap.action = "idle"
	return g
}

func (g *memberGov) setCleanMV(mv float64) {
	g.cleanMV = mv
	g.cleanBits.Store(math.Float64bits(mv))
}

func (g *memberGov) setBRAMCleanMV(mv float64) {
	g.bramCleanMV = mv
	g.bramCleanBits.Store(math.Float64bits(mv))
}

// bramSettle quiesces the VCCBRAM loop at its present point.
func (g *memberGov) bramSettle() {
	g.bramSettled = true
	g.bramStreak, g.bramBound = 0, 0
	g.bramSettledF.Store(true)
}

// bramUnsettle re-opens the VCCBRAM seek.
func (g *memberGov) bramUnsettle() {
	g.bramSettled = false
	g.bramStreak, g.bramBound = 0, 0
	g.bramSettledF.Store(false)
}

// settle quiesces the loop at the present clean level and temperature.
func (g *memberGov) settle(tempC float64) {
	g.settled, g.settleTempC, g.pendingSettle = true, tempC, false
	g.cleanStreak, g.verifyFor, g.settleStreak, g.boundCount = 0, 0, 0, 0
	g.settledFlag.Store(true)
}

// unsettle re-opens the seek.
func (g *memberGov) unsettle() {
	g.settled, g.pendingSettle = false, false
	g.settleStreak, g.boundCount = 0, 0
	g.settledFlag.Store(false)
}

func (g *memberGov) note(action string) {
	g.snap.Lock()
	g.snap.action = action
	g.snap.Unlock()
}

func (g *memberGov) lastAction() string {
	g.snap.Lock()
	defer g.snap.Unlock()
	return g.snap.action
}

func (g *memberGov) savedJ() float64 {
	return math.Float64frombits(g.savedJBits.Load())
}

func (g *memberGov) addSavedJ(j float64) {
	g.savedJBits.Store(math.Float64bits(g.savedJ() + j))
}

// startGovernor builds per-member control state and, when the interval is
// positive, starts one control loop per board.
func (p *Pool) startGovernor(cfg GovernorConfig) {
	p.gov = &governor{cfg: cfg}
	p.gov.enabled.Store(cfg.Enabled)
	for _, m := range p.members {
		m.gov = newMemberGov(m, cfg)
	}
	if cfg.Interval <= 0 {
		return
	}
	for _, m := range p.members {
		p.wg.Add(1)
		go p.governLoop(m)
	}
}

// governLoop is one board's background control loop. The interval is
// re-read every lap so runtime tuning takes effect; a disabled governor
// keeps the loop alive but skips the tick.
func (p *Pool) governLoop(m *member) {
	defer p.wg.Done()
	for {
		t := time.NewTimer(p.gov.config().Interval)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if p.gov.enabled.Load() {
			p.governTick(m)
		}
	}
}

// GovernorEnabled reports whether the background loops act on their
// ticks.
func (p *Pool) GovernorEnabled() bool {
	return p.gov != nil && p.gov.enabled.Load()
}

// SetGovernorEnabled switches the background loops on or off. Disabling
// freezes every board at its present governed point; it does not restore
// the static startup points.
func (p *Pool) SetGovernorEnabled(on bool) {
	if p.gov != nil {
		p.gov.enabled.Store(on)
	}
}

// GovernorTuning is a partial governor re-configuration: zero-valued
// fields keep their present setting.
type GovernorTuning struct {
	Interval        time.Duration `json:"interval,omitempty"`
	StepMV          float64       `json:"step_mv,omitempty"`
	MarginMV        float64       `json:"margin_mv,omitempty"`
	FloorMarginMV   float64       `json:"floor_margin_mv,omitempty"`
	ProbeImages     int           `json:"probe_images,omitempty"`
	ConfirmProbes   int           `json:"confirm_probes,omitempty"`
	VerifyEvery     int           `json:"verify_every,omitempty"`
	RetestDeltaC    float64       `json:"retest_delta_c,omitempty"`
	BRAMStepMV      float64       `json:"bram_step_mv,omitempty"`
	BRAMMarginMV    float64       `json:"bram_margin_mv,omitempty"`
	BRAMFloorMV     float64       `json:"bram_floor_mv,omitempty"`
	CorrectedBudget int64         `json:"corrected_budget,omitempty"`
}

// TuneGovernor applies a partial re-configuration to the running loops.
// Probe-set size changes rebuild each board's canary dataset.
func (p *Pool) TuneGovernor(tn GovernorTuning) error {
	if p.gov == nil {
		return errors.New("fleet: pool has no governor")
	}
	if tn.StepMV < 0 || tn.MarginMV < 0 || tn.FloorMarginMV < 0 || tn.ProbeImages < 0 ||
		tn.Interval < 0 || tn.VerifyEvery < 0 || tn.ConfirmProbes < 0 || tn.RetestDeltaC < 0 ||
		tn.BRAMStepMV < 0 || tn.BRAMMarginMV < 0 || tn.BRAMFloorMV < 0 || tn.CorrectedBudget < 0 {
		return errors.New("fleet: governor tuning values must be positive")
	}
	p.gov.mu.Lock()
	cfg := p.gov.cfg
	if tn.Interval > 0 {
		cfg.Interval = tn.Interval
	}
	if tn.StepMV > 0 {
		cfg.StepMV = tn.StepMV
	}
	if tn.MarginMV > 0 {
		cfg.MarginMV = tn.MarginMV
	}
	if tn.FloorMarginMV > 0 {
		cfg.FloorMarginMV = tn.FloorMarginMV
	}
	if tn.ConfirmProbes > 0 {
		cfg.ConfirmProbes = tn.ConfirmProbes
	}
	if tn.VerifyEvery > 0 {
		cfg.VerifyEvery = tn.VerifyEvery
	}
	if tn.RetestDeltaC > 0 {
		cfg.RetestDeltaC = tn.RetestDeltaC
	}
	if tn.BRAMStepMV > 0 {
		cfg.BRAMStepMV = tn.BRAMStepMV
	}
	if tn.BRAMMarginMV > 0 {
		cfg.BRAMMarginMV = tn.BRAMMarginMV
	}
	if tn.BRAMFloorMV > 0 {
		cfg.BRAMFloorMV = tn.BRAMFloorMV
	}
	if tn.CorrectedBudget > 0 {
		cfg.CorrectedBudget = tn.CorrectedBudget
	}
	rebuildProbe := tn.ProbeImages > 0 && tn.ProbeImages != cfg.ProbeImages
	if tn.ProbeImages > 0 {
		cfg.ProbeImages = tn.ProbeImages
	}
	p.gov.cfg = cfg
	p.gov.mu.Unlock()
	if rebuildProbe {
		for _, m := range p.members {
			probe := probeDataset(m, cfg)
			m.mu.Lock()
			m.gov.probe = probe
			m.mu.Unlock()
		}
	}
	return nil
}

// GovernorTick runs one synchronous control tick on every board,
// regardless of the enable switch or loop interval — the deterministic
// stepping mode tests and examples use.
func (p *Pool) GovernorTick() {
	if p.gov == nil {
		return
	}
	for _, m := range p.members {
		p.governTick(m)
	}
}

// governFloorMV returns the deepest level the governor may command for a
// member: FloorMarginMV above the measured crash threshold.
func governFloorMV(m *member, cfg GovernorConfig) float64 {
	return m.regions.VcrashMV + cfg.FloorMarginMV
}

// governClimbFaults is the verification climb threshold: a re-verified
// clean level must show at least this many fault events before the loop
// climbs. A single event in ~10⁸ canary trials is the marginal regime
// ITD operation deliberately sits near (the margin above the clean level
// is what protects serving); a cooling die multiplies the fault rate
// several-fold and crosses this threshold within a verify or two. The
// asymmetry matches the descent side, which demands ConfirmProbes
// consecutive fully-clean probes.
const governClimbFaults = 2

// governTick is one application of the control laws to one board. It
// holds the member lock end to end: the canary probes and any rail moves
// are serialized against serving, recovery, scrubbing and the monitor,
// exactly like every other accelerator operation. The VCCINT phase runs
// first (it owns crash semantics); the VCCBRAM phase follows when BRAM
// governing is enabled.
func (p *Pool) governTick(m *member) {
	cfg := p.gov.config()
	m.mu.Lock()
	defer m.mu.Unlock()

	g := m.gov
	g.ticks++

	// A crashed board is healed first; the restored rails are the
	// governed points (recover restores opMV and bramOpMV), so no
	// control action is needed beyond the heal.
	if m.brd.Hung() {
		m.noteCrash()
		if err := m.recover(); err != nil {
			g.note("recover failed: " + err.Error())
			return
		}
		g.note("healed crash; governed point restored")
		return
	}

	if !p.governINT(m, cfg) {
		return
	}
	if cfg.BRAM {
		p.governBRAM(m, cfg)
	}
	p.accountSavings(m, cfg)
}

// governINT is the VCCINT control phase. It reports whether the tick
// should continue to the BRAM phase and savings accounting (false after
// a probe crash or error, matching the legacy abort paths). Caller
// holds m.mu.
func (p *Pool) governINT(m *member, cfg GovernorConfig) bool {
	g := m.gov
	tempC := m.brd.DieTempC()
	floor := governFloorMV(m, cfg)
	ceil := m.staticMV
	op := m.opMV()

	// Serving faults since the last tick climb immediately: live
	// traffic found what the canary missed, and the canary runs a
	// fraction of the serving trial count. Without a BRAM loop the
	// harmful BRAM events fold into this signal (the legacy coupling);
	// with one, each rail answers only for its own fault class.
	sf := m.servedFaults.Swap(0)
	if !cfg.BRAM {
		sf += m.servedBRAM.Swap(0)
	}
	if sf > 0 {
		g.unsettle()
		g.cleanStreak, g.verifyFor = 0, cfg.VerifyEvery
		next, act := dvfs.Plan(op, sf, cfg.StepMV, cfg.MarginMV, floor, ceil)
		switch {
		case act != dvfs.ActionUp:
			g.note(fmt.Sprintf("at ceiling %.0f mV despite %d served faults", op, sf))
		case m.commitOp(next) != nil:
			g.note(fmt.Sprintf("rail command to %.0f mV failed; holding %.0f mV", next, op))
		default:
			g.setCleanMV(next - cfg.MarginMV)
			g.climbs.Add(1)
			m.event(obs.EvGovClimb, next, fmt.Sprintf("%d faults in served traffic", sf))
			g.note(fmt.Sprintf("climbed to %.0f mV: %d faults in served traffic", next, sf))
		}
		return true
	}

	// The settle gate: a settled board pays zero probe overhead until
	// its thermal conditions actually move (the ITD re-settle trigger)
	// or serving faults (handled above).
	if g.settled {
		if math.Abs(tempC-g.settleTempC) < cfg.RetestDeltaC {
			return true
		}
		g.unsettle()
		g.note(fmt.Sprintf("re-seeking: die moved %.1f C -> %.1f C", g.settleTempC, tempC))
	}

	// Pick the probe level: normally the next deeper candidate, but
	// every VerifyEvery-th tick — and for a few ticks after a faulting
	// candidate — the present clean level is re-verified instead. The
	// verification cadence is how a cooling die is caught (its clean
	// level starts faulting); the post-fault cooldown keeps the loop
	// from hammering a faulting level every tick.
	candidate, act := dvfs.Plan(g.cleanMV, 0, cfg.StepMV, cfg.MarginMV, floor, ceil)
	verify := act != dvfs.ActionDown || g.verifyFor > 0 || g.ticks%int64(cfg.VerifyEvery) == 0
	if g.verifyFor > 0 {
		g.verifyFor--
	}
	target := candidate
	if verify {
		target = g.cleanMV
	}

	sig, err := m.probeCanary(target, cfg.Seed+int64(m.idx)*1_000_003+g.ticks)
	g.probes.Add(1)
	if err != nil {
		if errors.Is(err, board.ErrHung) {
			m.noteCrash()
			if rerr := m.recover(); rerr != nil {
				g.note("probe crash; recover failed: " + rerr.Error())
				return false
			}
			g.note(fmt.Sprintf("probe at %.0f mV crashed; healed", target))
			return false
		}
		g.note("probe error: " + err.Error())
		return false
	}
	faults := sig.mac
	if !cfg.BRAM {
		faults += sig.harmfulBRAM(m.prot.Enabled())
	}
	m.event(obs.EvGovProbe, target, fmt.Sprintf("faults=%d verify=%t", faults, verify))

	switch {
	case faults == 0 && verify:
		if g.pendingSettle || act != dvfs.ActionDown {
			// Descent is bounded (faulting candidate, floor or
			// ceiling). Settling takes the same evidence a descent
			// does: ConfirmProbes consecutive zero-fault verifies.
			g.settleStreak++
			if g.settleStreak >= cfg.ConfirmProbes {
				g.settle(tempC)
				g.note(fmt.Sprintf("settled at %.0f mV (clean %.0f mV, die %.1f C)",
					m.opMV(), target, tempC))
				break
			}
			g.verifyFor = 1
			g.note(fmt.Sprintf("confirming settle at %.0f mV: clean %d/%d (die %.1f C)",
				target, g.settleStreak, cfg.ConfirmProbes, tempC))
			break
		}
		g.note(fmt.Sprintf("verified clean at %.0f mV (die %.1f C)", target, tempC))
	case faults == 0:
		g.boundCount = 0 // a clean draw contradicts a boundary
		g.cleanStreak++
		if g.cleanStreak < cfg.ConfirmProbes {
			g.note(fmt.Sprintf("confirming %.0f mV: clean %d/%d (die %.1f C)",
				target, g.cleanStreak, cfg.ConfirmProbes, tempC))
			break
		}
		g.cleanStreak = 0
		if err := m.commitOp(math.Min(target+cfg.MarginMV, ceil)); err != nil {
			g.note("rail command failed: " + err.Error())
			break
		}
		g.setCleanMV(target)
		g.descents.Add(1)
		m.event(obs.EvGovDescent, m.opMV(), fmt.Sprintf("canary clean at %.0f mV", target))
		g.note(fmt.Sprintf("descended: canary clean at %.0f mV (die %.1f C)", target, tempC))
	case verify:
		g.canaryFaults.Add(faults)
		if faults < governClimbFaults {
			// A stray event at the clean level is the marginal regime
			// ITD operation sits near; the margin above it protects
			// serving. It does not count toward settling, though —
			// keep verifying.
			g.settleStreak = 0
			if g.pendingSettle || act != dvfs.ActionDown {
				g.verifyFor = 1
			}
			g.note(fmt.Sprintf("tolerated %d fault event at clean %.0f mV (die %.1f C)", faults, target, tempC))
			break
		}
		// The clean level itself faults repeatably (the die cooled):
		// climb and keep seeking.
		g.pendingSettle, g.settleStreak, g.boundCount = false, 0, 0
		g.cleanStreak, g.verifyFor = 0, cfg.VerifyEvery
		up, _ := dvfs.Plan(target, faults, cfg.StepMV, cfg.MarginMV, floor, ceil)
		newClean := math.Min(up-cfg.MarginMV, ceil)
		if err := m.commitOp(math.Min(newClean+cfg.MarginMV, ceil)); err != nil {
			g.note("rail command failed: " + err.Error())
			break
		}
		g.setCleanMV(newClean)
		g.climbs.Add(1)
		m.event(obs.EvGovClimb, m.opMV(), fmt.Sprintf("%d canary faults at %.0f mV", faults, target))
		g.note(fmt.Sprintf("climbed to %.0f mV: %d canary faults at %.0f mV (die %.1f C)",
			newClean+cfg.MarginMV, faults, target, tempC))
	case faults < governClimbFaults:
		// A single event at the candidate is ambiguous: not clean
		// enough to confirm the descent, not faulty enough to declare
		// the boundary. Reset the confirmation and probe again.
		g.canaryFaults.Add(faults)
		g.cleanStreak = 0
		g.note(fmt.Sprintf("ambiguous: %d fault event at candidate %.0f mV (die %.1f C)", faults, target, tempC))
	default:
		// The deeper candidate faults strongly. Declare the boundary
		// only after ConfirmProbes such draws (uninterrupted by a
		// clean one); then ConfirmProbes clean verifications of the
		// present level settle the loop.
		g.canaryFaults.Add(faults)
		g.cleanStreak, g.verifyFor = 0, 1
		g.boundCount++
		if g.boundCount >= cfg.ConfirmProbes {
			g.pendingSettle = true
		}
		g.note(fmt.Sprintf("held: %d canary faults at %.0f mV, boundary %d/%d (die %.1f C)",
			faults, target, g.boundCount, cfg.ConfirmProbes, tempC))
	}
	return true
}

// accountSavings integrates the modeled power saved versus parking at
// the static point over one control interval. Caller holds m.mu.
func (p *Pool) accountSavings(m *member, cfg GovernorConfig) {
	iv := cfg.Interval
	if iv <= 0 {
		iv = 25 * time.Millisecond
	}
	if w := m.savedW(); w > 0 {
		m.gov.addSavedJ(w * iv.Seconds())
	}
}

// savedW is the modeled power saved by the present operating points
// versus the static startup points — VCCINT at staticMV, VCCBRAM at
// nominal — (>= 0 when governed deeper on either rail).
func (m *member) savedW() float64 {
	return m.brd.PowerBreakdownAtRails(m.staticMV, silicon.VnomMV).TotalW - m.brd.PowerBreakdown().TotalW
}

// commitOp re-targets the member's steady-state operating point and
// applies it to the rail, so a later crash recovery restores the
// governed level. A failed rail command rolls the target back: opMV
// must never claim a level the rail did not reach (status and recovery
// both trust it). Caller holds m.mu.
func (m *member) commitOp(mv float64) error {
	prev := m.opMV()
	m.setOpMV(mv)
	if err := m.setVCCINT(mv); err != nil {
		m.setOpMV(prev)
		return err
	}
	return nil
}

// commitBRAM is commitOp for the VCCBRAM rail: the steady-state target
// moves first so crash recovery restores the governed level, and rolls
// back if the rail refuses the command. Caller holds m.mu.
func (m *member) commitBRAM(mv float64) error {
	prev := m.bramOpMV()
	m.setBRAMOpMV(mv)
	if err := m.setVCCBRAM(mv); err != nil {
		m.setBRAMOpMV(prev)
		return err
	}
	return nil
}

// canarySignal is one probe pass's split error signal: MAC events for
// the VCCINT loop, raw BRAM flip events and the SECDED outcome split for
// the VCCBRAM loop.
type canarySignal struct {
	mac     int64
	bramRaw int64
	ecc     ecc.Counts
}

// harmfulBRAM returns the BRAM events that corrupt consumed data at the
// probed point: every raw flip unprotected, only the uncorrectable and
// silent words under SECDED.
func (s canarySignal) harmfulBRAM(protected bool) int64 {
	if protected {
		return s.ecc.Bad()
	}
	return s.bramRaw
}

// probeCanary classifies the canary set with VCCINT at targetMV and
// restores the serving rail level before returning. Caller holds m.mu.
func (m *member) probeCanary(targetMV float64, seed int64) (canarySignal, error) {
	if err := m.setVCCINT(targetMV); err != nil {
		return canarySignal{}, err
	}
	// The VCCINT decision needs the MAC signal only; stop once it is
	// decided.
	sig, err := m.canaryScan(seed, func(s canarySignal) bool {
		return s.mac >= governClimbFaults
	})
	if rerr := m.setVCCINT(m.opMV()); rerr != nil && err == nil {
		err = rerr
	}
	return sig, err
}

// probeBRAM classifies the canary set with VCCBRAM at targetMV (VCCINT
// stays at the serving point) and restores the BRAM rail before
// returning. Caller holds m.mu.
func (m *member) probeBRAM(targetMV float64, seed int64, cfg GovernorConfig) (canarySignal, error) {
	if err := m.setVCCBRAM(targetMV); err != nil {
		return canarySignal{}, err
	}
	prot := m.prot.Enabled()
	// Stop once the BRAM decision is forced: harmful events at the
	// climb threshold, or a corrected-rate already past the budget.
	sig, err := m.canaryScan(seed, func(s canarySignal) bool {
		return s.harmfulBRAM(prot) >= governClimbFaults ||
			(prot && s.ecc.Corrected > cfg.CorrectedBudget)
	})
	if rerr := m.setVCCBRAM(m.bramOpMV()); rerr != nil && err == nil {
		err = rerr
	}
	return sig, err
}

// canaryScan runs the canary set at the present conditions, summing the
// split error signal. The governor needs an error signal, not accuracy,
// so the scan short-circuits twice: a fault-free electrical region skips
// the pass entirely (probability is exactly zero there), and a faulting
// scan stops as soon as the caller's stop predicate says the decision is
// forced. Caller holds m.mu.
func (m *member) canaryScan(seed int64, stop func(canarySignal) bool) (canarySignal, error) {
	var sig canarySignal
	if err := m.brd.CheckAlive(); err != nil {
		return sig, err
	}
	cond := m.brd.Conditions()
	fab := m.brd.Fabric()
	if fab.MACFaultProb(cond) == 0 && fab.BRAMBitFaultProb(cond) == 0 {
		return sig, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for _, img := range m.gov.probe.Inputs {
		res, err := m.task.RunWith(m.scratch, img, rng)
		if err != nil {
			return sig, err
		}
		sig.mac += res.MACFaults
		sig.bramRaw += res.BRAMFaults
		sig.ecc.Add(res.ECC)
		if stop(sig) {
			break
		}
	}
	return sig, nil
}

// governBRAM is the VCCBRAM control phase: a confirmation-gated descent
// toward the deepest level whose canary signal stays acceptable. The
// BRAM fault law has no thermal term, so a bounded descent settles for
// good; only harmful events in served traffic re-open the seek. Caller
// holds m.mu.
func (p *Pool) governBRAM(m *member, cfg GovernorConfig) {
	g := m.gov
	prot := m.prot.Enabled()
	ceil := silicon.VnomMV
	floor := cfg.BRAMFloorMV
	op := m.bramOpMV()

	// Harmful events in served traffic climb immediately, exactly like
	// the VCCINT loop's served-fault path.
	if sb := m.servedBRAM.Swap(0); sb > 0 {
		g.bramUnsettle()
		next, act := dvfs.Plan(op, sb, cfg.BRAMStepMV, cfg.BRAMMarginMV, floor, ceil)
		switch {
		case act != dvfs.ActionUp:
			g.note(fmt.Sprintf("bram: at ceiling %.0f mV despite %d harmful served events", op, sb))
		case m.commitBRAM(next) != nil:
			g.note(fmt.Sprintf("bram: rail command to %.0f mV failed; holding %.0f mV", next, op))
		default:
			g.setBRAMCleanMV(next - cfg.BRAMMarginMV)
			g.bramClimbs.Add(1)
			m.event(obs.EvGovBRAMClimb, next, fmt.Sprintf("%d harmful events in served traffic", sb))
			g.note(fmt.Sprintf("bram: climbed to %.0f mV: %d harmful events in served traffic", next, sb))
		}
		return
	}
	if g.bramSettled {
		return
	}

	candidate, act := dvfs.Plan(g.bramCleanMV, 0, cfg.BRAMStepMV, cfg.BRAMMarginMV, floor, ceil)
	if act != dvfs.ActionDown {
		// The descent hit the floor: the operating point was confirmed
		// clean on the way down, so quiesce (zero further probe
		// overhead) after the same evidence a descent needs.
		g.bramBound++
		if g.bramBound >= cfg.ConfirmProbes {
			g.bramSettle()
			g.note(fmt.Sprintf("bram: settled at %.0f mV (floor %.0f mV)", op, floor))
		}
		return
	}

	sig, err := m.probeBRAM(candidate, cfg.Seed^0x6cc+int64(m.idx)*1_000_003+g.ticks, cfg)
	g.bramProbes.Add(1)
	if err != nil {
		g.note("bram probe error: " + err.Error())
		return
	}
	g.canaryCorrected.Add(sig.ecc.Corrected)
	bad := sig.harmfulBRAM(prot)
	overBudget := prot && sig.ecc.Corrected > cfg.CorrectedBudget
	m.event(obs.EvGovBRAMProbe, candidate,
		fmt.Sprintf("harmful=%d corrected=%d", bad, sig.ecc.Corrected))

	switch {
	case bad == 0 && !overBudget:
		g.bramBound = 0
		g.bramStreak++
		if g.bramStreak < cfg.ConfirmProbes {
			g.note(fmt.Sprintf("bram: confirming %.0f mV: clean %d/%d (%d corrected)",
				candidate, g.bramStreak, cfg.ConfirmProbes, sig.ecc.Corrected))
			return
		}
		g.bramStreak = 0
		if err := m.commitBRAM(math.Min(candidate+cfg.BRAMMarginMV, ceil)); err != nil {
			g.note("bram: rail command failed: " + err.Error())
			return
		}
		g.setBRAMCleanMV(candidate)
		g.bramDescents.Add(1)
		m.event(obs.EvGovBRAMDescent, m.bramOpMV(),
			fmt.Sprintf("canary acceptable at %.0f mV (%d corrected)", candidate, sig.ecc.Corrected))
		g.note(fmt.Sprintf("bram: descended, canary acceptable at %.0f mV (%d corrected)",
			candidate, sig.ecc.Corrected))
	default:
		g.canaryBad.Add(bad)
		g.bramStreak = 0
		g.bramBound++
		if g.bramBound >= cfg.ConfirmProbes {
			g.bramSettle()
			g.note(fmt.Sprintf("bram: settled at %.0f mV (candidate %.0f mV: %d harmful, %d corrected)",
				op, candidate, bad, sig.ecc.Corrected))
			return
		}
		g.note(fmt.Sprintf("bram: held, candidate %.0f mV unacceptable (%d harmful, %d corrected), boundary %d/%d",
			candidate, bad, sig.ecc.Corrected, g.bramBound, cfg.ConfirmProbes))
	}
}
