package fleet

import (
	"math"

	"fpgauv/internal/quant"
)

// BoardGovernorStatus is one board's adaptive-voltage control state.
type BoardGovernorStatus struct {
	// Enabled mirrors the pool-wide governor switch.
	Enabled bool `json:"enabled"`
	// BaselineMV is the static startup operating point the governor
	// descends from (and measures savings against).
	BaselineMV float64 `json:"baseline_mv"`
	// CleanMV is the deepest level where the canary probed clean; the
	// operating point is CleanMV plus the configured margin.
	CleanMV float64 `json:"clean_mv"`
	// FloorMV is the deepest level the loop may command (Vcrash plus
	// the floor margin).
	FloorMV float64 `json:"floor_mv"`
	// Settled reports that the loop has quiesced at its point and pays
	// no probe overhead until the thermal conditions move.
	Settled bool `json:"settled"`
	// LastAction describes the loop's most recent decision.
	LastAction string `json:"last_action"`
	// Probes/Climbs/Descents/CanaryFaults are lifetime loop counters.
	Probes       int64 `json:"probes"`
	Climbs       int64 `json:"climbs"`
	Descents     int64 `json:"descents"`
	CanaryFaults int64 `json:"canary_faults"`
	// SavedW is the modeled power saved right now versus parking at
	// BaselineMV; SavedJ integrates it over the loop's lifetime.
	SavedW float64 `json:"saved_w"`
	SavedJ float64 `json:"saved_j"`
	// BRAM reports the VCCBRAM loop (zero-valued when BRAM governing is
	// off).
	BRAM BoardBRAMGovernorStatus `json:"bram"`
}

// BoardBRAMGovernorStatus is one board's VCCBRAM control state.
type BoardBRAMGovernorStatus struct {
	// CleanMV is the deepest VCCBRAM level whose canary signal stayed
	// acceptable; the operating point is CleanMV plus the BRAM margin.
	CleanMV float64 `json:"clean_mv"`
	// FloorMV bounds the descent.
	FloorMV float64 `json:"floor_mv"`
	// Settled reports the loop has quiesced (the BRAM fault law has no
	// thermal term; only served harmful events re-open the seek).
	Settled bool `json:"settled"`
	// Probes/Climbs/Descents are lifetime loop counters.
	Probes   int64 `json:"probes"`
	Climbs   int64 `json:"climbs"`
	Descents int64 `json:"descents"`
	// CanaryCorrected counts tolerated corrected words in BRAM probes
	// (the ECC-aware mode's leading indicator); CanaryBad the harmful
	// events that bounded the descent.
	CanaryCorrected int64 `json:"canary_corrected"`
	CanaryBad       int64 `json:"canary_bad"`
}

// GovernorStatus is the pool-wide governor snapshot.
type GovernorStatus struct {
	Enabled       bool    `json:"enabled"`
	IntervalMS    float64 `json:"interval_ms"`
	StepMV        float64 `json:"step_mv"`
	MarginMV      float64 `json:"margin_mv"`
	FloorMarginMV float64 `json:"floor_margin_mv"`
	ProbeImages   int     `json:"probe_images"`
	ConfirmProbes int     `json:"confirm_probes"`
	VerifyEvery   int     `json:"verify_every"`
	RetestDeltaC  float64 `json:"retest_delta_c"`
	// BRAM mirrors the VCCBRAM loop configuration (see GovernorConfig).
	BRAM            bool    `json:"bram"`
	BRAMStepMV      float64 `json:"bram_step_mv"`
	BRAMMarginMV    float64 `json:"bram_margin_mv"`
	BRAMFloorMV     float64 `json:"bram_floor_mv"`
	CorrectedBudget int64   `json:"corrected_budget"`
	// Aggregates across all boards.
	Probes       int64 `json:"probes"`
	Climbs       int64 `json:"climbs"`
	Descents     int64 `json:"descents"`
	CanaryFaults int64 `json:"canary_faults"`
	// BRAMProbes/BRAMClimbs/BRAMDescents aggregate the VCCBRAM loops.
	BRAMProbes   int64   `json:"bram_probes"`
	BRAMClimbs   int64   `json:"bram_climbs"`
	BRAMDescents int64   `json:"bram_descents"`
	SavedW       float64 `json:"saved_w"`
	SavedJ       float64 `json:"saved_j"`
}

// BoardStatus is one board's health and telemetry snapshot.
type BoardStatus struct {
	// Board is the pool-unique id ("platform-A#0").
	Board string `json:"board"`
	// Sample is the silicon sample ("platform-A").
	Sample string `json:"sample"`
	// State is "healthy", "recovering" or "hung".
	State string `json:"state"`
	// VCCINTmV is the live rail level; OperatingMV is the steady-state
	// target inside the guardband.
	VCCINTmV    float64 `json:"vccint_mv"`
	OperatingMV float64 `json:"operating_mv"`
	// VCCBRAMmV is the live BRAM rail level; OperatingBRAMMV its
	// steady-state target (nominal unless the ECC-aware governor walked
	// it down).
	VCCBRAMmV       float64 `json:"vccbram_mv"`
	OperatingBRAMMV float64 `json:"operating_bram_mv"`
	// VminMV/VcrashMV are the board's measured characterization.
	VminMV   float64 `json:"vmin_mv"`
	VcrashMV float64 `json:"vcrash_mv"`
	// GuardbandMV is Vnom - Vmin (the paper's headline ~280 mV).
	GuardbandMV float64 `json:"guardband_mv"`
	// TempC is the present die temperature.
	TempC float64 `json:"temp_c"`
	// PowerW/VCCINTW/VCCBRAMW decompose the present on-chip power.
	PowerW   float64 `json:"power_w"`
	VCCINTW  float64 `json:"vccint_w"`
	VCCBRAMW float64 `json:"vccbram_w"`
	// GOPs and GOPsPerW are the modeled throughput and efficiency at
	// the present operating point.
	GOPs     float64 `json:"gops"`
	GOPsPerW float64 `json:"gops_per_w"`
	// Served/Retries/Crashes/Reboots/Redeploys are lifetime counters.
	Served    int64 `json:"served"`
	Retries   int64 `json:"retries"`
	Crashes   int64 `json:"crashes"`
	Reboots   int   `json:"reboots"`
	Redeploys int64 `json:"redeploys"`
	// Health is the scorer's grade ("ok", "watch" or "degraded") and
	// HealthScore its 0-100 score — margin regression (Vmin drift,
	// rising corrected-ECC, crash clusters) surfaces here first.
	Health      string  `json:"health"`
	HealthScore float64 `json:"health_score"`
	// Governor is the board's adaptive-voltage control state (nil when
	// the pool has no governor).
	Governor *BoardGovernorStatus `json:"governor,omitempty"`
	// ECC is the board's BRAM SECDED protection and scrubbing snapshot.
	ECC *BoardECCStatus `json:"ecc,omitempty"`
}

// ClusterStatus is the router tier's snapshot, present on Status only
// when the scheduler is a multi-pool cluster.
type ClusterStatus struct {
	// Pools is one routing-level entry per pool, spares included, in
	// stable index order.
	Pools []PoolRouteStatus `json:"pools"`
	// ActivePools/SparePools split the pool set by activation state.
	ActivePools int `json:"active_pools"`
	SparePools  int `json:"spare_pools"`
	// Routes counts dispatch decisions; Hops counts shed-and-retry
	// handoffs to the next candidate pool.
	Routes int64 `json:"routes"`
	Hops   int64 `json:"hops"`
	// Sheds counts requests the router refused outright (every
	// candidate pool saturated); SpareActivations counts warm spares
	// promoted to active.
	Sheds            int64 `json:"sheds"`
	SpareActivations int64 `json:"spare_activations"`
}

// PoolRouteStatus is one pool as the router sees it.
type PoolRouteStatus struct {
	// Pool is the pool's configured name.
	Pool string `json:"pool"`
	// Active is false for a warm spare that has not been promoted.
	Active bool `json:"active"`
	Boards int  `json:"boards"`
	// Queued/InFlight/MaxQueue are the pool's live admission signals.
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	MaxQueue int `json:"max_queue"`
	// Routes counts requests dispatched to this pool; Sheds counts
	// attempts refused here (router pre-check or pool admission).
	Routes int64 `json:"routes"`
	Sheds  int64 `json:"sheds"`
	// Quiescent is the pool's settled-board count (the latency-SLO
	// routing signal) and PowerW its modeled accelerator power at the
	// present rails (the bulk-traffic cost signal).
	Quiescent int     `json:"quiescent_boards"`
	PowerW    float64 `json:"power_w"`
	// Degraded is the pool's degraded-board count per the health scorer
	// (the router's candidate-ordering penalty signal).
	Degraded int `json:"degraded_boards"`
}

// Status is a whole-pool snapshot.
type Status struct {
	// Pool names the scheduler that produced the snapshot ("pool" for an
	// unnamed single pool, "cluster" for a router aggregate).
	Pool      string `json:"pool"`
	Benchmark string `json:"benchmark"`
	// Sparsity is the deployed kernels' pruned-away weight fraction
	// (0 = dense); Backend the compute backend they were compiled for
	// ("dense" or "sparse" — the result of auto selection, not the
	// requested mode).
	Sparsity float64       `json:"sparsity"`
	Backend  string        `json:"backend"`
	Boards   []BoardStatus `json:"boards"`
	Queued   int           `json:"queued"`
	// InFlight is the number of jobs executing on boards right now;
	// MaxQueue the admission bound (0 = unbounded) and Shed the
	// requests refused with ErrSaturated since startup.
	InFlight int   `json:"in_flight"`
	MaxQueue int   `json:"max_queue"`
	Shed     int64 `json:"shed"`
	// Requests/Served span both job kinds; the eval/infer splits below
	// partition them by traffic class.
	Requests int64 `json:"requests"`
	Served   int64 `json:"served"`
	// EvalRequests/EvalServed count whole evaluation-set passes
	// (characterization and accuracy traffic).
	EvalRequests int64 `json:"eval_requests"`
	EvalServed   int64 `json:"eval_served"`
	// InferRequests/InferServed count caller-image inference jobs;
	// InferImages is the images classified and InferMicroBatches the
	// accelerator passes they were amortized across.
	InferRequests     int64 `json:"infer_requests"`
	InferServed       int64 `json:"infer_served"`
	InferImages       int64 `json:"infer_images"`
	InferMicroBatches int64 `json:"infer_micro_batches"`
	Requeues          int64 `json:"requeues"`
	Rejected          int64 `json:"rejected"`
	Failed            int64 `json:"failed"`
	// Canceled counts jobs whose caller abandoned the wait before a
	// worker picked them up; workers skip them without an accelerator
	// pass.
	Canceled  int64 `json:"canceled"`
	Crashes   int64 `json:"crashes"`
	Reboots   int   `json:"reboots"`
	Redeploys int64 `json:"redeploys"`
	MACFaults int64 `json:"mac_faults"`
	// BRAMFaults counts injected BRAM bit flips across all served work.
	BRAMFaults int64 `json:"bram_faults"`
	// GOPs is the aggregate modeled throughput of all boards.
	GOPs float64 `json:"gops"`
	// GemmWorkers is the effective width of the process-wide GEMM tile
	// worker pool (shared by conv macro-tiles and batch lanes).
	GemmWorkers int `json:"gemm_workers"`
	// Governor is the pool-wide adaptive-voltage snapshot (nil when
	// the pool has no governor).
	Governor *GovernorStatus `json:"governor,omitempty"`
	// ECC is the pool-wide BRAM protection snapshot.
	ECC    *ECCStatus `json:"ecc,omitempty"`
	Closed bool       `json:"closed"`
	// Cluster is the router tier's view (nil for a single pool).
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// Status snapshots the pool without blocking the serving path: counters
// are atomics and board telemetry is internally synchronized, so a
// snapshot can be taken while every board is mid-classification.
func (p *Pool) Status() Status {
	st := Status{
		Pool:              p.Name(),
		Benchmark:         p.cfg.Benchmark,
		Queued:            p.queue.Len(),
		InFlight:          int(p.inFlight.Load()),
		MaxQueue:          p.cfg.MaxQueue,
		Shed:              p.shed.Load(),
		EvalRequests:      p.evalReqs.Load(),
		EvalServed:        p.evalServed.Load(),
		InferRequests:     p.inferReqs.Load(),
		InferServed:       p.inferServed.Load(),
		InferImages:       p.inferImages.Load(),
		InferMicroBatches: p.microBatches.Load(),
		Requeues:          p.requeues.Load(),
		Rejected:          p.rejected.Load(),
		Failed:            p.failed.Load(),
		Canceled:          p.canceled.Load(),
		MACFaults:         p.macF.Load(),
		BRAMFaults:        p.bramF.Load(),
		GemmWorkers:       quant.Workers(),
		Closed:            p.closing.Load(),
	}
	st.Requests = st.EvalRequests + st.InferRequests
	st.Served = st.EvalServed + st.InferServed
	if len(p.members) > 0 {
		// Every member deploys the same kernel configuration, so the
		// first board's compiled kernel speaks for the pool.
		k := p.members[0].kernel
		st.Sparsity = k.Sparsity
		st.Backend = k.BackendName()
	}
	for _, m := range p.members {
		b := p.boardStatus(m)
		st.Boards = append(st.Boards, b)
		st.Crashes += b.Crashes
		st.Reboots += b.Reboots
		st.Redeploys += b.Redeploys
		st.GOPs += b.GOPs
	}
	st.Governor = p.governorSummary(st.Boards)
	st.ECC = p.eccSummary(st.Boards)
	return st
}

// governorSummary aggregates already-computed per-board governor
// snapshots into the pool-wide view (nil when the pool has no
// governor). Aggregating from the board snapshots keeps each Status
// call down to one power-model evaluation pair per board.
func (p *Pool) governorSummary(boards []BoardStatus) *GovernorStatus {
	if p.gov == nil {
		return nil
	}
	cfg := p.gov.config()
	gs := &GovernorStatus{
		Enabled:         p.gov.enabled.Load(),
		IntervalMS:      float64(cfg.Interval.Microseconds()) / 1000,
		StepMV:          cfg.StepMV,
		MarginMV:        cfg.MarginMV,
		FloorMarginMV:   cfg.FloorMarginMV,
		ProbeImages:     cfg.ProbeImages,
		ConfirmProbes:   cfg.ConfirmProbes,
		VerifyEvery:     cfg.VerifyEvery,
		RetestDeltaC:    cfg.RetestDeltaC,
		BRAM:            cfg.BRAM,
		BRAMStepMV:      cfg.BRAMStepMV,
		BRAMMarginMV:    cfg.BRAMMarginMV,
		BRAMFloorMV:     cfg.BRAMFloorMV,
		CorrectedBudget: cfg.CorrectedBudget,
	}
	for _, b := range boards {
		if b.Governor == nil {
			continue
		}
		gs.Probes += b.Governor.Probes
		gs.Climbs += b.Governor.Climbs
		gs.Descents += b.Governor.Descents
		gs.CanaryFaults += b.Governor.CanaryFaults
		gs.BRAMProbes += b.Governor.BRAM.Probes
		gs.BRAMClimbs += b.Governor.BRAM.Climbs
		gs.BRAMDescents += b.Governor.BRAM.Descents
		gs.SavedW += b.Governor.SavedW
		gs.SavedJ += b.Governor.SavedJ
	}
	return gs
}

// GovernorStatus snapshots the pool's adaptive-voltage state, or nil
// when the pool has no governor.
func (p *Pool) GovernorStatus() *GovernorStatus {
	return p.Status().Governor
}

// boardStatus snapshots one member.
func (p *Pool) boardStatus(m *member) BoardStatus {
	pb := m.brd.PowerBreakdown()
	gops := m.kernel.GOPs(m.rt.DPU().Cores(), m.brd.FrequencyMHz())
	b := BoardStatus{
		Board:           m.id,
		Sample:          m.brd.Sample().String(),
		State:           m.stateName(),
		VCCINTmV:        m.brd.VCCINTmV(),
		OperatingMV:     m.opMV(),
		VCCBRAMmV:       m.brd.VCCBRAMmV(),
		OperatingBRAMMV: m.bramOpMV(),
		VminMV:          m.regions.VminMV,
		VcrashMV:        m.regions.VcrashMV,
		GuardbandMV:     m.regions.GuardbandMV(),
		TempC:           m.brd.DieTempC(),
		PowerW:          pb.TotalW,
		VCCINTW:         pb.VCCINTW,
		VCCBRAMW:        pb.VCCBRAMW,
		GOPs:            gops,
		Served:          m.served.Load(),
		Retries:         m.retries.Load(),
		Crashes:         m.crashes.Load(),
		Reboots:         m.brd.Reboots(),
		Redeploys:       m.redeploy.Load(),
	}
	if pb.TotalW > 0 {
		b.GOPsPerW = gops / pb.TotalW
	}
	if p.telem != nil {
		h := p.boardHealth(m)
		b.Health = h.State
		b.HealthScore = h.Score
	}
	if m.gov != nil && p.gov != nil {
		cfg := p.gov.config()
		saved := m.brd.PowerBreakdownAt(m.staticMV).TotalW - pb.TotalW
		if saved < 0 {
			saved = 0
		}
		b.Governor = &BoardGovernorStatus{
			Enabled:      p.gov.enabled.Load(),
			BaselineMV:   m.staticMV,
			CleanMV:      math.Float64frombits(m.gov.cleanBits.Load()),
			FloorMV:      governFloorMV(m, cfg),
			Settled:      m.gov.settledFlag.Load(),
			LastAction:   m.gov.lastAction(),
			Probes:       m.gov.probes.Load(),
			Climbs:       m.gov.climbs.Load(),
			Descents:     m.gov.descents.Load(),
			CanaryFaults: m.gov.canaryFaults.Load(),
			SavedW:       saved,
			SavedJ:       m.gov.savedJ(),
		}
		if cfg.BRAM {
			b.Governor.BRAM = BoardBRAMGovernorStatus{
				CleanMV:         math.Float64frombits(m.gov.bramCleanBits.Load()),
				FloorMV:         cfg.BRAMFloorMV,
				Settled:         m.gov.bramSettledF.Load(),
				Probes:          m.gov.bramProbes.Load(),
				Climbs:          m.gov.bramClimbs.Load(),
				Descents:        m.gov.bramDescents.Load(),
				CanaryCorrected: m.gov.canaryCorrected.Load(),
				CanaryBad:       m.gov.canaryBad.Load(),
			}
		}
	}
	b.ECC = m.boardECCStatus()
	return b
}
