package fleet

// BoardStatus is one board's health and telemetry snapshot.
type BoardStatus struct {
	// Board is the pool-unique id ("platform-A#0").
	Board string `json:"board"`
	// Sample is the silicon sample ("platform-A").
	Sample string `json:"sample"`
	// State is "healthy", "recovering" or "hung".
	State string `json:"state"`
	// VCCINTmV is the live rail level; OperatingMV is the steady-state
	// target inside the guardband.
	VCCINTmV    float64 `json:"vccint_mv"`
	OperatingMV float64 `json:"operating_mv"`
	// VminMV/VcrashMV are the board's measured characterization.
	VminMV   float64 `json:"vmin_mv"`
	VcrashMV float64 `json:"vcrash_mv"`
	// GuardbandMV is Vnom - Vmin (the paper's headline ~280 mV).
	GuardbandMV float64 `json:"guardband_mv"`
	// TempC is the present die temperature.
	TempC float64 `json:"temp_c"`
	// PowerW/VCCINTW/VCCBRAMW decompose the present on-chip power.
	PowerW   float64 `json:"power_w"`
	VCCINTW  float64 `json:"vccint_w"`
	VCCBRAMW float64 `json:"vccbram_w"`
	// GOPs and GOPsPerW are the modeled throughput and efficiency at
	// the present operating point.
	GOPs     float64 `json:"gops"`
	GOPsPerW float64 `json:"gops_per_w"`
	// Served/Retries/Crashes/Reboots/Redeploys are lifetime counters.
	Served    int64 `json:"served"`
	Retries   int64 `json:"retries"`
	Crashes   int64 `json:"crashes"`
	Reboots   int   `json:"reboots"`
	Redeploys int64 `json:"redeploys"`
}

// Status is a whole-pool snapshot.
type Status struct {
	Benchmark string        `json:"benchmark"`
	Boards    []BoardStatus `json:"boards"`
	Queued    int           `json:"queued"`
	Requests  int64         `json:"requests"`
	Served    int64         `json:"served"`
	Requeues  int64         `json:"requeues"`
	Rejected  int64         `json:"rejected"`
	Failed    int64         `json:"failed"`
	Crashes   int64         `json:"crashes"`
	Reboots   int           `json:"reboots"`
	Redeploys int64         `json:"redeploys"`
	MACFaults int64         `json:"mac_faults"`
	// BRAMFaults counts injected BRAM bit flips across all served work.
	BRAMFaults int64 `json:"bram_faults"`
	// GOPs is the aggregate modeled throughput of all boards.
	GOPs   float64 `json:"gops"`
	Closed bool    `json:"closed"`
}

// Status snapshots the pool without blocking the serving path: counters
// are atomics and board telemetry is internally synchronized, so a
// snapshot can be taken while every board is mid-classification.
func (p *Pool) Status() Status {
	st := Status{
		Benchmark:  p.cfg.Benchmark,
		Queued:     p.queue.Len(),
		Requests:   p.requests.Load(),
		Served:     p.served.Load(),
		Requeues:   p.requeues.Load(),
		Rejected:   p.rejected.Load(),
		Failed:     p.failed.Load(),
		MACFaults:  p.macF.Load(),
		BRAMFaults: p.bramF.Load(),
		Closed:     p.closing.Load(),
	}
	for _, m := range p.members {
		b := p.boardStatus(m)
		st.Boards = append(st.Boards, b)
		st.Crashes += b.Crashes
		st.Reboots += b.Reboots
		st.Redeploys += b.Redeploys
		st.GOPs += b.GOPs
	}
	return st
}

// boardStatus snapshots one member.
func (p *Pool) boardStatus(m *member) BoardStatus {
	pb := m.brd.PowerBreakdown()
	gops := m.kernel.GOPs(m.rt.DPU().Cores(), m.brd.FrequencyMHz())
	b := BoardStatus{
		Board:       m.id,
		Sample:      m.brd.Sample().String(),
		State:       m.stateName(),
		VCCINTmV:    m.brd.VCCINTmV(),
		OperatingMV: m.opMV(),
		VminMV:      m.regions.VminMV,
		VcrashMV:    m.regions.VcrashMV,
		GuardbandMV: m.regions.GuardbandMV(),
		TempC:       m.brd.DieTempC(),
		PowerW:      pb.TotalW,
		VCCINTW:     pb.VCCINTW,
		VCCBRAMW:    pb.VCCBRAMW,
		GOPs:        gops,
		Served:      m.served.Load(),
		Retries:     m.retries.Load(),
		Crashes:     m.crashes.Load(),
		Reboots:     m.brd.Reboots(),
		Redeploys:   m.redeploy.Load(),
	}
	if pb.TotalW > 0 {
		b.GOPsPerW = gops / pb.TotalW
	}
	return b
}
