package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Regression for the unlocked rail mutation: SetVCCINTmV must take the
// member lock like every other accelerator operation, so hammering it
// against concurrent Classify traffic (and the health monitor) is safe
// under -race and cannot interleave with a worker's recover sequence.
func TestSetVCCINTRacesWithClassify(t *testing.T) {
	cfg := testConfig(3)
	cfg.Images = 4
	cfg.MonitorInterval = 2 * time.Millisecond
	p := newTestPool(t, cfg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := p.Classify(context.Background(), Request{}); err != nil {
					t.Errorf("classify: %v", err)
				}
			}
		}(g)
	}
	// The hammer: raw rail moves on every board, alternating between a
	// safe underscaled level and a crash-inducing one, racing the
	// serving path the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			mv := 600.0
			if i%3 == 2 {
				mv = 500 // below every Vcrash: induced crash
			}
			if err := p.SetVCCINTmV(i%3, mv); err != nil {
				t.Errorf("set vccint: %v", err)
			}
		}
	}()
	wg.Wait()

	if st := p.Status(); st.Served != 32 {
		t.Errorf("served = %d, want 32 (no request lost under the rail hammer)", st.Served)
	}
}

// Regression for the deterministic crash-replay bug: the first attempt
// must reproduce the request's pinned fault stream exactly, and every
// retry ordinal must derive a different stream — otherwise a retry
// deterministically replays whatever fault pattern just wrecked the
// pass.
func TestClassifyRNGSaltsRetries(t *testing.T) {
	const seed = 42
	draw := func(attempt int64) [4]int64 {
		rng := classifyRNG(seed, attempt)
		return [4]int64{rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63()}
	}

	// Attempt 0 is the documented legacy stream (pinned-seed callers
	// rely on it).
	legacy := classifyRNG(seed, 0)
	want := draw(0)
	_ = legacy
	for i, g := range want {
		if i > 0 && g == want[0] {
			t.Fatal("degenerate stream")
		}
	}

	// Every retry ordinal yields a distinct stream, and none replays
	// attempt 0.
	seen := map[[4]int64]int64{want: 0}
	for attempt := int64(1); attempt <= 6; attempt++ {
		d := draw(attempt)
		if prev, dup := seen[d]; dup {
			t.Fatalf("attempt %d replays the fault stream of attempt %d", attempt, prev)
		}
		seen[d] = attempt
	}

	// And the derivation is deterministic per (seed, attempt): a
	// requeued job on another board retries the same ordinal stream.
	if draw(3) != draw(3) {
		t.Fatal("derivation not deterministic")
	}
}

// A pinned-seed request whose board crashes mid-pass must recover via
// the salted retry: reboot, re-deploy, restore the operating point, and
// serve — with the attempt accounted.
func TestCrashRetryRecoversPinnedSeed(t *testing.T) {
	cfg := testConfig(1)
	cfg.MonitorInterval = -1
	p := newTestPool(t, cfg)

	// Crash the board while idle; the pinned-seed request that follows
	// rides out detect → reboot → re-deploy → retry on the same board.
	if err := p.SetVCCINTmV(0, 500); err != nil {
		t.Fatal(err)
	}
	res, err := p.Classify(context.Background(), Request{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.AccuracyPct <= 0 {
		t.Errorf("accuracy = %.1f after recovery", res.AccuracyPct)
	}
	st := p.Status()
	if st.Crashes < 1 || st.Redeploys < 1 {
		t.Errorf("crash not healed through the serving path: %+v", st)
	}
	if !nearMV(st.Boards[0].VCCINTmV, st.Boards[0].OperatingMV) {
		t.Errorf("operating point not restored: %.1f vs %.0f", st.Boards[0].VCCINTmV, st.Boards[0].OperatingMV)
	}
}

// Regression for the abandoned-job bug: a Classify caller that cancels
// while its job is still queued must not cost a worker an
// evaluation-set pass or inflate the served count.
func TestCanceledJobSkippedByWorkers(t *testing.T) {
	p := newTestPool(t, testConfig(1))
	m := p.members[0]

	// Pin the only board: with the member lock held, push a blocking
	// job straight into the queue. The single worker claims it (the
	// queue drains to 0) and parks on the member lock, so every later
	// job stays queued until we release the board.
	m.mu.Lock()
	blocker := &job{req: Request{Seed: 5}, done: make(chan jobOut, 1)}
	p.queue.Push(blocker)
	deadline := time.Now().Add(5 * time.Second)
	for p.queue.Len() != 0 {
		if time.Now().After(deadline) {
			m.mu.Unlock()
			t.Fatal("blocking job never claimed")
		}
		time.Sleep(time.Millisecond)
	}

	// A real caller queues a job, then goes away while it is queued.
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := p.Classify(ctx, Request{})
		abandoned <- err
	}()
	for p.queue.Len() != 1 {
		if time.Now().After(deadline) {
			m.mu.Unlock()
			t.Fatal("abandoned job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		m.mu.Unlock()
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Release the board: the worker finishes the blocker and must skip
	// the abandoned job instead of burning a pass on it.
	m.mu.Unlock()
	if out := <-blocker.done; out.err != nil {
		t.Fatal(out.err)
	}
	// A live request proves the worker moved past the canceled job.
	if _, err := p.Classify(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.Served != 2 {
		t.Errorf("served = %d, want 2 (the canceled job must not be served)", st.Served)
	}
	if st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
	if got := m.served.Load(); got != 2 {
		t.Errorf("board served = %d, want 2", got)
	}
}
