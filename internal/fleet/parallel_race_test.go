package fleet

import (
	"context"
	"sync"
	"testing"

	"fpgauv/internal/quant"
)

// TestConcurrentClassifiesSharedGemmPool hammers the process-wide GEMM
// tile worker pool from many directions at once: the pool is pinned
// wider than one, several boards serve concurrently (each batch fans
// its lanes into the shared pool, and every lane's tiled GEMMs fan out
// again), and classify/infer traffic arrives from many caller
// goroutines. Under -race this proves tile jobs from unrelated requests
// never share mutable state — disjoint dst tiles, refcounted job
// recycling, and per-lane arena scratch all hold up under
// oversubscription.
func TestConcurrentClassifiesSharedGemmPool(t *testing.T) {
	defer quant.SetWorkers(0)
	quant.SetWorkers(4)
	p := newTestPool(t, testConfig(2))
	imgs := inferImages(t, p, 8, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 4; n++ {
				if g%2 == 0 {
					if _, err := p.Classify(context.Background(), Request{Seed: int64(1 + (g+n)%3)}); err != nil {
						t.Errorf("classify: %v", err)
						return
					}
				} else {
					if _, err := p.Infer(context.Background(), InferRequest{Images: imgs}); err != nil {
						t.Errorf("infer: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Status()
	if st.GemmWorkers != 4 {
		t.Fatalf("Status().GemmWorkers = %d, want 4", st.GemmWorkers)
	}
	if st.Served == 0 {
		t.Fatal("no requests served")
	}
}
