package fleet

import "sync"

// workQueue is the pool's FIFO of pending classification jobs. New
// admissions may be depth-bounded (TryPush), but requeues always land
// (Push): the no-lost-work guarantee requires that a crashed board can
// hand its in-flight job back to the queue without blocking or dropping
// it, so the bound applies only at the admission edge.
type workQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []*job
	// waiters counts workers blocked in Pop — the signal that a requeued
	// job can go to a different board than the one that just failed it.
	waiters int
	closed  bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a job. Pushes are accepted even after Close so that a
// worker can requeue a job it picked up during the drain; admission
// control for *new* work lives in Pool.submit.
func (q *workQueue) Push(j *job) {
	q.TryPush(j, 0)
}

// TryPush appends a job unless the backlog already holds max jobs
// (max <= 0: unbounded). The depth observed under the lock is returned
// either way, so a refused push can report how saturated the queue was.
// The check-and-append is atomic: two racing admissions cannot both
// squeeze past the same last slot.
func (q *workQueue) TryPush(j *job, max int) (depth int, ok bool) {
	q.mu.Lock()
	depth = len(q.items)
	if max > 0 && depth >= max {
		q.mu.Unlock()
		return depth, false
	}
	q.items = append(q.items, j)
	q.mu.Unlock()
	q.cond.Signal()
	return depth, true
}

// Pop blocks until a job is available or the queue is closed and fully
// drained. The second return is false only when no job will ever arrive.
//
// avoid is the calling board's id: a requeued job that this very board
// just failed is left for an idle peer when one is waiting, so the
// retry genuinely lands on different hardware. Without the affinity
// check the failing worker — already running hot — re-pops its own
// hand-off before the signaled peer can wake. When no peer is waiting
// the board takes its own retry rather than stall the caller.
func (q *workQueue) Pop(avoid string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		skipped := false
		for i, j := range q.items {
			if j.lastBoard == avoid && avoid != "" && q.waiters > 0 {
				skipped = true
				continue
			}
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return j, true
		}
		if len(q.items) == 0 && q.closed {
			return nil, false
		}
		q.waiters++
		if skipped {
			// Pass the wakeup on: the job this worker declined must
			// reach the waiting peer the skip deferred to.
			q.cond.Signal()
		}
		q.cond.Wait()
		q.waiters--
	}
}

// Len reports the present backlog.
func (q *workQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue as draining: Pop keeps returning queued jobs
// until empty, then reports done.
func (q *workQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
