package fleet

import "sync"

// workQueue is the pool's unbounded FIFO of pending classification jobs.
// Unbounded matters for the no-lost-work guarantee: a crashed board must
// always be able to hand its in-flight job back to the queue without
// blocking or dropping it.
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	closed bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a job. Pushes are accepted even after Close so that a
// worker can requeue a job it picked up during the drain; admission
// control for *new* work lives in Pool.Classify.
func (q *workQueue) Push(j *job) {
	q.mu.Lock()
	q.items = append(q.items, j)
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop blocks until a job is available or the queue is closed and fully
// drained. The second return is false only when no job will ever arrive.
func (q *workQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j, true
}

// Len reports the present backlog.
func (q *workQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue as draining: Pop keeps returning queued jobs
// until empty, then reports done.
func (q *workQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
