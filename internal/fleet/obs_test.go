package fleet

import (
	"context"
	"testing"

	"fpgauv/internal/obs"
)

// An injected double failure on one board drives the full recovery
// machinery and leaves a causal journal: crash → reboot → redeploy
// (the first failed attempt heals in place, the local retry's failure
// hands the job back) → requeue, with dense per-board sequence numbers.
// The caller's trace records one queue-wait span per board visit and
// one execute span per attempt.
func TestJournalAndTraceAcrossInjectedCrash(t *testing.T) {
	// One board keeps the schedule deterministic: the requeued job can
	// only land back on the same (now-healed) board.
	p, err := New(Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		Governor:        GovernorConfig{Interval: -1},
		ECC:             ECCConfig{ScrubInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	// Both execute attempts of the first visit fail; the job must
	// requeue and finish on the second visit.
	if err := p.InjectFailures(0, 2); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(8)
	tracer.SetEnabled(true)
	tr := tracer.Start("")
	res, err := p.Classify(context.Background(), Request{Seed: 42, Span: tr.Root()})
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (requeue must have happened)", res.Attempts)
	}

	// Trace: >= 2 fleet_wait spans (one per visit), >= 3 execute spans
	// (two failed attempts on the first visit, at least one more on the
	// second), one requeue.
	var waits, execs, requeues, failedExecs int
	for i := 0; i < tr.Len(); i++ {
		sp := tr.At(i)
		switch sp.Name() {
		case obs.StageFleetWait:
			waits++
			if sp.EndNS() == 0 {
				t.Errorf("fleet_wait span %d left open", i)
			}
		case obs.StageExecute:
			execs++
			if sp.Err != "" {
				failedExecs++
			}
			if sp.Board == "" || sp.VCCINTmV <= 0 {
				t.Errorf("execute span missing annotations: %+v", sp)
			}
		case obs.StageRequeue:
			requeues++
			if sp.Board == "" || sp.Err == "" {
				t.Errorf("requeue span missing annotations: %+v", sp)
			}
		}
	}
	if waits < 2 || execs < 3 || requeues != 1 || failedExecs != 2 {
		t.Errorf("span census: waits=%d execs=%d requeues=%d failed=%d", waits, execs, requeues, failedExecs)
	}

	// Journal: the board's chain must read crash → reboot → redeploy
	// (the first failed attempt heals in place) → requeue (the local
	// retry's failure returns the job to the queue) with dense BoardSeq
	// and increasing Seq.
	evs, _, gap := p.Journal().Since(0, 0)
	if gap {
		t.Fatal("journal gapped under a handful of events")
	}
	var b0 []obs.Event
	crashedBoard := ""
	for _, ev := range evs {
		if crashedBoard == "" && ev.Kind == obs.EvCrash {
			crashedBoard = ev.Board
		}
		if ev.Board == crashedBoard {
			b0 = append(b0, ev)
		}
	}
	wantKinds := []string{obs.EvCrash, obs.EvPostmortem, obs.EvReboot, obs.EvRedeploy, obs.EvRequeue}
	if len(b0) < len(wantKinds) {
		t.Fatalf("crashed board journal has %d events, want >= %d: %+v", len(b0), len(wantKinds), b0)
	}
	lastSeq := uint64(0)
	for i, want := range wantKinds {
		ev := b0[i]
		if ev.Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, want)
		}
		if ev.BoardSeq != uint64(i+1) {
			t.Errorf("event %d board_seq = %d, want %d", i, ev.BoardSeq, i+1)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if counts := p.Journal().Counts(); counts[obs.EvCrash] < 1 || counts[obs.EvRequeue] < 1 {
		t.Errorf("event counts = %v", counts)
	}
}

// Externally commanded rail moves land in the journal.
func TestJournalRailEvents(t *testing.T) {
	p, err := New(Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		Governor:        GovernorConfig{Interval: -1},
		ECC:             ECCConfig{ScrubInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if err := p.SetVCCINTmV(0, 600); err != nil {
		t.Fatal(err)
	}
	evs, _, _ := p.Journal().Since(0, 0)
	found := false
	for _, ev := range evs {
		if ev.Kind == obs.EvRailVCCINT && ev.MV == 600 {
			found = true
		}
	}
	if !found {
		t.Errorf("no rail_vccint event at 600 mV in %+v", evs)
	}
}

// An untraced request through the instrumented path records nothing and
// pays nothing (nil spans end to end).
func TestUntracedRequestRecordsNothing(t *testing.T) {
	p, err := New(Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		Governor:        GovernorConfig{Interval: -1},
		ECC:             ECCConfig{ScrubInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if _, err := p.Classify(context.Background(), Request{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	imgs := inferImages(t, p, 2, 11)
	if _, err := p.Infer(context.Background(), InferRequest{Images: imgs, Seed: 11}); err != nil {
		t.Fatal(err)
	}
}
