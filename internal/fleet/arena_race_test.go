package fleet

import (
	"context"
	"sync"
	"testing"
)

// TestArenaOwningWorkersRace hammers a pool whose boards are parked in
// the critical region — every request runs the arena-backed GEMM path —
// with one arena-owning worker per board and many concurrent callers.
// Under -race this proves the scratch arenas are never shared across
// goroutines; the per-(board, seed) determinism check proves scratch
// reuse never leaks state across requests (an aliasing bug would corrupt
// activations and change a repeat's accuracy or fault counts).
func TestArenaOwningWorkersRace(t *testing.T) {
	pool, err := New(Config{Boards: 3, Tiny: true, Images: 8, CharRepeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Pin die temperatures so the fault probability of a repeated
	// (board, seed) pair is time-invariant.
	if err := pool.HoldTemperatureC(-1, 40); err != nil {
		t.Fatal(err)
	}
	for i, bd := range pool.Status().Boards {
		// Mid-critical-region: fault probability is solidly non-zero but
		// the board stays (mostly) alive.
		mv := (bd.VminMV + bd.VcrashMV) / 2
		if mv <= bd.VcrashMV {
			mv = bd.VcrashMV + 2
		}
		if err := pool.SetOperatingMV(i, mv); err != nil {
			t.Fatal(err)
		}
	}

	type key struct {
		board string
		seed  int64
	}
	var mu sync.Mutex
	seen := make(map[key]Result)
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 6; n++ {
				seed := int64(1 + (g+n)%3)
				res, err := pool.Classify(context.Background(), Request{Seed: seed})
				if err != nil {
					t.Errorf("classify: %v", err)
					return
				}
				if res.Attempts != 1 {
					// A crash/retry re-salts the fault stream; only
					// first-attempt passes are deterministic repeats.
					continue
				}
				k := key{res.Board, seed}
				mu.Lock()
				if prev, ok := seen[k]; ok {
					if prev.AccuracyPct != res.AccuracyPct ||
						prev.MACFaults != res.MACFaults ||
						prev.BRAMFaults != res.BRAMFaults {
						t.Errorf("%s seed %d: repeat diverged: acc %.2f/%.2f MAC %d/%d BRAM %d/%d — scratch state leaked across requests",
							res.Board, seed, prev.AccuracyPct, res.AccuracyPct,
							prev.MACFaults, res.MACFaults, prev.BRAMFaults, res.BRAMFaults)
					}
				} else {
					seen[k] = res
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	st := pool.Status()
	if st.MACFaults == 0 && st.BRAMFaults == 0 {
		t.Fatal("no request saw a fault: the arena-backed DPU path was never exercised")
	}
}
