package fleet

import (
	"fmt"
	"math"
	"time"

	"fpgauv/internal/obs"
	"fpgauv/internal/telemetry"
)

// startTelemetry assembles the pool's time-series recorder (one entry
// per board plus a pool-level pseudo-board named after the pool) and
// starts the background sampler unless the interval is negative.
func (p *Pool) startTelemetry(cfg telemetry.Config) {
	ids := make([]string, 0, len(p.members)+1)
	for _, m := range p.members {
		ids = append(ids, m.id)
	}
	ids = append(ids, p.Name())
	p.telem = telemetry.NewRecorder(cfg, ids)
	p.telemCfg = p.telem.Config()
	p.synthCorr = make([]float64, len(p.members))
	for _, m := range p.members {
		m.onCrash = p.recordPostmortem
	}
	if cfg.Interval > 0 {
		p.wg.Add(1)
		go p.telemetryLoop(cfg.Interval)
	}
}

// telemetryLoop samples the whole pool on the configured interval and
// re-scores board health every healthEvery ticks.
func (p *Pool) telemetryLoop(interval time.Duration) {
	defer p.wg.Done()
	const healthEvery = 8
	t := time.NewTicker(interval)
	defer t.Stop()
	tick := 0
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.SampleTelemetry()
			tick++
			if tick%healthEvery == 0 {
				for _, m := range p.members {
					p.boardHealth(m)
				}
			}
		}
	}
}

// SampleTelemetry takes one telemetry sample of every board plus the
// pool aggregate, stamped on the shared monotonic clock. Zero heap
// allocations in steady state: board accessors are internally
// synchronized value reads and every ring was allocated at assembly.
// The background sampler calls this on its interval; tests and the
// benchmark drive it explicitly.
func (p *Pool) SampleTelemetry() {
	now := obs.NowNS()
	dt := 0.0
	if p.synthStampNS > 0 {
		dt = float64(now-p.synthStampNS) / 1e9
	}
	p.synthStampNS = now

	enabled := p.gov != nil && p.gov.enabled.Load()
	var agg telemetry.BoardSample
	agg.GovernorSettled = true
	minMargin := math.Inf(1)
	for i, m := range p.members {
		// Injected corrected-ECC ramp: accumulate rate x elapsed into the
		// sampler-owned accumulator (single goroutine; no lock needed).
		if rate := m.injCorrRate(); rate > 0 && dt > 0 {
			p.synthCorr[i] += rate * dt
		}
		s := p.boardSample(m, enabled, p.synthCorr[i])
		p.telem.Observe(i, now, s)

		agg.VCCINTmV += s.VCCINTmV
		agg.VCCBRAMmV += s.VCCBRAMmV
		agg.TempC += s.TempC
		agg.PowerW += s.PowerW
		agg.Corrected += s.Corrected
		agg.Uncorrectable += s.Uncorrectable
		agg.Crashes += s.Crashes
		agg.Served += s.Served
		agg.GovernorSettled = agg.GovernorSettled && s.GovernorSettled
		minMargin = math.Min(minMargin, s.VminMarginMV)
	}
	if n := float64(len(p.members)); n > 0 {
		agg.VCCINTmV /= n
		agg.VCCBRAMmV /= n
		agg.TempC /= n
		agg.VminMarginMV = minMargin
	}
	agg.Sheds = p.shed.Load()
	agg.QueueDepth = p.queue.Len()
	p.telem.Observe(len(p.members), now, agg)
}

// boardSample reads one board's instantaneous telemetry. Every accessor
// is internally synchronized — the sampler never takes the member lock,
// so a board mid-classification (or mid-recovery) samples just as fast.
func (p *Pool) boardSample(m *member, govEnabled bool, synthCorr float64) telemetry.BoardSample {
	op, bramOp := m.opMV(), m.bramOpMV()
	c := m.prot.Counts()
	drift := m.vminDriftMV()
	return telemetry.BoardSample{
		VCCINTmV:        m.brd.VCCINTmV(),
		VCCBRAMmV:       m.brd.VCCBRAMmV(),
		TempC:           m.brd.DieTempC(),
		PowerW:          m.brd.PowerBreakdownAtRails(op, bramOp).TotalW,
		Corrected:       c.Corrected + int64(synthCorr),
		Uncorrectable:   c.Detected + c.Silent,
		Crashes:         m.crashes.Load(),
		Served:          m.served.Load(),
		GovernorSettled: !govEnabled || m.gov == nil || m.gov.settledFlag.Load(),
		VminMarginMV:    op - (m.regions.VminMV + drift),
	}
}

// Telemetry returns the pool's time-series recorder (nil only before
// assembly completes, which callers never observe).
func (p *Pool) Telemetry() *telemetry.Recorder { return p.telem }

// LatencyDigest is the pool's job-latency quantile digest: every
// successfully served job's board-visit time, p50/p99/p999 with bounded
// relative error.
func (p *Pool) LatencyDigest() *telemetry.Digest { return &p.jobLatency }

// Postmortems returns the most recent retained crash postmortems,
// newest first (limit <= 0: all retained).
func (p *Pool) Postmortems(limit int) []telemetry.Postmortem {
	return p.telem.Flight().Recent(limit)
}

// boardHealth scores one board's margin-regression signals and journals
// degraded-state transitions.
func (p *Pool) boardHealth(m *member) telemetry.BoardHealth {
	drift := m.vminDriftMV()
	margin := m.opMV() - (m.regions.VminMV + drift)
	sig := p.telem.HealthSignalsFor(m.idx, drift, margin)
	h := telemetry.ScoreBoard(p.telemCfg.Health, sig)
	newState := int32(0)
	switch h.State {
	case telemetry.HealthWatch:
		newState = 1
	case telemetry.HealthDegraded:
		newState = 2
	}
	old := m.healthState.Swap(newState)
	if newState == 2 && old != 2 {
		m.event(obs.EvHealthDegraded, m.brd.VCCINTmV(),
			fmt.Sprintf("health score %.0f: %s", h.Score, joinReasons(h.Reasons)))
	}
	return h
}

func joinReasons(rs []string) string {
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += "; "
		}
		out += r
	}
	return out
}

// BoardHealth scores every board (index order) — the /v1/fleet/health
// payload for one pool.
func (p *Pool) BoardHealth() []telemetry.BoardHealth {
	out := make([]telemetry.BoardHealth, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, p.boardHealth(m))
	}
	return out
}

// DegradedBoards counts boards the health scorer currently grades
// degraded — the cluster router's candidate-ordering penalty signal.
func (p *Pool) DegradedBoards() int {
	n := 0
	for _, m := range p.members {
		if p.boardHealth(m).State == telemetry.HealthDegraded {
			n++
		}
	}
	return n
}

// InjectMarginDrift arms the margin-regression chaos knob on one board
// (idx < 0: all boards): the board's Vmin estimate is biased upward by
// driftMV and the telemetry sampler synthesizes correctedPerSec
// corrected-ECC words per second — the paper's aging/temperature margin
// erosion on demand, without waiting for silicon to age. Zero/zero
// disarms. The injected drift feeds the vmin_margin_mv series and the
// health scorer; it never moves a rail, so serving is unaffected.
func (p *Pool) InjectMarginDrift(idx int, driftMV, correctedPerSec float64) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	if driftMV < 0 {
		driftMV = 0
	}
	if correctedPerSec < 0 {
		correctedPerSec = 0
	}
	for _, m := range targets {
		m.driftBits.Store(math.Float64bits(driftMV))
		m.injCorrBits.Store(math.Float64bits(correctedPerSec))
	}
	return nil
}

// recordPostmortem is the crash flight recorder hook, called from
// noteCrash with the member lock held: snapshot the journal tail, the
// board's raw telemetry window and the active trace id into a retained
// postmortem. The recorder's own lock orders it against the sampler;
// the sampler never takes the member lock, so there is no cycle.
func (p *Pool) recordPostmortem(m *member) {
	pm := telemetry.Postmortem{
		Board:     m.id,
		TraceID:   m.activeTrace,
		VCCINTmV:  m.brd.VCCINTmV(),
		VCCBRAMmV: m.brd.VCCBRAMmV(),
		TempC:     m.brd.DieTempC(),
		Crashes:   m.crashes.Load(),
		Events:    p.journal.Tail(p.telemCfg.JournalTail),
		Window:    p.telem.Window(m.idx, p.telemCfg.WindowPoints),
	}
	pm = p.telem.Flight().Record(pm)
	m.event(obs.EvPostmortem, pm.VCCINTmV,
		fmt.Sprintf("postmortem %d retained (%d journal events, trace %q)", pm.ID, len(pm.Events), pm.TraceID))
}
