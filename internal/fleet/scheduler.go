package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"fpgauv/internal/nn"
	"fpgauv/internal/obs"
)

// Scheduler is the serving contract the HTTP front-end programs against:
// everything a request needs (classify, infer, introspection, shutdown)
// without naming the scheduling topology behind it. A single *Pool and a
// cluster router over N pools both implement it, so the front-end is
// interchangeable between one board-set and a sharded fleet.
//
// The admission surface is part of the contract: Classify and Infer
// return ErrSaturated (carrying a RetryAfter hint) instead of queuing
// without bound when the scheduler's backlog limit is reached, and
// QueueDepth/Status expose the live backlog so callers and routers can
// make load decisions without submitting work.
type Scheduler interface {
	// Classify runs one evaluation-set pass.
	Classify(ctx context.Context, req Request) (Result, error)
	// Infer classifies caller-supplied images.
	Infer(ctx context.Context, req InferRequest) (InferResult, error)
	// Status snapshots the scheduler without blocking the serving path.
	Status() Status
	// Journal is the scheduler's bounded event journal. For a cluster
	// this is the router tier's journal (route/shed/spare events);
	// per-pool board journals stay addressable through Pools.
	Journal() *obs.Journal
	// InputShape is the CHW geometry inference images must have.
	InputShape() nn.Shape
	// QueueDepth is the present backlog (jobs admitted, not yet picked
	// up) — the admission surface's live signal.
	QueueDepth() int
	// Pools enumerates the concrete pools behind the scheduler in stable
	// index order (a single pool returns itself), for pool-scoped
	// operations: per-board rail moves, governor tuning, chaos injection.
	Pools() []*Pool
	// Close stops admission, drains queued work and releases the boards.
	Close()
}

// Pool is the degenerate one-pool scheduler.
var _ Scheduler = (*Pool)(nil)

// ErrSaturated reports that admission control refused a request because
// the scheduler's backlog limit was reached. It is a typed error — not a
// sentinel — because the shed itself carries data: how deep the backlog
// was and how long the caller should wait before retrying (the HTTP
// layer maps it to 429 with a Retry-After header). Check with
// errors.As(err, &fleet.ErrSaturated{}).
type ErrSaturated struct {
	// Scheduler names the pool (or router) that shed the request.
	Scheduler string
	// Depth is the backlog observed at rejection.
	Depth int
	// RetryAfter is the shedding scheduler's drain estimate: roughly how
	// long until the present backlog has been served.
	RetryAfter time.Duration
}

func (e ErrSaturated) Error() string {
	who := e.Scheduler
	if who == "" {
		who = "pool"
	}
	return fmt.Sprintf("fleet: %s saturated (%d queued); retry in %s", who, e.Depth, e.RetryAfter)
}

// satRetryBuckets quantizes RetryAfter hints so shed errors can be
// interned: the drain estimate rounds up to the next bucket. The ladder
// spans the same [10ms, 5s] operator window the un-cached construction
// clamped to.
var satRetryBuckets = [...]time.Duration{
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// satDepthCap bounds the distinct backlog depths a cached shed error
// reports; deeper backlogs all read as "at least satDepthCap".
const satDepthCap = 64

// SatErrCache interns boxed ErrSaturated values keyed by (clamped
// depth, retry bucket), making shed-path error construction
// allocation-free in the steady state: the first shed at a given cell
// boxes one error, every later shed re-serves it. A shed storm is
// exactly when the scheduler is overloaded, so the refusal path must
// not add GC pressure of its own (BENCH_7 measured served throughput
// sagging under offered overload before this existed). Concurrent
// first-use may race two equal Stores on one cell — both values are
// identical, so either winning is fine.
type SatErrCache struct {
	cells [satDepthCap + 1][len(satRetryBuckets)]atomic.Value
}

// Err returns the interned shed error for the given scheduler name,
// backlog depth, and drain estimate. The name must be the same for
// every call on one cache (it is stamped into the cell on first use).
func (c *SatErrCache) Err(name string, depth int, ra time.Duration) error {
	d := depth
	if d < 0 {
		d = 0
	}
	if d > satDepthCap {
		d = satDepthCap
	}
	b := 0
	for b < len(satRetryBuckets)-1 && satRetryBuckets[b] < ra {
		b++
	}
	if v := c.cells[d][b].Load(); v != nil {
		// any→error is an interface-to-interface assertion: no boxing,
		// no allocation.
		return v.(error)
	}
	err := error(ErrSaturated{Scheduler: name, Depth: d, RetryAfter: satRetryBuckets[b]})
	c.cells[d][b].Store(err)
	return err
}

// saturatedErr builds this pool's shed error: the retry hint is the
// backlog drain estimate from the pool's smoothed per-job service time,
// quantized onto the [10ms, 5s] bucket ladder so the error value can be
// served from the pool's intern cache without allocating.
func (p *Pool) saturatedErr(depth int) error {
	svc := time.Duration(p.svcNS.Load())
	if svc <= 0 {
		svc = 25 * time.Millisecond
	}
	ra := time.Duration(depth+1) * svc / time.Duration(len(p.members))
	return p.satErrs.Err(p.Name(), depth, ra)
}
