package fleet

import (
	"context"
	"fmt"
	"time"

	"fpgauv/internal/nn"
	"fpgauv/internal/obs"
)

// Scheduler is the serving contract the HTTP front-end programs against:
// everything a request needs (classify, infer, introspection, shutdown)
// without naming the scheduling topology behind it. A single *Pool and a
// cluster router over N pools both implement it, so the front-end is
// interchangeable between one board-set and a sharded fleet.
//
// The admission surface is part of the contract: Classify and Infer
// return ErrSaturated (carrying a RetryAfter hint) instead of queuing
// without bound when the scheduler's backlog limit is reached, and
// QueueDepth/Status expose the live backlog so callers and routers can
// make load decisions without submitting work.
type Scheduler interface {
	// Classify runs one evaluation-set pass.
	Classify(ctx context.Context, req Request) (Result, error)
	// Infer classifies caller-supplied images.
	Infer(ctx context.Context, req InferRequest) (InferResult, error)
	// Status snapshots the scheduler without blocking the serving path.
	Status() Status
	// Journal is the scheduler's bounded event journal. For a cluster
	// this is the router tier's journal (route/shed/spare events);
	// per-pool board journals stay addressable through Pools.
	Journal() *obs.Journal
	// InputShape is the CHW geometry inference images must have.
	InputShape() nn.Shape
	// QueueDepth is the present backlog (jobs admitted, not yet picked
	// up) — the admission surface's live signal.
	QueueDepth() int
	// Pools enumerates the concrete pools behind the scheduler in stable
	// index order (a single pool returns itself), for pool-scoped
	// operations: per-board rail moves, governor tuning, chaos injection.
	Pools() []*Pool
	// Close stops admission, drains queued work and releases the boards.
	Close()
}

// Pool is the degenerate one-pool scheduler.
var _ Scheduler = (*Pool)(nil)

// ErrSaturated reports that admission control refused a request because
// the scheduler's backlog limit was reached. It is a typed error — not a
// sentinel — because the shed itself carries data: how deep the backlog
// was and how long the caller should wait before retrying (the HTTP
// layer maps it to 429 with a Retry-After header). Check with
// errors.As(err, &fleet.ErrSaturated{}).
type ErrSaturated struct {
	// Scheduler names the pool (or router) that shed the request.
	Scheduler string
	// Depth is the backlog observed at rejection.
	Depth int
	// RetryAfter is the shedding scheduler's drain estimate: roughly how
	// long until the present backlog has been served.
	RetryAfter time.Duration
}

func (e ErrSaturated) Error() string {
	who := e.Scheduler
	if who == "" {
		who = "pool"
	}
	return fmt.Sprintf("fleet: %s saturated (%d queued); retry in %s", who, e.Depth, e.RetryAfter)
}

// saturatedErr builds this pool's shed error: the retry hint is the
// backlog drain estimate from the pool's smoothed per-job service time,
// clamped to a sane [10ms, 5s] operator window.
func (p *Pool) saturatedErr(depth int) ErrSaturated {
	svc := time.Duration(p.svcNS.Load())
	if svc <= 0 {
		svc = 25 * time.Millisecond
	}
	ra := time.Duration(depth+1) * svc / time.Duration(len(p.members))
	if ra < 10*time.Millisecond {
		ra = 10 * time.Millisecond
	}
	if ra > 5*time.Second {
		ra = 5 * time.Second
	}
	return ErrSaturated{Scheduler: p.Name(), Depth: depth, RetryAfter: ra}
}
