package fleet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fpgauv/internal/board"
	"fpgauv/internal/core"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/dpu"
	"fpgauv/internal/ecc"
	"fpgauv/internal/models"
	"fpgauv/internal/obs"
	"fpgauv/internal/pmbus"
	"fpgauv/internal/silicon"
)

// Member states reported by Status.
const (
	stateHealthy int32 = iota
	stateRecovering
)

// member is one board of the pool: a ZCU102 sample with its DNNDK
// runtime, loaded kernel and evaluation dataset. All accelerator
// operations (classify, recover, voltage changes) happen under mu, so the
// unlocked dnndk reference cache is confined to one goroutine at a time.
type member struct {
	mu sync.Mutex

	idx    int
	id     string
	brd    *board.ZCU102
	rt     *dnndk.Runtime
	bench  *models.Benchmark
	kernel *dpu.Kernel
	task   *dnndk.Task
	ds     *models.Dataset
	// scratch is this board's inference arena. Every accelerator pass
	// (serving, governor canaries) happens under mu, so the arena is
	// confined to one goroutine at a time and steady-state classification
	// performs near-zero heap allocations.
	scratch *dpu.Scratch

	regions core.Regions
	// opBits holds the operating point (mV) as float bits so status
	// snapshots can read it without taking the serving lock.
	opBits atomic.Uint64
	// bramOpBits is the VCCBRAM steady-state operating point (mV, float
	// bits). Nominal at startup; only the ECC-aware governor walks it
	// down.
	bramOpBits atomic.Uint64
	// staticMV is the startup operating point (Vmin+margin or the
	// configured target): the governor's ceiling and the baseline its
	// power savings are measured against.
	staticMV float64
	seed     int64

	state    atomic.Int32
	served   atomic.Int64
	retries  atomic.Int64
	crashes  atomic.Int64
	redeploy atomic.Int64
	// servedFaults accumulates MAC fault events observed in served
	// passes since the governor's last tick: the serving-path error
	// signal that forces an immediate VCCINT climb. servedBRAM
	// accumulates the harmful BRAM events (raw flips unprotected,
	// detected+silent words under ECC) that force a VCCBRAM climb.
	servedFaults atomic.Int64
	servedBRAM   atomic.Int64

	// prot is this board's BRAM SECDED policy (installed on the DPU at
	// assembly; per-board so corrected/uncorrectable counters stay
	// per-board) and scrub its frame scrubber over the deployed weight
	// image.
	prot  *ecc.Protection
	scrub *ecc.Scrubber

	// gov is this board's adaptive-voltage control state; nil until the
	// pool starts governor loops.
	gov *memberGov

	// jr is the pool's shared event journal (set at pool assembly; nil
	// only for members built outside a pool, which tests never do —
	// journal methods are nil-safe regardless).
	jr *obs.Journal
	// failInject is the chaos knob: each positive count makes one
	// execute attempt on this board fail exactly as a crash does,
	// driving the crash→reboot→redeploy→requeue machinery on demand
	// without moving a rail. Armed by Pool.InjectFailures.
	failInject atomic.Int64

	// driftBits / injCorrBits are the margin-regression chaos knob
	// (float bits): an injected upward bias on the board's Vmin estimate
	// and a synthesized corrected-ECC rate (words/sec) folded into the
	// telemetry sampler. Armed by Pool.InjectMarginDrift.
	driftBits   atomic.Uint64
	injCorrBits atomic.Uint64
	// healthState is the health scorer's last grade (0 ok, 1 watch,
	// 2 degraded) — the transition latch behind EvHealthDegraded.
	healthState atomic.Int32
	// onCrash is the pool's flight-recorder hook, invoked at the end of
	// noteCrash (every noteCrash call site holds mu). Nil off-pool.
	onCrash func(*member)
	// activeTrace is the trace id of the job currently executing on the
	// board (guarded by mu; empty when idle or untraced) — the crash
	// postmortem's request attribution.
	activeTrace string
}

// regionCache shares one measured characterization per (sample, workload)
// pair across every pool in the process: the paper characterizes each
// board once and reuses the result, and dies of the same sample are
// identical by construction.
var regionCache sync.Map // string -> core.Regions

func regionKey(sample board.SampleID, cfg Config) string {
	return fmt.Sprintf("%d|%s|tiny=%t|bits=%d|sp=%.4f|psp=%.4f|be=%s|img=%d|seed=%d|step=%.1f|rep=%d",
		sample, cfg.Benchmark, cfg.Tiny, cfg.Bits, cfg.Sparsity, cfg.PruneSparsity,
		cfg.SparseBackend, cfg.Images, cfg.Seed, cfg.CharStepMV, cfg.CharRepeats)
}

// newMember assembles board idx (cycling the paper's three silicon
// samples), deploys the configured benchmark, characterizes Vmin/Vcrash
// (or reuses the cached characterization for this sample) and parks the
// board at the energy-efficient operating point inside the guardband.
func newMember(idx int, cfg Config) (*member, error) {
	sample := board.SampleID(idx % 3)
	brd, err := board.New(sample)
	if err != nil {
		return nil, err
	}
	dcfg := dpu.B4096()
	dcfg.GemmWorkers = cfg.GemmWorkers
	dcfg.Backend = cfg.SparseBackend
	rt, err := dnndk.NewRuntimeConfig(brd, dcfg, cfg.Cores)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("%s#%d", sample, idx)
	if cfg.Name != "" {
		// Pool-qualified board ids keep journals, traces and metrics
		// unambiguous when N pools serve behind one router.
		id = cfg.Name + "/" + id
	}
	m := &member{
		idx:     idx,
		id:      id,
		brd:     brd,
		rt:      rt,
		scratch: dpu.NewScratch(),
	}
	if err := m.deploy(cfg); err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", m.id, err)
	}
	if err := m.characterize(cfg); err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", m.id, err)
	}
	op := cfg.TargetMV
	if op == 0 {
		op = m.regions.VminMV + cfg.MarginMV
	}
	if op <= m.regions.VcrashMV {
		return nil, fmt.Errorf("fleet: %s: operating point %.0f mV is below Vcrash %.0f mV",
			m.id, op, m.regions.VcrashMV)
	}
	m.staticMV = op
	m.setOpMV(op)
	if err := m.setVCCINT(op); err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", m.id, err)
	}
	// BRAM SECDED protection: the policy lives on the board's DPU (the
	// executor consults it per pass), the scrubber snapshots the deployed
	// fault-free weight image as its golden copy. VCCBRAM starts at
	// nominal; only the ECC-aware governor walks it down.
	m.prot = ecc.NewProtection(cfg.ECC.Enabled)
	m.rt.DPU().SetProtection(m.prot)
	m.scrub = ecc.NewScrubber(kernelWeights(m.kernel))
	m.setBRAMOpMV(m.brd.VCCBRAMmV())
	return m, nil
}

// kernelWeights collects the kernel's live weight tensors (the protected
// BRAM image). Sparse-backend kernels keep the compacted packed image in
// BRAM — fewer words to protect, so the scrubber's golden copy (and the
// ECC corrected-rate at a given VCCBRAM) shrinks with pruning.
func kernelWeights(k *dpu.Kernel) [][]int8 {
	var out [][]int8
	for i := range k.Nodes {
		kn := &k.Nodes[i]
		if kn.SW != nil {
			out = append(out, kn.SW.Packed.Data)
			continue
		}
		if kn.WQ != nil {
			out = append(out, kn.WQ.Data)
		}
	}
	return out
}

// deploy compiles and loads the benchmark kernel and plants ground-truth
// labels through the shared single-platform deployment protocol.
func (m *member) deploy(cfg Config) error {
	sp, pruneBlocks := cfg.Sparsity, false
	if cfg.PruneSparsity > 0 {
		sp, pruneBlocks = cfg.PruneSparsity, true
	}
	dep, err := dnndk.DeployBenchmark(m.rt, cfg.Benchmark, dnndk.DeployOptions{
		Tiny:        cfg.Tiny,
		Bits:        cfg.Bits,
		Sparsity:    sp,
		PruneBlocks: pruneBlocks,
		Backend:     cfg.SparseBackend,
		Images:      cfg.Images,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return err
	}
	m.bench, m.kernel, m.task, m.ds = dep.Bench, dep.Task.Kernel, dep.Task, dep.Ds
	m.seed = dep.Seed
	return nil
}

// characterize measures (or recalls) this board's Vmin/Vcrash regions.
// A cache miss runs the paper's downward-sweep protocol, which ends in a
// deliberate crash and reboot, leaving the board at nominal rails.
func (m *member) characterize(cfg Config) error {
	key := regionKey(m.brd.Sample(), cfg)
	if v, ok := regionCache.Load(key); ok {
		m.regions = v.(core.Regions)
		return nil
	}
	c := core.NewCampaign(m.task, m.ds)
	c.Config.VStartMV = 620
	c.Config.VStepMV = cfg.CharStepMV
	c.Config.Repeats = cfg.CharRepeats
	c.Config.Seed = cfg.Seed
	reg, _, err := c.DetectRegions()
	if err != nil {
		return fmt.Errorf("characterize: %w", err)
	}
	regionCache.Store(key, reg)
	m.regions = reg
	return nil
}

// setVCCINT commands the VCCINT rail through the board's PMBus, exactly
// as an external experiment controller would.
func (m *member) setVCCINT(mv float64) error {
	return pmbus.NewAdapter(m.brd.Bus(), board.AddrVCCINT).SetVoltageMV(mv)
}

// setVCCBRAM commands the VCCBRAM rail through the board's PMBus.
func (m *member) setVCCBRAM(mv float64) error {
	return pmbus.NewAdapter(m.brd.Bus(), board.AddrVCCBRAM).SetVoltageMV(mv)
}

// opMV returns the steady-state operating point in millivolts.
func (m *member) opMV() float64 { return math.Float64frombits(m.opBits.Load()) }

// setOpMV re-targets the steady-state operating point.
func (m *member) setOpMV(mv float64) { m.opBits.Store(math.Float64bits(mv)) }

// bramOpMV returns the VCCBRAM steady-state operating point.
func (m *member) bramOpMV() float64 { return math.Float64frombits(m.bramOpBits.Load()) }

// setBRAMOpMV re-targets the VCCBRAM steady-state operating point.
func (m *member) setBRAMOpMV(mv float64) { m.bramOpBits.Store(math.Float64bits(mv)) }

// event appends one structured occurrence for this board to the pool's
// journal (a no-op off-pool: Journal methods are nil-safe).
func (m *member) event(kind string, mv float64, detail string) {
	m.jr.Append(obs.Event{Board: m.id, Kind: kind, MV: mv, Detail: detail})
}

// noteCrash is the single crash-accounting point: every detected hang —
// serving path, monitor, governor — counts the crash and journals it.
// The journal append precedes the flight-recorder hook so the
// postmortem's journal tail includes this crash event.
func (m *member) noteCrash() {
	m.crashes.Add(1)
	m.event(obs.EvCrash, m.brd.VCCINTmV(), "")
	if m.onCrash != nil {
		m.onCrash(m)
	}
}

// vminDriftMV returns the injected Vmin drift bias in millivolts.
func (m *member) vminDriftMV() float64 { return math.Float64frombits(m.driftBits.Load()) }

// injCorrRate returns the injected corrected-ECC rate (words/sec).
func (m *member) injCorrRate() float64 { return math.Float64frombits(m.injCorrBits.Load()) }

// takeInjectedFailure consumes one armed chaos failure, if any.
func (m *member) takeInjectedFailure() bool {
	for {
		n := m.failInject.Load()
		if n <= 0 {
			return false
		}
		if m.failInject.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// recover runs the crash protocol: power-cycle the board, re-program the
// bitstream (re-load the kernel and re-plant labels — the FPGA loses its
// configuration on power cycle), and restore the underscaled operating
// point. Caller must hold m.mu.
func (m *member) recover() error {
	m.state.Store(stateRecovering)
	defer m.state.Store(stateHealthy)

	m.brd.Reboot()
	m.event(obs.EvReboot, m.brd.VCCINTmV(), "power-on reset complete; rails at nominal")
	if m.task != nil {
		_ = m.task.Unload()
	}
	task, err := m.rt.LoadKernel(m.kernel)
	if err != nil {
		return fmt.Errorf("fleet: %s: re-deploy: %w", m.id, err)
	}
	if err := task.PlantLabels(m.ds, m.bench.TargetAccPct, dnndk.LabelSeed(m.seed)); err != nil {
		return fmt.Errorf("fleet: %s: re-plant: %w", m.id, err)
	}
	m.task = task
	m.redeploy.Add(1)
	m.event(obs.EvRedeploy, m.opMV(), "kernel re-deployed; restoring governed rails")
	if err := m.setVCCINT(m.opMV()); err != nil {
		return fmt.Errorf("fleet: %s: restore %.0f mV: %w", m.id, m.opMV(), err)
	}
	// Reboot returned every rail to nominal; the governed VCCBRAM point
	// must survive the crash exactly like the governed VCCINT point.
	if mv := m.bramOpMV(); mv > 0 && mv != silicon.VnomMV {
		if err := m.setVCCBRAM(mv); err != nil {
			return fmt.Errorf("fleet: %s: restore VCCBRAM %.0f mV: %w", m.id, mv, err)
		}
	}
	return nil
}

// noteServedFaults feeds one served pass's fault signals to the board's
// governor loops: MAC events drive the VCCINT climb, harmful BRAM events
// — raw flips unprotected, detected+silent words under ECC (corrected
// words are exactly the events the ECC-aware mode tolerates) — drive the
// VCCBRAM climb.
func (m *member) noteServedFaults(mac, bram int64, c ecc.Counts) {
	m.servedFaults.Add(mac)
	if m.prot.Enabled() {
		m.servedBRAM.Add(c.Bad())
	} else {
		m.servedBRAM.Add(bram)
	}
	if c.Detected > 0 {
		m.event(obs.EvECCUncorrectable, m.brd.VCCBRAMmV(),
			fmt.Sprintf("%d uncorrectable words in served traffic", c.Detected))
	}
}

// stateName renders the member state for status reports.
func (m *member) stateName() string {
	if m.state.Load() == stateRecovering {
		return "recovering"
	}
	if m.brd.Hung() {
		return "hung"
	}
	return "healthy"
}
