package fleet

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpgauv/internal/silicon"
)

// nearMV compares rail levels with the regulator's DAC quantization in
// mind: a commanded 565 mV reads back as 564.94 mV.
func nearMV(a, b float64) bool { return math.Abs(a-b) <= 1 }

// testConfig is the fast protocol shared by the fleet tests: tiny model
// zoo, small evaluation set, single-repeat characterization.
func testConfig(boards int) Config {
	return Config{
		Boards:      boards,
		Benchmark:   "VGGNet",
		Tiny:        true,
		Images:      8,
		CharRepeats: 1,
	}
}

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// The pool must hold every board at an underscaled operating point inside
// the guardband — at or below 620 mV, above the board's measured Vcrash —
// and serve fault-free classifications there.
func TestPoolOperatesUnderscaled(t *testing.T) {
	p := newTestPool(t, testConfig(3))
	st := p.Status()
	if len(st.Boards) != 3 {
		t.Fatalf("boards = %d, want 3", len(st.Boards))
	}
	for _, b := range st.Boards {
		if b.OperatingMV > 620 {
			t.Errorf("%s: operating point %.0f mV above 620 mV", b.Board, b.OperatingMV)
		}
		if !nearMV(b.VCCINTmV, b.OperatingMV) {
			t.Errorf("%s: VCCINT %.1f mV not at operating point %.0f mV", b.Board, b.VCCINTmV, b.OperatingMV)
		}
		if !(silicon.VnomMV > b.VminMV && b.VminMV > b.VcrashMV) {
			t.Errorf("%s: want Vnom > Vmin > Vcrash, got %.0f / %.0f / %.0f",
				b.Board, silicon.VnomMV, b.VminMV, b.VcrashMV)
		}
		if b.OperatingMV <= b.VcrashMV {
			t.Errorf("%s: operating point %.0f mV not above Vcrash %.0f mV", b.Board, b.OperatingMV, b.VcrashMV)
		}
	}
	res, err := p.Classify(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AccuracyPct <= 0 {
		t.Errorf("accuracy = %.1f%%, want > 0", res.AccuracyPct)
	}
	if res.MACFaults != 0 || res.BRAMFaults != 0 {
		t.Errorf("faults inside the guardband: MAC=%d BRAM=%d", res.MACFaults, res.BRAMFaults)
	}
	if res.VCCINTmV > 620 {
		t.Errorf("served at %.0f mV, want <= 620", res.VCCINTmV)
	}
}

// The three samples are characterized independently; the paper's §8
// finding is that "identical" boards differ. At least one pair of boards
// must disagree on Vmin or Vcrash.
func TestPoolCharacterizationVariability(t *testing.T) {
	p := newTestPool(t, testConfig(3))
	bs := p.Status().Boards
	varies := false
	for i := 1; i < len(bs); i++ {
		if bs[i].VminMV != bs[0].VminMV || bs[i].VcrashMV != bs[0].VcrashMV {
			varies = true
		}
	}
	if !varies {
		t.Errorf("all three samples characterized identically: %+v", bs)
	}
}

// Boards of the same silicon sample reuse the cached characterization
// instead of re-running the sweep.
func TestPoolCharacterizationCache(t *testing.T) {
	p := newTestPool(t, testConfig(6))
	bs := p.Status().Boards
	for i := 3; i < 6; i++ {
		if bs[i].VminMV != bs[i-3].VminMV || bs[i].VcrashMV != bs[i-3].VcrashMV {
			t.Errorf("board %d and %d share a sample but differ: %+v vs %+v", i, i-3, bs[i], bs[i-3])
		}
		if bs[i].Reboots != 0 {
			t.Errorf("board %d re-ran the characterization sweep (%d reboots) despite the cache", i, bs[i].Reboots)
		}
	}
}

// The acceptance scenario: >=3 boards, >=100 concurrent requests at an
// underscaled VCCINT, zero dropped requests, while at least one induced
// crash/reboot/re-deploy cycle happens underneath the traffic.
func TestPoolCrashRecoveryNoLostWork(t *testing.T) {
	cfg := testConfig(3)
	cfg.MonitorInterval = -1 // recovery must come from the serving path
	p := newTestPool(t, cfg)

	// Drive every board below its Vcrash while idle: the crash latches
	// on the next liveness check, so the first request each board picks
	// up hits ErrHung and must ride out reboot -> re-deploy -> retry.
	if err := p.SetVCCINTmV(-1, 500); err != nil {
		t.Fatal(err)
	}

	const requests = 120
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Classify(context.Background(), Request{})
			if err != nil {
				failures.Add(1)
				t.Errorf("classify: %v", err)
				return
			}
			if res.AccuracyPct <= 0 {
				failures.Add(1)
				t.Errorf("classify on %s: accuracy %.1f%%", res.Board, res.AccuracyPct)
			}
		}()
	}
	wg.Wait()

	st := p.Status()
	if got := failures.Load(); got != 0 {
		t.Fatalf("%d of %d requests lost", got, requests)
	}
	if st.Served != requests {
		t.Errorf("served = %d, want %d", st.Served, requests)
	}
	if st.Crashes < 1 {
		t.Errorf("crashes = %d, want >= 1 (the induced crash was never detected)", st.Crashes)
	}
	if st.Redeploys < 1 {
		t.Errorf("redeploys = %d, want >= 1 (crashed board was not re-deployed)", st.Redeploys)
	}
	for _, b := range st.Boards {
		if !nearMV(b.VCCINTmV, b.OperatingMV) {
			t.Errorf("%s: VCCINT %.1f mV not restored to operating point %.0f mV after recovery",
				b.Board, b.VCCINTmV, b.OperatingMV)
		}
	}
}

// The idle-board health monitor must detect and heal a crash with no
// traffic routed to the pool at all.
func TestPoolMonitorHealsIdleBoard(t *testing.T) {
	cfg := testConfig(3)
	cfg.MonitorInterval = 5 * time.Millisecond
	p := newTestPool(t, cfg)

	if err := p.SetVCCINTmV(0, 500); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Status()
		if st.Redeploys >= 1 && nearMV(st.Boards[0].VCCINTmV, st.Boards[0].OperatingMV) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor never healed the idle crashed board: %+v", st.Boards[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Concurrency hammer for -race: 8 goroutines of traffic, a voltage
// wiggler, a status poller and the health monitor all run against the
// same pool.
func TestPoolConcurrentHammer(t *testing.T) {
	cfg := testConfig(3)
	cfg.Images = 4
	cfg.MonitorInterval = 2 * time.Millisecond
	p := newTestPool(t, cfg)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := p.Classify(context.Background(), Request{Seed: int64(g*100 + i + 1)}); err != nil {
					t.Errorf("classify: %v", err)
				}
			}
		}(g)
	}
	// Voltage wiggler: drops one board below Vcrash and back while
	// traffic flows; recovery restores the operating point each time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := p.SetVCCINTmV(i%3, 500); err != nil {
				t.Errorf("set voltage: %v", err)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	// Status poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			_ = p.Status()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if st := p.Status(); st.Served != 48 {
		t.Errorf("served = %d, want 48", st.Served)
	}
}

// After Close the pool rejects new work, finishes what was queued, and
// returns the boards to nominal rails.
func TestPoolCloseDrainsAndRestoresNominal(t *testing.T) {
	p := newTestPool(t, testConfig(3))
	for i := 0; i < 5; i++ {
		if _, err := p.Classify(context.Background(), Request{}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if _, err := p.Classify(context.Background(), Request{}); !errors.Is(err, ErrClosed) {
		t.Errorf("classify after close: err = %v, want ErrClosed", err)
	}
	for _, b := range p.Status().Boards {
		if !nearMV(b.VCCINTmV, silicon.VnomMV) {
			t.Errorf("%s: VCCINT %.1f mV after close, want nominal %.0f", b.Board, b.VCCINTmV, silicon.VnomMV)
		}
	}
}

// Context cancellation abandons the wait but never corrupts the pool.
func TestPoolClassifyContextCancel(t *testing.T) {
	p := newTestPool(t, testConfig(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Classify(ctx, Request{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The pool still serves after an abandoned request.
	if _, err := p.Classify(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
}
