// Package fleet scales the paper's single-board methodology to a pool of
// reduced-voltage accelerators. The paper (§8) characterizes three
// "identical" ZCU102 samples and finds per-board Vmin/Vcrash variability;
// fleet treats that variability as an operations problem: each board is
// characterized once, parked at its own energy-efficient point inside the
// guardband, and served classification traffic through a shared work
// queue with crash detection, automatic reboot/re-deploy, and retry — so
// an induced crash below Vcrash costs availability on one board, never a
// request.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/dpu"
	"fpgauv/internal/ecc"
	"fpgauv/internal/nn"
	"fpgauv/internal/obs"
	"fpgauv/internal/silicon"
	"fpgauv/internal/telemetry"
	"fpgauv/internal/tensor"
)

// ErrClosed is returned by Classify after Close has begun.
var ErrClosed = errors.New("fleet: pool is shut down")

// errAbandoned aborts a multi-micro-batch job whose caller canceled
// mid-flight; the worker's canceled check turns it into a skip, never a
// requeue.
var errAbandoned = errors.New("fleet: caller abandoned the job")

// Config sizes and parameterizes a pool.
type Config struct {
	// Name labels the pool. When set, board ids are prefixed with it
	// ("pool1/platform-A#0"), keeping ids unique across a multi-pool
	// cluster. Empty (the default) keeps the historical single-pool ids.
	Name string
	// Boards is the pool size (default 3 — one of each silicon sample).
	// Boards cycle through the paper's three samples: board i is
	// sample i mod 3.
	Boards int
	// MaxQueue bounds the shared work queue: once MaxQueue jobs are
	// backlogged, Classify/Infer shed with ErrSaturated instead of
	// queuing. 0 (the default) keeps the historical unbounded behavior.
	// Requeues after a crash are never bounded — the no-lost-work
	// guarantee outranks the admission limit.
	MaxQueue int
	// Benchmark is the Table 1 workload every board serves
	// (default "VGGNet").
	Benchmark string
	// Tiny selects the test-scale model zoo (default: the Small preset).
	Tiny bool
	// Bits is the quantization precision (default 8).
	Bits int
	// Sparsity applies unstructured DECENT pruning before quantization.
	Sparsity float64
	// PruneSparsity, when non-zero, replaces Sparsity with
	// block-structured pruning at this fraction: whole sparse skip
	// blocks are zeroed, so the realized block sparsity the sparse
	// backend can elide equals the requested fraction (the
	// `-prune-sparsity` serving flag).
	PruneSparsity float64
	// SparseBackend selects the compute backend kernels deploy on:
	// "" or "auto" picks per kernel by realized block sparsity at
	// quantization time, "dense" / "sparse" force one (the
	// `-sparse-backend` serving flag).
	SparseBackend string
	// Images is the evaluation-set size classified per request
	// (default 32).
	Images int
	// Seed derives datasets, planted labels and fault streams
	// (default 1).
	Seed int64
	// MarginMV is the headroom held above each board's measured Vmin
	// (default 10 mV): the operating point is Vmin+MarginMV, inside the
	// guardband, fault-free, and far below nominal.
	MarginMV float64
	// TargetMV overrides the automatic operating point when non-zero.
	TargetMV float64
	// CharStepMV is the characterization sweep step (default 5 mV).
	CharStepMV float64
	// CharRepeats is the repeats per characterization point (default 2).
	CharRepeats int
	// MaxAttempts bounds how many boards a single request may visit
	// before failing (default 3). Each visit already includes one
	// reboot-and-retry on the same board.
	MaxAttempts int
	// MicroBatch is the accelerator-pass size for inference jobs: caller
	// batches are sliced into micro-batches of this many images, each
	// run as one batched pass with per-micro-batch crash retry
	// (default dnndk.MicroBatch).
	MicroBatch int
	// MonitorInterval is the health-probe period for idle boards
	// (default 50 ms; negative disables the monitor).
	MonitorInterval time.Duration
	// Cores is the DPU core count per board (default 3, the paper's
	// baseline).
	Cores int
	// GemmWorkers pins the process-wide GEMM tile worker pool shared by
	// the compute engine's macro-tiles and the batch executor's lanes
	// (quant.SetWorkers); 0 keeps the GOMAXPROCS-aware automatic
	// default. The pool is global, so the value from the most recently
	// built pool wins.
	GemmWorkers int
	// Governor tunes the per-board adaptive voltage loops (see
	// GovernorConfig). The zero value builds the loops disabled at the
	// default cadence; set Governor.Enabled to start them active.
	Governor GovernorConfig
	// ECC parameterizes BRAM SECDED protection and frame scrubbing (see
	// ECCConfig). The zero value assembles the subsystem disabled with
	// the default scrub cadence.
	ECC ECCConfig
	// EventCap bounds the fleet event journal: the ring retains the most
	// recent EventCap structured events (default 4096). The journal is
	// always assembled — event emission is off the request hot path and
	// costs nothing when nobody reads it.
	EventCap int
	// Telemetry sizes the per-board time-series recorder, the health
	// scorer and the crash flight recorder (see telemetry.Config). The
	// zero value samples every board at the default 50ms interval; set
	// Telemetry.Interval negative to disable the background sampler
	// (tests drive SampleTelemetry explicitly).
	Telemetry telemetry.Config
}

// sanitize fills config defaults.
func (c Config) sanitize() Config {
	if c.Boards <= 0 {
		c.Boards = 3
	}
	if c.Benchmark == "" {
		c.Benchmark = "VGGNet"
	}
	if c.Images <= 0 {
		c.Images = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MarginMV <= 0 {
		c.MarginMV = 10
	}
	if c.CharStepMV <= 0 {
		c.CharStepMV = 5
	}
	if c.CharRepeats <= 0 {
		c.CharRepeats = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MicroBatch <= 0 {
		c.MicroBatch = dnndk.MicroBatch
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = 50 * time.Millisecond
	}
	if c.Cores <= 0 {
		c.Cores = 3
	}
	if c.EventCap <= 0 {
		c.EventCap = 4096
	}
	c.Governor = c.Governor.sanitize()
	c.ECC = c.ECC.sanitize()
	c.Telemetry = c.Telemetry.Sanitize()
	return c
}

// Request is one classification job: a full pass over the deployment's
// evaluation set.
type Request struct {
	// Seed derives the fault-injection stream for this pass; 0 draws a
	// fresh deterministic seed from the pool's sequence.
	Seed int64
	// Span, when non-nil, is the caller's trace node for this job: the
	// pool records queue-wait, per-board execute attempts and requeues
	// as its children. Nil (the default) records nothing and costs
	// nothing.
	Span *obs.Span `json:"-"`
}

// Result reports one served request.
type Result struct {
	// Board is the serving board's id ("platform-B#1").
	Board string `json:"board"`
	// VCCINTmV is the rail level the request ran at.
	VCCINTmV float64 `json:"vccint_mv"`
	// Images is the number of images classified.
	Images int `json:"images"`
	// AccuracyPct is the classification accuracy of the pass.
	AccuracyPct float64 `json:"accuracy_pct"`
	// MACFaults and BRAMFaults count injected fault events (zero inside
	// the guardband).
	MACFaults  int64 `json:"mac_faults"`
	BRAMFaults int64 `json:"bram_faults"`
	// ECC is the pass's SECDED outcome split (all-zero when protection
	// is disabled).
	ECC ecc.Counts `json:"ecc"`
	// Attempts is how many board visits the request needed (>1 means a
	// crash/reboot cycle happened underneath it).
	Attempts int `json:"attempts"`
}

// InferRequest is one inference job: caller-supplied images classified
// individually, batched into shared accelerator passes by the pool.
type InferRequest struct {
	// Images are CHW float tensors matching the pool's input shape.
	Images []*tensor.Tensor
	// Seed derives the per-image fault-injection streams; 0 draws a
	// fresh deterministic seed from the pool's sequence.
	Seed int64
	// Span, when non-nil, is the caller's trace node for this job (see
	// Request.Span).
	Span *obs.Span `json:"-"`
}

// InferOutput is one image's classification.
type InferOutput struct {
	// Pred is the argmax class.
	Pred int `json:"pred"`
	// Probs is the host-side softmax output.
	Probs []float32 `json:"probs"`
}

// InferResult reports one served inference job.
type InferResult struct {
	// Board is the board that completed the job (micro-batches may have
	// run on earlier boards before a crash handed the job over).
	Board string `json:"board"`
	// VCCINTmV is the completing board's rail level.
	VCCINTmV float64 `json:"vccint_mv"`
	// Outputs is one entry per submitted image, in order.
	Outputs []InferOutput `json:"outputs"`
	// MicroBatches is how many accelerator passes the job took.
	MicroBatches int `json:"micro_batches"`
	// MACFaults and BRAMFaults count injected fault events observed by
	// the job (zero inside the guardband).
	MACFaults  int64 `json:"mac_faults"`
	BRAMFaults int64 `json:"bram_faults"`
	// ECC is the job's SECDED outcome split (all-zero when protection
	// is disabled).
	ECC ecc.Counts `json:"ecc"`
	// Attempts is how many board visits the job needed (>1 means a
	// crash/reboot cycle happened underneath it).
	Attempts int `json:"attempts"`
}

// jobKind discriminates the pool's two job kinds.
type jobKind int

const (
	// jobEval is a full evaluation-set pass (the characterization and
	// accuracy-scoring workload).
	jobEval jobKind = iota
	// jobInfer carries caller images for per-image classification.
	jobInfer
)

// job is a queued request with its completion channel.
type job struct {
	kind     jobKind
	req      Request      // eval payload
	inf      InferRequest // infer payload
	attempts int
	// Inference progress, persistent across board visits: a crash only
	// costs the in-flight micro-batch, completed micro-batches keep
	// their outputs when the job is handed to another board.
	outs         []InferOutput
	completed    int
	microBatches int
	macF, bramF  int64
	eccC         ecc.Counts
	// canceled is set when the submitting caller abandons the wait:
	// workers skip the job instead of burning an accelerator pass
	// for a caller that is gone.
	canceled atomic.Bool
	done     chan jobOut
	// span is the caller's trace node (nil when untraced); wait is the
	// open fleet-queue-wait span of the current board visit, ended by
	// the worker that pops the job and re-created per requeue.
	span *obs.Span
	wait *obs.Span
	// lastBoard is the board that failed the job's previous visit; the
	// queue hands such a job to a different board when one is idle.
	lastBoard string
}

type jobOut struct {
	res Result
	inf InferResult
	err error
}

// Pool owns N simulated boards and schedules classification requests
// across them.
type Pool struct {
	cfg     Config
	members []*member
	queue   *workQueue
	gov     *governor
	eccSt   eccState
	journal *obs.Journal

	// telem is the pool's time-series recorder (boards + pool aggregate
	// pseudo-board), telemCfg its sanitized config. synthCorr and
	// synthStampNS are sampler-owned state for the injected corrected-ECC
	// ramp (single sampling goroutine; no lock). jobLatency is the pool's
	// job-latency quantile digest (lock-free; workers observe, readers
	// snapshot).
	telem        *telemetry.Recorder
	telemCfg     telemetry.Config
	synthCorr    []float64
	synthStampNS int64
	jobLatency   telemetry.Digest

	wg      sync.WaitGroup
	stop    chan struct{}
	closing atomic.Bool
	closed  sync.Once
	// admit fences Classify's check-then-push against Close: pushes
	// hold the read side, Close takes the write side after setting
	// closing, so no job can slip into the queue once the drain begins.
	admit sync.RWMutex

	seq      atomic.Int64
	requeues atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	shed     atomic.Int64
	inFlight atomic.Int64
	// svcNS is a smoothed per-job service time (EWMA, nanoseconds) —
	// the drain-rate estimate behind ErrSaturated.RetryAfter. Updated
	// with plain load/store: a lost update under contention only costs
	// smoothing accuracy on a hint.
	svcNS atomic.Int64
	macF  atomic.Int64
	bramF atomic.Int64
	// Per-kind traffic counters. Kept separately (instead of deriving
	// one split from totals) so every exported figure is individually
	// monotonic: a derived difference can transiently dip when a
	// snapshot lands between a worker's two increments.
	evalReqs     atomic.Int64
	evalServed   atomic.Int64
	inferReqs    atomic.Int64
	inferServed  atomic.Int64
	inferImages  atomic.Int64
	microBatches atomic.Int64
	// satErrs interns shed errors so a saturated pool refuses work
	// without allocating (see SatErrCache).
	satErrs SatErrCache
}

// New assembles, deploys, characterizes and starts a pool. On return
// every board is held at its underscaled operating point and the workers
// and health monitor are running.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.sanitize()
	p := &Pool{
		cfg:     cfg,
		queue:   newWorkQueue(),
		stop:    make(chan struct{}),
		journal: obs.NewJournal(cfg.EventCap),
	}
	for i := 0; i < cfg.Boards; i++ {
		m, err := newMember(i, cfg)
		if err != nil {
			return nil, err
		}
		m.jr = p.journal
		p.members = append(p.members, m)
	}
	for _, m := range p.members {
		p.wg.Add(1)
		go p.worker(m)
	}
	if cfg.MonitorInterval > 0 {
		p.wg.Add(1)
		go p.monitor(cfg.MonitorInterval)
	}
	p.startGovernor(cfg.Governor)
	p.startScrubbers(cfg.ECC)
	p.startTelemetry(cfg.Telemetry)
	return p, nil
}

// Size returns the number of boards.
func (p *Pool) Size() int { return len(p.members) }

// Benchmark returns the workload the pool serves.
func (p *Pool) Benchmark() string { return p.cfg.Benchmark }

// Name returns the pool's configured label ("pool" when unnamed).
func (p *Pool) Name() string {
	if p.cfg.Name == "" {
		return "pool"
	}
	return p.cfg.Name
}

// QueueDepth is the present backlog: jobs admitted but not yet picked
// up by a worker. Part of the Scheduler admission surface.
func (p *Pool) QueueDepth() int { return p.queue.Len() }

// InFlight is the number of jobs currently executing on boards.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Pools returns the pool itself: a *Pool is the one-pool Scheduler.
func (p *Pool) Pools() []*Pool { return []*Pool{p} }

// QuiescentBoards reports how many of the pool's boards have settled
// voltage control — the SLO routing signal for latency-sensitive
// traffic. A board counts as quiescent when its governor loop is
// disabled (static rails never move mid-request) or has settled at a
// verified operating point.
func (p *Pool) QuiescentBoards() (settled, total int) {
	total = len(p.members)
	enabled := p.gov != nil && p.gov.enabled.Load()
	for _, m := range p.members {
		if !enabled || m.gov == nil || m.gov.settledFlag.Load() {
			settled++
		}
	}
	return settled, total
}

// OperatingPowerW estimates the pool's present accelerator power: the
// sum over boards of the silicon power model evaluated at each board's
// live rails. The bulk-traffic routing cost signal — cheaper pools
// (settled deeper into the guardband) attract eval passes.
func (p *Pool) OperatingPowerW() float64 {
	var w float64
	for _, m := range p.members {
		w += m.brd.PowerBreakdownAtRails(m.opMV(), m.bramOpMV()).TotalW
	}
	return w
}

// Classify enqueues one evaluation-set pass and blocks until a board
// serves it, the context is canceled, or the pool is closed.
func (p *Pool) Classify(ctx context.Context, req Request) (Result, error) {
	if err := p.quickShed(); err != nil {
		return Result{}, err
	}
	if req.Seed == 0 {
		req.Seed = p.cfg.Seed + p.seq.Add(1)*7919
	}
	out, err := p.submit(ctx, &job{req: req, span: req.Span, done: make(chan jobOut, 1)})
	return out.res, err
}

// quickShed is the allocation-free admission pre-check: when the
// backlog is already at its bound, refuse with the interned shed error
// before the caller's job struct and done channel are even built. A
// saturated scheduler sees mostly refusals, so the refusal path must
// stay off the heap. The check is advisory — a losing race just falls
// through to submit's authoritative bounded TryPush. Skipped while
// closing so ErrClosed keeps precedence over ErrSaturated.
func (p *Pool) quickShed() error {
	if p.cfg.MaxQueue <= 0 || p.closing.Load() {
		return nil
	}
	if depth := p.queue.Len(); depth >= p.cfg.MaxQueue {
		p.shed.Add(1)
		return p.saturatedErr(depth)
	}
	return nil
}

// InputShape returns the CHW geometry inference images must have.
func (p *Pool) InputShape() nn.Shape {
	return p.members[0].bench.InputShape
}

// Infer enqueues one inference job (per-image classification of caller
// images) and blocks until a board serves it, the context is canceled,
// or the pool is closed. The job is executed micro-batch by micro-batch
// with crash retry at micro-batch granularity: a crash costs only the
// in-flight micro-batch, never already-classified images.
func (p *Pool) Infer(ctx context.Context, req InferRequest) (InferResult, error) {
	if len(req.Images) == 0 {
		return InferResult{}, fmt.Errorf("fleet: inference request carries no images")
	}
	shape := p.InputShape()
	want := shape.C * shape.H * shape.W
	for i, img := range req.Images {
		if img == nil || img.Size() != want {
			return InferResult{}, fmt.Errorf("fleet: image %d does not match input shape %dx%dx%d",
				i, shape.C, shape.H, shape.W)
		}
	}
	if err := p.quickShed(); err != nil {
		return InferResult{}, err
	}
	if req.Seed == 0 {
		req.Seed = p.cfg.Seed + p.seq.Add(1)*7919
	}
	j := &job{
		kind: jobInfer,
		inf:  req,
		span: req.Span,
		outs: make([]InferOutput, len(req.Images)),
		done: make(chan jobOut, 1),
	}
	out, err := p.submit(ctx, j)
	return out.inf, err
}

// submit runs the shared admission/wait protocol for one job.
func (p *Pool) submit(ctx context.Context, j *job) (jobOut, error) {
	p.admit.RLock()
	if p.closing.Load() {
		p.admit.RUnlock()
		p.rejected.Add(1)
		return jobOut{}, ErrClosed
	}
	// The wait span must exist before the push: a worker may pop the job
	// immediately and end it.
	j.wait = j.span.Child(obs.StageFleetWait)
	depth, ok := p.queue.TryPush(j, p.cfg.MaxQueue)
	if !ok {
		p.admit.RUnlock()
		j.wait.End()
		p.shed.Add(1)
		return jobOut{}, p.saturatedErr(depth)
	}
	if j.kind == jobInfer {
		p.inferReqs.Add(1)
	} else {
		p.evalReqs.Add(1)
	}
	p.admit.RUnlock()
	select {
	case out := <-j.done:
		return out, out.err
	case <-ctx.Done():
		// Mark the abandoned job so a worker that later pops it skips
		// it instead of spending accelerator passes (and a served-count
		// increment) on a caller that is gone.
		j.canceled.Store(true)
		return jobOut{}, ctx.Err()
	}
}

// worker serially serves queued jobs on one board until the queue is
// closed and drained.
func (p *Pool) worker(m *member) {
	defer p.wg.Done()
	for {
		j, ok := p.queue.Pop(m.id)
		if !ok {
			return
		}
		j.wait.End()
		if j.canceled.Load() {
			p.canceled.Add(1)
			continue
		}
		j.attempts++
		p.inFlight.Add(1)
		start := time.Now()
		var out jobOut
		var err error
		switch j.kind {
		case jobInfer:
			out.inf, err = p.serveInferOn(m, j)
			if err == nil {
				p.inferServed.Add(1)
				p.inferImages.Add(int64(len(out.inf.Outputs)))
				p.macF.Add(out.inf.MACFaults)
				p.bramF.Add(out.inf.BRAMFaults)
			}
		default:
			out.res, err = p.serveOn(m, j)
			if err == nil {
				p.evalServed.Add(1)
				p.macF.Add(out.res.MACFaults)
				p.bramF.Add(out.res.BRAMFaults)
			}
		}
		p.inFlight.Add(-1)
		if err == nil {
			// Fold the visit into the smoothed service time (α = 1/8).
			dur := time.Since(start).Nanoseconds()
			old := p.svcNS.Load()
			if old == 0 {
				p.svcNS.Store(dur)
			} else {
				p.svcNS.Store(old + (dur-old)/8)
			}
			p.jobLatency.Observe(float64(dur) / 1e9)
		}
		if err == nil {
			j.done <- out
			continue
		}
		// The board failed this job even after its local
		// reboot-and-retry. Hand the job to another board unless the
		// caller is gone, the request has exhausted its visits, or the
		// pool is draining.
		if j.canceled.Load() {
			p.canceled.Add(1)
			continue
		}
		if j.attempts < p.cfg.MaxAttempts && !p.closing.Load() {
			p.requeues.Add(1)
			m.event(obs.EvRequeue, 0, fmt.Sprintf("visit %d failed (%v); handing job to another board", j.attempts, err))
			if rq := j.span.Child(obs.StageRequeue); rq != nil {
				rq.Board = m.id
				rq.Err = err.Error()
				rq.End()
			}
			j.wait = j.span.Child(obs.StageFleetWait)
			j.lastBoard = m.id
			p.queue.Push(j)
			continue
		}
		p.failed.Add(1)
		j.done <- jobOut{err: fmt.Errorf("fleet: request failed after %d attempts: %w", j.attempts, err)}
	}
}

// classifyRNG derives the fault-injection stream for one attempt of one
// request. Attempt ordinal 0 reproduces the request's pinned stream
// exactly — a caller that pins a seed is asking for a specific fault
// stream. Every retry (the local post-crash retry, and each visit to
// another board) salts the stream with the attempt ordinal: replaying
// the exact fault stream that just wrecked a pass would make the retry
// deterministically repeat the failure.
func classifyRNG(seed, attempt int64) *rand.Rand {
	s := seed*6364136223846793005 + 1442695040888963407
	if attempt > 0 {
		s ^= attempt * -0x61c8864680b583eb // golden-ratio odd constant
		s = s*6364136223846793005 + 1442695040888963407
	}
	return rand.New(rand.NewSource(s))
}

// serveOn runs one job on one board, transparently recovering from a
// crash (reboot → re-deploy → restore voltage → retry once).
func (p *Pool) serveOn(m *member, j *job) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.activeTrace = j.span.TraceID()
	defer func() { m.activeTrace = "" }()

	if m.brd.Hung() {
		m.noteCrash()
		if err := m.recover(); err != nil {
			return Result{}, err
		}
	}
	for attempt := 0; ; attempt++ {
		// Global attempt ordinal across board visits: each visit gets
		// at most two tries (initial + one local post-crash retry).
		ordinal := int64(j.attempts-1)*2 + int64(attempt)
		exec := j.span.Child(obs.StageExecute)
		if exec != nil {
			exec.Board = m.id
			exec.Attempt = int32(ordinal)
			exec.Images = int32(m.ds.Len())
			exec.Batch = int32(m.ds.Len())
			exec.VCCINTmV = m.brd.VCCINTmV()
			exec.VCCBRAMmV = m.brd.VCCBRAMmV()
		}
		var cr *dnndk.ClassifyResult
		var err error
		if m.takeInjectedFailure() {
			err = board.ErrHung
		} else {
			cr, err = m.task.ClassifyWith(m.scratch, m.ds, classifyRNG(j.req.Seed, ordinal))
		}
		if err == nil {
			if exec != nil {
				exec.MACFaults = cr.MACFaults
				exec.BRAMFaults = cr.BRAMFaults
				exec.ECCCorrected = cr.ECC.Corrected
				exec.ECCDetected = cr.ECC.Detected
				exec.ECCSilent = cr.ECC.Silent
				exec.ExecNS = cr.ExecNS
			}
			exec.End()
			m.served.Add(1)
			m.noteServedFaults(cr.MACFaults, cr.BRAMFaults, cr.ECC)
			return Result{
				Board:       m.id,
				VCCINTmV:    m.brd.VCCINTmV(),
				Images:      m.ds.Len(),
				AccuracyPct: cr.AccuracyPct,
				MACFaults:   cr.MACFaults,
				BRAMFaults:  cr.BRAMFaults,
				ECC:         cr.ECC,
				Attempts:    j.attempts,
			}, nil
		}
		if exec != nil {
			exec.Err = err.Error()
		}
		exec.End()
		if !errors.Is(err, board.ErrHung) || attempt >= 1 {
			return Result{}, err
		}
		m.noteCrash()
		m.retries.Add(1)
		if rerr := m.recover(); rerr != nil {
			return Result{}, rerr
		}
	}
}

// inferSeed derives image img's fault-stream seed for one attempt of one
// inference job. Like classifyRNG, attempt ordinal 0 reproduces the
// job's pinned streams exactly and every retry salts them: replaying the
// exact fault stream that just wrecked a micro-batch would make the
// retry deterministically repeat the failure.
func inferSeed(seed int64, img int, attempt int64) int64 {
	s := seed ^ (int64(img)+1)*-0x61c8864680b583eb // golden-ratio odd constant
	s = s*6364136223846793005 + 1442695040888963407
	if attempt > 0 {
		s ^= attempt * -0x61c8864680b583eb
		s = s*6364136223846793005 + 1442695040888963407
	}
	return s
}

// serveInferOn runs one inference job on one board, micro-batch by
// micro-batch, transparently recovering from a crash (reboot → re-deploy
// → restore voltage → retry the in-flight micro-batch once). Progress is
// kept on the job, so a board that gives up after its local retry hands
// the remaining images — not the whole job — to the next board.
func (p *Pool) serveInferOn(m *member, j *job) (InferResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.activeTrace = j.span.TraceID()
	defer func() { m.activeTrace = "" }()

	if m.brd.Hung() {
		m.noteCrash()
		if err := m.recover(); err != nil {
			return InferResult{}, err
		}
	}
	imgs := j.inf.Images
	for j.completed < len(imgs) {
		// The pop-time canceled check only covers single-pass jobs; a
		// multi-micro-batch job must notice an abandoning caller between
		// passes or the worker burns the rest of the job for nobody.
		if j.canceled.Load() {
			return InferResult{}, errAbandoned
		}
		lo := j.completed
		hi := lo + p.cfg.MicroBatch
		if hi > len(imgs) {
			hi = len(imgs)
		}
		for attempt := 0; ; attempt++ {
			// Global attempt ordinal across board visits: each visit gets
			// at most two tries (initial + one local post-crash retry).
			ordinal := int64(j.attempts-1)*2 + int64(attempt)
			exec := j.span.Child(obs.StageExecute)
			if exec != nil {
				exec.Board = m.id
				exec.Attempt = int32(ordinal)
				exec.Batch = int32(hi - lo)
				exec.VCCINTmV = m.brd.VCCINTmV()
				exec.VCCBRAMmV = m.brd.VCCBRAMmV()
			}
			var results []dpu.Result
			var err error
			if m.takeInjectedFailure() {
				err = board.ErrHung
			} else {
				rngs := m.scratch.BatchRNGs(hi - lo)
				for i := range rngs {
					rngs[i].Seed(inferSeed(j.inf.Seed, lo+i, ordinal))
				}
				results, err = m.task.InferBatch(m.scratch, imgs[lo:hi], rngs)
			}
			if err == nil {
				var mb, bb int64
				for i := range results {
					out := &j.outs[lo+i]
					out.Pred = results[i].Pred
					out.Probs = append(out.Probs[:0], results[i].Probs.Data()...)
					mb += results[i].MACFaults
					bb += results[i].BRAMFaults
				}
				j.macF += mb
				j.bramF += bb
				if len(results) > 0 {
					// Every image of a micro-batch carries the batch's
					// shared outcome split; count each event once.
					j.eccC.Add(results[0].ECC)
					if exec != nil {
						exec.MACFaults = mb
						exec.BRAMFaults = bb
						exec.ECCCorrected = results[0].ECC.Corrected
						exec.ECCDetected = results[0].ECC.Detected
						exec.ECCSilent = results[0].ECC.Silent
						exec.ExecNS = results[0].ExecNS
					}
				}
				exec.End()
				j.microBatches++
				p.microBatches.Add(1)
				j.completed = hi
				break
			}
			if exec != nil {
				exec.Err = err.Error()
			}
			exec.End()
			if !errors.Is(err, board.ErrHung) || attempt >= 1 {
				return InferResult{}, err
			}
			m.noteCrash()
			m.retries.Add(1)
			if rerr := m.recover(); rerr != nil {
				return InferResult{}, rerr
			}
		}
	}
	m.served.Add(1)
	// The completing board absorbs the whole job's fault signal; images
	// served on a pre-crash board are a negligible sliver of traffic.
	m.noteServedFaults(j.macF, j.bramF, j.eccC)
	return InferResult{
		Board:        m.id,
		VCCINTmV:     m.brd.VCCINTmV(),
		Outputs:      j.outs,
		MicroBatches: j.microBatches,
		MACFaults:    j.macF,
		BRAMFaults:   j.bramF,
		ECC:          j.eccC,
		Attempts:     j.attempts,
	}, nil
}

// monitor probes idle boards so a crash is detected and healed even with
// no traffic routed to the board (the paper's host-side liveness check,
// run fleet-wide). A busy board is skipped: its worker handles crashes
// in-line.
func (p *Pool) monitor(interval time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, m := range p.members {
				if !m.mu.TryLock() {
					continue
				}
				if m.brd.CheckAlive() != nil {
					m.noteCrash()
					_ = m.recover()
				}
				m.mu.Unlock()
			}
		}
	}
}

// targets resolves a board index to the members it addresses (idx < 0
// addresses every board).
func (p *Pool) targets(idx int) ([]*member, error) {
	if idx >= len(p.members) {
		return nil, fmt.Errorf("fleet: board %d out of range (pool has %d)", idx, len(p.members))
	}
	if idx >= 0 {
		return p.members[idx : idx+1], nil
	}
	return p.members, nil
}

// SetVCCINTmV commands the VCCINT rail of one board (or every board when
// idx is negative). Setting a level below the board's Vcrash induces a
// crash that the pool detects and heals — the fault-injection knob the
// crash-recovery tests and the /v1/fleet/voltage endpoint use. The rail
// move happens under the member lock, like every other accelerator
// operation: an unlocked move could interleave with a worker's
// classify/recover sequence and land between its reboot and its
// restore-voltage step.
func (p *Pool) SetVCCINTmV(idx int, mv float64) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	for _, m := range targets {
		m.mu.Lock()
		err := m.setVCCINT(mv)
		m.mu.Unlock()
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", m.id, err)
		}
		m.event(obs.EvRailVCCINT, mv, "externally commanded rail move")
	}
	return nil
}

// SetOperatingMV re-targets the steady-state operating point of one board
// (or all, idx<0) and applies it immediately. The level must stay above
// the board's measured Vcrash.
func (p *Pool) SetOperatingMV(idx int, mv float64) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	for _, m := range targets {
		if mv <= m.regions.VcrashMV {
			return fmt.Errorf("fleet: %s: %.0f mV is at/below Vcrash %.0f mV", m.id, mv, m.regions.VcrashMV)
		}
		m.mu.Lock()
		m.setOpMV(mv)
		if m.gov != nil {
			// A manual re-target re-bases the control loop: the new
			// point is treated as clean and the loop re-seeks from it.
			// The clean level is capped at the governor ceiling (the
			// static startup point) so a re-target above it cannot
			// seed an unverified plunge back down to the ceiling, and
			// floored at the governor floor so a re-target barely
			// above Vcrash cannot make the loop probe below it.
			cfg := p.gov.config()
			clean := math.Min(mv, m.staticMV) - cfg.MarginMV
			if floor := governFloorMV(m, cfg); clean < floor {
				clean = floor
			}
			m.gov.setCleanMV(clean)
			m.gov.cleanStreak, m.gov.verifyFor = 0, 0
			m.gov.unsettle()
		}
		err := m.setVCCINT(mv)
		m.mu.Unlock()
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", m.id, err)
		}
		m.event(obs.EvRailVCCINT, mv, "operating point re-targeted")
	}
	return nil
}

// Journal returns the pool's bounded fleet event journal — the causal
// record behind /v1/fleet/events and uvolt_events_total.
func (p *Pool) Journal() *obs.Journal { return p.journal }

// InjectFailures arms the chaos-testing knob on one board (idx < 0: all
// boards): each of the next n execute attempts there fails exactly as a
// crash does, driving the crash→reboot→redeploy→requeue machinery on
// demand without moving a rail. n <= 0 disarms. Used by recovery tests
// and the tracing walkthrough; harmless in production (it defaults to
// disarmed and only an operator can arm it).
func (p *Pool) InjectFailures(idx, n int) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	for _, m := range targets {
		m.failInject.Store(int64(n))
	}
	return nil
}

// HoldTemperatureC pins one board's die temperature (idx < 0 pins all),
// clamped to the fan-achievable [34, 52] °C range — the simulated
// thermal-drift knob governor demos and tests use. The thermal model is
// internally synchronized, so no serving pause is needed.
func (p *Pool) HoldTemperatureC(idx int, tC float64) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	for _, m := range targets {
		m.brd.Thermal().HoldTemperature(tC)
	}
	return nil
}

// ReleaseTemperature returns one board (idx < 0: all) to open-loop fan
// control.
func (p *Pool) ReleaseTemperature(idx int) error {
	targets, err := p.targets(idx)
	if err != nil {
		return err
	}
	for _, m := range targets {
		m.brd.Thermal().Release()
	}
	return nil
}

// Close stops admission, drains every queued request, waits for the
// workers and monitor to exit, and returns the boards to nominal rails.
// It is idempotent.
func (p *Pool) Close() {
	p.closed.Do(func() {
		p.closing.Store(true)
		// Wait out any Classify that passed its closing check before
		// the store; after this, no new job can enter the queue.
		p.admit.Lock()
		p.admit.Unlock() //nolint:staticcheck // empty critical section is the fence
		p.queue.Close()
		close(p.stop)
		p.wg.Wait()
		for _, m := range p.members {
			m.mu.Lock()
			_ = m.setVCCINT(silicon.VnomMV)
			_ = m.setVCCBRAM(silicon.VnomMV)
			m.mu.Unlock()
		}
	})
}
