package fleet

import (
	"context"
	"testing"

	"fpgauv/internal/dpu"
)

// The prune→quantize→deploy economics pin: a block-pruned deployment
// compiles for the sparse backend, keeps the compacted packed image in
// BRAM, and so under SECDED the scrubber protects fewer words. At a
// given VCCBRAM that means a lower corrected-word rate, which the
// ECC-aware governor's corrected-rate budget converts into an equal or
// deeper settled rail than the dense deployment's — at equal Top-1
// accuracy, because every event either fleet tolerated was corrected
// before the consumer saw it.
func TestPrunedECCSettlesAtOrBelowDenseRail(t *testing.T) {
	dense := newTestPool(t, eccTestConfig(1, true))
	pcfg := eccTestConfig(1, true)
	pcfg.PruneSparsity = 0.5
	pruned := newTestPool(t, pcfg)

	// The pruned pool must have compiled for the sparse backend (auto
	// selection: realized block sparsity 0.5 clears the threshold) and
	// must report it through the status snapshot.
	pst, dst := pruned.Status(), dense.Status()
	if pst.Backend != dpu.BackendSparse {
		t.Fatalf("pruned pool backend = %q, want %q", pst.Backend, dpu.BackendSparse)
	}
	if dst.Backend != dpu.BackendDense {
		t.Fatalf("dense pool backend = %q, want %q", dst.Backend, dpu.BackendDense)
	}
	if pst.Sparsity <= 0.4 {
		t.Fatalf("pruned pool sparsity = %.2f, want ~0.5", pst.Sparsity)
	}

	// Fewer protected words: the scrubber's golden image is the packed
	// BRAM image, strictly smaller than the dense weight image.
	pw, dw := pst.Boards[0].ECC.Words, dst.Boards[0].ECC.Words
	if pw == 0 || dw == 0 {
		t.Fatalf("protected image sizes not reported: pruned=%d dense=%d", pw, dw)
	}
	if pw >= dw {
		t.Fatalf("pruned protected image %d words, want below dense %d", pw, dw)
	}

	if err := dense.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}
	if err := pruned.HoldTemperatureC(0, 34); err != nil {
		t.Fatal(err)
	}
	const ticks = 220
	settleMember(dense, 0, ticks)
	settleMember(pruned, 0, ticks)

	denseB := dense.Status().Boards[0]
	prunedB := pruned.Status().Boards[0]
	if !denseB.Governor.BRAM.Settled || !prunedB.Governor.BRAM.Settled {
		t.Fatalf("BRAM loops did not settle in %d ticks: dense=%+v pruned=%+v",
			ticks, denseB.Governor.BRAM, prunedB.Governor.BRAM)
	}
	if prunedB.OperatingBRAMMV > denseB.OperatingBRAMMV {
		t.Fatalf("pruned+ECC settled at %.0f mV VCCBRAM, want at or below dense+ECC %.0f mV",
			prunedB.OperatingBRAMMV, denseB.OperatingBRAMMV)
	}

	// Equal Top-1 at the settled points under pinned fault streams: both
	// deployments plant the same target accuracy, and everything either
	// protected fleet absorbed at its rail was corrected.
	const seed = 41
	resDense, err := dense.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	resPruned, err := pruned.Classify(context.Background(), Request{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if resPruned.AccuracyPct != resDense.AccuracyPct {
		t.Fatalf("accuracy at settled points: pruned %.2f%% vs dense %.2f%%",
			resPruned.AccuracyPct, resDense.AccuracyPct)
	}
	if resPruned.ECC.Silent != 0 || resPruned.ECC.Detected != 0 {
		t.Errorf("harmful events served at the pruned settled point: %+v", resPruned.ECC)
	}
}
