// Package thermal models the ZCU102 board's thermal behaviour: die
// temperature as a function of dissipated power and fan speed. The paper
// (§7) regulates board temperature between 34 °C and 52 °C by driving the
// fan through PMBus and reading the on-die sensor back; this package
// provides both that open-loop fan mode and a closed-loop hold mode the
// experiment harness uses to pin a curve to a target temperature.
package thermal

import (
	"math"
	"sync"
)

// Fan speed limits of the ZCU102 chassis fan.
const (
	MinRPM = 1000.0
	MaxRPM = 5000.0
)

// Calibration: with the accelerator dissipating ≈12.6 W, the achievable
// die-temperature range via fan control is [34, 52] °C (paper §7 footnote:
// "[34°C, 52°C] is the temperature range that we could generate using the
// fan speed").
const (
	// AmbientC is the lab ambient temperature.
	AmbientC = 25.0
	// RthMaxFan is the junction-to-ambient thermal resistance (°C/W)
	// at full fan speed: 25 + 0.715*12.59 ≈ 34 °C.
	RthMaxFan = 0.715
	// RthMinFan is the thermal resistance at minimum fan speed:
	// 25 + 2.145*12.59 ≈ 52 °C.
	RthMinFan = 2.145
)

// Model computes steady-state die temperature. The zero value is a valid
// model at maximum fan speed in open-loop mode. A Model is safe for
// concurrent use: the fleet's adaptive voltage governor drifts fan/hold
// state while serving workers and status snapshots read die temperature.
type Model struct {
	mu     sync.RWMutex
	fanRPM float64
	// hold, when non-zero, pins the die temperature (closed loop).
	holdC float64
}

// New returns a model with the fan at full speed.
func New() *Model {
	return &Model{fanRPM: MaxRPM}
}

// SetFanRPM sets the fan speed, clamped to the chassis limits, and
// returns the clamped value. Setting a fan speed leaves hold mode.
func (m *Model) SetFanRPM(rpm float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holdC = 0
	m.fanRPM = math.Min(math.Max(rpm, MinRPM), MaxRPM)
	return m.fanRPM
}

// FanRPM returns the current fan speed.
func (m *Model) FanRPM() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fanRPMLocked()
}

func (m *Model) fanRPMLocked() float64 {
	if m.fanRPM == 0 {
		return MaxRPM
	}
	return m.fanRPM
}

// HoldTemperature pins the die temperature to tC (closed-loop fan plus
// chassis preheat, the way the paper holds each measured curve at a fixed
// temperature). The value is clamped to the achievable [34, 52] range.
func (m *Model) HoldTemperature(tC float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holdC = math.Min(math.Max(tC, 34), 52)
	return m.holdC
}

// Release leaves hold mode and returns to open-loop fan control.
func (m *Model) Release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.holdC = 0
}

// Holding reports whether the model is in closed-loop hold mode and at
// what temperature.
func (m *Model) Holding() (bool, float64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.holdC != 0, m.holdC
}

// rthLocked interpolates thermal resistance between the fan-speed
// extremes. Caller holds m.mu (read side is enough).
func (m *Model) rthLocked() float64 {
	rpm := m.fanRPMLocked()
	frac := (rpm - MinRPM) / (MaxRPM - MinRPM) // 0 = slowest, 1 = fastest
	return RthMinFan + frac*(RthMaxFan-RthMinFan)
}

// DieTempC returns the steady-state die temperature for the given
// dissipated power.
func (m *Model) DieTempC(powerW float64) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.holdC != 0 {
		return m.holdC
	}
	if powerW < 0 {
		powerW = 0
	}
	return AmbientC + m.rthLocked()*powerW
}

// RangeAtPower returns the achievable [min, max] die temperatures at the
// given power level across the full fan range.
func (m *Model) RangeAtPower(powerW float64) (minC, maxC float64) {
	return AmbientC + RthMaxFan*powerW, AmbientC + RthMinFan*powerW
}
