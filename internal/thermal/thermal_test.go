package thermal

import (
	"math"
	"testing"
)

func TestPaperTemperatureRangeAtNominalPower(t *testing.T) {
	m := New()
	m.SetFanRPM(MaxRPM)
	if got := m.DieTempC(12.59); math.Abs(got-34) > 0.5 {
		t.Errorf("max fan at 12.59 W: %.2f °C, want ≈34", got)
	}
	m.SetFanRPM(MinRPM)
	if got := m.DieTempC(12.59); math.Abs(got-52) > 0.5 {
		t.Errorf("min fan at 12.59 W: %.2f °C, want ≈52", got)
	}
}

func TestFanClamping(t *testing.T) {
	m := New()
	if got := m.SetFanRPM(99999); got != MaxRPM {
		t.Errorf("clamp high: %.0f", got)
	}
	if got := m.SetFanRPM(-5); got != MinRPM {
		t.Errorf("clamp low: %.0f", got)
	}
}

func TestTemperatureMonotoneInPowerAndFan(t *testing.T) {
	m := New()
	m.SetFanRPM(3000)
	prev := -1.0
	for p := 0.0; p <= 15; p += 1 {
		got := m.DieTempC(p)
		if got <= prev {
			t.Fatalf("temperature must rise with power: %.2f at %.0f W", got, p)
		}
		prev = got
	}
	m2 := New()
	m2.SetFanRPM(MaxRPM)
	fast := m2.DieTempC(10)
	m2.SetFanRPM(MinRPM)
	slow := m2.DieTempC(10)
	if fast >= slow {
		t.Fatalf("faster fan must cool more: %.2f vs %.2f", fast, slow)
	}
}

func TestHoldTemperature(t *testing.T) {
	m := New()
	got := m.HoldTemperature(45)
	if got != 45 {
		t.Fatalf("hold = %.1f", got)
	}
	if temp := m.DieTempC(2.0); temp != 45 {
		t.Fatalf("held temperature should ignore power: %.1f", temp)
	}
	if ok, tc := m.Holding(); !ok || tc != 45 {
		t.Fatalf("holding state = %v, %.1f", ok, tc)
	}
	if got := m.HoldTemperature(90); got != 52 {
		t.Fatalf("hold clamps to achievable range, got %.1f", got)
	}
	m.Release()
	if ok, _ := m.Holding(); ok {
		t.Fatal("release should leave hold mode")
	}
	m.SetFanRPM(2000)
	if ok, _ := m.Holding(); ok {
		t.Fatal("setting fan speed should leave hold mode")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Model
	if m.FanRPM() != MaxRPM {
		t.Fatal("zero value should default to max fan")
	}
	if temp := m.DieTempC(12.59); math.Abs(temp-34) > 0.5 {
		t.Fatalf("zero value temp = %.2f", temp)
	}
}

func TestRangeAtPower(t *testing.T) {
	var m Model
	lo, hi := m.RangeAtPower(12.59)
	if math.Abs(lo-34) > 0.5 || math.Abs(hi-52) > 0.5 {
		t.Fatalf("range = [%.1f, %.1f], want ≈[34, 52]", lo, hi)
	}
	if lo >= hi {
		t.Fatal("range inverted")
	}
}
