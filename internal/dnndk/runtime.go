package dnndk

import (
	"fmt"
	"math/rand"

	"fpgauv/internal/board"
	"fpgauv/internal/dpu"
	"fpgauv/internal/ecc"
	"fpgauv/internal/models"
	"fpgauv/internal/tensor"
)

// Runtime is the N2Cube-style host runtime: it owns the DPU cores on a
// board, stages kernel weights in DDR, runs classification tasks, and
// caches fault-free reference predictions (the basis of the planted-label
// accuracy protocol).
type Runtime struct {
	brd *board.ZCU102
	dp  *dpu.DPU
	// refCache maps kernel+dataset identity to fault-free predictions.
	refCache map[string][]int
	loads    int
}

// NewRuntime programs nCores B4096 cores (the paper's baseline is 3) and
// returns the runtime.
func NewRuntime(brd *board.ZCU102, nCores int) (*Runtime, error) {
	return NewRuntimeConfig(brd, dpu.B4096(), nCores)
}

// NewRuntimeConfig is NewRuntime with an explicit core variant — the
// hook through which deployment-level tuning (e.g. the GEMM worker-pool
// width in Config.GemmWorkers) reaches the accelerator.
func NewRuntimeConfig(brd *board.ZCU102, cfg dpu.Config, nCores int) (*Runtime, error) {
	dp, err := dpu.New(brd, cfg, nCores)
	if err != nil {
		return nil, err
	}
	return &Runtime{brd: brd, dp: dp, refCache: make(map[string][]int)}, nil
}

// Board returns the underlying board.
func (r *Runtime) Board() *board.ZCU102 { return r.brd }

// DPU returns the programmed accelerator.
func (r *Runtime) DPU() *dpu.DPU { return r.dp }

// Task is a loaded kernel ready to classify.
type Task struct {
	rt     *Runtime
	Kernel *dpu.Kernel
	ddrKey string
}

// LoadKernel validates the kernel, stages its weights in DDR and installs
// the workload descriptor on the board.
func (r *Runtime) LoadKernel(k *dpu.Kernel) (*Task, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	r.loads++
	key := fmt.Sprintf("%s#%d@%d", k.Name, k.Bits, r.loads)
	size := int(k.Program.WeightBytes)
	if size <= 0 {
		size = 1
	}
	base, err := r.brd.DDR().Alloc(key, size)
	if err != nil {
		return nil, fmt.Errorf("dnndk: staging weights: %w", err)
	}
	// Stream the quantized weights into DDR (the loader's job); the
	// content matters for DDR accounting, not for execution, which
	// reads the kernel's own tensors.
	off := 0
	for _, kn := range k.Nodes {
		if kn.WQ == nil {
			continue
		}
		chunk := make([]byte, len(kn.WQ.Data))
		for i, v := range kn.WQ.Data {
			chunk[i] = byte(v)
		}
		if off+len(chunk) > size {
			chunk = chunk[:size-off]
		}
		if len(chunk) == 0 {
			break
		}
		if err := r.brd.DDR().Write(base, off, chunk); err != nil {
			return nil, err
		}
		off += len(chunk)
	}
	r.brd.SetWorkload(k.Workload)
	return &Task{rt: r, Kernel: k, ddrKey: key}, nil
}

// Unload frees the task's DDR staging area.
func (t *Task) Unload() error {
	return t.rt.brd.DDR().Free(t.ddrKey)
}

// Board returns the board the task's kernel is loaded on.
func (t *Task) Board() *board.ZCU102 { return t.rt.brd }

// DPU returns the accelerator the task's kernel is loaded on — the
// handle mitigation strategies and the fleet use to reach the BRAM
// SECDED policy.
func (t *Task) DPU() *dpu.DPU { return t.rt.dp }

// Run classifies one image at the present board conditions.
func (t *Task) Run(img *tensor.Tensor, rng *rand.Rand) (*dpu.Result, error) {
	return t.RunWith(nil, img, rng)
}

// RunWith is Run through a caller-owned Scratch arena (near-zero heap
// allocations in steady state). The returned Result's Probs tensor is
// staged in the arena and only valid until the next run on it.
func (t *Task) RunWith(s *dpu.Scratch, img *tensor.Tensor, rng *rand.Rand) (*dpu.Result, error) {
	t.rt.brd.SetWorkload(t.Kernel.Workload)
	return t.rt.dp.RunWith(s, t.Kernel, img, rng)
}

// MicroBatch is the default accelerator-pass size: eval-set passes (and
// the fleet's inference jobs, by default) are sliced into micro-batches
// of this many images, each executed as one batched pass with BRAM
// faults persistent across it.
const MicroBatch = 16

// InferBatch classifies one micro-batch of caller images in a single
// batched accelerator pass, returning one Result per image. rngs[i] is
// image i's fault stream (see dpu.RunBatch for the batch fault
// contract). Results are staged in the Scratch and valid until the next
// run on it.
func (t *Task) InferBatch(s *dpu.Scratch, imgs []*tensor.Tensor, rngs []*rand.Rand) ([]dpu.Result, error) {
	t.rt.brd.SetWorkload(t.Kernel.Workload)
	return t.rt.dp.RunBatch(s, t.Kernel, imgs, rngs)
}

// refKey identifies a kernel+dataset pair for the reference cache. The
// dataset part is its content fingerprint, never its address: a freed
// dataset and a new one allocated at the same address must not alias
// cache entries (and a re-made identical dataset may share them).
func (t *Task) refKey(ds *models.Dataset) string {
	return fmt.Sprintf("%s/%s#%d:%016x", t.ddrKey, ds.Name, ds.Len(), ds.Fingerprint())
}

// ReferencePreds returns the kernel's fault-free predictions on the
// dataset, computing and caching them on first use. These are the
// predictions used to plant ground-truth labels at the Table 1 accuracy.
// The pass runs on the batched executor, micro-batch by micro-batch.
func (t *Task) ReferencePreds(ds *models.Dataset) ([]int, error) {
	key := t.refKey(ds)
	if preds, ok := t.rt.refCache[key]; ok {
		return preds, nil
	}
	preds := make([]int, ds.Len())
	scratch := dpu.NewScratch() // one arena for the whole reference pass
	for lo := 0; lo < ds.Len(); lo += MicroBatch {
		hi := lo + MicroBatch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		results, err := t.rt.dp.RunBatchClean(scratch, t.Kernel, ds.Inputs[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("dnndk: reference inference: %w", err)
		}
		for i := range results {
			preds[lo+i] = results[i].Pred
		}
	}
	t.rt.refCache[key] = preds
	return preds, nil
}

// PlantLabels plants the dataset's ground-truth labels so the fault-free
// accuracy equals targetAccPct (the Table 1 "our design @Vnom" value).
func (t *Task) PlantLabels(ds *models.Dataset, targetAccPct float64, seed int64) error {
	preds, err := t.ReferencePreds(ds)
	if err != nil {
		return err
	}
	return ds.PlantLabels(preds, targetAccPct, seed)
}

// ClassifyResult aggregates one dataset pass.
type ClassifyResult struct {
	Preds       []int
	AccuracyPct float64
	MACFaults   int64
	BRAMFaults  int64
	// ECC is the pass's SECDED outcome split (zero when the DPU has no
	// enabled protection). Micro-batch persistence means each batch's
	// split is reported once here, not once per image.
	ECC ecc.Counts
	// ExecNS sums the device time of the pass's micro-batches in
	// nanoseconds (zero on the cached fault-free reference path) —
	// execute-attempt spans report it alongside their wall time.
	ExecNS int64
}

// Classify runs the dataset at the present board conditions and scores
// accuracy against the planted labels. When the electrical conditions are
// fault-free the cached reference predictions are reused, which makes
// guardband-region sweep points (no faults by definition) cheap.
func (t *Task) Classify(ds *models.Dataset, rng *rand.Rand) (*ClassifyResult, error) {
	return t.ClassifyWith(nil, ds, rng)
}

// ClassifyWith is Classify through a caller-owned Scratch arena: the
// fleet's per-board workers and the sweep campaigns pass their own so a
// steady-state evaluation pass performs near-zero heap allocations. A nil
// Scratch allocates a transient arena for the pass.
//
// The faulty-region pass runs on the batched executor: the evaluation set
// is one big batch sliced into micro-batches, per-image MAC fault streams
// derived from rng (one Int63 draw per image, so a pinned rng still pins
// the whole pass), and BRAM faults persistent per micro-batch.
func (t *Task) ClassifyWith(s *dpu.Scratch, ds *models.Dataset, rng *rand.Rand) (*ClassifyResult, error) {
	if err := t.rt.brd.CheckAlive(); err != nil {
		return nil, err
	}
	t.rt.brd.SetWorkload(t.Kernel.Workload)

	cond := t.rt.brd.Conditions()
	cond.Stress = t.Kernel.Workload.Stress
	fab := t.rt.brd.Fabric()
	out := &ClassifyResult{}

	if fab.MACFaultProb(cond) == 0 && fab.BRAMBitFaultProb(cond) == 0 {
		preds, err := t.ReferencePreds(ds)
		if err != nil {
			return nil, err
		}
		out.Preds = append([]int(nil), preds...)
	} else {
		if s == nil {
			s = dpu.NewScratch()
		}
		n := ds.Len()
		out.Preds = make([]int, n)
		rngs := s.BatchRNGs(n)
		for i := range rngs[:n] {
			rngs[i].Seed(rng.Int63())
		}
		for lo := 0; lo < n; lo += MicroBatch {
			hi := lo + MicroBatch
			if hi > n {
				hi = n
			}
			results, err := t.InferBatch(s, ds.Inputs[lo:hi], rngs[lo:hi])
			if err != nil {
				return nil, err
			}
			for i := range results {
				out.Preds[lo+i] = results[i].Pred
				out.MACFaults += results[i].MACFaults
				out.BRAMFaults += results[i].BRAMFaults
			}
			if len(results) > 0 {
				// Every image of a micro-batch carries the batch's shared
				// outcome split and pass time; count each once.
				out.ECC.Add(results[0].ECC)
				out.ExecNS += results[0].ExecNS
			}
		}
	}

	if ds.Labels != nil {
		acc, err := ds.Accuracy(out.Preds)
		if err != nil {
			return nil, err
		}
		out.AccuracyPct = acc
	}
	return out, nil
}

// Profile reports the modeled performance and measured power of the task
// at the present board conditions.
type Profile struct {
	GOPs       float64
	ImageTimeS float64
	PowerW     float64
	GOPsPerW   float64
}

// Profile evaluates the task's throughput/power at the present operating
// point.
func (t *Task) Profile() Profile {
	t.rt.brd.SetWorkload(t.Kernel.Workload)
	f := t.rt.brd.FrequencyMHz()
	gops := t.Kernel.GOPs(t.rt.dp.Cores(), f)
	pw := t.rt.brd.PowerBreakdown().TotalW
	p := Profile{
		GOPs:       gops,
		ImageTimeS: t.Kernel.ImageTimeS(f),
		PowerW:     pw,
	}
	if pw > 0 {
		p.GOPsPerW = gops / pw
	}
	return p
}
