package dnndk

import (
	"math"

	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
	"fpgauv/internal/nn"
)

// compileProgram lowers a benchmark graph to the DPU instruction stream
// with per-instruction cost metadata (the DNNC role).
func compileProgram(b *models.Benchmark, bits int, sparsity float64) dpu.Program {
	var p dpu.Program
	bytesPerWeight := float64(bits) / 8

	in := b.InputShape
	p.Instrs = append(p.Instrs, dpu.Instr{
		Kind:     dpu.InstrLoad,
		Node:     nn.InputID,
		Label:    "load_input",
		ActBytes: int64(in.Elems()),
	})
	p.ActBytes += int64(in.Elems())

	for _, n := range b.Graph.Nodes() {
		inShapes := b.Graph.InputShapesOf(n)
		outShape, _ := b.Graph.NodeShape(n.ID)
		macs := n.Op.MACs(inShapes)
		ops := 2 * macs
		var inElems int64
		for _, s := range inShapes {
			inElems += int64(s.Elems())
		}
		act := inElems + int64(outShape.Elems())

		switch op := n.Op.(type) {
		case *nn.Conv2D:
			eff := 0.75
			if op.Kernel == 1 {
				// 1x1 convolutions underfill the MAC array rows.
				eff = 0.60
			}
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrConv, Node: n.ID, Label: n.Label,
				Ops:         ops,
				WeightBytes: int64(math.Ceil(float64(op.ParamCount()) * bytesPerWeight)),
				ActBytes:    act,
				Efficiency:  eff,
			})
		case *nn.Dense:
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrFC, Node: n.ID, Label: n.Label,
				Ops:         ops,
				WeightBytes: int64(math.Ceil(float64(op.ParamCount()) * bytesPerWeight)),
				ActBytes:    act,
				// FC layers reuse no weights across the MAC array.
				Efficiency: 0.25,
			})
		case *nn.Pool2D:
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrPool, Node: n.ID, Label: n.Label, ActBytes: act,
			})
		case nn.ReLU, nn.Sigmoid, *nn.BatchNorm, *nn.LRN, nn.Softmax:
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrAct, Node: n.ID, Label: n.Label, ActBytes: act,
			})
		case nn.Add:
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrEltwise, Node: n.ID, Label: n.Label, ActBytes: act,
			})
		case nn.Concat:
			p.Instrs = append(p.Instrs, dpu.Instr{
				Kind: dpu.InstrConcat, Node: n.ID, Label: n.Label, ActBytes: act,
			})
		case nn.Flatten:
			// Pure address remapping; free on the DPU.
			continue
		}
	}

	out := b.Graph.OutputShape()
	p.Instrs = append(p.Instrs, dpu.Instr{
		Kind:     dpu.InstrSave,
		Node:     b.Graph.Output(),
		Label:    "save_output",
		ActBytes: int64(out.Elems()),
	})

	for _, in := range p.Instrs {
		p.OpsPerImage += in.Ops
		p.WeightBytes += in.WeightBytes
		p.ActBytes += in.ActBytes
	}
	// Sparse decode skips pruned MACs with ~60% efficiency.
	const sparseSkipEff = 0.6
	p.EffectiveOps = int64(float64(p.OpsPerImage) * (1 - sparsity*sparseSkipEff))
	return p
}
