package dnndk

import (
	"math/rand"
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
	"fpgauv/internal/pmbus"
)

// TestClassifyArenaAllocReduction pins the compute engine's allocation
// contract: a steady-state evaluation pass through a warm per-worker
// Scratch must allocate at least 10× less than the reference path with a
// transient arena. The board runs in the critical region so every pass
// exercises the full DPU executor (the guardband shortcut serves cached
// predictions and would measure nothing).
func TestClassifyArenaAllocReduction(t *testing.T) {
	brd := board.MustNew(board.SampleB)
	rt, err := NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Quantize(bench, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench.MakeDataset(8, 1)
	if err := pmbus.NewAdapter(brd.Bus(), board.AddrVCCINT).SetVoltageMV(550); err != nil {
		t.Fatal(err)
	}

	scratch := dpu.NewScratch()
	rng := rand.New(rand.NewSource(9))
	classify := func(s *dpu.Scratch) {
		if _, err := task.ClassifyWith(s, ds, rng); err != nil {
			t.Fatal(err)
		}
	}
	classify(scratch) // warm the arena (first pass grows the buffers)

	arena := testing.AllocsPerRun(5, func() { classify(scratch) })
	rt.DPU().SetReferenceKernels(true)
	defer rt.DPU().SetReferenceKernels(false)
	naive := testing.AllocsPerRun(5, func() { classify(nil) })

	t.Logf("allocs per pass: arena=%.1f naive=%.1f (%.1fx)", arena, naive, naive/arena)
	if naive == 0 {
		t.Fatal("naive path reported zero allocations; measurement broken")
	}
	if arena*10 > naive {
		t.Fatalf("steady-state arena pass allocates %.1f, naive %.1f: reduction below 10x", arena, naive)
	}
}
