// Package dnndk models the Xilinx DNNDK toolchain the paper deploys with
// (§3.1): DECENT (DEep ComprEssioN Tool — quantization and pruning), the
// DNNC-style compiler lowering a network to DPU kernels, and an
// N2Cube-style runtime that loads kernels, stages weights in DDR, runs
// classification tasks and profiles throughput and power.
package dnndk

import (
	"fmt"
	"math"

	"fpgauv/internal/board"
	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
	"fpgauv/internal/nn"
	"fpgauv/internal/prune"
	"fpgauv/internal/quant"
)

// QuantizeOptions configures DECENT quantization.
type QuantizeOptions struct {
	// Bits is the fixed-point precision (8 = the paper's baseline;
	// 7..4 evaluated in §6.1; 3 and below break even at Vnom).
	Bits int
	// CalibImages is the calibration-set size used to fix activation
	// scales.
	CalibImages int
	// CalibSeed derives the calibration set.
	CalibSeed int64
	// Sparsity, when non-zero, applies magnitude pruning before
	// quantization (§6.2). Unstructured per-weight pruning by default;
	// PruneBlocks selects the block-structured mode.
	Sparsity float64
	// PruneBlocks prunes in quant.SparseBlockRows×1 blocks
	// (prune.ApplyBlocks) so the zeroed weights land on whole skip
	// blocks the sparse backend elides, making the realized block
	// sparsity equal the requested fraction.
	PruneBlocks bool
	// Backend selects the compute backend the kernel compiles for:
	// "" or dpu.BackendAuto picks per kernel — sparse when the
	// realized block sparsity of the quantized weights reaches
	// SparseAutoThreshold, dense otherwise; dpu.BackendDense and
	// dpu.BackendSparse force one.
	Backend string
}

// SparseAutoThreshold is the realized block-sparsity fraction at which
// auto backend selection deploys a kernel on the sparse backend: below
// it the bitmap-walk overhead outweighs the skipped blocks. Unstructured
// pruning only clears it at extreme sparsity (skip probability is s^4);
// block-structured pruning (PruneBlocks) realizes it at the requested
// fraction.
const SparseAutoThreshold = 0.25

// DefaultQuantizeOptions returns the paper's baseline: INT8, no pruning.
func DefaultQuantizeOptions() QuantizeOptions {
	return QuantizeOptions{Bits: 8, CalibImages: 8, CalibSeed: 1}
}

// Quantize runs the DECENT flow on a benchmark: optional pruning, BN
// folding, activation calibration, weight quantization — and compiles the
// result into a deployable DPU kernel. The benchmark's graph is
// transformed in place (pruning zeroes weights, BN folds into convs),
// exactly like the real tool rewrites the model.
func Quantize(b *models.Benchmark, opts QuantizeOptions) (*dpu.Kernel, error) {
	if opts.Bits == 0 {
		opts.Bits = 8
	}
	if opts.Bits < quant.MinBits || opts.Bits > quant.MaxBits {
		return nil, fmt.Errorf("dnndk: unsupported precision INT%d", opts.Bits)
	}
	if opts.CalibImages <= 0 {
		opts.CalibImages = 8
	}

	if !dpu.ValidBackend(opts.Backend) {
		return nil, fmt.Errorf("dnndk: unknown backend %q", opts.Backend)
	}

	sparsity := 0.0
	vuln := 1.0
	if opts.Sparsity > 0 {
		var rep prune.Report
		var err error
		if opts.PruneBlocks {
			rep, err = prune.ApplyBlocks(b.Graph, opts.Sparsity, quant.SparseBlockRows)
		} else {
			rep, err = prune.Apply(b.Graph, opts.Sparsity)
		}
		if err != nil {
			return nil, fmt.Errorf("dnndk: pruning: %w", err)
		}
		sparsity = rep.EffectiveSparsity()
		vuln = prune.VulnerabilityScale(sparsity)
	}

	foldBatchNorm(b.Graph)

	// Calibration: observe per-node activation ranges on a small
	// deterministic calibration set.
	calib := quant.NewCalibrator()
	calibSet := b.MakeDataset(opts.CalibImages, opts.CalibSeed^0xca11b)
	for _, img := range calibSet.Inputs {
		calib.Observe("input", img)
		outs, err := b.Graph.ForwardAll(img)
		if err != nil {
			return nil, fmt.Errorf("dnndk: calibration: %w", err)
		}
		for i, out := range outs {
			calib.Observe(nodeKey(i), out)
		}
	}

	k := &dpu.Kernel{
		Name:        b.Name,
		Graph:       b.Graph,
		Bits:        opts.Bits,
		Classes:     b.Classes,
		InScale:     calib.Scale("input", opts.Bits),
		Nodes:       make([]dpu.KernelNode, len(b.Graph.Nodes())),
		ComputeFrac: b.ComputeFrac,
		Sparsity:    sparsity,
		VulnScale:   vuln,
	}
	k.Workload = board.Workload{
		UtilScale:   utilScaleFor(b, opts.Bits),
		ComputeFrac: b.ComputeFrac,
		Stress:      b.Stress,
		Pruned:      sparsity > 0,
	}

	// Per-node scales: activations propagate topologically; conv/FC
	// weights are quantized with their own max-abs scale.
	actScale := make([]float32, len(b.Graph.Nodes()))
	inputScaleOf := func(n nn.Node) float32 {
		id := n.Inputs[0]
		if id == nn.InputID {
			return k.InScale
		}
		return actScale[id]
	}
	for i, n := range b.Graph.Nodes() {
		kn := &k.Nodes[i]
		kn.MACs = n.Op.MACs(b.Graph.InputShapesOf(n))
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			wq, err := quant.Quantize(op.Weights, opts.Bits)
			if err != nil {
				return nil, err
			}
			kn.WQ = wq
			kn.AccScale = inputScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = calib.Scale(nodeKey(i), opts.Bits)
			actScale[i] = kn.OutScale
		case *nn.Dense:
			wq, err := quant.Quantize(op.Weights, opts.Bits)
			if err != nil {
				return nil, err
			}
			kn.WQ = wq
			kn.AccScale = inputScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = calib.Scale(nodeKey(i), opts.Bits)
			actScale[i] = kn.OutScale
		case *nn.Pool2D, nn.ReLU, nn.Flatten:
			// Scale-preserving ops inherit their input's scale.
			kn.OutScale = inputScaleOf(n)
			actScale[i] = kn.OutScale
		default:
			// Rescaling ops (Add, Concat, BatchNorm, Sigmoid,
			// Softmax) use their calibrated output range.
			kn.OutScale = calib.Scale(nodeKey(i), opts.Bits)
			actScale[i] = kn.OutScale
		}
	}

	if err := selectBackend(k, opts.Backend); err != nil {
		return nil, err
	}

	k.Program = compileProgram(b, opts.Bits, sparsity)
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("dnndk: compiled kernel invalid: %w", err)
	}
	return k, nil
}

// selectBackend resolves the kernel's compute backend and, when sparse
// is chosen, packs every weight node into the block-sparse BRAM image.
// Auto mode measures the realized block sparsity of the quantized
// weights — the fraction of SparseBlockRows×1 blocks that are entirely
// zero, i.e. exactly what the sparse engine can skip — and deploys
// sparse when it reaches SparseAutoThreshold.
func selectBackend(k *dpu.Kernel, requested string) error {
	if requested == dpu.BackendDense {
		k.Backend = dpu.BackendDense
		return nil
	}
	var blocks, slots int64
	for i := range k.Nodes {
		kn := &k.Nodes[i]
		if kn.WQ == nil {
			continue
		}
		sw, err := quant.PackSparse(kn.WQ)
		if err != nil {
			return fmt.Errorf("dnndk: packing sparse weights: %w", err)
		}
		kn.SW = sw
		blocks += int64(sw.Blocks())
		slots += int64(sw.Groups()) * int64(sw.K)
	}
	blockSparsity := 0.0
	if slots > 0 {
		blockSparsity = 1 - float64(blocks)/float64(slots)
	}
	if requested == dpu.BackendSparse || blockSparsity >= SparseAutoThreshold {
		k.Backend = dpu.BackendSparse
		return nil
	}
	k.Backend = dpu.BackendDense
	for i := range k.Nodes {
		k.Nodes[i].SW = nil
	}
	return nil
}

// nodeKey is the calibrator key for node index i.
func nodeKey(i int) string { return fmt.Sprintf("node%d", i) }

// utilScaleFor adjusts a benchmark's dynamic-power factor for precision:
// narrower multipliers toggle fewer DSP bits, so dynamic power scales
// roughly with (bits/8)^1.2 — the mechanism behind Fig. 7b's higher
// GOPs/W at lower precision.
func utilScaleFor(b *models.Benchmark, bits int) float64 {
	scale := b.UtilScale
	if bits < 8 {
		scale *= math.Pow(float64(bits)/8, 1.2)
	}
	return scale
}

// foldBatchNorm folds every BatchNorm whose input is a Conv2D into the conv's
// weights and bias, leaving the BN as identity — the standard deployment
// rewrite DECENT performs.
func foldBatchNorm(g *nn.Graph) {
	nodes := g.Nodes()
	for _, n := range nodes {
		bn, ok := n.Op.(*nn.BatchNorm)
		if !ok || len(n.Inputs) != 1 || n.Inputs[0] == nn.InputID {
			continue
		}
		prev := nodes[n.Inputs[0]]
		conv, ok := prev.Op.(*nn.Conv2D)
		if !ok || conv.OutC != len(bn.Scale) {
			continue
		}
		wd := conv.Weights.Data()
		per := conv.InC * conv.Kernel * conv.Kernel
		for oc := 0; oc < conv.OutC; oc++ {
			s := bn.Scale[oc]
			for i := oc * per; i < (oc+1)*per; i++ {
				wd[i] *= s
			}
			conv.Bias[oc] = conv.Bias[oc]*s + bn.Shift[oc]
			bn.Scale[oc] = 1
			bn.Shift[oc] = 0
		}
	}
}
