package dnndk

import (
	"fpgauv/internal/models"
)

// DeployOptions configures DeployBenchmark (the single- and multi-board
// deployment protocol).
type DeployOptions struct {
	// Tiny selects the test-scale model zoo (default: the Small preset).
	Tiny bool
	// Bits is the quantization precision (default 8; the paper's §6.1
	// evaluates 8..4).
	Bits int
	// Sparsity applies DECENT magnitude pruning before quantization
	// (§6.2).
	Sparsity float64
	// PruneBlocks selects block-structured pruning matched to the
	// sparse backend's skip geometry (see QuantizeOptions.PruneBlocks).
	PruneBlocks bool
	// Backend selects the compute backend ("" / auto / dense / sparse;
	// see QuantizeOptions.Backend).
	Backend string
	// Images is the evaluation-set size (default 64).
	Images int
	// Seed derives the dataset and label planting (default 1).
	Seed int64
}

// Deployed bundles a benchmark compiled, loaded and labeled on a runtime.
type Deployed struct {
	Bench *Benchmark
	Task  *Task
	Ds    *models.Dataset
	// Seed is the effective deployment seed after defaulting.
	Seed int64
}

// Benchmark aliases the model-zoo benchmark for Deployed's fields.
type Benchmark = models.Benchmark

// LabelSeed derives the label-planting seed from a deployment seed; every
// (re-)deployment of the same seed must plant identical labels.
func LabelSeed(seed int64) int64 { return seed ^ 0x1ab }

// DeployBenchmark quantizes and loads one of the Table 1 benchmarks on
// the runtime and plants ground-truth labels so the fault-free accuracy
// equals the paper's "our design @Vnom" value. It is the one deployment
// protocol shared by the single-platform API and the fleet.
func DeployBenchmark(rt *Runtime, benchmark string, opts DeployOptions) (*Deployed, error) {
	preset := models.Small
	if opts.Tiny {
		preset = models.Tiny
	}
	if opts.Images <= 0 {
		opts.Images = 64
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	bench, err := models.New(benchmark, preset)
	if err != nil {
		return nil, err
	}
	qopts := DefaultQuantizeOptions()
	if opts.Bits != 0 {
		qopts.Bits = opts.Bits
	}
	qopts.Sparsity = opts.Sparsity
	qopts.PruneBlocks = opts.PruneBlocks
	qopts.Backend = opts.Backend
	k, err := Quantize(bench, qopts)
	if err != nil {
		return nil, err
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		return nil, err
	}
	ds := bench.MakeDataset(opts.Images, opts.Seed)
	if err := task.PlantLabels(ds, bench.TargetAccPct, LabelSeed(opts.Seed)); err != nil {
		return nil, err
	}
	return &Deployed{Bench: bench, Task: task, Ds: ds, Seed: opts.Seed}, nil
}
