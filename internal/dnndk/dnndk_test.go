package dnndk

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/models"
	"fpgauv/internal/nn"
	"fpgauv/internal/pmbus"
)

// rig builds a loaded INT8 VGGNet task on a sample-B board with planted
// labels — the standard experimental setup.
func rig(t *testing.T, images int) (*Runtime, *Task, *models.Dataset) {
	t.Helper()
	brd := board.MustNew(board.SampleB)
	rt, err := NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Quantize(bench, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench.MakeDataset(images, 99)
	if err := task.PlantLabels(ds, bench.TargetAccPct, 5); err != nil {
		t.Fatal(err)
	}
	return rt, task, ds
}

func setVCCINT(t *testing.T, rt *Runtime, mv float64) {
	t.Helper()
	a := pmbus.NewAdapter(rt.Board().Bus(), board.AddrVCCINT)
	if err := a.SetVoltageMV(mv); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeProducesValidKernel(t *testing.T) {
	bench, _ := models.New("GoogleNet", models.Tiny)
	k, err := Quantize(bench, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.Bits != 8 || k.Classes != 10 {
		t.Fatalf("kernel meta: %+v", k)
	}
	if k.Program.OpsPerImage != 2*bench.MACs() {
		t.Fatalf("program ops %d != 2*MACs %d", k.Program.OpsPerImage, 2*bench.MACs())
	}
	if k.Program.WeightBytes == 0 || k.Program.ActBytes == 0 {
		t.Fatal("program traffic accounting empty")
	}
}

func TestQuantizeRejectsBadOptions(t *testing.T) {
	bench, _ := models.New("VGGNet", models.Tiny)
	if _, err := Quantize(bench, QuantizeOptions{Bits: 1}); err == nil {
		t.Fatal("INT1 must be rejected")
	}
	if _, err := Quantize(bench, QuantizeOptions{Bits: 8, Sparsity: 1.5}); err == nil {
		t.Fatal("bad sparsity must be rejected")
	}
}

func TestBatchNormFolding(t *testing.T) {
	bench, _ := models.New("ResNet50", models.Tiny)
	// Find the stem BN before folding: it has non-identity parameters.
	var bn *nn.BatchNorm
	for _, n := range bench.Graph.Nodes() {
		if b, ok := n.Op.(*nn.BatchNorm); ok {
			bn = b
		}
	}
	if bn == nil {
		t.Fatal("ResNet stem should carry a BatchNorm")
	}
	if bn.Scale[0] == 1 {
		t.Fatal("stem BN should be non-identity before folding")
	}
	if _, err := Quantize(bench, DefaultQuantizeOptions()); err != nil {
		t.Fatal(err)
	}
	if bn.Scale[0] != 1 || bn.Shift[0] != 0 {
		t.Fatal("DECENT must fold BN into the preceding conv")
	}
}

func TestAccuracyAtNominalMatchesTable1(t *testing.T) {
	_, task, ds := rig(t, 60)
	res, err := task.Classify(ds, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AccuracyPct-86.0) > 1.0 {
		t.Fatalf("accuracy @Vnom = %.2f%%, want 86%% (Table 1)", res.AccuracyPct)
	}
	if res.MACFaults != 0 {
		t.Fatalf("no faults expected at Vnom, got %d", res.MACFaults)
	}
}

func TestGuardbandPreservesAccuracy(t *testing.T) {
	rt, task, ds := rig(t, 60)
	base, err := task.Classify(ds, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range []float64{750, 650, 575, 570} {
		setVCCINT(t, rt, mv)
		res, err := task.Classify(ds, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("at %.0f mV: %v", mv, err)
		}
		if res.AccuracyPct != base.AccuracyPct {
			t.Fatalf("accuracy changed inside guardband at %.0f mV: %.2f vs %.2f",
				mv, res.AccuracyPct, base.AccuracyPct)
		}
	}
}

func TestCriticalRegionDegradesAccuracy(t *testing.T) {
	rt, task, ds := rig(t, 60)
	base, err := task.Classify(ds, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Average a few repeats mid-critical-region.
	accAt := func(mv float64) float64 {
		setVCCINT(t, rt, mv)
		var sum float64
		const reps = 3
		for r := 0; r < reps; r++ {
			res, err := task.Classify(ds, rand.New(rand.NewSource(int64(100+r))))
			if err != nil {
				t.Fatalf("at %.0f mV: %v", mv, err)
			}
			sum += res.AccuracyPct
		}
		return sum / reps
	}
	at555 := accAt(555)
	at545 := accAt(545)
	if at555 >= base.AccuracyPct {
		t.Fatalf("accuracy must degrade below Vmin: %.2f vs %.2f", at555, base.AccuracyPct)
	}
	if at545 >= at555 {
		t.Fatalf("degradation must deepen: %.2f at 545 vs %.2f at 555", at545, at555)
	}
	// Near Vcrash the classifier approaches random guessing (10%).
	if at545 > 45 {
		t.Fatalf("accuracy near Vcrash = %.2f%%, expected collapse toward 10%%", at545)
	}
}

func TestCrashBelowVcrash(t *testing.T) {
	rt, task, ds := rig(t, 10)
	setVCCINT(t, rt, 535)
	_, err := task.Classify(ds, rand.New(rand.NewSource(1)))
	if !errors.Is(err, board.ErrHung) {
		t.Fatalf("expected board hang at 535 mV, got %v", err)
	}
	rt.Board().Reboot()
	if _, err := task.Classify(ds, rand.New(rand.NewSource(2))); err != nil {
		t.Fatalf("after reboot: %v", err)
	}
}

func TestLowerPrecisionLowersNominalAccuracy(t *testing.T) {
	// Fig. 7a: INT4 baseline accuracy is below INT8's. Plant labels
	// with the INT8 reference, then evaluate an INT4 kernel of the
	// same float model.
	brd := board.MustNew(board.SampleB)
	rt, err := NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench8, _ := models.New("VGGNet", models.Tiny)
	k8, err := Quantize(bench8, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	t8, err := rt.LoadKernel(k8)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench8.MakeDataset(80, 99)
	if err := t8.PlantLabels(ds, 86, 5); err != nil {
		t.Fatal(err)
	}

	bench4, _ := models.New("VGGNet", models.Tiny) // same weights (deterministic)
	opts := DefaultQuantizeOptions()
	opts.Bits = 4
	k4, err := Quantize(bench4, opts)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := rt.LoadKernel(k4)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := t8.Classify(ds, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := t4.Classify(ds, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r4.AccuracyPct >= r8.AccuracyPct {
		t.Fatalf("INT4 accuracy %.2f should fall below INT8 %.2f (Fig. 7a)",
			r4.AccuracyPct, r8.AccuracyPct)
	}
	// Untrained scaled models lose more to aggressive quantization than
	// the paper's trained nets; "well above the 10% chance level" is the
	// invariant that must hold (see EXPERIMENTS.md, Fig. 7 notes).
	if r4.AccuracyPct < 22 {
		t.Fatalf("INT4 should still classify well above chance, got %.2f", r4.AccuracyPct)
	}
}

func TestPrunedKernelMetadata(t *testing.T) {
	bench, _ := models.New("VGGNet", models.Tiny)
	opts := DefaultQuantizeOptions()
	opts.Sparsity = 0.5
	k, err := Quantize(bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k.Sparsity-0.5) > 0.02 {
		t.Fatalf("kernel sparsity = %.3f", k.Sparsity)
	}
	if !k.Workload.Pruned {
		t.Fatal("pruned workload flag must be set (raises Vcrash)")
	}
	if k.VulnScale <= 1 {
		t.Fatal("pruned kernel must amplify fault impact")
	}
	if k.Program.EffectiveOps >= k.Program.OpsPerImage {
		t.Fatal("pruned kernel must skip MACs")
	}
}

func TestProfileReportsThroughputAndPower(t *testing.T) {
	rt, task, _ := rig(t, 4)
	p := task.Profile()
	if p.GOPs <= 0 || p.GOPs > 4092 {
		t.Fatalf("GOPs = %.1f outside (0, peak]", p.GOPs)
	}
	if math.Abs(p.PowerW-12.59) > 0.4 {
		t.Fatalf("power at Vnom = %.2f", p.PowerW)
	}
	if p.GOPsPerW <= 0 {
		t.Fatal("GOPs/W")
	}
	// Undervolting to Vmin must improve GOPs/W ≈2.6x (Fig. 5).
	setVCCINT(t, rt, 570)
	p2 := task.Profile()
	gain := p2.GOPsPerW / p.GOPsPerW
	if math.Abs(gain-2.6) > 0.15 {
		t.Fatalf("GOPs/W gain at Vmin = %.2f, want ≈2.6", gain)
	}
}

func TestLoadKernelStagesWeightsInDDR(t *testing.T) {
	rt, task, _ := rig(t, 4)
	used := rt.Board().DDR().UsedBytes()
	if used <= 0 {
		t.Fatal("kernel weights should be staged in DDR")
	}
	if err := task.Unload(); err != nil {
		t.Fatal(err)
	}
	if rt.Board().DDR().UsedBytes() != 0 {
		t.Fatal("unload should free DDR")
	}
}

func TestQuantizedArgmaxMatchesFloatMostly(t *testing.T) {
	// INT8 quantization should agree with the float reference on the
	// large majority of inputs (Table 1: INT8 "does not incur any
	// significant accuracy loss").
	brd := board.MustNew(board.SampleB)
	rt, err := NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, _ := models.New("VGGNet", models.Tiny)
	k, err := Quantize(bench, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench.MakeDataset(40, 123)
	preds, err := task.ReferencePreds(ds)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, img := range ds.Inputs {
		ref, err := bench.Graph.Forward(img)
		if err != nil {
			t.Fatal(err)
		}
		if ref.ArgMax() == preds[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(ds.Len()); frac < 0.85 {
		t.Fatalf("INT8/float argmax agreement = %.2f, want ≥0.85", frac)
	}
}
