package dnndk

import (
	"testing"

	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
)

func compileFor(t *testing.T, name string, opts QuantizeOptions) *dpu.Kernel {
	t.Helper()
	bench, err := models.New(name, models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Quantize(bench, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestProgramStructure(t *testing.T) {
	k := compileFor(t, "VGGNet", DefaultQuantizeOptions())
	instrs := k.Program.Instrs
	if instrs[0].Kind != dpu.InstrLoad {
		t.Fatalf("program must start with LOAD, got %v", instrs[0].Kind)
	}
	if instrs[len(instrs)-1].Kind != dpu.InstrSave {
		t.Fatalf("program must end with SAVE, got %v", instrs[len(instrs)-1].Kind)
	}
	kinds := map[dpu.InstrKind]int{}
	for _, in := range instrs {
		kinds[in.Kind]++
	}
	// VGGNet: 4 convs, 2 FCs, 2 pools; flatten compiles away.
	if kinds[dpu.InstrConv] != 4 || kinds[dpu.InstrFC] != 2 || kinds[dpu.InstrPool] != 2 {
		t.Fatalf("instruction mix: %v", kinds)
	}
}

func TestProgramOpsMatchGraph(t *testing.T) {
	for _, name := range models.Names() {
		bench, err := models.New(name, models.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		wantOps := 2 * bench.MACs()
		k, err := Quantize(bench, DefaultQuantizeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if k.Program.OpsPerImage != wantOps {
			t.Errorf("%s: program ops %d != graph 2*MACs %d", name, k.Program.OpsPerImage, wantOps)
		}
		if k.Program.EffectiveOps != wantOps {
			t.Errorf("%s: dense kernel effective ops must equal total", name)
		}
	}
}

func TestWeightBytesScaleWithPrecision(t *testing.T) {
	k8 := compileFor(t, "VGGNet", DefaultQuantizeOptions())
	opts4 := DefaultQuantizeOptions()
	opts4.Bits = 4
	k4 := compileFor(t, "VGGNet", opts4)
	if k4.Program.WeightBytes >= k8.Program.WeightBytes {
		t.Fatalf("INT4 weights (%d B) must be smaller than INT8 (%d B)",
			k4.Program.WeightBytes, k8.Program.WeightBytes)
	}
	ratio := float64(k4.Program.WeightBytes) / float64(k8.Program.WeightBytes)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("INT4/INT8 weight ratio = %.3f, want ≈0.5", ratio)
	}
}

func TestOneByOneConvEfficiencyPenalty(t *testing.T) {
	k := compileFor(t, "GoogleNet", DefaultQuantizeOptions())
	var saw1x1, saw3x3 bool
	for _, in := range k.Program.Instrs {
		if in.Kind != dpu.InstrConv {
			continue
		}
		switch in.Efficiency {
		case 0.60:
			saw1x1 = true
		case 0.75:
			saw3x3 = true
		}
	}
	if !saw1x1 || !saw3x3 {
		t.Fatal("GoogleNet should compile both 1x1 (eff 0.60) and 3x3 (eff 0.75) convs")
	}
}

func TestPrunedProgramSkipsOps(t *testing.T) {
	opts := DefaultQuantizeOptions()
	opts.Sparsity = 0.5
	k := compileFor(t, "VGGNet", opts)
	want := float64(k.Program.OpsPerImage) * (1 - 0.5*0.6)
	got := float64(k.Program.EffectiveOps)
	if got/want < 0.98 || got/want > 1.02 {
		t.Fatalf("effective ops %d, want ≈%.0f (50%% sparsity, 60%% skip efficiency)",
			k.Program.EffectiveOps, want)
	}
}

func TestKernelGOPsWithinPeak(t *testing.T) {
	cfg := dpu.B4096()
	for _, name := range models.Names() {
		k := compileFor(t, name, DefaultQuantizeOptions())
		gops := k.GOPs(3, 333)
		if gops <= 0 || gops > cfg.PeakGOPs(3, 333) {
			t.Errorf("%s: %.0f GOPs outside (0, %.0f]", name, gops, cfg.PeakGOPs(3, 333))
		}
	}
}
