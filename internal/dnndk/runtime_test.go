package dnndk

import (
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/models"
)

// refRig loads a tiny kernel for reference-cache tests.
func refRig(t *testing.T) *Task {
	t.Helper()
	brd := board.MustNew(board.SampleB)
	rt, err := NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Quantize(bench, DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// TestRefKeyIsContentDerived is the regression for the %p cache key: a
// freed dataset and a new one allocated at the same address could alias
// reference-cache entries. The key must be derived from the dataset's
// identity and content, so same-name same-length datasets with different
// inputs get distinct keys, while an identical re-made dataset (the
// crash/re-deploy path) shares its key — and therefore the cached pass.
func TestRefKeyIsContentDerived(t *testing.T) {
	task := refRig(t)
	bench, _ := models.New("VGGNet", models.Tiny)

	a := bench.MakeDataset(8, 1)
	b := bench.MakeDataset(8, 2) // same name, same length, different content
	if ka, kb := task.refKey(a), task.refKey(b); ka == kb {
		t.Fatalf("distinct-content datasets share cache key %q", ka)
	}
	remade := bench.MakeDataset(8, 1)
	if remade == a {
		t.Fatal("test needs two distinct allocations")
	}
	if ka, kr := task.refKey(a), task.refKey(remade); ka != kr {
		t.Fatalf("identical datasets key differently: %q vs %q", ka, kr)
	}

	// Behavioral check: predictions cached for A must not be served for
	// B. The two datasets differ in content, so their fault-free
	// predictions (computed independently) almost surely differ — and
	// with a content-derived key the cache cannot conflate them even if
	// the allocator reuses A's address for B.
	pa, err := task.ReferencePreds(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := task.ReferencePreds(b)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different datasets returned identical reference predictions; cache aliased")
	}

	// The re-made identical dataset hits A's cached entry.
	pr, err := task.ReferencePreds(remade)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pr[i] {
			t.Fatalf("identical dataset missed the cache: preds[%d] %d != %d", i, pr[i], pa[i])
		}
	}
}
