// Package mitigate implements fault-mitigation strategies for operating
// CNN accelerators inside the critical voltage region at full frequency —
// the paper's first future-work item (§9: "fault mitigation techniques
// for very low-voltage regions even when the design operates at the
// maximum frequency").
//
// Three strategies are provided:
//
//   - TemporalRedundancy: classify each input N times and take the
//     majority vote. Undervolting faults are transient and independent
//     across runs, so redundancy recovers accuracy at an N-fold
//     throughput cost (no hardware changes).
//   - RazorReplay: model Razor-style shadow-latch detection on the MAC
//     datapath — a fraction (coverage) of timing faults is detected and
//     the affected tile replayed. Detection shrinks the effective fault
//     probability; replays add a small cycle overhead. This mirrors the
//     §2.2 discussion of Razor [Ernst et al., MICRO'03].
//   - BRAMECC: enable the BRAMs' built-in SECDED decode for the pass —
//     the mitigation the paper's §9 names for reduced-voltage BRAM
//     operation. Single-bit weight words are corrected in hardware at
//     negligible cost; only multi-bit words still corrupt the pass.
//
// Every strategy runs on the batched executor: the evaluation set is
// sliced into micro-batches of dnndk.MicroBatch images, each executed as
// one accelerator pass with BRAM faults persistent per batch — the same
// data path the fleet serves production traffic on.
package mitigate

import (
	"fmt"
	"math/rand"

	"fpgauv/internal/dnndk"
	"fpgauv/internal/dpu"
	"fpgauv/internal/ecc"
	"fpgauv/internal/models"
)

// Strategy mitigates faults around a classification task.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Classify runs the dataset with mitigation active and returns the
	// predictions plus the relative performance cost (1.0 = no
	// overhead; 3.0 = three times slower).
	Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) (preds []int, perfCost float64, err error)
}

// TemporalRedundancy votes over N independent executions per input.
type TemporalRedundancy struct {
	// N is the number of executions per input (odd values avoid ties;
	// ties break toward the first-seen class).
	N int
}

var _ Strategy = TemporalRedundancy{}

// Name implements Strategy.
func (t TemporalRedundancy) Name() string { return fmt.Sprintf("temporal-redundancy-%dx", t.n()) }

func (t TemporalRedundancy) n() int {
	if t.N <= 0 {
		return 3
	}
	return t.N
}

// forEachMicroBatch slices the dataset into micro-batches and executes
// each as one batched accelerator pass, with per-image fault streams
// derived from the caller's rng (one Int63 draw per image, so a pinned
// rng pins the whole pass). visit sees each micro-batch's staged
// results; it must consume them before returning (the arena reuses
// them).
func forEachMicroBatch(task *dnndk.Task, ds *models.Dataset, scratch *dpu.Scratch, rng *rand.Rand,
	visit func(lo int, results []dpu.Result) error) error {
	n := ds.Len()
	for lo := 0; lo < n; lo += dnndk.MicroBatch {
		hi := lo + dnndk.MicroBatch
		if hi > n {
			hi = n
		}
		rngs := scratch.BatchRNGs(hi - lo)
		for i := range rngs {
			rngs[i].Seed(rng.Int63())
		}
		results, err := task.InferBatch(scratch, ds.Inputs[lo:hi], rngs)
		if err != nil {
			return err
		}
		if err := visit(lo, results); err != nil {
			return err
		}
	}
	return nil
}

// Classify implements Strategy. The N runs are combined by averaging
// their softmax outputs (ensemble averaging) — strictly stronger than a
// hard majority vote because transient fault perturbations on different
// runs cancel in probability space even when each run's argmax flipped.
// Each of the N rounds is a full batched pass over the dataset, so the
// redundancy cost model matches how a fleet would actually replay
// traffic.
func (t TemporalRedundancy) Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) ([]int, float64, error) {
	n := t.n()
	sums := make([][]float64, ds.Len())
	scratch := dpu.NewScratch()
	for r := 0; r < n; r++ {
		err := forEachMicroBatch(task, ds, scratch, rng, func(lo int, results []dpu.Result) error {
			for i := range results {
				probs := results[i].Probs.Data()
				if sums[lo+i] == nil {
					sums[lo+i] = make([]float64, len(probs))
				}
				for c, p := range probs {
					sums[lo+i][c] += float64(p)
				}
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	}
	preds := make([]int, ds.Len())
	for i, sum := range sums {
		best, bestVal := 0, -1.0
		for c, v := range sum {
			if v > bestVal {
				best, bestVal = c, v
			}
		}
		preds[i] = best
	}
	return preds, float64(n), nil
}

// RazorReplay models shadow-latch detection with the given coverage.
type RazorReplay struct {
	// Coverage is the fraction of timing faults detected and replayed
	// (real Razor deployments reach 85-99% on instrumented paths).
	Coverage float64
	// ReplayOverhead is the per-detected-fault relative cycle cost.
	ReplayOverhead float64
}

var _ Strategy = RazorReplay{}

// Name implements Strategy.
func (r RazorReplay) Name() string { return fmt.Sprintf("razor-replay-%.0f%%", r.coverage()*100) }

func (r RazorReplay) coverage() float64 {
	if r.Coverage <= 0 || r.Coverage > 1 {
		return 0.95
	}
	return r.Coverage
}

// Classify implements Strategy. Detection is modeled by suppressing the
// covered fraction of fault events: the executor's fault probability is
// scaled via the kernel's VulnScale hook for the duration of the
// batched pass.
func (r RazorReplay) Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) ([]int, float64, error) {
	k := task.Kernel
	saved := k.VulnScale
	k.VulnScale = saved * (1 - r.coverage())
	defer func() { k.VulnScale = saved }()

	preds := make([]int, ds.Len())
	var replays int64
	overhead := r.ReplayOverhead
	if overhead <= 0 {
		overhead = 1e-5 // per-event tile replay, amortized per image
	}
	scratch := dpu.NewScratch()
	err := forEachMicroBatch(task, ds, scratch, rng, func(lo int, results []dpu.Result) error {
		for i := range results {
			preds[lo+i] = results[i].Pred
			// Detected (suppressed) events would each have triggered a
			// replay; estimate their count from the survivors.
			if cov := r.coverage(); cov < 1 {
				replays += int64(float64(results[i].MACFaults) * cov / (1 - cov))
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	cost := 1 + overhead*float64(replays)/float64(ds.Len())
	return preds, cost, nil
}

// BRAMECC enables the BRAMs' built-in SECDED(72,64) decode for the
// pass: single-bit weight-word faults are corrected in hardware,
// double-bit words are flagged, and only aliased multi-bit words still
// corrupt silently. It protects the BRAM fault class exclusively — MAC
// timing faults pass through untouched, which is why the comparison
// against TemporalRedundancy and RazorReplay must name the operating
// point's faulting rail.
type BRAMECC struct {
	// ScrubOverhead is the relative throughput cost of background frame
	// scrubbing (the scrubber steals BRAM port cycles). Real
	// deployments measure a fraction of a percent; default 1.002.
	ScrubOverhead float64
}

var _ Strategy = BRAMECC{}

// Name implements Strategy.
func (e BRAMECC) Name() string { return "bram-secded" }

func (e BRAMECC) cost() float64 {
	if e.ScrubOverhead <= 1 {
		return 1.002
	}
	return e.ScrubOverhead
}

// Classify implements Strategy: the task's accelerator decodes BRAM
// reads through the SECDED policy for the duration of the pass, then
// returns to its previous protection state.
func (e BRAMECC) Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) ([]int, float64, error) {
	dp := task.DPU()
	if prot := dp.Protection(); prot != nil {
		prev := prot.Enabled()
		prot.SetEnabled(true)
		defer prot.SetEnabled(prev)
	} else {
		dp.SetProtection(ecc.NewProtection(true))
		defer dp.SetProtection(nil)
	}

	preds := make([]int, ds.Len())
	scratch := dpu.NewScratch()
	err := forEachMicroBatch(task, ds, scratch, rng, func(lo int, results []dpu.Result) error {
		for i := range results {
			preds[lo+i] = results[i].Pred
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return preds, e.cost(), nil
}

// Evaluation compares accuracy with and without a strategy at the
// present operating point.
type Evaluation struct {
	Strategy     string
	BaselinePct  float64
	MitigatedPct float64
	PerfCost     float64
}

// Evaluate measures a strategy against the unprotected baseline. The
// baseline is averaged over three passes so the comparison is not at the
// mercy of one fault-sampling draw.
func Evaluate(s Strategy, task *dnndk.Task, ds *models.Dataset, seed int64) (Evaluation, error) {
	const basePasses = 3
	var baseAcc float64
	for r := 0; r < basePasses; r++ {
		base, err := task.Classify(ds, rand.New(rand.NewSource(seed+int64(r)*211)))
		if err != nil {
			return Evaluation{}, err
		}
		baseAcc += base.AccuracyPct / basePasses
	}
	preds, cost, err := s.Classify(task, ds, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return Evaluation{}, err
	}
	acc, err := ds.Accuracy(preds)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		Strategy:     s.Name(),
		BaselinePct:  baseAcc,
		MitigatedPct: acc,
		PerfCost:     cost,
	}, nil
}
