// Package mitigate implements fault-mitigation strategies for operating
// CNN accelerators inside the critical voltage region at full frequency —
// the paper's first future-work item (§9: "fault mitigation techniques
// for very low-voltage regions even when the design operates at the
// maximum frequency").
//
// Two strategies are provided:
//
//   - TemporalRedundancy: classify each input N times and take the
//     majority vote. Undervolting faults are transient and independent
//     across runs, so redundancy recovers accuracy at an N-fold
//     throughput cost (no hardware changes).
//   - RazorReplay: model Razor-style shadow-latch detection on the MAC
//     datapath — a fraction (coverage) of timing faults is detected and
//     the affected tile replayed. Detection shrinks the effective fault
//     probability; replays add a small cycle overhead. This mirrors the
//     §2.2 discussion of Razor [Ernst et al., MICRO'03].
package mitigate

import (
	"fmt"
	"math/rand"

	"fpgauv/internal/dnndk"
	"fpgauv/internal/dpu"
	"fpgauv/internal/models"
)

// Strategy mitigates faults around a classification task.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Classify runs the dataset with mitigation active and returns the
	// predictions plus the relative performance cost (1.0 = no
	// overhead; 3.0 = three times slower).
	Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) (preds []int, perfCost float64, err error)
}

// TemporalRedundancy votes over N independent executions per input.
type TemporalRedundancy struct {
	// N is the number of executions per input (odd values avoid ties;
	// ties break toward the first-seen class).
	N int
}

var _ Strategy = TemporalRedundancy{}

// Name implements Strategy.
func (t TemporalRedundancy) Name() string { return fmt.Sprintf("temporal-redundancy-%dx", t.n()) }

func (t TemporalRedundancy) n() int {
	if t.N <= 0 {
		return 3
	}
	return t.N
}

// Classify implements Strategy. The N runs are combined by averaging
// their softmax outputs (ensemble averaging) — strictly stronger than a
// hard majority vote because transient fault perturbations on different
// runs cancel in probability space even when each run's argmax flipped.
func (t TemporalRedundancy) Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) ([]int, float64, error) {
	n := t.n()
	preds := make([]int, ds.Len())
	scratch := dpu.NewScratch()
	for i, img := range ds.Inputs {
		var sum []float64
		for r := 0; r < n; r++ {
			// res.Probs is arena-staged: consumed before the next run.
			res, err := task.RunWith(scratch, img, rng)
			if err != nil {
				return nil, 0, err
			}
			probs := res.Probs.Data()
			if sum == nil {
				sum = make([]float64, len(probs))
			}
			for c, p := range probs {
				sum[c] += float64(p)
			}
		}
		best, bestVal := 0, -1.0
		for c, v := range sum {
			if v > bestVal {
				best, bestVal = c, v
			}
		}
		preds[i] = best
	}
	return preds, float64(n), nil
}

// RazorReplay models shadow-latch detection with the given coverage.
type RazorReplay struct {
	// Coverage is the fraction of timing faults detected and replayed
	// (real Razor deployments reach 85-99% on instrumented paths).
	Coverage float64
	// ReplayOverhead is the per-detected-fault relative cycle cost.
	ReplayOverhead float64
}

var _ Strategy = RazorReplay{}

// Name implements Strategy.
func (r RazorReplay) Name() string { return fmt.Sprintf("razor-replay-%.0f%%", r.coverage()*100) }

func (r RazorReplay) coverage() float64 {
	if r.Coverage <= 0 || r.Coverage > 1 {
		return 0.95
	}
	return r.Coverage
}

// Classify implements Strategy. Detection is modeled by suppressing the
// covered fraction of fault events: the executor's fault probability is
// scaled via the kernel's VulnScale hook for the duration of the pass.
func (r RazorReplay) Classify(task *dnndk.Task, ds *models.Dataset, rng *rand.Rand) ([]int, float64, error) {
	k := task.Kernel
	saved := k.VulnScale
	k.VulnScale = saved * (1 - r.coverage())
	defer func() { k.VulnScale = saved }()

	preds := make([]int, ds.Len())
	var replays int64
	overhead := r.ReplayOverhead
	if overhead <= 0 {
		overhead = 1e-5 // per-event tile replay, amortized per image
	}
	scratch := dpu.NewScratch()
	for i, img := range ds.Inputs {
		res, err := task.RunWith(scratch, img, rng)
		if err != nil {
			return nil, 0, err
		}
		preds[i] = res.Pred
		// Detected (suppressed) events would each have triggered a
		// replay; estimate their count from the survivors.
		if cov := r.coverage(); cov < 1 {
			replays += int64(float64(res.MACFaults) * cov / (1 - cov))
		}
	}
	cost := 1 + overhead*float64(replays)/float64(ds.Len())
	return preds, cost, nil
}

// Evaluation compares accuracy with and without a strategy at the
// present operating point.
type Evaluation struct {
	Strategy     string
	BaselinePct  float64
	MitigatedPct float64
	PerfCost     float64
}

// Evaluate measures a strategy against the unprotected baseline. The
// baseline is averaged over three passes so the comparison is not at the
// mercy of one fault-sampling draw.
func Evaluate(s Strategy, task *dnndk.Task, ds *models.Dataset, seed int64) (Evaluation, error) {
	const basePasses = 3
	var baseAcc float64
	for r := 0; r < basePasses; r++ {
		base, err := task.Classify(ds, rand.New(rand.NewSource(seed+int64(r)*211)))
		if err != nil {
			return Evaluation{}, err
		}
		baseAcc += base.AccuracyPct / basePasses
	}
	preds, cost, err := s.Classify(task, ds, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return Evaluation{}, err
	}
	acc, err := ds.Accuracy(preds)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		Strategy:     s.Name(),
		BaselinePct:  baseAcc,
		MitigatedPct: acc,
		PerfCost:     cost,
	}, nil
}
