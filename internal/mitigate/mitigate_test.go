package mitigate

import (
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/models"
	"fpgauv/internal/pmbus"
)

// criticalRig loads a VGGNet task at a mid-critical-region voltage where
// unprotected accuracy is badly degraded.
func criticalRig(t *testing.T) (*dnndk.Task, *models.Dataset) {
	t.Helper()
	brd := board.MustNew(board.SampleB)
	rt, err := dnndk.NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := models.New("VGGNet", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := dnndk.Quantize(bench, dnndk.DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench.MakeDataset(40, 11)
	if err := task.PlantLabels(ds, bench.TargetAccPct, 5); err != nil {
		t.Fatal(err)
	}
	if err := pmbus.NewAdapter(brd.Bus(), board.AddrVCCINT).SetVoltageMV(560); err != nil {
		t.Fatal(err)
	}
	return task, ds
}

func TestTemporalRedundancyRecoversAccuracy(t *testing.T) {
	task, ds := criticalRig(t)
	ev, err := Evaluate(TemporalRedundancy{N: 5}, task, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MitigatedPct <= ev.BaselinePct {
		t.Fatalf("redundancy should recover accuracy: %.1f vs baseline %.1f",
			ev.MitigatedPct, ev.BaselinePct)
	}
	if ev.PerfCost != 5 {
		t.Fatalf("5x redundancy cost = %.1f", ev.PerfCost)
	}
	if ev.Strategy != "temporal-redundancy-5x" {
		t.Fatalf("name: %s", ev.Strategy)
	}
}

func TestTemporalRedundancyDefaultN(t *testing.T) {
	if (TemporalRedundancy{}).Name() != "temporal-redundancy-3x" {
		t.Fatal("default N should be 3")
	}
}

func TestRazorReplayRecoversAccuracy(t *testing.T) {
	task, ds := criticalRig(t)
	ev, err := Evaluate(RazorReplay{Coverage: 0.95}, task, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MitigatedPct <= ev.BaselinePct {
		t.Fatalf("razor should recover accuracy: %.1f vs baseline %.1f",
			ev.MitigatedPct, ev.BaselinePct)
	}
	// Replay overhead is far below temporal redundancy's N-fold cost.
	if ev.PerfCost >= 2 {
		t.Fatalf("razor perf cost = %.2f, expected < 2x", ev.PerfCost)
	}
	// The kernel's fault scaling must be restored afterwards.
	if task.Kernel.VulnScale != 1 {
		t.Fatalf("VulnScale not restored: %g", task.Kernel.VulnScale)
	}
}

func TestRazorCoverageDefaults(t *testing.T) {
	if (RazorReplay{}).Name() != "razor-replay-95%" {
		t.Fatalf("default coverage name: %s", RazorReplay{}.Name())
	}
	if (RazorReplay{Coverage: 2}).coverage() != 0.95 {
		t.Fatal("out-of-range coverage should default")
	}
}

// bramRig loads the task with VCCINT safe inside the guardband and
// VCCBRAM underscaled into its fault region: the BRAM fault class is the
// only one live, the regime BRAMECC protects.
func bramRig(t *testing.T) (*dnndk.Task, *models.Dataset) {
	t.Helper()
	task, ds := criticalRig(t)
	brd := task.Board()
	if err := pmbus.NewAdapter(brd.Bus(), board.AddrVCCINT).SetVoltageMV(620); err != nil {
		t.Fatal(err)
	}
	if err := pmbus.NewAdapter(brd.Bus(), board.AddrVCCBRAM).SetVoltageMV(502); err != nil {
		t.Fatal(err)
	}
	return task, ds
}

func TestBRAMECCRecoversAccuracy(t *testing.T) {
	task, ds := bramRig(t)
	ev, err := Evaluate(BRAMECC{}, task, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MitigatedPct <= ev.BaselinePct {
		t.Fatalf("SECDED should recover accuracy under BRAM faults: %.1f vs baseline %.1f",
			ev.MitigatedPct, ev.BaselinePct)
	}
	// In-hardware correction: far below even Razor's replay cost.
	if ev.PerfCost >= 1.01 {
		t.Fatalf("SECDED perf cost = %.3f, expected ≈1", ev.PerfCost)
	}
	if ev.Strategy != "bram-secded" {
		t.Fatalf("name: %s", ev.Strategy)
	}
	// The pass must leave no protection installed on a previously
	// unprotected accelerator.
	if task.DPU().Protection() != nil {
		t.Fatal("protection not removed after the pass")
	}
}

// Against MAC timing faults (VCCINT critical region) SECDED is inert:
// it must not change the unprotected accuracy there — the comparison
// across strategies is only meaningful per fault class.
func TestBRAMECCDoesNotTouchMACFaults(t *testing.T) {
	task, ds := criticalRig(t)
	ev, err := Evaluate(BRAMECC{}, task, ds, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Mitigated and baseline differ only by fault-sampling noise; with
	// the paper's mid-critical degradation both sit far below the
	// fault-free target.
	if ev.MitigatedPct > ev.BaselinePct+25 {
		t.Fatalf("SECDED appeared to fix MAC faults: %.1f vs baseline %.1f",
			ev.MitigatedPct, ev.BaselinePct)
	}
}

func TestHigherCoverageRecoversMore(t *testing.T) {
	task, ds := criticalRig(t)
	low, err := Evaluate(RazorReplay{Coverage: 0.5}, task, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Evaluate(RazorReplay{Coverage: 0.99}, task, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if high.MitigatedPct < low.MitigatedPct {
		t.Fatalf("99%% coverage (%.1f) should beat 50%% (%.1f)",
			high.MitigatedPct, low.MitigatedPct)
	}
}
