package pmbus

import "fmt"

// Adapter is the host-side convenience wrapper around a bus target — the
// role the Maxim PowerTool USB adapter and its API play in the paper's
// setup ("To access these voltage rails for monitoring and regulation, we
// use a PMBus adapter and the provided API", §3.3.2). All values use
// engineering units; encoding is handled internally.
type Adapter struct {
	bus  *Bus
	addr uint8
}

// NewAdapter returns an adapter for the rail/device at the given address.
func NewAdapter(bus *Bus, addr uint8) *Adapter {
	return &Adapter{bus: bus, addr: addr}
}

// Address returns the target bus address.
func (a *Adapter) Address() uint8 { return a.addr }

// SetVoltageMV programs the rail's output voltage in millivolts via
// VOUT_COMMAND.
func (a *Adapter) SetVoltageMV(mv float64) error {
	return a.bus.WriteWord(a.addr, CmdVoutCommand, EncodeLinear16(mv/1000))
}

// VoltageMV reads the rail's actual output voltage (millivolts) via
// READ_VOUT.
func (a *Adapter) VoltageMV() (float64, error) {
	raw, err := a.bus.ReadWord(a.addr, CmdReadVout)
	if err != nil {
		return 0, err
	}
	return DecodeLinear16(raw) * 1000, nil
}

// PowerW reads the rail's output power (watts) via READ_POUT.
func (a *Adapter) PowerW() (float64, error) {
	raw, err := a.bus.ReadWord(a.addr, CmdReadPout)
	if err != nil {
		return 0, err
	}
	return DecodeLinear11(raw), nil
}

// CurrentA reads the rail's output current (amperes) via READ_IOUT.
func (a *Adapter) CurrentA() (float64, error) {
	raw, err := a.bus.ReadWord(a.addr, CmdReadIout)
	if err != nil {
		return 0, err
	}
	return DecodeLinear11(raw), nil
}

// TemperatureC reads the regulator's temperature sensor (°C), which on
// the simulated board tracks the die temperature.
func (a *Adapter) TemperatureC() (float64, error) {
	raw, err := a.bus.ReadWord(a.addr, CmdReadTemperature1)
	if err != nil {
		return 0, err
	}
	return DecodeLinear11(raw), nil
}

// SetFanRPM programs the fan controller via FAN_COMMAND_1 — the mechanism
// the paper uses to regulate board temperature in §7.
func (a *Adapter) SetFanRPM(rpm float64) error {
	return a.bus.WriteWord(a.addr, CmdFanCommand1, EncodeLinear11(rpm))
}

// FanRPM reads the current fan speed via READ_FAN_SPEED_1.
func (a *Adapter) FanRPM() (float64, error) {
	raw, err := a.bus.ReadWord(a.addr, CmdReadFanSpeed1)
	if err != nil {
		return 0, err
	}
	return DecodeLinear11(raw), nil
}

// Status reads STATUS_BYTE.
func (a *Adapter) Status() (uint8, error) {
	return a.bus.ReadByteCmd(a.addr, CmdStatusByte)
}

// Describe returns a one-line description of the target for tooling.
func (a *Adapter) Describe() string {
	mv, err := a.VoltageMV()
	if err != nil {
		return fmt.Sprintf("0x%02X: <%v>", a.addr, err)
	}
	w, _ := a.PowerW()
	return fmt.Sprintf("0x%02X: %7.1f mV %8.3f W", a.addr, mv, w)
}
