package pmbus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinear16RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.54, 0.57, 0.85, 1.8, 3.3, 5.0} {
		raw := EncodeLinear16(v)
		got := DecodeLinear16(raw)
		if math.Abs(got-v) > 0.0002 {
			t.Errorf("LINEAR16 round trip %.4f -> %.4f", v, got)
		}
	}
}

func TestLinear16Clamps(t *testing.T) {
	if EncodeLinear16(-1) != 0 {
		t.Error("negative voltage should encode to 0")
	}
	if EncodeLinear16(100) != 65535 {
		t.Error("huge voltage should clamp to max mantissa")
	}
}

func TestLinear16RoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		return EncodeLinear16(DecodeLinear16(raw)) == raw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinear11RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.00052, 0.0125, 1, -1, 12.59, -33.5, 850, 2970, 5000, 12000} {
		raw := EncodeLinear11(v)
		got := DecodeLinear11(raw)
		// Relative 0.2% or half a LINEAR11 LSB at the finest exponent.
		tol := math.Max(math.Abs(v)*0.002, math.Exp2(-17))
		if math.Abs(got-v) > tol {
			t.Errorf("LINEAR11 round trip %g -> %g (tol %g)", v, got, tol)
		}
	}
}

func TestLinear11RelativeErrorProperty(t *testing.T) {
	f := func(milli int32) bool {
		v := float64(milli%30_000_000) / 1000.0 // up to ±30000 with mV steps
		got := DecodeLinear11(EncodeLinear11(v))
		tol := math.Max(math.Abs(v)*0.002, 1e-4)
		return math.Abs(got-v) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandString(t *testing.T) {
	if CmdVoutCommand.String() != "VOUT_COMMAND" {
		t.Errorf("got %q", CmdVoutCommand.String())
	}
	if Command(0xF0).String() != "CMD(0xF0)" {
		t.Errorf("got %q", Command(0xF0).String())
	}
}

// stubDevice is a minimal in-memory device for bus tests.
type stubDevice struct {
	addr  uint8
	words map[Command]uint16
	bytes map[Command]uint8
}

func newStub(addr uint8) *stubDevice {
	return &stubDevice{addr: addr, words: map[Command]uint16{}, bytes: map[Command]uint8{}}
}

func (s *stubDevice) Address() uint8 { return s.addr }
func (s *stubDevice) ReadWord(c Command) (uint16, error) {
	v, ok := s.words[c]
	if !ok {
		return 0, ErrUnsupported
	}
	return v, nil
}
func (s *stubDevice) WriteWord(c Command, v uint16) error { s.words[c] = v; return nil }
func (s *stubDevice) ReadByteCmd(c Command) (uint8, error) {
	v, ok := s.bytes[c]
	if !ok {
		return 0, ErrUnsupported
	}
	return v, nil
}
func (s *stubDevice) WriteByteCmd(c Command, v uint8) error { s.bytes[c] = v; return nil }

func TestBusRouting(t *testing.T) {
	bus := NewBus()
	d13 := newStub(0x13)
	d14 := newStub(0x14)
	if err := bus.Attach(d13); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach(d14); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach(newStub(0x13)); err == nil {
		t.Fatal("duplicate address must fail to attach")
	}
	if err := bus.WriteWord(0x13, CmdVoutCommand, 1234); err != nil {
		t.Fatal(err)
	}
	got, err := bus.ReadWord(0x13, CmdVoutCommand)
	if err != nil || got != 1234 {
		t.Fatalf("read back %d, %v", got, err)
	}
	if _, err := bus.ReadWord(0x14, CmdVoutCommand); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
	if _, err := bus.ReadWord(0x77, CmdReadVout); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	addrs := bus.Addresses()
	if len(addrs) != 2 || addrs[0] != 0x13 || addrs[1] != 0x14 {
		t.Fatalf("addresses = %v", addrs)
	}
}

func TestAdapterAgainstStub(t *testing.T) {
	bus := NewBus()
	d := newStub(0x13)
	if err := bus.Attach(d); err != nil {
		t.Fatal(err)
	}
	a := NewAdapter(bus, 0x13)
	if a.Address() != 0x13 {
		t.Fatal("address mismatch")
	}
	if err := a.SetVoltageMV(570); err != nil {
		t.Fatal(err)
	}
	// The stub stores the raw word; simulate READ_VOUT returning the
	// same value the adapter wrote.
	d.words[CmdReadVout] = d.words[CmdVoutCommand]
	mv, err := a.VoltageMV()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mv-570) > 0.2 {
		t.Fatalf("voltage round trip = %.3f mV", mv)
	}
	d.words[CmdReadPout] = EncodeLinear11(12.59)
	w, err := a.PowerW()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-12.59) > 0.03 {
		t.Fatalf("power = %.4f W", w)
	}
	d.words[CmdReadTemperature1] = EncodeLinear11(34)
	temp, err := a.TemperatureC()
	if err != nil || math.Abs(temp-34) > 0.1 {
		t.Fatalf("temp = %.2f, %v", temp, err)
	}
	if err := a.SetFanRPM(2970); err != nil {
		t.Fatal(err)
	}
	d.words[CmdReadFanSpeed1] = d.words[CmdFanCommand1]
	rpm, err := a.FanRPM()
	if err != nil || math.Abs(rpm-2970) > 6 {
		t.Fatalf("fan rpm = %.1f, %v", rpm, err)
	}
	if desc := a.Describe(); desc == "" {
		t.Fatal("empty describe")
	}
}
