package pmbus

import (
	"fmt"
	"sort"
	"sync"
)

// Bus is an addressed PMBus segment. It routes word/byte transactions to
// attached devices and is safe for concurrent use (the DNNDK host thread
// polls telemetry while the experiment controller regulates voltage).
type Bus struct {
	mu      sync.RWMutex
	devices map[uint8]Device
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{devices: make(map[uint8]Device)}
}

// Attach adds a device at its address. Attaching two devices at the same
// address is a wiring error and returns an error.
func (b *Bus) Attach(d Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	addr := d.Address()
	if _, dup := b.devices[addr]; dup {
		return fmt.Errorf("pmbus: address 0x%02X already in use", addr)
	}
	b.devices[addr] = d
	return nil
}

// Device returns the device at addr.
func (b *Bus) Device(addr uint8) (Device, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	d, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("%w 0x%02X", ErrNoDevice, addr)
	}
	return d, nil
}

// Addresses returns the attached addresses in ascending order.
func (b *Bus) Addresses() []uint8 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]uint8, 0, len(b.devices))
	for a := range b.devices {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadWord routes a word read to the device at addr.
func (b *Bus) ReadWord(addr uint8, cmd Command) (uint16, error) {
	d, err := b.Device(addr)
	if err != nil {
		return 0, err
	}
	return d.ReadWord(cmd)
}

// WriteWord routes a word write to the device at addr.
func (b *Bus) WriteWord(addr uint8, cmd Command, v uint16) error {
	d, err := b.Device(addr)
	if err != nil {
		return err
	}
	return d.WriteWord(cmd, v)
}

// ReadByteCmd routes a byte read to the device at addr.
func (b *Bus) ReadByteCmd(addr uint8, cmd Command) (uint8, error) {
	d, err := b.Device(addr)
	if err != nil {
		return 0, err
	}
	return d.ReadByteCmd(cmd)
}

// WriteByteCmd routes a byte write to the device at addr.
func (b *Bus) WriteByteCmd(addr uint8, cmd Command, v uint8) error {
	d, err := b.Device(addr)
	if err != nil {
		return err
	}
	return d.WriteByteCmd(cmd, v)
}
