// Package pmbus implements the subset of the PMBus power-management
// protocol that the paper's methodology depends on (§3.3.2): voltage
// regulation and telemetry over an addressed bus, with the standard
// LINEAR11 and LINEAR16 data formats. The ZCU102's three on-board
// regulators expose 26 voltage rails through this interface; the paper
// monitors and underscales VCCINT (address 0x13) and VCCBRAM (address
// 0x14) with it, reads rail power, and drives the fan for the temperature
// experiments.
package pmbus

import (
	"errors"
	"fmt"
)

// Command is a PMBus command code.
type Command uint8

// The PMBus command subset used by the undervolting methodology. Codes
// follow the PMBus 1.2 specification.
const (
	CmdPage             Command = 0x00
	CmdOperation        Command = 0x01
	CmdClearFaults      Command = 0x03
	CmdVoutMode         Command = 0x20
	CmdVoutCommand      Command = 0x21
	CmdVoutMax          Command = 0x24
	CmdVoutMarginHigh   Command = 0x25
	CmdVoutMarginLow    Command = 0x26
	CmdVoutOVFaultLimit Command = 0x40
	CmdVoutUVFaultLimit Command = 0x44
	CmdFanConfig12      Command = 0x3A
	CmdFanCommand1      Command = 0x3B
	CmdStatusByte       Command = 0x78
	CmdStatusWord       Command = 0x79
	CmdStatusVout       Command = 0x7A
	CmdReadVin          Command = 0x88
	CmdReadIin          Command = 0x89
	CmdReadVout         Command = 0x8B
	CmdReadIout         Command = 0x8C
	CmdReadTemperature1 Command = 0x8D
	CmdReadTemperature2 Command = 0x8E
	CmdReadFanSpeed1    Command = 0x90
	CmdReadPout         Command = 0x96
	CmdReadPin          Command = 0x97
	CmdMfrID            Command = 0x99
	CmdMfrModel         Command = 0x9A
)

// String returns the conventional name of the command.
func (c Command) String() string {
	if s, ok := commandNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CMD(0x%02X)", uint8(c))
}

var commandNames = map[Command]string{
	CmdPage:             "PAGE",
	CmdOperation:        "OPERATION",
	CmdClearFaults:      "CLEAR_FAULTS",
	CmdVoutMode:         "VOUT_MODE",
	CmdVoutCommand:      "VOUT_COMMAND",
	CmdVoutMax:          "VOUT_MAX",
	CmdVoutMarginHigh:   "VOUT_MARGIN_HIGH",
	CmdVoutMarginLow:    "VOUT_MARGIN_LOW",
	CmdVoutOVFaultLimit: "VOUT_OV_FAULT_LIMIT",
	CmdVoutUVFaultLimit: "VOUT_UV_FAULT_LIMIT",
	CmdFanConfig12:      "FAN_CONFIG_1_2",
	CmdFanCommand1:      "FAN_COMMAND_1",
	CmdStatusByte:       "STATUS_BYTE",
	CmdStatusWord:       "STATUS_WORD",
	CmdStatusVout:       "STATUS_VOUT",
	CmdReadVin:          "READ_VIN",
	CmdReadIin:          "READ_IIN",
	CmdReadVout:         "READ_VOUT",
	CmdReadIout:         "READ_IOUT",
	CmdReadTemperature1: "READ_TEMPERATURE_1",
	CmdReadTemperature2: "READ_TEMPERATURE_2",
	CmdReadFanSpeed1:    "READ_FAN_SPEED_1",
	CmdReadPout:         "READ_POUT",
	CmdReadPin:          "READ_PIN",
	CmdMfrID:            "MFR_ID",
	CmdMfrModel:         "MFR_MODEL",
}

// STATUS_BYTE flag bits (PMBus 1.2 part II §17.1).
const (
	StatusNoneOfTheAbove uint8 = 1 << 0
	StatusCML            uint8 = 1 << 1
	StatusTemperature    uint8 = 1 << 2
	StatusVinUV          uint8 = 1 << 3
	StatusIoutOC         uint8 = 1 << 4
	StatusVoutOV         uint8 = 1 << 5
	StatusOff            uint8 = 1 << 6
	StatusBusy           uint8 = 1 << 7
)

// Errors returned by bus and device operations.
var (
	// ErrNoDevice indicates no device acknowledged the address.
	ErrNoDevice = errors.New("pmbus: no device at address")
	// ErrUnsupported indicates the device does not implement the command.
	ErrUnsupported = errors.New("pmbus: unsupported command")
	// ErrInvalidPage indicates a PAGE selection outside the device's range.
	ErrInvalidPage = errors.New("pmbus: invalid page")
	// ErrValueRange indicates a written value outside the device's limits.
	ErrValueRange = errors.New("pmbus: value out of range")
	// ErrBusHung indicates the bus target stopped responding (the board
	// crashed below Vcrash; a power cycle is required).
	ErrBusHung = errors.New("pmbus: target not responding (crashed)")
)

// Device is a PMBus-addressable component (a voltage regulator channel
// group, a fan controller, ...). Word commands carry LINEAR11/LINEAR16
// encoded payloads; byte commands carry raw bytes.
type Device interface {
	// Address returns the 7-bit bus address the device responds to.
	Address() uint8
	// ReadWord executes a word-read command.
	ReadWord(cmd Command) (uint16, error)
	// WriteWord executes a word-write command.
	WriteWord(cmd Command, value uint16) error
	// ReadByteCmd executes a byte-read command.
	ReadByteCmd(cmd Command) (uint8, error)
	// WriteByteCmd executes a byte-write command.
	WriteByteCmd(cmd Command, value uint8) error
}
