package pmbus

import "math"

// LINEAR11 packs a real value into an 11-bit two's-complement mantissa Y
// and a 5-bit two's-complement exponent N, value = Y * 2^N. It is the
// PMBus format for currents, powers, temperatures and fan speeds.
//
// LINEAR16 (the VOUT format) uses a 16-bit unsigned mantissa with a fixed
// exponent published via VOUT_MODE; Xilinx/Maxim regulators on the ZCU102
// use an exponent of -13 (resolution ≈ 0.122 mV), which is what this
// package defaults to.

// Vout16Exponent is the fixed LINEAR16 exponent advertised in VOUT_MODE.
const Vout16Exponent = -13

// EncodeLinear16 encodes volts into the LINEAR16 VOUT format.
// Values are clamped to the representable range [0, 65535 * 2^-13) ≈ 8 V.
func EncodeLinear16(volts float64) uint16 {
	if volts <= 0 {
		return 0
	}
	m := math.Round(volts * math.Exp2(-Vout16Exponent))
	if m > 65535 {
		m = 65535
	}
	return uint16(m)
}

// DecodeLinear16 decodes a LINEAR16 VOUT word into volts.
func DecodeLinear16(raw uint16) float64 {
	return float64(raw) * math.Exp2(Vout16Exponent)
}

// EncodeLinear11 encodes a real value into LINEAR11, choosing the smallest
// exponent that fits the mantissa range [-1024, 1023] to maximize
// resolution.
func EncodeLinear11(value float64) uint16 {
	if value == 0 {
		return 0
	}
	exp := -16
	mant := value * math.Exp2(16)
	for (mant > 1023 || mant < -1024) && exp < 15 {
		mant /= 2
		exp++
	}
	if mant > 1023 {
		mant = 1023
	}
	if mant < -1024 {
		mant = -1024
	}
	m := int16(math.Round(mant))
	// Rounding may push the mantissa just past the range; renormalize.
	if m > 1023 && exp < 15 {
		m /= 2
		exp++
	}
	return uint16(exp&0x1F)<<11 | uint16(m)&0x07FF
}

// DecodeLinear11 decodes a LINEAR11 word.
func DecodeLinear11(raw uint16) float64 {
	exp := int8(raw>>11) & 0x1F
	if exp > 15 { // sign-extend 5-bit exponent
		exp -= 32
	}
	mant := int16(raw & 0x07FF)
	if mant > 1023 { // sign-extend 11-bit mantissa
		mant -= 2048
	}
	return float64(mant) * math.Exp2(float64(exp))
}
