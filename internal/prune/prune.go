// Package prune implements magnitude-based weight pruning, the second
// DECENT optimization the paper combines with undervolting (§6.2): the
// smallest-magnitude fraction of each conv/FC layer's weights is zeroed,
// shrinking the effective model and the DPU's MAC work at a small accuracy
// cost — and, as the paper observes, increasing vulnerability to
// undervolting faults because the surviving weights carry concentrated
// signal.
package prune

import (
	"fmt"
	"math"

	"fpgauv/internal/nn"
)

// Report summarizes what pruning removed.
type Report struct {
	// Sparsity is the requested zeroed fraction.
	Sparsity float64
	// LayersPruned counts conv/FC layers touched.
	LayersPruned int
	// WeightsBefore and WeightsZeroed count individual weights.
	WeightsBefore int64
	WeightsZeroed int64
	// MACsBefore and MACsEffective give the dense and expected sparse
	// MAC counts per inference. MACsEffective is MAC-weighted per layer:
	// a zeroed conv weight removes OutH×OutW multiply-accumulates (one
	// per output pixel its filter tap would have fed) while a zeroed FC
	// weight removes exactly one, so layers are discounted by their own
	// zeroed fraction rather than the graph-global weight fraction.
	MACsBefore    int64
	MACsEffective int64
}

// EffectiveSparsity returns the realized zeroed fraction.
func (r Report) EffectiveSparsity() float64 {
	if r.WeightsBefore == 0 {
		return 0
	}
	return float64(r.WeightsZeroed) / float64(r.WeightsBefore)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("pruned %d layers: %d/%d weights zeroed (%.1f%%), MACs %d -> %d",
		r.LayersPruned, r.WeightsZeroed, r.WeightsBefore,
		100*r.EffectiveSparsity(), r.MACsBefore, r.MACsEffective)
}

// Apply zeroes the smallest-magnitude sparsity fraction of every conv and
// fully-connected layer's weights in g, in place. Biases are kept. It
// returns a report of the reduction.
func Apply(g *nn.Graph, sparsity float64) (Report, error) {
	return apply(g, sparsity, 0)
}

// ApplyBlocks is the block-structured form of Apply, the pruning mode
// matched to the sparse executor's skip geometry (quant.SparseWeights):
// the unit scored and zeroed is the blockRows×1 column slice of a
// layer's weight matrix — blockRows consecutive output channels at one
// reduction index — ranked by the block's summed magnitude. Every
// zeroed block is a whole skip block, so the realized block sparsity
// the sparse kernel exploits equals the requested fraction instead of
// the far smaller fraction unstructured pruning yields by chance.
func ApplyBlocks(g *nn.Graph, sparsity float64, blockRows int) (Report, error) {
	if blockRows < 1 {
		return Report{}, fmt.Errorf("prune: block rows %d < 1", blockRows)
	}
	return apply(g, sparsity, blockRows)
}

// apply is the shared pruning core; blockRows == 0 selects unstructured
// per-weight pruning.
func apply(g *nn.Graph, sparsity float64, blockRows int) (Report, error) {
	if sparsity < 0 || sparsity >= 1 {
		return Report{}, fmt.Errorf("prune: sparsity %.3f outside [0, 1)", sparsity)
	}
	rep := Report{Sparsity: sparsity, MACsBefore: g.TotalMACs()}
	var macsSaved int64
	for _, node := range g.Nodes() {
		var weights []float32
		var cols int
		switch op := node.Op.(type) {
		case *nn.Conv2D:
			weights = op.Weights.Data()
			cols = op.InC * op.Kernel * op.Kernel
		case *nn.Dense:
			weights = op.Weights.Data()
			cols = op.In
		default:
			continue
		}
		rep.LayersPruned++
		rep.WeightsBefore += int64(len(weights))
		var zeroed int64
		if blockRows > 0 {
			zeroed = pruneBlocks(weights, cols, blockRows, sparsity)
		} else {
			zeroed = pruneSlice(weights, sparsity)
		}
		rep.WeightsZeroed += zeroed
		if len(weights) > 0 {
			layerMACs := node.Op.MACs(g.InputShapesOf(node))
			macsSaved += int64(math.Round(float64(layerMACs) * float64(zeroed) / float64(len(weights))))
		}
	}
	rep.MACsEffective = rep.MACsBefore - macsSaved
	return rep, nil
}

// abs32 is |v| without the float64 round trip.
func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// pruneSlice zeroes the smallest-magnitude fraction of w and returns how
// many entries were zeroed (already-zero entries count toward the quota).
// The magnitude threshold is found by quickselect over one float32
// scratch slice — O(n) expected, one n-sized allocation — instead of the
// former full sort copy (O(n log n), two n-sized float64 slices).
func pruneSlice(w []float32, sparsity float64) int64 {
	n := len(w)
	k := int(math.Floor(float64(n) * sparsity))
	if k <= 0 {
		return 0
	}
	scratch := make([]float32, n)
	for i, v := range w {
		scratch[i] = abs32(v)
	}
	threshold := quickselect(scratch, k-1)
	var zeroed int64
	for i, v := range w {
		if abs32(v) <= threshold && zeroed < int64(k) {
			w[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// pruneBlocks zeroes the smallest-magnitude fraction of a layer's
// blockRows×1 column blocks (rows = output channels, cols = reduction
// indices) and returns the zeroed weight count. Block score is the mean
// magnitude over its (up to blockRows) weights — mean, not sum, so a
// ragged last group's short blocks compete fairly; ties and the block
// quota resolve in block index order, mirroring pruneSlice.
func pruneBlocks(w []float32, cols, blockRows int, sparsity float64) int64 {
	if cols <= 0 || len(w)%cols != 0 {
		return 0
	}
	m := len(w) / cols
	groups := (m + blockRows - 1) / blockRows
	total := groups * cols
	k := int(math.Floor(float64(total) * sparsity))
	if k <= 0 {
		return 0
	}
	score := func(r, p int) float32 {
		var s float32
		q0, q1 := r*blockRows, min((r+1)*blockRows, m)
		for q := q0; q < q1; q++ {
			s += abs32(w[q*cols+p])
		}
		return s / float32(q1-q0)
	}
	scratch := make([]float32, total)
	for r := 0; r < groups; r++ {
		for p := 0; p < cols; p++ {
			scratch[r*cols+p] = score(r, p)
		}
	}
	threshold := quickselect(scratch, k-1)
	var zeroed int64
	pruned := 0
	for r := 0; r < groups && pruned < k; r++ {
		for p := 0; p < cols && pruned < k; p++ {
			if score(r, p) > threshold {
				continue
			}
			for q := r * blockRows; q < min((r+1)*blockRows, m); q++ {
				w[q*cols+p] = 0
				zeroed++
			}
			pruned++
		}
	}
	return zeroed
}

// quickselect returns the k-th smallest element (0-indexed) of a,
// partially reordering it in place: expected O(n) via Hoare partition
// with a median-of-three pivot.
func quickselect(a []float32, k int) float32 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[k]
}

// VulnerabilityScale returns the factor by which pruning amplifies
// undervolting fault events. Two compounding mechanisms: the sparse-skip
// decode path adds marginal control logic to every MAC (more fault
// sites), and with redundancy removed each surviving MAC carries more of
// the class-score signal. The scale is the squared inverse of the
// surviving-weight fraction, capped at 6x; at the paper's operating
// points this reproduces Fig. 8a's visibly earlier accuracy collapse for
// the pruned model.
func VulnerabilityScale(effectiveSparsity float64) float64 {
	if effectiveSparsity <= 0 {
		return 1
	}
	keep := 1 - effectiveSparsity
	scale := 1 / (keep * keep)
	if scale > 6 {
		return 6
	}
	return scale
}
