// Package prune implements magnitude-based weight pruning, the second
// DECENT optimization the paper combines with undervolting (§6.2): the
// smallest-magnitude fraction of each conv/FC layer's weights is zeroed,
// shrinking the effective model and the DPU's MAC work at a small accuracy
// cost — and, as the paper observes, increasing vulnerability to
// undervolting faults because the surviving weights carry concentrated
// signal.
package prune

import (
	"fmt"
	"math"
	"sort"

	"fpgauv/internal/nn"
)

// Report summarizes what pruning removed.
type Report struct {
	// Sparsity is the requested zeroed fraction.
	Sparsity float64
	// LayersPruned counts conv/FC layers touched.
	LayersPruned int
	// WeightsBefore and WeightsZeroed count individual weights.
	WeightsBefore int64
	WeightsZeroed int64
	// MACsBefore and MACsEffective give the dense and expected sparse
	// MAC counts per inference.
	MACsBefore    int64
	MACsEffective int64
}

// EffectiveSparsity returns the realized zeroed fraction.
func (r Report) EffectiveSparsity() float64 {
	if r.WeightsBefore == 0 {
		return 0
	}
	return float64(r.WeightsZeroed) / float64(r.WeightsBefore)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("pruned %d layers: %d/%d weights zeroed (%.1f%%), MACs %d -> %d",
		r.LayersPruned, r.WeightsZeroed, r.WeightsBefore,
		100*r.EffectiveSparsity(), r.MACsBefore, r.MACsEffective)
}

// Apply zeroes the smallest-magnitude sparsity fraction of every conv and
// fully-connected layer's weights in g, in place. Biases are kept. It
// returns a report of the reduction.
func Apply(g *nn.Graph, sparsity float64) (Report, error) {
	if sparsity < 0 || sparsity >= 1 {
		return Report{}, fmt.Errorf("prune: sparsity %.3f outside [0, 1)", sparsity)
	}
	rep := Report{Sparsity: sparsity, MACsBefore: g.TotalMACs()}
	for _, node := range g.Nodes() {
		var weights []float32
		switch op := node.Op.(type) {
		case *nn.Conv2D:
			weights = op.Weights.Data()
		case *nn.Dense:
			weights = op.Weights.Data()
		default:
			continue
		}
		rep.LayersPruned++
		rep.WeightsBefore += int64(len(weights))
		rep.WeightsZeroed += pruneSlice(weights, sparsity)
	}
	eff := 1 - rep.EffectiveSparsity()
	rep.MACsEffective = int64(math.Round(float64(rep.MACsBefore) * eff))
	return rep, nil
}

// pruneSlice zeroes the smallest-magnitude fraction of w and returns how
// many entries were zeroed (already-zero entries count toward the quota).
func pruneSlice(w []float32, sparsity float64) int64 {
	n := len(w)
	k := int(math.Floor(float64(n) * sparsity))
	if k <= 0 {
		return 0
	}
	mags := make([]float64, n)
	for i, v := range w {
		mags[i] = math.Abs(float64(v))
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	threshold := sorted[k-1]
	var zeroed int64
	for i := range w {
		if mags[i] <= threshold && zeroed < int64(k) {
			w[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// VulnerabilityScale returns the factor by which pruning amplifies
// undervolting fault events. Two compounding mechanisms: the sparse-skip
// decode path adds marginal control logic to every MAC (more fault
// sites), and with redundancy removed each surviving MAC carries more of
// the class-score signal. The scale is the squared inverse of the
// surviving-weight fraction, capped at 6x; at the paper's operating
// points this reproduces Fig. 8a's visibly earlier accuracy collapse for
// the pruned model.
func VulnerabilityScale(effectiveSparsity float64) float64 {
	if effectiveSparsity <= 0 {
		return 1
	}
	keep := 1 - effectiveSparsity
	scale := 1 / (keep * keep)
	if scale > 6 {
		return 6
	}
	return scale
}
