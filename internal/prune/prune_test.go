package prune

import (
	"math"
	"math/rand"
	"testing"

	"fpgauv/internal/nn"
	"fpgauv/internal/tensor"
)

func buildNet() *nn.Graph {
	rng := rand.New(rand.NewSource(21))
	g := nn.NewGraph(nn.Shape{C: 1, H: 8, W: 8})
	g.Add("conv1", nn.NewConv2D(rng, 1, 8, 3, 1, 1))
	g.Add("relu1", nn.ReLU{})
	g.Add("pool", &nn.Pool2D{Kind: nn.MaxPool, Kernel: 2, Stride: 2})
	g.Add("flatten", nn.Flatten{})
	g.Add("fc", nn.NewDense(rng, 8*4*4, 10))
	return g
}

func countZeros(g *nn.Graph) (zeros, total int) {
	for _, n := range g.Nodes() {
		var w []float32
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			w = op.Weights.Data()
		case *nn.Dense:
			w = op.Weights.Data()
		default:
			continue
		}
		for _, v := range w {
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	return zeros, total
}

func TestApplyZeroesRequestedFraction(t *testing.T) {
	g := buildNet()
	rep, err := Apply(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	zeros, total := countZeros(g)
	frac := float64(zeros) / float64(total)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("zeroed fraction = %.3f, want ≈0.5", frac)
	}
	if rep.LayersPruned != 2 {
		t.Fatalf("layers pruned = %d", rep.LayersPruned)
	}
	if math.Abs(rep.EffectiveSparsity()-0.5) > 0.02 {
		t.Fatalf("report sparsity = %.3f", rep.EffectiveSparsity())
	}
	if rep.MACsEffective >= rep.MACsBefore {
		t.Fatal("effective MACs should shrink")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestApplyKeepsLargestWeights(t *testing.T) {
	g := buildNet()
	// Record the largest-magnitude weight of the fc layer.
	var fc *nn.Dense
	for _, n := range g.Nodes() {
		if d, ok := n.Op.(*nn.Dense); ok {
			fc = d
		}
	}
	var maxBefore float32
	for _, v := range fc.Weights.Data() {
		if a := float32(math.Abs(float64(v))); a > maxBefore {
			maxBefore = a
		}
	}
	if _, err := Apply(g, 0.7); err != nil {
		t.Fatal(err)
	}
	var maxAfter float32
	for _, v := range fc.Weights.Data() {
		if a := float32(math.Abs(float64(v))); a > maxAfter {
			maxAfter = a
		}
	}
	if maxAfter != maxBefore {
		t.Fatal("pruning must keep the largest weights")
	}
}

func TestApplyValidation(t *testing.T) {
	g := buildNet()
	if _, err := Apply(g, -0.1); err == nil {
		t.Fatal("negative sparsity must fail")
	}
	if _, err := Apply(g, 1.0); err == nil {
		t.Fatal("sparsity 1.0 must fail")
	}
	rep, err := Apply(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightsZeroed != 0 {
		t.Fatal("sparsity 0 should be a no-op")
	}
}

func TestPrunedModelStillInfers(t *testing.T) {
	g := buildNet()
	in := tensor.New(1, 8, 8)
	in.FillRandn(rand.New(rand.NewSource(3)), 1)
	if _, err := Apply(g, 0.5); err != nil {
		t.Fatal(err)
	}
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 10 {
		t.Fatal("pruned net broken")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVulnerabilityScale(t *testing.T) {
	if VulnerabilityScale(0) != 1 {
		t.Fatal("no pruning, no amplification")
	}
	if got := VulnerabilityScale(0.5); math.Abs(got-4) > 1e-9 {
		t.Fatalf("50%% sparsity should quadruple impact, got %.2f", got)
	}
	if VulnerabilityScale(0.9) != 6 {
		t.Fatal("amplification must cap at 6x")
	}
	if VulnerabilityScale(-1) != 1 {
		t.Fatal("negative sparsity treated as none")
	}
}
