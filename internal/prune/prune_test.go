package prune

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fpgauv/internal/nn"
	"fpgauv/internal/tensor"
)

func buildNet() *nn.Graph {
	rng := rand.New(rand.NewSource(21))
	g := nn.NewGraph(nn.Shape{C: 1, H: 8, W: 8})
	g.Add("conv1", nn.NewConv2D(rng, 1, 8, 3, 1, 1))
	g.Add("relu1", nn.ReLU{})
	g.Add("pool", &nn.Pool2D{Kind: nn.MaxPool, Kernel: 2, Stride: 2})
	g.Add("flatten", nn.Flatten{})
	g.Add("fc", nn.NewDense(rng, 8*4*4, 10))
	return g
}

func countZeros(g *nn.Graph) (zeros, total int) {
	for _, n := range g.Nodes() {
		var w []float32
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			w = op.Weights.Data()
		case *nn.Dense:
			w = op.Weights.Data()
		default:
			continue
		}
		for _, v := range w {
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	return zeros, total
}

func TestApplyZeroesRequestedFraction(t *testing.T) {
	g := buildNet()
	rep, err := Apply(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	zeros, total := countZeros(g)
	frac := float64(zeros) / float64(total)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("zeroed fraction = %.3f, want ≈0.5", frac)
	}
	if rep.LayersPruned != 2 {
		t.Fatalf("layers pruned = %d", rep.LayersPruned)
	}
	if math.Abs(rep.EffectiveSparsity()-0.5) > 0.02 {
		t.Fatalf("report sparsity = %.3f", rep.EffectiveSparsity())
	}
	if rep.MACsEffective >= rep.MACsBefore {
		t.Fatal("effective MACs should shrink")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestApplyKeepsLargestWeights(t *testing.T) {
	g := buildNet()
	// Record the largest-magnitude weight of the fc layer.
	var fc *nn.Dense
	for _, n := range g.Nodes() {
		if d, ok := n.Op.(*nn.Dense); ok {
			fc = d
		}
	}
	var maxBefore float32
	for _, v := range fc.Weights.Data() {
		if a := float32(math.Abs(float64(v))); a > maxBefore {
			maxBefore = a
		}
	}
	if _, err := Apply(g, 0.7); err != nil {
		t.Fatal(err)
	}
	var maxAfter float32
	for _, v := range fc.Weights.Data() {
		if a := float32(math.Abs(float64(v))); a > maxAfter {
			maxAfter = a
		}
	}
	if maxAfter != maxBefore {
		t.Fatal("pruning must keep the largest weights")
	}
}

func TestApplyValidation(t *testing.T) {
	g := buildNet()
	if _, err := Apply(g, -0.1); err == nil {
		t.Fatal("negative sparsity must fail")
	}
	if _, err := Apply(g, 1.0); err == nil {
		t.Fatal("sparsity 1.0 must fail")
	}
	rep, err := Apply(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightsZeroed != 0 {
		t.Fatal("sparsity 0 should be a no-op")
	}
}

func TestPrunedModelStillInfers(t *testing.T) {
	g := buildNet()
	in := tensor.New(1, 8, 8)
	in.FillRandn(rand.New(rand.NewSource(3)), 1)
	if _, err := Apply(g, 0.5); err != nil {
		t.Fatal(err)
	}
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 10 {
		t.Fatal("pruned net broken")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// macsEffectiveOracle recomputes the per-layer MAC-weighted expectation
// from the pruned graph: each layer's MACs discounted by its own
// realized zeroed fraction.
func macsEffectiveOracle(g *nn.Graph) int64 {
	total := g.TotalMACs()
	var saved int64
	for _, n := range g.Nodes() {
		var w []float32
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			w = op.Weights.Data()
		case *nn.Dense:
			w = op.Weights.Data()
		default:
			continue
		}
		zeros := 0
		for _, v := range w {
			if v == 0 {
				zeros++
			}
		}
		macs := n.Op.MACs(g.InputShapesOf(n))
		saved += int64(math.Round(float64(macs) * float64(zeros) / float64(len(w))))
	}
	return total - saved
}

// TestMACsEffectivePerLayer is the regression test for the MAC
// accounting fix: a zeroed conv weight removes OutH×OutW MACs while a
// zeroed FC weight removes one, so MACsEffective must be the per-layer
// MAC-weighted value, not total MACs scaled by the global zeroed-weight
// fraction. The conv-heavy and FC-heavy graphs have deliberately
// non-divisible layer sizes so the realized per-layer fractions differ
// and the two formulas disagree.
func TestMACsEffectivePerLayer(t *testing.T) {
	build := func(convOut, fcOut int) *nn.Graph {
		rng := rand.New(rand.NewSource(9))
		g := nn.NewGraph(nn.Shape{C: 1, H: 8, W: 8})
		g.Add("conv1", nn.NewConv2D(rng, 1, convOut, 3, 1, 1))
		g.Add("flatten", nn.Flatten{})
		g.Add("fc", nn.NewDense(rng, convOut*8*8, fcOut))
		return g
	}
	for _, tc := range []struct {
		name           string
		convOut, fcOut int
	}{
		// conv-heavy: 63 conv weights drive 4032 of 5376 MACs.
		{"conv-heavy", 7, 3},
		// FC-heavy: 28k FC weights dominate both counts, but the conv
		// layer's 64 MACs/weight must still be discounted at its own rate.
		{"fc-heavy", 7, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := build(tc.convOut, tc.fcOut)
			rep, err := Apply(g, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			want := macsEffectiveOracle(g)
			if rep.MACsEffective != want {
				t.Fatalf("MACsEffective = %d, want per-layer value %d", rep.MACsEffective, want)
			}
			if rep.MACsBefore != g.TotalMACs() {
				t.Fatalf("MACsBefore = %d, want %d", rep.MACsBefore, g.TotalMACs())
			}
		})
	}
	// The asymmetric case must actually distinguish the formulas: with
	// 63 conv weights at sparsity 0.9 the conv zeroes 56/63 (88.9%)
	// while the FC zeroes ~90%, so the old global-fraction formula lands
	// measurably away from the per-layer value.
	g := build(7, 3)
	rep, err := Apply(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	old := int64(math.Round(float64(rep.MACsBefore) * (1 - rep.EffectiveSparsity())))
	if rep.MACsEffective == old {
		t.Fatalf("per-layer MACsEffective %d coincides with the global-fraction formula; test geometry lost its asymmetry", rep.MACsEffective)
	}
}

// TestQuickselectMatchesSort pins the quickselect threshold against the
// full-sort oracle across sizes, duplicates and orderings.
func TestQuickselectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(500)
		a := make([]float32, n)
		switch iter % 3 {
		case 0:
			for i := range a {
				a[i] = rng.Float32()
			}
		case 1: // heavy duplicates
			for i := range a {
				a[i] = float32(rng.Intn(4))
			}
		case 2: // sorted descending (adversarial for naive pivots)
			for i := range a {
				a[i] = float32(n - i)
			}
		}
		sorted := append([]float32(nil), a...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		k := rng.Intn(n)
		if got := quickselect(append([]float32(nil), a...), k); got != sorted[k] {
			t.Fatalf("iter %d: quickselect(n=%d, k=%d) = %g, want %g", iter, n, k, got, sorted[k])
		}
	}
}

// TestApplyBlocksRealizesBlockSparsity checks that block pruning zeroes
// whole skip blocks — the realized block sparsity the sparse kernel
// skips matches the request — and keeps the strongest blocks.
func TestApplyBlocksRealizesBlockSparsity(t *testing.T) {
	const rows = 4
	g := buildNet()
	rep, err := ApplyBlocks(g, 0.5, rows)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LayersPruned != 2 {
		t.Fatalf("layers pruned = %d", rep.LayersPruned)
	}
	if math.Abs(rep.EffectiveSparsity()-0.5) > 0.05 {
		t.Fatalf("weight sparsity = %.3f, want ≈0.5", rep.EffectiveSparsity())
	}
	if rep.MACsEffective != macsEffectiveOracle(g) {
		t.Fatalf("MACsEffective = %d, want %d", rep.MACsEffective, macsEffectiveOracle(g))
	}
	// Every block is either fully zero or untouched, and the zeroed
	// block fraction matches the request.
	for _, n := range g.Nodes() {
		var w []float32
		var cols int
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			w, cols = op.Weights.Data(), op.InC*op.Kernel*op.Kernel
		case *nn.Dense:
			w, cols = op.Weights.Data(), op.In
		default:
			continue
		}
		m := len(w) / cols
		groups := (m + rows - 1) / rows
		zeroBlocks, total := 0, groups*cols
		for r := 0; r < groups; r++ {
			for p := 0; p < cols; p++ {
				zeros, span := 0, 0
				for q := r * rows; q < m && q < (r+1)*rows; q++ {
					span++
					if w[q*cols+p] == 0 {
						zeros++
					}
				}
				if zeros == span {
					zeroBlocks++
				}
			}
		}
		frac := float64(zeroBlocks) / float64(total)
		if math.Abs(frac-0.5) > 0.05 {
			t.Fatalf("layer %q: realized block sparsity %.3f, want ≈0.5", n.Label, frac)
		}
	}
	if _, err := ApplyBlocks(buildNet(), 0.5, 0); err == nil {
		t.Fatal("block rows < 1 must fail")
	}
}

// TestApplyBlocksModelStillInfers mirrors TestPrunedModelStillInfers for
// the block-structured mode.
func TestApplyBlocksModelStillInfers(t *testing.T) {
	g := buildNet()
	if _, err := ApplyBlocks(g, 0.75, 4); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 8, 8)
	in.FillRandn(rand.New(rand.NewSource(3)), 1)
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 10 {
		t.Fatal("block-pruned net broken")
	}
}

// BenchmarkPruneSlice pins the quickselect rewrite's cost: one float32
// scratch allocation per layer (4n bytes) instead of the former float64
// magnitude copy plus full-sort copy (16n bytes, O(n log n)). Run with
// -benchmem; the bytes/op figure is the contract.
func BenchmarkPruneSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	base := make([]float32, 1<<16)
	for i := range base {
		base[i] = rng.Float32() - 0.5
	}
	w := make([]float32, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(w, base)
		pruneSlice(w, 0.5)
	}
}

func TestVulnerabilityScale(t *testing.T) {
	if VulnerabilityScale(0) != 1 {
		t.Fatal("no pruning, no amplification")
	}
	if got := VulnerabilityScale(0.5); math.Abs(got-4) > 1e-9 {
		t.Fatalf("50%% sparsity should quadruple impact, got %.2f", got)
	}
	if VulnerabilityScale(0.9) != 6 {
		t.Fatal("amplification must cap at 6x")
	}
	if VulnerabilityScale(-1) != 1 {
		t.Fatal("negative sparsity treated as none")
	}
}
