package obs

import (
	"fmt"
	"sync"
	"testing"
)

// Seq is dense and global, BoardSeq dense per board.
func TestJournalSequencing(t *testing.T) {
	j := NewJournal(16)
	a := j.Append(Event{Board: "board-0", Kind: EvCrash})
	b := j.Append(Event{Board: "board-1", Kind: EvCrash})
	c := j.Append(Event{Board: "board-0", Kind: EvReboot})
	if a.Seq != 1 || b.Seq != 2 || c.Seq != 3 {
		t.Errorf("global seqs = %d %d %d, want 1 2 3", a.Seq, b.Seq, c.Seq)
	}
	if a.BoardSeq != 1 || b.BoardSeq != 1 || c.BoardSeq != 2 {
		t.Errorf("board seqs = %d %d %d, want 1 1 2", a.BoardSeq, b.BoardSeq, c.BoardSeq)
	}
	if a.At.IsZero() || a.AtNS <= 0 {
		t.Error("timestamps not stamped")
	}
	if got := j.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	counts := j.Counts()
	if counts[EvCrash] != 2 || counts[EvReboot] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// Cursor consumption: each Since picks up exactly where the last ended.
func TestJournalCursor(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 5; i++ {
		j.Append(Event{Board: "b", Kind: EvScrub})
	}
	evs, next, gap := j.Since(0, 2)
	if gap || len(evs) != 2 || evs[0].Seq != 1 || next != 2 {
		t.Fatalf("first page: %d events, next %d, gap %v", len(evs), next, gap)
	}
	evs, next, gap = j.Since(next, 0)
	if gap || len(evs) != 3 || evs[0].Seq != 3 || next != 5 {
		t.Fatalf("second page: %d events, next %d, gap %v", len(evs), next, gap)
	}
	evs, next, gap = j.Since(next, 0)
	if gap || len(evs) != 0 || next != 5 {
		t.Fatalf("drained journal returned %d events, next %d, gap %v", len(evs), next, gap)
	}
}

// Wraparound: old events evict, and a cursor pointing before the oldest
// retained event gets an explicit gap signal, not silent loss.
func TestJournalWraparoundAndGap(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 10; i++ {
		j.Append(Event{Board: "b", Kind: EvGovProbe, MV: float64(i)})
	}
	// Events 1..6 are gone; 7..10 retained.
	evs, next, gap := j.Since(0, 0)
	if !gap {
		t.Error("cursor 0 after wrap must signal a gap")
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 || next != 10 {
		t.Fatalf("got %d events starting %d, next %d", len(evs), evs[0].Seq, next)
	}
	for i, ev := range evs {
		if ev.MV != float64(7+i) {
			t.Errorf("event %d payload mv=%v, want %v (ring slot mixup)", ev.Seq, ev.MV, 7+i)
		}
	}
	// A cursor exactly at the eviction edge: oldest retained is 7, so
	// cursor 6 is the newest non-gapped cursor.
	if _, _, gap := j.Since(6, 0); gap {
		t.Error("cursor 6 (edge) should not gap")
	}
	if _, _, gap := j.Since(5, 0); !gap {
		t.Error("cursor 5 (pre-edge) should gap")
	}
	// A fully caught-up cursor never gaps even after wrap.
	if evs, next, gap := j.Since(10, 0); gap || len(evs) != 0 || next != 10 {
		t.Errorf("caught-up cursor: %d events, next %d, gap %v", len(evs), next, gap)
	}
}

// Concurrent appenders and snapshotters under -race: sequence numbers
// stay dense and every snapshot is internally ordered.
func TestJournalConcurrentAppendSnapshot(t *testing.T) {
	j := NewJournal(64)
	const writers = 4
	const perWriter = 250
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			board := fmt.Sprintf("board-%d", w)
			for i := 0; i < perWriter; i++ {
				j.Append(Event{Board: board, Kind: EvGovProbe})
			}
		}(w)
	}
	go func() {
		defer close(readerDone)
		var cursor uint64
		for {
			evs, next, _ := j.Since(cursor, 0)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("snapshot seq hole: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
			cursor = next
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := j.Total(); got != writers*perWriter {
		t.Errorf("Total = %d, want %d", got, writers*perWriter)
	}
	var sum int64
	for _, v := range j.Counts() {
		sum += v
	}
	if sum != writers*perWriter {
		t.Errorf("counts sum = %d, want %d", sum, writers*perWriter)
	}
}

// A nil journal absorbs everything (un-wired fleet configurations).
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	ev := j.Append(Event{Kind: EvCrash})
	if ev.Seq != 0 {
		t.Error("nil Append must not assign sequence numbers")
	}
	if evs, next, gap := j.Since(3, 1); evs != nil || next != 3 || gap {
		t.Error("nil Since must be inert")
	}
	if j.Total() != 0 || j.Counts() != nil {
		t.Error("nil readers must return zero values")
	}
	j.SetLogger(nil)
}

// A paging reader that pauses mid-page while writers wrap the ring
// must see the gap flag exactly once (on the page that skipped evicted
// events) and per-board sequence numbers that stay strictly monotone
// across everything it did receive.
func TestJournalPagedReaderPausedAcrossWrap(t *testing.T) {
	j := NewJournal(32)
	appendBatch := func(n int) {
		for i := 0; i < n; i++ {
			j.Append(Event{Board: fmt.Sprintf("b%d", i%3), Kind: EvGovProbe})
		}
	}

	appendBatch(20)

	// Page 1: the reader keeps up — no gap.
	var cursor uint64
	gaps := 0
	lastBoardSeq := map[string]uint64{}
	page := func(limit int) []Event {
		evs, next, gap := j.Since(cursor, limit)
		if gap {
			gaps++
		}
		cursor = next
		for _, ev := range evs {
			if prev, ok := lastBoardSeq[ev.Board]; ok && ev.BoardSeq <= prev {
				t.Fatalf("board %s seq went %d -> %d", ev.Board, prev, ev.BoardSeq)
			}
			lastBoardSeq[ev.Board] = ev.BoardSeq
		}
		return evs
	}
	if got := page(8); len(got) != 8 || gaps != 0 {
		t.Fatalf("page 1: %d events, %d gaps", len(got), gaps)
	}

	// Reader pauses mid-page; writers wrap the ring well past cursor 8.
	appendBatch(60) // total 80, ring holds 49..80

	// Page 2 lands after eviction: gap signaled, page starts at the
	// oldest retained event.
	p2 := page(8)
	if gaps != 1 {
		t.Fatalf("page 2: gaps = %d, want exactly 1", gaps)
	}
	if len(p2) != 8 || p2[0].Seq != 49 {
		t.Fatalf("page 2: %d events starting seq %d, want 8 starting 49", len(p2), p2[0].Seq)
	}

	// Draining the rest: no further gaps, pages chain densely to the
	// newest event.
	lastSeq := p2[len(p2)-1].Seq
	for {
		evs := page(8)
		if len(evs) == 0 {
			break
		}
		if evs[0].Seq != lastSeq+1 {
			t.Fatalf("page discontinuity: %d then %d", lastSeq, evs[0].Seq)
		}
		lastSeq = evs[len(evs)-1].Seq
	}
	if gaps != 1 {
		t.Fatalf("drain: gaps = %d, want the one wraparound gap only", gaps)
	}
	if lastSeq != 80 {
		t.Fatalf("drained to seq %d, want 80", lastSeq)
	}

	// A caught-up reader stays gap-free across another wrap only if it
	// pages before eviction; Tail always serves the newest N regardless.
	tail := j.Tail(5)
	if len(tail) != 5 || tail[4].Seq != 80 || tail[0].Seq != 76 {
		t.Fatalf("tail = %d events [%d..%d]", len(tail), tail[0].Seq, tail[len(tail)-1].Seq)
	}
}
