// Package obs is the serving stack's observability substrate: request
// tracing (span trees over the stages a request passes through), a
// bounded journal of structured fleet events (crash, reboot, redeploy,
// requeue, governor moves, scrub passes), and the shared monotonic clock
// both are stamped with.
//
// The tracing side is built for a hot path that must not pay for it:
// a disabled Tracer hands out nil traces, every Trace/Span method is
// nil-receiver-safe, and the instrumented code runs the exact same
// instructions with zero additional allocations. Enabled, spans are
// carved out of a fixed arena inside each Trace (one allocation per
// traced request, none per span) and the shared per-batch span buffers
// are recycled through a sync.Pool.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Version identifies the build in uvolt_build_info; override with
// -ldflags "-X fpgauv/internal/obs.Version=v1.2.3".
var Version = "dev"

// epoch anchors the package's monotonic clock: every span timestamp and
// journal event is nanoseconds since process start, immune to wall-clock
// steps.
var epoch = time.Now()

// NowNS returns the monotonic clock reading in nanoseconds.
func NowNS() int64 { return int64(time.Since(epoch)) }

// Stage names used by the serving path's spans. The per-stage latency
// histograms (uvolt_stage_seconds) are keyed by the same strings.
const (
	// StageRequest is a caller trace's root span.
	StageRequest = "request"
	// StageDecode covers HTTP body decode and validation.
	StageDecode = "http_decode"
	// StageBatchWait is the time a call waited in the front-end batcher
	// for company before its micro-batch was claimed.
	StageBatchWait = "batch_wait"
	// StageFleet is the root of the shared fleet-job subtree (one per
	// accelerator job, grafted into every coalesced caller's trace).
	StageFleet = "fleet"
	// StageAssemble covers micro-batch assembly (merging callers'
	// images into one fleet submission).
	StageAssemble = "assemble"
	// StageFleetWait is the time a job waited in the fleet queue for a
	// board (one span per board visit).
	StageFleetWait = "fleet_wait"
	// StageExecute is one accelerator execution attempt on one board
	// (annotated with board, rails, batch size and fault counts).
	StageExecute = "execute"
	// StageRequeue marks a job handed to another board after a failure.
	StageRequeue = "requeue"
	// StageRespond covers response serialization.
	StageRespond = "respond"
)

// MaxSpans is the span arena capacity per trace. A trace that outgrows
// it keeps serving a shared sink span (annotations still write, timing
// is lost) and counts the overflow in Dropped — bounded memory beats a
// complete tree under pathological retry storms.
const MaxSpans = 48

// Span is one timed stage of a trace. The navigation fields are
// unexported (spans live in a Trace's arena and reference each other by
// index, so the arena can grow-free and the tree survives copies); the
// annotation fields are exported and written directly by instrumented
// code under a nil-check of the span pointer.
type Span struct {
	tr      *Trace
	idx     int32
	parent  int32
	name    string
	startNS int64
	endNS   int64

	// Board is the serving board id; Attempt the global attempt ordinal
	// across board visits.
	Board   string
	Attempt int32
	// Batch is the accelerator-pass size in images (or calls for
	// classify passes); Images the evaluation-set size of an eval pass.
	Batch  int32
	Images int32
	// VCCINTmV and VCCBRAMmV are the rails the attempt ran at.
	VCCINTmV  float64
	VCCBRAMmV float64
	// MACFaults/BRAMFaults and the ECC split are the attempt's injected
	// fault outcome, straight from the executor's Result.
	MACFaults    int64
	BRAMFaults   int64
	ECCCorrected int64
	ECCDetected  int64
	ECCSilent    int64
	// ExecNS is the executor-reported device time of the attempt (the
	// span's own duration additionally includes lock and retry
	// overhead).
	ExecNS int64
	// Err is the attempt's failure, empty on success.
	Err string
}

// Child starts a sub-span. Safe on a nil receiver (returns nil, the
// disabled-tracing path).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if s.idx < 0 {
		s.tr.dropped++
		return s // overflow sink: keep absorbing writes
	}
	return s.tr.newSpan(s.idx, name)
}

// End stamps the span's end time (first call wins). Nil-safe.
func (s *Span) End() {
	if s != nil && s.endNS == 0 {
		s.endNS = NowNS()
	}
}

// EndAt stamps an explicit end time (a timestamp captured on another
// goroutine, e.g. the instant a batch was claimed). Nil-safe.
func (s *Span) EndAt(ns int64) {
	if s != nil && ns != 0 {
		s.endNS = ns
	}
}

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// TraceID returns the owning trace's id — how the fleet layer captures
// the active request trace into a crash postmortem. Nil-safe (and empty
// for the shared job buffers of coalesced batches, which have no
// caller-facing id).
func (s *Span) TraceID() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.ID()
}

// Parent returns the parent span's index in the trace (-1 for roots).
func (s *Span) Parent() int { return int(s.parent) }

// StartNS and EndNS are monotonic-clock stamps (see NowNS).
func (s *Span) StartNS() int64 { return s.startNS }
func (s *Span) EndNS() int64   { return s.endNS }

// DurNS is the span's duration (0 while still open).
func (s *Span) DurNS() int64 {
	if s.endNS == 0 {
		return 0
	}
	return s.endNS - s.startNS
}

// Graft copies every span of src into the receiver's trace as a subtree
// under the receiver — how the shared fleet-job span buffer of a
// coalesced batch lands in each participating caller's trace. Spans
// that do not fit the destination arena are counted as dropped. src
// must be quiescent (no concurrent recording); the copy never mutates
// it, so any number of callers may graft the same buffer concurrently.
func (s *Span) Graft(src *Trace) {
	if s == nil || src == nil {
		return
	}
	dst := s.tr
	base := dst.n
	space := int32(MaxSpans) - base
	n := src.n
	copied := n
	if copied > space {
		copied = space
	}
	for i := int32(0); i < copied; i++ {
		sp := &dst.spans[base+i]
		*sp = src.spans[i]
		sp.tr = dst
		sp.idx = base + i
		if sp.parent < 0 {
			sp.parent = s.idx
		} else {
			sp.parent += base
		}
	}
	dst.n += copied
	dst.dropped += (n - copied) + src.dropped
}

// Trace is one request's span tree (or one fleet job's shared span
// buffer, before it is grafted). Spans live in a fixed arena inside the
// trace: recording allocates nothing per span, indices stay valid for
// the life of the trace, and a published trace is immutable — readers
// need no locks.
type Trace struct {
	id      string
	seq     uint64
	startNS int64
	endNS   int64
	n       int32
	dropped int32
	spans   [MaxSpans]Span
	sink    Span
	refs    atomic.Int32
}

func (t *Trace) reset(id, rootName string) {
	t.id = id
	t.seq = 0
	t.startNS = NowNS()
	t.endNS = 0
	t.n = 0
	t.dropped = 0
	t.refs.Store(0)
	t.newSpan(-1, rootName)
}

func (t *Trace) newSpan(parent int32, name string) *Span {
	if int(t.n) >= MaxSpans {
		t.dropped++
		t.sink = Span{tr: t, idx: -1, parent: parent, name: name, startNS: NowNS()}
		return &t.sink
	}
	sp := &t.spans[t.n]
	*sp = Span{tr: t, idx: t.n, parent: parent, name: name, startNS: NowNS()}
	t.n++
	return sp
}

// Root returns the trace's root span. Nil-safe.
func (t *Trace) Root() *Span {
	if t == nil || t.n == 0 {
		return nil
	}
	return &t.spans[0]
}

// ID returns the trace id ("" for job buffers). Nil-safe.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Seq is the publish sequence number (0 until published).
func (t *Trace) Seq() uint64 { return t.seq }

// StartNS and EndNS bound the trace on the monotonic clock.
func (t *Trace) StartNS() int64 { return t.startNS }
func (t *Trace) EndNS() int64   { return t.endNS }

// Len is the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// At returns span i (0 <= i < Len), in recording order. Parents always
// precede children.
func (t *Trace) At(i int) *Span { return &t.spans[i] }

// Dropped counts spans lost to arena overflow.
func (t *Trace) Dropped() int { return int(t.dropped) }

// Finish stamps the trace's end time (first call wins). Nil-safe.
func (t *Trace) Finish() {
	if t != nil && t.endNS == 0 {
		t.endNS = NowNS()
		if root := t.Root(); root != nil && root.endNS == 0 {
			root.endNS = t.endNS
		}
	}
}

// SetRefs arms the shared-buffer refcount (one per coalesced caller
// about to graft). Nil-safe.
func (t *Trace) SetRefs(n int) {
	if t != nil {
		t.refs.Store(int32(n))
	}
}

// Release drops one reference and reports whether this was the last —
// the signal that the buffer may be recycled. Nil-safe (returns false).
func (t *Trace) Release() bool {
	return t != nil && t.refs.Add(-1) == 0
}

// Tracer owns the enable switch, trace-id generation, the recycling
// pool for fleet-job span buffers, and the ring of recent published
// traces. All methods are nil-receiver-safe, so an entirely un-wired
// instrumentation path costs a few predictable branches.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	ids     atomic.Uint64
	salt    uint64
	slots   []atomic.Pointer[Trace]
	jobs    sync.Pool
}

// NewTracer builds a disabled tracer whose ring retains the most recent
// capacity traces (default 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		salt:  uint64(time.Now().UnixNano()),
		slots: make([]atomic.Pointer[Trace], capacity),
		jobs:  sync.Pool{New: func() any { return new(Trace) }},
	}
}

// Enabled reports the switch. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips tracing at runtime. Traces mid-flight when the
// switch moves finish under their start-time decision. Nil-safe.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Start begins a request trace, honoring a caller-supplied id (the
// X-Uvolt-Trace contract) or generating one. Returns nil when tracing
// is disabled — the zero-cost path every instrumentation site must
// tolerate. Nil-safe.
func (t *Tracer) Start(id string) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	if id == "" {
		id = t.genID()
	}
	tr := new(Trace)
	tr.reset(id, StageRequest)
	return tr
}

// JobTrace hands out a recycled span buffer for one fleet job (the
// shared subtree of a coalesced batch). Nil when tracing is disabled.
// Return it with ReleaseJob once every caller has grafted. Nil-safe.
func (t *Tracer) JobTrace() *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	tr := t.jobs.Get().(*Trace)
	tr.reset("", StageFleet)
	return tr
}

// ReleaseJob recycles a job buffer that was never published. Callers
// must have finished reading it (the batcher's refcount guarantees
// this). Nil-safe on both receiver and argument.
func (t *Tracer) ReleaseJob(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.jobs.Put(tr)
}

// Publish stamps and installs a finished trace in the ring, evicting
// the oldest. Published traces are immutable; eviction hands the slot's
// previous trace to the garbage collector (never back to a pool), so
// concurrent readers of an evicted trace stay safe. Nil-safe on both
// receiver and argument.
func (t *Tracer) Publish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Finish()
	seq := t.seq.Add(1)
	tr.seq = seq
	t.slots[(seq-1)%uint64(len(t.slots))].Store(tr)
}

// Get returns the retained trace with the given id, or nil.
func (t *Tracer) Get(id string) *Trace {
	if t == nil || id == "" {
		return nil
	}
	for i := range t.slots {
		if tr := t.slots[i].Load(); tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// Recent returns up to limit retained traces, newest first.
func (t *Tracer) Recent(limit int) []*Trace {
	if t == nil {
		return nil
	}
	if limit <= 0 || limit > len(t.slots) {
		limit = len(t.slots)
	}
	out := make([]*Trace, 0, limit)
	for i := range t.slots {
		if tr := t.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	// Insertion sort by descending seq: the ring is small and nearly
	// ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq > out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// genID derives a fresh 16-hex-digit trace id from a counter mixed
// through SplitMix64 — unique per process, no global RNG contention.
func (t *Tracer) genID() string {
	x := t.salt + t.ids.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}
