package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the opt-in debug mux: the full net/http/pprof
// surface under /debug/pprof/. It is served on a separate listener
// (uvolt-serve -debug-addr) so profiling endpoints never ride the
// public serving port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
