package obs

import (
	"fmt"
	"sync"
	"testing"
)

// A disabled tracer hands out nil traces, and every method tolerates
// them — the whole zero-cost contract.
func TestDisabledTracerNilSafety(t *testing.T) {
	tr := NewTracer(4)
	if tr.Enabled() {
		t.Fatal("new tracer should start disabled")
	}
	trace := tr.Start("abc")
	if trace != nil {
		t.Fatalf("disabled Start = %v, want nil", trace)
	}
	if jt := tr.JobTrace(); jt != nil {
		t.Fatalf("disabled JobTrace = %v, want nil", jt)
	}

	// Every operation on the nil results must be a no-op.
	sp := trace.Root().Child("x")
	sp.End()
	sp.EndAt(5)
	sp.Graft(nil)
	trace.Finish()
	trace.SetRefs(3)
	if trace.Release() {
		t.Error("nil Release = true, want false")
	}
	if trace.Len() != 0 || trace.ID() != "" || trace.Root() != nil {
		t.Error("nil trace readers should return zero values")
	}
	tr.Publish(trace)
	tr.ReleaseJob(trace)

	// A nil *Tracer is equally inert (un-wired instrumentation).
	var none *Tracer
	if none.Enabled() || none.Start("") != nil || none.JobTrace() != nil {
		t.Error("nil tracer must be disabled and hand out nil")
	}
	none.SetEnabled(true)
	none.Publish(nil)
	none.ReleaseJob(nil)
	if none.Get("x") != nil || none.Recent(1) != nil {
		t.Error("nil tracer lookups must return nil")
	}
}

// Span trees record parentage, timing, and annotations; overflow past
// MaxSpans goes to the sink and is counted as dropped.
func TestSpanTreeAndOverflow(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	trace := tr.Start("")
	if trace == nil || trace.ID() == "" {
		t.Fatal("enabled Start must return a trace with a generated id")
	}
	root := trace.Root()
	if root.Name() != StageRequest || root.Parent() != -1 {
		t.Fatalf("root = %q parent %d", root.Name(), root.Parent())
	}
	a := root.Child("a")
	b := a.Child("b")
	a.End()
	b.End()
	if a.Parent() != 0 || trace.At(int(2)).Parent() != 1 {
		t.Errorf("parent indices wrong: a=%d b=%d", a.Parent(), b.Parent())
	}
	if a.DurNS() < 0 || a.EndNS() < a.StartNS() {
		t.Errorf("span timing inverted: [%d, %d]", a.StartNS(), a.EndNS())
	}
	b.Board = "board-7"
	if trace.At(2).Board != "board-7" {
		t.Error("annotation did not land in the arena")
	}

	for i := trace.Len(); i < MaxSpans; i++ {
		root.Child(fmt.Sprintf("fill-%d", i))
	}
	over := root.Child("overflow")
	over.Board = "sink" // must absorb writes without exploding
	over.End()
	deeper := over.Child("deeper")
	deeper.End()
	if trace.Len() != MaxSpans {
		t.Errorf("len = %d, want %d", trace.Len(), MaxSpans)
	}
	if trace.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", trace.Dropped())
	}
}

// Graft copies a job buffer's spans under a caller span, remapping
// parent indices, leaving the source untouched.
func TestGraft(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)

	job := tr.JobTrace()
	ex := job.Root().Child(StageExecute)
	ex.Board = "board-1"
	ex.End()
	srcLen := job.Len()

	caller := tr.Start("req-1")
	wait := caller.Root().Child(StageBatchWait)
	wait.End()
	wait.Graft(job)

	if job.Len() != srcLen {
		t.Fatalf("graft mutated source: len %d -> %d", srcLen, job.Len())
	}
	if caller.Len() != 2+srcLen {
		t.Fatalf("caller len = %d, want %d", caller.Len(), 2+srcLen)
	}
	// Grafted root ("fleet") hangs off the wait span; its child keeps
	// relative structure and annotations.
	g := caller.At(2)
	if g.Name() != StageFleet || g.Parent() != 1 {
		t.Errorf("grafted root = %q parent %d, want %q parent 1", g.Name(), g.Parent(), StageFleet)
	}
	ge := caller.At(3)
	if ge.Name() != StageExecute || ge.Parent() != 2 || ge.Board != "board-1" {
		t.Errorf("grafted child = %q parent %d board %q", ge.Name(), ge.Parent(), ge.Board)
	}

	// Refcounted release: last caller recycles.
	job.SetRefs(2)
	if job.Release() {
		t.Error("first release reported last")
	}
	if !job.Release() {
		t.Error("second release should report last")
	}
	tr.ReleaseJob(job)
}

// The ring retains the newest traces, evicts the oldest, and serves
// Get/Recent without locks.
func TestRingWraparound(t *testing.T) {
	tr := NewTracer(3)
	tr.SetEnabled(true)
	ids := make([]string, 5)
	for i := range ids {
		trace := tr.Start(fmt.Sprintf("id-%d", i))
		trace.Finish()
		tr.Publish(trace)
		ids[i] = trace.ID()
	}
	for i := 0; i < 2; i++ {
		if tr.Get(ids[i]) != nil {
			t.Errorf("evicted trace %q still retrievable", ids[i])
		}
	}
	for i := 2; i < 5; i++ {
		got := tr.Get(ids[i])
		if got == nil || got.ID() != ids[i] {
			t.Errorf("retained trace %q not retrievable", ids[i])
		}
	}
	recent := tr.Recent(2)
	if len(recent) != 2 || recent[0].ID() != "id-4" || recent[1].ID() != "id-3" {
		t.Errorf("Recent(2) = %v, want [id-4 id-3]", traceIDs(recent))
	}
	if all := tr.Recent(0); len(all) != 3 {
		t.Errorf("Recent(0) len = %d, want ring size 3", len(all))
	}
	if seq := tr.Get("id-4").Seq(); seq != 5 {
		t.Errorf("seq = %d, want 5", seq)
	}
}

func traceIDs(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID()
	}
	return out
}

// Concurrent publishers and readers on the ring under -race: readers
// must only ever observe fully formed traces.
func TestRingConcurrentPublishAndRead(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				trace := tr.Start(fmt.Sprintf("w%d-%d", w, i))
				sp := trace.Root().Child(StageExecute)
				sp.Board = "board-0"
				sp.End()
				tr.Publish(trace)
			}
		}(w)
	}
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, trace := range tr.Recent(0) {
				if trace.ID() == "" || trace.Len() < 2 {
					t.Errorf("torn trace observed: id=%q len=%d", trace.ID(), trace.Len())
					return
				}
				_ = trace.At(1).Board
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
}

// Generated ids are unique and well-formed.
func TestGenIDUnique(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		trace := tr.Start("")
		id := trace.ID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad or duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}
