package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds emitted by the fleet layer. The uvolt_events_total{kind=}
// counters and the journal's slog mirror use the same strings.
const (
	// EvCrash: a board hung under reduced voltage (or injected fault).
	EvCrash = "crash"
	// EvReboot: the crashed board finished its power-on reset.
	EvReboot = "reboot"
	// EvRedeploy: kernel + weights re-deployed after a reboot.
	EvRedeploy = "redeploy"
	// EvRequeue: a job left a failing board for another one.
	EvRequeue = "requeue"
	// EvRailVCCINT / EvRailVCCBRAM: an externally commanded rail move
	// (API or operator), as opposed to governor activity.
	EvRailVCCINT  = "rail_vccint"
	EvRailVCCBRAM = "rail_vccbram"
	// Governor activity on the logic rail.
	EvGovProbe   = "governor_probe"
	EvGovClimb   = "governor_climb"
	EvGovDescent = "governor_descent"
	// Governor activity on the BRAM rail.
	EvGovBRAMProbe   = "governor_bram_probe"
	EvGovBRAMClimb   = "governor_bram_climb"
	EvGovBRAMDescent = "governor_bram_descent"
	// EvScrub: one ECC scrub pass over a board's weight regions.
	EvScrub = "scrub"
	// EvECCUncorrectable: served traffic hit detected-but-uncorrectable
	// BRAM corruption.
	EvECCUncorrectable = "ecc_uncorrectable"
	// EvRoute: the cluster router dispatched a request to a pool.
	EvRoute = "route"
	// EvShed: admission control refused a request attempt (pool queue
	// full or router caps hit).
	EvShed = "shed"
	// EvSpareActivate: a warm-spare pool was promoted to active.
	EvSpareActivate = "spare_activate"
	// EvSLOBurn: an SLO error budget started burning past the alert
	// threshold in both burn windows (rising edge only).
	EvSLOBurn = "slo_burn"
	// EvPostmortem: the crash flight recorder retained a postmortem.
	EvPostmortem = "postmortem"
	// EvHealthDegraded: the health scorer flagged a board degraded.
	EvHealthDegraded = "health_degraded"
)

// Event is one structured fleet occurrence. Seq is a journal-global
// sequence number (dense, starting at 1); BoardSeq counts events of the
// same board, so per-board causal chains (crash → reboot → redeploy)
// stay checkable even when boards interleave in the global order.
type Event struct {
	Seq      uint64    `json:"seq"`
	Board    string    `json:"board,omitempty"`
	BoardSeq uint64    `json:"board_seq,omitempty"`
	Kind     string    `json:"kind"`
	At       time.Time `json:"at"`
	AtNS     int64     `json:"at_ns"`
	MV       float64   `json:"mv,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Journal is a bounded ring of fleet events. Bounded because the fleet
// produces events forever (a governor probes every tick) and an
// unbounded log would be a slow memory leak; when the ring wraps, the
// oldest events drop and readers holding a pre-wrap cursor get an
// explicit gap signal instead of silent loss. Appends are mutex-ordered
// — that is what makes Seq dense and per-board ordering exact — but the
// producers are rate-limited fleet state machines, not the request hot
// path, so the lock is never contended by serving traffic.
type Journal struct {
	mu       sync.Mutex
	buf      []Event
	next     uint64 // seq of the most recently appended event
	boardSeq map[string]uint64
	counts   map[string]int64
	logger   atomic.Pointer[slog.Logger]
}

// NewJournal builds a journal retaining the most recent capacity events
// (default 4096).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Journal{
		buf:      make([]Event, capacity),
		boardSeq: make(map[string]uint64),
		counts:   make(map[string]int64),
	}
}

// SetLogger mirrors subsequent events to a structured logger (crashes
// and uncorrectable ECC at Warn, recovery steps at Info, governor and
// scrub chatter at Debug). Nil-safe; pass nil to detach.
func (j *Journal) SetLogger(l *slog.Logger) {
	if j != nil {
		j.logger.Store(l)
	}
}

// Append stamps and records an event, filling Seq, BoardSeq, At and
// AtNS, and returns the completed event. Nil-safe (returns ev as-is).
func (j *Journal) Append(ev Event) Event {
	if j == nil {
		return ev
	}
	ev.At = time.Now()
	ev.AtNS = NowNS()
	j.mu.Lock()
	j.next++
	ev.Seq = j.next
	if ev.Board != "" {
		j.boardSeq[ev.Board]++
		ev.BoardSeq = j.boardSeq[ev.Board]
	}
	j.buf[(ev.Seq-1)%uint64(len(j.buf))] = ev
	j.counts[ev.Kind]++
	j.mu.Unlock()

	if l := j.logger.Load(); l != nil {
		lv := eventLevel(ev.Kind)
		if l.Enabled(context.Background(), lv) {
			l.LogAttrs(context.Background(), lv, "fleet event",
				slog.Uint64("seq", ev.Seq),
				slog.String("kind", ev.Kind),
				slog.String("board", ev.Board),
				slog.Uint64("board_seq", ev.BoardSeq),
				slog.Float64("mv", ev.MV),
				slog.String("detail", ev.Detail))
		}
	}
	return ev
}

func eventLevel(kind string) slog.Level {
	switch kind {
	case EvCrash, EvECCUncorrectable, EvSLOBurn, EvHealthDegraded:
		return slog.LevelWarn
	case EvReboot, EvRedeploy, EvRequeue, EvRailVCCINT, EvRailVCCBRAM,
		EvShed, EvSpareActivate:
		return slog.LevelInfo
	default:
		return slog.LevelDebug
	}
}

// Since returns up to limit events with Seq > cursor in sequence order,
// the cursor to pass next (the last returned Seq, or the caller's when
// nothing new), and whether events between the cursor and the first
// returned one were already evicted (gap). A zero cursor reads from the
// oldest retained event; limit <= 0 means 256, capped at the ring size.
func (j *Journal) Since(cursor uint64, limit int) (evs []Event, next uint64, gap bool) {
	if j == nil {
		return nil, cursor, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if limit <= 0 {
		limit = 256
	}
	if limit > len(j.buf) {
		limit = len(j.buf)
	}
	total := j.next
	oldest := uint64(1)
	if total > uint64(len(j.buf)) {
		oldest = total - uint64(len(j.buf)) + 1
	}
	from := cursor + 1
	if from < oldest {
		gap = true
		from = oldest
	}
	next = cursor
	for seq := from; seq <= total && len(evs) < limit; seq++ {
		ev := j.buf[(seq-1)%uint64(len(j.buf))]
		evs = append(evs, ev)
		next = ev.Seq
	}
	if len(evs) == 0 && gap {
		// Everything the cursor pointed past is gone and nothing is
		// retained beyond it (possible only with cursor > total, which
		// callers should not construct) — keep next coherent.
		next = total
	}
	return evs, next, gap
}

// Tail returns copies of the most recent n retained events in sequence
// order (oldest first) — the flight recorder's journal snapshot.
// Nil-safe.
func (j *Journal) Tail(n int) []Event {
	if j == nil || n <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > len(j.buf) {
		n = len(j.buf)
	}
	total := j.next
	if uint64(n) > total {
		n = int(total)
	}
	out := make([]Event, 0, n)
	for seq := total - uint64(n) + 1; seq <= total; seq++ {
		out = append(out, j.buf[(seq-1)%uint64(len(j.buf))])
	}
	return out
}

// Total returns the number of events ever appended (the newest Seq).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Counts returns a copy of the per-kind event totals (counting evicted
// events too — these back uvolt_events_total).
func (j *Journal) Counts() map[string]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}
