package telemetry

import (
	"math"
	"sync/atomic"
)

// Digest bucket geometry. Values (seconds) from digestMin to digestMax
// map onto digestBuckets log-spaced buckets; the growth factor g
// satisfies g^digestBuckets = digestMax/digestMin, so the relative
// quantile error is bounded by g-1 (~1.6%). Observations outside the
// range clamp to the end buckets.
const (
	digestBuckets = 1408
	digestMin     = 1e-6 // 1 µs
	digestMax     = 4e3  // ~66 min
)

var (
	digestLogG    = math.Log(digestMax/digestMin) / digestBuckets
	digestInvLogG = 1 / digestLogG
)

// Digest is a streaming log-bucketed quantile sketch: lock-free
// constant-memory ingest (one atomic add per observation, no heap), and
// true-rank quantile reads with bounded relative error — unlike a
// fixed-bound histogram, p999 falls out without choosing bounds up
// front. The zero value is ready to use.
type Digest struct {
	counts  [digestBuckets + 1]atomic.Int64 // +1: overflow clamp
	count   atomic.Int64
	sumBits atomic.Uint64
}

// bucketOf maps a value in seconds to its bucket index.
func bucketOf(v float64) int {
	if v <= digestMin {
		return 0
	}
	i := int(math.Log(v/digestMin) * digestInvLogG)
	if i > digestBuckets {
		i = digestBuckets
	}
	return i
}

// bucketUpper is the bucket's upper edge in seconds.
func bucketUpper(i int) float64 {
	return digestMin * math.Exp(float64(i+1)*digestLogG)
}

// Observe records one latency observation (seconds). Lock-free and
// allocation-free.
func (d *Digest) Observe(seconds float64) {
	if d == nil || math.IsNaN(seconds) {
		return
	}
	d.counts[bucketOf(seconds)].Add(1)
	d.count.Add(1)
	for {
		old := d.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if d.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations ingested.
func (d *Digest) Count() int64 {
	if d == nil {
		return 0
	}
	return d.count.Load()
}

// Sum returns the running sum of observations (seconds).
func (d *Digest) Sum() float64 {
	if d == nil {
		return 0
	}
	return math.Float64frombits(d.sumBits.Load())
}

// Quantile returns the value at rank q (0 < q <= 1) in seconds: the
// upper edge of the bucket where the cumulative count crosses
// ceil(q*total). Zero when the digest is empty. Reads race benignly
// with concurrent ingest — a quantile over a moving population is
// approximate by nature.
func (d *Digest) Quantile(q float64) float64 {
	if d == nil {
		return 0
	}
	total := d.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range d.counts {
		cum += d.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(digestBuckets)
}

// DigestSnapshot is the rendered percentile view of a digest.
type DigestSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
	P999  float64 `json:"p999_seconds"`
}

// Snapshot renders the digest's count, sum and p50/p99/p999.
func (d *Digest) Snapshot() DigestSnapshot {
	return DigestSnapshot{
		Count: d.Count(),
		Sum:   d.Sum(),
		P50:   d.Quantile(0.50),
		P99:   d.Quantile(0.99),
		P999:  d.Quantile(0.999),
	}
}
