package telemetry

import "fmt"

// Board health states. Ordered: ok < watch < degraded.
const (
	HealthOK       = "ok"
	HealthWatch    = "watch"
	HealthDegraded = "degraded"
)

// HealthConfig tunes the board health scorer's thresholds.
type HealthConfig struct {
	// VminDriftWatchMV / VminDriftDegradedMV grade estimated Vmin drift
	// versus the characterization baseline (defaults 5 / 10 mV — the
	// paper measures mV-scale Vmin movement per °C, so double-digit
	// drift means the static guardband assumption is stale).
	VminDriftWatchMV    float64
	VminDriftDegradedMV float64
	// CorrectedWatchRate / CorrectedDegradedRate grade the corrected-ECC
	// word rate (words/s, defaults 25 / 100): a rising corrected rate at
	// a fixed rail is the paper's aging/temperature early-warning signal
	// — the errors SECDED still absorbs today become uncorrectable as
	// the margin keeps eroding.
	CorrectedWatchRate    float64
	CorrectedDegradedRate float64
	// CrashWatch is the recent-crash count that flags a board (default
	// 3 crashes inside the recorder's raw window).
	CrashWatch int64
}

// sanitize fills defaults.
func (c HealthConfig) sanitize() HealthConfig {
	if c.VminDriftWatchMV <= 0 {
		c.VminDriftWatchMV = 5
	}
	if c.VminDriftDegradedMV <= c.VminDriftWatchMV {
		c.VminDriftDegradedMV = 2 * c.VminDriftWatchMV
	}
	if c.CorrectedWatchRate <= 0 {
		c.CorrectedWatchRate = 25
	}
	if c.CorrectedDegradedRate <= c.CorrectedWatchRate {
		c.CorrectedDegradedRate = 4 * c.CorrectedWatchRate
	}
	if c.CrashWatch <= 0 {
		c.CrashWatch = 3
	}
	return c
}

// HealthSignals are one board's scorer inputs, extracted from the
// recorder's history and the fleet's margin estimate.
type HealthSignals struct {
	Board string
	// VminDriftMV is the estimated upward drift of the board's Vmin
	// since characterization (mV; 0 = baseline holds).
	VminDriftMV float64
	// CorrectedRate is the recent corrected-ECC word rate (words/s);
	// CorrectedPriorRate the preceding window's rate, so Trend > 0
	// means the corrected rate is rising at a fixed rail.
	CorrectedRate      float64
	CorrectedPriorRate float64
	// UncorrectableRate is the recent detected-uncorrectable word rate.
	UncorrectableRate float64
	// RecentCrashes counts crashes inside the recorder's raw window.
	RecentCrashes int64
	// MarginMV is the present operating margin (operating point minus
	// estimated Vmin), reported through for the health view.
	MarginMV float64
}

// BoardHealth is one board's scored health.
type BoardHealth struct {
	Board string `json:"board"`
	// State is "ok", "watch" or "degraded". The cluster router demotes
	// degraded boards' pools in candidate ordering.
	State string `json:"state"`
	// Score is 0..100 (100 = pristine):
	//   100 − min(50, 5·drift_mV)
	//       − min(30, 30·corrected_rate/degraded_rate)
	//       − min(10, 10·trend/watch_rate)
	//       − min(20, 10·recent_crashes)
	// with any uncorrectable traffic clamping the score to at most 40.
	Score float64 `json:"score"`
	// VminDriftMV / CorrectedRate / CorrectedTrend / RecentCrashes echo
	// the scorer inputs behind the verdict.
	VminDriftMV    float64 `json:"vmin_drift_mv"`
	MarginMV       float64 `json:"margin_mv"`
	CorrectedRate  float64 `json:"corrected_rate"`
	CorrectedTrend float64 `json:"corrected_trend"`
	RecentCrashes  int64   `json:"recent_crashes"`
	// Reasons lists the triggered thresholds (empty when ok).
	Reasons []string `json:"reasons,omitempty"`
}

// ScoreBoard grades one board's margin-regression signals.
func ScoreBoard(cfg HealthConfig, in HealthSignals) BoardHealth {
	cfg = cfg.sanitize()
	trend := in.CorrectedRate - in.CorrectedPriorRate
	h := BoardHealth{
		Board:          in.Board,
		State:          HealthOK,
		VminDriftMV:    in.VminDriftMV,
		MarginMV:       in.MarginMV,
		CorrectedRate:  in.CorrectedRate,
		CorrectedTrend: trend,
		RecentCrashes:  in.RecentCrashes,
	}

	score := 100.0
	score -= clampF(5*in.VminDriftMV, 0, 50)
	score -= clampF(30*in.CorrectedRate/cfg.CorrectedDegradedRate, 0, 30)
	if trend > 0 {
		score -= clampF(10*trend/cfg.CorrectedWatchRate, 0, 10)
	}
	score -= clampF(10*float64(in.RecentCrashes), 0, 20)
	if in.UncorrectableRate > 0 && score > 40 {
		score = 40
	}
	h.Score = score

	degraded := func(reason string) {
		h.State = HealthDegraded
		h.Reasons = append(h.Reasons, reason)
	}
	watch := func(reason string) {
		if h.State == HealthOK {
			h.State = HealthWatch
		}
		h.Reasons = append(h.Reasons, reason)
	}
	switch {
	case in.VminDriftMV >= cfg.VminDriftDegradedMV:
		degraded(fmt.Sprintf("vmin drift %.1f mV >= %.1f mV", in.VminDriftMV, cfg.VminDriftDegradedMV))
	case in.VminDriftMV >= cfg.VminDriftWatchMV:
		watch(fmt.Sprintf("vmin drift %.1f mV >= %.1f mV", in.VminDriftMV, cfg.VminDriftWatchMV))
	}
	switch {
	case in.CorrectedRate >= cfg.CorrectedDegradedRate:
		degraded(fmt.Sprintf("corrected-ECC rate %.1f/s >= %.1f/s", in.CorrectedRate, cfg.CorrectedDegradedRate))
	case in.CorrectedRate >= cfg.CorrectedWatchRate && trend > 0:
		watch(fmt.Sprintf("corrected-ECC rate %.1f/s rising (+%.1f/s)", in.CorrectedRate, trend))
	}
	if in.UncorrectableRate > 0 {
		degraded(fmt.Sprintf("uncorrectable-ECC rate %.2f/s", in.UncorrectableRate))
	}
	if in.RecentCrashes >= cfg.CrashWatch {
		watch(fmt.Sprintf("%d crashes in window", in.RecentCrashes))
	}
	if h.State == HealthOK && score < 60 {
		watch(fmt.Sprintf("health score %.0f < 60", score))
	}
	return h
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
