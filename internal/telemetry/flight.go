package telemetry

import (
	"sync"
	"time"

	"fpgauv/internal/obs"
)

// Postmortem is one retained crash record: the board's pre-crash
// telemetry window, the fleet journal tail, and the trace active on the
// board at crash detection — everything needed to reconstruct the final
// seconds without having been watching.
type Postmortem struct {
	// ID is a recorder-unique ordinal (1-based, monotone).
	ID int64 `json:"id"`
	// Board is the crashed board; At/AtNS stamp crash detection.
	Board string    `json:"board"`
	At    time.Time `json:"at"`
	AtNS  int64     `json:"at_ns"`
	// TraceID is the request trace that was executing on the board when
	// the crash was detected (empty when untraced or idle).
	TraceID string `json:"trace_id,omitempty"`
	// VCCINTmV/VCCBRAMmV/TempC are the rails and die temperature read at
	// detection; Crashes the board's lifetime crash ordinal.
	VCCINTmV  float64 `json:"vccint_mv"`
	VCCBRAMmV float64 `json:"vccbram_mv"`
	TempC     float64 `json:"temp_c"`
	Crashes   int64   `json:"crashes"`
	// Events is the journal tail at detection (newest last).
	Events []obs.Event `json:"events"`
	// Window is the board's raw telemetry tail per series (oldest
	// first).
	Window map[string][]Point `json:"window"`
}

// FlightRecorder retains the most recent postmortems in a bounded ring.
// Recording happens on the crash path — far off the request hot path —
// so it allocates freely (the snapshots must outlive the rings they
// were copied from).
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Postmortem
	total int64
}

// NewFlightRecorder retains the most recent capacity postmortems
// (default 32).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 32
	}
	return &FlightRecorder{buf: make([]Postmortem, 0, capacity)}
}

// Record retains one postmortem, stamping ID and At/AtNS, and returns
// it. Nil-safe.
func (f *FlightRecorder) Record(pm Postmortem) Postmortem {
	if f == nil {
		return pm
	}
	pm.At = time.Now()
	pm.AtNS = obs.NowNS()
	f.mu.Lock()
	f.total++
	pm.ID = f.total
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, pm)
	} else {
		f.buf[int((f.total-1))%cap(f.buf)] = pm
	}
	f.mu.Unlock()
	return pm
}

// Recent returns up to limit retained postmortems, newest first
// (limit <= 0: all retained).
func (f *FlightRecorder) Recent(limit int) []Postmortem {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Postmortem, 0, limit)
	for i := 0; i < limit; i++ {
		idx := int((f.total-1-int64(i))%int64(cap(f.buf))+int64(cap(f.buf))) % cap(f.buf)
		if idx < len(f.buf) {
			out = append(out, f.buf[idx])
		}
	}
	return out
}

// Total counts postmortems ever recorded (retained or evicted).
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
