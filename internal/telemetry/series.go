// Package telemetry is the fleet's historical observability substrate:
// per-board time-series recording into fixed-size multi-resolution ring
// buffers (raw samples rolled up into 10s and 1m min/max/mean/last
// aggregates), streaming log-bucketed quantile digests for latency
// percentiles, an SLO tracker with multi-window error-budget burn-rate
// computation, a board health scorer keyed on the paper's margin-drift
// signals (Vmin drift versus the characterization baseline, rising
// corrected-ECC rate at a fixed rail), and a crash flight recorder that
// retains postmortem records.
//
// The recording path is built for a sampler that runs forever: every
// ring and rollup accumulator is allocated at construction, so steady-
// state sampling performs zero heap allocations (pinned by a test).
package telemetry

import "math"

// Point is one aggregated observation of a series: at raw resolution a
// single sample (Min = Max = Mean = Last, Count = 1), at rollup
// resolutions the min/max/mean/last digest of every raw sample that
// landed in the bucket.
type Point struct {
	// AtNS is the point's timestamp on the obs monotonic clock: the
	// sample time for raw points, the bucket start for rollups.
	AtNS  int64   `json:"at_ns"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
	Count int64   `json:"count"`
}

// ring is a fixed-capacity Point ring. Not self-synchronized — the
// owning Recorder's mutex covers it.
type ring struct {
	buf  []Point
	next uint64 // points ever pushed
}

func (r *ring) push(p Point) {
	r.buf[r.next%uint64(len(r.buf))] = p
	r.next++
}

// tail appends the most recent n points (oldest first) to dst.
func (r *ring) tail(n int, dst []Point) []Point {
	if n <= 0 || n > len(r.buf) {
		n = len(r.buf)
	}
	have := r.next
	if have > uint64(len(r.buf)) {
		have = uint64(len(r.buf))
	}
	if uint64(n) > have {
		n = int(have)
	}
	for i := r.next - uint64(n); i < r.next; i++ {
		dst = append(dst, r.buf[i%uint64(len(r.buf))])
	}
	return dst
}

// Resolution names accepted by Series.Points and the history endpoint.
const (
	ResRaw = "raw"
	Res10s = "10s"
	Res1m  = "1m"
)

// Resolutions enumerates the supported resolutions in order.
var Resolutions = []string{ResRaw, Res10s, Res1m}

// rollup accumulates raw samples into fixed-width buckets; a sample
// landing past the open bucket flushes the accumulated Point.
type rollup struct {
	ring    ring
	widthNS int64
	bucket  int64 // ordinal of the open bucket; -1 before the first sample
	acc     Point
}

func (ru *rollup) observe(atNS int64, v float64) {
	b := atNS / ru.widthNS
	if b != ru.bucket {
		if ru.bucket >= 0 {
			ru.flush()
		}
		ru.bucket = b
		ru.acc = Point{AtNS: b * ru.widthNS, Min: v, Max: v, Mean: 0, Last: v}
	}
	ru.acc.Min = math.Min(ru.acc.Min, v)
	ru.acc.Max = math.Max(ru.acc.Max, v)
	ru.acc.Last = v
	ru.acc.Count++
	// Mean accumulates the sum until flush divides it.
	ru.acc.Mean += v
}

func (ru *rollup) flush() {
	p := ru.acc
	if p.Count > 0 {
		p.Mean /= float64(p.Count)
	}
	ru.ring.push(p)
}

// Series is one metric's multi-resolution history: a raw ring plus one
// rollup ring per coarser resolution. All methods require external
// synchronization (the Recorder's mutex).
type Series struct {
	raw     ring
	rollups [2]rollup // 10s, 1m
}

// newSeries sizes a series' rings: rawCap raw samples, r10Cap 10-second
// buckets, r1mCap 1-minute buckets.
func newSeries(rawCap, r10Cap, r1mCap int) *Series {
	s := &Series{raw: ring{buf: make([]Point, rawCap)}}
	s.rollups[0] = rollup{ring: ring{buf: make([]Point, r10Cap)}, widthNS: 10e9, bucket: -1}
	s.rollups[1] = rollup{ring: ring{buf: make([]Point, r1mCap)}, widthNS: 60e9, bucket: -1}
	return s
}

// Observe records one raw sample and feeds every rollup level.
func (s *Series) Observe(atNS int64, v float64) {
	s.raw.push(Point{AtNS: atNS, Min: v, Max: v, Mean: v, Last: v, Count: 1})
	for i := range s.rollups {
		s.rollups[i].observe(atNS, v)
	}
}

// Points appends the most recent n points at the named resolution
// (oldest first) to dst. Rollup resolutions include the open (partial)
// bucket as their newest point so readers see fresh data without
// waiting a full bucket width. Unknown resolutions return dst unchanged.
func (s *Series) Points(res string, n int, dst []Point) []Point {
	switch res {
	case ResRaw:
		return s.raw.tail(n, dst)
	case Res10s:
		return s.rollupPoints(0, n, dst)
	case Res1m:
		return s.rollupPoints(1, n, dst)
	}
	return dst
}

func (s *Series) rollupPoints(level, n int, dst []Point) []Point {
	ru := &s.rollups[level]
	open := ru.bucket >= 0 && ru.acc.Count > 0
	if open && n > 0 {
		n-- // leave room for the open bucket
	}
	dst = ru.ring.tail(n, dst)
	if open {
		p := ru.acc
		p.Mean /= float64(p.Count)
		dst = append(dst, p)
	}
	return dst
}

// ValidRes reports whether res names a supported resolution.
func ValidRes(res string) bool {
	return res == ResRaw || res == Res10s || res == Res1m
}
