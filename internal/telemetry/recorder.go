package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Series names recorded per board. The pool-level pseudo-board (named
// after the pool) records the same set with board-only series at zero.
const (
	SeriesVCCINT       = "vccint_mv"
	SeriesVCCBRAM      = "vccbram_mv"
	SeriesTemp         = "temp_c"
	SeriesPower        = "power_w"
	SeriesECCCorrected = "ecc_corrected_rate"
	SeriesECCUncorrect = "ecc_uncorrectable_rate"
	SeriesCrashes      = "crashes_total"
	SeriesSheds        = "sheds_total"
	SeriesQueueDepth   = "queue_depth"
	SeriesThroughput   = "throughput_rps"
	SeriesGovSettled   = "governor_settled"
	SeriesVminMarginMV = "vmin_margin_mv"
)

// SeriesNames enumerates every recorded series in exposition order.
var SeriesNames = []string{
	SeriesVCCINT, SeriesVCCBRAM, SeriesTemp, SeriesPower,
	SeriesECCCorrected, SeriesECCUncorrect, SeriesCrashes, SeriesSheds,
	SeriesQueueDepth, SeriesThroughput, SeriesGovSettled, SeriesVminMarginMV,
}

// series indices (must match SeriesNames order).
const (
	idxVCCINT = iota
	idxVCCBRAM
	idxTemp
	idxPower
	idxECCCorrected
	idxECCUncorrect
	idxCrashes
	idxSheds
	idxQueueDepth
	idxThroughput
	idxGovSettled
	idxVminMargin
	numSeries
)

// ValidSeries reports whether name is a recorded series.
func ValidSeries(name string) bool {
	return seriesIndex(name) >= 0
}

func seriesIndex(name string) int {
	for i, n := range SeriesNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Config sizes the recorder and tunes the subsystems built on it.
type Config struct {
	// Interval is the sampling period (default 50ms; negative disables
	// the background sampler — SampleNow/explicit observation still
	// works, which is how tests drive deterministic histories).
	Interval time.Duration
	// RawCap / Raw10sCap / Raw1mCap size the per-series rings (defaults
	// 512 raw samples, 360 10-second buckets = 1h, 240 1-minute buckets
	// = 4h).
	RawCap int
	Cap10s int
	Cap1m  int
	// HealthWindow is how many raw samples the health scorer's recent
	// window spans (default 16; the prior window is the 16 before it).
	HealthWindow int
	// Postmortems bounds the flight recorder (default 32); JournalTail
	// and WindowPoints size each postmortem's journal and telemetry
	// snapshots (defaults 64 events, 64 raw points per series).
	Postmortems  int
	JournalTail  int
	WindowPoints int
	// Health tunes the board health scorer.
	Health HealthConfig
	// SLO declares the serving objectives (consumed by the HTTP layer's
	// tracker, carried here so one config block configures the
	// subsystem end to end).
	SLO SLOConfig
}

// Sanitize fills defaults (exported: fleet sanitizes its embedded
// config).
func (c Config) Sanitize() Config {
	if c.Interval == 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.RawCap <= 0 {
		c.RawCap = 512
	}
	if c.Cap10s <= 0 {
		c.Cap10s = 360
	}
	if c.Cap1m <= 0 {
		c.Cap1m = 240
	}
	if c.HealthWindow <= 0 {
		c.HealthWindow = 16
	}
	if c.HealthWindow > c.RawCap/2 {
		c.HealthWindow = c.RawCap / 2
	}
	if c.Postmortems <= 0 {
		c.Postmortems = 32
	}
	if c.JournalTail <= 0 {
		c.JournalTail = 64
	}
	if c.WindowPoints <= 0 {
		c.WindowPoints = 64
	}
	c.Health = c.Health.sanitize()
	c.SLO = c.SLO.sanitize()
	return c
}

// BoardSample is one board's instantaneous reading. Counter fields
// (Corrected, Uncorrectable, Crashes, Sheds, Served) are cumulative;
// the recorder differentiates them into rates between samples.
type BoardSample struct {
	VCCINTmV  float64
	VCCBRAMmV float64
	TempC     float64
	PowerW    float64
	// Corrected/Uncorrectable are cumulative ECC word counts.
	Corrected     int64
	Uncorrectable int64
	// Crashes and Sheds are cumulative; recorded as levels (the series
	// shows the counter, the health scorer differences the window).
	Crashes int64
	Sheds   int64
	// QueueDepth is an instantaneous backlog gauge.
	QueueDepth int
	// Served is the cumulative served-request counter, differentiated
	// into throughput_rps.
	Served int64
	// GovernorSettled is 1 when the board's voltage loops are quiescent.
	GovernorSettled bool
	// VminMarginMV is operating point minus estimated Vmin.
	VminMarginMV float64
}

// boardRec is one board's recorded history.
type boardRec struct {
	id     string
	series [numSeries]*Series
	last   BoardSample
	lastNS int64
	primed bool
}

// Recorder records fixed-board telemetry histories. The board set is
// fixed at construction: Observe is indexed, lock-bounded and
// allocation-free, so a sampler can run at tight intervals forever.
type Recorder struct {
	cfg    Config
	mu     sync.Mutex
	boards []*boardRec
	index  map[string]int
	flight *FlightRecorder
}

// NewRecorder builds a recorder for the given board ids (order fixes
// the Observe index).
func NewRecorder(cfg Config, boardIDs []string) *Recorder {
	cfg = cfg.Sanitize()
	r := &Recorder{
		cfg:    cfg,
		index:  make(map[string]int, len(boardIDs)),
		flight: NewFlightRecorder(cfg.Postmortems),
	}
	for i, id := range boardIDs {
		br := &boardRec{id: id}
		for s := range br.series {
			br.series[s] = newSeries(cfg.RawCap, cfg.Cap10s, cfg.Cap1m)
		}
		r.boards = append(r.boards, br)
		r.index[id] = i
	}
	return r
}

// Config returns the sanitized configuration.
func (r *Recorder) Config() Config { return r.cfg }

// Boards lists the recorded board ids in index order.
func (r *Recorder) Boards() []string {
	out := make([]string, len(r.boards))
	for i, br := range r.boards {
		out[i] = br.id
	}
	return out
}

// Lookup resolves a board id to its Observe index.
func (r *Recorder) Lookup(board string) (int, bool) {
	i, ok := r.index[board]
	return i, ok
}

// Flight returns the crash flight recorder.
func (r *Recorder) Flight() *FlightRecorder { return r.flight }

// Observe records one board sample at atNS. Allocation-free: every ring
// and rollup accumulator was allocated at construction.
func (r *Recorder) Observe(idx int, atNS int64, s BoardSample) {
	if r == nil || idx < 0 || idx >= len(r.boards) {
		return
	}
	r.mu.Lock()
	br := r.boards[idx]
	dt := float64(atNS-br.lastNS) / 1e9
	var corrRate, uncorrRate, rps float64
	if br.primed && dt > 0 {
		corrRate = rate(s.Corrected-br.last.Corrected, dt)
		uncorrRate = rate(s.Uncorrectable-br.last.Uncorrectable, dt)
		rps = rate(s.Served-br.last.Served, dt)
	}
	settled := 0.0
	if s.GovernorSettled {
		settled = 1
	}
	br.series[idxVCCINT].Observe(atNS, s.VCCINTmV)
	br.series[idxVCCBRAM].Observe(atNS, s.VCCBRAMmV)
	br.series[idxTemp].Observe(atNS, s.TempC)
	br.series[idxPower].Observe(atNS, s.PowerW)
	br.series[idxECCCorrected].Observe(atNS, corrRate)
	br.series[idxECCUncorrect].Observe(atNS, uncorrRate)
	br.series[idxCrashes].Observe(atNS, float64(s.Crashes))
	br.series[idxSheds].Observe(atNS, float64(s.Sheds))
	br.series[idxQueueDepth].Observe(atNS, float64(s.QueueDepth))
	br.series[idxThroughput].Observe(atNS, rps)
	br.series[idxGovSettled].Observe(atNS, settled)
	br.series[idxVminMargin].Observe(atNS, s.VminMarginMV)
	br.last = s
	br.lastNS = atNS
	br.primed = true
	r.mu.Unlock()
}

func rate(delta int64, dt float64) float64 {
	if delta < 0 {
		delta = 0
	}
	return float64(delta) / dt
}

// Points returns the most recent n points of one board series at the
// named resolution (oldest first). Unknown board/series/resolution
// returns nil.
func (r *Recorder) Points(board, series, res string, n int) []Point {
	idx, ok := r.Lookup(board)
	si := seriesIndex(series)
	if !ok || si < 0 || !ValidRes(res) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.boards[idx].series[si].Points(res, n, nil)
}

// Window snapshots one board's raw tail across every series — the
// flight recorder's pre-crash telemetry window.
func (r *Recorder) Window(idx int, n int) map[string][]Point {
	if idx < 0 || idx >= len(r.boards) {
		return nil
	}
	out := make(map[string][]Point, numSeries)
	r.mu.Lock()
	defer r.mu.Unlock()
	br := r.boards[idx]
	for s, name := range SeriesNames {
		out[name] = br.series[s].Points(ResRaw, n, nil)
	}
	return out
}

// healthWindow extracts one board's scorer signals from the raw rings:
// recent/prior corrected-rate means, the recent uncorrectable mean, and
// the crash-counter delta over the combined window. Caller holds mu.
func (r *Recorder) healthWindow(br *boardRec, scratch []Point) (recent, prior, uncorr float64, crashes int64) {
	w := r.cfg.HealthWindow
	pts := br.series[idxECCCorrected].raw.tail(2*w, scratch[:0])
	if len(pts) == 0 {
		return
	}
	split := len(pts) - w
	if split < 0 {
		split = 0
	}
	recent = meanLast(pts[split:])
	prior = meanLast(pts[:split])
	pts = br.series[idxECCUncorrect].raw.tail(w, scratch[:0])
	uncorr = meanLast(pts)
	pts = br.series[idxCrashes].raw.tail(2*w, scratch[:0])
	if len(pts) > 1 {
		crashes = int64(pts[len(pts)-1].Last - pts[0].Last)
	}
	return
}

func meanLast(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.Last
	}
	return sum / float64(len(pts))
}

// HealthSignalsFor extracts the recorder-derived scorer inputs for one
// board (drift and margin are the caller's — they come from the fleet's
// margin estimator, not the history).
func (r *Recorder) HealthSignalsFor(idx int, driftMV, marginMV float64) HealthSignals {
	if idx < 0 || idx >= len(r.boards) {
		return HealthSignals{}
	}
	scratch := make([]Point, 0, 2*r.cfg.HealthWindow)
	r.mu.Lock()
	br := r.boards[idx]
	recent, prior, uncorr, crashes := r.healthWindow(br, scratch)
	r.mu.Unlock()
	return HealthSignals{
		Board:              br.id,
		VminDriftMV:        driftMV,
		MarginMV:           marginMV,
		CorrectedRate:      recent,
		CorrectedPriorRate: prior,
		UncorrectableRate:  uncorr,
		RecentCrashes:      crashes,
	}
}

// MergePostmortems merges per-recorder postmortem sets newest-first —
// the cluster aggregation helper.
func MergePostmortems(limit int, sets ...[]Postmortem) []Postmortem {
	var all []Postmortem
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].AtNS > all[j].AtNS })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}
