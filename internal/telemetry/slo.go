package telemetry

import (
	"fmt"
	"sync"
	"time"

	"fpgauv/internal/obs"
)

// SLOConfig declares the serving objectives the tracker burns error
// budget against.
type SLOConfig struct {
	// AvailabilityTarget is the success-fraction objective (default
	// 0.999: at most 1 failed request per 1000).
	AvailabilityTarget float64
	// LatencyTarget is the per-request latency objective; LatencyGoal
	// is the fraction of requests that must finish under it (default
	// 250ms at 0.99).
	LatencyTarget time.Duration
	LatencyGoal   float64
	// FastWindow and SlowWindow are the two burn-rate windows (default
	// 1m and 10m). Google-SRE-style multi-window alerting: a burn event
	// fires only when BOTH windows exceed BurnThreshold, so a short
	// error spike (fast window only) and a long-ago incident still
	// draining out of the slow window both stay quiet.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn-rate multiple that journals an slo_burn
	// event (default 4: budget consumed 4x faster than sustainable).
	BurnThreshold float64
}

// sanitize fills defaults.
func (c SLOConfig) sanitize() SLOConfig {
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 250 * time.Millisecond
	}
	if c.LatencyGoal <= 0 || c.LatencyGoal >= 1 {
		c.LatencyGoal = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= c.FastWindow {
		c.SlowWindow = 10 * c.FastWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 4
	}
	return c
}

// sloBuckets is the time-bucket count covering the slow window; the
// fast window sums a suffix of them.
const sloBuckets = 120

// sloBucket is one time slice of request outcomes.
type sloBucket struct {
	ordinal int64 // bucket ordinal on the shared clock; -1 when empty
	total   int64
	errs    int64
	slow    int64 // requests over the latency target
}

// WindowBurn is one (objective, window) burn-rate reading.
type WindowBurn struct {
	// Window names the config window ("fast"/"slow") and Seconds its
	// span.
	Window  string  `json:"window"`
	Seconds float64 `json:"seconds"`
	// Total/Bad are the window's request outcomes for this objective.
	Total int64 `json:"total"`
	Bad   int64 `json:"bad"`
	// BurnRate is bad-fraction divided by the objective's error budget:
	// 1.0 consumes the budget exactly at the sustainable rate.
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's live burn view.
type ObjectiveStatus struct {
	// Objective is "availability" or "latency"; Target the configured
	// goal fraction.
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	// Windows holds the fast and slow readings.
	Windows []WindowBurn `json:"windows"`
	// Burning reports the multi-window alert condition (both windows
	// over the threshold) right now; BurnEvents counts its rising edges
	// since startup (each one journaled as slo_burn).
	Burning    bool  `json:"burning"`
	BurnEvents int64 `json:"burn_events"`
}

// SLOStatus is the tracker's full snapshot.
type SLOStatus struct {
	AvailabilityTarget float64           `json:"availability_target"`
	LatencyTargetMS    float64           `json:"latency_target_ms"`
	LatencyGoal        float64           `json:"latency_goal"`
	BurnThreshold      float64           `json:"burn_threshold"`
	Objectives         []ObjectiveStatus `json:"objectives"`
}

// SLOTracker ingests request outcomes into a bucketed ring covering the
// slow window and computes error-budget burn rates over both windows.
// On the rising edge of the multi-window alert condition it journals an
// slo_burn event; the alert re-arms once both windows drop back under
// the threshold.
type SLOTracker struct {
	cfg      SLOConfig
	widthNS  int64
	fastN    int // buckets per fast window
	jr       *obs.Journal
	nowNS    func() int64
	mu       sync.Mutex
	buckets  [sloBuckets]sloBucket
	burning  [2]bool // availability, latency
	burnEvts [2]int64
}

// objective indices.
const (
	objAvailability = 0
	objLatency      = 1
)

var objNames = [2]string{"availability", "latency"}

// NewSLOTracker builds a tracker; journal (nil-safe) receives slo_burn
// events.
func NewSLOTracker(cfg SLOConfig, journal *obs.Journal) *SLOTracker {
	cfg = cfg.sanitize()
	t := &SLOTracker{
		cfg:     cfg,
		widthNS: cfg.SlowWindow.Nanoseconds() / sloBuckets,
		jr:      journal,
		nowNS:   obs.NowNS,
	}
	if t.widthNS <= 0 {
		t.widthNS = 1
	}
	t.fastN = int(cfg.FastWindow.Nanoseconds() / t.widthNS)
	if t.fastN < 1 {
		t.fastN = 1
	}
	for i := range t.buckets {
		t.buckets[i].ordinal = -1
	}
	return t
}

// Config returns the sanitized configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Record ingests one request outcome. ok=false burns availability
// budget; a latency at or over the target burns latency budget.
// Nil-safe.
func (t *SLOTracker) Record(ok bool, latency time.Duration) {
	if t == nil {
		return
	}
	now := t.nowNS()
	ord := now / t.widthNS
	t.mu.Lock()
	b := &t.buckets[ord%sloBuckets]
	if b.ordinal != ord {
		*b = sloBucket{ordinal: ord}
	}
	b.total++
	if !ok {
		b.errs++
	}
	if latency >= t.cfg.LatencyTarget {
		b.slow++
	}
	burn := t.burnLocked(now)
	t.mu.Unlock()
	t.journalEdges(burn)
}

// windowTotals sums outcomes over the most recent n buckets. Caller
// holds mu.
func (t *SLOTracker) windowTotals(nowOrd int64, n int) (total, errs, slow int64) {
	lo := nowOrd - int64(n) + 1
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.ordinal >= lo && b.ordinal <= nowOrd {
			total += b.total
			errs += b.errs
			slow += b.slow
		}
	}
	return
}

// burnEdge describes one objective's alert transition computed under
// the lock and journaled outside it.
type burnEdge struct {
	objective string
	fast      float64
	slow      float64
	rising    bool
}

// burnLocked recomputes both objectives' multi-window condition and
// returns any rising edges. Caller holds mu.
func (t *SLOTracker) burnLocked(nowNS int64) []burnEdge {
	nowOrd := nowNS / t.widthNS
	var edges []burnEdge
	for obj := 0; obj < 2; obj++ {
		fast := t.windowBurn(nowOrd, t.fastN, obj)
		slow := t.windowBurn(nowOrd, sloBuckets, obj)
		burning := fast.BurnRate >= t.cfg.BurnThreshold && slow.BurnRate >= t.cfg.BurnThreshold &&
			fast.Total > 0 && slow.Total > 0
		if burning && !t.burning[obj] {
			t.burnEvts[obj]++
			edges = append(edges, burnEdge{objNames[obj], fast.BurnRate, slow.BurnRate, true})
		}
		t.burning[obj] = burning
	}
	return edges
}

// windowBurn computes one (objective, window) reading. Caller holds mu.
func (t *SLOTracker) windowBurn(nowOrd int64, n, obj int) WindowBurn {
	total, errs, slow := t.windowTotals(nowOrd, n)
	bad := errs
	budget := 1 - t.cfg.AvailabilityTarget
	if obj == objLatency {
		bad = slow
		budget = 1 - t.cfg.LatencyGoal
	}
	wb := WindowBurn{
		Window:  "slow",
		Seconds: float64(int64(n)*t.widthNS) / 1e9,
		Total:   total,
		Bad:     bad,
	}
	if n == t.fastN {
		wb.Window = "fast"
	}
	if total > 0 && budget > 0 {
		wb.BurnRate = (float64(bad) / float64(total)) / budget
	}
	return wb
}

// journalEdges emits slo_burn events for rising alert edges.
func (t *SLOTracker) journalEdges(edges []burnEdge) {
	for _, e := range edges {
		t.jr.Append(obs.Event{
			Kind: obs.EvSLOBurn,
			Detail: fmt.Sprintf("%s error budget burning %.1fx (fast) / %.1fx (slow), threshold %.1fx",
				e.objective, e.fast, e.slow, t.cfg.BurnThreshold),
		})
	}
}

// Snapshot renders both objectives' burn state.
func (t *SLOTracker) Snapshot() SLOStatus {
	st := SLOStatus{}
	if t == nil {
		return st
	}
	st.AvailabilityTarget = t.cfg.AvailabilityTarget
	st.LatencyTargetMS = float64(t.cfg.LatencyTarget.Microseconds()) / 1000
	st.LatencyGoal = t.cfg.LatencyGoal
	st.BurnThreshold = t.cfg.BurnThreshold
	now := t.nowNS()
	nowOrd := now / t.widthNS
	t.mu.Lock()
	defer t.mu.Unlock()
	for obj := 0; obj < 2; obj++ {
		target := t.cfg.AvailabilityTarget
		if obj == objLatency {
			target = t.cfg.LatencyGoal
		}
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Objective: objNames[obj],
			Target:    target,
			Windows: []WindowBurn{
				t.windowBurn(nowOrd, t.fastN, obj),
				t.windowBurn(nowOrd, sloBuckets, obj),
			},
			Burning:    t.burning[obj],
			BurnEvents: t.burnEvts[obj],
		})
	}
	return st
}
