package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"fpgauv/internal/obs"
)

// TestSeriesRawTail: the raw ring keeps the newest RawCap samples in
// order across wraparound.
func TestSeriesRawTail(t *testing.T) {
	s := newSeries(8, 4, 4)
	for i := 0; i < 20; i++ {
		s.Observe(int64(i)*1e9, float64(i))
	}
	pts := s.Points(ResRaw, 0, nil)
	if len(pts) != 8 {
		t.Fatalf("raw tail length = %d, want 8", len(pts))
	}
	for i, p := range pts {
		want := float64(12 + i)
		if p.Last != want || p.Count != 1 || p.Min != want || p.Max != want {
			t.Fatalf("point %d = %+v, want value %.0f", i, p, want)
		}
	}
	if got := s.Points(ResRaw, 3, nil); len(got) != 3 || got[0].Last != 17 {
		t.Fatalf("limited tail = %+v, want last 3 starting at 17", got)
	}
}

// TestSeriesRollup: samples aggregate into 10s buckets with correct
// min/max/mean/last, and the open partial bucket is visible.
func TestSeriesRollup(t *testing.T) {
	s := newSeries(64, 8, 8)
	// Bucket 0 ([0,10s)): values 1, 5, 3. Bucket 1: value 7 (open).
	s.Observe(1e9, 1)
	s.Observe(4e9, 5)
	s.Observe(9e9, 3)
	s.Observe(11e9, 7)
	pts := s.Points(Res10s, 0, nil)
	if len(pts) != 2 {
		t.Fatalf("rollup points = %d, want 2 (closed + open)", len(pts))
	}
	closed := pts[0]
	if closed.Min != 1 || closed.Max != 5 || closed.Last != 3 || closed.Count != 3 {
		t.Fatalf("closed bucket = %+v", closed)
	}
	if got, want := closed.Mean, 3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("closed bucket mean = %g, want %g", got, want)
	}
	if closed.AtNS != 0 {
		t.Fatalf("closed bucket AtNS = %d, want 0", closed.AtNS)
	}
	open := pts[1]
	if open.Last != 7 || open.Count != 1 || open.AtNS != 10e9 {
		t.Fatalf("open bucket = %+v", open)
	}

	// The 1m level still has everything in its single open bucket.
	mpts := s.Points(Res1m, 0, nil)
	if len(mpts) != 1 || mpts[0].Count != 4 || mpts[0].Min != 1 || mpts[0].Max != 7 {
		t.Fatalf("1m rollup = %+v", mpts)
	}
}

// TestSeriesRollupWraparound: closed rollup buckets cycle through a
// bounded ring.
func TestSeriesRollupWraparound(t *testing.T) {
	s := newSeries(4, 3, 3)
	for i := 0; i < 10; i++ { // one sample per 10s bucket
		s.Observe(int64(i)*10e9+1e9, float64(i))
	}
	pts := s.Points(Res10s, 0, nil)
	// Ring of 3 closed + 1 open = newest 4 buckets: values 6..9.
	if len(pts) != 4 {
		t.Fatalf("rollup tail = %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.Last != want {
			t.Fatalf("bucket %d last = %g, want %g", i, p.Last, want)
		}
	}
}

// TestDigestQuantileError: quantiles come back within the bucket
// geometry's relative error bound on a known distribution.
func TestDigestQuantileError(t *testing.T) {
	var d Digest
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()) * 10e-3 // log-normal around 10ms
		vals = append(vals, v)
		d.Observe(v)
	}
	if d.Count() != 20000 {
		t.Fatalf("count = %d", d.Count())
	}
	exact := func(q float64) float64 {
		s := append([]float64(nil), vals...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
			if float64(i+1) >= q*float64(len(s)) {
				return s[i]
			}
		}
		return s[len(s)-1]
	}
	// Growth factor bound: one bucket is a factor of ~1.016; allow 2
	// buckets of slack (~3.3% relative) for rank-vs-edge rounding.
	const tol = 0.035
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := d.Quantile(q), exact(q)
		if math.Abs(got-want)/want > tol {
			t.Fatalf("q%.3f: digest %.6f vs exact %.6f (err %.2f%%)", q, got, want,
				100*math.Abs(got-want)/want)
		}
	}
	snap := d.Snapshot()
	if snap.P50 <= 0 || snap.P99 < snap.P50 || snap.P999 < snap.P99 {
		t.Fatalf("snapshot quantiles not monotone: %+v", snap)
	}
}

// TestDigestEdges: empty, nil, clamping and sum behavior.
func TestDigestEdges(t *testing.T) {
	var nilD *Digest
	nilD.Observe(1)
	if nilD.Quantile(0.5) != 0 || nilD.Count() != 0 || nilD.Sum() != 0 {
		t.Fatal("nil digest must read zero")
	}
	var d Digest
	if d.Quantile(0.99) != 0 {
		t.Fatal("empty digest quantile must be 0")
	}
	d.Observe(1e9) // clamps to the overflow bucket
	d.Observe(0)   // clamps to bucket 0
	if d.Count() != 2 {
		t.Fatalf("count = %d", d.Count())
	}
	if got := d.Quantile(1); got < digestMax {
		t.Fatalf("overflow quantile = %g, want >= %g", got, float64(digestMax))
	}
	if math.Abs(d.Sum()-1e9) > 1 {
		t.Fatalf("sum = %g", d.Sum())
	}
}

// sloHarness builds a tracker on a fake clock feeding a real journal.
func sloHarness(t *testing.T, cfg SLOConfig) (*SLOTracker, *obs.Journal, *int64) {
	t.Helper()
	jr := obs.NewJournal(128)
	tr := NewSLOTracker(cfg, jr)
	now := new(int64)
	tr.nowNS = func() int64 { return *now }
	return tr, jr, now
}

// TestSLOBurnMultiWindow: a failure spike trips the fast window
// immediately but journals only once both windows burn; recovery
// re-arms the alert.
func TestSLOBurnMultiWindow(t *testing.T) {
	cfg := SLOConfig{
		AvailabilityTarget: 0.9, // 10% budget: easy to burn deterministically
		FastWindow:         time.Minute,
		SlowWindow:         10 * time.Minute,
		BurnThreshold:      4,
	}
	tr, jr, now := sloHarness(t, cfg)

	// Seed the slow window with plenty of successes so early failures
	// burn the fast window without reaching 4x on the slow one.
	for i := 0; i < 600; i++ {
		*now += int64(time.Second)
		tr.Record(true, time.Millisecond)
	}
	st := tr.Snapshot()
	if st.Objectives[0].Burning {
		t.Fatal("burning with zero failures")
	}

	// 100% failures for 30s: fast window burns >= 4x quickly, slow
	// window lags behind.
	fastBurning := false
	for i := 0; i < 30; i++ {
		*now += int64(time.Second)
		tr.Record(false, time.Millisecond)
		s := tr.Snapshot().Objectives[0]
		if s.Windows[0].BurnRate >= 4 && s.Windows[1].BurnRate < 4 {
			fastBurning = true
			if s.Burning {
				t.Fatal("alert fired on fast window alone")
			}
		}
	}
	if !fastBurning {
		t.Fatal("test never saw fast-only burn; tune the traffic shape")
	}

	// Keep failing until the slow window crosses too: alert rises once.
	for i := 0; i < 400 && !tr.Snapshot().Objectives[0].Burning; i++ {
		*now += int64(time.Second)
		tr.Record(false, time.Millisecond)
	}
	av := tr.Snapshot().Objectives[0]
	if !av.Burning {
		t.Fatal("alert never fired with sustained failures")
	}
	if av.BurnEvents != 1 {
		t.Fatalf("burn events = %d, want exactly 1 rising edge", av.BurnEvents)
	}
	burnEvents := 0
	evs, _, _ := jr.Since(0, 0)
	for _, e := range evs {
		if e.Kind == obs.EvSLOBurn {
			burnEvents++
		}
	}
	if burnEvents != 1 {
		t.Fatalf("journaled slo_burn events = %d, want 1", burnEvents)
	}

	// Recover: successes push both windows back under threshold, then a
	// second incident journals a second event.
	for i := 0; i < 1200; i++ {
		*now += int64(time.Second)
		tr.Record(true, time.Millisecond)
	}
	if s := tr.Snapshot().Objectives[0]; s.Burning {
		t.Fatal("still burning after full recovery")
	}
	for i := 0; i < 1200 && !tr.Snapshot().Objectives[0].Burning; i++ {
		*now += int64(time.Second)
		tr.Record(false, time.Millisecond)
	}
	if got := tr.Snapshot().Objectives[0].BurnEvents; got != 2 {
		t.Fatalf("burn events after second incident = %d, want 2", got)
	}
}

// TestSLOLatencyObjective: slow-but-successful requests burn the
// latency objective, not availability.
func TestSLOLatencyObjective(t *testing.T) {
	cfg := SLOConfig{
		LatencyTarget: 100 * time.Millisecond,
		LatencyGoal:   0.9,
		FastWindow:    time.Minute,
		SlowWindow:    10 * time.Minute,
		BurnThreshold: 2,
	}
	tr, _, now := sloHarness(t, cfg)
	for i := 0; i < 1200; i++ {
		*now += int64(500 * time.Millisecond)
		tr.Record(true, 500*time.Millisecond) // success, but 5x over target
	}
	st := tr.Snapshot()
	if st.Objectives[0].Burning {
		t.Fatal("availability burning on successful requests")
	}
	if !st.Objectives[1].Burning {
		t.Fatalf("latency objective not burning: %+v", st.Objectives[1])
	}
	if st.Objectives[1].BurnEvents < 1 {
		t.Fatal("latency burn never journaled")
	}
}

// TestSLODefaults: zero config sanitizes to the documented defaults.
func TestSLODefaults(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{}, nil)
	c := tr.Config()
	if c.AvailabilityTarget != 0.999 || c.LatencyTarget != 250*time.Millisecond ||
		c.LatencyGoal != 0.99 || c.FastWindow != time.Minute ||
		c.SlowWindow != 10*time.Minute || c.BurnThreshold != 4 {
		t.Fatalf("defaults = %+v", c)
	}
	tr.Record(true, time.Millisecond) // nil journal must not panic
	var nilT *SLOTracker
	nilT.Record(true, 0)
	if s := nilT.Snapshot(); len(s.Objectives) != 0 {
		t.Fatal("nil tracker snapshot must be empty")
	}
}

// TestScoreBoardThresholds walks the scorer through the documented
// grading boundaries.
func TestScoreBoardThresholds(t *testing.T) {
	cfg := HealthConfig{} // defaults: drift 5/10, corrected 25/100, crashes 3
	cases := []struct {
		name  string
		in    HealthSignals
		state string
	}{
		{"pristine", HealthSignals{}, HealthOK},
		{"small drift", HealthSignals{VminDriftMV: 4.9}, HealthOK},
		{"watch drift", HealthSignals{VminDriftMV: 5}, HealthWatch},
		{"degraded drift", HealthSignals{VminDriftMV: 10}, HealthDegraded},
		{"corrected steady", HealthSignals{CorrectedRate: 50, CorrectedPriorRate: 50}, HealthOK},
		{"corrected rising", HealthSignals{CorrectedRate: 50, CorrectedPriorRate: 10}, HealthWatch},
		{"corrected degraded", HealthSignals{CorrectedRate: 100}, HealthDegraded},
		{"uncorrectable", HealthSignals{UncorrectableRate: 0.5}, HealthDegraded},
		{"crashes", HealthSignals{RecentCrashes: 3}, HealthWatch},
	}
	for _, tc := range cases {
		h := ScoreBoard(cfg, tc.in)
		if h.State != tc.state {
			t.Errorf("%s: state = %s, want %s (%+v)", tc.name, h.State, tc.state, h)
		}
		if h.State != HealthOK && len(h.Reasons) == 0 {
			t.Errorf("%s: flagged without reasons", tc.name)
		}
		if h.Score < 0 || h.Score > 100 {
			t.Errorf("%s: score %g out of range", tc.name, h.Score)
		}
	}
	// Uncorrectable traffic clamps an otherwise-clean score to <= 40.
	if h := ScoreBoard(cfg, HealthSignals{UncorrectableRate: 0.1}); h.Score > 40 {
		t.Fatalf("uncorrectable clamp: score = %g, want <= 40", h.Score)
	}
	// Pristine board scores exactly 100.
	if h := ScoreBoard(cfg, HealthSignals{}); h.Score != 100 {
		t.Fatalf("pristine score = %g, want 100", h.Score)
	}
}

// TestFlightRecorderWraparound: the ring retains the newest N, Recent
// honors limits and ordering, Total keeps counting.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		pm := f.Record(Postmortem{Board: fmt.Sprintf("b%d", i)})
		if pm.ID != int64(i) {
			t.Fatalf("record %d: ID = %d", i, pm.ID)
		}
		if pm.AtNS == 0 || pm.At.IsZero() {
			t.Fatalf("record %d: timestamps not stamped", i)
		}
	}
	if f.Total() != 5 {
		t.Fatalf("total = %d, want 5", f.Total())
	}
	recent := f.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("retained = %d, want 3", len(recent))
	}
	for i, want := range []string{"b5", "b4", "b3"} {
		if recent[i].Board != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].Board, want)
		}
	}
	if one := f.Recent(1); len(one) != 1 || one[0].Board != "b5" {
		t.Fatalf("recent(1) = %+v", one)
	}
	var nilF *FlightRecorder
	nilF.Record(Postmortem{})
	if nilF.Recent(0) != nil || nilF.Total() != 0 {
		t.Fatal("nil flight recorder must read empty")
	}
}

// TestRecorderRates: cumulative counters differentiate into rates once
// primed; the first sample records zero rates.
func TestRecorderRates(t *testing.T) {
	r := NewRecorder(Config{Interval: -1}, []string{"b0"})
	r.Observe(0, 1e9, BoardSample{Corrected: 100, Served: 10})
	r.Observe(0, 2e9, BoardSample{Corrected: 150, Served: 30})
	r.Observe(0, 4e9, BoardSample{Corrected: 150, Served: 40})

	pts := r.Points("b0", SeriesECCCorrected, ResRaw, 0)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Last != 0 {
		t.Fatalf("unprimed rate = %g, want 0", pts[0].Last)
	}
	if pts[1].Last != 50 { // 50 words over 1s
		t.Fatalf("corrected rate = %g, want 50", pts[1].Last)
	}
	if pts[2].Last != 0 {
		t.Fatalf("steady corrected rate = %g, want 0", pts[2].Last)
	}
	tp := r.Points("b0", SeriesThroughput, ResRaw, 0)
	if tp[1].Last != 20 || tp[2].Last != 5 { // 20 rps then 10/2s
		t.Fatalf("throughput = %g, %g, want 20, 5", tp[1].Last, tp[2].Last)
	}

	// Unknown lookups return nil, not panics.
	if r.Points("nope", SeriesVCCINT, ResRaw, 0) != nil {
		t.Fatal("unknown board must return nil")
	}
	if r.Points("b0", "nope", ResRaw, 0) != nil {
		t.Fatal("unknown series must return nil")
	}
	if r.Points("b0", SeriesVCCINT, "2h", 0) != nil {
		t.Fatal("unknown resolution must return nil")
	}
}

// TestRecorderHealthSignals: the recorder's windowed extraction feeds
// the scorer with recent-vs-prior corrected rates and crash deltas.
func TestRecorderHealthSignals(t *testing.T) {
	r := NewRecorder(Config{Interval: -1, HealthWindow: 4}, []string{"b0"})
	at := int64(0)
	obsv := func(corrected, crashes int64) {
		at += 1e9
		r.Observe(0, at, BoardSample{Corrected: corrected, Crashes: crashes})
	}
	// Prior window: ~10/s corrected. Recent window: ~100/s, plus 2
	// crashes inside the combined window.
	var c int64
	for i := 0; i < 5; i++ {
		c += 10
		obsv(c, 0)
	}
	for i := 0; i < 4; i++ {
		c += 100
		obsv(c, 2)
	}
	sig := r.HealthSignalsFor(0, 3.5, 12)
	if sig.Board != "b0" || sig.VminDriftMV != 3.5 || sig.MarginMV != 12 {
		t.Fatalf("passthrough fields wrong: %+v", sig)
	}
	if sig.CorrectedRate <= sig.CorrectedPriorRate {
		t.Fatalf("recent rate %.1f not above prior %.1f", sig.CorrectedRate, sig.CorrectedPriorRate)
	}
	if sig.CorrectedRate < 50 {
		t.Fatalf("recent rate %.1f, want ~100", sig.CorrectedRate)
	}
	if sig.RecentCrashes != 2 {
		t.Fatalf("recent crashes = %d, want 2", sig.RecentCrashes)
	}
}

// TestRecorderWindow: the postmortem window covers every series.
func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(Config{Interval: -1}, []string{"b0", "b1"})
	for i := 0; i < 5; i++ {
		r.Observe(0, int64(i+1)*1e9, BoardSample{VCCINTmV: 850})
	}
	w := r.Window(0, 3)
	if len(w) != len(SeriesNames) {
		t.Fatalf("window series = %d, want %d", len(w), len(SeriesNames))
	}
	if pts := w[SeriesVCCINT]; len(pts) != 3 || pts[2].Last != 850 {
		t.Fatalf("vccint window = %+v", pts)
	}
	if w := r.Window(9, 3); w != nil {
		t.Fatal("out-of-range window must be nil")
	}
}

// TestMergePostmortems: cross-pool merge is newest-first and bounded.
func TestMergePostmortems(t *testing.T) {
	a := []Postmortem{{ID: 1, AtNS: 10}, {ID: 2, AtNS: 30}}
	b := []Postmortem{{ID: 3, AtNS: 20}, {ID: 4, AtNS: 40}}
	got := MergePostmortems(3, a, b)
	if len(got) != 3 {
		t.Fatalf("merged = %d, want 3", len(got))
	}
	for i, want := range []int64{40, 30, 20} {
		if got[i].AtNS != want {
			t.Fatalf("merged[%d].AtNS = %d, want %d", i, got[i].AtNS, want)
		}
	}
	if got := MergePostmortems(0, a); len(got) != 2 {
		t.Fatalf("unbounded merge = %d, want 2", len(got))
	}
}

// TestConfigSanitize: documented defaults and the HealthWindow cap.
func TestConfigSanitize(t *testing.T) {
	c := Config{}.Sanitize()
	if c.Interval != 50*time.Millisecond || c.RawCap != 512 || c.Cap10s != 360 ||
		c.Cap1m != 240 || c.HealthWindow != 16 || c.Postmortems != 32 ||
		c.JournalTail != 64 || c.WindowPoints != 64 {
		t.Fatalf("defaults = %+v", c)
	}
	if got := (Config{RawCap: 8, HealthWindow: 100}).Sanitize().HealthWindow; got != 4 {
		t.Fatalf("health window cap = %d, want RawCap/2 = 4", got)
	}
	if got := (Config{Interval: -1}).Sanitize().Interval; got != -1 {
		t.Fatal("negative interval (sampler disabled) must survive sanitize")
	}
}

// TestObserveZeroAlloc pins the steady-state sampling path at zero heap
// allocations per board sample.
func TestObserveZeroAlloc(t *testing.T) {
	r := NewRecorder(Config{Interval: -1}, []string{"b0"})
	at := int64(0)
	s := BoardSample{VCCINTmV: 850, TempC: 40, Corrected: 1}
	r.Observe(0, 1, s) // prime
	allocs := testing.AllocsPerRun(200, func() {
		at += 50e6
		s.Corrected++
		s.Served++
		r.Observe(0, at, s)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per sample, want 0", allocs)
	}
}

// TestDigestObserveZeroAlloc pins the latency ingest path at zero heap
// allocations.
func TestDigestObserveZeroAlloc(t *testing.T) {
	var d Digest
	allocs := testing.AllocsPerRun(200, func() { d.Observe(0.012) })
	if allocs != 0 {
		t.Fatalf("Digest.Observe allocates %.1f, want 0", allocs)
	}
}
