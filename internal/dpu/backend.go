package dpu

import (
	"fmt"

	"fpgauv/internal/quant"
)

// Compute backend names. Auto is resolved at compile (dnndk.Quantize)
// time into dense or sparse per kernel; naive is not deployable — it is
// the test oracle SetReferenceKernels forces.
const (
	BackendAuto   = "auto"
	BackendDense  = "dense"
	BackendSparse = "sparse"
	BackendNaive  = "naive"
)

// ValidBackend reports whether name is a deployable backend selector
// ("" means auto).
func ValidBackend(name string) bool {
	switch name {
	case "", BackendAuto, BackendDense, BackendSparse:
		return true
	}
	return false
}

// ComputeBackend is one weight-layer execution strategy: how a compiled
// conv/FC node runs against the quant engine. All backends share the
// executor's fault injection and requantize epilogue and are bit-exact
// with each other on the same weight image at every worker count —
// only where the int8 MACs come from differs:
//
//   - dense: im2col + tiled int8 GEMM over the dense weight tensor
//   - sparse: the same tiling over the block-sparse packed image,
//     skipping fully-zero SparseBlockRows×1 weight blocks
//   - naive: the direct conv/FC reference kernels (the oracle)
//
// Conv/Dense run one image; ConvBatch/DenseBatch run a lane's stacked
// sub-batch with image b's accumulators at block b of *acc, in the exact
// single-image layout.
type ComputeBackend interface {
	Name() string
	Conv(kn *KernelNode, x *quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error)
	Dense(kn *KernelNode, x *quant.QTensor, acc *[]int32) (int, error)
	ConvBatch(kn *KernelNode, xs []*quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error)
	DenseBatch(kn *KernelNode, xs []*quant.QTensor, acc *[]int32) (int, error)
}

// backendFor resolves the backend one kernel executes on: the naive
// oracle when reference kernels are forced, otherwise the kernel's
// compiled backend.
func (d *DPU) backendFor(k *Kernel) ComputeBackend {
	if d.refKernels {
		return naiveBackend{}
	}
	if k.Backend == BackendSparse {
		return sparseBackend{}
	}
	return denseBackend{}
}

// bramImage returns the node's BRAM-resident weight image — the tensor
// BRAM fault injection corrupts and the ECC scrubber protects. On the
// sparse backend that is the packed image (smaller: fewer protected
// words at the same fault rate; the dense WQ is host-side DDR staging).
// When reference kernels are forced the naive oracle reads WQ, so
// faults target it to stay visible to the compute.
func (d *DPU) bramImage(kn *KernelNode) *quant.QTensor {
	if kn.SW != nil && !d.refKernels {
		return kn.SW.Packed
	}
	return kn.WQ
}

// denseBackend is the im2col+GEMM engine over dense weights.
type denseBackend struct{}

func (denseBackend) Name() string { return BackendDense }

func (denseBackend) Conv(kn *KernelNode, x *quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error) {
	return quant.Conv2DInt8Gemm(x, kn.WQ, kn.BiasQ, stride, pad, col, acc)
}

func (denseBackend) Dense(kn *KernelNode, x *quant.QTensor, acc *[]int32) (int, error) {
	return quant.DenseInt8Gemm(x, kn.WQ, kn.BiasQ, acc)
}

func (denseBackend) ConvBatch(kn *KernelNode, xs []*quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error) {
	return quant.Conv2DInt8GemmBatch(xs, kn.WQ, kn.BiasQ, stride, pad, col, acc)
}

func (denseBackend) DenseBatch(kn *KernelNode, xs []*quant.QTensor, acc *[]int32) (int, error) {
	return quant.DenseInt8GemmBatch(xs, kn.WQ, kn.BiasQ, acc)
}

// sparseBackend is the same engine over the block-sparse packed image.
type sparseBackend struct{}

func (sparseBackend) Name() string { return BackendSparse }

func (sparseBackend) Conv(kn *KernelNode, x *quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error) {
	return quant.Conv2DInt8GemmSparse(x, kn.SW, kn.BiasQ, stride, pad, col, acc)
}

func (sparseBackend) Dense(kn *KernelNode, x *quant.QTensor, acc *[]int32) (int, error) {
	return quant.DenseInt8GemmSparse(x, kn.SW, kn.BiasQ, acc)
}

func (sparseBackend) ConvBatch(kn *KernelNode, xs []*quant.QTensor, stride, pad int, col *[]int8, acc *[]int32) (quant.ConvShape, error) {
	return quant.Conv2DInt8GemmBatchSparse(xs, kn.SW, kn.BiasQ, stride, pad, col, acc)
}

func (sparseBackend) DenseBatch(kn *KernelNode, xs []*quant.QTensor, acc *[]int32) (int, error) {
	return quant.DenseInt8GemmBatchSparse(xs, kn.SW, kn.BiasQ, acc)
}

// naiveBackend is the direct conv/FC reference oracle. Its results land
// in the caller's acc arena like the engine backends, so the executor
// epilogue is shared verbatim and the paths cannot drift apart.
type naiveBackend struct{}

func (naiveBackend) Name() string { return BackendNaive }

func (naiveBackend) Conv(kn *KernelNode, x *quant.QTensor, stride, pad int, _ *[]int8, acc *[]int32) (quant.ConvShape, error) {
	a, dd, err := quant.Conv2DInt8(x, kn.WQ, kn.BiasQ, stride, pad)
	if err != nil {
		return quant.ConvShape{}, err
	}
	sh := quant.ConvShape{OutC: dd[0], OutH: dd[1], OutW: dd[2]}
	*acc = growAcc(*acc, len(a))
	copy(*acc, a)
	return sh, nil
}

func (naiveBackend) Dense(kn *KernelNode, x *quant.QTensor, acc *[]int32) (int, error) {
	a, dd, err := quant.DenseInt8(x, kn.WQ, kn.BiasQ)
	if err != nil {
		return 0, err
	}
	*acc = growAcc(*acc, len(a))
	copy(*acc, a)
	return dd[0], nil
}

func (naiveBackend) ConvBatch(kn *KernelNode, xs []*quant.QTensor, stride, pad int, _ *[]int8, acc *[]int32) (quant.ConvShape, error) {
	var sh quant.ConvShape
	blockLen := 0
	for b, x := range xs {
		a, dd, err := quant.Conv2DInt8(x, kn.WQ, kn.BiasQ, stride, pad)
		if err != nil {
			return sh, err
		}
		if b == 0 {
			sh = quant.ConvShape{OutC: dd[0], OutH: dd[1], OutW: dd[2]}
			blockLen = len(a)
			*acc = growAcc(*acc, blockLen*len(xs))
		} else if len(a) != blockLen {
			return sh, fmt.Errorf("dpu: batch image %d accumulator length %d != %d", b, len(a), blockLen)
		}
		copy((*acc)[b*blockLen:], a)
	}
	return sh, nil
}

func (naiveBackend) DenseBatch(kn *KernelNode, xs []*quant.QTensor, acc *[]int32) (int, error) {
	width := 0
	for b, x := range xs {
		a, dd, err := quant.DenseInt8(x, kn.WQ, kn.BiasQ)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			width = dd[0]
			*acc = growAcc(*acc, width*len(xs))
		} else if len(a) != width {
			return 0, fmt.Errorf("dpu: batch image %d accumulator length %d != %d", b, len(a), width)
		}
		copy((*acc)[b*width:], a)
	}
	return width, nil
}

// growAcc resizes an accumulator arena to n, reusing capacity.
func growAcc(a []int32, n int) []int32 {
	if cap(a) < n {
		return make([]int32, n)
	}
	return a[:n]
}
