package dpu

import (
	"math"
	"math/rand"
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/fabric"
)

func TestVariantTable(t *testing.T) {
	vs := Variants()
	if len(vs) != 7 {
		t.Fatalf("expected 7 DPU variants, got %d", len(vs))
	}
	prev := 0
	for _, v := range vs {
		if v.OpsPerCycle <= prev {
			t.Fatalf("variants must grow: %s", v.Arch)
		}
		prev = v.OpsPerCycle
		if err := v.Util.Validate(); err != nil {
			t.Fatalf("%s: %v", v.Arch, err)
		}
	}
	if _, err := VariantByName("B4096"); err != nil {
		t.Fatal(err)
	}
	if _, err := VariantByName("B9999"); err == nil {
		t.Fatal("unknown variant must fail")
	}
}

func TestB4096MatchesPaper(t *testing.T) {
	cfg := B4096()
	if cfg.OpsPerCycle != 4096 || cfg.DefaultFreqMHz != 333 || cfg.DSPFreqMHz != 666 {
		t.Fatalf("B4096 clocks/ops wrong: %+v", cfg)
	}
	// §3.1: 24.3% BRAM, 25.6% DSP per core; max 3 cores.
	if math.Abs(cfg.Util.BRAMs-0.243) > 1e-9 || math.Abs(cfg.Util.DSPs-0.256) > 1e-9 {
		t.Fatalf("B4096 utilization: %v", cfg.Util)
	}
	if got := cfg.MaxCores(); got != 3 {
		t.Fatalf("max B4096 cores = %d, want 3 (paper §3.1)", got)
	}
	// Peak: 4096 ops * 3 cores * 333 MHz ≈ 4092 GOPs.
	if peak := cfg.PeakGOPs(3, 333); math.Abs(peak-4092) > 5 {
		t.Fatalf("peak GOPs = %.0f", peak)
	}
}

func TestNewValidatesCapacity(t *testing.T) {
	brd := board.MustNew(board.SampleB)
	if _, err := New(brd, B4096(), 4); err == nil {
		t.Fatal("4 B4096 cores must not fit")
	}
	d, err := New(board.MustNew(board.SampleB), B4096(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cores() != 3 {
		t.Fatal("cores")
	}
	util := d.Board().Fabric().Utilization()
	if util.DSPs < 0.75 || util.BRAMs < 0.72 {
		t.Fatalf("3 cores should use ≈75%% of DSP/BRAM: %v", util)
	}
	if _, err := New(brd, B4096(), 0); err == nil {
		t.Fatal("zero cores must fail")
	}
}

func TestInjectMACFaultsStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	acc := make([]int32, 1000)
	n := injectMACFaults(acc, 1_000_000, 1e-4, rng)
	if n < 50 || n > 200 {
		t.Fatalf("expected ≈100 faults, got %d", n)
	}
	changed := 0
	for _, v := range acc {
		if v != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("faults must corrupt accumulators")
	}
	if injectMACFaults(acc, 1000, 0, rng) != 0 {
		t.Fatal("p=0 must inject nothing")
	}
}

func TestInstrKindString(t *testing.T) {
	if InstrConv.String() != "CONV" || InstrSave.String() != "SAVE" {
		t.Fatal("instr names")
	}
	if InstrKind(42).String() == "" {
		t.Fatal("unknown instr should format")
	}
}

// kernel GOPs model must reproduce the Table 2 GOPs staircase shape with
// the calibrated 58% compute fraction.
func TestImageTimeFrequencyScaling(t *testing.T) {
	k := &Kernel{
		ComputeFrac: 0.58,
		Program: Program{
			Instrs:       []Instr{{Kind: InstrConv, Ops: 2_000_000, Efficiency: 0.75}},
			OpsPerImage:  2_000_000,
			EffectiveOps: 2_000_000,
		},
	}
	base := k.GOPs(3, 333)
	cases := []struct {
		f    float64
		want float64 // paper Table 2 GOPs column
		tol  float64
	}{
		{300, 0.94, 0.01},
		{250, 0.83, 0.01},
		{200, 0.70, 0.03},
	}
	for _, c := range cases {
		got := k.GOPs(3, c.f) / base
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("GOPs(%v)/GOPs(333) = %.3f, want %.2f±%.2f (Table 2)", c.f, got, c.want, c.tol)
		}
	}
}

func TestSparsityReducesImageTime(t *testing.T) {
	mk := func(effOps int64) *Kernel {
		return &Kernel{
			ComputeFrac: 0.58,
			Program: Program{
				Instrs:       []Instr{{Kind: InstrConv, Ops: 2_000_000, Efficiency: 0.75}},
				OpsPerImage:  2_000_000,
				EffectiveOps: effOps,
			},
		}
	}
	dense := mk(2_000_000)
	sparse := mk(1_400_000) // 50% sparsity * 0.6 skip efficiency
	if sparse.ImageTimeS(333) >= dense.ImageTimeS(333) {
		t.Fatal("sparse kernel must be faster")
	}
	if sparse.GOPs(3, 333) <= dense.GOPs(3, 333) {
		t.Fatal("sparse kernel must have higher dense-op throughput")
	}
}

func TestSampleFaultsViaFabricIntegration(t *testing.T) {
	// Smoke-check the fabric hook the executor depends on.
	brd := board.MustNew(board.SampleB)
	cond := fabric.Conditions{VCCINTmV: 550, VCCBRAMmV: 850, TempC: 34, FreqMHz: 333}
	if p := brd.Fabric().MACFaultProb(cond); p <= 0 {
		t.Fatal("expected faults at 550 mV")
	}
}
