package dpu

import (
	"math/rand"

	"fpgauv/internal/ecc"
	"fpgauv/internal/fabric"
	"fpgauv/internal/quant"
)

// This file is the SECDED-protected form of the executor's BRAM
// weight-fault injection. Where the legacy path flips independent bits
// of the weight image, the protected path samples fault events per
// 64-bit BRAM word (the ECC granule: 8 consecutive int8 codes), splits
// them by multiplicity with the fabric's per-word model, and routes each
// faulted word through the real SECDED codec: single-bit words come back
// corrected (the consumer sees the original data), double-bit words are
// flagged uncorrectable (corrupted data, visible flag), and ≥3-bit words
// either alias to a silent miscorrection or are detected, exactly as the
// decoder resolves them. Observable corruption is written in place and
// recorded byte-wise so the per-layer / per-batch restore can undo it.

// applyProtectedFaults corrupts one weight tensor through the SECDED
// policy. record is called once per changed byte with its
// pre-corruption value, in write order; undoing the writes in reverse
// record order restores the tensor bit-exactly even when two events hit
// the same word. Returns the raw flipped-bit count (the physical fault
// rate, identical in expectation to the unprotected path) and the
// outcome split.
func applyProtectedFaults(prot *ecc.Protection, w *quant.QTensor, pBit float64, rng *rand.Rand, record func(idx int32, old int8)) (raw int64, counts ecc.Counts) {
	if pBit <= 0 || len(w.Data) == 0 {
		return 0, counts
	}
	words := (len(w.Data) + 7) / 8
	bitsPerWord := 8 * w.Bits
	if bitsPerWord > ecc.WordBits {
		bitsPerWord = ecc.WordBits
	}
	wf := fabric.SampleWordFaults(rng, int64(words), bitsPerWord, pBit)

	apply := func(events int64, flips int) {
		var chosen [3]int
		for e := int64(0); e < events; e++ {
			base := rng.Intn(words) * 8
			nb := len(w.Data) - base
			if nb > 8 {
				nb = 8
			}
			usable := nb * w.Bits
			m := flips
			if m > usable {
				m = usable
			}
			orig := ecc.PackWord(w.Data, base)
			faulty := orig
			for f := 0; f < m; f++ {
				for {
					pos := rng.Intn(usable)
					dup := false
					for _, c := range chosen[:f] {
						if c == pos {
							dup = true
							break
						}
					}
					if !dup {
						chosen[f] = pos
						break
					}
				}
				// Flat position j*Bits+b is bit b of code byte j: flips
				// stay inside the quantized bit width, like the legacy
				// path.
				faulty ^= 1 << uint(chosen[f]/w.Bits*8+chosen[f]%w.Bits)
			}
			raw += int64(m)
			final, outcome := prot.Process(orig, faulty)
			switch outcome {
			case ecc.OutcomeCorrected:
				counts.Corrected++
			case ecc.OutcomeDetected:
				counts.Detected++
			case ecc.OutcomeSilent:
				counts.Silent++
			}
			if final == orig {
				continue
			}
			for j := 0; j < nb; j++ {
				nv := int8(uint8(final >> uint(8*j)))
				if w.Data[base+j] != nv {
					record(int32(base+j), w.Data[base+j])
					w.Data[base+j] = nv
				}
			}
		}
	}
	apply(wf.Singles, 1)
	apply(wf.Doubles, 2)
	apply(wf.Multis, 3)
	return raw, counts
}

// flipWeightsECC is the protected single-image form of flipWeights: it
// corrupts one layer's weights through the SECDED policy, records the
// outcome split on the Result, and stages byte-restore records in the
// Scratch for restoreWeights.
func (d *DPU) flipWeightsECC(s *Scratch, res *Result, w *quant.QTensor, pBit float64, rng *rand.Rand) int64 {
	s.eccIdx = s.eccIdx[:0]
	s.eccOld = s.eccOld[:0]
	raw, counts := applyProtectedFaults(d.prot, w, pBit, rng, func(idx int32, old int8) {
		s.eccIdx = append(s.eccIdx, idx)
		s.eccOld = append(s.eccOld, old)
	})
	res.ECC.Add(counts)
	return raw
}

// flipBatchWeightsECC is the protected form of flipBatchWeights: one
// persistent corruption pass over every weight layer, in node order,
// recorded on the arena for restoreBatchWeights.
func (d *DPU) flipBatchWeightsECC(ba *batchArena, k *Kernel, pBit float64, rng *rand.Rand) (int64, ecc.Counts) {
	ba.eccFlips = ba.eccFlips[:0]
	var total int64
	var counts ecc.Counts
	for i := range k.Nodes {
		w := d.bramImage(&k.Nodes[i])
		if w == nil {
			continue
		}
		raw, c := applyProtectedFaults(d.prot, w, pBit, rng, func(idx int32, old int8) {
			ba.eccFlips = append(ba.eccFlips, byteRestore{w: w, idx: idx, old: old})
		})
		total += raw
		counts.Add(c)
	}
	return total, counts
}
