package dpu

import (
	"fmt"

	"fpgauv/internal/board"
	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
)

// InstrKind classifies DPU instructions.
type InstrKind int

// Instruction kinds (mirroring the DPU's coarse-grained ISA).
const (
	InstrLoad InstrKind = iota
	InstrConv
	InstrFC
	InstrPool
	InstrAct
	InstrEltwise
	InstrConcat
	InstrSave
)

// String implements fmt.Stringer.
func (k InstrKind) String() string {
	switch k {
	case InstrLoad:
		return "LOAD"
	case InstrConv:
		return "CONV"
	case InstrFC:
		return "FC"
	case InstrPool:
		return "POOL"
	case InstrAct:
		return "ACT"
	case InstrEltwise:
		return "ELTW"
	case InstrConcat:
		return "CONCAT"
	case InstrSave:
		return "SAVE"
	default:
		return fmt.Sprintf("INSTR(%d)", int(k))
	}
}

// Instr is one coarse-grained DPU instruction with its cost metadata.
type Instr struct {
	Kind  InstrKind
	Node  nn.NodeID
	Label string
	// Ops is 2*MACs for compute instructions.
	Ops int64
	// WeightBytes and ActBytes are the DDR traffic charged to the
	// instruction.
	WeightBytes int64
	ActBytes    int64
	// Efficiency is the MAC-array utilization for this instruction
	// (conv tiles map well; FC layers underuse the array).
	Efficiency float64
}

// Program is a compiled instruction sequence plus per-image totals.
type Program struct {
	Instrs []Instr
	// OpsPerImage is total operations (2*MACs, dense).
	OpsPerImage int64
	// EffectiveOps accounts for pruning (sparse-skipped MACs removed).
	EffectiveOps int64
	// WeightBytes and ActBytes are per-image DDR totals.
	WeightBytes int64
	ActBytes    int64
}

// Kernel is a compiled, quantized, deployable network — the output of the
// DNNDK compiler and the unit the runtime loads onto the DPU.
type Kernel struct {
	// Name is the benchmark name.
	Name string
	// Graph is the (possibly BN-folded, possibly pruned) topology.
	Graph *nn.Graph
	// Bits is the quantization precision (8..2).
	Bits int
	// Classes is the classifier width.
	Classes int
	// InScale is the calibrated input quantization scale.
	InScale float32
	// Nodes is per-graph-node compiled state, indexed by nn.NodeID.
	Nodes []KernelNode
	// Program is the instruction stream with cost metadata.
	Program Program
	// Workload is what the board's power/fault models need while this
	// kernel runs.
	Workload board.Workload
	// ComputeFrac is the compute-bound time share at the default clock
	// (calibrated per benchmark; see DESIGN.md).
	ComputeFrac float64
	// Sparsity is the pruned-away weight fraction (0 = dense).
	Sparsity float64
	// VulnScale amplifies fault counts for pruned kernels (see
	// prune.VulnerabilityScale).
	VulnScale float64
	// Backend is the compute backend this kernel deploys on
	// (BackendDense or BackendSparse; "" means dense). Resolved at
	// compile time — dnndk's auto mode picks sparse when the realized
	// block sparsity clears the skip threshold.
	Backend string
}

// BackendName returns the kernel's effective compute backend name.
func (k *Kernel) BackendName() string {
	if k.Backend == "" {
		return BackendDense
	}
	return k.Backend
}

// KernelNode is the compiled form of one graph node.
type KernelNode struct {
	// WQ/BiasQ are set for conv and FC nodes.
	WQ    *quant.QTensor
	BiasQ []int32
	// SW is the block-sparse packed weight image, set on every conv/FC
	// node of a sparse-backend kernel. When set it — not WQ — is the
	// BRAM-resident image that fault injection corrupts and the ECC
	// scrubber protects; WQ stays as the host-side (DDR staging) dense
	// copy the naive oracle and recompilation read.
	SW *quant.SparseWeights
	// OutScale is the calibrated activation scale of this node's
	// output; AccScale is the int32 accumulator scale (inScale*wScale).
	OutScale float32
	AccScale float32
	// MACs is the dense multiply-accumulate count of this node.
	MACs int64
}

// Validate checks internal consistency of a compiled kernel.
func (k *Kernel) Validate() error {
	if k.Graph == nil {
		return fmt.Errorf("dpu: kernel %q has no graph", k.Name)
	}
	if len(k.Nodes) != len(k.Graph.Nodes()) {
		return fmt.Errorf("dpu: kernel %q has %d node records for %d graph nodes",
			k.Name, len(k.Nodes), len(k.Graph.Nodes()))
	}
	if k.Bits < quant.MinBits || k.Bits > quant.MaxBits {
		return fmt.Errorf("dpu: kernel %q precision INT%d unsupported", k.Name, k.Bits)
	}
	if k.InScale <= 0 {
		return fmt.Errorf("dpu: kernel %q input scale %g", k.Name, k.InScale)
	}
	if k.ComputeFrac <= 0 || k.ComputeFrac > 1 {
		return fmt.Errorf("dpu: kernel %q compute fraction %g", k.Name, k.ComputeFrac)
	}
	switch k.Backend {
	case "", BackendDense, BackendSparse:
	default:
		return fmt.Errorf("dpu: kernel %q backend %q unsupported", k.Name, k.Backend)
	}
	sparse := k.Backend == BackendSparse
	for i, n := range k.Graph.Nodes() {
		kn := k.Nodes[i]
		switch n.Op.(type) {
		case *nn.Conv2D, *nn.Dense:
			if kn.WQ == nil || kn.BiasQ == nil {
				return fmt.Errorf("dpu: kernel %q node %q missing quantized weights", k.Name, n.Label)
			}
			if kn.AccScale <= 0 || kn.OutScale <= 0 {
				return fmt.Errorf("dpu: kernel %q node %q has invalid scales", k.Name, n.Label)
			}
			if sparse && kn.SW == nil {
				return fmt.Errorf("dpu: kernel %q node %q missing packed sparse weights", k.Name, n.Label)
			}
			if !sparse && kn.SW != nil {
				return fmt.Errorf("dpu: kernel %q node %q has packed weights on backend %q", k.Name, n.Label, k.BackendName())
			}
		}
	}
	return nil
}

// ImageTimeS returns the modeled per-image execution time on one core at
// the given DPU clock.
//
// Compute time scales inversely with the clock; DDR-bound time does not.
// The split at the default clock is the calibrated ComputeFrac — this is
// exactly the model that reproduces the paper's Table 2 GOPs column
// (0.94/0.83/0.70 at 300/250/200 MHz ⇒ ≈58% compute-bound at 333 MHz).
func (k *Kernel) ImageTimeS(freqMHz float64) float64 {
	if freqMHz <= 0 {
		freqMHz = 333
	}
	cfg := B4096()
	eff := k.arrayEfficiency()
	opsEff := float64(k.Program.EffectiveOps)
	tcDefault := opsEff / (float64(cfg.OpsPerCycle) * eff * cfg.DefaultFreqMHz * 1e6)
	tc := tcDefault * (cfg.DefaultFreqMHz / freqMHz)
	tm := tcDefault * (1 - k.ComputeFrac) / k.ComputeFrac
	return tc + tm
}

// arrayEfficiency is the ops-weighted MAC-array efficiency of the program.
func (k *Kernel) arrayEfficiency() float64 {
	var num, den float64
	for _, in := range k.Program.Instrs {
		if in.Ops > 0 {
			num += float64(in.Ops) * in.Efficiency
			den += float64(in.Ops)
		}
	}
	if den == 0 {
		return 0.7
	}
	return num / den
}

// GOPs returns the modeled throughput (giga-ops/s, dense-op convention)
// of nCores at the given clock.
func (k *Kernel) GOPs(nCores int, freqMHz float64) float64 {
	t := k.ImageTimeS(freqMHz)
	if t <= 0 {
		return 0
	}
	return float64(nCores) * float64(k.Program.OpsPerImage) / t / 1e9
}
