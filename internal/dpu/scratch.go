package dpu

import (
	"fmt"

	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// Scratch is a per-worker arena for the inference hot path: the im2col
// patch buffer, the int32 accumulator, the quantized-input staging tensor,
// and a per-node activation ring, all keyed by the compiled kernel's
// shapes. A Scratch is bound to one kernel at a time (re-binding on a
// kernel change is automatic) and must never be shared by concurrent
// runs: the fleet gives each board's worker its own arena and serializes
// every use under the member lock.
//
// Ownership/lifetime rules: every buffer a Scratch hands the executor —
// including the Result (and its Probs tensor) a RunWith call returns — is
// valid only until the next run on the same Scratch. Callers that need a
// result to outlive the next inference must copy it out (or use the
// nil-Scratch entry points, which allocate fresh).
type Scratch struct {
	kernel *Kernel
	// nodes caches the kernel's topological node list (Graph.Nodes
	// copies on every call; the hot path reads it read-only every image).
	nodes []nn.Node

	res Result // per-run result staging

	col []int8  // im2col patch matrix
	acc []int32 // int32 GEMM accumulators

	inQ  quant.QTensor    // quantized input staging
	acts []quant.QTensor  // per-node activation ring (backing storage)
	refs []*quant.QTensor // per-run activation table (reset every run)

	probs  *tensor.Tensor // host-side float staging (softmax output)
	logits *tensor.Tensor // host-side float staging (softmax input)
	final  *tensor.Tensor // the run's host-side output (set by softmax)

	concatIns []*quant.QTensor // reused Concat input table

	// fuseReLU[i] >= 0 marks a conv/FC node whose sole consumer is that
	// ReLU node: the epilogue applies ReLU in the GEMM output pass and the
	// ReLU node aliases the producer's activation.
	fuseReLU []nn.NodeID

	// flipIdx/flipBit record transient BRAM read flips applied in place to
	// the shared weight tensor, so they can be undone after the kernel
	// call instead of paying an O(weights) clone per faulted layer.
	flipIdx []int32
	flipBit []uint8
	// eccIdx/eccOld are the protected path's byte-restore records: the
	// SECDED decoder can rewrite a word arbitrarily (miscorrections flip
	// bits the fault never touched), so restore is by prior value, not
	// by XOR.
	eccIdx []int32
	eccOld []int8

	// batch is the batched-execution extension: per-image sub-arenas,
	// per-DPU-core stacked GEMM buffers, and batch-persistent BRAM flip
	// records. Nil until the first RunBatch on this Scratch; sized by the
	// largest batch it has run.
	batch *batchArena
}

// NewScratch returns an empty arena; it sizes itself to the first kernel
// it runs.
func NewScratch() *Scratch { return &Scratch{} }

// bind readies the arena for one run of kernel k, recompiling the
// per-node tables when the kernel changed since the last run.
func (s *Scratch) bind(k *Kernel) {
	if s.kernel != k {
		s.kernel = k
		s.nodes = k.Graph.Nodes()
		n := len(s.nodes)
		s.acts = make([]quant.QTensor, n)
		s.refs = make([]*quant.QTensor, n)
		s.fuseReLU = fuseTable(k)
	}
	for i := range s.refs {
		s.refs[i] = nil
	}
	s.final = nil
}

// act returns node i's reusable activation tensor.
func (s *Scratch) act(i int) *quant.QTensor { return &s.acts[i] }

// fetch resolves a node input: the quantized input image for InputID,
// otherwise the producing node's staged activation.
func (s *Scratch) fetch(id nn.NodeID) (*quant.QTensor, error) {
	if id == nn.InputID {
		return &s.inQ, nil
	}
	if int(id) >= len(s.refs) || s.refs[id] == nil {
		return nil, fmt.Errorf("dpu: missing activation for node %d", id)
	}
	return s.refs[id], nil
}

// floatStage returns a reusable float tensor of size n (dims [n]).
func floatStage(slot **tensor.Tensor, n int) *tensor.Tensor {
	if *slot == nil || (*slot).Size() != n {
		*slot = tensor.New(n)
	}
	return *slot
}

// fuseTable finds conv/FC nodes whose requantize epilogue can absorb a
// downstream ReLU: the ReLU must be the node's sole consumer and the node
// must not itself be the graph output. ReLU on an int8 code stream merely
// clamps negatives to zero, so relu(requantize(acc)) applied in the
// epilogue is bit-exact with the two-pass reference.
func fuseTable(k *Kernel) []nn.NodeID {
	nodes := k.Graph.Nodes()
	consumers := make([]int, len(nodes))
	sole := make([]nn.NodeID, len(nodes))
	for _, nd := range nodes {
		for _, id := range nd.Inputs {
			if id >= 0 {
				consumers[id]++
				sole[id] = nd.ID
			}
		}
	}
	fuse := make([]nn.NodeID, len(nodes))
	for i := range fuse {
		fuse[i] = -1
	}
	out := k.Graph.Output()
	for i, nd := range nodes {
		switch nd.Op.(type) {
		case *nn.Conv2D, *nn.Dense:
			if nd.ID == out || consumers[i] != 1 {
				continue
			}
			if _, ok := nodes[sole[i]].Op.(nn.ReLU); ok {
				fuse[i] = sole[i]
			}
		}
	}
	return fuse
}

// concatTable returns a reused slice for n concat inputs.
func (s *Scratch) concatTable(n int) []*quant.QTensor {
	if cap(s.concatIns) < n {
		s.concatIns = make([]*quant.QTensor, n)
	}
	return s.concatIns[:n]
}
