package dpu

import (
	"math/rand"
	"testing"

	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// seededRNGs builds one deterministic fault stream per image.
func seededRNGs(base int64, n int) []*rand.Rand {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(base + int64(i)*7919))
	}
	return rngs
}

// TestRunBatchMatchesSingleImageGrid is the batched/single equivalence
// gate: over a batch-size grid, a batch member fed fault stream S must be
// bit-exact (probs, prediction, fault statistics) with a single-image run
// fed the same stream S. MAC faults are live (pBRAM=0, the serving
// regime: VCCBRAM stays nominal), so the per-image injection path is
// exercised, not just the clean kernels.
func TestRunBatchMatchesSingleImageGrid(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	const pMAC = 2e-4
	for _, batch := range []int{1, 2, 3, 5, 8} {
		in := makeBatch(inputs, batch)
		for seed := int64(1); seed <= 4; seed++ {
			rngs := seededRNGs(seed*100, batch)
			got, err := d.runBatch(nil, k, in, rngs, pMAC, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i, img := range in {
				want, err := d.run(nil, k, img, rand.New(rand.NewSource(seed*100+int64(i)*7919)), pMAC, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Pred != want.Pred {
					t.Fatalf("batch=%d seed=%d image %d: pred %d != %d",
						batch, seed, i, got[i].Pred, want.Pred)
				}
				if got[i].MACFaults != want.MACFaults || got[i].BRAMFaults != want.BRAMFaults {
					t.Fatalf("batch=%d seed=%d image %d: faults MAC %d/%d BRAM %d/%d",
						batch, seed, i, got[i].MACFaults, want.MACFaults,
						got[i].BRAMFaults, want.BRAMFaults)
				}
				wp, gp := want.Probs.Data(), got[i].Probs.Data()
				for j := range wp {
					if wp[j] != gp[j] {
						t.Fatalf("batch=%d seed=%d image %d: probs[%d] %v != %v",
							batch, seed, i, j, gp[j], wp[j])
					}
				}
			}
		}
	}
}

// TestRunBatchCleanMatchesRunClean checks the batched fault-free path
// against per-image clean runs.
func TestRunBatchCleanMatchesRunClean(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	for _, batch := range []int{1, 3, 6} {
		in := makeBatch(inputs, batch)
		got, err := d.RunBatchClean(nil, k, in)
		if err != nil {
			t.Fatal(err)
		}
		for i, img := range in {
			want, err := d.RunClean(k, img)
			if err != nil {
				t.Fatal(err)
			}
			if got[i].Pred != want.Pred {
				t.Fatalf("batch=%d image %d: pred %d != %d", batch, i, got[i].Pred, want.Pred)
			}
			wp, gp := want.Probs.Data(), got[i].Probs.Data()
			for j := range wp {
				if wp[j] != gp[j] {
					t.Fatalf("batch=%d image %d: probs[%d] %v != %v", batch, i, j, gp[j], wp[j])
				}
			}
		}
	}
}

// TestRunBatchMatchesReferenceKernels drives the batched GEMM engine
// against the batched naive oracle under live MAC faults: identical
// predictions, probabilities and fault statistics.
func TestRunBatchMatchesReferenceKernels(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	const pMAC = 2e-4
	in := makeBatch(inputs, 5)
	rngs := seededRNGs(31, len(in))
	got, err := d.runBatch(nil, k, in, rngs, pMAC, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.SetReferenceKernels(true)
	defer d.SetReferenceKernels(false)
	rngs = seededRNGs(31, len(in))
	ref, err := d.runBatch(nil, k, in, rngs, pMAC, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if got[i].Pred != ref[i].Pred || got[i].MACFaults != ref[i].MACFaults {
			t.Fatalf("image %d: gemm %d/%d faults %d/%d",
				i, got[i].Pred, ref[i].Pred, got[i].MACFaults, ref[i].MACFaults)
		}
		rp, gp := ref[i].Probs.Data(), got[i].Probs.Data()
		for j := range rp {
			if rp[j] != gp[j] {
				t.Fatalf("image %d: probs[%d] %v != %v", i, j, gp[j], rp[j])
			}
		}
	}
}

// TestRunBatchPersistentBRAMFaults pins the batch-persistence semantics:
// BRAM flips are sampled once per batch, every image of the batch
// observes the same corrupted weights (identical inputs ⇒ identical
// outputs), each image's Result reports the batch's flip count, and the
// shared weight tensors are bit-identical after the batch.
func TestRunBatchPersistentBRAMFaults(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	before := make(map[int][]int8)
	for i, kn := range k.Nodes {
		if kn.WQ != nil {
			before[i] = append([]int8(nil), kn.WQ.Data...)
		}
	}

	// A batch of identical images: persistence means identical results.
	const batch = 4
	in := make([]*tensor.Tensor, batch)
	for i := range in {
		in[i] = inputs[0]
	}
	var sawFlips bool
	for seed := int64(1); seed <= 10; seed++ {
		rngs := seededRNGs(seed, batch)
		res, err := d.runBatch(nil, k, in, rngs, 0, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		flips := res[0].BRAMFaults
		if flips > 0 {
			sawFlips = true
		}
		for i := 1; i < batch; i++ {
			if res[i].BRAMFaults != flips {
				t.Fatalf("seed %d: image %d reports %d flips, image 0 reports %d",
					seed, i, res[i].BRAMFaults, flips)
			}
			if res[i].Pred != res[0].Pred {
				t.Fatalf("seed %d: identical images diverged under persistent flips: %d != %d",
					seed, res[i].Pred, res[0].Pred)
			}
			p0, pi := res[0].Probs.Data(), res[i].Probs.Data()
			for j := range p0 {
				if p0[j] != pi[j] {
					t.Fatalf("seed %d image %d: probs[%d] %v != %v", seed, i, j, pi[j], p0[j])
				}
			}
		}
	}
	if !sawFlips {
		t.Fatal("expected BRAM flips at p=1e-4")
	}
	for i, want := range before {
		got := k.Nodes[i].WQ.Data
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d weight[%d] not restored: %d != %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestRunBatchArenaReuseDeterministic reuses one Scratch across repeated
// batches of varying sizes and checks results stay bit-identical to
// fresh-arena batches: no state leaks between batch runs.
func TestRunBatchArenaReuseDeterministic(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	s := NewScratch()
	for round := 0; round < 3; round++ {
		for _, batch := range []int{3, 1, 6} {
			in := makeBatch(inputs, batch)
			rngs := seededRNGs(int64(round+1), batch)
			got, err := d.runBatch(s, k, in, rngs, 1e-4, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Snapshot before the fresh-arena comparison batch reuses
			// nothing (nil scratch detaches its results).
			preds := make([]int, batch)
			for i := range got {
				preds[i] = got[i].Pred
			}
			rngs = seededRNGs(int64(round+1), batch)
			want, err := d.runBatch(nil, k, in, rngs, 1e-4, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if preds[i] != want[i].Pred {
					t.Fatalf("round %d batch=%d image %d: pred %d != %d",
						round, batch, i, preds[i], want[i].Pred)
				}
			}
		}
	}
}

// TestRunBatchValidation pins the batched entry points' error contract.
func TestRunBatchValidation(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	if res, err := d.RunBatchClean(nil, k, nil); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v, want nil/nil", res, err)
	}
	if _, err := d.runBatch(nil, k, makeBatch(inputs, 3), seededRNGs(1, 2), 1e-4, 0); err == nil {
		t.Fatal("short rng slice accepted")
	}
	if _, err := d.runBatch(nil, k, makeBatch(inputs, 2), nil, 1e-4, 0); err == nil {
		t.Fatal("fault injection without streams accepted")
	}
}

// TestRunBatchDeterministicAcrossWorkerCounts pins the parallel-GEMM
// determinism contract: with live MAC and BRAM fault injection, a batch
// run at 1 pool worker and at N pool workers produces bit-identical
// results (predictions, probabilities, fault statistics). The lane
// split depends only on (batch, cores) and each image owns its fault
// stream, so the pool width must never be observable in the output.
func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	defer quant.SetWorkers(0)
	d, k, inputs := buildConvNetKernel(t)
	in := makeBatch(inputs, 6)
	type snap struct {
		pred       int
		macF, brmF int64
		probs      []float32
	}
	run := func(workers int, seed int64) []snap {
		quant.SetWorkers(workers)
		rngs := seededRNGs(seed, len(in))
		res, err := d.runBatch(nil, k, in, rngs, 2e-4, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]snap, len(res))
		for i, r := range res {
			out[i] = snap{
				pred:  r.Pred,
				macF:  r.MACFaults,
				brmF:  r.BRAMFaults,
				probs: append([]float32(nil), r.Probs.Data()...),
			}
		}
		return out
	}
	for seed := int64(1); seed <= 4; seed++ {
		want := run(1, seed)
		for _, w := range []int{2, 4, 16} {
			got := run(w, seed)
			for i := range want {
				if got[i].pred != want[i].pred || got[i].macF != want[i].macF || got[i].brmF != want[i].brmF {
					t.Fatalf("seed=%d workers=%d image %d: pred %d/%d MAC %d/%d BRAM %d/%d",
						seed, w, i, got[i].pred, want[i].pred,
						got[i].macF, want[i].macF, got[i].brmF, want[i].brmF)
				}
				for j := range want[i].probs {
					if got[i].probs[j] != want[i].probs[j] {
						t.Fatalf("seed=%d workers=%d image %d: probs[%d] %v != %v",
							seed, w, i, j, got[i].probs[j], want[i].probs[j])
					}
				}
			}
		}
	}
}

// makeBatch cycles the base inputs into a batch of size n.
func makeBatch(inputs []*tensor.Tensor, n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = inputs[i%len(inputs)]
	}
	return out
}
