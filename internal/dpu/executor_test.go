package dpu

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/nn"
	"fpgauv/internal/pmbus"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// buildExoticKernel hand-compiles a small graph covering the executor ops
// the model zoo does not exercise (Sigmoid, non-folded BatchNorm on the
// executor path) alongside the common ones.
func buildExoticKernel(t *testing.T) (*DPU, *Kernel, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	g := nn.NewGraph(nn.Shape{C: 2, H: 8, W: 8})
	g.Add("conv", nn.NewConv2D(rng, 2, 4, 3, 1, 1))
	bn := nn.NewBatchNorm(4)
	for i := range bn.Scale {
		bn.Scale[i] = 0.9
		bn.Shift[i] = 0.05
	}
	g.Add("bn", bn)
	g.Add("sigmoid", nn.Sigmoid{})
	g.Add("pool", &nn.Pool2D{Kind: nn.AvgPool, Kernel: 2, Stride: 2})
	g.Add("flatten", nn.Flatten{})
	g.Add("fc", nn.NewDense(rng, 4*4*4, 5))
	g.Add("softmax", nn.Softmax{})

	input := tensor.New(2, 8, 8)
	input.FillRandn(rand.New(rand.NewSource(7)), 1)

	// Hand-calibrate: one float pass provides activation ranges.
	outs, err := g.ForwardAll(input)
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{
		Name:        "exotic",
		Graph:       g,
		Bits:        8,
		Classes:     5,
		InScale:     quant.ScaleFor(input.MaxAbs(), 8),
		Nodes:       make([]KernelNode, len(g.Nodes())),
		ComputeFrac: 0.58,
		VulnScale:   1,
	}
	k.Workload = board.Workload{UtilScale: 1, ComputeFrac: 0.58}
	actScale := make([]float32, len(g.Nodes()))
	inScaleOf := func(n nn.Node) float32 {
		if n.Inputs[0] == nn.InputID {
			return k.InScale
		}
		return actScale[n.Inputs[0]]
	}
	for i, n := range g.Nodes() {
		kn := &k.Nodes[i]
		kn.MACs = n.Op.MACs(g.InputShapesOf(n))
		outScale := quant.ScaleFor(outs[i].MaxAbs(), 8)
		if outScale <= 0 {
			outScale = 1
		}
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			wq, err := quant.Quantize(op.Weights, 8)
			if err != nil {
				t.Fatal(err)
			}
			kn.WQ = wq
			kn.AccScale = inScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = outScale
		case *nn.Dense:
			wq, err := quant.Quantize(op.Weights, 8)
			if err != nil {
				t.Fatal(err)
			}
			kn.WQ = wq
			kn.AccScale = inScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = outScale
		case *nn.Pool2D:
			kn.OutScale = inScaleOf(n)
		case nn.Flatten:
			kn.OutScale = inScaleOf(n)
		default:
			kn.OutScale = outScale
		}
		actScale[i] = kn.OutScale
	}
	k.Program = Program{
		Instrs:       []Instr{{Kind: InstrConv, Ops: 2 * g.TotalMACs(), Efficiency: 0.75}},
		OpsPerImage:  2 * g.TotalMACs(),
		EffectiveOps: 2 * g.TotalMACs(),
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := New(board.MustNew(board.SampleB), B4096(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, k, input
}

func TestExecutorCoversSigmoidAndBatchNorm(t *testing.T) {
	d, k, input := buildExoticKernel(t)
	res, err := d.RunClean(k, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probs.Size() != 5 {
		t.Fatalf("output size %d", res.Probs.Size())
	}
	var sum float64
	for _, v := range res.Probs.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("softmax sum %f", sum)
	}
	// Quantized path should agree with the float reference argmax.
	ref, err := k.Graph.Forward(input)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ArgMax() != res.Pred {
		t.Fatalf("quantized argmax %d != float %d", res.Pred, ref.ArgMax())
	}
}

func TestExecutorDeterministicCleanRuns(t *testing.T) {
	d, k, input := buildExoticKernel(t)
	a, err := d.RunClean(k, input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.RunClean(k, input)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Probs.Data() {
		if a.Probs.Data()[i] != b.Probs.Data()[i] {
			t.Fatal("clean runs must be bit-identical")
		}
	}
}

func TestExecutorRunMatchesCleanInGuardband(t *testing.T) {
	d, k, input := buildExoticKernel(t)
	clean, err := d.RunClean(k, input)
	if err != nil {
		t.Fatal(err)
	}
	live, err := d.Run(k, input, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if live.Pred != clean.Pred || live.MACFaults != 0 {
		t.Fatal("at nominal voltage Run must equal RunClean with zero faults")
	}
}

func TestExecutorRefusesWhenHung(t *testing.T) {
	d, k, input := buildExoticKernel(t)
	brd := d.Board()
	// Crash via a legitimate undervolt below Vcrash.
	a := pmbus.NewAdapter(brd.Bus(), board.AddrVCCINT)
	if err := a.SetVoltageMV(520); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(k, input, rand.New(rand.NewSource(1))); !errors.Is(err, board.ErrHung) {
		t.Fatalf("expected ErrHung, got %v", err)
	}
	// RunClean is the host-side reference path and stays usable.
	if _, err := d.RunClean(k, input); err != nil {
		t.Fatalf("RunClean should not depend on board state: %v", err)
	}
}
