package dpu

import (
	"math/rand"
	"testing"

	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// sparsifyKernel converts a compiled dense kernel to the sparse backend
// in place: a deterministic fraction of whole SparseBlockRows×1 skip
// blocks is zeroed in every weight tensor (so the sparse engine has
// blocks to elide), then each tensor is packed into the block-sparse
// BRAM image. The dense WQ stays behind as the DDR staging copy the
// naive oracle reads, exactly like a real sparse deployment.
func sparsifyKernel(t *testing.T, k *Kernel, frac float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	for i := range k.Nodes {
		kn := &k.Nodes[i]
		if kn.WQ == nil {
			continue
		}
		m := kn.WQ.Dims[0]
		kk := len(kn.WQ.Data) / m
		for g := 0; g*quant.SparseBlockRows < m; g++ {
			i0 := g * quant.SparseBlockRows
			rows := min(quant.SparseBlockRows, m-i0)
			for p := 0; p < kk; p++ {
				if rng.Float64() >= frac {
					continue
				}
				for q := 0; q < rows; q++ {
					kn.WQ.Data[(i0+q)*kk+p] = 0
				}
			}
		}
		sw, err := quant.PackSparse(kn.WQ)
		if err != nil {
			t.Fatal(err)
		}
		kn.SW = sw
	}
	k.Backend = BackendSparse
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

// buildSparseConvNetKernel is buildConvNetKernel with the kernel block-
// pruned to ~50% and deployed on the sparse backend.
func buildSparseConvNetKernel(t *testing.T) (*DPU, *Kernel, []*tensor.Tensor) {
	t.Helper()
	d, k, inputs := buildConvNetKernel(t)
	sparsifyKernel(t, k, 0.5)
	return d, k, inputs
}

// TestRunBatchSparseDeterministicAcrossWorkerCounts extends the
// parallel-GEMM determinism contract to the sparse backend: with live
// MAC and BRAM fault injection (flips landing on the packed BRAM
// image), a batch run at 1 pool worker and at N pool workers produces
// bit-identical results. The sparse macro-tile partition splits only
// output coordinates — K is never split — so the pool width must never
// be observable in the output.
func TestRunBatchSparseDeterministicAcrossWorkerCounts(t *testing.T) {
	defer quant.SetWorkers(0)
	d, k, inputs := buildSparseConvNetKernel(t)
	in := makeBatch(inputs, 6)
	type snap struct {
		pred       int
		macF, brmF int64
		probs      []float32
	}
	run := func(workers int, seed int64) []snap {
		quant.SetWorkers(workers)
		rngs := seededRNGs(seed, len(in))
		res, err := d.runBatch(nil, k, in, rngs, 2e-4, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]snap, len(res))
		for i, r := range res {
			out[i] = snap{
				pred:  r.Pred,
				macF:  r.MACFaults,
				brmF:  r.BRAMFaults,
				probs: append([]float32(nil), r.Probs.Data()...),
			}
		}
		return out
	}
	var sawBRAM bool
	for seed := int64(1); seed <= 4; seed++ {
		want := run(1, seed)
		for i := range want {
			if want[i].brmF > 0 {
				sawBRAM = true
			}
		}
		for _, w := range []int{2, 4, 16} {
			got := run(w, seed)
			for i := range want {
				if got[i].pred != want[i].pred || got[i].macF != want[i].macF || got[i].brmF != want[i].brmF {
					t.Fatalf("seed=%d workers=%d image %d: pred %d/%d MAC %d/%d BRAM %d/%d",
						seed, w, i, got[i].pred, want[i].pred,
						got[i].macF, want[i].macF, got[i].brmF, want[i].brmF)
				}
				for j := range want[i].probs {
					if got[i].probs[j] != want[i].probs[j] {
						t.Fatalf("seed=%d workers=%d image %d: probs[%d] %v != %v",
							seed, w, i, j, got[i].probs[j], want[i].probs[j])
					}
				}
			}
		}
	}
	if !sawBRAM {
		t.Fatal("expected BRAM flips on the packed image at p=1e-4")
	}
}

// TestSparseBackendMatchesDenseAndNaive is the dpu-level bit-exactness
// gate: the same block-pruned weights run on the sparse backend, the
// dense backend and the naive oracle must agree exactly — predictions,
// probabilities and fault statistics — in both the single-image and
// batched paths, with live MAC faults (BRAM flips land on per-backend
// images, so the MAC stream is the shared fault regime).
func TestSparseBackendMatchesDenseAndNaive(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	// Block-prune the dense kernel first so all three backends see the
	// same logical weights; capture the dense results before packing.
	sparsifyKernel(t, k, 0.5)
	k.Backend = BackendDense
	swSaved := make([]*quant.SparseWeights, len(k.Nodes))
	for i := range k.Nodes {
		swSaved[i], k.Nodes[i].SW = k.Nodes[i].SW, nil
	}

	const pMAC = 2e-4
	in := makeBatch(inputs, 5)
	runAll := func() ([]Result, []Result) {
		batch, err := d.runBatch(nil, k, in, seededRNGs(77, len(in)), pMAC, 0)
		if err != nil {
			t.Fatal(err)
		}
		single := make([]Result, len(in))
		for i, img := range in {
			r, err := d.run(nil, k, img, rand.New(rand.NewSource(77+int64(i)*7919)), pMAC, 0)
			if err != nil {
				t.Fatal(err)
			}
			single[i] = *r
		}
		return batch, single
	}
	denseB, denseS := runAll()

	// Sparse backend on the packed images.
	k.Backend = BackendSparse
	for i := range k.Nodes {
		k.Nodes[i].SW = swSaved[i]
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	sparseB, sparseS := runAll()

	// Naive oracle (reads the dense WQ staging copy).
	d.SetReferenceKernels(true)
	naiveB, naiveS := runAll()
	d.SetReferenceKernels(false)

	check := func(name string, got, want []Result) {
		t.Helper()
		for i := range want {
			if got[i].Pred != want[i].Pred || got[i].MACFaults != want[i].MACFaults {
				t.Fatalf("%s image %d: pred %d/%d MAC faults %d/%d",
					name, i, got[i].Pred, want[i].Pred, got[i].MACFaults, want[i].MACFaults)
			}
			wp, gp := want[i].Probs.Data(), got[i].Probs.Data()
			for j := range wp {
				if wp[j] != gp[j] {
					t.Fatalf("%s image %d: probs[%d] %v != %v", name, i, j, gp[j], wp[j])
				}
			}
		}
	}
	check("sparse-vs-dense batch", sparseB, denseB)
	check("sparse-vs-dense single", sparseS, denseS)
	check("sparse-vs-naive batch", sparseB, naiveB)
	check("sparse-vs-naive single", sparseS, naiveS)
}

// TestSparsePackedImageIsSmaller pins the ECC economics of the sparse
// deployment: at 50% block sparsity the packed BRAM image is at most
// ~half the dense image, so the scrubber protects fewer words and the
// corrected-rate at a given VCCBRAM drops with it.
func TestSparsePackedImageIsSmaller(t *testing.T) {
	_, k, _ := buildSparseConvNetKernel(t)
	var dense, packed int
	for i := range k.Nodes {
		kn := &k.Nodes[i]
		if kn.WQ == nil {
			continue
		}
		dense += len(kn.WQ.Data)
		packed += len(kn.SW.Packed.Data)
	}
	if dense == 0 || packed == 0 {
		t.Fatal("kernel has no weights")
	}
	// The tiny test kernel's ragged row groups (output widths 6 and 5
	// round up to whole 4-row blocks) pad the packed image above the
	// ideal 0.5; real benchmark layers have multiple-of-4 widths.
	if ratio := float64(packed) / float64(dense); ratio > 0.7 {
		t.Fatalf("packed/dense = %.2f, want <= 0.7 at 50%% block sparsity", ratio)
	}
}
