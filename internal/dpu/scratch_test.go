package dpu

import (
	"math/rand"
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// buildConvNetKernel hand-compiles a conv→ReLU→pool→conv→ReLU→flatten→
// fc→ReLU→fc→softmax chain — the shape of the model-zoo benchmarks —
// so the GEMM lowering, the fused ReLU epilogue, and the flatten view
// are all on the executed path.
func buildConvNetKernel(t *testing.T) (*DPU, *Kernel, []*tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	g := nn.NewGraph(nn.Shape{C: 3, H: 12, W: 12})
	g.Add("conv1", nn.NewConv2D(rng, 3, 4, 3, 1, 1))
	g.Add("relu1", nn.ReLU{})
	g.Add("pool1", &nn.Pool2D{Kind: nn.MaxPool, Kernel: 2, Stride: 2})
	g.Add("conv2", nn.NewConv2D(rng, 4, 6, 3, 2, 0))
	g.Add("relu2", nn.ReLU{})
	g.Add("flatten", nn.Flatten{})
	g.Add("fc1", nn.NewDense(rng, 6*2*2, 8))
	g.Add("relu3", nn.ReLU{})
	g.Add("fc2", nn.NewDense(rng, 8, 5))
	g.Add("softmax", nn.Softmax{})

	inputs := make([]*tensor.Tensor, 3)
	for i := range inputs {
		inputs[i] = tensor.New(3, 12, 12)
		inputs[i].FillRandn(rand.New(rand.NewSource(int64(100+i))), 1)
	}

	outs, err := g.ForwardAll(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{
		Name:        "convnet",
		Graph:       g,
		Bits:        8,
		Classes:     5,
		InScale:     quant.ScaleFor(inputs[0].MaxAbs(), 8),
		Nodes:       make([]KernelNode, len(g.Nodes())),
		ComputeFrac: 0.58,
		VulnScale:   1,
	}
	k.Workload = board.Workload{UtilScale: 1, ComputeFrac: 0.58}
	actScale := make([]float32, len(g.Nodes()))
	inScaleOf := func(n nn.Node) float32 {
		if n.Inputs[0] == nn.InputID {
			return k.InScale
		}
		return actScale[n.Inputs[0]]
	}
	for i, n := range g.Nodes() {
		kn := &k.Nodes[i]
		kn.MACs = n.Op.MACs(g.InputShapesOf(n))
		outScale := quant.ScaleFor(outs[i].MaxAbs(), 8)
		if outScale <= 0 {
			outScale = 1
		}
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			wq, err := quant.Quantize(op.Weights, 8)
			if err != nil {
				t.Fatal(err)
			}
			kn.WQ = wq
			kn.AccScale = inScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = outScale
		case *nn.Dense:
			wq, err := quant.Quantize(op.Weights, 8)
			if err != nil {
				t.Fatal(err)
			}
			kn.WQ = wq
			kn.AccScale = inScaleOf(n) * wq.Scale
			kn.BiasQ = quant.QuantizeBias(op.Bias, kn.AccScale)
			kn.OutScale = outScale
		default:
			kn.OutScale = inScaleOf(n)
			if _, ok := n.Op.(nn.Softmax); ok {
				kn.OutScale = outScale
			}
		}
		actScale[i] = kn.OutScale
	}
	k.Program = Program{
		Instrs:       []Instr{{Kind: InstrConv, Ops: 2 * g.TotalMACs(), Efficiency: 0.75}},
		OpsPerImage:  2 * g.TotalMACs(),
		EffectiveOps: 2 * g.TotalMACs(),
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := New(board.MustNew(board.SampleB), B4096(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, k, inputs
}

// snapshotResult copies the arena-staged parts of a Result so it can be
// compared after later runs reuse the arena.
func snapshotResult(r *Result) *Result {
	return &Result{
		Probs:      r.Probs.Clone(),
		Pred:       r.Pred,
		MACFaults:  r.MACFaults,
		BRAMFaults: r.BRAMFaults,
	}
}

// TestGemmMatchesReferenceExecutorUnderFaults drives the full executor at
// forced MAC and BRAM fault probabilities and requires the GEMM engine to
// reproduce the reference path bit-for-bit: identical probabilities,
// predictions, and fault-injection statistics for identical seeds.
func TestGemmMatchesReferenceExecutorUnderFaults(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	const pMAC, pBRAM = 2e-4, 2e-5
	for seed := int64(1); seed <= 8; seed++ {
		for _, img := range inputs {
			d.SetReferenceKernels(true)
			ref, err := d.run(nil, k, img, rand.New(rand.NewSource(seed)), pMAC, pBRAM)
			if err != nil {
				t.Fatal(err)
			}
			d.SetReferenceKernels(false)
			got, err := d.run(nil, k, img, rand.New(rand.NewSource(seed)), pMAC, pBRAM)
			if err != nil {
				t.Fatal(err)
			}
			if got.Pred != ref.Pred {
				t.Fatalf("seed %d: pred %d != %d", seed, got.Pred, ref.Pred)
			}
			if got.MACFaults != ref.MACFaults || got.BRAMFaults != ref.BRAMFaults {
				t.Fatalf("seed %d: fault statistics diverge: MAC %d/%d BRAM %d/%d",
					seed, got.MACFaults, ref.MACFaults, got.BRAMFaults, ref.BRAMFaults)
			}
			rp, gp := ref.Probs.Data(), got.Probs.Data()
			for i := range rp {
				if rp[i] != gp[i] {
					t.Fatalf("seed %d: probs[%d] %v != %v", seed, i, gp[i], rp[i])
				}
			}
		}
	}
}

// TestFlipAndRestorePreservesWeights forces BRAM flips and checks the
// shared weight tensors are bit-identical after the run: the transient
// flips were undone without cloning.
func TestFlipAndRestorePreservesWeights(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	before := make(map[int][]int8)
	for i, kn := range k.Nodes {
		if kn.WQ != nil {
			before[i] = append([]int8(nil), kn.WQ.Data...)
		}
	}
	var faults int64
	for seed := int64(1); seed <= 20; seed++ {
		res, err := d.run(nil, k, inputs[0], rand.New(rand.NewSource(seed)), 0, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		faults += res.BRAMFaults
	}
	if faults == 0 {
		t.Fatal("expected BRAM flips at p=1e-4")
	}
	for i, want := range before {
		got := k.Nodes[i].WQ.Data
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d weight[%d] not restored: %d != %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestScratchReuseDeterministic interleaves different inputs through one
// arena and requires bit-identical results versus fresh-arena runs: no
// state leaks across requests.
func TestScratchReuseDeterministic(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	s := NewScratch()
	var shared []*Result
	for round := 0; round < 2; round++ {
		for _, img := range inputs {
			res, err := d.RunCleanWith(s, k, img)
			if err != nil {
				t.Fatal(err)
			}
			shared = append(shared, snapshotResult(res))
		}
	}
	i := 0
	for round := 0; round < 2; round++ {
		for _, img := range inputs {
			want, err := d.RunClean(k, img)
			if err != nil {
				t.Fatal(err)
			}
			got := shared[i]
			i++
			if got.Pred != want.Pred {
				t.Fatalf("run %d: pred %d != %d", i, got.Pred, want.Pred)
			}
			wp, gp := want.Probs.Data(), got.Probs.Data()
			for j := range wp {
				if wp[j] != gp[j] {
					t.Fatalf("run %d: probs[%d] %v != %v", i, j, gp[j], wp[j])
				}
			}
		}
	}
}

// TestScratchStructuralOptimizations pins the arena's structural claims:
// the conv/FC→ReLU pairs are fused, the ReLU activation aliases its
// producer, and flatten is a shared-data view of its input.
func TestScratchStructuralOptimizations(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	s := NewScratch()
	if _, err := d.RunCleanWith(s, k, inputs[0]); err != nil {
		t.Fatal(err)
	}
	// Node order per buildConvNetKernel:
	// 0 conv1, 1 relu1, 2 pool1, 3 conv2, 4 relu2, 5 flatten, 6 fc1,
	// 7 relu3, 8 fc2, 9 softmax.
	for _, pair := range [][2]int{{0, 1}, {3, 4}, {6, 7}} {
		if int(s.fuseReLU[pair[0]]) != pair[1] {
			t.Fatalf("node %d: ReLU %d not fused (got %d)", pair[0], pair[1], s.fuseReLU[pair[0]])
		}
		if s.refs[pair[0]] != s.refs[pair[1]] {
			t.Fatalf("fused ReLU %d must alias node %d's activation", pair[1], pair[0])
		}
	}
	if s.fuseReLU[8] != -1 {
		t.Fatal("fc2 feeds softmax: nothing to fuse")
	}
	// Flatten (5) must share relu2/conv2's (4) backing array.
	if &s.refs[5].Data[0] != &s.refs[4].Data[0] {
		t.Fatal("flatten must be a shared-data view, not a clone")
	}
	if len(s.refs[5].Dims) != 1 || s.refs[5].Dims[0] != len(s.refs[4].Data) {
		t.Fatalf("flatten dims wrong: %v", s.refs[5].Dims)
	}
}

// TestScratchRebindsAcrossKernels runs two kernels alternately through
// one arena; re-binding must keep results identical to dedicated arenas.
func TestScratchRebindsAcrossKernels(t *testing.T) {
	d1, k1, in1 := buildConvNetKernel(t)
	_, k2, in2 := buildExoticKernel(t)
	s := NewScratch()
	for i := 0; i < 2; i++ {
		a, err := d1.RunCleanWith(s, k1, in1[0])
		if err != nil {
			t.Fatal(err)
		}
		predA := a.Pred
		b, err := d1.RunCleanWith(s, k2, in2)
		if err != nil {
			t.Fatal(err)
		}
		predB := b.Pred
		wantA, err := d1.RunClean(k1, in1[0])
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := d1.RunClean(k2, in2)
		if err != nil {
			t.Fatal(err)
		}
		if predA != wantA.Pred || predB != wantB.Pred {
			t.Fatalf("rebind diverged: %d/%d vs %d/%d", predA, predB, wantA.Pred, wantB.Pred)
		}
	}
}
