// Package dpu models the Xilinx Deep-learning Processing Unit (DPU) soft
// core the paper maps its CNNs onto: the B-series architecture table, the
// compiled-kernel representation, a compute/memory performance model
// calibrated to the paper's Table 2, and the execution engine that runs
// quantized networks with voltage-dependent fault injection sourced from
// the fabric model.
package dpu

import (
	"fmt"

	"fpgauv/internal/fabric"
)

// Config describes one DPU core variant.
type Config struct {
	// Arch is the variant name (e.g. "B4096").
	Arch string
	// OpsPerCycle is the peak operations per DPU cycle (2 ops per MAC,
	// DSPs double-pumped at 2x the DPU clock).
	OpsPerCycle int
	// DefaultFreqMHz and DSPFreqMHz are the shipped clock settings.
	DefaultFreqMHz float64
	DSPFreqMHz     float64
	// Util is the per-core fabric utilization (paper §3.1 for B4096:
	// 24.3% BRAM, 25.6% DSP).
	Util fabric.Utilization
	// GemmWorkers tunes the process-wide GEMM tile worker pool that the
	// compute engine's macro-tiles and the batch executor's per-core
	// lanes share (quant.SetWorkers): > 0 pins the pool width, 0 leaves
	// the current setting (GOMAXPROCS-aware automatic by default)
	// untouched. The pool is one per process, so the last DPU programmed
	// with a non-zero value wins.
	GemmWorkers int
	// Backend selects the compute backend kernels deploy on ("" or
	// BackendAuto: per-kernel selection by realized block sparsity at
	// quantization time; BackendDense / BackendSparse force one). The
	// DPU itself executes whatever backend each kernel was compiled
	// for — this field is deployment plumbing, threaded through the
	// fleet to the DNNDK compile step.
	Backend string
}

// B4096 returns the largest DPU variant, the paper's configuration.
func B4096() Config {
	return Config{
		Arch:           "B4096",
		OpsPerCycle:    4096,
		DefaultFreqMHz: 333,
		DSPFreqMHz:     666,
		Util:           fabric.Utilization{LUTs: 0.181, DSPs: 0.256, BRAMs: 0.243},
	}
}

// Variants returns the DPU architecture table (PG338) from smallest to
// largest; utilization scales roughly with peak ops.
func Variants() []Config {
	mk := func(arch string, ops int, lut, dsp, bram float64) Config {
		return Config{
			Arch:           arch,
			OpsPerCycle:    ops,
			DefaultFreqMHz: 333,
			DSPFreqMHz:     666,
			Util:           fabric.Utilization{LUTs: lut, DSPs: dsp, BRAMs: bram},
		}
	}
	return []Config{
		mk("B512", 512, 0.045, 0.038, 0.041),
		mk("B800", 800, 0.058, 0.055, 0.055),
		mk("B1024", 1024, 0.072, 0.070, 0.068),
		mk("B1600", 1600, 0.098, 0.106, 0.099),
		mk("B2304", 2304, 0.124, 0.152, 0.141),
		mk("B3136", 3136, 0.151, 0.203, 0.190),
		B4096(),
	}
}

// VariantByName looks up a DPU variant.
func VariantByName(arch string) (Config, error) {
	for _, v := range Variants() {
		if v.Arch == arch {
			return v, nil
		}
	}
	return Config{}, fmt.Errorf("dpu: unknown variant %q", arch)
}

// MaxCores returns how many cores of this variant fit the fabric (the
// paper: "a maximum of three B4096 DPUs can be used").
func (c Config) MaxCores() int {
	n := 0
	total := fabric.Utilization{}
	for {
		next := total.Add(c.Util)
		if next.Validate() != nil {
			return n
		}
		total = next
		n++
	}
}

// PeakGOPs returns the peak throughput of n cores at the given clock.
func (c Config) PeakGOPs(nCores int, freqMHz float64) float64 {
	return float64(c.OpsPerCycle) * float64(nCores) * freqMHz * 1e6 / 1e9
}
