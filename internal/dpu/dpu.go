package dpu

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fpgauv/internal/board"
	"fpgauv/internal/ecc"
	"fpgauv/internal/fabric"
	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// DPU is a set of DPU cores programmed into a board's fabric.
type DPU struct {
	brd    *board.ZCU102
	cfg    Config
	nCores int
	// refKernels forces the naive direct conv/FC kernels instead of the
	// im2col+GEMM lowering — the reference oracle the equivalence tests
	// and benchmarks compare against.
	refKernels bool
	// prot is the BRAM SECDED policy. When enabled, weight-read faults
	// are sampled per 64-bit word and routed through the codec; when nil
	// or disabled the legacy unprotected per-bit flip path runs,
	// bit-exactly as before.
	prot *ecc.Protection
}

// New programs nCores instances of the given variant into the board's
// fabric, validating resource capacity.
func New(brd *board.ZCU102, cfg Config, nCores int) (*DPU, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("dpu: need at least one core")
	}
	total := fabric.Utilization{}
	for i := 0; i < nCores; i++ {
		total = total.Add(cfg.Util)
	}
	if err := brd.Fabric().Configure(total); err != nil {
		return nil, fmt.Errorf("dpu: %d x %s does not fit: %w", nCores, cfg.Arch, err)
	}
	if cfg.GemmWorkers > 0 {
		quant.SetWorkers(cfg.GemmWorkers)
	}
	return &DPU{brd: brd, cfg: cfg, nCores: nCores}, nil
}

// Board returns the board the DPU is programmed on.
func (d *DPU) Board() *board.ZCU102 { return d.brd }

// Config returns the core variant.
func (d *DPU) Config() Config { return d.cfg }

// Cores returns the instantiated core count.
func (d *DPU) Cores() int { return d.nCores }

// SetReferenceKernels toggles the naive direct conv/FC kernels in place of
// the im2col+GEMM compute engine. The two paths are bit-exact (including
// fault-injection statistics); the naive path exists as the oracle for
// equivalence tests and as the baseline for the kernel benchmarks.
func (d *DPU) SetReferenceKernels(on bool) { d.refKernels = on }

// SetProtection installs (or removes, with nil) the BRAM SECDED policy.
// Toggling an installed policy at runtime goes through
// Protection.SetEnabled; the executor re-checks it on every pass.
func (d *DPU) SetProtection(p *ecc.Protection) { d.prot = p }

// Protection returns the installed BRAM SECDED policy (nil when none).
func (d *DPU) Protection() *ecc.Protection { return d.prot }

// Result is the outcome of one inference on the DPU. Results of
// RunWith/RunCleanWith calls (the Result itself and its Probs tensor) are
// staged in the Scratch and only valid until the next run on it.
type Result struct {
	// Probs is the host-side softmax output.
	Probs *tensor.Tensor
	// Pred is the argmax class.
	Pred int
	// MACFaults and BRAMFaults count injected corruption events. With
	// SECDED protection enabled, BRAMFaults counts raw flipped bits
	// exactly like the unprotected path — the physical fault rate is the
	// same either way; ECC only changes what the consumer observes.
	MACFaults  int64
	BRAMFaults int64
	// ECC splits the pass's faulted BRAM words by SECDED outcome
	// (all-zero when protection is disabled).
	ECC ecc.Counts
	// ExecNS is the wall-clock device time of the pass that produced
	// this result, in nanoseconds; a batched pass stamps every image of
	// the micro-batch with the batch's shared pass time. Observability
	// layers use it to split pure execute time from lock/queue overhead
	// around the call. Zero on the clean reference paths.
	ExecNS int64
}

// Run executes one image through a compiled kernel at the board's present
// electrical conditions, injecting timing faults per the fabric model.
// It returns board.ErrHung if the board is (or becomes) crashed.
//
// A Kernel must not be executed by two concurrent Run/RunBatch calls:
// BRAM fault injection applies flips to the shared weight tensors
// (restored before the call returns), so concurrent calls on the same
// kernel would observe each other's flips. Every execution path in this
// module already serializes per kernel (the fleet's member lock; the
// single-goroutine campaigns and runtimes, whose reference cache has the
// same confinement rule). Within one RunBatch call the per-core lanes
// do share the kernel across goroutines — that is safe because the
// batch's flips are applied before the lanes start and the weights are
// immutable while they run.
func (d *DPU) Run(k *Kernel, img *tensor.Tensor, rng *rand.Rand) (*Result, error) {
	return d.RunWith(nil, k, img, rng)
}

// RunWith is Run with a caller-owned Scratch arena: steady-state repeat
// inferences through the same arena perform near-zero heap allocations.
// A nil Scratch allocates a transient arena. See Scratch for the
// ownership and lifetime rules.
func (d *DPU) RunWith(s *Scratch, k *Kernel, img *tensor.Tensor, rng *rand.Rand) (*Result, error) {
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	cond := d.brd.Conditions()
	cond.Stress = k.Workload.Stress
	fab := d.brd.Fabric()
	pMAC := fab.MACFaultProb(cond) * k.VulnScale
	if pMAC > 0.5 {
		pMAC = 0.5
	}
	pBRAM := fab.BRAMBitFaultProb(cond)
	start := time.Now()
	res, err := d.run(s, k, img, rng, pMAC, pBRAM)
	if err != nil {
		return nil, err
	}
	// A fault storm near Vcrash can also hang the board mid-task.
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	res.ExecNS = time.Since(start).Nanoseconds()
	return res, nil
}

// RunClean executes one image with fault injection disabled and without
// consulting the board's electrical state — the fault-free reference path
// used to plant ground-truth labels.
func (d *DPU) RunClean(k *Kernel, img *tensor.Tensor) (*Result, error) {
	return d.run(nil, k, img, nil, 0, 0)
}

// RunCleanWith is RunClean through a caller-owned Scratch arena.
func (d *DPU) RunCleanWith(s *Scratch, k *Kernel, img *tensor.Tensor) (*Result, error) {
	return d.run(s, k, img, nil, 0, 0)
}

// run is the shared execution core. rng may be nil when both fault
// probabilities are zero. A nil Scratch gets a transient arena and the
// result is detached from it, so nil-Scratch callers keep fresh-result
// semantics without retaining the arena's buffers through Result.
func (d *DPU) run(s *Scratch, k *Kernel, img *tensor.Tensor, rng *rand.Rand, pMAC, pBRAM float64) (*Result, error) {
	if s == nil {
		s = NewScratch()
		res, err := d.runWith(s, k, img, rng, pMAC, pBRAM)
		if err != nil {
			return nil, err
		}
		out := *res
		if out.Probs == s.probs {
			out.Probs = out.Probs.Clone()
		}
		return &out, nil
	}
	return d.runWith(s, k, img, rng, pMAC, pBRAM)
}

// runWith is run for an always-present arena.
func (d *DPU) runWith(s *Scratch, k *Kernel, img *tensor.Tensor, rng *rand.Rand, pMAC, pBRAM float64) (*Result, error) {
	s.bind(k)
	res := &s.res
	*res = Result{}

	// Quantize the input once with the calibrated scale.
	if err := quant.QuantizeWithScaleInto(&s.inQ, img, k.InScale, k.Bits); err != nil {
		return nil, fmt.Errorf("dpu: input quantization: %w", err)
	}

	for i, n := range s.nodes {
		kn := &k.Nodes[i]
		switch n.Op.(type) {
		case *nn.Conv2D, *nn.Dense:
			x, err := s.fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			if err := d.runWeightLayer(s, res, i, n, kn, k, x, pMAC, pBRAM, rng); err != nil {
				return nil, err
			}
		default:
			if err := d.runHostNode(s, i, n, kn, k); err != nil {
				return nil, err
			}
		}
	}
	if err := finishRun(s, k, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runHostNode executes one non-weight node (pooling, activations, host
// ops) into the arena's activation for node i. It is shared verbatim by
// the single-image executor and the batched executor's per-image loops,
// so the two paths cannot drift apart.
func (d *DPU) runHostNode(s *Scratch, i int, n nn.Node, kn *KernelNode, k *Kernel) error {
	acts := s.refs
	switch op := n.Op.(type) {
	case *nn.Pool2D:
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		out := s.act(i)
		if op.Kind == nn.MaxPool {
			err = quant.MaxPoolQInto(out, x, op.Kernel, op.Stride, op.Global)
		} else {
			err = quant.AvgPoolQInto(out, x, op.Kernel, op.Stride, op.Global)
		}
		if err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		acts[i] = out
	case nn.ReLU:
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		if src := n.Inputs[0]; src >= 0 && s.fuseReLU[src] == n.ID {
			// Already applied in the producer's GEMM epilogue.
			acts[i] = x
			return nil
		}
		out := s.act(i)
		quant.ReLUQInto(out, x)
		acts[i] = out
	case nn.Sigmoid:
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		out := s.act(i)
		if err := sigmoidQInto(out, s, x, kn.OutScale, k.Bits); err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		acts[i] = out
	case *nn.LRN:
		// Host-side op (like softmax): dequantize, normalize,
		// requantize at the calibrated scale.
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		f, err := op.Forward([]*tensor.Tensor{x.Dequantize()})
		if err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		out := s.act(i)
		if err := quant.QuantizeWithScaleInto(out, f, kn.OutScale, k.Bits); err != nil {
			return err
		}
		acts[i] = out
	case *nn.BatchNorm:
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		out := s.act(i)
		quant.BatchNormQInto(out, x, op.Scale, op.Shift, kn.OutScale, k.Bits)
		acts[i] = out
	case nn.Flatten:
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		// Shared-data reshape view: flattening only rewrites Dims.
		out := s.act(i)
		out.Data = x.Data
		out.Dims = append(out.Dims[:0], len(x.Data))
		out.Scale = x.Scale
		out.Bits = x.Bits
		acts[i] = out
	case nn.Add:
		a, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		out := s.act(i)
		sum := a
		for _, id := range n.Inputs[1:] {
			b, err := s.fetch(id)
			if err != nil {
				return err
			}
			if err := quant.AddQInto(out, sum, b, kn.OutScale, k.Bits); err != nil {
				return fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			sum = out
		}
		acts[i] = sum
	case nn.Concat:
		ins := s.concatTable(len(n.Inputs))
		for j, id := range n.Inputs {
			x, err := s.fetch(id)
			if err != nil {
				return err
			}
			ins[j] = x
		}
		out := s.act(i)
		if err := quant.ConcatQInto(out, ins, kn.OutScale, k.Bits); err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		acts[i] = out
	case nn.Softmax:
		// DNNDK computes softmax on the ARM host, in float.
		x, err := s.fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		probs := floatStage(&s.probs, x.Size())
		x.DequantizeInto(probs)
		if err := nn.SoftmaxInPlace(probs.Data()); err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		s.final = probs
		// Keep a quantized copy in case the graph continues.
		out := s.act(i)
		if err := quant.QuantizeWithScaleInto(out, probs, kn.OutScale, k.Bits); err != nil {
			return err
		}
		out.Dims = append(out.Dims[:0], x.Dims...)
		acts[i] = out
	default:
		return fmt.Errorf("dpu: node %q: unsupported op %T", n.Label, n.Op)
	}
	return nil
}

// finishRun resolves the run's host-side output (the softmax staging
// tensor, or the dequantized graph output for softmax-less graphs) into
// the staged Result.
func finishRun(s *Scratch, k *Kernel, res *Result) error {
	final := s.final
	if final == nil {
		out, err := s.fetch(k.Graph.Output())
		if err != nil {
			return err
		}
		final = out.Dequantize()
	}
	res.Probs = final
	res.Pred = final.ArgMax()
	return nil
}

// runWeightLayer executes one conv/FC node: transient BRAM flips on the
// node's BRAM-resident weight image, the kernel's compute backend
// (dense GEMM, sparse skip-zero GEMM, or the naive oracle when
// reference kernels are forced), MAC-fault injection on the int32
// accumulators, and the fused requantize(+ReLU) epilogue into the
// node's arena activation. The epilogue is shared by every backend/op
// combination so the oracle and engine paths cannot drift apart.
func (d *DPU) runWeightLayer(s *Scratch, res *Result, i int, n nn.Node, kn *KernelNode, k *Kernel, x *quant.QTensor, pMAC, pBRAM float64, rng *rand.Rand) error {
	img := d.bramImage(kn)
	if d.prot.Enabled() {
		res.BRAMFaults += d.flipWeightsECC(s, res, img, pBRAM, rng)
	} else {
		res.BRAMFaults += d.flipWeights(s, img, pBRAM, rng)
	}
	be := d.backendFor(k)
	var acc []int32
	var dims [3]int
	nd := 0
	var cerr error
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		var sh quant.ConvShape
		if sh, cerr = be.Conv(kn, x, op.Stride, op.Pad, &s.col, &s.acc); cerr == nil {
			acc = s.acc[:sh.AccLen()]
			dims = [3]int{sh.OutC, sh.OutH, sh.OutW}
			nd = 3
		}
	case *nn.Dense:
		var width int
		if width, cerr = be.Dense(kn, x, &s.acc); cerr == nil {
			acc = s.acc[:width]
			dims[0] = width
			nd = 1
		}
	}
	d.restoreWeights(s, img)
	if cerr != nil {
		return fmt.Errorf("dpu: node %q: %w", n.Label, cerr)
	}
	res.MACFaults += injectMACFaults(acc, kn.MACs, pMAC, rng)
	out := s.act(i)
	relu := s.fuseReLU[i] >= 0
	if err := quant.RequantizeInto(out, acc, kn.AccScale, kn.OutScale, k.Bits, relu, dims[:nd]...); err != nil {
		return err
	}
	s.refs[i] = out
	return nil
}

// flipWeights streams weights from BRAM tiles, flipping bits when VCCBRAM
// is underscaled into its fault region. Flips are transient read errors:
// they are applied in place on the shared tensor, recorded in the
// Scratch, and undone by restoreWeights after the kernel call — the
// flip-and-restore replacement for the O(weights) clone per faulted
// layer. The run's exclusivity over the kernel (one task per member,
// serialized under the fleet's member lock) makes the in-place window
// safe.
func (d *DPU) flipWeights(s *Scratch, w *quant.QTensor, pBit float64, rng *rand.Rand) int64 {
	s.flipIdx = s.flipIdx[:0]
	s.flipBit = s.flipBit[:0]
	if pBit <= 0 {
		return 0
	}
	bits := int64(len(w.Data)) * int64(w.Bits)
	k := fabric.SampleFaults(rng, bits, pBit)
	for i := int64(0); i < k; i++ {
		idx := rng.Intn(len(w.Data))
		bit := uint8(rng.Intn(w.Bits))
		w.Data[idx] ^= 1 << bit
		s.flipIdx = append(s.flipIdx, int32(idx))
		s.flipBit = append(s.flipBit, bit)
	}
	return k
}

// restoreWeights undoes the recorded transient flips (XOR is its own
// inverse, so re-flipping in any order restores the original codes) and
// the protected path's byte records (restored newest-first, so
// overlapping writes to the same word unwind correctly).
func (d *DPU) restoreWeights(s *Scratch, w *quant.QTensor) {
	for i, idx := range s.flipIdx {
		w.Data[idx] ^= 1 << s.flipBit[i]
	}
	s.flipIdx = s.flipIdx[:0]
	s.flipBit = s.flipBit[:0]
	for i := len(s.eccIdx) - 1; i >= 0; i-- {
		w.Data[s.eccIdx[i]] = s.eccOld[i]
	}
	s.eccIdx = s.eccIdx[:0]
	s.eccOld = s.eccOld[:0]
}

// faultTileSpan is the blast radius of one timing-fault event. The B4096
// MAC array computes a channel-parallel tile of outputs per cycle; a
// timing violation on a shared partial-sum path corrupts the whole tile,
// not a single accumulator.
const faultTileSpan = 4

// faultBitRange bounds the flipped accumulator bit: most flips land in the
// low-order noise range, a minority in the catastrophic high bits, which
// matches observed undervolting fault severity distributions.
const faultBitRange = 20

// injectMACFaults corrupts sampled accumulator tiles with single-bit
// flips, modeling timing faults in the DSP datapath. The number of events
// is Binomial(MACs, p); each event flips one bit per accumulator of a
// small output tile, producing the realistic spread
// from negligible to catastrophic logit perturbations.
func injectMACFaults(acc []int32, macs int64, p float64, rng *rand.Rand) int64 {
	if p <= 0 || len(acc) == 0 {
		return 0
	}
	k := fabric.SampleFaults(rng, macs, p)
	for i := int64(0); i < k; i++ {
		start := rng.Intn(len(acc))
		for j := 0; j < faultTileSpan && start+j < len(acc); j++ {
			bit := uint(rng.Intn(faultBitRange))
			acc[start+j] ^= 1 << bit
		}
	}
	return k
}

// sigmoidQInto computes sigmoid through the host float path (the DPU
// lacks a native sigmoid; DNNDK falls back to the CPU), staging the float
// intermediate in the Scratch.
func sigmoidQInto(dst *quant.QTensor, s *Scratch, x *quant.QTensor, outScale float32, bits int) error {
	f := floatStage(&s.logits, x.Size())
	x.DequantizeInto(f)
	data := f.Data()
	for i, v := range data {
		data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if err := quant.QuantizeWithScaleInto(dst, f, outScale, bits); err != nil {
		return err
	}
	dst.Dims = append(dst.Dims[:0], x.Dims...)
	return nil
}
