package dpu

import (
	"fmt"
	"math"
	"math/rand"

	"fpgauv/internal/board"
	"fpgauv/internal/fabric"
	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// DPU is a set of DPU cores programmed into a board's fabric.
type DPU struct {
	brd    *board.ZCU102
	cfg    Config
	nCores int
}

// New programs nCores instances of the given variant into the board's
// fabric, validating resource capacity.
func New(brd *board.ZCU102, cfg Config, nCores int) (*DPU, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("dpu: need at least one core")
	}
	total := fabric.Utilization{}
	for i := 0; i < nCores; i++ {
		total = total.Add(cfg.Util)
	}
	if err := brd.Fabric().Configure(total); err != nil {
		return nil, fmt.Errorf("dpu: %d x %s does not fit: %w", nCores, cfg.Arch, err)
	}
	return &DPU{brd: brd, cfg: cfg, nCores: nCores}, nil
}

// Board returns the board the DPU is programmed on.
func (d *DPU) Board() *board.ZCU102 { return d.brd }

// Config returns the core variant.
func (d *DPU) Config() Config { return d.cfg }

// Cores returns the instantiated core count.
func (d *DPU) Cores() int { return d.nCores }

// Result is the outcome of one inference on the DPU.
type Result struct {
	// Probs is the host-side softmax output.
	Probs *tensor.Tensor
	// Pred is the argmax class.
	Pred int
	// MACFaults and BRAMFaults count injected corruption events.
	MACFaults  int64
	BRAMFaults int64
}

// Run executes one image through a compiled kernel at the board's present
// electrical conditions, injecting timing faults per the fabric model.
// It returns board.ErrHung if the board is (or becomes) crashed.
func (d *DPU) Run(k *Kernel, img *tensor.Tensor, rng *rand.Rand) (*Result, error) {
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	cond := d.brd.Conditions()
	cond.Stress = k.Workload.Stress
	fab := d.brd.Fabric()
	pMAC := fab.MACFaultProb(cond) * k.VulnScale
	if pMAC > 0.5 {
		pMAC = 0.5
	}
	pBRAM := fab.BRAMBitFaultProb(cond)
	res, err := d.run(k, img, rng, pMAC, pBRAM)
	if err != nil {
		return nil, err
	}
	// A fault storm near Vcrash can also hang the board mid-task.
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	return res, nil
}

// RunClean executes one image with fault injection disabled and without
// consulting the board's electrical state — the fault-free reference path
// used to plant ground-truth labels.
func (d *DPU) RunClean(k *Kernel, img *tensor.Tensor) (*Result, error) {
	return d.run(k, img, nil, 0, 0)
}

// run is the shared execution core. rng may be nil when both fault
// probabilities are zero.
func (d *DPU) run(k *Kernel, img *tensor.Tensor, rng *rand.Rand, pMAC, pBRAM float64) (*Result, error) {
	res := &Result{}
	nodes := k.Graph.Nodes()
	acts := make([]*quant.QTensor, len(nodes))
	var final *tensor.Tensor

	// Quantize the input once with the calibrated scale.
	inQ, err := quant.QuantizeWithScale(img, k.InScale, k.Bits)
	if err != nil {
		return nil, fmt.Errorf("dpu: input quantization: %w", err)
	}

	fetch := func(id nn.NodeID) (*quant.QTensor, error) {
		if id == nn.InputID {
			return inQ, nil
		}
		if int(id) >= len(acts) || acts[id] == nil {
			return nil, fmt.Errorf("dpu: missing activation for node %d", id)
		}
		return acts[id], nil
	}

	for i, n := range nodes {
		kn := k.Nodes[i]
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			wq, bflips := d.readWeights(kn.WQ, pBRAM, rng)
			res.BRAMFaults += bflips
			acc, dims, err := quant.Conv2DInt8(x, wq, kn.BiasQ, op.Stride, op.Pad)
			if err != nil {
				return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			res.MACFaults += injectMACFaults(acc, kn.MACs, pMAC, rng)
			q, err := quant.Requantize(acc, dims, kn.AccScale, kn.OutScale, k.Bits)
			if err != nil {
				return nil, err
			}
			acts[i] = q
		case *nn.Dense:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			wq, bflips := d.readWeights(kn.WQ, pBRAM, rng)
			res.BRAMFaults += bflips
			acc, dims, err := quant.DenseInt8(x, wq, kn.BiasQ)
			if err != nil {
				return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			res.MACFaults += injectMACFaults(acc, kn.MACs, pMAC, rng)
			q, err := quant.Requantize(acc, dims, kn.AccScale, kn.OutScale, k.Bits)
			if err != nil {
				return nil, err
			}
			acts[i] = q
		case *nn.Pool2D:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			var q *quant.QTensor
			if op.Kind == nn.MaxPool {
				q, err = quant.MaxPoolQ(x, op.Kernel, op.Stride, op.Global)
			} else {
				q, err = quant.AvgPoolQ(x, op.Kernel, op.Stride, op.Global)
			}
			if err != nil {
				return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			acts[i] = q
		case nn.ReLU:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			acts[i] = quant.ReLUQ(x.Clone())
		case nn.Sigmoid:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			acts[i] = d.sigmoidQ(x, kn.OutScale, k.Bits)
		case *nn.LRN:
			// Host-side op (like softmax): dequantize, normalize,
			// requantize at the calibrated scale.
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			f, err := op.Forward([]*tensor.Tensor{x.Dequantize()})
			if err != nil {
				return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			q, err := quant.QuantizeWithScale(f, kn.OutScale, k.Bits)
			if err != nil {
				return nil, err
			}
			acts[i] = q
		case *nn.BatchNorm:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			acts[i] = d.batchNormQ(x, op, kn.OutScale, k.Bits)
		case nn.Flatten:
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			flat := x.Clone()
			flat.Dims = []int{x.Size()}
			acts[i] = flat
		case nn.Add:
			a, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			sum := a
			for _, id := range n.Inputs[1:] {
				b, err := fetch(id)
				if err != nil {
					return nil, err
				}
				sum, err = quant.AddQ(sum, b, kn.OutScale, k.Bits)
				if err != nil {
					return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
				}
			}
			acts[i] = sum
		case nn.Concat:
			ins := make([]*quant.QTensor, len(n.Inputs))
			for j, id := range n.Inputs {
				x, err := fetch(id)
				if err != nil {
					return nil, err
				}
				ins[j] = x
			}
			q, err := quant.ConcatQ(ins, kn.OutScale, k.Bits)
			if err != nil {
				return nil, fmt.Errorf("dpu: node %q: %w", n.Label, err)
			}
			acts[i] = q
		case nn.Softmax:
			// DNNDK computes softmax on the ARM host, in float.
			x, err := fetch(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			logits := x.Dequantize()
			out, err := (nn.Softmax{}).Forward([]*tensor.Tensor{logits})
			if err != nil {
				return nil, err
			}
			final = out
			// Keep a quantized copy in case the graph continues.
			q, err := quant.QuantizeWithScale(out, kn.OutScale, k.Bits)
			if err != nil {
				return nil, err
			}
			acts[i] = q
		default:
			return nil, fmt.Errorf("dpu: node %q: unsupported op %T", n.Label, n.Op)
		}
	}

	if final == nil {
		out, err := fetch(k.Graph.Output())
		if err != nil {
			return nil, err
		}
		final = out.Dequantize()
	}
	res.Probs = final
	res.Pred = final.ArgMax()
	return res, nil
}

// readWeights streams weights from BRAM tiles, flipping bits when VCCBRAM
// is underscaled into its fault region. The kernel's stored weights are
// never mutated (flips are transient read errors).
func (d *DPU) readWeights(w *quant.QTensor, pBit float64, rng *rand.Rand) (*quant.QTensor, int64) {
	if pBit <= 0 {
		return w, 0
	}
	bits := int64(len(w.Data)) * int64(w.Bits)
	k := fabric.SampleFaults(rng, bits, pBit)
	if k == 0 {
		return w, 0
	}
	out := w.Clone()
	for i := int64(0); i < k; i++ {
		idx := rng.Intn(len(out.Data))
		bit := uint(rng.Intn(w.Bits))
		out.Data[idx] ^= 1 << bit
	}
	return out, k
}

// faultTileSpan is the blast radius of one timing-fault event. The B4096
// MAC array computes a channel-parallel tile of outputs per cycle; a
// timing violation on a shared partial-sum path corrupts the whole tile,
// not a single accumulator.
const faultTileSpan = 4

// faultBitRange bounds the flipped accumulator bit: most flips land in the
// low-order noise range, a minority in the catastrophic high bits, which
// matches observed undervolting fault severity distributions.
const faultBitRange = 20

// injectMACFaults corrupts sampled accumulator tiles with single-bit
// flips, modeling timing faults in the DSP datapath. The number of events
// is Binomial(MACs, p); each event flips one bit per accumulator of a
// small output tile, producing the realistic spread
// from negligible to catastrophic logit perturbations.
func injectMACFaults(acc []int32, macs int64, p float64, rng *rand.Rand) int64 {
	if p <= 0 || len(acc) == 0 {
		return 0
	}
	k := fabric.SampleFaults(rng, macs, p)
	for i := int64(0); i < k; i++ {
		start := rng.Intn(len(acc))
		for j := 0; j < faultTileSpan && start+j < len(acc); j++ {
			bit := uint(rng.Intn(faultBitRange))
			acc[start+j] ^= 1 << bit
		}
	}
	return k
}

// sigmoidQ computes sigmoid through the host float path (the DPU lacks a
// native sigmoid; DNNDK falls back to the CPU).
func (d *DPU) sigmoidQ(x *quant.QTensor, outScale float32, bits int) *quant.QTensor {
	f := x.Dequantize()
	data := f.Data()
	for i, v := range data {
		data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	q, err := quant.QuantizeWithScale(f, outScale, bits)
	if err != nil {
		// outScale is validated at compile time; reaching this is a bug.
		panic(fmt.Sprintf("dpu: sigmoid requantize: %v", err))
	}
	return q
}

// batchNormQ applies a (possibly folded-to-identity) batch norm in the
// quantized domain.
func (d *DPU) batchNormQ(x *quant.QTensor, bn *nn.BatchNorm, outScale float32, bits int) *quant.QTensor {
	c := len(bn.Scale)
	hw := len(x.Data) / c
	out := &quant.QTensor{
		Data:  make([]int8, len(x.Data)),
		Dims:  append([]int(nil), x.Dims...),
		Scale: outScale,
		Bits:  bits,
	}
	qmax := float64(quant.QMax(bits))
	for ch := 0; ch < c; ch++ {
		sc := float64(bn.Scale[ch])
		sh := float64(bn.Shift[ch])
		for i := ch * hw; i < (ch+1)*hw; i++ {
			real := float64(x.Data[i])*float64(x.Scale)*sc + sh
			code := math.RoundToEven(real / float64(outScale))
			if code > qmax {
				code = qmax
			}
			if code < -qmax {
				code = -qmax
			}
			out.Data[i] = int8(code)
		}
	}
	return out
}
