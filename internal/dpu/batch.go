package dpu

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fpgauv/internal/ecc"
	"fpgauv/internal/fabric"
	"fpgauv/internal/nn"
	"fpgauv/internal/quant"
	"fpgauv/internal/tensor"
)

// This file is the batch-native executor: one accelerator pass classifies
// a micro-batch of images. Per layer, the batch's patch matrices stack
// into a single multi-RHS GEMM (the FC GEMV becomes a GEMM over the
// batch), the micro-batch is split across the DPU's cores (one lane per
// core, each advancing its images in layer lockstep), and BRAM weight
// faults are flipped ONCE per batch and restored after it — the
// paper-faithful persistence semantics (a voltage-induced BRAM bit flip
// physically persists until scrub/reboot, so every image of a batch
// observes the same corrupted weights), which also deletes the per-image
// flip/restore cost from the hot path and makes the parallel lanes safe:
// the shared weight tensors are immutable while the lanes run.

// batchArena is the Scratch's batched-execution extension. All state is
// arena-owned and reused across batches, so a warm steady-state batch
// performs near-zero heap allocations.
type batchArena struct {
	imgs  []*Scratch   // per-image sub-arenas (index = image ordinal)
	lanes []*batchLane // per-DPU-core stacked GEMM buffers
	res   []Result     // per-image staged results
	flips []weightFlip // batch-persistent BRAM flip records
	// eccFlips are the protected path's batch-persistent byte-restore
	// records (restored newest-first; see Scratch.eccIdx).
	eccFlips []byteRestore
	rngs     []*rand.Rand // pooled per-image fault streams for callers
	errMu    sync.Mutex
	err      error
}

// batchLane holds one core's stacked im2col/accumulator buffers and its
// batched-input gather table.
type batchLane struct {
	col []int8
	acc []int32
	xs  []*quant.QTensor
}

// weightFlip records one batch-persistent BRAM bit flip so the shared
// weight tensor can be restored after the batch (XOR is its own inverse).
type weightFlip struct {
	w   *quant.QTensor
	idx int32
	bit uint8
}

// byteRestore records one protected-path byte overwrite (prior value,
// since SECDED miscorrections are not XOR-invertible).
type byteRestore struct {
	w   *quant.QTensor
	idx int32
	old int8
}

// batchBind readies the arena for a batch of n images across w lanes.
func (s *Scratch) batchBind(n, w int) *batchArena {
	ba := s.batch
	if ba == nil {
		ba = &batchArena{}
		s.batch = ba
	}
	for len(ba.imgs) < n {
		ba.imgs = append(ba.imgs, NewScratch())
	}
	for len(ba.lanes) < w {
		ba.lanes = append(ba.lanes, &batchLane{})
	}
	if cap(ba.res) < n {
		ba.res = make([]Result, n)
	}
	ba.res = ba.res[:n]
	ba.err = nil
	return ba
}

// BatchRNGs returns n arena-pooled fault-stream generators for a batched
// run. Callers seed each generator (rngs[i].Seed(...)) before passing the
// slice to RunBatch; pooling them in the arena keeps the steady-state
// serving path allocation-free.
func (s *Scratch) BatchRNGs(n int) []*rand.Rand {
	ba := s.batch
	if ba == nil {
		ba = &batchArena{}
		s.batch = ba
	}
	for len(ba.rngs) < n {
		ba.rngs = append(ba.rngs, rand.New(rand.NewSource(0)))
	}
	return ba.rngs[:n]
}

// RunBatch executes one micro-batch at the board's present electrical
// conditions, returning one Result per image. rngs[i] drives image i's
// MAC-fault stream, so a batch member is bit-exact with a single-image
// Run that sees the same fault stream. BRAM flips are sampled once per
// weight layer per batch from rngs[0] and persist across the whole batch
// (restored before returning); each image's Result reports the batch's
// flip count — the faults its pass observed — so aggregate BRAM fault
// statistics keep the per-image expectation of the single-image path.
//
// The returned Results (and their Probs tensors) are staged in the
// Scratch and only valid until the next run on it. A nil Scratch
// allocates a transient arena and returns detached results.
func (d *DPU) RunBatch(s *Scratch, k *Kernel, imgs []*tensor.Tensor, rngs []*rand.Rand) ([]Result, error) {
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	cond := d.brd.Conditions()
	cond.Stress = k.Workload.Stress
	fab := d.brd.Fabric()
	pMAC := fab.MACFaultProb(cond) * k.VulnScale
	if pMAC > 0.5 {
		pMAC = 0.5
	}
	pBRAM := fab.BRAMBitFaultProb(cond)
	start := time.Now()
	res, err := d.runBatch(s, k, imgs, rngs, pMAC, pBRAM)
	if err != nil {
		return nil, err
	}
	// A fault storm near Vcrash can also hang the board mid-batch.
	if err := d.brd.CheckAlive(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Nanoseconds()
	for i := range res {
		res[i].ExecNS = elapsed
	}
	return res, nil
}

// RunBatchClean executes a micro-batch with fault injection disabled and
// without consulting the board's electrical state — the batched
// fault-free reference path.
func (d *DPU) RunBatchClean(s *Scratch, k *Kernel, imgs []*tensor.Tensor) ([]Result, error) {
	return d.runBatch(s, k, imgs, nil, 0, 0)
}

// runBatch is the batched execution core. rngs may be nil only when both
// fault probabilities are zero.
func (d *DPU) runBatch(s *Scratch, k *Kernel, imgs []*tensor.Tensor, rngs []*rand.Rand, pMAC, pBRAM float64) ([]Result, error) {
	n := len(imgs)
	if n == 0 {
		return nil, nil
	}
	if rngs != nil && len(rngs) < n {
		return nil, fmt.Errorf("dpu: %d fault streams for %d images", len(rngs), n)
	}
	if (pMAC > 0 || pBRAM > 0) && rngs == nil {
		return nil, fmt.Errorf("dpu: fault injection requires per-image fault streams")
	}
	detached := false
	if s == nil {
		s = NewScratch()
		detached = true
	}
	w := d.nCores
	if w > n {
		w = n
	}
	ba := s.batchBind(n, w)

	// Persistent faults: flip once per batch, before the lanes start, so
	// the shared weight tensors are immutable while the batch runs.
	var batchFlips int64
	var batchECC ecc.Counts
	if pBRAM > 0 {
		if d.prot.Enabled() {
			batchFlips, batchECC = d.flipBatchWeightsECC(ba, k, pBRAM, rngs[0])
		} else {
			batchFlips = d.flipBatchWeights(ba, k, pBRAM, rngs[0])
		}
	}

	// Fan the batch across the DPU cores: lane c serves the contiguous
	// image range [lo, hi). The lanes run on the same process-wide
	// worker pool as the GEMM macro-tiles (quant.RunTiles), so lane- and
	// tile-level parallelism draw from one budget and an oversubscribed
	// box degrades to serial execution instead of thrashing; because
	// each image's fault stream is its own rng and the lane split
	// depends only on (n, nCores), results are identical at every pool
	// width. A single lane runs inline.
	if w == 1 {
		d.runBatchLane(ba, ba.lanes[0], k, imgs, rngs, 0, n, pMAC)
	} else {
		lj := laneJobs.Get().(*laneJob)
		lj.d, lj.ba, lj.k = d, ba, k
		lj.imgs, lj.rngs = imgs, rngs
		lj.pMAC = pMAC
		lj.n, lj.w = n, w
		quant.RunTiles(w, lj)
	}

	d.restoreBatchWeights(ba)
	if ba.err != nil {
		return nil, ba.err
	}
	for i := range ba.res {
		ba.res[i].BRAMFaults += batchFlips
		ba.res[i].ECC.Add(batchECC)
	}
	if detached {
		out := make([]Result, n)
		copy(out, ba.res)
		for i := range out {
			out[i].Probs = out[i].Probs.Clone()
		}
		return out, nil
	}
	return ba.res, nil
}

// laneJob is the pooled work descriptor that fans a batch's lanes out
// over the shared quant worker pool: tile index c is DPU core c,
// serving the same contiguous image range the dedicated per-lane
// goroutines used to (span n/w rounded up for the first n%w lanes).
// Lanes write disjoint arena state (per-image sub-arenas and result
// slots, per-lane GEMM buffers); the shared weight tensors are
// immutable while the lanes run.
type laneJob struct {
	quant.TileJob
	d    *DPU
	ba   *batchArena
	k    *Kernel
	imgs []*tensor.Tensor
	rngs []*rand.Rand
	pMAC float64
	n, w int
}

var laneJobs = sync.Pool{New: func() any { return new(laneJob) }}

func (lj *laneJob) Job() *quant.TileJob { return &lj.TileJob }

func (lj *laneJob) Recycle() {
	lj.d, lj.ba, lj.k, lj.imgs, lj.rngs = nil, nil, nil, nil, nil
	laneJobs.Put(lj)
}

func (lj *laneJob) Tile(c int) {
	span := lj.n / lj.w
	lo := c*span + min(c, lj.n%lj.w)
	if c < lj.n%lj.w {
		span++
	}
	lj.d.runBatchLane(lj.ba, lj.ba.lanes[c], lj.k, lj.imgs, lj.rngs, lo, lo+span, lj.pMAC)
}

// runBatchLane advances images [lo, hi) through the graph in layer
// lockstep: conv/FC nodes run as one stacked GEMM over the lane's
// sub-batch, every other node runs per image through the shared host-op
// executor. Errors are recorded on the arena (first one wins).
func (d *DPU) runBatchLane(ba *batchArena, ln *batchLane, k *Kernel, imgs []*tensor.Tensor, rngs []*rand.Rand, lo, hi int, pMAC float64) {
	fail := func(err error) {
		ba.errMu.Lock()
		if ba.err == nil {
			ba.err = err
		}
		ba.errMu.Unlock()
	}
	for i := lo; i < hi; i++ {
		sc := ba.imgs[i]
		sc.bind(k)
		ba.res[i] = Result{}
		if err := quant.QuantizeWithScaleInto(&sc.inQ, imgs[i], k.InScale, k.Bits); err != nil {
			fail(fmt.Errorf("dpu: input quantization: %w", err))
			return
		}
	}
	nodes := ba.imgs[lo].nodes
	for idx, n := range nodes {
		kn := &k.Nodes[idx]
		switch n.Op.(type) {
		case *nn.Conv2D, *nn.Dense:
			if err := d.runBatchWeightLayer(ba, ln, idx, n, kn, k, rngs, lo, hi, pMAC); err != nil {
				fail(err)
				return
			}
		default:
			for i := lo; i < hi; i++ {
				if err := d.runHostNode(ba.imgs[i], idx, n, kn, k); err != nil {
					fail(err)
					return
				}
			}
		}
	}
	for i := lo; i < hi; i++ {
		if err := finishRun(ba.imgs[i], k, &ba.res[i]); err != nil {
			fail(err)
			return
		}
	}
}

// runBatchWeightLayer executes one conv/FC node for a lane's sub-batch
// on the kernel's compute backend: one stacked multi-RHS GEMM (dense or
// sparse; the naive oracle loops the images into the same block
// layout), then per-image MAC-fault injection and the fused
// requantize(+ReLU) epilogue — each image's accumulator block has the
// exact single-image layout, so injection and epilogue are bit-exact
// with the per-image path.
func (d *DPU) runBatchWeightLayer(ba *batchArena, ln *batchLane, idx int, n nn.Node, kn *KernelNode, k *Kernel, rngs []*rand.Rand, lo, hi int, pMAC float64) error {
	nb := hi - lo
	if cap(ln.xs) < nb {
		ln.xs = make([]*quant.QTensor, nb)
	}
	xs := ln.xs[:nb]
	for b := 0; b < nb; b++ {
		x, err := ba.imgs[lo+b].fetch(n.Inputs[0])
		if err != nil {
			return err
		}
		xs[b] = x
	}

	be := d.backendFor(k)
	var blockLen, nd int
	var dims [3]int
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		sh, err := be.ConvBatch(kn, xs, op.Stride, op.Pad, &ln.col, &ln.acc)
		if err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		blockLen = sh.AccLen()
		dims = [3]int{sh.OutC, sh.OutH, sh.OutW}
		nd = 3
	case *nn.Dense:
		width, err := be.DenseBatch(kn, xs, &ln.acc)
		if err != nil {
			return fmt.Errorf("dpu: node %q: %w", n.Label, err)
		}
		blockLen = width
		dims[0] = width
		nd = 1
	}

	for b := 0; b < nb; b++ {
		i := lo + b
		sc := ba.imgs[i]
		block := ln.acc[b*blockLen : (b+1)*blockLen]
		var rng *rand.Rand
		if rngs != nil {
			rng = rngs[i]
		}
		ba.res[i].MACFaults += injectMACFaults(block, kn.MACs, pMAC, rng)
		out := sc.act(idx)
		relu := sc.fuseReLU[idx] >= 0
		if err := quant.RequantizeInto(out, block, kn.AccScale, kn.OutScale, k.Bits, relu, dims[:nd]...); err != nil {
			return err
		}
		sc.refs[idx] = out
	}
	return nil
}

// flipBatchWeights applies the batch's persistent BRAM faults: per weight
// layer, in node order, flips are sampled exactly as the single-image
// path samples them (same per-layer distribution) and applied in place on
// the shared BRAM-resident images (the packed image on the sparse
// backend), recorded for restoreBatchWeights. The returned count is the
// batch's total flip events.
func (d *DPU) flipBatchWeights(ba *batchArena, k *Kernel, pBit float64, rng *rand.Rand) int64 {
	ba.flips = ba.flips[:0]
	var total int64
	for i := range k.Nodes {
		w := d.bramImage(&k.Nodes[i])
		if w == nil {
			continue
		}
		bits := int64(len(w.Data)) * int64(w.Bits)
		kk := fabric.SampleFaults(rng, bits, pBit)
		for f := int64(0); f < kk; f++ {
			idx := rng.Intn(len(w.Data))
			bit := uint8(rng.Intn(w.Bits))
			w.Data[idx] ^= 1 << bit
			ba.flips = append(ba.flips, weightFlip{w: w, idx: int32(idx), bit: bit})
		}
		total += kk
	}
	return total
}

// restoreBatchWeights undoes the batch's persistent flips: legacy flips
// by XOR (its own inverse), protected-path byte records newest-first so
// overlapping word writes unwind correctly.
func (d *DPU) restoreBatchWeights(ba *batchArena) {
	for _, f := range ba.flips {
		f.w.Data[f.idx] ^= 1 << f.bit
	}
	ba.flips = ba.flips[:0]
	for i := len(ba.eccFlips) - 1; i >= 0; i-- {
		f := ba.eccFlips[i]
		f.w.Data[f.idx] = f.old
	}
	ba.eccFlips = ba.eccFlips[:0]
}
