package dpu

import (
	"math/rand"
	"testing"

	"fpgauv/internal/ecc"
)

// kernelWeightSnapshot clones every weight tensor of the kernel.
func kernelWeightSnapshot(k *Kernel) [][]int8 {
	var out [][]int8
	for i := range k.Nodes {
		if w := k.Nodes[i].WQ; w != nil {
			out = append(out, append([]int8(nil), w.Data...))
		}
	}
	return out
}

func checkWeightSnapshot(t *testing.T, k *Kernel, snap [][]int8, when string) {
	t.Helper()
	j := 0
	for i := range k.Nodes {
		w := k.Nodes[i].WQ
		if w == nil {
			continue
		}
		for idx, v := range w.Data {
			if v != snap[j][idx] {
				t.Fatalf("%s: node %d weight[%d] = %d, want %d (restore broken)", when, i, idx, v, snap[j][idx])
			}
		}
		j++
	}
}

// The protected path's corrected/detected/silent counts must be
// bit-exactly deterministic under a pinned seed, on both executors.
func TestECCCountsDeterministic(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	d.SetProtection(ecc.NewProtection(true))
	const pBRAM = 2e-3

	run := func(seed int64) *Result {
		res, err := d.run(nil, k, inputs[0], rand.New(rand.NewSource(seed)), 0, pBRAM)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for seed := int64(1); seed <= 8; seed++ {
		a, b := run(seed), run(seed)
		if a.ECC != b.ECC || a.BRAMFaults != b.BRAMFaults {
			t.Fatalf("seed %d: ECC %+v/%d vs %+v/%d not deterministic", seed, a.ECC, a.BRAMFaults, b.ECC, b.BRAMFaults)
		}
		if a.Pred != b.Pred {
			t.Fatalf("seed %d: pred %d vs %d", seed, a.Pred, b.Pred)
		}
		if a.ECC.Total() == 0 && a.BRAMFaults != 0 {
			t.Fatalf("seed %d: raw faults %d with no classified words", seed, a.BRAMFaults)
		}
	}

	in := makeBatch(inputs, 5)
	batch := func(seed int64) ([]Result, []float32) {
		rngs := seededRNGs(seed, len(in))
		res, err := d.runBatch(nil, k, in, rngs, 0, pBRAM)
		if err != nil {
			t.Fatal(err)
		}
		return res, append([]float32(nil), res[0].Probs.Data()...)
	}
	a, ap := batch(33)
	b, bp := batch(33)
	for i := range a {
		if a[i].ECC != b[i].ECC || a[i].BRAMFaults != b[i].BRAMFaults {
			t.Fatalf("batch image %d: %+v vs %+v", i, a[i].ECC, b[i].ECC)
		}
		// Persistent-per-batch semantics: every image reports the batch's
		// shared outcome split.
		if a[i].ECC != a[0].ECC {
			t.Fatalf("image %d does not share the batch outcome split: %+v vs %+v", i, a[i].ECC, a[0].ECC)
		}
	}
	for j := range ap {
		if ap[j] != bp[j] {
			t.Fatalf("batch probs[%d] differ across identical runs", j)
		}
	}
}

// A pass whose faulted words were all corrected must be bit-exact with
// the fault-free reference: SECDED made the corruption invisible. Seeds
// with uncorrectable words must still leave the weights restored.
func TestECCCorrectedRunsMatchClean(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	d.SetProtection(ecc.NewProtection(true))
	snap := kernelWeightSnapshot(k)
	clean, err := d.RunClean(k, inputs[0])
	if err != nil {
		t.Fatal(err)
	}

	correctedOnly, uncorrectable := 0, 0
	for seed := int64(1); seed <= 60; seed++ {
		res, err := d.run(nil, k, inputs[0], rand.New(rand.NewSource(seed)), 0, 2e-3)
		if err != nil {
			t.Fatal(err)
		}
		checkWeightSnapshot(t, k, snap, "after protected run")
		if res.ECC.Total() == 0 {
			continue
		}
		if res.ECC.Bad() == 0 {
			correctedOnly++
			if res.Pred != clean.Pred {
				t.Fatalf("seed %d: corrected-only pass changed the prediction", seed)
			}
			cp, rp := clean.Probs.Data(), res.Probs.Data()
			for j := range cp {
				if cp[j] != rp[j] {
					t.Fatalf("seed %d: corrected-only pass perturbed probs[%d]", seed, j)
				}
			}
		} else {
			uncorrectable++
		}
	}
	if correctedOnly == 0 {
		t.Error("no corrected-only pass in 60 seeds; lower pBRAM for the test")
	}
}

// An installed-but-disabled protection must leave the executor on the
// legacy path, bit-exact with no protection at all.
func TestECCDisabledMatchesLegacy(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	const pBRAM = 1e-3
	legacy, err := d.run(nil, k, inputs[0], rand.New(rand.NewSource(9)), 0, pBRAM)
	if err != nil {
		t.Fatal(err)
	}
	d.SetProtection(ecc.NewProtection(false))
	disabled, err := d.run(nil, k, inputs[0], rand.New(rand.NewSource(9)), 0, pBRAM)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Pred != disabled.Pred || legacy.BRAMFaults != disabled.BRAMFaults {
		t.Fatalf("disabled protection drifted: pred %d/%d faults %d/%d",
			legacy.Pred, disabled.Pred, legacy.BRAMFaults, disabled.BRAMFaults)
	}
	if disabled.ECC != (ecc.Counts{}) {
		t.Fatalf("disabled protection classified words: %+v", disabled.ECC)
	}
	lp, dp := legacy.Probs.Data(), disabled.Probs.Data()
	for j := range lp {
		if lp[j] != dp[j] {
			t.Fatalf("probs[%d] drifted with disabled protection", j)
		}
	}
}

// Batch restore integrity under heavy protected corruption, including
// silent miscorrections (which rewrite bits the fault never touched).
func TestECCBatchRestoresWeights(t *testing.T) {
	d, k, inputs := buildConvNetKernel(t)
	prot := ecc.NewProtection(true)
	d.SetProtection(prot)
	snap := kernelWeightSnapshot(k)
	in := makeBatch(inputs, 6)
	for seed := int64(1); seed <= 20; seed++ {
		rngs := seededRNGs(seed*311, len(in))
		if _, err := d.runBatch(nil, k, in, rngs, 0, 5e-3); err != nil {
			t.Fatal(err)
		}
		checkWeightSnapshot(t, k, snap, "after protected batch")
	}
	c := prot.Counts()
	if c.Corrected == 0 {
		t.Error("heavy corruption produced no corrected words")
	}
	if c.Bad() == 0 {
		t.Error("heavy corruption produced no uncorrectable/silent words; raise pBRAM")
	}
}
