package dvfs

import (
	"testing"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/models"
)

func governorRig(t *testing.T) (*Governor, *board.ZCU102) {
	t.Helper()
	brd := board.MustNew(board.SampleB)
	rt, err := dnndk.NewRuntime(brd, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := models.New("GoogleNet", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k, err := dnndk.Quantize(bench, dnndk.DefaultQuantizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	task, err := rt.LoadKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ProbeImages = 12
	return New(task, bench, cfg), brd
}

func TestSettleFindsSafeDeepVoltage(t *testing.T) {
	g, brd := governorRig(t)
	settled, err := g.Settle()
	if err != nil {
		t.Fatal(err)
	}
	// The governor should descend deep below nominal but stay at or
	// above the fault onset minus margin (sample B Vmin = 570).
	if settled > 585 {
		t.Fatalf("settled too shallow: %.0f mV", settled)
	}
	if settled < 560 {
		t.Fatalf("settled dangerously deep: %.0f mV", settled)
	}
	if brd.Hung() {
		t.Fatal("governor must never crash the board")
	}
	if diff := brd.VCCINTmV() - settled; diff > 0.3 || diff < -0.3 {
		t.Fatalf("board not left at settled level: %.2f vs %.2f", brd.VCCINTmV(), settled)
	}
	if len(g.Trace()) == 0 {
		t.Fatal("empty trace")
	}
}

func TestHotterDieSettlesDeeper(t *testing.T) {
	gCold, brdCold := governorRig(t)
	brdCold.Thermal().HoldTemperature(34)
	cold, err := gCold.Settle()
	if err != nil {
		t.Fatal(err)
	}

	gHot, brdHot := governorRig(t)
	brdHot.Thermal().HoldTemperature(52)
	hot, err := gHot.Settle()
	if err != nil {
		t.Fatal(err)
	}
	// ITD: the hot die sees fewer marginal faults, so the canary stays
	// clean deeper (§7.3: "a lower voltage can be applied at higher
	// temperatures").
	if hot > cold+0.3 {
		t.Fatalf("hot settle %.0f mV should be at or below cold settle %.0f mV", hot, cold)
	}
}

func TestAdjustResettlesAfterThermalChange(t *testing.T) {
	g, brd := governorRig(t)
	brd.Thermal().HoldTemperature(52)
	deep, err := g.Settle()
	if err != nil {
		t.Fatal(err)
	}
	// The fan recovers; the die cools; the deep point may now be
	// marginal. Adjust must re-settle to a safe level without a crash.
	brd.Thermal().HoldTemperature(34)
	readj, err := g.Adjust()
	if err != nil {
		t.Fatal(err)
	}
	if brd.Hung() {
		t.Fatal("adjust crashed the board")
	}
	if readj < deep-0.3 {
		t.Fatalf("cooling should not allow a deeper point: %.2f vs %.2f", readj, deep)
	}
}

func TestGovernorRespectsFloor(t *testing.T) {
	g, brd := governorRig(t)
	g.cfg.FloorMV = 800 // artificially high floor
	settled, err := g.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if settled < 800 {
		t.Fatalf("floor violated: %.0f", settled)
	}
	if brd.Hung() {
		t.Fatal("hung")
	}
}

// Plan is the shared control law: clean canaries descend by the step,
// faulting canaries climb step+margin, and neither move crosses the
// floor or the ceiling.
func TestPlanControlLaw(t *testing.T) {
	const step, margin, floor, ceil = 5.0, 5.0, 545.0, 850.0
	cases := []struct {
		name   string
		cur    float64
		faults int64
		want   float64
		act    Action
	}{
		{"clean descends", 600, 0, 595, ActionDown},
		{"clean at floor holds", 548, 0, 548, ActionHold},
		{"clean exactly one step above floor descends", 550, 0, 545, ActionDown},
		{"faults climb step+margin", 600, 3, 610, ActionUp},
		{"climb clamps at ceiling", 845, 1, 850, ActionUp},
		{"faults at ceiling hold", 850, 9, 850, ActionHold},
	}
	for _, tc := range cases {
		got, act := Plan(tc.cur, tc.faults, step, margin, floor, ceil)
		if got != tc.want || act != tc.act {
			t.Errorf("%s: Plan(%.0f, %d) = (%.0f, %v), want (%.0f, %v)",
				tc.name, tc.cur, tc.faults, got, act, tc.want, tc.act)
		}
	}
	// The guarantee every governor relies on: no planned target is ever
	// below the floor.
	for v := 540.0; v <= 620; v += 1 {
		for _, f := range []int64{0, 1, 100} {
			if got, _ := Plan(v, f, step, margin, floor, ceil); got < floor && got < v {
				t.Fatalf("Plan(%.0f, %d) planned %.0f below floor %.0f", v, f, got, floor)
			}
		}
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{ActionHold: "hold", ActionDown: "down", ActionUp: "up"} {
		if got := a.String(); got != want {
			t.Errorf("Action(%d).String() = %q, want %q", a, got, want)
		}
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{}.sanitize()
	d := DefaultConfig()
	if c.StepMV != d.StepMV || c.FloorMV != d.FloorMV || c.ProbeImages != d.ProbeImages {
		t.Fatalf("sanitize: %+v", c)
	}
}
