// Package dvfs implements the paper's second future-work item (§9):
// dynamic voltage adjustment considering temperature, accuracy, power and
// performance. The Governor closes the loop the paper leaves open: it
// monitors a canary error signal (fault events on a small probe set) and
// the die temperature, and walks VCCINT to the deepest level that keeps
// the error signal at zero — automatically exploiting ITD headroom when
// the die runs hot and backing off when it cools.
package dvfs

import (
	"errors"
	"fmt"
	"math/rand"

	"fpgauv/internal/board"
	"fpgauv/internal/dnndk"
	"fpgauv/internal/models"
	"fpgauv/internal/pmbus"
	"fpgauv/internal/silicon"
)

// Config tunes the governor.
type Config struct {
	// StepMV is the voltage adjustment granularity (default 5 mV, the
	// paper's measurement step).
	StepMV float64
	// MarginMV is the safety margin kept above the last level that
	// showed faults (default 5 mV).
	MarginMV float64
	// FloorMV bounds the descent (default 540 mV — the mean Vcrash;
	// the governor must never walk into a crash).
	FloorMV float64
	// ProbeImages is the canary-set size checked per step.
	ProbeImages int
	// Seed derives probe fault-injection randomness.
	Seed int64
}

// DefaultConfig returns conservative governor settings.
func DefaultConfig() Config {
	return Config{
		StepMV:      5,
		MarginMV:    5,
		FloorMV:     545,
		ProbeImages: 16,
		Seed:        1,
	}
}

func (c Config) sanitize() Config {
	d := DefaultConfig()
	if c.StepMV <= 0 {
		c.StepMV = d.StepMV
	}
	if c.MarginMV < 0 {
		c.MarginMV = d.MarginMV
	}
	if c.FloorMV <= 0 {
		c.FloorMV = d.FloorMV
	}
	if c.ProbeImages <= 0 {
		c.ProbeImages = d.ProbeImages
	}
	return c
}

// Action is one kind of planned rail move.
type Action int

// The three moves the control law can plan.
const (
	// ActionHold keeps the present level: the canary is clean but the
	// floor (or ceiling, when climbing) blocks further movement.
	ActionHold Action = iota
	// ActionDown steps one StepMV deeper: the canary was clean and
	// there is room above the floor.
	ActionDown
	// ActionUp backs off above a faulting level by StepMV+MarginMV.
	ActionUp
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionDown:
		return "down"
	case ActionUp:
		return "up"
	default:
		return "hold"
	}
}

// Plan is the pure control law shared by the single-board Governor and
// the fleet's per-member governor loops: given the present VCCINT level
// and the canary fault count observed there, it returns the next target
// level and the action taken. A faulting canary climbs StepMV+MarginMV
// (clamped to ceilMV); a clean canary descends StepMV unless that would
// cross floorMV. Plan never returns a target below floorMV, which is how
// every governor built on it guarantees it cannot crash the board.
func Plan(curMV float64, faults int64, stepMV, marginMV, floorMV, ceilMV float64) (float64, Action) {
	if faults > 0 {
		next := curMV + stepMV + marginMV
		if next > ceilMV {
			next = ceilMV
		}
		if next <= curMV {
			return curMV, ActionHold
		}
		return next, ActionUp
	}
	if curMV-stepMV < floorMV {
		return curMV, ActionHold
	}
	return curMV - stepMV, ActionDown
}

// Step records one governor decision.
type Step struct {
	VCCINTmV float64
	TempC    float64
	Faults   int64
	PowerW   float64
	Action   string
}

// Governor walks VCCINT toward the minimum safe level under the present
// thermal conditions.
type Governor struct {
	cfg     Config
	task    *dnndk.Task
	probe   *models.Dataset
	adapter *pmbus.Adapter
	trace   []Step
}

// New builds a governor for a loaded task. The probe set is a small
// dedicated canary dataset (it needs no labels: the error signal is the
// fault-event count).
func New(task *dnndk.Task, bench *models.Benchmark, cfg Config) *Governor {
	cfg = cfg.sanitize()
	return &Governor{
		cfg:     cfg,
		task:    task,
		probe:   bench.MakeDataset(cfg.ProbeImages, cfg.Seed^0xd1f5),
		adapter: pmbus.NewAdapter(task.Board().Bus(), board.AddrVCCINT),
	}
}

// Trace returns the decision history.
func (g *Governor) Trace() []Step {
	out := make([]Step, len(g.trace))
	copy(out, g.trace)
	return out
}

// probeFaults classifies the canary set and returns observed fault
// events.
func (g *Governor) probeFaults(seed int64) (int64, error) {
	res, err := g.task.Classify(g.probe, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	return res.MACFaults, nil
}

// record appends a trace step at the current state.
func (g *Governor) record(action string, faults int64) {
	brd := g.task.Board()
	g.trace = append(g.trace, Step{
		VCCINTmV: brd.VCCINTmV(),
		TempC:    brd.DieTempC(),
		Faults:   faults,
		PowerW:   brd.PowerBreakdown().TotalW,
		Action:   action,
	})
}

// Settle walks VCCINT downward from its present level until the canary
// reports faults or the floor is reached, then backs off by the margin.
// It returns the settled voltage. Settle never crosses the configured
// floor, so it cannot crash the board. Each iteration is one application
// of the shared Plan control law: probe the candidate level, then move
// where the plan says.
func (g *Governor) Settle() (float64, error) {
	cfg := g.cfg
	brd := g.task.Board()
	v := brd.VCCINTmV()
	for step := 0; ; step++ {
		next, act := Plan(v, 0, cfg.StepMV, cfg.MarginMV, cfg.FloorMV, silicon.VnomMV)
		if act != ActionDown {
			g.record("floor reached", 0)
			return v, nil
		}
		if err := g.adapter.SetVoltageMV(next); err != nil {
			return v, err
		}
		faults, err := g.probeFaults(cfg.Seed + int64(step))
		if err != nil {
			if errors.Is(err, board.ErrHung) {
				// Defensive: floor should prevent this.
				brd.Reboot()
				return 0, fmt.Errorf("dvfs: crashed at %.0f mV despite floor %.0f", next, cfg.FloorMV)
			}
			return v, err
		}
		if faults > 0 {
			safe, _ := Plan(next, faults, cfg.StepMV, cfg.MarginMV, cfg.FloorMV, silicon.VnomMV)
			if err := g.adapter.SetVoltageMV(safe); err != nil {
				return v, err
			}
			g.record(fmt.Sprintf("faults at %.0f mV; backed off", next), faults)
			// Report the rail's actual (LINEAR16-quantized) level.
			return brd.VCCINTmV(), nil
		}
		v = brd.VCCINTmV()
		g.record("stepped down", 0)
	}
}

// Adjust re-settles after an environmental change (e.g. the fan slowed
// and the die heated up, creating ITD headroom). It first returns to a
// safe level Vnom-side of the current point, then settles again.
func (g *Governor) Adjust() (float64, error) {
	resetMV := g.task.Board().VCCINTmV() + 3*g.cfg.StepMV
	if resetMV > silicon.VnomMV {
		resetMV = silicon.VnomMV
	}
	if err := g.adapter.SetVoltageMV(resetMV); err != nil {
		return 0, err
	}
	g.record("reset for re-settle", 0)
	return g.Settle()
}
