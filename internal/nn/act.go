package nn

import (
	"fmt"
	"math"

	"fpgauv/internal/tensor"
)

// ReLU is the rectified-linear activation (the benchmarks' default, §3.2).
type ReLU struct{}

var _ Op = (*ReLU)(nil)

// Name implements Op.
func (ReLU) Name() string { return "relu" }

// OutShape implements Op.
func (ReLU) OutShape(in []Shape) (Shape, error) { return one("relu", in) }

// ParamCount implements Op.
func (ReLU) ParamCount() int64 { return 0 }

// MACs implements Op.
func (ReLU) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (ReLU) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("relu", in)
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out, nil
}

// Sigmoid is the logistic activation.
type Sigmoid struct{}

var _ Op = (*Sigmoid)(nil)

// Name implements Op.
func (Sigmoid) Name() string { return "sigmoid" }

// OutShape implements Op.
func (Sigmoid) OutShape(in []Shape) (Shape, error) { return one("sigmoid", in) }

// ParamCount implements Op.
func (Sigmoid) ParamCount() int64 { return 0 }

// MACs implements Op.
func (Sigmoid) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (Sigmoid) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("sigmoid", in)
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out, nil
}

// Softmax converts class scores to probabilities (the classifier head).
type Softmax struct{}

var _ Op = (*Softmax)(nil)

// Name implements Op.
func (Softmax) Name() string { return "softmax" }

// OutShape implements Op.
func (Softmax) OutShape(in []Shape) (Shape, error) { return one("softmax", in) }

// ParamCount implements Op.
func (Softmax) ParamCount() int64 { return 0 }

// MACs implements Op.
func (Softmax) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (Softmax) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("softmax", in)
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	if err := SoftmaxInPlace(out.Data()); err != nil {
		return nil, err
	}
	return out, nil
}

// SoftmaxInPlace normalizes class scores to probabilities in place with
// max-shifted exponentiation — the one softmax implementation shared by
// the float reference path and the DPU executor's host-side head.
func SoftmaxInPlace(d []float32) error {
	maxv := float32(math.Inf(-1))
	for _, v := range d {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range d {
		e := math.Exp(float64(v - maxv))
		d[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return fmt.Errorf("nn: softmax degenerate input")
	}
	inv := float32(1 / sum)
	for i := range d {
		d[i] *= inv
	}
	return nil
}

// BatchNorm is inference-mode batch normalization with per-channel folded
// scale/shift (y = x*Scale[c] + Shift[c]). DECENT folds these into the
// preceding convolution during quantization, mirroring the real toolchain.
type BatchNorm struct {
	Scale []float32
	Shift []float32
}

var _ Op = (*BatchNorm)(nil)

// NewBatchNorm returns an identity batch-norm over c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{Scale: make([]float32, c), Shift: make([]float32, c)}
	for i := range bn.Scale {
		bn.Scale[i] = 1
	}
	return bn
}

// Name implements Op.
func (bn *BatchNorm) Name() string { return "batchnorm" }

// OutShape implements Op.
func (bn *BatchNorm) OutShape(in []Shape) (Shape, error) {
	s, err := one("batchnorm", in)
	if err != nil {
		return Shape{}, err
	}
	if s.C != len(bn.Scale) {
		return Shape{}, fmt.Errorf("nn: batchnorm channels %d != %d", s.C, len(bn.Scale))
	}
	return s, nil
}

// ParamCount implements Op.
func (bn *BatchNorm) ParamCount() int64 { return int64(2 * len(bn.Scale)) }

// MACs implements Op.
func (bn *BatchNorm) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (bn *BatchNorm) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("batchnorm", in)
	if err != nil {
		return nil, err
	}
	s, err := shapeOf(x)
	if err != nil {
		return nil, err
	}
	if s.C != len(bn.Scale) {
		return nil, fmt.Errorf("nn: batchnorm channels %d != %d", s.C, len(bn.Scale))
	}
	out := x.Clone()
	d := out.Data()
	hw := s.H * s.W
	for c := 0; c < s.C; c++ {
		sc, sh := bn.Scale[c], bn.Shift[c]
		seg := d[c*hw : (c+1)*hw]
		for i := range seg {
			seg[i] = seg[i]*sc + sh
		}
	}
	return out, nil
}

// Flatten reshapes a feature map into a vector.
type Flatten struct{}

var _ Op = (*Flatten)(nil)

// Name implements Op.
func (Flatten) Name() string { return "flatten" }

// OutShape implements Op.
func (Flatten) OutShape(in []Shape) (Shape, error) {
	s, err := one("flatten", in)
	if err != nil {
		return Shape{}, err
	}
	return Vector(s.Elems()), nil
}

// ParamCount implements Op.
func (Flatten) ParamCount() int64 { return 0 }

// MACs implements Op.
func (Flatten) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (Flatten) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("flatten", in)
	if err != nil {
		return nil, err
	}
	return x.Reshape(x.Size())
}
