package nn

import (
	"fmt"

	"fpgauv/internal/tensor"
)

// Add is the element-wise residual addition (ResNet shortcut joins).
type Add struct{}

var _ Op = (*Add)(nil)

// Name implements Op.
func (Add) Name() string { return "add" }

// OutShape implements Op.
func (Add) OutShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, errArity("add", 2, len(in))
	}
	for _, s := range in[1:] {
		if s != in[0] {
			return Shape{}, fmt.Errorf("nn: add shape mismatch %v vs %v", in[0], s)
		}
	}
	return in[0], nil
}

// ParamCount implements Op.
func (Add) ParamCount() int64 { return 0 }

// MACs implements Op.
func (Add) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (Add) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) < 2 {
		return nil, errArity("add", 2, len(in))
	}
	out := in[0].Clone()
	for _, x := range in[1:] {
		if err := out.Add(x); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Concat concatenates feature maps along the channel axis (Inception
// module joins). Spatial extents must match.
type Concat struct{}

var _ Op = (*Concat)(nil)

// Name implements Op.
func (Concat) Name() string { return "concat" }

// OutShape implements Op.
func (Concat) OutShape(in []Shape) (Shape, error) {
	if len(in) < 2 {
		return Shape{}, errArity("concat", 2, len(in))
	}
	out := in[0]
	for _, s := range in[1:] {
		if s.H != out.H || s.W != out.W {
			return Shape{}, fmt.Errorf("nn: concat spatial mismatch %v vs %v", in[0], s)
		}
		out.C += s.C
	}
	return out, nil
}

// ParamCount implements Op.
func (Concat) ParamCount() int64 { return 0 }

// MACs implements Op.
func (Concat) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (Concat) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) < 2 {
		return nil, errArity("concat", 2, len(in))
	}
	shapes := make([]Shape, len(in))
	for i, x := range in {
		s, err := shapeOf(x)
		if err != nil {
			return nil, err
		}
		shapes[i] = s
	}
	os, err := Concat{}.OutShape(shapes)
	if err != nil {
		return nil, err
	}
	out := tensor.New(os.C, os.H, os.W)
	od := out.Data()
	off := 0
	for _, x := range in {
		n := x.Size()
		copy(od[off:off+n], x.Data())
		off += n
	}
	return out, nil
}
