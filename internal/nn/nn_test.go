package nn

import (
	"math"
	"math/rand"
	"testing"

	"fpgauv/internal/tensor"
)

func TestConvShapeAndMACs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 3, 8, 3, 1, 1)
	out, err := c.OutShape([]Shape{{C: 3, H: 32, W: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 8, H: 32, W: 32}) {
		t.Fatalf("out shape %v", out)
	}
	wantMACs := int64(32*32) * 8 * 3 * 9
	if got := c.MACs([]Shape{{C: 3, H: 32, W: 32}}); got != wantMACs {
		t.Fatalf("MACs = %d, want %d", got, wantMACs)
	}
	if c.ParamCount() != int64(8*3*9+8) {
		t.Fatalf("params = %d", c.ParamCount())
	}
	if _, err := c.OutShape([]Shape{{C: 4, H: 32, W: 32}}); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1-channel 3x3 input, 1 output channel, 2x2 kernel of ones,
	// stride 1, no pad: each output = sum of the 2x2 window.
	c := &Conv2D{InC: 1, OutC: 1, Kernel: 2, Stride: 1, Pad: 0,
		Weights: tensor.New(1, 1, 2, 2), Bias: []float32{0}}
	c.Weights.Fill(1)
	in, _ := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	out, err := c.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("out[%d] = %f, want %f", i, out.Data()[i], w)
		}
	}
}

func TestConvPadding(t *testing.T) {
	c := &Conv2D{InC: 1, OutC: 1, Kernel: 3, Stride: 1, Pad: 1,
		Weights: tensor.New(1, 1, 3, 3), Bias: []float32{0.5}}
	c.Weights.Set(1, 0, 0, 1, 1) // identity kernel
	in, _ := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	out, err := c.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(1) != 2 || out.Dim(2) != 2 {
		t.Fatalf("padded conv should preserve size, got %v", out.Dims())
	}
	if out.At(0, 0, 0) != 1.5 {
		t.Fatalf("identity kernel + bias: got %f", out.At(0, 0, 0))
	}
}

func TestDense(t *testing.T) {
	d := &Dense{In: 3, Out: 2, Weights: tensor.New(2, 3), Bias: []float32{1, -1}}
	w := d.Weights.Data()
	copy(w, []float32{1, 0, 0, 0, 1, 0})
	in, _ := tensor.FromSlice([]float32{5, 7, 9}, 3)
	out, err := d.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 6 || out.At(1) != 6 {
		t.Fatalf("dense out = %v", out.Data())
	}
	if d.MACs(nil) != 6 {
		t.Fatal("dense MACs")
	}
}

func TestPooling(t *testing.T) {
	in, _ := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4)
	mp := &Pool2D{Kind: MaxPool, Kernel: 2, Stride: 2}
	out, err := mp.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("maxpool[%d] = %f, want %f", i, out.Data()[i], w)
		}
	}
	ap := &Pool2D{Kind: AvgPool, Kernel: 2, Stride: 2}
	out, err = ap.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 3.5 {
		t.Fatalf("avgpool[0] = %f", out.Data()[0])
	}
	gp := &Pool2D{Kind: AvgPool, Global: true}
	out, err = gp.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 1 || out.Data()[0] != 8.5 {
		t.Fatalf("global avgpool = %v", out.Data())
	}
}

func TestActivations(t *testing.T) {
	in, _ := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	out, err := ReLU{}.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 0 || out.At(2) != 2 {
		t.Fatal("relu")
	}
	if in.At(0) != -1 {
		t.Fatal("relu must not mutate input")
	}
	out, err = Sigmoid{}.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.At(1))-0.5) > 1e-6 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	out, err = Softmax{}.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatal("softmax negative")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum = %f", sum)
	}
}

func TestBatchNorm(t *testing.T) {
	bn := NewBatchNorm(2)
	bn.Scale[0] = 2
	bn.Shift[1] = 1
	in, _ := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 1, 2)
	out, err := bn.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, 4, 5}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("bn[%d] = %f, want %f", i, out.Data()[i], w)
		}
	}
	if _, err := bn.Forward([]*tensor.Tensor{tensor.New(3, 1, 1)}); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func TestAddAndConcat(t *testing.T) {
	a, _ := tensor.FromSlice([]float32{1, 2}, 2, 1, 1)
	b, _ := tensor.FromSlice([]float32{10, 20}, 2, 1, 1)
	out, err := Add{}.Forward([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 11 || out.At(1, 0, 0) != 22 {
		t.Fatal("add values")
	}
	cat, err := Concat{}.Forward([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Dim(0) != 4 {
		t.Fatalf("concat channels = %d", cat.Dim(0))
	}
	if _, err := (Add{}).OutShape([]Shape{{C: 1, H: 1, W: 1}}); err == nil {
		t.Fatal("add arity")
	}
	if _, err := (Concat{}).OutShape([]Shape{{C: 1, H: 2, W: 2}, {C: 1, H: 3, W: 3}}); err == nil {
		t.Fatal("concat spatial mismatch")
	}
}

func buildTinyNet(t *testing.T) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := NewGraph(Shape{C: 1, H: 8, W: 8})
	g.Add("conv1", NewConv2D(rng, 1, 4, 3, 1, 1))
	g.Add("relu1", ReLU{})
	g.Add("pool1", &Pool2D{Kind: MaxPool, Kernel: 2, Stride: 2})
	g.Add("flatten", Flatten{})
	g.Add("fc", NewDense(rng, 4*4*4, 3))
	g.Add("softmax", Softmax{})
	return g
}

func TestGraphForward(t *testing.T) {
	g := buildTinyNet(t)
	if g.WeightLayers() != 2 {
		t.Fatalf("weight layers = %d", g.WeightLayers())
	}
	if g.OutputShape() != Vector(3) {
		t.Fatalf("output shape %v", g.OutputShape())
	}
	in := tensor.New(1, 8, 8)
	in.FillRandn(rand.New(rand.NewSource(2)), 1)
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 {
		t.Fatalf("out size %d", out.Size())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatal("softmax output should sum to 1")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDeterminism(t *testing.T) {
	g := buildTinyNet(t)
	in := tensor.New(1, 8, 8)
	in.FillRandn(rand.New(rand.NewSource(9)), 1)
	a, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("inference must be deterministic")
		}
	}
}

func TestGraphBranching(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGraph(Shape{C: 2, H: 4, W: 4})
	b1 := g.Add("branch1", NewConv2D(rng, 2, 3, 1, 1, 0), InputID)
	b2 := g.Add("branch2", NewConv2D(rng, 2, 5, 1, 1, 0), InputID)
	g.Add("join", Concat{}, b1, b2)
	if g.OutputShape().C != 8 {
		t.Fatalf("concat output C = %d", g.OutputShape().C)
	}
	in := tensor.New(2, 4, 4)
	in.FillRandn(rng, 1)
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 8 {
		t.Fatal("branch output")
	}
}

func TestGraphResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGraph(Shape{C: 4, H: 4, W: 4})
	c1 := g.Add("conv1", NewConv2D(rng, 4, 4, 3, 1, 1), InputID)
	g.Add("relu", ReLU{}, c1)
	g.Add("residual", Add{}, NodeID(1), InputID)
	in := tensor.New(4, 4, 4)
	in.FillRandn(rng, 1)
	if _, err := g.Forward(in); err != nil {
		t.Fatal(err)
	}
	if g.TotalMACs() == 0 || g.TotalParams() == 0 {
		t.Fatal("accounting")
	}
}

func TestGraphSetOutput(t *testing.T) {
	g := buildTinyNet(t)
	if err := g.SetOutput(NodeID(99)); err == nil {
		t.Fatal("bad output id must error")
	}
	if err := g.SetOutput(NodeID(4)); err != nil {
		t.Fatal(err)
	}
	if g.Output() != NodeID(4) {
		t.Fatal("output not set")
	}
}

func TestGraphBadWiringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on malformed graph")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	g := NewGraph(Shape{C: 1, H: 4, W: 4})
	g.Add("conv", NewConv2D(rng, 3, 4, 3, 1, 1)) // channel mismatch: 1 != 3
}
