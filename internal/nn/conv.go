package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fpgauv/internal/tensor"
)

// Conv2D is a 2-D convolution with square kernels, OIHW weights and
// per-output-channel bias.
type Conv2D struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	// Weights has dims [OutC, InC, Kernel, Kernel]; Bias has len OutC.
	Weights *tensor.Tensor
	Bias    []float32
}

var _ Op = (*Conv2D)(nil)

// NewConv2D allocates a convolution with He-initialized weights drawn
// from rng.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC, kernel, kernel)
	std := math.Sqrt(2.0 / float64(inC*kernel*kernel))
	w.FillRandn(rng, std)
	return &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		Weights: w,
		Bias:    make([]float32, outC),
	}
}

// Name implements Op.
func (c *Conv2D) Name() string { return "conv" }

// OutShape implements Op.
func (c *Conv2D) OutShape(in []Shape) (Shape, error) {
	s, err := one("conv", in)
	if err != nil {
		return Shape{}, err
	}
	if s.C != c.InC {
		return Shape{}, fmt.Errorf("nn: conv input channels %d != %d", s.C, c.InC)
	}
	oh := (s.H+2*c.Pad-c.Kernel)/c.Stride + 1
	ow := (s.W+2*c.Pad-c.Kernel)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return Shape{}, fmt.Errorf("nn: conv output collapses for input %v kernel %d stride %d", s, c.Kernel, c.Stride)
	}
	return Shape{C: c.OutC, H: oh, W: ow}, nil
}

// ParamCount implements Op.
func (c *Conv2D) ParamCount() int64 {
	return int64(c.OutC*c.InC*c.Kernel*c.Kernel) + int64(c.OutC)
}

// MACs implements Op.
func (c *Conv2D) MACs(in []Shape) int64 {
	out, err := c.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(out.H*out.W) * int64(c.OutC) * int64(c.InC*c.Kernel*c.Kernel)
}

// Forward implements Op (float32 reference path).
func (c *Conv2D) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("conv", in)
	if err != nil {
		return nil, err
	}
	s, err := shapeOf(x)
	if err != nil {
		return nil, err
	}
	os, err := c.OutShape([]Shape{s})
	if err != nil {
		return nil, err
	}
	out := tensor.New(os.C, os.H, os.W)
	xd, wd, od := x.Data(), c.Weights.Data(), out.Data()
	k, st, pad := c.Kernel, c.Stride, c.Pad
	for oc := 0; oc < os.C; oc++ {
		bias := c.Bias[oc]
		wBase := oc * c.InC * k * k
		for oy := 0; oy < os.H; oy++ {
			for ox := 0; ox < os.W; ox++ {
				acc := bias
				iy0 := oy*st - pad
				ix0 := ox*st - pad
				for ic := 0; ic < c.InC; ic++ {
					xBase := ic * s.H * s.W
					wcBase := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= s.H {
							continue
						}
						rowX := xBase + iy*s.W
						rowW := wcBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= s.W {
								continue
							}
							acc += xd[rowX+ix] * wd[rowW+kx]
						}
					}
				}
				od[(oc*os.H+oy)*os.W+ox] = acc
			}
		}
	}
	return out, nil
}

// Dense is a fully-connected layer. Input feature maps are flattened.
type Dense struct {
	In, Out int
	// Weights has dims [Out, In]; Bias has len Out.
	Weights *tensor.Tensor
	Bias    []float32
}

var _ Op = (*Dense)(nil)

// NewDense allocates a fully-connected layer with He-initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	w := tensor.New(out, in)
	w.FillRandn(rng, math.Sqrt(2.0/float64(in)))
	return &Dense{In: in, Out: out, Weights: w, Bias: make([]float32, out)}
}

// Name implements Op.
func (d *Dense) Name() string { return "fc" }

// OutShape implements Op.
func (d *Dense) OutShape(in []Shape) (Shape, error) {
	s, err := one("fc", in)
	if err != nil {
		return Shape{}, err
	}
	if s.Elems() != d.In {
		return Shape{}, fmt.Errorf("nn: fc input %v (%d elems) != %d", s, s.Elems(), d.In)
	}
	return Vector(d.Out), nil
}

// ParamCount implements Op.
func (d *Dense) ParamCount() int64 { return int64(d.In*d.Out) + int64(d.Out) }

// MACs implements Op.
func (d *Dense) MACs(in []Shape) int64 { return int64(d.In) * int64(d.Out) }

// Forward implements Op.
func (d *Dense) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("fc", in)
	if err != nil {
		return nil, err
	}
	if x.Size() != d.In {
		return nil, fmt.Errorf("nn: fc input size %d != %d", x.Size(), d.In)
	}
	out := tensor.New(d.Out)
	xd, wd, od := x.Data(), d.Weights.Data(), out.Data()
	for o := 0; o < d.Out; o++ {
		acc := d.Bias[o]
		row := wd[o*d.In : (o+1)*d.In]
		for i, v := range xd {
			acc += v * row[i]
		}
		od[o] = acc
	}
	return out, nil
}
