package nn

import (
	"fmt"

	"fpgauv/internal/tensor"
)

// NodeID identifies a node in a Graph.
type NodeID int

// InputID is the pseudo-node representing the graph input.
const InputID NodeID = -1

// Node is one operator instance in the DAG.
type Node struct {
	ID     NodeID
	Label  string
	Op     Op
	Inputs []NodeID
}

// Graph is a single-input, single-output operator DAG built in topological
// order: a node may only consume the graph input or earlier nodes.
type Graph struct {
	inShape Shape
	nodes   []Node
	output  NodeID
	shapes  []Shape // per-node output shapes, computed on Add
}

// NewGraph starts a graph for the given input shape.
func NewGraph(input Shape) *Graph {
	return &Graph{inShape: input, output: InputID}
}

// InputShape returns the graph's input shape.
func (g *Graph) InputShape() Shape { return g.inShape }

// Add appends an operator consuming the given inputs (InputID for the
// graph input) and returns its node id. The output defaults to the last
// node added. Add panics on shape errors: graphs are constructed by
// model-zoo code where a malformed architecture is a programming bug.
func (g *Graph) Add(label string, op Op, inputs ...NodeID) NodeID {
	if len(inputs) == 0 {
		if len(g.nodes) == 0 {
			inputs = []NodeID{InputID}
		} else {
			inputs = []NodeID{NodeID(len(g.nodes) - 1)}
		}
	}
	inShapes := make([]Shape, len(inputs))
	for i, id := range inputs {
		s, err := g.shapeAt(id)
		if err != nil {
			panic(fmt.Sprintf("nn: graph %q input %d: %v", label, id, err))
		}
		inShapes[i] = s
	}
	out, err := op.OutShape(inShapes)
	if err != nil {
		panic(fmt.Sprintf("nn: graph node %q: %v", label, err))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label, Op: op, Inputs: append([]NodeID(nil), inputs...)})
	g.shapes = append(g.shapes, out)
	g.output = id
	return id
}

// shapeAt resolves a node's output shape.
func (g *Graph) shapeAt(id NodeID) (Shape, error) {
	if id == InputID {
		return g.inShape, nil
	}
	if id < 0 || int(id) >= len(g.nodes) {
		return Shape{}, fmt.Errorf("unknown node %d", id)
	}
	return g.shapes[id], nil
}

// SetOutput overrides the output node.
func (g *Graph) SetOutput(id NodeID) error {
	if _, err := g.shapeAt(id); err != nil {
		return err
	}
	g.output = id
	return nil
}

// Output returns the output node id.
func (g *Graph) Output() NodeID { return g.output }

// Nodes returns the graph nodes in topological order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodeShape returns the output shape of a node.
func (g *Graph) NodeShape(id NodeID) (Shape, error) { return g.shapeAt(id) }

// OutputShape returns the shape of the graph output.
func (g *Graph) OutputShape() Shape {
	s, _ := g.shapeAt(g.output)
	return s
}

// InputShapesOf returns the input shapes feeding a node.
func (g *Graph) InputShapesOf(n Node) []Shape {
	shapes := make([]Shape, len(n.Inputs))
	for i, id := range n.Inputs {
		shapes[i], _ = g.shapeAt(id)
	}
	return shapes
}

// TotalParams sums learnable parameters over all nodes.
func (g *Graph) TotalParams() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Op.ParamCount()
	}
	return total
}

// TotalMACs sums multiply-accumulates for one inference.
func (g *Graph) TotalMACs() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Op.MACs(g.InputShapesOf(n))
	}
	return total
}

// WeightLayers counts conv and fully-connected layers — the layer-count
// convention of the paper's Table 1.
func (g *Graph) WeightLayers() int {
	count := 0
	for _, n := range g.nodes {
		switch n.Op.(type) {
		case *Conv2D, *Dense:
			count++
		}
	}
	return count
}

// Forward runs the float32 reference path on one input.
func (g *Graph) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	results := make([]*tensor.Tensor, len(g.nodes))
	fetch := func(id NodeID) (*tensor.Tensor, error) {
		if id == InputID {
			return input, nil
		}
		if id < 0 || int(id) >= len(results) || results[id] == nil {
			return nil, fmt.Errorf("nn: missing result for node %d", id)
		}
		return results[id], nil
	}
	for i, n := range g.nodes {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for j, id := range n.Inputs {
			x, err := fetch(id)
			if err != nil {
				return nil, err
			}
			ins[j] = x
		}
		out, err := n.Op.Forward(ins)
		if err != nil {
			return nil, fmt.Errorf("nn: node %q: %w", n.Label, err)
		}
		results[i] = out
	}
	return fetch(g.output)
}

// ForwardAll runs the float32 reference path and returns every node's
// output (indexed by NodeID). The quantization calibrator uses this to
// observe per-node activation ranges.
func (g *Graph) ForwardAll(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	results := make([]*tensor.Tensor, len(g.nodes))
	for i, n := range g.nodes {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for j, id := range n.Inputs {
			if id == InputID {
				ins[j] = input
				continue
			}
			if id < 0 || int(id) >= i || results[id] == nil {
				return nil, fmt.Errorf("nn: node %q consumes unavailable node %d", n.Label, id)
			}
			ins[j] = results[id]
		}
		out, err := n.Op.Forward(ins)
		if err != nil {
			return nil, fmt.Errorf("nn: node %q: %w", n.Label, err)
		}
		results[i] = out
	}
	return results, nil
}

// Validate re-checks all node shapes; useful after mutating weights in
// place (pruning, quantization folding).
func (g *Graph) Validate() error {
	for i, n := range g.nodes {
		out, err := n.Op.OutShape(g.InputShapesOf(n))
		if err != nil {
			return fmt.Errorf("nn: node %d %q: %w", i, n.Label, err)
		}
		if out != g.shapes[i] {
			return fmt.Errorf("nn: node %d %q shape drifted: %v vs %v", i, n.Label, out, g.shapes[i])
		}
	}
	return nil
}
