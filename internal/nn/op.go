// Package nn implements the CNN layer graph: convolution, pooling,
// fully-connected, activation, batch-normalization, residual-add and
// concatenation operators composed into a DAG, with float32 reference
// inference plus parameter/MAC accounting (the basis for the paper's GOPs
// numbers). Feature maps are CHW tensors; weights are OIHW.
package nn

import (
	"fmt"

	"fpgauv/internal/tensor"
)

// Shape describes a feature-map (channels, height, width). Vectors use
// C=len, H=W=1.
type Shape struct {
	C, H, W int
}

// Elems returns the element count of the shape.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Vector returns a rank-1 shape of n elements.
func Vector(n int) Shape { return Shape{C: n, H: 1, W: 1} }

// Op is a graph operator. Unary operators receive exactly one input;
// combinators (Add, Concat) receive several.
type Op interface {
	// Name returns the operator's type name (e.g. "conv").
	Name() string
	// OutShape computes the output shape for the given input shapes.
	OutShape(in []Shape) (Shape, error)
	// Forward runs the float32 reference path.
	Forward(in []*tensor.Tensor) (*tensor.Tensor, error)
	// ParamCount returns the number of learnable parameters.
	ParamCount() int64
	// MACs returns the multiply-accumulate count for the given inputs.
	MACs(in []Shape) int64
}

// errArity builds the canonical arity error.
func errArity(op string, want, got int) error {
	return fmt.Errorf("nn: %s expects %d input(s), got %d", op, want, got)
}

// one extracts the single input of a unary op.
func one[T any](op string, in []T) (T, error) {
	var zero T
	if len(in) != 1 {
		return zero, errArity(op, 1, len(in))
	}
	return in[0], nil
}

// shapeOf infers the Shape of a CHW or vector tensor.
func shapeOf(t *tensor.Tensor) (Shape, error) {
	switch t.Rank() {
	case 1:
		return Vector(t.Dim(0)), nil
	case 3:
		return Shape{C: t.Dim(0), H: t.Dim(1), W: t.Dim(2)}, nil
	default:
		return Shape{}, fmt.Errorf("nn: unsupported tensor rank %d", t.Rank())
	}
}
