package nn

import (
	"fmt"
	"math"

	"fpgauv/internal/tensor"
)

// PoolKind selects max or average pooling.
type PoolKind int

// Pooling kinds.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D is a 2-D pooling layer with square windows.
type Pool2D struct {
	Kind   PoolKind
	Kernel int
	Stride int
	// Global pools the whole spatial extent to 1×1, ignoring
	// Kernel/Stride (used by GoogleNet/ResNet heads).
	Global bool
}

var _ Op = (*Pool2D)(nil)

// Name implements Op.
func (p *Pool2D) Name() string {
	if p.Kind == MaxPool {
		return "maxpool"
	}
	return "avgpool"
}

// OutShape implements Op.
func (p *Pool2D) OutShape(in []Shape) (Shape, error) {
	s, err := one(p.Name(), in)
	if err != nil {
		return Shape{}, err
	}
	if p.Global {
		return Shape{C: s.C, H: 1, W: 1}, nil
	}
	if p.Kernel <= 0 || p.Stride <= 0 {
		return Shape{}, fmt.Errorf("nn: pool kernel/stride must be positive")
	}
	oh := (s.H-p.Kernel)/p.Stride + 1
	ow := (s.W-p.Kernel)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		return Shape{}, fmt.Errorf("nn: pool output collapses for input %v", s)
	}
	return Shape{C: s.C, H: oh, W: ow}, nil
}

// ParamCount implements Op.
func (p *Pool2D) ParamCount() int64 { return 0 }

// MACs implements Op. Pooling comparisons/adds are not MACs; the DPU
// schedules them on dedicated units, so they contribute zero to GOPs
// accounting (consistent with how DNNDK reports operations).
func (p *Pool2D) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (p *Pool2D) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one(p.Name(), in)
	if err != nil {
		return nil, err
	}
	s, err := shapeOf(x)
	if err != nil {
		return nil, err
	}
	os, err := p.OutShape([]Shape{s})
	if err != nil {
		return nil, err
	}
	k, st := p.Kernel, p.Stride
	if p.Global {
		k, st = s.H, 1
		if s.W > k {
			k = s.W
		}
	}
	out := tensor.New(os.C, os.H, os.W)
	xd, od := x.Data(), out.Data()
	for c := 0; c < s.C; c++ {
		for oy := 0; oy < os.H; oy++ {
			for ox := 0; ox < os.W; ox++ {
				var acc float64
				best := math.Inf(-1)
				count := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*st + ky
					if iy >= s.H {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*st + kx
						if ix >= s.W {
							continue
						}
						v := float64(xd[(c*s.H+iy)*s.W+ix])
						acc += v
						if v > best {
							best = v
						}
						count++
					}
				}
				var res float64
				if p.Kind == MaxPool {
					res = best
				} else if count > 0 {
					res = acc / float64(count)
				}
				od[(c*os.H+oy)*os.W+ox] = float32(res)
			}
		}
	}
	return out, nil
}
