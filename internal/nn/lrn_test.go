package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpgauv/internal/tensor"
)

func TestLRNKnownValue(t *testing.T) {
	// Single channel: window covers just that channel.
	l := &LRN{Size: 1, K: 1, Alpha: 1, Beta: 1}
	in, _ := tensor.FromSlice([]float32{2}, 1, 1, 1)
	out, err := l.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	// y = 2 / (1 + 1/1 * 4)^1 = 0.4
	if math.Abs(float64(out.At(0, 0, 0))-0.4) > 1e-6 {
		t.Fatalf("lrn = %f, want 0.4", out.At(0, 0, 0))
	}
}

func TestLRNPreservesShapeAndSign(t *testing.T) {
	l := NewLRN()
	in := tensor.New(8, 4, 4)
	in.FillRandn(rand.New(rand.NewSource(3)), 2)
	out, err := l.Forward([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != in.Size() {
		t.Fatal("shape")
	}
	for i, v := range out.Data() {
		x := in.Data()[i]
		if (x > 0 && v <= 0) || (x < 0 && v >= 0) {
			t.Fatalf("lrn must preserve sign: x=%f y=%f", x, v)
		}
		if math.Abs(float64(v)) > math.Abs(float64(x)) {
			t.Fatalf("lrn must not amplify with K>=1: x=%f y=%f", x, v)
		}
	}
	if l.ParamCount() != 0 || l.MACs(nil) != 0 {
		t.Fatal("lrn accounting")
	}
}

func TestLRNShapeValidation(t *testing.T) {
	l := &LRN{Size: 0}
	if _, err := l.OutShape([]Shape{{C: 4, H: 2, W: 2}}); err == nil {
		t.Fatal("zero window must fail")
	}
	if _, err := NewLRN().OutShape(nil); err == nil {
		t.Fatal("arity check")
	}
}

// Property: LRN output magnitude is bounded by input/K^Beta and the
// normalization is monotone — larger neighborhoods shrink values more.
func TestLRNBoundedProperty(t *testing.T) {
	l := NewLRN()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tensor.New(6, 2, 2)
		in.FillRandn(rng, 3)
		out, err := l.Forward([]*tensor.Tensor{in})
		if err != nil {
			return false
		}
		bound := 1 / math.Pow(l.K, l.Beta)
		for i, v := range out.Data() {
			if math.Abs(float64(v)) > math.Abs(float64(in.Data()[i]))*bound+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
