package nn

import (
	"fmt"
	"math"

	"fpgauv/internal/tensor"
)

// LRN is AlexNet-style local response normalization across channels:
//
//	y[c] = x[c] / (K + Alpha/Size * Σ_{c' in window} x[c']²)^Beta
//
// The DPU has no native LRN unit; like softmax it executes on the host
// (DNNDK schedules it on the ARM cores), so it contributes activation
// traffic but no MACs to the GOPs accounting.
type LRN struct {
	// Size is the cross-channel window (AlexNet: 5).
	Size int
	// K, Alpha, Beta are the normalization constants
	// (AlexNet: 2, 1e-4, 0.75).
	K     float64
	Alpha float64
	Beta  float64
}

var _ Op = (*LRN)(nil)

// NewLRN returns the AlexNet-default local response normalization.
func NewLRN() *LRN {
	return &LRN{Size: 5, K: 2, Alpha: 1e-4, Beta: 0.75}
}

// Name implements Op.
func (l *LRN) Name() string { return "lrn" }

// OutShape implements Op.
func (l *LRN) OutShape(in []Shape) (Shape, error) {
	s, err := one("lrn", in)
	if err != nil {
		return Shape{}, err
	}
	if l.Size <= 0 {
		return Shape{}, fmt.Errorf("nn: lrn window must be positive")
	}
	return s, nil
}

// ParamCount implements Op.
func (l *LRN) ParamCount() int64 { return 0 }

// MACs implements Op.
func (l *LRN) MACs(in []Shape) int64 { return 0 }

// Forward implements Op.
func (l *LRN) Forward(in []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := one("lrn", in)
	if err != nil {
		return nil, err
	}
	s, err := shapeOf(x)
	if err != nil {
		return nil, err
	}
	out := tensor.New(s.C, s.H, s.W)
	xd, od := x.Data(), out.Data()
	hw := s.H * s.W
	half := l.Size / 2
	for p := 0; p < hw; p++ {
		for c := 0; c < s.C; c++ {
			var sum float64
			lo := c - half
			hi := c + half
			if lo < 0 {
				lo = 0
			}
			if hi >= s.C {
				hi = s.C - 1
			}
			for cc := lo; cc <= hi; cc++ {
				v := float64(xd[cc*hw+p])
				sum += v * v
			}
			denom := math.Pow(l.K+l.Alpha/float64(l.Size)*sum, l.Beta)
			od[c*hw+p] = float32(float64(xd[c*hw+p]) / denom)
		}
	}
	return out, nil
}
