package load

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// The engine must fire every shot, partition outcomes by error class,
// and keep firing at the offered rate while shots are slow (open loop:
// a stalled target never throttles the generator).
func TestRunOpenLoop(t *testing.T) {
	var calls atomic.Int64
	res := Run(context.Background(), Options{Rate: 2000, Requests: 40}, func(ctx context.Context, seq int) error {
		calls.Add(1)
		switch {
		case seq%4 == 1:
			return ErrShed
		case seq%4 == 3:
			return errors.New("boom")
		}
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if got := calls.Load(); got != 40 {
		t.Fatalf("shots fired = %d, want 40", got)
	}
	if res.Sent != 40 || res.Served != 20 || res.Shed != 10 || res.Failed != 10 {
		t.Errorf("sent/served/shed/failed = %d/%d/%d/%d, want 40/20/10/10",
			res.Sent, res.Served, res.Shed, res.Failed)
	}
	if res.ShedRate != 0.25 {
		t.Errorf("shed rate = %v, want 0.25", res.ShedRate)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("percentiles unsorted: p50=%v p99=%v", res.P50, res.P99)
	}
	// 40 shots at 2000/s is a 20ms schedule; even with 2ms shots the
	// open loop must finish near the schedule, not 40×2ms serialized.
	if res.Elapsed > 200*time.Millisecond {
		t.Errorf("elapsed %v: generator appears closed-loop", res.Elapsed)
	}
}

// Wrapped shed errors must classify as sheds, and cancellation must
// stop scheduling.
func TestRunShedWrappingAndCancel(t *testing.T) {
	res := Run(context.Background(), Options{Rate: 5000, Requests: 10}, func(ctx context.Context, seq int) error {
		return &wrapErr{ErrShed}
	})
	if res.Shed != 10 {
		t.Errorf("wrapped sheds = %d, want 10", res.Shed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = Run(ctx, Options{Rate: 10, Requests: 1000}, func(ctx context.Context, seq int) error { return nil })
	if res.Sent > 1 {
		t.Errorf("canceled run sent %d shots", res.Sent)
	}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "shot: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
