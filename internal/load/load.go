// Package load is an open-loop request generator for measuring a
// scheduler's behavior at and past saturation. Open-loop means shots
// fire on an absolute schedule derived from the offered rate, never
// gated on earlier responses: a closed loop (fire, wait, fire) slows
// itself down exactly when the system under test backs up, hiding the
// queueing it should be measuring (coordinated omission). Here a shot
// that finds the system slow still fires on time in its own goroutine,
// and latency is measured from the scheduled fire time — so backlog
// shows up in the percentiles instead of disappearing from them.
package load

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrShed classifies a shot refused by admission control. Shot
// functions return it (or wrap it) when the target sheds the request —
// an HTTP 429, a fleet.ErrSaturated — so the run separates "the system
// said no quickly" from "the system failed".
var ErrShed = errors.New("load: request shed")

// Options parameterizes one open-loop run.
type Options struct {
	// Rate is the offered load in requests per second (required).
	Rate float64
	// Requests is the total number of shots to fire (required).
	Requests int
	// Warmup excludes the first N shots from the latency percentiles
	// (they still count in Sent/Served/Shed).
	Warmup int
	// Timeout bounds each shot's context (0 = inherit the run context).
	Timeout time.Duration
}

// Result summarizes one run.
type Result struct {
	// Sent is the number of shots fired; Served/Shed/Failed partition
	// their outcomes.
	Sent, Served, Shed, Failed int
	// P50/P90/P99 are served-shot latencies measured from each shot's
	// *scheduled* fire time, so queueing delay is included.
	P50, P90, P99 time.Duration
	// Elapsed is the wall-clock span from first scheduled shot to last
	// completion.
	Elapsed time.Duration
	// OfferedRPS and ServedRPS are the realized offered and served
	// throughputs; ShedRate is Shed/Sent.
	OfferedRPS, ServedRPS float64
	ShedRate              float64
}

// Run fires opts.Requests shots at opts.Rate, classifying each shot's
// error as served (nil), shed (ErrShed via errors.Is) or failed, and
// reports latency percentiles over the served shots. The run stops
// early when ctx is canceled; shots already in flight are awaited.
func Run(ctx context.Context, opts Options, shot func(ctx context.Context, seq int) error) Result {
	if opts.Rate <= 0 || opts.Requests <= 0 {
		return Result{}
	}
	interval := time.Duration(float64(time.Second) / opts.Rate)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       Result
		wg        sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < opts.Requests; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				i = opts.Requests // stop scheduling; fall through to wait
				continue
			}
		} else if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(seq int, scheduled time.Time) {
			defer wg.Done()
			sctx := ctx
			if opts.Timeout > 0 {
				var cancel context.CancelFunc
				sctx, cancel = context.WithTimeout(ctx, opts.Timeout)
				defer cancel()
			}
			err := shot(sctx, seq)
			lat := time.Since(scheduled)
			mu.Lock()
			defer mu.Unlock()
			res.Sent++
			switch {
			case err == nil:
				res.Served++
				if seq >= opts.Warmup {
					latencies = append(latencies, lat)
				}
			case errors.Is(err, ErrShed):
				res.Shed++
			default:
				res.Failed++
			}
		}(i, scheduled)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	res.P50, res.P90, res.P99 = pct(0.50), pct(0.90), pct(0.99)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.OfferedRPS = float64(res.Sent) / secs
		res.ServedRPS = float64(res.Served) / secs
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	return res
}
