// Package power models the on-chip power consumption of the ZCU102's
// programmable logic under reduced-voltage operation. It implements
//
//	P_total = P_dynamic + P_static
//	P_dynamic = Cdyn · V² · f · mix(utilization, stalls) · act(V)
//	P_static  = Ps0 · (V/Vnom) · e^{β(V−Vnom)} · e^{kT(T−Tref)}
//
// plus a separate (tiny) VCCBRAM rail term: on UltraScale+ parts the
// power-gated BRAMs contribute <0.1% of on-chip power (paper §4.1), so
// VCCINT dominates and is the rail the paper underscales.
//
// act(V) is the critical-region activity droop: below Vmin, timing faults
// in DPU control paths cause pipeline flushes/stalls that reduce effective
// switching activity. This is the documented mechanism behind the paper's
// measured 43% extra power-efficiency between Vmin and Vcrash at constant
// 333 MHz, which a plain CV²f model cannot produce (see DESIGN.md,
// "Honest-calibration notes").
package power

import "math"

// Calibration constants. Each targets a number in the paper; see also
// DESIGN.md §3.
const (
	// VnomMV is the nominal VCCINT level.
	VnomMV = 850.0
	// RefTempC is the die temperature of the paper's ambient runs.
	RefTempC = 34.0
	// RefFreqMHz is the default DPU clock.
	RefFreqMHz = 333.0

	// DynRefW is the dynamic VCCINT power of the baseline 3×B4096
	// design at (Vnom, 333 MHz, benchmark-average utilization).
	// DynRefW + StaticRefW = 12.59 W, the paper's §4.1 measurement.
	DynRefW = 9.86
	// StaticRefW is the static (leakage) VCCINT power at (Vnom, 34 °C).
	// Its share (~22%) is what makes the measured efficiency gain reach
	// 2.6× at Vmin rather than the 2.2× a pure-V² model would give.
	StaticRefW = 2.73

	// LeakageBetaPerV is the exponential voltage slope of leakage.
	// With 6.0/V, static power falls ~5.4× from 850 mV to 570 mV,
	// which places the Vmin efficiency gain at the paper's 2.6×.
	LeakageBetaPerV = 6.0
	// LeakageKTPerC is the exponential temperature slope of leakage:
	// 0.00117/°C reproduces the paper's §7.1 total-power sensitivity of
	// ≈0.46% over 34→52 °C at 850 mV (and a much smaller sensitivity
	// at low voltage, because the static share shrinks).
	LeakageKTPerC = 0.00117

	// StallActivity is the fraction of full switching activity that
	// persists during memory-stall cycles (clock tree and idle pipeline
	// toggling; the DPU does not clock-gate on DDR waits).
	StallActivity = 0.30
	// BaseComputeFrac is the compute-bound share of execution time of
	// the benchmark-average workload at 333 MHz. Fitted from the
	// paper's Table 2 GOPs column (0.94/0.83/0.70 at 300/250/200 MHz
	// implies ≈58% compute / 42% memory at the default clock).
	BaseComputeFrac = 0.58

	// CriticalActivityDroop is the maximum relative activity reduction
	// reached at Vcrash when running at full frequency with faults
	// (pipeline flushes). 0.217 puts the total efficiency gain at
	// Vcrash at the paper's ≈3.7× (2.6× × 1.43).
	CriticalActivityDroop = 0.217

	// BRAMRefW is the VCCBRAM rail power at nominal conditions. With
	// dynamic power gating (UltraScale+ UG573) the BRAM rail draws
	// only a few milliwatts — "more than 99.9%" of on-chip power is on
	// VCCINT (§4.1).
	BRAMRefW = 0.009
)

// OperatingPoint describes the accelerator state power is evaluated at.
type OperatingPoint struct {
	// VCCINTmV and VCCBRAMmV are the rail levels in millivolts.
	VCCINTmV  float64
	VCCBRAMmV float64
	// FreqMHz is the DPU clock.
	FreqMHz float64
	// TempC is the die temperature.
	TempC float64
	// UtilScale scales dynamic power for workload-to-workload variation
	// in PL utilization/switching (1.0 = benchmark average).
	UtilScale float64
	// ComputeFrac is the compute-bound share of execution time at the
	// *default* clock for this workload; the memory-bound remainder
	// does not dilate when the clock slows down.
	ComputeFrac float64
	// FaultActivityDroop ∈ [0,1] is the relative switching-activity
	// reduction caused by fault-induced pipeline flushes (0 above Vmin,
	// approaching CriticalActivityDroop at Vcrash at full frequency).
	FaultActivityDroop float64
	// Idle indicates the DPU is not executing (between tasks); dynamic
	// power drops to the stall floor.
	Idle bool
}

// DefaultOperatingPoint returns the baseline: nominal voltage, default
// clock, ambient temperature, benchmark-average utilization.
func DefaultOperatingPoint() OperatingPoint {
	return OperatingPoint{
		VCCINTmV:    VnomMV,
		VCCBRAMmV:   VnomMV,
		FreqMHz:     RefFreqMHz,
		TempC:       RefTempC,
		UtilScale:   1.0,
		ComputeFrac: BaseComputeFrac,
	}
}

// Breakdown is the per-rail decomposition of on-chip power.
type Breakdown struct {
	// DynamicW and StaticW decompose the VCCINT rail.
	DynamicW float64
	StaticW  float64
	// VCCINTW = DynamicW + StaticW.
	VCCINTW float64
	// VCCBRAMW is the (tiny) BRAM rail power.
	VCCBRAMW float64
	// TotalW is the total on-chip power.
	TotalW float64
}

// Model evaluates the calibrated power model. The zero value uses the
// default calibration; fields may be overridden for ablation studies.
type Model struct {
	// DynRefW, StaticRefW, LeakageBeta, LeakageKT, StallAct and Droop
	// override the package calibration when non-zero.
	DynRefW     float64
	StaticRefW  float64
	LeakageBeta float64
	LeakageKT   float64
	StallAct    float64
	Droop       float64
}

// NewModel returns a model with the default calibration made explicit.
func NewModel() *Model {
	return &Model{
		DynRefW:     DynRefW,
		StaticRefW:  StaticRefW,
		LeakageBeta: LeakageBetaPerV,
		LeakageKT:   LeakageKTPerC,
		StallAct:    StallActivity,
		Droop:       CriticalActivityDroop,
	}
}

func (m *Model) dynRef() float64 {
	if m.DynRefW != 0 {
		return m.DynRefW
	}
	return DynRefW
}
func (m *Model) staticRef() float64 {
	if m.StaticRefW != 0 {
		return m.StaticRefW
	}
	return StaticRefW
}
func (m *Model) beta() float64 {
	if m.LeakageBeta != 0 {
		return m.LeakageBeta
	}
	return LeakageBetaPerV
}
func (m *Model) kt() float64 {
	if m.LeakageKT != 0 {
		return m.LeakageKT
	}
	return LeakageKTPerC
}
func (m *Model) stallAct() float64 {
	if m.StallAct != 0 {
		return m.StallAct
	}
	return StallActivity
}

// activityMix returns the time-weighted switching activity relative to
// the baseline mix. When the clock slows, compute phases stretch (their
// share of wall time grows) while DDR-bound phases do not, so average
// per-cycle activity rises — this is why measured power does not fall
// linearly with frequency (Table 2).
func (m *Model) activityMix(op OperatingPoint) float64 {
	cf := op.ComputeFrac
	if cf <= 0 || cf > 1 {
		cf = BaseComputeFrac
	}
	f := op.FreqMHz
	if f <= 0 {
		f = RefFreqMHz
	}
	sa := m.stallAct()
	if op.Idle {
		return sa
	}
	// Wall-time shares at frequency f (normalized units).
	computeT := cf * (RefFreqMHz / f)
	memT := 1 - cf
	total := computeT + memT
	mix := (computeT + sa*memT) / total
	base := cf + sa*(1-cf) // mix at the reference frequency
	return mix / base
}

// Breakdown evaluates the model at an operating point.
func (m *Model) Breakdown(op OperatingPoint) Breakdown {
	v := op.VCCINTmV / VnomMV
	f := op.FreqMHz / RefFreqMHz
	if op.FreqMHz <= 0 {
		f = 1
	}
	util := op.UtilScale
	if util <= 0 {
		util = 1
	}
	act := 1 - op.FaultActivityDroop
	if act < 0 {
		act = 0
	}
	dyn := m.dynRef() * v * v * f * util * m.activityMix(op) * act

	vAbs := op.VCCINTmV / 1000
	vnomAbs := VnomMV / 1000
	static := m.staticRef() * (vAbs / vnomAbs) *
		math.Exp(m.beta()*(vAbs-vnomAbs)) *
		math.Exp(m.kt()*(op.TempC-RefTempC))

	vb := op.VCCBRAMmV / VnomMV
	bram := BRAMRefW * vb * vb

	b := Breakdown{
		DynamicW: dyn,
		StaticW:  static,
		VCCBRAMW: bram,
	}
	b.VCCINTW = b.DynamicW + b.StaticW
	b.TotalW = b.VCCINTW + b.VCCBRAMW
	return b
}

// TotalW is shorthand for Breakdown(op).TotalW.
func (m *Model) TotalW(op OperatingPoint) float64 { return m.Breakdown(op).TotalW }

// FaultDroop computes the activity droop for a voltage inside the
// critical region [vcrashMV, vminMV] at full frequency; outside it the
// droop is 0 (no faults → no flushes). Frequency-underscaled, fault-free
// operating points must pass droop 0 themselves.
func (m *Model) FaultDroop(vMV, vminMV, vcrashMV float64) float64 {
	if vMV >= vminMV || vminMV <= vcrashMV {
		return 0
	}
	d := m.Droop
	if d == 0 {
		d = CriticalActivityDroop
	}
	depth := (vminMV - vMV) / (vminMV - vcrashMV)
	if depth > 1 {
		depth = 1
	}
	return d * depth
}
