package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNominalPowerMatchesPaper(t *testing.T) {
	m := NewModel()
	b := m.Breakdown(DefaultOperatingPoint())
	if math.Abs(b.TotalW-12.59) > 0.05 {
		t.Fatalf("total on-chip power at Vnom = %.3f W, want ≈12.59 W (§4.1)", b.TotalW)
	}
	if share := b.VCCINTW / b.TotalW; share < 0.999 {
		t.Fatalf("VCCINT share = %.5f, want >99.9%% (§4.1)", share)
	}
}

func TestEfficiencyGainAtVmin(t *testing.T) {
	m := NewModel()
	base := m.TotalW(DefaultOperatingPoint())
	op := DefaultOperatingPoint()
	op.VCCINTmV = 570
	op.VCCBRAMmV = 850 // paper keeps VCCBRAM nominal
	atVmin := m.TotalW(op)
	gain := base / atVmin
	if math.Abs(gain-2.6) > 0.1 {
		t.Fatalf("GOPs/W gain at Vmin = %.3f×, want ≈2.6× (Fig. 5)", gain)
	}
}

func TestEfficiencyGainAtVcrash(t *testing.T) {
	m := NewModel()
	base := m.TotalW(DefaultOperatingPoint())
	op := DefaultOperatingPoint()
	op.VCCINTmV = 540
	op.FaultActivityDroop = m.FaultDroop(540, 570, 540)
	atCrash := m.TotalW(op)
	gain := base / atCrash
	if gain < 3.0 {
		t.Fatalf("total gain at Vcrash = %.3f×, want >3× (abstract)", gain)
	}
	if math.Abs(gain-3.7) > 0.25 {
		t.Errorf("total gain at Vcrash = %.3f×, want ≈3.7× (2.6×·1.43)", gain)
	}
	// The extra gain below the guardband should be ≈43%.
	opVmin := DefaultOperatingPoint()
	opVmin.VCCINTmV = 570
	extra := m.TotalW(opVmin) / atCrash
	if math.Abs(extra-1.43) > 0.07 {
		t.Errorf("sub-guardband extra gain = %.3f, want ≈1.43", extra)
	}
}

func TestTemperatureSensitivityShrinksAtLowVoltage(t *testing.T) {
	m := NewModel()
	rel := func(vMV float64) float64 {
		op := DefaultOperatingPoint()
		op.VCCINTmV = vMV
		op.TempC = 34
		p34 := m.TotalW(op)
		op.TempC = 52
		p52 := m.TotalW(op)
		return (p52 - p34) / p34
	}
	at850 := rel(850)
	at650 := rel(650)
	if at850 <= 0 || at650 <= 0 {
		t.Fatalf("power must increase with temperature: %g, %g", at850, at650)
	}
	if math.Abs(at850-0.0046) > 0.0015 {
		t.Errorf("Δ34→52°C at 850 mV = %.4f, want ≈0.46%% (§7.1)", at850)
	}
	if at650 >= at850 {
		t.Errorf("temperature effect should shrink at lower voltage: %.4f vs %.4f", at650, at850)
	}
}

func TestFrequencyScalingIsSubLinear(t *testing.T) {
	m := NewModel()
	op := DefaultOperatingPoint()
	base := m.TotalW(op)
	op.FreqMHz = 200
	slow := m.TotalW(op)
	ratio := slow / base
	// Pure linear-in-f dynamic power would give ≈0.64 (plus static);
	// the stall-activity mix keeps measured power higher.
	if ratio <= 200.0/333.0 {
		t.Fatalf("power at 200 MHz = %.3f of base; should exceed pure f-scaling (%.3f)", ratio, 200.0/333.0)
	}
	if ratio >= 1 {
		t.Fatalf("power must still fall when frequency falls (got %.3f)", ratio)
	}
}

func TestIdleDropsDynamicPower(t *testing.T) {
	m := NewModel()
	op := DefaultOperatingPoint()
	busy := m.Breakdown(op)
	op.Idle = true
	idle := m.Breakdown(op)
	if idle.DynamicW >= busy.DynamicW {
		t.Fatalf("idle dynamic %.3f should be below busy %.3f", idle.DynamicW, busy.DynamicW)
	}
	if idle.StaticW != busy.StaticW {
		t.Fatalf("static power should not depend on activity")
	}
}

func TestFaultDroopBounds(t *testing.T) {
	m := NewModel()
	if d := m.FaultDroop(600, 570, 540); d != 0 {
		t.Fatalf("no droop above Vmin, got %g", d)
	}
	if d := m.FaultDroop(570, 570, 540); d != 0 {
		t.Fatalf("no droop at Vmin, got %g", d)
	}
	if d := m.FaultDroop(540, 570, 540); math.Abs(d-CriticalActivityDroop) > 1e-12 {
		t.Fatalf("full droop at Vcrash, got %g", d)
	}
	if d := m.FaultDroop(500, 570, 540); d > CriticalActivityDroop {
		t.Fatalf("droop must clamp at max, got %g", d)
	}
}

// Property: power is monotone in voltage, frequency, temperature and
// utilization, and the breakdown always sums consistently.
func TestPowerMonotonicityProperties(t *testing.T) {
	m := NewModel()
	f := func(vRaw, fRaw, tRaw uint16) bool {
		op := DefaultOperatingPoint()
		op.VCCINTmV = 540 + float64(vRaw%310)
		op.FreqMHz = 100 + float64(fRaw%233)
		op.TempC = 25 + float64(tRaw%40)
		b := m.Breakdown(op)
		if b.TotalW <= 0 || math.IsNaN(b.TotalW) {
			return false
		}
		if math.Abs(b.VCCINTW-(b.DynamicW+b.StaticW)) > 1e-9 {
			return false
		}
		if math.Abs(b.TotalW-(b.VCCINTW+b.VCCBRAMW)) > 1e-9 {
			return false
		}
		up := op
		up.VCCINTmV += 25
		return m.TotalW(up) > b.TotalW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilScaleVariesPowerAcrossBenchmarks(t *testing.T) {
	m := NewModel()
	lo := DefaultOperatingPoint()
	lo.UtilScale = 0.95
	hi := DefaultOperatingPoint()
	hi.UtilScale = 1.05
	pl, ph := m.TotalW(lo), m.TotalW(hi)
	if pl >= ph {
		t.Fatalf("higher utilization must draw more power: %.3f vs %.3f", pl, ph)
	}
	// Both within a plausible band around the 12.59 W average.
	if pl < 11.5 || ph > 13.7 {
		t.Fatalf("benchmark power band [%.2f, %.2f] implausible", pl, ph)
	}
}

func TestZeroValueModelUsesDefaults(t *testing.T) {
	var m Model
	if tw := m.TotalW(DefaultOperatingPoint()); math.Abs(tw-12.59) > 0.05 {
		t.Fatalf("zero-value model total = %.3f, want default calibration", tw)
	}
}
