package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/cluster"
	"fpgauv/internal/fleet"
	"fpgauv/internal/tensor"
)

// clusterConfig wraps a pool template into a pools-wide router config
// with no spares and no background loops.
func clusterConfig(pools int, pc fleet.Config) cluster.Config {
	return cluster.Config{Pools: pools, Pool: pc}
}

// newClusterTestServer wires the HTTP front-end to a cluster router —
// the same New call sites use for a single pool, proving the Scheduler
// seam.
func newClusterTestServer(t *testing.T, ccfg cluster.Config, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	r, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r, scfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// A router-backed server must serve the same API a pool-backed one
// does, and expose the cluster through it: aggregate status with a
// cluster block, ?pool= scoping down to one pool, the router journal on
// /v1/fleet/events (with ?pool= selecting a board journal), and
// uvolt_cluster_* metrics.
func TestServeClusterEndToEnd(t *testing.T) {
	_, ts := newClusterTestServer(t, clusterConfig(2, eccFleetConfig(false)), Config{BatchWindow: time.Millisecond})

	// Serve a few classifications through the router.
	for seed := int64(1); seed <= 3; seed++ {
		resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: seed})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("classify seed %d: status %d (%s)", seed, resp.StatusCode, body)
		}
		res := decode[classifyResponse](t, resp)
		if res.Images == 0 {
			t.Fatalf("classify seed %d served no images", seed)
		}
	}

	// Aggregate status carries the cluster block and pool-qualified
	// board ids from both pools.
	resp, err := http.Get(ts.URL + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[fleet.Status](t, resp)
	if st.Pool != "cluster" {
		t.Errorf("aggregate Status.Pool = %q, want cluster", st.Pool)
	}
	if st.Cluster == nil {
		t.Fatal("aggregate status missing cluster block")
	}
	if st.Cluster.ActivePools != 2 || len(st.Cluster.Pools) != 2 {
		t.Errorf("cluster block pools = %d active / %d listed, want 2/2", st.Cluster.ActivePools, len(st.Cluster.Pools))
	}
	if st.Cluster.Routes < 3 {
		t.Errorf("cluster routes = %d, want >= 3", st.Cluster.Routes)
	}
	if len(st.Boards) != 2 {
		t.Fatalf("aggregate boards = %d, want 2", len(st.Boards))
	}
	if !strings.HasPrefix(st.Boards[0].Board, "pool0/") {
		t.Errorf("board id %q not pool-qualified", st.Boards[0].Board)
	}

	// ?pool=0 narrows to one pool's own status.
	resp, err = http.Get(ts.URL + "/v1/fleet/status?pool=0")
	if err != nil {
		t.Fatal(err)
	}
	p0 := decode[fleet.Status](t, resp)
	if p0.Pool != "pool0" {
		t.Errorf("scoped Status.Pool = %q, want pool0", p0.Pool)
	}
	if p0.Cluster != nil {
		t.Error("scoped status must not carry a cluster block")
	}
	if len(p0.Boards) != 1 {
		t.Errorf("scoped boards = %d, want 1", len(p0.Boards))
	}

	// The default events feed is the router tier: route decisions.
	type eventsResponse struct {
		Events []struct {
			Kind  string `json:"kind"`
			Board string `json:"board"`
		} `json:"events"`
		NextCursor uint64 `json:"next_cursor"`
	}
	resp, err = http.Get(ts.URL + "/v1/fleet/events")
	if err != nil {
		t.Fatal(err)
	}
	evs := decode[eventsResponse](t, resp)
	routes := 0
	for _, ev := range evs.Events {
		if ev.Kind == "route" {
			routes++
		}
	}
	if routes < 3 {
		t.Errorf("router journal shows %d route events, want >= 3", routes)
	}

	// ?pool=0 selects that pool's board journal instead (rails, scrubs,
	// crashes — never route events). A scoped rail move seeds it: 850 mV
	// is the nominal rail, so the move is harmless.
	postJSON(t, ts.URL+"/v1/fleet/voltage?pool=0", map[string]any{"board": 0, "mv": 850}).Body.Close()
	resp, err = http.Get(ts.URL + "/v1/fleet/events?pool=0")
	if err != nil {
		t.Fatal(err)
	}
	pevs := decode[eventsResponse](t, resp)
	if len(pevs.Events) == 0 {
		t.Error("pool journal empty after a scoped rail move")
	}
	rails := 0
	for _, ev := range pevs.Events {
		if ev.Kind == "rail_vccint" {
			rails++
		}
		if ev.Kind == "route" || ev.Kind == "shed" || ev.Kind == "spare_activate" {
			t.Errorf("pool journal leaked router event %q", ev.Kind)
		}
		if ev.Board != "" && !strings.HasPrefix(ev.Board, "pool0/") {
			t.Errorf("pool0 journal carries board %q", ev.Board)
		}
	}
	if rails == 0 {
		t.Error("scoped rail move left no rail_vccint event in pool0's journal")
	}

	// The scoped mutation must not have touched pool1's journal.
	resp, err = http.Get(ts.URL + "/v1/fleet/events?pool=1")
	if err != nil {
		t.Fatal(err)
	}
	if p1 := decode[eventsResponse](t, resp); len(p1.Events) != 0 {
		t.Errorf("?pool=0 rail move leaked events into pool1: %+v", p1.Events)
	}

	// Cluster metric families are exposed with per-pool labels.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"uvolt_cluster_pools 2",
		"uvolt_cluster_active_pools 2",
		"uvolt_cluster_routes_total",
		"uvolt_cluster_sheds_total",
		"uvolt_cluster_spare_activations_total",
		`uvolt_cluster_pool_active{pool="pool0"}`,
		`uvolt_cluster_pool_queue_depth{pool="pool1"}`,
		`uvolt_cluster_pool_routes_total{pool="pool0"}`,
		`uvolt_cluster_pool_power_watts{pool="pool0"}`,
		"uvolt_fleet_shed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// A saturated scheduler must surface as HTTP 429 with a Retry-After
// header and the JSON error shape — the load-shedding contract clients
// key off.
func TestServeSaturationReturns429(t *testing.T) {
	fcfg := fleet.Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1, MaxQueue: 1, MicroBatch: 1}
	s, ts := newTestServer(t, fcfg, Config{BatchWindow: time.Millisecond})
	pool := s.pools[0]

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Occupy the only worker with a long job, then fill the single
	// backlog slot, exactly like the fleet-layer saturation test — but
	// assert the HTTP shape of the refusal.
	shape := pool.InputShape()
	// 512 single-image passes: long enough that an HTTP round trip
	// cannot outlast the occupied worker.
	imgs := make([]*tensor.Tensor, 512)
	for i := range imgs {
		imgs[i] = tensor.New(shape.C, shape.H, shape.W)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := pool.Infer(context.Background(), fleet.InferRequest{Images: imgs, Seed: 3}); err != nil {
			t.Errorf("long job: %v", err)
		}
	}()
	waitFor("worker busy", func() bool { return pool.InFlight() == 1 })
	go func() {
		defer wg.Done()
		if _, err := pool.Classify(context.Background(), fleet.Request{Seed: 5}); err != nil {
			t.Errorf("queued job: %v", err)
		}
	}()
	waitFor("backlog full", func() bool { return pool.QueueDepth() == 1 })

	// Pinned seed bypasses the batcher: the submission hits the pool's
	// admission edge and must shed as 429.
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: 9})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("error body %q does not name saturation", body)
	}
	wg.Wait()
}
