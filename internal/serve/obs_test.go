package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/obs"
	"fpgauv/internal/tensor"
)

// obsFleetConfig is a deterministic two-board pool: no background loops,
// so every journal event is caused by the test's own traffic.
func obsFleetConfig(boards int) fleet.Config {
	return fleet.Config{Boards: boards, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		Governor:        fleet.GovernorConfig{Interval: -1},
		ECC:             fleet.ECCConfig{ScrubInterval: -1}}
}

// collectSpans gathers every span named name from a rendered trace tree.
func collectSpans(n *spanJSON, name string, out *[]*spanJSON) {
	if n == nil {
		return
	}
	if n.Name == name {
		*out = append(*out, n)
	}
	for _, c := range n.Children {
		collectSpans(c, name, out)
	}
}

// eventsPage is the /v1/fleet/events reply shape.
type eventsPage struct {
	Events     []obs.Event `json:"events"`
	NextCursor uint64      `json:"next_cursor"`
	Gap        bool        `json:"gap"`
}

// The headline acceptance path: a crash during a traced /v1/infer. The
// trace must show execute attempts on two different boards (the injected
// double failure exhausts the first board's visit and the job requeues),
// and the journal must replay crash → reboot → redeploy → requeue for
// the crashed board with consistent sequence numbers.
func TestTracedInferAcrossCrash(t *testing.T) {
	s, ts := newTestServer(t, obsFleetConfig(2), Config{Trace: true, BatchWindow: time.Millisecond})
	pixels := testImage(s, 3)

	// The requeued job lands back in the shared queue, where the
	// just-healed board is free to pop it again; and the healthy board
	// may pop the job before the sabotaged one. Re-arm the injection and
	// retry until the schedule produces the two-board trace.
	var tj traceJSON
	found := false
	for try := 0; try < 25 && !found; try++ {
		if err := s.pools[0].InjectFailures(0, 2); err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: pixels, Seed: int64(100 + try)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer: status %d", resp.StatusCode)
		}
		hdr := resp.Header.Get("X-Uvolt-Trace")
		got := decode[inferResponse](t, resp)
		if got.TraceID == "" || hdr != got.TraceID {
			t.Fatalf("trace id: body %q, header %q", got.TraceID, hdr)
		}

		tresp := getURL(t, ts.URL+"/v1/trace/"+got.TraceID)
		if tresp.StatusCode != http.StatusOK {
			t.Fatalf("trace fetch: status %d", tresp.StatusCode)
		}
		tj = decode[traceJSON](t, tresp)
		var execs []*spanJSON
		collectSpans(tj.Root, obs.StageExecute, &execs)
		boards := map[string]bool{}
		failed := 0
		for _, sp := range execs {
			boards[sp.Board] = true
			if sp.Err != "" {
				failed++
			}
		}
		found = failed >= 1 && len(boards) >= 2
		t.Logf("try %d: execs=%d failed=%d boards=%v spans=%d", try, len(execs), failed, boards, tj.Spans)
	}
	if !found {
		t.Fatal("no try produced a failed attempt plus a second-board attempt")
	}

	// The two-board trace in hand: its execute spans carry rails and the
	// requeue span marks the hand-off.
	var execs, requeues []*spanJSON
	collectSpans(tj.Root, obs.StageExecute, &execs)
	collectSpans(tj.Root, obs.StageRequeue, &requeues)
	for _, sp := range execs {
		if sp.Board == "" || sp.VCCINTmV <= 0 {
			t.Errorf("execute span missing annotations: %+v", sp)
		}
	}
	if len(requeues) == 0 {
		t.Error("two-board trace has no requeue span")
	}

	// Journal: the crashed board's chain replays in order. All crashes
	// come from injection on board 0 (no background loops), so the first
	// four of its events are the first try's chain regardless of how many
	// tries ran.
	eresp := getURL(t, ts.URL+"/v1/fleet/events")
	page := decode[eventsPage](t, eresp)
	if page.Gap {
		t.Fatal("journal gapped under test-sized traffic")
	}
	if page.NextCursor == 0 || len(page.Events) == 0 {
		t.Fatal("no journal events after a crash")
	}
	crashed := ""
	var chain []obs.Event
	for _, ev := range page.Events {
		if crashed == "" && ev.Kind == obs.EvCrash {
			crashed = ev.Board
		}
		if ev.Board == crashed {
			chain = append(chain, ev)
		}
	}
	wantKinds := []string{obs.EvCrash, obs.EvPostmortem, obs.EvReboot, obs.EvRedeploy, obs.EvRequeue}
	if len(chain) < len(wantKinds) {
		t.Fatalf("crashed board has %d events, want >= %d", len(chain), len(wantKinds))
	}
	lastSeq := uint64(0)
	for i, want := range wantKinds {
		ev := chain[i]
		if ev.Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, want)
		}
		if ev.BoardSeq != uint64(i+1) {
			t.Errorf("event %d board_seq = %d, want %d", i, ev.BoardSeq, i+1)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Cursor paging: asking from the first event's seq returns only what
	// followed it.
	presp := getURL(t, ts.URL+"/v1/fleet/events?cursor="+uitoa(page.Events[0].Seq))
	p2 := decode[eventsPage](t, presp)
	if len(p2.Events) != len(page.Events)-1 || p2.Gap {
		t.Errorf("cursor page: %d events (gap=%t), want %d", len(p2.Events), p2.Gap, len(page.Events)-1)
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func getURL(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A caller-supplied well-formed X-Uvolt-Trace id is honored end to end;
// a hostile one is replaced.
func TestTraceHeaderContract(t *testing.T) {
	s, ts := newTestServer(t, obsFleetConfig(1), Config{Trace: true, BatchWindow: time.Millisecond})
	_ = s

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", nil)
	req.Header.Set("X-Uvolt-Trace", "caller-chosen_01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decode[classifyResponse](t, resp)
	if got.TraceID != "caller-chosen_01" {
		t.Errorf("trace id = %q, want the caller's", got.TraceID)
	}
	if tr := getURL(t, ts.URL+"/v1/trace/caller-chosen_01"); tr.StatusCode != http.StatusOK {
		t.Errorf("caller id not retrievable: status %d", tr.StatusCode)
	} else {
		tr.Body.Close()
	}

	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", nil)
	req2.Header.Set("X-Uvolt-Trace", "bad id{junk}")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	got2 := decode[classifyResponse](t, resp2)
	if got2.TraceID == "" || got2.TraceID == "bad id{junk}" {
		t.Errorf("hostile id not replaced: %q", got2.TraceID)
	}
}

// /v1/traces lists recent traces newest first; a missing id is a JSON
// 404; a disabled server returns no trace ids at all.
func TestTraceEndpoints(t *testing.T) {
	s, ts := newTestServer(t, obsFleetConfig(1), Config{Trace: true, BatchWindow: time.Millisecond})
	_ = s
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: int64(10 + i)})
		decode[classifyResponse](t, resp)
	}
	type listPage struct {
		Enabled bool        `json:"enabled"`
		Traces  []traceJSON `json:"traces"`
	}
	page := decode[listPage](t, getURL(t, ts.URL+"/v1/traces?limit=2"))
	if !page.Enabled || len(page.Traces) != 2 {
		t.Fatalf("traces page: enabled=%t n=%d", page.Enabled, len(page.Traces))
	}
	if page.Traces[0].Seq <= page.Traces[1].Seq {
		t.Errorf("traces not newest-first: %d then %d", page.Traces[0].Seq, page.Traces[1].Seq)
	}
	for _, tj := range page.Traces {
		if tj.Root == nil || tj.Root.Name != obs.StageRequest || tj.DurNS <= 0 {
			t.Errorf("bad rendered trace: %+v", tj)
		}
	}
	if resp := getURL(t, ts.URL+"/v1/trace/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing trace: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// With tracing disabled, responses carry no trace ids and the ring
// stays empty.
func TestTracingDisabled(t *testing.T) {
	s, ts := newTestServer(t, obsFleetConfig(1), Config{BatchWindow: time.Millisecond})
	_ = s
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{})
	if h := resp.Header.Get("X-Uvolt-Trace"); h != "" {
		t.Errorf("disabled tracing emitted header %q", h)
	}
	got := decode[classifyResponse](t, resp)
	if got.TraceID != "" {
		t.Errorf("disabled tracing emitted trace id %q", got.TraceID)
	}
	type listPage struct {
		Enabled bool        `json:"enabled"`
		Traces  []traceJSON `json:"traces"`
	}
	page := decode[listPage](t, getURL(t, ts.URL+"/v1/traces"))
	if page.Enabled || len(page.Traces) != 0 {
		t.Errorf("disabled tracing retained %d traces (enabled=%t)", len(page.Traces), page.Enabled)
	}
}

// The full set of instrumentation calls a request makes must allocate
// nothing when tracing is disabled — the pin behind the "tracing is free
// when off" contract. testing.AllocsPerRun would round away rare
// allocations; zero must mean zero, so any nonzero average fails.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	tracer := obs.NewTracer(8) // built disabled
	allocs := testing.AllocsPerRun(1000, func() {
		tr := tracer.Start("irrelevant")
		dec := tr.Root().Child(obs.StageDecode)
		dec.End()
		wait := tr.Root().Child(obs.StageBatchWait)
		wait.EndAt(obs.NowNS())
		fl := tr.Root().Child(obs.StageFleet)
		exec := fl.Child(obs.StageExecute)
		exec.End()
		fl.End()
		tr.Root().Graft(tracer.JobTrace())
		rsp := tr.Root().Child(obs.StageRespond)
		rsp.End()
		tracer.Publish(tr)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.2f per request, want 0", allocs)
	}
}

// BenchmarkTracedInfer measures the dedicated (pinned-seed) inference
// path with tracing off and on. The off case is the regression pin for
// the zero-overhead contract; compare allocs/op between the two:
//
//	go test -run '^$' -bench BenchmarkTracedInfer -benchmem ./internal/serve
func BenchmarkTracedInfer(b *testing.B) {
	for _, mode := range []struct {
		name  string
		trace bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			pool, err := fleet.New(fleet.Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
				MonitorInterval: -1,
				Governor:        fleet.GovernorConfig{Interval: -1},
				ECC:             fleet.ECCConfig{ScrubInterval: -1}})
			if err != nil {
				b.Fatal(err)
			}
			s := New(pool, Config{Trace: mode.trace})
			defer s.Close()
			img, err := s.decodeInferImage(inferRequest{Pixels: testImage(s, 5)})
			if err != nil {
				b.Fatal(err)
			}
			imgs := []*tensor.Tensor{img}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := s.tracer.Start("")
				if _, _, _, _, err := s.batch.SubmitInfer(ctx, imgs, 42, tr); err != nil {
					b.Fatal(err)
				}
				s.publishTrace(tr)
			}
		})
	}
}
