package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpgauv/internal/fleet"
)

// eccFleetConfig is a 1-board protected fleet with no background loops.
func eccFleetConfig(eccOn bool) fleet.Config {
	return fleet.Config{
		Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		ECC:             fleet.ECCConfig{Enabled: eccOn, ScrubInterval: -1},
		Governor:        fleet.GovernorConfig{Interval: -1},
	}
}

// GET /v1/fleet/ecc reports the protection state; POST toggles it,
// re-tunes the scrub interval and can run a synchronous scrub pass.
func TestServeECCEndpoint(t *testing.T) {
	_, ts := newTestServer(t, eccFleetConfig(false), Config{})

	resp, err := http.Get(ts.URL + "/v1/fleet/ecc")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[eccResponse](t, resp)
	if rep.ECC == nil || rep.ECC.Enabled {
		t.Fatalf("fresh pool should report protection disabled: %+v", rep.ECC)
	}
	if len(rep.Boards) != 1 || rep.Boards[0].ECC == nil {
		t.Fatalf("per-board ECC missing: %+v", rep.Boards)
	}
	if rep.Boards[0].VCCBRAMmV < 840 {
		t.Errorf("VCCBRAM %.1f mV, want nominal at startup", rep.Boards[0].VCCBRAMmV)
	}
	if rep.Boards[0].ECC.Words == 0 {
		t.Error("protected image size not reported")
	}

	on := true
	resp = postJSON(t, ts.URL+"/v1/fleet/ecc", eccRequest{
		Enabled: &on, ScrubIntervalMS: 42, ScrubNow: true,
	})
	rep = decode[eccResponse](t, resp)
	if !rep.ECC.Enabled {
		t.Fatal("enable did not take")
	}
	if rep.ECC.ScrubIntervalMS != 42 {
		t.Errorf("scrub interval %.1f ms, want 42", rep.ECC.ScrubIntervalMS)
	}
	if rep.ECC.ScrubPasses != 1 || rep.Boards[0].ECC.ScrubPasses != 1 {
		t.Errorf("scrub_now did not run a pass: %+v", rep.ECC)
	}

	// Validation: negative scrub interval rejected.
	resp = postJSON(t, ts.URL+"/v1/fleet/ecc", map[string]any{"scrub_interval_ms": -5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative interval: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// The ECC counters must reach /metrics once protected traffic runs.
func TestServeECCMetrics(t *testing.T) {
	cfg := eccFleetConfig(true)
	cfg.Governor = fleet.GovernorConfig{Interval: -1, BRAM: true}
	_, ts := newTestServer(t, cfg, Config{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"uvolt_ecc_enabled 1",
		"uvolt_ecc_corrected_total",
		"uvolt_ecc_uncorrectable_total",
		"uvolt_ecc_silent_total",
		"uvolt_scrub_passes_total",
		"uvolt_scrub_corrected_total",
		"uvolt_scrub_reloaded_total",
		"uvolt_board_vccbram_millivolts{board=",
		"uvolt_governor_bram_probes_total",
		"uvolt_governor_bram_operating_millivolts{board=",
		`uvolt_http_requests_total{path="/v1/fleet/ecc"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The API audit gate: every endpoint must reject wrong methods with the
// JSON error shape, reject malformed bodies with 400, and unknown fleet
// paths must 404 through errorJSON — not the mux's plain-text page. The
// audit runs against both schedulers the front-end accepts — a single
// pool and a cluster router — because the error contract must not
// depend on what is behind the Scheduler interface.
func TestServeEndpointAudit(t *testing.T) {
	t.Run("pool", func(t *testing.T) {
		_, ts := newTestServer(t, eccFleetConfig(false), Config{BatchWindow: time.Millisecond})
		auditEndpoints(t, ts)
	})
	t.Run("cluster", func(t *testing.T) {
		pc := eccFleetConfig(false)
		_, ts := newClusterTestServer(t, clusterConfig(2, pc), Config{BatchWindow: time.Millisecond})
		auditEndpoints(t, ts)
	})
}

func auditEndpoints(t *testing.T, ts *httptest.Server) {
	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		// Wrong method on every endpoint.
		{"classify GET", http.MethodGet, "/v1/classify", "", http.StatusMethodNotAllowed},
		{"infer GET", http.MethodGet, "/v1/infer", "", http.StatusMethodNotAllowed},
		{"status POST", http.MethodPost, "/v1/fleet/status", "{}", http.StatusMethodNotAllowed},
		{"voltage GET", http.MethodGet, "/v1/fleet/voltage", "", http.StatusMethodNotAllowed},
		{"governor DELETE", http.MethodDelete, "/v1/fleet/governor", "", http.StatusMethodNotAllowed},
		{"ecc DELETE", http.MethodDelete, "/v1/fleet/ecc", "", http.StatusMethodNotAllowed},
		{"metrics POST", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
		// Malformed bodies on every POST endpoint.
		{"classify bad body", http.MethodPost, "/v1/classify", "{nope", http.StatusBadRequest},
		{"infer bad body", http.MethodPost, "/v1/infer", "{nope", http.StatusBadRequest},
		{"voltage bad body", http.MethodPost, "/v1/fleet/voltage", "{nope", http.StatusBadRequest},
		{"governor bad body", http.MethodPost, "/v1/fleet/governor", "{nope", http.StatusBadRequest},
		{"ecc bad body", http.MethodPost, "/v1/fleet/ecc", "{nope", http.StatusBadRequest},
		// Domain validation.
		{"voltage zero mv", http.MethodPost, "/v1/fleet/voltage", `{"board":0,"mv":0}`, http.StatusBadRequest},
		{"voltage bad board", http.MethodPost, "/v1/fleet/voltage", `{"board":99,"mv":600}`, http.StatusBadRequest},
		{"governor negative", http.MethodPost, "/v1/fleet/governor", `{"step_mv":-1}`, http.StatusBadRequest},
		// Unknown fleet paths: JSON 404 from the subtree handler.
		{"fleet not found", http.MethodGet, "/v1/fleet/nope", "", http.StatusNotFound},
		{"fleet root", http.MethodGet, "/v1/fleet/", "", http.StatusNotFound},
		{"fleet not found POST", http.MethodPost, "/v1/fleet/ecc/extra", "{}", http.StatusNotFound},
		// Pool scoping: out-of-range and non-integer ?pool= values get
		// the JSON 400 shape on every scoped endpoint.
		{"status pool out of range", http.MethodGet, "/v1/fleet/status?pool=9", "", http.StatusBadRequest},
		{"status pool negative", http.MethodGet, "/v1/fleet/status?pool=-1", "", http.StatusBadRequest},
		{"status pool not int", http.MethodGet, "/v1/fleet/status?pool=x", "", http.StatusBadRequest},
		{"events pool out of range", http.MethodGet, "/v1/fleet/events?pool=9", "", http.StatusBadRequest},
		{"events pool not int", http.MethodGet, "/v1/fleet/events?pool=x", "", http.StatusBadRequest},
		{"governor pool out of range", http.MethodGet, "/v1/fleet/governor?pool=9", "", http.StatusBadRequest},
		{"ecc pool out of range", http.MethodGet, "/v1/fleet/ecc?pool=9", "", http.StatusBadRequest},
		{"voltage pool out of range", http.MethodPost, "/v1/fleet/voltage?pool=9", `{"board":0,"mv":600}`, http.StatusBadRequest},
		// Traces: limit must be a positive integer.
		{"traces POST", http.MethodPost, "/v1/traces", "{}", http.StatusMethodNotAllowed},
		{"traces bad limit", http.MethodGet, "/v1/traces?limit=x", "", http.StatusBadRequest},
		{"traces zero limit", http.MethodGet, "/v1/traces?limit=0", "", http.StatusBadRequest},
		{"traces negative limit", http.MethodGet, "/v1/traces?limit=-3", "", http.StatusBadRequest},
		// Telemetry history: required params, series/res whitelists,
		// positive n, unknown board 404.
		{"history POST", http.MethodPost, "/v1/fleet/history", "{}", http.StatusMethodNotAllowed},
		{"history no board", http.MethodGet, "/v1/fleet/history?series=vccint_mv", "", http.StatusBadRequest},
		{"history no series", http.MethodGet, "/v1/fleet/history?board=b", "", http.StatusBadRequest},
		{"history bad series", http.MethodGet, "/v1/fleet/history?board=b&series=nope", "", http.StatusBadRequest},
		{"history bad res", http.MethodGet, "/v1/fleet/history?board=b&series=vccint_mv&res=2h", "", http.StatusBadRequest},
		{"history bad n", http.MethodGet, "/v1/fleet/history?board=b&series=vccint_mv&n=x", "", http.StatusBadRequest},
		{"history zero n", http.MethodGet, "/v1/fleet/history?board=b&series=vccint_mv&n=0", "", http.StatusBadRequest},
		{"history unknown board", http.MethodGet, "/v1/fleet/history?board=nope&series=vccint_mv", "", http.StatusNotFound},
		// Fleet health and postmortems.
		{"health POST", http.MethodPost, "/v1/fleet/health", "{}", http.StatusMethodNotAllowed},
		{"health pool out of range", http.MethodGet, "/v1/fleet/health?pool=9", "", http.StatusBadRequest},
		{"health pool not int", http.MethodGet, "/v1/fleet/health?pool=x", "", http.StatusBadRequest},
		{"postmortems POST", http.MethodPost, "/v1/fleet/postmortems", "{}", http.StatusMethodNotAllowed},
		{"postmortems bad limit", http.MethodGet, "/v1/fleet/postmortems?limit=x", "", http.StatusBadRequest},
		{"postmortems zero limit", http.MethodGet, "/v1/fleet/postmortems?limit=0", "", http.StatusBadRequest},
		{"postmortems pool out of range", http.MethodGet, "/v1/fleet/postmortems?pool=9", "", http.StatusBadRequest},
		{"history subpath not found", http.MethodGet, "/v1/fleet/history/extra", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := do(tc.method, tc.path, tc.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %q)", tc.name, resp.StatusCode, tc.want, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
		}
		var errBody struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &errBody); err != nil || errBody.Error == "" {
			t.Errorf("%s: error body not in the JSON error shape: %q", tc.name, body)
		}
	}
}
