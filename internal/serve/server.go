// Package serve is the HTTP inference front-end of a fleet.Scheduler —
// a single pool or a multi-pool cluster router, interchangeably: a JSON
// API for classification and fleet operations, request batching that
// amortizes concurrent callers over shared accelerator passes,
// admission-control mapping (ErrSaturated → 429 + Retry-After), and
// Prometheus-style text metrics.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/obs"
	"fpgauv/internal/telemetry"
	"fpgauv/internal/tensor"
)

// Config parameterizes the front-end.
type Config struct {
	// BatchSize is the maximum classify calls coalesced into one
	// accelerator pass (default 8).
	BatchSize int
	// BatchImages is the maximum images coalesced into one inference
	// micro-batch (default 16, the fleet's micro-batch size).
	BatchImages int
	// BatchWindow is how long the first call in a batch waits for
	// company (default 2 ms).
	BatchWindow time.Duration
	// Trace enables request tracing: every classify/infer call records a
	// span tree served back by /v1/trace/{id} and /v1/traces.
	Trace bool
	// TraceRing is how many recent traces are retained (default 256).
	TraceRing int
	// SLO declares the serving objectives the burn-rate tracker alerts
	// on (zero value: 99.9% availability, 250ms latency goal at p99).
	SLO telemetry.SLOConfig
}

// stageOrder fixes the exposition order of the per-stage latency
// histograms (and enumerates the stages that get one).
var stageOrder = []string{
	obs.StageRequest, obs.StageDecode, obs.StageBatchWait, obs.StageAssemble,
	obs.StageFleet, obs.StageFleetWait, obs.StageExecute, obs.StageRequeue,
	obs.StageRespond,
}

// Server routes HTTP traffic onto a fleet scheduler (one pool or a
// cluster router — the front-end cannot tell them apart).
type Server struct {
	sched fleet.Scheduler
	// pools caches sched.Pools() for ?pool=-scoped operations (the pool
	// set is fixed for a scheduler's lifetime; spares exist from startup).
	pools   []*fleet.Pool
	batch   *batcher
	mux     *http.ServeMux
	tracer  *obs.Tracer
	started time.Time

	classifyReqs   atomic.Int64
	inferReqs      atomic.Int64
	statusReqs     atomic.Int64
	voltageReqs    atomic.Int64
	governorReqs   atomic.Int64
	eccReqs        atomic.Int64
	metricsReqs    atomic.Int64
	traceReqs      atomic.Int64
	tracesReqs     atomic.Int64
	eventsReqs     atomic.Int64
	historyReqs    atomic.Int64
	healthReqs     atomic.Int64
	postmortemReqs atomic.Int64
	errorResps     atomic.Int64

	// resp2xx/4xx/5xx count responses by status class (499 lands in 4xx).
	resp2xx atomic.Int64
	resp4xx atomic.Int64
	resp5xx atomic.Int64

	// batchSizes tracks accelerator-pass batch sizes by traffic kind;
	// inferLatency and classifyLatency track request latency end to end;
	// stageHist holds one duration histogram per traced request stage.
	batchSizes      map[string]*histogram
	inferLatency    *histogram
	classifyLatency *histogram
	stageHist       map[string]*histogram

	// slo is the serving burn-rate tracker (journaling slo_burn to the
	// scheduler journal); classifyDigest/inferDigest are the per-endpoint
	// streaming latency quantile digests behind
	// uvolt_endpoint_latency_seconds.
	slo            *telemetry.SLOTracker
	classifyDigest *telemetry.Digest
	inferDigest    *telemetry.Digest
}

// New wires a server to a running scheduler: a *fleet.Pool or a
// *cluster.Router, interchangeably.
func New(sched fleet.Scheduler, cfg Config) *Server {
	latencyBounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	s := &Server{
		sched:   sched,
		pools:   sched.Pools(),
		batch:   newBatcher(sched, cfg.BatchSize, cfg.BatchImages, cfg.BatchWindow),
		mux:     http.NewServeMux(),
		tracer:  obs.NewTracer(cfg.TraceRing),
		started: time.Now(),
		batchSizes: map[string]*histogram{
			"classify": newHistogram(1, 2, 4, 8, 16, 32, 64),
			"infer":    newHistogram(1, 2, 4, 8, 16, 32, 64),
		},
		inferLatency:    newHistogram(latencyBounds...),
		classifyLatency: newHistogram(latencyBounds...),
		stageHist:       make(map[string]*histogram, len(stageOrder)),
		slo:             telemetry.NewSLOTracker(cfg.SLO, sched.Journal()),
		classifyDigest:  &telemetry.Digest{},
		inferDigest:     &telemetry.Digest{},
	}
	for _, st := range stageOrder {
		s.stageHist[st] = newHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
			0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1)
	}
	s.tracer.SetEnabled(cfg.Trace)
	s.batch.tracer = s.tracer
	s.batch.onBatch = func(kind string, units int) {
		s.batchSizes[kind].Observe(float64(units))
	}
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/trace/", s.handleTrace)
	s.mux.HandleFunc("/v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/fleet/status", s.handleStatus)
	s.mux.HandleFunc("/v1/fleet/voltage", s.handleVoltage)
	s.mux.HandleFunc("/v1/fleet/governor", s.handleGovernor)
	s.mux.HandleFunc("/v1/fleet/ecc", s.handleECC)
	s.mux.HandleFunc("/v1/fleet/events", s.handleEvents)
	s.mux.HandleFunc("/v1/fleet/history", s.handleHistory)
	s.mux.HandleFunc("/v1/fleet/health", s.handleFleetHealth)
	s.mux.HandleFunc("/v1/fleet/postmortems", s.handlePostmortems)
	// Unknown /v1/fleet/* paths get the API's JSON error shape, not the
	// mux's plain-text 404.
	s.mux.HandleFunc("/v1/fleet/", s.handleFleetNotFound)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Tracer exposes the request tracer (runtime toggling, tests).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the batcher and shuts the scheduler down; queued work
// finishes first. Call after the HTTP listener has stopped accepting.
func (s *Server) Close() {
	s.batch.Close()
	s.sched.Close()
}

// poolScope resolves the optional ?pool= query parameter to a pool
// index. Absent returns -1 (whole scheduler); a non-integer or
// out-of-range value returns an error for the caller to map to 400.
func (s *Server) poolScope(r *http.Request) (int, error) {
	v := r.URL.Query().Get("pool")
	if v == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n >= len(s.pools) {
		return 0, fmt.Errorf("pool %q out of range (cluster has %d pools)", v, len(s.pools))
	}
	return n, nil
}

// scopedPools resolves a poolScope result to the pools it addresses.
func (s *Server) scopedPools(k int) []*fleet.Pool {
	if k < 0 {
		return s.pools
	}
	return s.pools[k : k+1]
}

// scopedStatus resolves a poolScope result to one status snapshot: the
// scheduler-wide aggregate, or one pool's view.
func (s *Server) scopedStatus(k int) fleet.Status {
	if k < 0 {
		return s.sched.Status()
	}
	return s.pools[k].Status()
}

// retryAfterSecs renders an ErrSaturated drain estimate for the
// Retry-After header: whole seconds, rounded up, at least 1.
func retryAfterSecs(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// classifyRequest is the /v1/classify body (all fields optional).
type classifyRequest struct {
	// Seed pins the fault-injection stream; 0 means server-assigned.
	// Pinned-seed requests are served by a dedicated accelerator pass
	// (never coalesced with batch-mates running other seeds).
	Seed int64 `json:"seed"`
}

// classifyResponse wraps the fleet result with batching info.
type classifyResponse struct {
	fleet.Result
	// BatchSize is how many concurrent requests shared this
	// accelerator pass.
	BatchSize int `json:"batch_size"`
	// TraceID identifies the request's retained trace when tracing is on
	// (GET /v1/trace/{id} replays it).
	TraceID string `json:"trace_id,omitempty"`
}

// startTrace opens a request trace, honoring a well-formed caller
// X-Uvolt-Trace id and echoing the final id back in the same response
// header. Nil when tracing is disabled — every span call downstream of
// a nil trace is a nil-receiver no-op.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	tr := s.tracer.Start(sanitizeTraceID(r.Header.Get("X-Uvolt-Trace")))
	if tr != nil {
		w.Header().Set("X-Uvolt-Trace", tr.ID())
	}
	return tr
}

// sanitizeTraceID accepts caller-supplied ids of at most 64 characters
// from [A-Za-z0-9_-]; anything else is discarded so a hostile header
// cannot smuggle arbitrary bytes into responses and the trace ring.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '-' || c == '_'
		if !ok {
			return ""
		}
	}
	return id
}

// publishTrace finishes a request trace, installs it in the ring, and
// feeds every closed span's duration into the per-stage histograms.
func (s *Server) publishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	s.tracer.Publish(tr)
	for i := 0; i < tr.Len(); i++ {
		sp := tr.At(i)
		if h := s.stageHist[sp.Name()]; h != nil && sp.EndNS() > 0 {
			h.Observe(float64(sp.DurNS()) / 1e9)
		}
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.classifyReqs.Add(1)
	tr := s.startTrace(w, r)
	defer s.publishTrace(tr)
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	dec := tr.Root().Child(obs.StageDecode)
	var req classifyRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			dec.End()
			s.errorJSON(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	dec.End()
	start := time.Now()
	res, batchSize, err := s.batch.Submit(r.Context(), req.Seed, tr)
	lat := time.Since(start)
	s.classifyLatency.Observe(lat.Seconds())
	s.recordSLO(s.classifyDigest, err, lat)
	switch {
	case err == nil:
		rsp := tr.Root().Child(obs.StageRespond)
		s.writeJSON(w, http.StatusOK, classifyResponse{Result: res, BatchSize: batchSize, TraceID: tr.ID()})
		rsp.End()
	default:
		s.errorForSubmit(w, err)
	}
}

// errorForSubmit maps a classify/infer submission error to its HTTP
// shape. Saturation gets 429 with a Retry-After header carrying the
// scheduler's drain estimate — the load-shedding contract clients and
// load generators key off.
func (s *Server) errorForSubmit(w http.ResponseWriter, err error) {
	var sat fleet.ErrSaturated
	switch {
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", retryAfterSecs(sat.RetryAfter))
		s.errorJSON(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrShutdown), errors.Is(err, fleet.ErrClosed):
		s.errorJSON(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.errorJSON(w, 499, "client went away") // nginx's client-closed-request
	default:
		s.errorJSON(w, http.StatusInternalServerError, err.Error())
	}
}

// inferRequest is the /v1/infer body: one image as either a JSON float
// array or a base64-encoded little-endian float32 buffer, in CHW order
// matching the pool's input shape.
type inferRequest struct {
	// Pixels is the image as a flat float array (CHW).
	Pixels []float32 `json:"pixels,omitempty"`
	// ImageB64 is the image as base64-encoded little-endian float32s —
	// the compact form for binary clients.
	ImageB64 string `json:"image_b64,omitempty"`
	// Seed pins the per-image fault stream; 0 means server-assigned.
	// Pinned-seed requests get a dedicated accelerator pass.
	Seed int64 `json:"seed,omitempty"`
}

// inferResponse is one classified image plus serving metadata.
type inferResponse struct {
	// Pred is the predicted class; Probs the host-side softmax output.
	Pred  int       `json:"pred"`
	Probs []float32 `json:"probs"`
	// Board and VCCINTmV identify the serving board and its rail level.
	Board    string  `json:"board"`
	VCCINTmV float64 `json:"vccint_mv"`
	// BatchSize is how many images shared this accelerator pass.
	BatchSize int `json:"batch_size"`
	// TraceID identifies the request's retained trace when tracing is on.
	TraceID string `json:"trace_id,omitempty"`
}

// decodeInferImage resolves the request body into a CHW tensor matching
// the pool's input shape.
func (s *Server) decodeInferImage(req inferRequest) (*tensor.Tensor, error) {
	shape := s.sched.InputShape()
	want := shape.C * shape.H * shape.W
	pixels := req.Pixels
	if req.ImageB64 != "" {
		if pixels != nil {
			return nil, fmt.Errorf("provide pixels or image_b64, not both")
		}
		raw, err := base64.StdEncoding.DecodeString(req.ImageB64)
		if err != nil {
			return nil, fmt.Errorf("bad image_b64: %v", err)
		}
		if len(raw)%4 != 0 {
			return nil, fmt.Errorf("image_b64 is %d bytes, not a float32 buffer", len(raw))
		}
		pixels = make([]float32, len(raw)/4)
		for i := range pixels {
			pixels[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		}
	}
	if len(pixels) != want {
		return nil, fmt.Errorf("image has %d values, want %d (%dx%dx%d CHW)",
			len(pixels), want, shape.C, shape.H, shape.W)
	}
	return tensor.FromSlice(pixels, shape.C, shape.H, shape.W)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	s.inferReqs.Add(1)
	tr := s.startTrace(w, r)
	defer s.publishTrace(tr)
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	dec := tr.Root().Child(obs.StageDecode)
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		dec.End()
		s.errorJSON(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	img, err := s.decodeInferImage(req)
	dec.End()
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	outs, board, mv, batch, err := s.batch.SubmitInfer(r.Context(), []*tensor.Tensor{img}, req.Seed, tr)
	lat := time.Since(start)
	s.inferLatency.Observe(lat.Seconds())
	s.recordSLO(s.inferDigest, err, lat)
	switch {
	case err == nil:
		rsp := tr.Root().Child(obs.StageRespond)
		s.writeJSON(w, http.StatusOK, inferResponse{
			Pred:      outs[0].Pred,
			Probs:     outs[0].Probs,
			Board:     board,
			VCCINTmV:  mv,
			BatchSize: batch,
			TraceID:   tr.ID(),
		})
		rsp.End()
	default:
		s.errorForSubmit(w, err)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.statusReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, s.scopedStatus(k))
}

// voltageRequest is the /v1/fleet/voltage body.
type voltageRequest struct {
	// Board is the target index; -1 targets every board. An omitted
	// "board" key means board 0.
	Board int `json:"board"`
	// MV is the VCCINT level to command.
	MV float64 `json:"mv"`
	// Operating, when true, re-targets the board's steady-state point
	// (validated against Vcrash); otherwise the rail is set raw — which
	// below Vcrash deliberately induces a crash for the pool to heal.
	Operating bool `json:"operating"`
}

func (s *Server) handleVoltage(w http.ResponseWriter, r *http.Request) {
	s.voltageReqs.Add(1)
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req voltageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.MV <= 0 {
		s.errorJSON(w, http.StatusBadRequest, "mv must be positive")
		return
	}
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, p := range s.scopedPools(k) {
		var err error
		if req.Operating {
			err = p.SetOperatingMV(req.Board, req.MV)
		} else {
			err = p.SetVCCINTmV(req.Board, req.MV)
		}
		if err != nil {
			s.errorJSON(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "board": req.Board, "mv": req.MV, "operating": req.Operating,
	})
}

// governorRequest is the /v1/fleet/governor POST body: a runtime
// enable/disable plus a partial re-tune. Omitted fields keep their
// present setting.
type governorRequest struct {
	Enabled       *bool   `json:"enabled"`
	IntervalMS    float64 `json:"interval_ms"`
	StepMV        float64 `json:"step_mv"`
	MarginMV      float64 `json:"margin_mv"`
	FloorMarginMV float64 `json:"floor_margin_mv"`
	ProbeImages   int     `json:"probe_images"`
	ConfirmProbes int     `json:"confirm_probes"`
	VerifyEvery   int     `json:"verify_every"`
	RetestDeltaC  float64 `json:"retest_delta_c"`
}

// governorBoard is one board's entry in the governor report.
type governorBoard struct {
	Board       string                     `json:"board"`
	State       string                     `json:"state"`
	OperatingMV float64                    `json:"operating_mv"`
	TempC       float64                    `json:"temp_c"`
	Governor    *fleet.BoardGovernorStatus `json:"governor"`
}

// governorResponse is the GET payload (and the POST reply).
type governorResponse struct {
	Governor *fleet.GovernorStatus `json:"governor"`
	Boards   []governorBoard       `json:"boards"`
}

func (s *Server) governorReport(k int) governorResponse {
	st := s.scopedStatus(k)
	out := governorResponse{Governor: st.Governor}
	for _, b := range st.Boards {
		out.Boards = append(out.Boards, governorBoard{
			Board:       b.Board,
			State:       b.State,
			OperatingMV: b.OperatingMV,
			TempC:       b.TempC,
			Governor:    b.Governor,
		})
	}
	return out
}

func (s *Server) handleGovernor(w http.ResponseWriter, r *http.Request) {
	s.governorReqs.Add(1)
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, s.governorReport(k))
	case http.MethodPost:
		var req governorRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.errorJSON(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		tn := fleet.GovernorTuning{
			Interval:      time.Duration(req.IntervalMS * float64(time.Millisecond)),
			StepMV:        req.StepMV,
			MarginMV:      req.MarginMV,
			FloorMarginMV: req.FloorMarginMV,
			ProbeImages:   req.ProbeImages,
			ConfirmProbes: req.ConfirmProbes,
			VerifyEvery:   req.VerifyEvery,
			RetestDeltaC:  req.RetestDeltaC,
		}
		for _, p := range s.scopedPools(k) {
			if err := p.TuneGovernor(tn); err != nil {
				s.errorJSON(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		if req.Enabled != nil {
			for _, p := range s.scopedPools(k) {
				p.SetGovernorEnabled(*req.Enabled)
			}
		}
		s.writeJSON(w, http.StatusOK, s.governorReport(k))
	default:
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// eccRequest is the /v1/fleet/ecc POST body: a runtime protection
// toggle, a scrub re-tune and an optional synchronous scrub pass.
// Omitted fields keep their present setting.
type eccRequest struct {
	// Enabled toggles SECDED decoding on every board.
	Enabled *bool `json:"enabled"`
	// ScrubIntervalMS re-targets the frame-scrub period.
	ScrubIntervalMS float64 `json:"scrub_interval_ms"`
	// ScrubNow runs one synchronous scrub pass on every board before
	// the reply is built.
	ScrubNow bool `json:"scrub_now"`
}

// eccBoard is one board's entry in the ECC report.
type eccBoard struct {
	Board           string                `json:"board"`
	VCCBRAMmV       float64               `json:"vccbram_mv"`
	OperatingBRAMMV float64               `json:"operating_bram_mv"`
	ECC             *fleet.BoardECCStatus `json:"ecc"`
}

// eccResponse is the GET payload (and the POST reply).
type eccResponse struct {
	ECC    *fleet.ECCStatus `json:"ecc"`
	Boards []eccBoard       `json:"boards"`
}

func (s *Server) eccReport(k int) eccResponse {
	st := s.scopedStatus(k)
	out := eccResponse{ECC: st.ECC}
	for _, b := range st.Boards {
		out.Boards = append(out.Boards, eccBoard{
			Board:           b.Board,
			VCCBRAMmV:       b.VCCBRAMmV,
			OperatingBRAMMV: b.OperatingBRAMMV,
			ECC:             b.ECC,
		})
	}
	return out
}

func (s *Server) handleECC(w http.ResponseWriter, r *http.Request) {
	s.eccReqs.Add(1)
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.writeJSON(w, http.StatusOK, s.eccReport(k))
	case http.MethodPost:
		var req eccRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.errorJSON(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if req.ScrubIntervalMS < 0 {
			s.errorJSON(w, http.StatusBadRequest, "scrub_interval_ms must be positive")
			return
		}
		for _, p := range s.scopedPools(k) {
			if req.Enabled != nil {
				p.SetECCEnabled(*req.Enabled)
			}
			if req.ScrubIntervalMS > 0 {
				p.SetScrubInterval(time.Duration(req.ScrubIntervalMS * float64(time.Millisecond)))
			}
			if req.ScrubNow {
				p.ScrubNow()
			}
		}
		s.writeJSON(w, http.StatusOK, s.eccReport(k))
	default:
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

func (s *Server) handleFleetNotFound(w http.ResponseWriter, r *http.Request) {
	s.errorJSON(w, http.StatusNotFound, "unknown fleet endpoint "+r.URL.Path)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metricsReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.resp2xx.Add(1) // bypasses writeJSON's class counting
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.renderMetrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Status()
	healthy := 0
	for _, b := range st.Boards {
		if b.State == "healthy" {
			healthy++
		}
	}
	code := http.StatusOK
	if healthy == 0 || st.Closed {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]any{"healthy_boards": healthy, "boards": len(st.Boards), "closed": st.Closed})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	switch {
	case code >= 500:
		s.resp5xx.Add(1)
	case code >= 400:
		s.resp4xx.Add(1)
	default:
		s.resp2xx.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) errorJSON(w http.ResponseWriter, code int, msg string) {
	s.errorResps.Add(1)
	s.writeJSON(w, code, map[string]any{"error": msg})
}
