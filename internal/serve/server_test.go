package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/fleet"
)

// newTestServer brings up a 3-board tiny fleet behind an httptest server.
func newTestServer(t *testing.T, fcfg fleet.Config, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if fcfg.Boards == 0 {
		fcfg = fleet.Config{Boards: 3, Tiny: true, Images: 4, CharRepeats: 1,
			MonitorInterval: 5 * time.Millisecond}
	}
	pool, err := fleet.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool, scfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// Concurrent classify calls must all succeed and coalesce into fewer
// accelerator passes than requests.
func TestServeClassifyBatches(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{BatchSize: 4, BatchWindow: 50 * time.Millisecond})

	const calls = 12
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, want 200", resp.StatusCode)
				resp.Body.Close()
				return
			}
			out := decode[classifyResponse](t, resp)
			if out.AccuracyPct <= 0 {
				t.Errorf("accuracy = %.1f, want > 0", out.AccuracyPct)
			}
			if out.BatchSize < 1 {
				t.Errorf("batch_size = %d, want >= 1", out.BatchSize)
			}
			if out.VCCINTmV > 620 {
				t.Errorf("served at %.0f mV, want underscaled (<= 620)", out.VCCINTmV)
			}
		}()
	}
	wg.Wait()

	if runs := s.batch.batches.Load(); runs >= calls {
		t.Errorf("batches = %d for %d calls; batching never coalesced", runs, calls)
	}
	if s.batch.coalesced.Load() == 0 {
		t.Error("coalesced = 0, want > 0")
	}
}

// A pinned seed asks for a specific fault stream, so it must get a
// dedicated accelerator pass, never a batch-mate's.
func TestServePinnedSeedBypassesBatching(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{BatchSize: 8, BatchWindow: 50 * time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: seed})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, want 200", resp.StatusCode)
				resp.Body.Close()
				return
			}
			if out := decode[classifyResponse](t, resp); out.BatchSize != 1 {
				t.Errorf("pinned seed coalesced: batch_size = %d, want 1", out.BatchSize)
			}
		}(int64(i + 1))
	}
	wg.Wait()

	if got := s.batch.batches.Load(); got != 6 {
		t.Errorf("batches = %d, want 6 dedicated passes", got)
	}
	if got := s.batch.coalesced.Load(); got != 0 {
		t.Errorf("coalesced = %d, want 0", got)
	}
}

// The status endpoint reports every board with its characterization.
func TestServeFleetStatus(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{}, Config{})
	resp, err := http.Get(ts.URL + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	st := decode[fleet.Status](t, resp)
	if len(st.Boards) != 3 {
		t.Fatalf("boards = %d, want 3", len(st.Boards))
	}
	for _, b := range st.Boards {
		if b.OperatingMV > 620 || b.OperatingMV <= b.VcrashMV {
			t.Errorf("%s: operating point %.0f mV outside (Vcrash, 620]", b.Board, b.OperatingMV)
		}
	}
}

// Driving a board below Vcrash over HTTP induces a crash the fleet heals;
// classify keeps answering throughout.
func TestServeVoltageInducedCrashHeals(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{}, Config{})

	resp := postJSON(t, ts.URL+"/v1/fleet/voltage", voltageRequest{Board: 0, MV: 500})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("voltage status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Traffic keeps flowing while the monitor heals board 0.
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: int64(i + 1)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify during crash: status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/fleet/status")
		if err != nil {
			t.Fatal(err)
		}
		st := decode[fleet.Status](t, resp)
		if st.Redeploys >= 1 && st.Boards[0].State == "healthy" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("board 0 never healed: %+v", st.Boards[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Voltage endpoint validation: bad board, bad mv, unsafe operating point.
func TestServeVoltageValidation(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{}, Config{})
	for _, tc := range []voltageRequest{
		{Board: 99, MV: 600},
		{Board: 0, MV: -5},
		{Board: 0, MV: 400, Operating: true}, // below Vcrash as a steady-state point
	} {
		resp := postJSON(t, ts.URL+"/v1/fleet/voltage", tc)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", tc, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// Method and body validation on the classify endpoint.
func TestServeClassifyValidation(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{}, Config{})
	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/classify: status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// The metrics endpoint exposes the fleet gauges and counters in
// Prometheus text format.
func TestServeMetrics(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{}, Config{})
	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"uvolt_fleet_boards 3",
		"uvolt_fleet_served_total",
		"uvolt_fleet_canceled_total",
		"uvolt_board_vccint_millivolts{board=\"platform-A#0\"}",
		"uvolt_board_power_watts{board=\"platform-B#1\",rail=\"vccint\"}",
		"uvolt_board_throughput_gops",
		"uvolt_governor_enabled",
		"uvolt_governor_saved_watts",
		"uvolt_governor_operating_millivolts{board=\"platform-A#0\"}",
		"uvolt_governor_baseline_millivolts{board=\"platform-B#1\"}",
		"uvolt_http_requests_total{path=\"/v1/classify\"} 1",
		"uvolt_http_requests_total{path=\"/v1/fleet/governor\"}",
		"uvolt_batch_runs_total",
		"uvolt_batch_canceled_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The governor endpoint reports per-board adaptive-voltage state, and
// POST toggles and tunes the loops at runtime.
func TestServeGovernorEndpoint(t *testing.T) {
	_, ts := newTestServer(t, fleet.Config{
		Boards: 3, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1,
		Governor:        fleet.GovernorConfig{Interval: -1},
	}, Config{})

	resp, err := http.Get(ts.URL + "/v1/fleet/governor")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d, want 200", resp.StatusCode)
	}
	var rep struct {
		Governor *fleet.GovernorStatus `json:"governor"`
		Boards   []struct {
			Board    string                     `json:"board"`
			Governor *fleet.BoardGovernorStatus `json:"governor"`
		} `json:"boards"`
	}
	func() {
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
	}()
	if rep.Governor == nil || rep.Governor.Enabled {
		t.Fatalf("governor should report present and disabled: %+v", rep.Governor)
	}
	if len(rep.Boards) != 3 {
		t.Fatalf("boards = %d, want 3", len(rep.Boards))
	}
	for _, b := range rep.Boards {
		if b.Governor == nil {
			t.Fatalf("%s: no governor state", b.Board)
		}
		if b.Governor.BaselineMV <= 0 || b.Governor.FloorMV <= 0 {
			t.Errorf("%s: incomplete governor state: %+v", b.Board, b.Governor)
		}
	}

	// Enable + tune in one POST.
	enabled := true
	resp = postJSON(t, ts.URL+"/v1/fleet/governor", map[string]any{
		"enabled": enabled, "step_mv": 3.0, "probe_images": 8,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d, want 200", resp.StatusCode)
	}
	func() {
		defer resp.Body.Close()
		rep.Governor = nil
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
	}()
	if !rep.Governor.Enabled || rep.Governor.StepMV != 3 || rep.Governor.ProbeImages != 8 {
		t.Errorf("POST did not apply: %+v", rep.Governor)
	}

	// Invalid tuning is rejected.
	resp = postJSON(t, ts.URL+"/v1/fleet/governor", map[string]any{"step_mv": -2.0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative tuning: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Method validation.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/governor", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// After Close, classify returns 503 and queued work was not lost.
func TestServeShutdown(t *testing.T) {
	pool, err := fleet.New(fleet.Config{Boards: 3, Tiny: true, Images: 4, CharRepeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(pool, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/classify", classifyRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown classify: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	s.Close()
	resp = postJSON(t, ts.URL+"/v1/classify", classifyRequest{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown classify: status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
