package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpgauv/internal/fleet"
)

func newTestBatcher(t *testing.T, size int, window time.Duration) *batcher {
	t.Helper()
	pool, err := fleet.New(fleet.Config{Boards: 1, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	b := newBatcher(pool, size, 16, window)
	t.Cleanup(b.Close)
	return b
}

// Regression for the stale window-timer race: a timer that fires but
// loses the lock to a size-triggered flush must NOT flush the next
// batch's fresh waiters before their window expires. The sequence is
// reconstructed deterministically: the timer fires while the test holds
// b.mu, the size path claims the batch under that same lock, a fresh
// waiter arrives — and when the lock is released the stale timer must
// find its generation gone and leave the fresh waiter alone.
func TestBatcherStaleTimerDoesNotStealFreshBatch(t *testing.T) {
	b := newTestBatcher(t, 8, 10*time.Millisecond)

	// One coalescable call arms the window timer.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if _, _, err := b.Submit(context.Background(), 0, nil); err != nil {
			t.Errorf("first submit: %v", err)
		}
	}()
	// Take the lock once the call is pending; the armed timer will fire
	// and block on b.mu underneath us.
	for {
		b.mu.Lock()
		if len(b.cls.pending) == 1 {
			break
		}
		b.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond) // window expires; flush parks on b.mu

	// The size-triggered path claims the batch under the lock (this is
	// exactly what Submit does when the batch fills)...
	batch := b.take(&b.cls)
	// ...and a fresh waiter becomes the next batch before the stale
	// timer gets the lock.
	fresh := &call{ch: make(chan callOut, 1)}
	b.cls.pending = append(b.cls.pending, fresh)
	b.cls.units++
	b.mu.Unlock()
	b.runEval(batch)
	<-firstDone

	// Give the stale timer ample time to run. With the generation guard
	// it returns without flushing; without it, it would steal `fresh`
	// (pending would drop to 0 and fresh's window would be destroyed).
	time.Sleep(25 * time.Millisecond)
	b.mu.Lock()
	got := len(b.cls.pending)
	b.mu.Unlock()
	if got != 1 {
		t.Fatalf("pending = %d after the stale timer ran, want 1 (fresh waiter must survive)", got)
	}
	select {
	case <-fresh.ch:
		t.Fatal("fresh waiter was flushed by the stale timer")
	default:
	}
}

// Regression for the canceled-waiter leak: a caller that cancels while
// its call is still pending must be removed from the batch, so it
// neither inflates the coalesced count nor pads the next flush's batch
// size.
func TestBatcherCanceledWaiterRemoved(t *testing.T) {
	b := newTestBatcher(t, 8, 50*time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctx, 0, nil)
		done <- err
	}()
	for {
		b.mu.Lock()
		n := len(b.cls.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The waiter is gone and the window timer was retired with it.
	b.mu.Lock()
	pending, timer := len(b.cls.pending), b.cls.timer
	b.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending = %d after cancel, want 0", pending)
	}
	if timer != nil {
		t.Error("window timer still armed for an empty batch")
	}
	if got := b.canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}

	// Wait out the original window: no phantom batch may run.
	time.Sleep(70 * time.Millisecond)
	if got := b.batches.Load(); got != 0 {
		t.Errorf("batches = %d, want 0 (canceled waiter must not cost a pass)", got)
	}

	// A live call still flushes normally, with batch size 1 — not
	// padded by the ghost of the canceled waiter.
	_, size, err := b.Submit(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1 {
		t.Errorf("batch size = %d, want 1", size)
	}
	if got := b.coalesced.Load(); got != 0 {
		t.Errorf("coalesced = %d, want 0", got)
	}
}

// A canceled waiter in the middle of a larger pending batch: the
// remaining batch-mates flush together and report the reduced size.
func TestBatcherCancelMidBatch(t *testing.T) {
	b := newTestBatcher(t, 8, 40*time.Millisecond)

	ctxA, cancelA := context.WithCancel(context.Background())
	resA := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctxA, 0, nil)
		resA <- err
	}()
	for {
		b.mu.Lock()
		n := len(b.cls.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	type out struct {
		size int
		err  error
	}
	resB := make(chan out, 1)
	go func() {
		_, size, err := b.Submit(context.Background(), 0, nil)
		resB <- out{size, err}
	}()
	for {
		b.mu.Lock()
		n := len(b.cls.pending)
		b.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelA()
	if err := <-resA; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	got := <-resB
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.size != 1 {
		t.Errorf("batch size = %d, want 1 (canceled mate removed before flush)", got.size)
	}
	if c := b.coalesced.Load(); c != 0 {
		t.Errorf("coalesced = %d, want 0", c)
	}
}
