package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/telemetry"
)

// recordSLO feeds one finished request into the endpoint's latency
// digest and the server's SLO tracker. A caller that went away is
// excluded entirely: the server did nothing wrong and the latency says
// nothing about serving.
func (s *Server) recordSLO(d *telemetry.Digest, err error, lat time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	d.Observe(lat.Seconds())
	s.slo.Record(err == nil, lat)
}

// historyResponse is the /v1/fleet/history payload.
type historyResponse struct {
	Board  string            `json:"board"`
	Series string            `json:"series"`
	Res    string            `json:"res"`
	Points []telemetry.Point `json:"points"`
}

// handleHistory serves GET /v1/fleet/history?board=B&series=S[&res=R]
// [&n=N]: the most recent N points of one board series at resolution R
// ("raw", "10s" or "1m"; default raw, all retained points). The pool
// aggregate is addressable as a pseudo-board named after the pool.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	s.historyReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	board := q.Get("board")
	if board == "" {
		s.errorJSON(w, http.StatusBadRequest, "board parameter required")
		return
	}
	series := q.Get("series")
	if series == "" {
		s.errorJSON(w, http.StatusBadRequest,
			"series parameter required (one of: "+strings.Join(telemetry.SeriesNames, ", ")+")")
		return
	}
	if !telemetry.ValidSeries(series) {
		s.errorJSON(w, http.StatusBadRequest,
			"unknown series "+strconv.Quote(series)+" (one of: "+strings.Join(telemetry.SeriesNames, ", ")+")")
		return
	}
	res := q.Get("res")
	if res == "" {
		res = telemetry.ResRaw
	}
	if !telemetry.ValidRes(res) {
		s.errorJSON(w, http.StatusBadRequest,
			"res must be one of: "+strings.Join(telemetry.Resolutions, ", "))
		return
	}
	n := 0
	if v := q.Get("n"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = k
	}
	for _, p := range s.pools {
		if _, ok := p.Telemetry().Lookup(board); ok {
			pts := p.Telemetry().Points(board, series, res, n)
			if pts == nil {
				pts = []telemetry.Point{}
			}
			s.writeJSON(w, http.StatusOK, historyResponse{Board: board, Series: series, Res: res, Points: pts})
			return
		}
	}
	s.errorJSON(w, http.StatusNotFound, "unknown board "+strconv.Quote(board))
}

// healthResponse is the /v1/fleet/health payload.
type healthResponse struct {
	Boards   []telemetry.BoardHealth `json:"boards"`
	Degraded int                     `json:"degraded"`
	Watch    int                     `json:"watch"`
	SLO      telemetry.SLOStatus     `json:"slo"`
}

// handleFleetHealth serves GET /v1/fleet/health[?pool=P]: every board's
// health score and state (margin regression surfaces here before it
// becomes crashes) plus the serving SLO burn-rate snapshot.
func (s *Server) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	s.healthReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	out := healthResponse{Boards: []telemetry.BoardHealth{}, SLO: s.slo.Snapshot()}
	for _, p := range s.scopedPools(k) {
		for _, h := range p.BoardHealth() {
			out.Boards = append(out.Boards, h)
			switch h.State {
			case telemetry.HealthDegraded:
				out.Degraded++
			case telemetry.HealthWatch:
				out.Watch++
			}
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// postmortemsResponse is the /v1/fleet/postmortems payload.
type postmortemsResponse struct {
	Total       int64                  `json:"total"`
	Postmortems []telemetry.Postmortem `json:"postmortems"`
}

// handlePostmortems serves GET /v1/fleet/postmortems[?limit=N][&pool=P]:
// retained crash postmortems, newest first (default 20 — each carries a
// journal tail and a full telemetry window, so the payload is heavy).
func (s *Server) handlePostmortems(w http.ResponseWriter, r *http.Request) {
	s.postmortemReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	pools := s.scopedPools(k)
	sets := make([][]telemetry.Postmortem, 0, len(pools))
	out := postmortemsResponse{Postmortems: []telemetry.Postmortem{}}
	for _, p := range pools {
		sets = append(sets, p.Postmortems(0))
		out.Total += p.Telemetry().Flight().Total()
	}
	if pms := telemetry.MergePostmortems(limit, sets...); pms != nil {
		out.Postmortems = pms
	}
	s.writeJSON(w, http.StatusOK, out)
}

// renderTelemetryMetrics appends the telemetry, health and SLO metric
// families to the Prometheus exposition.
func (s *Server) renderTelemetryMetrics(b *strings.Builder, st fleet.Status) {
	family := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	family("uvolt_temperature_celsius", "Die temperature by board.", "gauge")
	for _, bd := range st.Boards {
		fmt.Fprintf(b, "uvolt_temperature_celsius{board=%q} %.2f\n", bd.Board, bd.TempC)
	}
	family("uvolt_power_watts", "Total on-chip power by board.", "gauge")
	for _, bd := range st.Boards {
		fmt.Fprintf(b, "uvolt_power_watts{board=%q} %.3f\n", bd.Board, bd.PowerW)
	}
	family("uvolt_board_health_score", "Health score (100 = pristine margin, 0 = failing).", "gauge")
	for _, bd := range st.Boards {
		fmt.Fprintf(b, "uvolt_board_health_score{board=%q} %.1f\n", bd.Board, bd.HealthScore)
	}
	family("uvolt_board_degraded", "Whether the health scorer grades the board degraded.", "gauge")
	for _, bd := range st.Boards {
		v := 0
		if bd.Health == telemetry.HealthDegraded {
			v = 1
		}
		fmt.Fprintf(b, "uvolt_board_degraded{board=%q} %d\n", bd.Board, v)
	}

	var pmTotal int64
	for _, p := range s.pools {
		pmTotal += p.Telemetry().Flight().Total()
	}
	fmt.Fprintf(b, "# HELP uvolt_postmortems_total Crash postmortems recorded by the flight recorder.\n# TYPE uvolt_postmortems_total counter\nuvolt_postmortems_total %d\n", pmTotal)

	slo := s.slo.Snapshot()
	fmt.Fprintf(b, "# HELP uvolt_slo_availability_target Availability objective (fraction of requests that must succeed).\n# TYPE uvolt_slo_availability_target gauge\nuvolt_slo_availability_target %g\n", slo.AvailabilityTarget)
	fmt.Fprintf(b, "# HELP uvolt_slo_latency_target_seconds Latency objective threshold.\n# TYPE uvolt_slo_latency_target_seconds gauge\nuvolt_slo_latency_target_seconds %g\n", slo.LatencyTargetMS/1e3)
	family("uvolt_slo_burn_rate", "Error-budget burn rate by objective and window (1 = budget consumed exactly at the sustainable rate).", "gauge")
	for _, obj := range slo.Objectives {
		for _, wn := range obj.Windows {
			fmt.Fprintf(b, "uvolt_slo_burn_rate{objective=%q,window=%q} %.3f\n", obj.Objective, wn.Window, wn.BurnRate)
		}
	}
	family("uvolt_slo_burning", "Whether both burn windows exceed the alert threshold.", "gauge")
	for _, obj := range slo.Objectives {
		v := 0
		if obj.Burning {
			v = 1
		}
		fmt.Fprintf(b, "uvolt_slo_burning{objective=%q} %d\n", obj.Objective, v)
	}
	family("uvolt_slo_burn_events_total", "Rising-edge burn alerts journaled by objective.", "counter")
	for _, obj := range slo.Objectives {
		fmt.Fprintf(b, "uvolt_slo_burn_events_total{objective=%q} %d\n", obj.Objective, obj.BurnEvents)
	}

	family("uvolt_endpoint_latency_seconds", "Streaming latency quantiles by endpoint (log-bucketed digest).", "gauge")
	for _, ep := range []struct {
		name string
		d    *telemetry.Digest
	}{{"classify", s.classifyDigest}, {"infer", s.inferDigest}} {
		snap := ep.d.Snapshot()
		fmt.Fprintf(b, "uvolt_endpoint_latency_seconds{endpoint=%q,q=\"0.5\"} %.6f\n", ep.name, snap.P50)
		fmt.Fprintf(b, "uvolt_endpoint_latency_seconds{endpoint=%q,q=\"0.99\"} %.6f\n", ep.name, snap.P99)
		fmt.Fprintf(b, "uvolt_endpoint_latency_seconds{endpoint=%q,q=\"0.999\"} %.6f\n", ep.name, snap.P999)
	}
	family("uvolt_pool_job_latency_seconds", "Streaming board-visit latency quantiles by pool.", "gauge")
	for _, p := range s.pools {
		snap := p.LatencyDigest().Snapshot()
		fmt.Fprintf(b, "uvolt_pool_job_latency_seconds{pool=%q,q=\"0.5\"} %.6f\n", p.Name(), snap.P50)
		fmt.Fprintf(b, "uvolt_pool_job_latency_seconds{pool=%q,q=\"0.99\"} %.6f\n", p.Name(), snap.P99)
		fmt.Fprintf(b, "uvolt_pool_job_latency_seconds{pool=%q,q=\"0.999\"} %.6f\n", p.Name(), snap.P999)
	}
}
