package serve

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fpgauv/internal/fleet"
	"fpgauv/internal/tensor"
)

// testImage builds one valid inference input for the server's pool.
func testImage(s *Server, seed int64) []float32 {
	shape := s.sched.InputShape()
	img := tensor.New(shape.C, shape.H, shape.W)
	img.FillRandn(rand.New(rand.NewSource(seed)), 1)
	return img.Data()
}

// b64Image encodes pixels as the little-endian float32 wire form.
func b64Image(pixels []float32) string {
	raw := make([]byte, 4*len(pixels))
	for i, v := range pixels {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// One image in, one prediction out — over both body encodings, with the
// two encodings of the same image agreeing exactly.
func TestServeInferSingleImage(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{BatchWindow: time.Millisecond})
	pixels := testImage(s, 1)

	resp := postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: pixels})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	a := decode[inferResponse](t, resp)

	resp = postJSON(t, ts.URL+"/v1/infer", inferRequest{ImageB64: b64Image(pixels)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("b64 status = %d, want 200", resp.StatusCode)
	}
	b := decode[inferResponse](t, resp)

	for _, out := range []inferResponse{a, b} {
		if out.Pred < 0 || out.Pred >= len(out.Probs) {
			t.Errorf("pred %d outside probs width %d", out.Pred, len(out.Probs))
		}
		var sum float64
		for _, v := range out.Probs {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("probs sum %.4f, want ~1", sum)
		}
		if out.Board == "" || out.VCCINTmV <= 0 || out.VCCINTmV > 620 {
			t.Errorf("serving metadata incomplete: %+v", out)
		}
		if out.BatchSize < 1 {
			t.Errorf("batch_size = %d, want >= 1", out.BatchSize)
		}
	}
	if a.Pred != b.Pred {
		t.Errorf("pixel and b64 encodings of one image disagree: %d vs %d", a.Pred, b.Pred)
	}
}

// Concurrent per-image submissions coalesce into shared micro-batches:
// fewer fleet passes than calls, and callers observe batch sizes > 1.
func TestServeInferCoalesces(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{},
		Config{BatchImages: 8, BatchWindow: 50 * time.Millisecond})

	const calls = 12
	var wg sync.WaitGroup
	var sawShared bool
	var mu sync.Mutex
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: testImage(s, seed)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, want 200", resp.StatusCode)
				resp.Body.Close()
				return
			}
			out := decode[inferResponse](t, resp)
			mu.Lock()
			if out.BatchSize > 1 {
				sawShared = true
			}
			mu.Unlock()
		}(int64(i + 1))
	}
	wg.Wait()

	if runs := s.batch.inferBatches.Load(); runs >= calls {
		t.Errorf("infer batches = %d for %d calls; coalescing never happened", runs, calls)
	}
	if !sawShared {
		t.Error("no caller observed a shared micro-batch")
	}
	if s.batch.inferCoalesced.Load() == 0 {
		t.Error("inferCoalesced = 0, want > 0")
	}
	st := s.sched.Status()
	if st.InferImages != calls {
		t.Errorf("fleet classified %d images, want %d", st.InferImages, calls)
	}
}

// A pinned seed gets a dedicated pass, exactly like pinned classify.
func TestServeInferPinnedSeedDedicated(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{BatchImages: 8, BatchWindow: 50 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: testImage(s, 3), Seed: 99})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decode[inferResponse](t, resp)
	if out.BatchSize != 1 {
		t.Errorf("pinned seed coalesced: batch_size = %d, want 1", out.BatchSize)
	}
	if got := s.batch.inferCoalesced.Load(); got != 0 {
		t.Errorf("inferCoalesced = %d, want 0", got)
	}
}

// Body validation: wrong pixel count, bad base64, both encodings at
// once, undecodable JSON, wrong method.
func TestServeInferValidation(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{})
	for name, body := range map[string]inferRequest{
		"short pixels":   {Pixels: []float32{1, 2, 3}},
		"bad base64":     {ImageB64: "%%%not-base64%%%"},
		"odd byte count": {ImageB64: base64.StdEncoding.EncodeToString([]byte{1, 2, 3})},
		"both encodings": {Pixels: testImage(s, 1), ImageB64: b64Image(testImage(s, 1))},
		"empty body":     {},
	} {
		resp := postJSON(t, ts.URL+"/v1/infer", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// The metrics endpoint exposes the batch-size and infer-latency
// histograms with the infer traffic reflected in them.
func TestServeInferMetricsHistograms(t *testing.T) {
	s, ts := newTestServer(t, fleet.Config{}, Config{BatchWindow: time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: testImage(s, 5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE uvolt_batch_size histogram",
		`uvolt_batch_size_bucket{kind="infer",le="1"} 1`,
		`uvolt_batch_size_bucket{kind="infer",le="+Inf"} 1`,
		`uvolt_batch_size_bucket{kind="classify",le="+Inf"}`,
		`uvolt_batch_size_count{kind="infer"} 1`,
		"# TYPE uvolt_infer_latency_seconds histogram",
		`uvolt_infer_latency_seconds_bucket{le="+Inf"} 1`,
		"uvolt_infer_latency_seconds_count 1",
		"uvolt_infer_latency_seconds_sum",
		"uvolt_fleet_infer_images_total 1",
		"uvolt_fleet_infer_served_total 1",
		"uvolt_fleet_eval_served_total 0",
		`uvolt_http_requests_total{path="/v1/infer"} 1`,
		"uvolt_batch_infer_runs_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The batcher under -race: concurrent classify and infer submissions
// racing window-timer flushes, mid-flight cancellations, and Close.
// Mixed pinned-seed (dedicated) and coalescible submissions exercise
// both paths of each queue; every accepted call must complete, and the
// image accounting must balance exactly.
func TestBatcherConcurrencyRace(t *testing.T) {
	pool, err := fleet.New(fleet.Config{Boards: 2, Tiny: true, Images: 4, CharRepeats: 1,
		MonitorInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	b := newBatcher(pool, 3, 4, 500*time.Microsecond)

	shape := pool.InputShape()
	mkimg := func(seed int64) []*tensor.Tensor {
		img := tensor.New(shape.C, shape.H, shape.W)
		img.FillRandn(rand.New(rand.NewSource(seed)), 1)
		return []*tensor.Tensor{img}
	}

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, canceled, images := 0, 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if (w+i)%4 == 3 {
					// Aggressive deadline: some calls cancel while
					// pending, racing abandon against flush.
					ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
				}
				var seed int64
				if (w+i)%3 == 0 {
					seed = int64(w*100 + i + 1) // pinned: dedicated pass
				}
				var err error
				n := 0
				if w%2 == 0 {
					_, _, err = b.Submit(ctx, seed, nil)
				} else {
					var outs []fleet.InferOutput
					outs, _, _, _, err = b.SubmitInfer(ctx, mkimg(int64(w*1000+i)), seed, nil)
					n = len(outs)
				}
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				switch {
				case err == nil:
					served++
					images += n
				case err == context.DeadlineExceeded || err == ErrShutdown:
					canceled++
				default:
					t.Errorf("worker %d: %v", w, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	// Close the batcher while traffic is still arriving: late callers
	// must get ErrShutdown, in-flight batches must complete.
	time.Sleep(25 * time.Millisecond)
	b.Close()
	wg.Wait()

	if served+canceled != workers*perWorker {
		t.Fatalf("accounting: served %d + canceled %d != %d", served, canceled, workers*perWorker)
	}
	if served == 0 {
		t.Fatal("no call completed before Close")
	}
}
