package serve

import (
	"net/http"
	"strconv"
	"strings"

	"fpgauv/internal/obs"
)

// spanJSON is one rendered span. Start offsets are nanoseconds relative
// to the trace start so clients read the tree without knowing the
// process epoch; annotations render only when set.
type spanJSON struct {
	Name         string      `json:"name"`
	StartNS      int64       `json:"start_ns"`
	DurNS        int64       `json:"dur_ns"`
	Board        string      `json:"board,omitempty"`
	Attempt      int32       `json:"attempt,omitempty"`
	Batch        int32       `json:"batch,omitempty"`
	Images       int32       `json:"images,omitempty"`
	VCCINTmV     float64     `json:"vccint_mv,omitempty"`
	VCCBRAMmV    float64     `json:"vccbram_mv,omitempty"`
	MACFaults    int64       `json:"mac_faults,omitempty"`
	BRAMFaults   int64       `json:"bram_faults,omitempty"`
	ECCCorrected int64       `json:"ecc_corrected,omitempty"`
	ECCDetected  int64       `json:"ecc_detected,omitempty"`
	ECCSilent    int64       `json:"ecc_silent,omitempty"`
	ExecNS       int64       `json:"exec_ns,omitempty"`
	Err          string      `json:"error,omitempty"`
	Children     []*spanJSON `json:"children,omitempty"`
}

// traceJSON is one rendered trace: identity, bounds and the span tree.
type traceJSON struct {
	TraceID string    `json:"trace_id"`
	Seq     uint64    `json:"seq"`
	DurNS   int64     `json:"dur_ns"`
	Spans   int       `json:"spans"`
	Dropped int       `json:"dropped,omitempty"`
	Root    *spanJSON `json:"root"`
}

// renderTrace builds the nested JSON view of a published (immutable)
// trace. Spans are recorded parents-first, so one forward pass attaches
// every child.
func renderTrace(tr *obs.Trace) traceJSON {
	nodes := make([]*spanJSON, tr.Len())
	var root *spanJSON
	for i := 0; i < tr.Len(); i++ {
		sp := tr.At(i)
		n := &spanJSON{
			Name:         sp.Name(),
			StartNS:      sp.StartNS() - tr.StartNS(),
			DurNS:        sp.DurNS(),
			Board:        sp.Board,
			Attempt:      sp.Attempt,
			Batch:        sp.Batch,
			Images:       sp.Images,
			VCCINTmV:     sp.VCCINTmV,
			VCCBRAMmV:    sp.VCCBRAMmV,
			MACFaults:    sp.MACFaults,
			BRAMFaults:   sp.BRAMFaults,
			ECCCorrected: sp.ECCCorrected,
			ECCDetected:  sp.ECCDetected,
			ECCSilent:    sp.ECCSilent,
			ExecNS:       sp.ExecNS,
			Err:          sp.Err,
		}
		nodes[i] = n
		if p := sp.Parent(); p >= 0 && p < i {
			nodes[p].Children = append(nodes[p].Children, n)
		} else if root == nil {
			root = n
		}
	}
	return traceJSON{
		TraceID: tr.ID(),
		Seq:     tr.Seq(),
		DurNS:   tr.EndNS() - tr.StartNS(),
		Spans:   tr.Len(),
		Dropped: tr.Dropped(),
		Root:    root,
	}
}

// handleTrace serves GET /v1/trace/{id}: one retained trace's span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.traceReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	tr := s.tracer.Get(id)
	if tr == nil {
		s.errorJSON(w, http.StatusNotFound, "no retained trace "+id)
		return
	}
	s.writeJSON(w, http.StatusOK, renderTrace(tr))
}

// handleTraces serves GET /v1/traces?limit=N: the most recent retained
// traces, newest first (default 20).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.tracesReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	trs := s.tracer.Recent(limit)
	out := make([]traceJSON, 0, len(trs))
	for _, tr := range trs {
		out = append(out, renderTrace(tr))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled": s.tracer.Enabled(),
		"traces":  out,
	})
}

// handleEvents serves GET /v1/fleet/events?cursor=K&limit=N[&pool=P]:
// the scheduler's journal after global sequence K — for a cluster that
// is the router tier's route/shed/spare_activate record, while ?pool=P
// selects one pool's board journal (crashes, rails, governor traffic)
// with its own cursor space. The reply's next_cursor feeds the next
// poll; gap reports that the ring dropped events between the caller's
// cursor and the oldest retained entry.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.eventsReqs.Add(1)
	if r.Method != http.MethodGet {
		s.errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k, err := s.poolScope(r)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query()
	var cursor uint64
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.errorJSON(w, http.StatusBadRequest, "cursor must be a non-negative integer")
			return
		}
		cursor = n
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	jr := s.sched.Journal()
	if k >= 0 {
		jr = s.pools[k].Journal()
	}
	evs, next, gap := jr.Since(cursor, limit)
	if evs == nil {
		evs = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"events":      evs,
		"next_cursor": next,
		"gap":         gap,
	})
}
