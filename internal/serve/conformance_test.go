package serve

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// metricSample is one parsed exposition line.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition splits Prometheus text format into HELP/TYPE
// declarations and samples, failing the test on any malformed line.
func parseExposition(t *testing.T, text string) (help, typ map[string]string, samples []metricSample) {
	t.Helper()
	help = map[string]string{}
	typ = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, ok := strings.Cut(rest, " ")
			if !ok || doc == "" {
				t.Fatalf("HELP without text: %q", line)
			}
			help[name] = doc
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			typ[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, parseSample(t, line))
	}
	return help, typ, samples
}

func parseSample(t *testing.T, line string) metricSample {
	t.Helper()
	s := metricSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		end := strings.IndexByte(line, '}')
		if end < i {
			t.Fatalf("unterminated label set: %q", line)
		}
		for _, pair := range strings.Split(line[i+1:end], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("unquoted label value %q in %q", v, line)
			}
			s.labels[k] = unq
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample: %q", line)
		}
		s.name = name
		rest = val
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s
}

// family resolves a sample name to its declared metric family:
// histogram series (_bucket/_sum/_count) roll up to the base name.
func family(name string, typ map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name && typ[base] == "histogram" {
			return base
		}
	}
	return name
}

// labelKey renders a sample's labels minus le — the identity of one
// histogram series.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// The full /metrics exposition must conform: every sample belongs to a
// family with HELP and TYPE, histogram buckets are cumulative and
// monotone, and each series' le="+Inf" bucket equals its _count.
func TestMetricsExpositionConformance(t *testing.T) {
	s, ts := newTestServer(t, obsFleetConfig(2), Config{Trace: true, BatchWindow: time.Millisecond})

	// Drive enough traffic to populate histograms, journal events and
	// every response class.
	if err := s.pools[0].InjectFailures(0, 2); err != nil {
		t.Fatal(err)
	}
	pixels := testImage(s, 9)
	postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: pixels, Seed: 77}).Body.Close()
	postJSON(t, ts.URL+"/v1/classify", classifyRequest{Seed: 13}).Body.Close()
	postJSON(t, ts.URL+"/v1/infer", inferRequest{Pixels: []float32{1}}).Body.Close() // 400
	getURL(t, ts.URL+"/v1/trace/absent").Body.Close()                                // 404

	resp := getURL(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	help, typ, samples := parseExposition(t, sb.String())
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}

	// Every family carries both HELP and TYPE.
	for _, smp := range samples {
		fam := family(smp.name, typ)
		if help[fam] == "" {
			t.Errorf("family %s (sample %s) has no HELP", fam, smp.name)
		}
		if typ[fam] == "" {
			t.Errorf("family %s (sample %s) has no TYPE", fam, smp.name)
		}
	}

	// Families the PR promises must be present.
	for _, want := range []string{
		"uvolt_build_info", "uvolt_uptime_seconds", "uvolt_http_responses_total",
		"uvolt_events_total", "uvolt_stage_seconds", "uvolt_classify_latency_seconds",
		"uvolt_infer_latency_seconds", "uvolt_sparsity", "uvolt_backend_info",
		"uvolt_temperature_celsius", "uvolt_power_watts",
		"uvolt_board_health_score", "uvolt_board_degraded", "uvolt_postmortems_total",
		"uvolt_slo_availability_target", "uvolt_slo_latency_target_seconds",
		"uvolt_slo_burn_rate", "uvolt_slo_burning", "uvolt_slo_burn_events_total",
		"uvolt_endpoint_latency_seconds", "uvolt_pool_job_latency_seconds",
	} {
		if typ[want] == "" {
			t.Errorf("family %s missing from exposition", want)
		}
	}

	// The backend info gauge carries the resolved backend as a label and
	// is always 1.
	backendSeen := false
	for _, smp := range samples {
		if smp.name != "uvolt_backend_info" {
			continue
		}
		backendSeen = true
		if smp.value != 1 {
			t.Errorf("uvolt_backend_info value = %g, want 1", smp.value)
		}
		if be := smp.labels["backend"]; be != "dense" && be != "sparse" {
			t.Errorf("uvolt_backend_info backend = %q, want dense or sparse", be)
		}
	}
	if !backendSeen {
		t.Error("no uvolt_backend_info sample in exposition")
	}

	// Per-board temperature and power gauges: one sample per board,
	// keyed by the board label, with physically plausible values.
	for _, fam := range []struct {
		name   string
		lo, hi float64
	}{
		{"uvolt_temperature_celsius", 10, 120},
		{"uvolt_power_watts", 0.01, 200},
	} {
		boards := map[string]bool{}
		for _, smp := range samples {
			if smp.name != fam.name {
				continue
			}
			b := smp.labels["board"]
			if b == "" {
				t.Errorf("%s sample without board label", fam.name)
			}
			if boards[b] {
				t.Errorf("%s duplicate sample for board %q", fam.name, b)
			}
			boards[b] = true
			if smp.value < fam.lo || smp.value > fam.hi {
				t.Errorf("%s{board=%q} = %g, outside [%g, %g]", fam.name, b, smp.value, fam.lo, fam.hi)
			}
		}
		if len(boards) != 2 {
			t.Errorf("%s covers %d boards, want 2", fam.name, len(boards))
		}
	}

	// Histogram discipline per series: buckets monotone non-decreasing in
	// ascending le, a +Inf bucket present and equal to _count.
	type series struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
		count  float64
	}
	hists := map[string]*series{}
	key := func(smp metricSample) string { return family(smp.name, typ) + "|" + labelKey(smp.labels) }
	get := func(k string) *series {
		if hists[k] == nil {
			hists[k] = &series{}
		}
		return hists[k]
	}
	for _, smp := range samples {
		fam := family(smp.name, typ)
		if typ[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(smp.name, "_bucket"):
			le := smp.labels["le"]
			if le == "" {
				t.Errorf("bucket without le: %s %v", smp.name, smp.labels)
				continue
			}
			sr := get(key(smp))
			if le == "+Inf" {
				sr.inf, sr.hasInf = smp.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("unparseable le %q on %s", le, smp.name)
				continue
			}
			sr.les = append(sr.les, bound)
			sr.counts = append(sr.counts, smp.value)
		case strings.HasSuffix(smp.name, "_count"):
			get(key(smp)).count = smp.value
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series parsed")
	}
	for k, sr := range hists {
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				t.Errorf("%s: le bounds not ascending (%g after %g)", k, sr.les[i], sr.les[i-1])
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s: buckets not cumulative (%g after %g at le=%g)", k, sr.counts[i], sr.counts[i-1], sr.les[i])
			}
		}
		if !sr.hasInf {
			t.Errorf("%s: no le=\"+Inf\" bucket", k)
			continue
		}
		if len(sr.counts) > 0 && sr.inf < sr.counts[len(sr.counts)-1] {
			t.Errorf("%s: +Inf bucket %g below last bucket %g", k, sr.inf, sr.counts[len(sr.counts)-1])
		}
		if math.Abs(sr.inf-sr.count) > 0 {
			t.Errorf("%s: +Inf bucket %g != _count %g", k, sr.inf, sr.count)
		}
	}
}
